// Infeasibility-distance cost functions (paper §3.3).
//
// A block is a point (T_i, S_i) in the 2-D space of Figure 2; its
// infeasibility distance is a weighted, normalized measure of how far it
// lies outside the device's feasible rectangle:
//
//   d_i = λ^S · max(0, (S_i − S_MAX)/S_MAX) + λ^T · max(0, (T_i − T_MAX)/T_MAX)
//
// The solution distance adds the size-deviation penalty λ^R·d_k^R, which
// penalizes solutions whose remainder is too large to fit into the
// minimal theoretical number of remaining devices (S_AVG = S(R_k)/(M−k+1)).
#pragma once

#include <cstdint>

#include "device/device.hpp"
#include "partition/partition.hpp"

namespace fpart {

struct CostParams {
  double lambda_s = 0.4;  // λ^S — weight of the size distance
  double lambda_t = 0.6;  // λ^T — weight of the I/O distance (I/O is the
                          // critical constraint, so λ^T > λ^S)
  double lambda_r = 0.1;  // λ^R — weight of the size-deviation penalty
  /// Weight of the external I/O balancing key d_k^E in the solution
  /// comparison (1 = the paper's behaviour, 0 disables the key — used by
  /// the cost-function ablation bench).
  double lambda_e = 1.0;
};

/// d_i for a single block given its size and pin demand.
double block_infeasibility(std::uint64_t block_size, std::uint64_t block_pins,
                           const Device& d, const CostParams& params);

/// Σ_i d_i over all blocks of `p`.
double partition_infeasibility(const Partition& p, const Device& d,
                               const CostParams& params);

/// The paper's d_k^R: with `remaining_splits` = M − k + 1, the average
/// size the remainder would spread over if split into the minimal
/// theoretical number of devices; positive penalty iff that average
/// exceeds S_MAX. Returns 0 when remaining_splits <= 0 (k has reached M).
double size_deviation_penalty(std::uint64_t remainder_size,
                              std::int64_t remaining_splits, const Device& d);

/// Full solution distance d_k = Σ d_i + λ^R · d_k^R, where the remainder
/// block is `remainder` and `lower_bound` is M (see §3.3).
double solution_distance(const Partition& p, const Device& d,
                         const CostParams& params, BlockId remainder,
                         std::uint32_t lower_bound);

/// External I/O balancing factor d_k^E (paper §3.4): deficit of external
/// primary I/Os per block w.r.t. the average T^E_AVG = |Y0| / M. Lower is
/// better (blocks starved of external I/Os early force an I/O-saturated
/// remainder later).
double external_balance_factor(const Partition& p, std::uint32_t lower_bound);

}  // namespace fpart
