// Lexicographic solution comparison (paper §3.4).
//
// Two solutions are ordered by (f, d_k, T_SUM, d_k^E):
//   f      — number of feasible blocks (higher is better),
//   d_k    — infeasibility distance incl. size-deviation penalty (lower),
//   T_SUM  — total I/O pins over all blocks (lower),
//   d_k^E  — external I/O balancing deficit (lower).
#pragma once

#include <cstdint>
#include <string>

#include "device/device.hpp"
#include "partition/cost.hpp"
#include "partition/partition.hpp"

namespace fpart {

struct SolutionEval {
  std::uint32_t feasible_blocks = 0;  // f
  std::uint32_t num_blocks = 0;       // k (context, not a comparison key)
  double distance = 0.0;              // d_k
  std::uint64_t total_pins = 0;       // T_SUM
  double ext_balance = 0.0;           // d_k^E

  bool feasible() const { return feasible_blocks == num_blocks; }

  /// Strictly better in the lexicographic order (with a small tolerance
  /// on the real-valued keys so float noise cannot flip decisions).
  bool better_than(const SolutionEval& other) const;

  std::string to_string() const;
};

/// Context needed to score a partition: device, cost weights, which block
/// is the remainder, and the lower bound M.
class Evaluator {
 public:
  Evaluator(Device device, CostParams params, std::uint32_t lower_bound)
      : device_(std::move(device)),
        params_(params),
        lower_bound_(lower_bound) {}

  const Device& device() const { return device_; }
  const CostParams& params() const { return params_; }
  std::uint32_t lower_bound() const { return lower_bound_; }

  SolutionEval evaluate(const Partition& p, BlockId remainder) const;

 private:
  Device device_;
  CostParams params_;
  std::uint32_t lower_bound_;
};

}  // namespace fpart
