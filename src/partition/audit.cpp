#include "partition/audit.hpp"

#include <atomic>
#include <cstdlib>
#include <sstream>

#include "obs/recorder.hpp"
#include "partition/verify.hpp"
#include "util/assert.hpp"

namespace fpart {

namespace {

std::atomic<bool> g_audit_enabled{[] {
  const char* env = std::getenv("FPART_AUDIT");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}()};

}  // namespace

bool audit_enabled() {
  return g_audit_enabled.load(std::memory_order_relaxed);
}

void set_audit_enabled(bool enabled) {
  g_audit_enabled.store(enabled, std::memory_order_relaxed);
}

void audit_fail(const char* where, const std::string& detail) {
  std::ostringstream msg;
  msg << "audit failure at " << where << ": " << detail << " (event index "
      << obs::Recorder::instance().event_count() << ")";
  throw InvariantError(msg.str());
}

void audit_partition(const Partition& p, const char* where) {
  // Device limits are irrelevant here — the audit checks bookkeeping, not
  // feasibility — so verify against a device no block can violate.
  static const Device permissive("audit-permissive", Family::kXC3000,
                                 0x7fffffff, 0x7fffffff, 1.0);
  const VerifyReport rep = verify_partition(p.graph(), permissive,
                                            p.assignment(), p.num_blocks());
  const auto fail = [where](const std::string& detail) {
    audit_fail(where, detail);
  };
  if (rep.blocks.size() != p.num_blocks()) {
    fail("verifier saw " + std::to_string(rep.blocks.size()) +
         " blocks, partition claims " + std::to_string(p.num_blocks()));
  }
  if (rep.cut != p.cut_size()) {
    fail("cut diverged: recomputed " + std::to_string(rep.cut) +
         ", incremental " + std::to_string(p.cut_size()));
  }
  for (BlockId b = 0; b < p.num_blocks(); ++b) {
    const VerifiedBlock& vb = rep.blocks[b];
    const std::string tag = "block " + std::to_string(b) + " ";
    if (vb.size != p.block_size(b)) {
      fail(tag + "size diverged: recomputed " + std::to_string(vb.size) +
           ", incremental " + std::to_string(p.block_size(b)));
    }
    if (vb.pins != p.block_pins(b)) {
      fail(tag + "pin demand diverged: recomputed " + std::to_string(vb.pins) +
           ", incremental " + std::to_string(p.block_pins(b)));
    }
    if (vb.ext != p.block_external_pins(b)) {
      fail(tag + "external pins diverged: recomputed " +
           std::to_string(vb.ext) + ", incremental " +
           std::to_string(p.block_external_pins(b)));
    }
    if (vb.nodes != p.block_node_count(b)) {
      fail(tag + "node count diverged: recomputed " +
           std::to_string(vb.nodes) + ", incremental " +
           std::to_string(p.block_node_count(b)));
    }
  }
}

}  // namespace fpart
