// Independent partition verification.
//
// Recomputes every per-block quantity straight from an assignment vector
// — deliberately sharing no code with the incremental Partition class —
// and checks device feasibility. Used by tests as an oracle and by
// downstream users to validate results before committing to a board
// design.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "device/device.hpp"
#include "hypergraph/hypergraph.hpp"

namespace fpart {

struct VerifiedBlock {
  std::uint64_t size = 0;
  std::uint64_t pins = 0;
  std::uint64_t ext = 0;
  std::uint32_t nodes = 0;
  bool feasible = false;
};

struct VerifyReport {
  bool ok = false;
  /// Human-readable violation descriptions (empty iff ok).
  std::vector<std::string> errors;
  /// Recomputed stats per block.
  std::vector<VerifiedBlock> blocks;
  std::uint64_t cut = 0;

  /// Convenience: "ok" or the first error.
  std::string summary() const;
};

/// Verifies that `assignment` (one entry per node of `h`; terminals must
/// be kInvalidBlock) is a complete k-way partition where every block
/// meets `d`. Structural errors (unassigned cells, out-of-range block
/// ids, assigned terminals) are reported alongside capacity violations.
VerifyReport verify_partition(const Hypergraph& h, const Device& d,
                              std::span<const BlockId> assignment,
                              std::uint32_t k);

}  // namespace fpart
