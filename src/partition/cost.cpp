#include "partition/cost.hpp"

#include "util/assert.hpp"

namespace fpart {

double block_infeasibility(std::uint64_t block_size, std::uint64_t block_pins,
                           const Device& d, const CostParams& params) {
  double dist = 0.0;
  const double s = static_cast<double>(block_size);
  if (s > d.s_max()) {
    dist += params.lambda_s * (s - d.s_max()) / d.s_max();
  }
  const double t = static_cast<double>(block_pins);
  const double t_max = static_cast<double>(d.t_max());
  if (t > t_max) {
    dist += params.lambda_t * (t - t_max) / t_max;
  }
  return dist;
}

double partition_infeasibility(const Partition& p, const Device& d,
                               const CostParams& params) {
  double sum = 0.0;
  for (BlockId b = 0; b < p.num_blocks(); ++b) {
    sum += block_infeasibility(p.block_size(b), p.block_pins(b), d, params);
  }
  return sum;
}

double size_deviation_penalty(std::uint64_t remainder_size,
                              std::int64_t remaining_splits, const Device& d) {
  if (remaining_splits <= 0) return 0.0;
  const double s_avg = static_cast<double>(remainder_size) /
                       static_cast<double>(remaining_splits);
  if (s_avg <= d.s_max()) return 0.0;
  return s_avg / d.s_max();
}

double solution_distance(const Partition& p, const Device& d,
                         const CostParams& params, BlockId remainder,
                         std::uint32_t lower_bound) {
  FPART_REQUIRE(remainder < p.num_blocks(), "remainder out of range");
  // Non-remainder blocks created so far: k in the paper's notation.
  const std::int64_t k = static_cast<std::int64_t>(p.num_blocks()) - 1;
  const std::int64_t remaining =
      static_cast<std::int64_t>(lower_bound) - k + 1;
  return partition_infeasibility(p, d, params) +
         params.lambda_r *
             size_deviation_penalty(p.block_size(remainder), remaining, d);
}

double external_balance_factor(const Partition& p,
                               std::uint32_t lower_bound) {
  FPART_REQUIRE(lower_bound >= 1, "lower bound must be >= 1");
  const double total_ext =
      static_cast<double>(p.graph().num_terminals());
  if (total_ext == 0.0) return 0.0;
  const double t_avg = total_ext / static_cast<double>(lower_bound);
  double sum = 0.0;
  for (BlockId b = 0; b < p.num_blocks(); ++b) {
    const double t_ext = static_cast<double>(p.block_external_pins(b));
    if (t_ext < t_avg) sum += (t_avg - t_ext) / t_avg;
  }
  return sum;
}

}  // namespace fpart
