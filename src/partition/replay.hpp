// Event-log replay: re-derives a partition from an fpart-events/1 log.
//
// The flight recorder (obs/recorder.hpp) logs every Partition mutation
// (init, move, add/remove/swap block; restores expand into diff moves),
// so applying just the mutation events in order to a fresh Partition over
// the same hypergraph must land, byte for byte, on the recorded final
// state. replay_event_log() does exactly that, cross-checking:
//
//   * the hypergraph's structural digest against the log header,
//   * each move's source block and resulting cut against the recorded
//     values (first divergence is reported with its event index),
//   * the final k / cut / K-1 / per-block S_j,T_j / assignment digest
//     against the log's footer.
//
// tools/fpart_inspect drives this from the command line; a ctest chains
// fpart_cli --events with `fpart_inspect replay` as the determinism gate.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "obs/recorder.hpp"
#include "partition/partition.hpp"

namespace fpart {

/// 64-bit FNV-1a digest of a per-node block assignment (terminals hash
/// their kInvalidBlock marker). Recorded in the log footer and recomputed
/// by replay.
std::uint64_t assignment_digest(std::span<const BlockId> assignment);

struct ReplayResult {
  /// True iff every mutation applied cleanly, every recorded cut matched,
  /// and the final state matches the footer (when the log has one).
  bool ok = false;
  /// Divergences and structural problems, in discovery order.
  std::vector<std::string> errors;
  /// Mutation events applied.
  std::uint64_t mutations_applied = 0;
  /// Event index of the first cut/source divergence (or npos).
  static constexpr std::uint64_t kNoDivergence = ~std::uint64_t{0};
  std::uint64_t first_divergence = kNoDivergence;
  /// The re-derived partition (absent if the log never initialized one).
  std::optional<Partition> partition;
};

/// Applies the mutation events of `log` to a fresh Partition over `h`.
/// `check_moves` additionally validates each move's recorded source block
/// and resulting cut (leave on; off only to time raw application).
ReplayResult replay_event_log(const Hypergraph& h, const obs::EventLog& log,
                              bool check_moves = true);

}  // namespace fpart
