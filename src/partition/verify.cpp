#include "partition/verify.hpp"

#include <sstream>

namespace fpart {

std::string VerifyReport::summary() const {
  if (ok) return "ok";
  return errors.empty() ? "invalid (unspecified)" : errors.front();
}

VerifyReport verify_partition(const Hypergraph& h, const Device& d,
                              std::span<const BlockId> assignment,
                              std::uint32_t k) {
  VerifyReport report;
  auto fail = [&](const std::string& msg) { report.errors.push_back(msg); };

  if (assignment.size() != h.num_nodes()) {
    fail("assignment size does not match node count");
    return report;
  }
  if (k == 0) {
    fail("k must be at least 1");
    return report;
  }
  report.blocks.assign(k, VerifiedBlock{});

  // Structural checks + sizes.
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    const BlockId b = assignment[v];
    if (h.is_terminal(v)) {
      if (b != kInvalidBlock) {
        std::ostringstream os;
        os << "terminal " << v << " has a block assignment";
        fail(os.str());
      }
      continue;
    }
    if (b >= k) {
      std::ostringstream os;
      os << "cell " << v << " assigned to invalid block " << b;
      fail(os.str());
      continue;
    }
    report.blocks[b].size += h.node_size(v);
    ++report.blocks[b].nodes;
  }

  // Nets: spans, pin demands, external I/Os.
  for (NetId e = 0; e < h.num_nets(); ++e) {
    std::vector<std::uint32_t> phi(k, 0);
    bool skip = false;
    for (NodeId v : h.interior_pins(e)) {
      const BlockId b = assignment[v];
      if (b >= k) {
        skip = true;  // already reported above
        break;
      }
      ++phi[b];
    }
    if (skip) continue;
    const std::uint32_t total = h.net_interior_pin_count(e);
    const std::uint32_t term = h.net_terminal_count(e);
    std::uint32_t span = 0;
    for (BlockId b = 0; b < k; ++b) {
      if (phi[b] == 0) continue;
      ++span;
      if (term > 0 || phi[b] < total) ++report.blocks[b].pins;
      if (term > 0) report.blocks[b].ext += term;
    }
    if (span >= 2) ++report.cut;
  }

  // Device feasibility.
  for (BlockId b = 0; b < k; ++b) {
    VerifiedBlock& blk = report.blocks[b];
    blk.feasible = d.size_ok(blk.size) && d.pins_ok(blk.pins);
    if (!blk.feasible) {
      std::ostringstream os;
      os << "block " << b << " violates " << d.name() << ": S=" << blk.size
         << "/" << d.s_max() << " T=" << blk.pins << "/" << d.t_max();
      fail(os.str());
    }
    if (blk.nodes == 0) {
      std::ostringstream os;
      os << "block " << b << " is empty";
      fail(os.str());
    }
  }

  report.ok = report.errors.empty();
  return report;
}

}  // namespace fpart
