#include "partition/partition.hpp"

#include <algorithm>

#include "obs/recorder.hpp"
#include "util/assert.hpp"

namespace fpart {

Partition::Partition(const Hypergraph& h, std::uint32_t initial_blocks)
    : h_(&h) {
  FPART_REQUIRE(initial_blocks >= 1, "partition needs at least one block");
  FPART_REQUIRE(h.num_interior() >= 1, "circuit has no interior nodes");
  assignment_.assign(h.num_nodes(), kInvalidBlock);
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) assignment_[v] = 0;
  }
  size_.assign(initial_blocks, 0);
  pins_.assign(initial_blocks, 0);
  ext_.assign(initial_blocks, 0);
  node_count_.assign(initial_blocks, 0);
  pin_count_.assign(h.num_nets(),
                    std::vector<std::uint32_t>(initial_blocks, 0));
  net_span_.assign(h.num_nets(), 0);
  rebuild();
  obs::record_event(obs::EventKind::kInit, obs::Engine::kNone, initial_blocks,
                    0, 0, obs::kNoGain, h.num_nodes());
}

Partition::Partition(const Hypergraph& h,
                     std::span<const BlockId> assignment, std::uint32_t k)
    : Partition(h, k) {
  FPART_REQUIRE(assignment.size() == h.num_nodes(),
                "assignment size must match node count");
  if (obs::recorder_enabled()) {
    // Apply the assignment as incremental moves so each lands in the
    // event log with a correct resulting cut (the delegate constructor
    // above already recorded kInit for the all-zeros state).
    for (NodeId v = 0; v < h.num_nodes(); ++v) {
      if (h.is_terminal(v)) {
        FPART_REQUIRE(assignment[v] == kInvalidBlock,
                      "terminals must carry kInvalidBlock");
        continue;
      }
      FPART_REQUIRE(assignment[v] < k, "assignment block out of range");
      move(v, assignment[v]);
    }
    return;
  }
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (h.is_terminal(v)) {
      FPART_REQUIRE(assignment[v] == kInvalidBlock,
                    "terminals must carry kInvalidBlock");
      continue;
    }
    FPART_REQUIRE(assignment[v] < k, "assignment block out of range");
    assignment_[v] = assignment[v];
  }
  rebuild();
}

BlockId Partition::add_block() {
  size_.push_back(0);
  pins_.push_back(0);
  ext_.push_back(0);
  node_count_.push_back(0);
  for (auto& counts : pin_count_) counts.push_back(0);
  const auto id = static_cast<BlockId>(size_.size() - 1);
  obs::record_event(obs::EventKind::kAddBlock, obs::Engine::kNone, id);
  return id;
}

void Partition::remove_last_block() {
  FPART_REQUIRE(num_blocks() > 1, "cannot remove the only block");
  FPART_REQUIRE(node_count_.back() == 0, "removed block must be empty");
  obs::record_event(obs::EventKind::kRemoveBlock, obs::Engine::kNone,
                    num_blocks() - 1);
  size_.pop_back();
  pins_.pop_back();
  ext_.pop_back();
  node_count_.pop_back();
  for (auto& counts : pin_count_) counts.pop_back();
}

void Partition::swap_blocks(BlockId a, BlockId b) {
  FPART_REQUIRE(a < num_blocks() && b < num_blocks(),
                "swap_blocks: block out of range");
  if (a == b) return;
  obs::record_event(obs::EventKind::kSwapBlocks, obs::Engine::kNone, a, b);
  for (auto& blk : assignment_) {
    if (blk == a) {
      blk = b;
    } else if (blk == b) {
      blk = a;
    }
  }
  std::swap(size_[a], size_[b]);
  std::swap(pins_[a], pins_[b]);
  std::swap(ext_[a], ext_[b]);
  std::swap(node_count_[a], node_count_[b]);
  for (auto& counts : pin_count_) std::swap(counts[a], counts[b]);
}

void Partition::move(NodeId v, BlockId to) {
  FPART_REQUIRE(v < h_->num_nodes() && !h_->is_terminal(v),
                "move: not an interior node");
  FPART_REQUIRE(to < num_blocks(), "move: target block out of range");
  const BlockId from = assignment_[v];
  if (from == to) return;

  for (NetId e : h_->nets(v)) {
    auto& counts = pin_count_[e];
    const std::uint32_t term = h_->net_terminal_count(e);
    const std::uint32_t total = h_->net_interior_pin_count(e);
    const std::uint32_t old_f = counts[from];
    const std::uint32_t old_t = counts[to];

    const bool req_f_old = old_f >= 1 && (term > 0 || old_f < total);
    const bool req_t_old = old_t >= 1 && (term > 0 || old_t < total);

    counts[from] = old_f - 1;
    counts[to] = old_t + 1;

    const std::uint32_t new_f = old_f - 1;
    const std::uint32_t new_t = old_t + 1;
    const bool req_f_new = new_f >= 1 && (term > 0 || new_f < total);
    const bool req_t_new = new_t >= 1 && (term > 0 || new_t < total);

    // Span and cutset.
    const std::uint32_t old_span = net_span_[e];
    std::uint32_t new_span = old_span;
    if (old_f == 1) --new_span;
    if (old_t == 0) ++new_span;
    if (new_span != old_span) {
      net_span_[e] = new_span;
      if (old_span >= 2 && new_span < 2) --cut_;
      if (old_span < 2 && new_span >= 2) ++cut_;
      km1_ += (new_span >= 1 ? new_span - 1 : 0);
      km1_ -= (old_span >= 1 ? old_span - 1 : 0);
    }

    // Pin demand.
    if (req_f_old && !req_f_new) --pins_[from];
    if (!req_f_old && req_f_new) ++pins_[from];
    if (req_t_old && !req_t_new) --pins_[to];
    if (!req_t_old && req_t_new) ++pins_[to];

    // External terminal assignment.
    if (term > 0) {
      if (old_f == 1) ext_[from] -= term;  // from-block loses the net
      if (old_t == 0) ext_[to] += term;    // to-block gains the net
    }
  }

  const std::uint32_t s = h_->node_size(v);
  size_[from] -= s;
  size_[to] += s;
  --node_count_[from];
  ++node_count_[to];
  assignment_[v] = to;

  if (obs::recorder_enabled()) {
    auto& rec = obs::Recorder::instance();
    rec.record(obs::Event{obs::EventKind::kMove, obs::Engine::kNone, v, from,
                          to, rec.take_staged_gain(), cut_});
  }
}

std::vector<NodeId> Partition::block_nodes(BlockId b) const {
  std::vector<NodeId> out;
  out.reserve(node_count_[b]);
  for (NodeId v = 0; v < h_->num_nodes(); ++v) {
    if (assignment_[v] == b) out.push_back(v);
  }
  return out;
}

std::uint32_t Partition::count_feasible(const Device& d) const {
  std::uint32_t n = 0;
  for (BlockId b = 0; b < num_blocks(); ++b) {
    if (block_feasible(b, d)) ++n;
  }
  return n;
}

FeasibilityClass Partition::classify(const Device& d) const {
  const std::uint32_t bad = num_blocks() - count_feasible(d);
  if (bad == 0) return FeasibilityClass::kFeasible;
  if (bad == 1) return FeasibilityClass::kSemiFeasible;
  return FeasibilityClass::kInfeasible;
}

Partition::Snapshot Partition::snapshot() const {
  return Snapshot{assignment_, num_blocks()};
}

void Partition::restore(const Snapshot& s) {
  FPART_REQUIRE(s.assignment.size() == assignment_.size(),
                "restore: snapshot from a different hypergraph");
  FPART_REQUIRE(s.num_blocks >= 1, "restore: empty snapshot");
  if (obs::recorder_enabled()) {
    // Replay the snapshot as a diff of ordinary mutations so the event
    // log stays a complete replay script: grow to the snapshot's block
    // count first (so every diff move has a valid target), then move the
    // differing nodes, then drop now-empty trailing blocks. Incremental
    // updates keep the state exact, so no rebuild is needed.
    std::uint32_t diffs = 0;
    for (NodeId v = 0; v < assignment_.size(); ++v) {
      if (assignment_[v] != s.assignment[v]) ++diffs;
    }
    obs::record_event(obs::EventKind::kRestore, obs::Engine::kNone, diffs,
                      s.num_blocks);
    while (num_blocks() < s.num_blocks) add_block();
    for (NodeId v = 0; v < assignment_.size(); ++v) {
      if (assignment_[v] != s.assignment[v]) move(v, s.assignment[v]);
    }
    while (num_blocks() > s.num_blocks) remove_last_block();
    return;
  }
  assignment_ = s.assignment;
  size_.assign(s.num_blocks, 0);
  pins_.assign(s.num_blocks, 0);
  ext_.assign(s.num_blocks, 0);
  node_count_.assign(s.num_blocks, 0);
  for (auto& counts : pin_count_) counts.assign(s.num_blocks, 0);
  rebuild();
}

void Partition::rebuild() {
  const std::uint32_t k = num_blocks();
  std::fill(size_.begin(), size_.end(), 0);
  std::fill(pins_.begin(), pins_.end(), 0);
  std::fill(ext_.begin(), ext_.end(), 0);
  std::fill(node_count_.begin(), node_count_.end(), 0);
  cut_ = 0;
  km1_ = 0;

  for (NodeId v = 0; v < h_->num_nodes(); ++v) {
    if (h_->is_terminal(v)) continue;
    const BlockId b = assignment_[v];
    FPART_ASSERT_MSG(b < k, "node assigned to nonexistent block");
    size_[b] += h_->node_size(v);
    ++node_count_[b];
  }

  for (NetId e = 0; e < h_->num_nets(); ++e) {
    auto& counts = pin_count_[e];
    std::fill(counts.begin(), counts.end(), 0);
    for (NodeId v : h_->interior_pins(e)) ++counts[assignment_[v]];
    std::uint32_t span = 0;
    for (std::uint32_t c : counts) {
      if (c > 0) ++span;
    }
    net_span_[e] = span;
    if (span >= 2) ++cut_;
    if (span >= 1) km1_ += span - 1;
    const std::uint32_t term = h_->net_terminal_count(e);
    for (BlockId b = 0; b < k; ++b) {
      if (requires_pin(e, b)) ++pins_[b];
      if (term > 0 && counts[b] > 0) ext_[b] += term;
    }
  }
}

void Partition::check_consistency() const {
  Partition fresh(*h_, num_blocks());
  fresh.assignment_ = assignment_;
  fresh.rebuild();
  FPART_ASSERT_MSG(fresh.cut_ == cut_, "cut size diverged");
  FPART_ASSERT_MSG(fresh.km1_ == km1_, "K-1 connectivity diverged");
  FPART_ASSERT_MSG(fresh.size_ == size_, "block sizes diverged");
  FPART_ASSERT_MSG(fresh.pins_ == pins_, "block pin counts diverged");
  FPART_ASSERT_MSG(fresh.ext_ == ext_, "external pin counts diverged");
  FPART_ASSERT_MSG(fresh.node_count_ == node_count_, "node counts diverged");
  FPART_ASSERT_MSG(fresh.net_span_ == net_span_, "net spans diverged");
  FPART_ASSERT_MSG(fresh.pin_count_ == pin_count_, "pin counts diverged");
}

}  // namespace fpart
