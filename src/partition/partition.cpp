#include "partition/partition.hpp"

#include <algorithm>
#include <bit>

namespace fpart {

Partition::Partition(const Hypergraph& h, std::uint32_t initial_blocks)
    : h_(&h) {
  FPART_REQUIRE(initial_blocks >= 1, "partition needs at least one block");
  FPART_REQUIRE(initial_blocks <= kMaxBlocks,
                "partition block count " + std::to_string(initial_blocks) +
                    " exceeds kMaxBlocks (" + std::to_string(kMaxBlocks) +
                    "); the pin-count arena would allocate O(nets*k)");
  FPART_REQUIRE(h.num_interior() >= 1, "circuit has no interior nodes");
  assignment_.assign(h.num_nodes(), kInvalidBlock);
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) assignment_[v] = 0;
  }
  size_.assign(initial_blocks, 0);
  pins_.assign(initial_blocks, 0);
  ext_.assign(initial_blocks, 0);
  node_count_.assign(initial_blocks, 0);
  k_cap_ = std::bit_ceil(initial_blocks);
  pin_count_.assign(static_cast<std::size_t>(h.num_nets()) * k_cap_, 0);
  net_span_.assign(h.num_nets(), 0);
  rebuild();
  obs::record_event(obs::EventKind::kInit, obs::Engine::kNone, initial_blocks,
                    0, 0, obs::kNoGain, h.num_nodes());
}

Partition::Partition(const Hypergraph& h,
                     std::span<const BlockId> assignment, std::uint32_t k)
    : Partition(h, k) {
  FPART_REQUIRE(assignment.size() == h.num_nodes(),
                "assignment size must match node count");
  if (obs::recorder_enabled()) {
    // Apply the assignment as incremental moves so each lands in the
    // event log with a correct resulting cut (the delegate constructor
    // above already recorded kInit for the all-zeros state).
    for (NodeId v = 0; v < h.num_nodes(); ++v) {
      if (h.is_terminal(v)) {
        FPART_REQUIRE(assignment[v] == kInvalidBlock,
                      "terminals must carry kInvalidBlock");
        continue;
      }
      FPART_REQUIRE(assignment[v] < k, "assignment block out of range");
      move(v, assignment[v]);
    }
    return;
  }
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (h.is_terminal(v)) {
      FPART_REQUIRE(assignment[v] == kInvalidBlock,
                    "terminals must carry kInvalidBlock");
      continue;
    }
    FPART_REQUIRE(assignment[v] < k, "assignment block out of range");
    assignment_[v] = assignment[v];
  }
  rebuild();
}

void Partition::grow_capacity(std::uint32_t needed) {
  std::uint32_t new_cap = k_cap_;
  while (new_cap < needed) new_cap *= 2;
  if (new_cap == k_cap_) return;
  const std::uint32_t k = num_blocks();
  std::vector<std::uint32_t> wide(
      static_cast<std::size_t>(h_->num_nets()) * new_cap, 0);
  for (NetId e = 0; e < h_->num_nets(); ++e) {
    std::copy_n(pin_count_.data() + static_cast<std::size_t>(e) * k_cap_, k,
                wide.data() + static_cast<std::size_t>(e) * new_cap);
  }
  pin_count_ = std::move(wide);
  k_cap_ = new_cap;
}

BlockId Partition::add_block() {
  FPART_REQUIRE(num_blocks() < kMaxBlocks,
                "add_block: partition already has kMaxBlocks (" +
                    std::to_string(kMaxBlocks) +
                    ") blocks; the pin-count arena cannot grow further");
  if (num_blocks() == k_cap_) grow_capacity(num_blocks() + 1);
  size_.push_back(0);
  pins_.push_back(0);
  ext_.push_back(0);
  node_count_.push_back(0);
  // Column num_blocks()-1 of every row is already zero (arena invariant),
  // so the Φ state needs no per-net work.
  const auto id = static_cast<BlockId>(size_.size() - 1);
  obs::record_event(obs::EventKind::kAddBlock, obs::Engine::kNone, id);
  return id;
}

void Partition::remove_last_block() {
  FPART_REQUIRE(num_blocks() > 1, "cannot remove the only block");
  FPART_REQUIRE(node_count_.back() == 0, "removed block must be empty");
  obs::record_event(obs::EventKind::kRemoveBlock, obs::Engine::kNone,
                    num_blocks() - 1);
  // An empty block has Φ(e,b) == 0 for every net, so dropping it leaves
  // the arena's zero-column invariant intact with no Φ work at all.
  size_.pop_back();
  pins_.pop_back();
  ext_.pop_back();
  node_count_.pop_back();
}

void Partition::swap_blocks(BlockId a, BlockId b) {
  FPART_REQUIRE(a < num_blocks() && b < num_blocks(),
                "swap_blocks: block out of range");
  if (a == b) return;
  obs::record_event(obs::EventKind::kSwapBlocks, obs::Engine::kNone, a, b);
  for (auto& blk : assignment_) {
    if (blk == a) {
      blk = b;
    } else if (blk == b) {
      blk = a;
    }
  }
  std::swap(size_[a], size_[b]);
  std::swap(pins_[a], pins_[b]);
  std::swap(ext_[a], ext_[b]);
  std::swap(node_count_[a], node_count_[b]);
  std::uint32_t* row = pin_count_.data();
  for (NetId e = 0; e < h_->num_nets(); ++e, row += k_cap_) {
    std::swap(row[a], row[b]);
  }
}

std::vector<NodeId> Partition::block_nodes(BlockId b) const {
  std::vector<NodeId> out;
  out.reserve(node_count_[b]);
  for (NodeId v = 0; v < h_->num_nodes(); ++v) {
    if (assignment_[v] == b) out.push_back(v);
  }
  return out;
}

std::uint32_t Partition::count_feasible(const Device& d) const {
  std::uint32_t n = 0;
  for (BlockId b = 0; b < num_blocks(); ++b) {
    if (block_feasible(b, d)) ++n;
  }
  return n;
}

FeasibilityClass Partition::classify(const Device& d) const {
  const std::uint32_t bad = num_blocks() - count_feasible(d);
  if (bad == 0) return FeasibilityClass::kFeasible;
  if (bad == 1) return FeasibilityClass::kSemiFeasible;
  return FeasibilityClass::kInfeasible;
}

Partition::Snapshot Partition::snapshot() const {
  return Snapshot{assignment_, num_blocks()};
}

void Partition::restore(const Snapshot& s) {
  FPART_REQUIRE(s.assignment.size() == assignment_.size(),
                "restore: snapshot from a different hypergraph");
  FPART_REQUIRE(s.num_blocks >= 1, "restore: empty snapshot");
  if (obs::recorder_enabled()) {
    // Replay the snapshot as a diff of ordinary mutations so the event
    // log stays a complete replay script: grow to the snapshot's block
    // count first (so every diff move has a valid target), then move the
    // differing nodes, then drop now-empty trailing blocks. Incremental
    // updates keep the state exact, so no rebuild is needed.
    std::uint32_t diffs = 0;
    for (NodeId v = 0; v < assignment_.size(); ++v) {
      if (assignment_[v] != s.assignment[v]) ++diffs;
    }
    obs::record_event(obs::EventKind::kRestore, obs::Engine::kNone, diffs,
                      s.num_blocks);
    while (num_blocks() < s.num_blocks) add_block();
    for (NodeId v = 0; v < assignment_.size(); ++v) {
      if (assignment_[v] != s.assignment[v]) move(v, s.assignment[v]);
    }
    while (num_blocks() > s.num_blocks) remove_last_block();
    return;
  }
  assignment_ = s.assignment;
  size_.assign(s.num_blocks, 0);
  pins_.assign(s.num_blocks, 0);
  ext_.assign(s.num_blocks, 0);
  node_count_.assign(s.num_blocks, 0);
  if (s.num_blocks > k_cap_) {
    k_cap_ = std::bit_ceil(s.num_blocks);
    pin_count_.assign(static_cast<std::size_t>(h_->num_nets()) * k_cap_, 0);
  }
  rebuild();
}

void Partition::rebuild() {
  const std::uint32_t k = num_blocks();
  std::fill(size_.begin(), size_.end(), 0);
  std::fill(pins_.begin(), pins_.end(), 0);
  std::fill(ext_.begin(), ext_.end(), 0);
  std::fill(node_count_.begin(), node_count_.end(), 0);
  cut_ = 0;
  km1_ = 0;

  for (NodeId v = 0; v < h_->num_nodes(); ++v) {
    if (h_->is_terminal(v)) continue;
    const BlockId b = assignment_[v];
    FPART_ASSERT_MSG(b < k, "node assigned to nonexistent block");
    size_[b] += h_->node_size(v);
    ++node_count_[b];
  }

  // One pass over the arena: zeroing the padding columns too keeps the
  // invariant that columns >= num_blocks() are zero.
  std::fill(pin_count_.begin(), pin_count_.end(), 0);
  std::uint32_t* arena = pin_count_.data();
  for (NetId e = 0; e < h_->num_nets(); ++e) {
    std::uint32_t* const row = arena + static_cast<std::size_t>(e) * k_cap_;
    for (NodeId v : h_->interior_pins(e)) ++row[assignment_[v]];
    std::uint32_t span = 0;
    for (BlockId b = 0; b < k; ++b) {
      if (row[b] > 0) ++span;
    }
    net_span_[e] = span;
    if (span >= 2) ++cut_;
    if (span >= 1) km1_ += span - 1;
    const std::uint32_t term = h_->net_terminal_count(e);
    for (BlockId b = 0; b < k; ++b) {
      if (requires_pin(e, b)) ++pins_[b];
      if (term > 0 && row[b] > 0) ext_[b] += term;
    }
  }
}

void Partition::check_consistency() const {
  Partition fresh(*h_, num_blocks());
  fresh.assignment_ = assignment_;
  fresh.rebuild();
  FPART_ASSERT_MSG(fresh.cut_ == cut_, "cut size diverged");
  FPART_ASSERT_MSG(fresh.km1_ == km1_, "K-1 connectivity diverged");
  FPART_ASSERT_MSG(fresh.size_ == size_, "block sizes diverged");
  FPART_ASSERT_MSG(fresh.pins_ == pins_, "block pin counts diverged");
  FPART_ASSERT_MSG(fresh.ext_ == ext_, "external pin counts diverged");
  FPART_ASSERT_MSG(fresh.node_count_ == node_count_, "node counts diverged");
  FPART_ASSERT_MSG(fresh.net_span_ == net_span_, "net spans diverged");
  // Arena strides may differ (fresh starts at bit_ceil(k)); compare the
  // logical Φ rows and check this partition's zero-column invariant.
  const std::uint32_t k = num_blocks();
  for (NetId e = 0; e < h_->num_nets(); ++e) {
    const std::uint32_t* mine = net_row(e);
    const std::uint32_t* theirs = fresh.net_row(e);
    for (BlockId b = 0; b < k; ++b) {
      FPART_ASSERT_MSG(mine[b] == theirs[b], "pin counts diverged");
    }
    for (std::uint32_t b = k; b < k_cap_; ++b) {
      FPART_ASSERT_MSG(mine[b] == 0,
                       "arena invariant violated: nonzero padding column");
    }
  }
}

}  // namespace fpart
