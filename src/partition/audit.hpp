// Inline invariant auditor.
//
// When enabled (FPART_AUDIT=1 in the environment, the CLI's --audit flag,
// or set_audit_enabled), engines call audit_partition() at every pass
// boundary. It recomputes the cut and every per-block quantity (S_j, T_j,
// T^E_j, node count) from scratch via verify_partition — which shares no
// code with the incremental Partition bookkeeping — and fails loudly with
// the offending flight-recorder event index on any divergence. Engines
// additionally cross-check their gain buckets against freshly computed
// move gains and report mismatches through audit_fail().
//
// The auditor is an O(n + pins) scan per pass, so it is a debug mode, not
// a production default; tier-1 integration tests and the fuzzer run with
// it enabled.
#pragma once

#include <string>

#include "partition/partition.hpp"

namespace fpart {

/// True when pass-boundary auditing is on. First use latches the
/// FPART_AUDIT environment variable; set_audit_enabled overrides.
bool audit_enabled();
void set_audit_enabled(bool enabled);

/// Recomputes cut / S_j / T_j / T^E_j / node counts from scratch and
/// compares them against p's incremental state. Throws InvariantError
/// naming `where` and the current flight-recorder event index (so a
/// recorded run pinpoints the first bad event) on divergence. Callers
/// are expected to gate on audit_enabled().
void audit_partition(const Partition& p, const char* where);

/// Shared failure path for engine-side audits (gain-bucket checks):
/// throws InvariantError with `where`, `detail`, and the current
/// flight-recorder event index.
[[noreturn]] void audit_fail(const char* where, const std::string& detail);

}  // namespace fpart
