// Post-partitioning analysis: board-level wiring demand.
//
// After a multi-FPGA partition, the board designer needs to know how
// many signals run between each pair of devices (cable/connector
// sizing — the concern behind the paper's pin constraint, and the whole
// game in the logic-emulation systems of [3]). This module derives the
// inter-block wiring matrix from a finished partition.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "partition/partition.hpp"

namespace fpart {

struct WiringMatrix {
  std::uint32_t k = 0;
  /// wires[a][b] = number of nets with interior pins in both a and b
  /// (symmetric, zero diagonal). A net spanning 3+ blocks counts toward
  /// every pair it touches (each pair needs the signal routed).
  std::vector<std::vector<std::uint32_t>> wires;
  /// Nets leaving each block toward pads (board connector demand).
  std::vector<std::uint32_t> pad_wires;

  std::uint32_t between(BlockId a, BlockId b) const { return wires[a][b]; }
  /// Total inter-device signal pairs (upper triangle sum).
  std::uint64_t total_wires() const;
  /// The heaviest device pair (kInvalidBlock pair when k < 2).
  std::pair<BlockId, BlockId> hottest_pair() const;

  /// Fixed-width ASCII rendering of the matrix.
  std::string to_ascii() const;
};

/// Computes the wiring matrix of `p`. O(E · span).
WiringMatrix wiring_matrix(const Partition& p);

}  // namespace fpart
