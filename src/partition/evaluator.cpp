#include "partition/evaluator.hpp"

#include <cmath>
#include <sstream>

namespace fpart {

namespace {
constexpr double kTol = 1e-9;
}

bool SolutionEval::better_than(const SolutionEval& other) const {
  if (feasible_blocks != other.feasible_blocks) {
    return feasible_blocks > other.feasible_blocks;
  }
  if (std::abs(distance - other.distance) > kTol) {
    return distance < other.distance;
  }
  if (total_pins != other.total_pins) {
    return total_pins < other.total_pins;
  }
  return ext_balance < other.ext_balance - kTol;
}

std::string SolutionEval::to_string() const {
  std::ostringstream os;
  os << "f=" << feasible_blocks << '/' << num_blocks << " d=" << distance
     << " Tsum=" << total_pins << " dE=" << ext_balance;
  return os.str();
}

SolutionEval Evaluator::evaluate(const Partition& p, BlockId remainder) const {
  SolutionEval e;
  e.num_blocks = p.num_blocks();
  e.feasible_blocks = p.count_feasible(device_);
  e.distance = solution_distance(p, device_, params_, remainder, lower_bound_);
  std::uint64_t t_sum = 0;
  for (BlockId b = 0; b < p.num_blocks(); ++b) t_sum += p.block_pins(b);
  e.total_pins = t_sum;
  e.ext_balance = params_.lambda_e * external_balance_factor(p, lower_bound_);
  return e;
}

}  // namespace fpart
