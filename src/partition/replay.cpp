#include "partition/replay.hpp"

#include <sstream>

namespace fpart {

std::uint64_t assignment_digest(std::span<const BlockId> assignment) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  for (const BlockId b : assignment) {
    std::uint32_t v = b;
    for (int i = 0; i < 4; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;  // FNV prime
    }
  }
  return h;
}

namespace {

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

}  // namespace

ReplayResult replay_event_log(const Hypergraph& h, const obs::EventLog& log,
                              bool check_moves) {
  using obs::EventKind;
  ReplayResult result;
  const auto error = [&result](std::uint64_t index, const std::string& msg) {
    std::ostringstream os;
    if (index != ReplayResult::kNoDivergence) os << "event " << index << ": ";
    os << msg;
    result.errors.push_back(os.str());
  };

  if (log.header.graph_digest != 0 &&
      log.header.graph_digest != h.structural_digest()) {
    error(ReplayResult::kNoDivergence,
          "hypergraph digest mismatch: log header has " +
              hex(log.header.graph_digest) + ", input graph has " +
              hex(h.structural_digest()) +
              " — this log was recorded against a different netlist");
    return result;
  }

  for (std::uint64_t i = 0; i < log.events.size(); ++i) {
    const obs::Event& e = log.events[i];
    switch (e.kind) {
      case EventKind::kInit: {
        if (e.value != h.num_nodes()) {
          error(i, "init event expects " + std::to_string(e.value) +
                       " nodes but the input graph has " +
                       std::to_string(h.num_nodes()) +
                       " — recorded on a different (e.g. clustered) graph");
          return result;
        }
        result.partition.emplace(h, e.a);
        ++result.mutations_applied;
        break;
      }
      case EventKind::kMove: {
        if (!result.partition) {
          error(i, "move before init");
          return result;
        }
        Partition& p = *result.partition;
        if (e.a >= h.num_nodes() || h.is_terminal(e.a)) {
          error(i, "move of invalid node " + std::to_string(e.a));
          return result;
        }
        if (e.c >= p.num_blocks()) {
          error(i, "move to nonexistent block " + std::to_string(e.c));
          return result;
        }
        if (check_moves && p.block_of(e.a) != e.b) {
          error(i, "node " + std::to_string(e.a) + " is in block " +
                       std::to_string(p.block_of(e.a)) +
                       " but the log says it moved from block " +
                       std::to_string(e.b));
          if (result.first_divergence == ReplayResult::kNoDivergence) {
            result.first_divergence = i;
          }
          return result;
        }
        p.move(e.a, e.c);
        ++result.mutations_applied;
        if (check_moves && p.cut_size() != e.value) {
          error(i, "cut diverged after moving node " + std::to_string(e.a) +
                       ": replay has " + std::to_string(p.cut_size()) +
                       ", log recorded " + std::to_string(e.value));
          if (result.first_divergence == ReplayResult::kNoDivergence) {
            result.first_divergence = i;
          }
          return result;
        }
        break;
      }
      case EventKind::kAddBlock: {
        if (!result.partition) {
          error(i, "add_block before init");
          return result;
        }
        const BlockId id = result.partition->add_block();
        ++result.mutations_applied;
        if (id != e.a) {
          error(i, "add_block produced block " + std::to_string(id) +
                       " but the log recorded " + std::to_string(e.a));
          return result;
        }
        break;
      }
      case EventKind::kRemoveBlock: {
        if (!result.partition) {
          error(i, "remove_block before init");
          return result;
        }
        result.partition->remove_last_block();
        ++result.mutations_applied;
        break;
      }
      case EventKind::kSwapBlocks: {
        if (!result.partition) {
          error(i, "swap_blocks before init");
          return result;
        }
        Partition& p = *result.partition;
        if (e.a >= p.num_blocks() || e.b >= p.num_blocks()) {
          error(i, "swap_blocks out of range");
          return result;
        }
        p.swap_blocks(e.a, e.b);
        ++result.mutations_applied;
        break;
      }
      default:
        break;  // semantic annotation — nothing to apply
    }
  }

  if (!result.partition) {
    error(ReplayResult::kNoDivergence, "log contains no init event");
    return result;
  }

  if (log.final_state) {
    const obs::FinalState& fin = *log.final_state;
    const Partition& p = *result.partition;
    if (fin.k != p.num_blocks()) {
      error(ReplayResult::kNoDivergence,
            "final block count diverged: replay has " +
                std::to_string(p.num_blocks()) + ", footer has " +
                std::to_string(fin.k));
    }
    if (fin.cut != p.cut_size()) {
      error(ReplayResult::kNoDivergence,
            "final cut diverged: replay has " + std::to_string(p.cut_size()) +
                ", footer has " + std::to_string(fin.cut));
    }
    if (fin.km1 != p.connectivity_km1()) {
      error(ReplayResult::kNoDivergence,
            "final K-1 diverged: replay has " +
                std::to_string(p.connectivity_km1()) + ", footer has " +
                std::to_string(fin.km1));
    }
    for (std::uint32_t b = 0; b < fin.blocks.size() && b < p.num_blocks();
         ++b) {
      if (fin.blocks[b].first != p.block_size(b) ||
          fin.blocks[b].second != p.block_pins(b)) {
        error(ReplayResult::kNoDivergence,
              "final block " + std::to_string(b) +
                  " diverged: replay has S=" +
                  std::to_string(p.block_size(b)) + " T=" +
                  std::to_string(p.block_pins(b)) + ", footer has S=" +
                  std::to_string(fin.blocks[b].first) + " T=" +
                  std::to_string(fin.blocks[b].second));
      }
    }
    const std::uint64_t digest = assignment_digest(p.assignment());
    if (fin.assignment_digest != 0 && fin.assignment_digest != digest) {
      error(ReplayResult::kNoDivergence,
            "assignment digest diverged: replay has " + hex(digest) +
                ", footer has " + hex(fin.assignment_digest));
    }
  }

  result.ok = result.errors.empty();
  return result;
}

}  // namespace fpart
