#include "partition/analysis.hpp"

#include <algorithm>
#include <sstream>

namespace fpart {

std::uint64_t WiringMatrix::total_wires() const {
  std::uint64_t sum = 0;
  for (BlockId a = 0; a < k; ++a) {
    for (BlockId b = a + 1; b < k; ++b) sum += wires[a][b];
  }
  return sum;
}

std::pair<BlockId, BlockId> WiringMatrix::hottest_pair() const {
  std::pair<BlockId, BlockId> best{kInvalidBlock, kInvalidBlock};
  std::uint32_t hottest = 0;
  for (BlockId a = 0; a < k; ++a) {
    for (BlockId b = a + 1; b < k; ++b) {
      if (best.first == kInvalidBlock || wires[a][b] > hottest) {
        best = {a, b};
        hottest = wires[a][b];
      }
    }
  }
  return best;
}

std::string WiringMatrix::to_ascii() const {
  std::ostringstream os;
  std::size_t width = 4;
  for (const auto& row : wires) {
    for (std::uint32_t w : row) {
      width = std::max(width, std::to_string(w).size() + 1);
    }
  }
  os << std::string(width, ' ');
  for (BlockId b = 0; b < k; ++b) {
    std::string head = "b" + std::to_string(b);
    os << std::string(width - head.size(), ' ') << head;
  }
  os << "  pads\n";
  for (BlockId a = 0; a < k; ++a) {
    std::string head = "b" + std::to_string(a);
    os << head << std::string(width - head.size(), ' ');
    for (BlockId b = 0; b < k; ++b) {
      const std::string cell =
          a == b ? "." : std::to_string(wires[a][b]);
      os << std::string(width - cell.size(), ' ') << cell;
    }
    os << "  " << pad_wires[a] << '\n';
  }
  return os.str();
}

WiringMatrix wiring_matrix(const Partition& p) {
  const Hypergraph& h = p.graph();
  WiringMatrix out;
  out.k = p.num_blocks();
  out.wires.assign(out.k, std::vector<std::uint32_t>(out.k, 0));
  out.pad_wires.assign(out.k, 0);

  std::vector<BlockId> touched;
  for (NetId e = 0; e < h.num_nets(); ++e) {
    touched.clear();
    for (BlockId b = 0; b < out.k; ++b) {
      if (p.net_pins_in(e, b) > 0) touched.push_back(b);
    }
    for (std::size_t i = 0; i < touched.size(); ++i) {
      for (std::size_t j = i + 1; j < touched.size(); ++j) {
        ++out.wires[touched[i]][touched[j]];
        ++out.wires[touched[j]][touched[i]];
      }
    }
    if (h.net_terminal_count(e) > 0) {
      for (BlockId b : touched) ++out.pad_wires[b];
    }
  }
  return out;
}

}  // namespace fpart
