// k-way partition state with incremental statistics (paper §2's model).
//
// Every interior node is assigned to exactly one block at all times; the
// partition starts with all nodes in block 0 (FPART treats block 0 as the
// remainder throughout Algorithm 1). Each node move updates, in
// O(degree(v)) time:
//
//   * per-net, per-block interior pin counts Φ(e,b),
//   * per-net interior span (number of blocks with Φ > 0),
//   * cutset size C = #nets with span >= 2,
//   * per-block size S_b,
//   * per-block I/O pin demand T_b  (nets requiring a pin on b: Φ(e,b)>=1
//     and (net has terminals or Φ(e,b) < P(e))),
//   * per-block external I/O count T^E_b (terminal pads on nets touching
//     b — the paper's assignment of Y0 pads to "one or more" blocks).
//
// Φ(e,b) lives in one flat arena indexed [e * k_capacity() + b]. The
// capacity is a power of two that only grows (doubling), so add_block()
// is O(1) amortized-O(nets) instead of O(nets) pointer-chasing pushes,
// and the move kernel reads each net's counters from one contiguous row.
// Columns in [num_blocks, k_capacity) are kept zero at all times; this
// makes remove_last_block() free and lets rebuild() clear the arena with
// a single fill.
//
// The same quantities can be recomputed from scratch (rebuild()); the
// property tests diff incremental against recomputed state after random
// move/add_block/swap/restore sequences.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "device/device.hpp"
#include "hypergraph/hypergraph.hpp"
#include "obs/recorder.hpp"
#include "util/assert.hpp"

namespace fpart {

/// Feasibility class of a whole partition w.r.t. a device (paper §2).
enum class FeasibilityClass {
  kFeasible,      // every block meets constraints
  kSemiFeasible,  // exactly one block violates them
  kInfeasible,    // two or more blocks violate them
};

class Partition {
 public:
  /// Upper bound on num_blocks(), enforced by the constructors and
  /// add_block(). Caps the arena at num_nets * 2^16 counters so a bad k
  /// fails with a diagnostic instead of silently allocating O(nets·k)
  /// memory.
  static constexpr std::uint32_t kMaxBlocks = 65536;

  /// All interior nodes of `h` start in block 0. `h` must outlive *this.
  explicit Partition(const Hypergraph& h, std::uint32_t initial_blocks = 1);

  /// Builds a partition directly from a per-node assignment (interior
  /// nodes in [0, k); terminals kInvalidBlock — as in
  /// PartitionResult::assignment). O(n + pins).
  Partition(const Hypergraph& h, std::span<const BlockId> assignment,
            std::uint32_t k);

  const Hypergraph& graph() const { return *h_; }
  std::uint32_t num_blocks() const {
    return static_cast<std::uint32_t>(size_.size());
  }
  /// Current arena row stride (power of two, >= num_blocks()).
  std::uint32_t k_capacity() const { return k_cap_; }

  // --- Mutation -----------------------------------------------------------
  /// Appends a new empty block; returns its id. O(1) unless the arena
  /// capacity doubles (amortized O(nets) across a growth sequence).
  BlockId add_block();

  /// Removes the last block. It must be empty.
  void remove_last_block();

  /// Exchanges the identities of two blocks (O(nodes + nets)). Used to
  /// keep the remainder at a stable id while dropping temporary blocks.
  void swap_blocks(BlockId a, BlockId b);

  /// Moves interior node v to block `to` (no-op if already there).
  void move(NodeId v, BlockId to) { move(v, to, [](NetId, std::uint32_t, std::uint32_t, std::uint32_t) {}); }

  /// Fused move kernel: updates all incremental statistics and invokes
  /// `visit(e, total, old_f, old_t)` once per incident net AFTER that
  /// net's arena row has been updated. `total` is the net's interior pin
  /// count; `old_f`/`old_t` are Φ(e,from)/Φ(e,to) BEFORE the move. Gain
  /// maintenance (FM delta-gain updates) rides along in the visitor so
  /// each net row is touched exactly once per move.
  template <class NetVisitor>
  void move(NodeId v, BlockId to, NetVisitor&& visit) {
    FPART_REQUIRE(v < h_->num_nodes() && !h_->is_terminal(v),
                  "move: not an interior node");
    FPART_REQUIRE(to < num_blocks(), "move: target block out of range");
    const BlockId from = assignment_[v];
    if (from == to) return;

    const Hypergraph& h = *h_;
    std::uint32_t* const arena = pin_count_.data();
    const std::size_t cap = k_cap_;
    for (NetId e : h.nets(v)) {
      std::uint32_t* const row = arena + static_cast<std::size_t>(e) * cap;
      const std::uint32_t term = h.net_terminal_count(e);
      const std::uint32_t total = h.net_interior_pin_count(e);
      const std::uint32_t old_f = row[from];
      const std::uint32_t old_t = row[to];

      const bool req_f_old = old_f >= 1 && (term > 0 || old_f < total);
      const bool req_t_old = old_t >= 1 && (term > 0 || old_t < total);

      row[from] = old_f - 1;
      row[to] = old_t + 1;

      const std::uint32_t new_f = old_f - 1;
      const std::uint32_t new_t = old_t + 1;
      const bool req_f_new = new_f >= 1 && (term > 0 || new_f < total);
      const bool req_t_new = new_t >= 1 && (term > 0 || new_t < total);

      // Span and cutset.
      const std::uint32_t old_span = net_span_[e];
      std::uint32_t new_span = old_span;
      if (old_f == 1) --new_span;
      if (old_t == 0) ++new_span;
      if (new_span != old_span) {
        net_span_[e] = new_span;
        if (old_span >= 2 && new_span < 2) --cut_;
        if (old_span < 2 && new_span >= 2) ++cut_;
        km1_ += (new_span >= 1 ? new_span - 1 : 0);
        km1_ -= (old_span >= 1 ? old_span - 1 : 0);
      }

      // Pin demand.
      if (req_f_old && !req_f_new) --pins_[from];
      if (!req_f_old && req_f_new) ++pins_[from];
      if (req_t_old && !req_t_new) --pins_[to];
      if (!req_t_old && req_t_new) ++pins_[to];

      // External terminal assignment.
      if (term > 0) {
        if (old_f == 1) ext_[from] -= term;  // from-block loses the net
        if (old_t == 0) ext_[to] += term;    // to-block gains the net
      }

      visit(e, total, old_f, old_t);
    }

    const std::uint32_t s = h.node_size(v);
    size_[from] -= s;
    size_[to] += s;
    --node_count_[from];
    ++node_count_[to];
    assignment_[v] = to;

    if (obs::recorder_enabled()) {
      auto& rec = obs::Recorder::instance();
      rec.record(obs::Event{obs::EventKind::kMove, obs::Engine::kNone, v,
                            from, to, rec.take_staged_gain(), cut_});
    }
  }

  // --- Queries ------------------------------------------------------------
  BlockId block_of(NodeId v) const { return assignment_[v]; }
  /// Full per-node assignment (terminals carry kInvalidBlock).
  std::span<const BlockId> assignment() const { return assignment_; }
  std::uint64_t block_size(BlockId b) const { return size_[b]; }
  /// I/O pin demand T_b of block b.
  std::uint64_t block_pins(BlockId b) const { return pins_[b]; }
  /// External primary I/Os T^E_b assigned to block b.
  std::uint64_t block_external_pins(BlockId b) const { return ext_[b]; }
  /// Number of interior nodes in block b.
  std::uint32_t block_node_count(BlockId b) const { return node_count_[b]; }
  /// Cutset size: nets whose interior pins span >= 2 blocks.
  std::uint64_t cut_size() const { return cut_; }

  /// Connectivity (K−1) metric: Σ over nets of (interior span − 1) — the
  /// standard multiway alternative to the cut-net count, proportional to
  /// the number of inter-device signal copies a router must realize.
  std::uint64_t connectivity_km1() const { return km1_; }

  /// Interior pin count Φ(e,b).
  std::uint32_t net_pins_in(NetId e, BlockId b) const {
    return pin_count_[static_cast<std::size_t>(e) * k_cap_ + b];
  }
  /// Net e's arena row: Φ(e,·) for blocks [0, num_blocks()). Contiguous;
  /// entries at [num_blocks(), k_capacity()) are zero. The gain kernels
  /// scan rows directly instead of calling net_pins_in per block.
  const std::uint32_t* net_row(NetId e) const {
    return pin_count_.data() + static_cast<std::size_t>(e) * k_cap_;
  }
  /// Number of blocks net e's interior pins span.
  std::uint32_t net_span(NetId e) const { return net_span_[e]; }

  /// Interior nodes currently in block b (O(num_nodes) scan).
  std::vector<NodeId> block_nodes(BlockId b) const;

  // --- Feasibility --------------------------------------------------------
  bool block_feasible(BlockId b, const Device& d) const {
    return d.size_ok(size_[b]) && d.pins_ok(pins_[b]);
  }
  std::uint32_t count_feasible(const Device& d) const;
  FeasibilityClass classify(const Device& d) const;

  // --- Snapshots ----------------------------------------------------------
  struct Snapshot {
    std::vector<BlockId> assignment;
    std::uint32_t num_blocks = 0;
  };
  Snapshot snapshot() const;
  /// Restores a snapshot taken from the same hypergraph. O(n + pins).
  void restore(const Snapshot& s);

  /// Recomputes all statistics from the assignment (oracle / restore
  /// path). Also used by tests to cross-check the incremental updates.
  void rebuild();

  /// Verifies incremental state against a fresh recompute; throws
  /// InvariantError on divergence. Test hook. Also checks the arena
  /// invariant that columns >= num_blocks() are zero.
  void check_consistency() const;

 private:
  bool requires_pin(NetId e, BlockId b) const {
    const std::uint32_t phi = net_pins_in(e, b);
    return phi >= 1 && (h_->net_terminal_count(e) > 0 ||
                        phi < h_->net_interior_pin_count(e));
  }

  /// Doubles the arena stride until it holds `needed` blocks, copying
  /// each net's logical row into the widened layout.
  void grow_capacity(std::uint32_t needed);

  const Hypergraph* h_;
  std::vector<BlockId> assignment_;  // per node (terminals: invalid)
  // Flat Φ arena: pin_count_[e * k_cap_ + b]. Size num_nets * k_cap_.
  std::vector<std::uint32_t> pin_count_;
  std::uint32_t k_cap_ = 0;  // power-of-two row stride
  std::vector<std::uint32_t> net_span_;
  std::uint64_t cut_ = 0;
  std::uint64_t km1_ = 0;
  std::vector<std::uint64_t> size_;
  std::vector<std::uint64_t> pins_;
  std::vector<std::uint64_t> ext_;
  std::vector<std::uint32_t> node_count_;
};

}  // namespace fpart
