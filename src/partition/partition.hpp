// k-way partition state with incremental statistics (paper §2's model).
//
// Every interior node is assigned to exactly one block at all times; the
// partition starts with all nodes in block 0 (FPART treats block 0 as the
// remainder throughout Algorithm 1). Each node move updates, in
// O(degree(v)) time:
//
//   * per-net, per-block interior pin counts Φ(e,b),
//   * per-net interior span (number of blocks with Φ > 0),
//   * cutset size C = #nets with span >= 2,
//   * per-block size S_b,
//   * per-block I/O pin demand T_b  (nets requiring a pin on b: Φ(e,b)>=1
//     and (net has terminals or Φ(e,b) < P(e))),
//   * per-block external I/O count T^E_b (terminal pads on nets touching
//     b — the paper's assignment of Y0 pads to "one or more" blocks).
//
// The same quantities can be recomputed from scratch (rebuild()); the
// property tests diff incremental against recomputed state after random
// move sequences.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "device/device.hpp"
#include "hypergraph/hypergraph.hpp"

namespace fpart {

/// Feasibility class of a whole partition w.r.t. a device (paper §2).
enum class FeasibilityClass {
  kFeasible,      // every block meets constraints
  kSemiFeasible,  // exactly one block violates them
  kInfeasible,    // two or more blocks violate them
};

class Partition {
 public:
  /// All interior nodes of `h` start in block 0. `h` must outlive *this.
  explicit Partition(const Hypergraph& h, std::uint32_t initial_blocks = 1);

  /// Builds a partition directly from a per-node assignment (interior
  /// nodes in [0, k); terminals kInvalidBlock — as in
  /// PartitionResult::assignment). O(n + pins).
  Partition(const Hypergraph& h, std::span<const BlockId> assignment,
            std::uint32_t k);

  const Hypergraph& graph() const { return *h_; }
  std::uint32_t num_blocks() const {
    return static_cast<std::uint32_t>(size_.size());
  }

  // --- Mutation -----------------------------------------------------------
  /// Appends a new empty block; returns its id.
  BlockId add_block();

  /// Removes the last block. It must be empty.
  void remove_last_block();

  /// Exchanges the identities of two blocks (O(nodes + nets)). Used to
  /// keep the remainder at a stable id while dropping temporary blocks.
  void swap_blocks(BlockId a, BlockId b);

  /// Moves interior node v to block `to` (no-op if already there).
  void move(NodeId v, BlockId to);

  // --- Queries ------------------------------------------------------------
  BlockId block_of(NodeId v) const { return assignment_[v]; }
  /// Full per-node assignment (terminals carry kInvalidBlock).
  std::span<const BlockId> assignment() const { return assignment_; }
  std::uint64_t block_size(BlockId b) const { return size_[b]; }
  /// I/O pin demand T_b of block b.
  std::uint64_t block_pins(BlockId b) const { return pins_[b]; }
  /// External primary I/Os T^E_b assigned to block b.
  std::uint64_t block_external_pins(BlockId b) const { return ext_[b]; }
  /// Number of interior nodes in block b.
  std::uint32_t block_node_count(BlockId b) const { return node_count_[b]; }
  /// Cutset size: nets whose interior pins span >= 2 blocks.
  std::uint64_t cut_size() const { return cut_; }

  /// Connectivity (K−1) metric: Σ over nets of (interior span − 1) — the
  /// standard multiway alternative to the cut-net count, proportional to
  /// the number of inter-device signal copies a router must realize.
  std::uint64_t connectivity_km1() const { return km1_; }

  /// Interior pin count Φ(e,b).
  std::uint32_t net_pins_in(NetId e, BlockId b) const {
    return pin_count_[e][b];
  }
  /// Number of blocks net e's interior pins span.
  std::uint32_t net_span(NetId e) const { return net_span_[e]; }

  /// Interior nodes currently in block b (O(num_nodes) scan).
  std::vector<NodeId> block_nodes(BlockId b) const;

  // --- Feasibility --------------------------------------------------------
  bool block_feasible(BlockId b, const Device& d) const {
    return d.size_ok(size_[b]) && d.pins_ok(pins_[b]);
  }
  std::uint32_t count_feasible(const Device& d) const;
  FeasibilityClass classify(const Device& d) const;

  // --- Snapshots ----------------------------------------------------------
  struct Snapshot {
    std::vector<BlockId> assignment;
    std::uint32_t num_blocks = 0;
  };
  Snapshot snapshot() const;
  /// Restores a snapshot taken from the same hypergraph. O(n + pins).
  void restore(const Snapshot& s);

  /// Recomputes all statistics from the assignment (oracle / restore
  /// path). Also used by tests to cross-check the incremental updates.
  void rebuild();

  /// Verifies incremental state against a fresh recompute; throws
  /// InvariantError on divergence. Test hook.
  void check_consistency() const;

 private:
  bool requires_pin(NetId e, BlockId b) const {
    const std::uint32_t phi = pin_count_[e][b];
    return phi >= 1 && (h_->net_terminal_count(e) > 0 ||
                        phi < h_->net_interior_pin_count(e));
  }

  const Hypergraph* h_;
  std::vector<BlockId> assignment_;             // per node (terminals: invalid)
  std::vector<std::vector<std::uint32_t>> pin_count_;  // [net][block]
  std::vector<std::uint32_t> net_span_;
  std::uint64_t cut_ = 0;
  std::uint64_t km1_ = 0;
  std::vector<std::uint64_t> size_;
  std::vector<std::uint64_t> pins_;
  std::vector<std::uint64_t> ext_;
  std::vector<std::uint32_t> node_count_;
};

}  // namespace fpart
