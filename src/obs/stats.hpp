// Process-wide statistics registry: named monotonic counters and value
// histograms for the partitioning stack.
//
// Design constraints (the hot paths live inside FM/Sanchis inner loops):
//   * increments are header-only and cost one relaxed atomic add when
//     stats are enabled;
//   * when disabled, an increment is a single relaxed bool load and a
//     predictable branch (and compiles out entirely under
//     FPART_OBS_DISABLE);
//   * registration happens once per call site via a function-local
//     static reference, so the registry mutex is off the hot path.
//
// Counter naming convention: "<layer>.<event>", e.g. "fm.moves_accepted",
// "sanchis.pass_gain", "flow.augmenting_paths", "fpart.iterations" — see
// docs/OBSERVABILITY.md for the full catalog.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fpart::obs {

namespace detail {
extern std::atomic<bool> g_stats_enabled;
}

/// True when counters/histograms/phase timers record. Relaxed load: the
/// flag is a coarse on/off knob flipped by drivers, not a sync point.
inline bool stats_enabled() {
  return detail::g_stats_enabled.load(std::memory_order_relaxed);
}

/// Flips stat collection for the whole process.
void set_stats_enabled(bool enabled);

/// A monotonically increasing counter. Thread-safe (relaxed atomics).
class Counter {
 public:
  void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A value histogram: count/sum/min/max plus power-of-two magnitude
/// buckets (bucket i holds values v with bit_width(max(v,0)) == i,
/// saturating at the last bucket). Thread-safe (relaxed atomics).
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 24;

  void record(std::int64_t v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Min/max over recorded values; 0 when empty.
  std::int64_t min() const;
  std::int64_t max() const;
  double mean() const;
  std::uint64_t bucket(std::size_t i) const;

  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{0};
  std::atomic<std::int64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::vector<std::uint64_t> buckets;
};

/// Quantile estimate (q in [0,1]) from a histogram snapshot's
/// power-of-two buckets: nearest-rank selection of the bucket, linear
/// interpolation across the bucket's value range, clamped to the exact
/// recorded [min, max]. Deterministic; 0 for an empty histogram. Run
/// reports emit p50/p90/p99 through this.
double histogram_quantile(const HistogramSnapshot& h, double q);

/// The process-wide registry. Lookup is mutex-guarded; returned
/// references stay valid for the process lifetime, so call sites cache
/// them (the FPART_COUNTER_* macros do this automatically).
class StatsRegistry {
 public:
  static StatsRegistry& instance();

  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zeroes every registered counter and histogram (names stay
  /// registered — cached references remain valid).
  void reset();

  /// Point-in-time copies, sorted by name for deterministic output.
  std::vector<CounterSnapshot> counters() const;
  std::vector<HistogramSnapshot> histograms() const;

 private:
  StatsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace fpart::obs

#if defined(FPART_OBS_DISABLE)

#define FPART_COUNTER_ADD(name, n) ((void)0)
#define FPART_COUNTER_INC(name) ((void)0)
#define FPART_HISTOGRAM_RECORD(name, v) ((void)0)

#else

/// Adds `n` to the named counter when stats are enabled. The registry
/// lookup runs at most once per call site (function-local static).
#define FPART_COUNTER_ADD(name, n)                                     \
  do {                                                                 \
    if (::fpart::obs::stats_enabled()) {                               \
      static ::fpart::obs::Counter& fpart_obs_counter_ref_ =           \
          ::fpart::obs::StatsRegistry::instance().counter(name);       \
      fpart_obs_counter_ref_.add(static_cast<std::uint64_t>(n));       \
    }                                                                  \
  } while (0)

#define FPART_COUNTER_INC(name) FPART_COUNTER_ADD(name, 1)

/// Records `v` into the named histogram when stats are enabled.
#define FPART_HISTOGRAM_RECORD(name, v)                                \
  do {                                                                 \
    if (::fpart::obs::stats_enabled()) {                               \
      static ::fpart::obs::Histogram& fpart_obs_hist_ref_ =            \
          ::fpart::obs::StatsRegistry::instance().histogram(name);     \
      fpart_obs_hist_ref_.record(static_cast<std::int64_t>(v));        \
    }                                                                  \
  } while (0)

#endif  // FPART_OBS_DISABLE
