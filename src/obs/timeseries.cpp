#include "obs/timeseries.hpp"

#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "util/assert.hpp"

namespace fpart::obs {

namespace detail {
thread_local bool t_timeseries_enabled = false;
thread_local TimeSeries* t_current_timeseries = nullptr;
}  // namespace detail

TimeSeries* install_timeseries(TimeSeries* ts) {
  TimeSeries* prev = detail::t_current_timeseries;
  detail::t_current_timeseries = ts;
  return prev;
}

TimeSeries& TimeSeries::instance() {
  if (detail::t_current_timeseries != nullptr) {
    return *detail::t_current_timeseries;
  }
  static TimeSeries* series = new TimeSeries();  // leaked: process lifetime
  return *series;
}

void TimeSeries::start(TimeSeriesConfig config) {
  config_ = config;
  if (config_.capacity == 0) config_.capacity = 1;
  ring_.assign(config_.capacity, Sample{});
  total_ = 0;
  moves_since_window_ = 0;
  start_time_ = std::chrono::steady_clock::now();
  detail::t_timeseries_enabled = true;
}

void TimeSeries::stop() { detail::t_timeseries_enabled = false; }

void TimeSeries::reset() {
  stop();
  config_ = TimeSeriesConfig{};
  ring_.assign(1, Sample{});
  ring_.shrink_to_fit();
  total_ = 0;
  moves_since_window_ = 0;
}

std::vector<Sample> TimeSeries::snapshot() const {
  const std::size_t n = size();
  std::vector<Sample> out;
  out.reserve(n);
  // Oldest retained sample: where the next push would overwrite.
  const std::size_t begin =
      total_ > ring_.size()
          ? static_cast<std::size_t>(total_ % ring_.size())
          : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(begin + i) % ring_.size()]);
  }
  return out;
}

TimeSeriesDoc TimeSeries::doc() const {
  TimeSeriesDoc d;
  d.config = config_;
  d.total = total_samples();
  d.dropped = dropped();
  d.samples = snapshot();
  return d;
}

bool deterministic_equal(const Sample& a, const Sample& b) {
  return a.kind == b.kind && a.engine == b.engine && a.pass == b.pass &&
         a.cut == b.cut && a.best == b.best &&
         a.feasible_blocks == b.feasible_blocks && a.blocks == b.blocks &&
         a.moves == b.moves && a.rolled_back == b.rolled_back &&
         a.occupancy == b.occupancy;
}

const char* sample_kind_name(SampleKind kind) {
  return kind == SampleKind::kWindow ? "window" : "pass";
}

namespace {

SampleKind parse_kind(const std::string& name, std::size_t index) {
  if (name == "pass") return SampleKind::kPass;
  if (name == "window") return SampleKind::kWindow;
  FPART_REQUIRE(false, "timeseries sample " + std::to_string(index) +
                           ": unknown kind '" + name + "'");
  return SampleKind::kPass;  // unreachable
}

Engine parse_engine(const std::string& name, std::size_t index) {
  if (name == "none") return Engine::kNone;
  for (int i = 1; i < 16; ++i) {
    const Engine e = static_cast<Engine>(i);
    const std::string_view n = engine_name(e);
    if (n == "none") break;  // past the last named engine
    if (name == n) return e;
  }
  FPART_REQUIRE(false, "timeseries sample " + std::to_string(index) +
                           ": unknown engine '" + name + "'");
  return Engine::kNone;  // unreachable
}

std::uint64_t require_u64(const JsonValue& obj, const char* key,
                          std::size_t index) {
  const JsonValue* v = obj.find(key);
  FPART_REQUIRE(v != nullptr && v->is_number(),
                "timeseries sample " + std::to_string(index) +
                    ": missing numeric key '" + key + "'");
  return v->as_u64();
}

}  // namespace

std::string timeseries_json(const TimeSeriesDoc& doc, bool include_timing) {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kTimeSeriesSchema);
  w.key("capacity");
  w.value(static_cast<std::uint64_t>(doc.config.capacity));
  w.key("move_interval");
  w.value(doc.config.move_interval);
  w.key("total_samples");
  w.value(doc.total);
  w.key("dropped");
  w.value(doc.dropped);
  w.key("samples");
  w.begin_array();
  for (const Sample& s : doc.samples) {
    w.begin_object();
    w.key("kind");
    w.value(sample_kind_name(s.kind));
    w.key("engine");
    w.value(engine_name(s.engine));
    w.key("pass");
    w.value(s.pass);
    w.key("cut");
    w.value(s.cut);
    w.key("best");
    w.value(s.best);
    w.key("feasible_blocks");
    w.value(s.feasible_blocks);
    w.key("blocks");
    w.value(s.blocks);
    w.key("moves");
    w.value(s.moves);
    w.key("rolled_back");
    w.value(s.rolled_back);
    w.key("occupancy");
    w.value(s.occupancy);
    if (include_timing) {
      w.key("seconds");
      w.value(s.seconds);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

TimeSeriesDoc parse_timeseries(const std::string& text) {
  const auto parsed = json_parse(text);
  FPART_REQUIRE(parsed.has_value(), "timeseries document: invalid JSON");
  const JsonValue* doc = &*parsed;
  FPART_REQUIRE(doc->is_object(), "timeseries document: not an object");

  // Accept a whole run report: dig out its "timeseries" section.
  const JsonValue* schema = doc->find("schema");
  if (schema != nullptr && schema->is_string() &&
      schema->string != kTimeSeriesSchema) {
    const JsonValue* section = doc->find("timeseries");
    FPART_REQUIRE(section != nullptr && section->is_object(),
                  "document has schema '" + schema->string +
                      "' and no timeseries section");
    doc = section;
    schema = doc->find("schema");
  }
  FPART_REQUIRE(schema != nullptr && schema->is_string() &&
                    schema->string == kTimeSeriesSchema,
                "unsupported timeseries schema (want " +
                    std::string(kTimeSeriesSchema) + ")");

  TimeSeriesDoc out;
  out.config.capacity =
      static_cast<std::size_t>(require_u64(*doc, "capacity", 0));
  out.config.move_interval =
      static_cast<std::uint32_t>(require_u64(*doc, "move_interval", 0));
  out.total = require_u64(*doc, "total_samples", 0);
  out.dropped = require_u64(*doc, "dropped", 0);

  const JsonValue* samples = doc->find("samples");
  FPART_REQUIRE(samples != nullptr && samples->is_array(),
                "timeseries document: missing samples array");
  out.samples.reserve(samples->array.size());
  for (std::size_t i = 0; i < samples->array.size(); ++i) {
    const JsonValue& sj = samples->array[i];
    FPART_REQUIRE(sj.is_object(),
                  "timeseries sample " + std::to_string(i) +
                      ": not an object");
    Sample s;
    const JsonValue* kind = sj.find("kind");
    FPART_REQUIRE(kind != nullptr && kind->is_string(),
                  "timeseries sample " + std::to_string(i) +
                      ": missing kind");
    s.kind = parse_kind(kind->string, i);
    const JsonValue* engine = sj.find("engine");
    FPART_REQUIRE(engine != nullptr && engine->is_string(),
                  "timeseries sample " + std::to_string(i) +
                      ": missing engine");
    s.engine = parse_engine(engine->string, i);
    s.pass = static_cast<std::uint32_t>(require_u64(sj, "pass", i));
    s.cut = require_u64(sj, "cut", i);
    s.best = require_u64(sj, "best", i);
    s.feasible_blocks =
        static_cast<std::uint32_t>(require_u64(sj, "feasible_blocks", i));
    s.blocks = static_cast<std::uint32_t>(require_u64(sj, "blocks", i));
    s.moves = static_cast<std::uint32_t>(require_u64(sj, "moves", i));
    s.rolled_back =
        static_cast<std::uint32_t>(require_u64(sj, "rolled_back", i));
    s.occupancy =
        static_cast<std::uint32_t>(require_u64(sj, "occupancy", i));
    if (const JsonValue* sec = sj.find("seconds");
        sec != nullptr && sec->is_number()) {
      s.seconds = sec->number;
    }
    out.samples.push_back(s);
  }
  return out;
}

TimeSeriesDoc read_timeseries(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  FPART_REQUIRE(is.good(), "cannot read timeseries file " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse_timeseries(buf.str());
}

}  // namespace fpart::obs
