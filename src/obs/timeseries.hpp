// Convergence telemetry time-series: a pre-sized ring-buffer sampler
// that captures how each engine converges — per-pass samples at every
// FM/Sanchis/FBB/kwayx/clustered pass boundary, plus optional
// per-N-moves "window" samples inside the FM and Sanchis move loops.
//
// Each sample is a small POD (cut, best metric, feasible-block count,
// gain-bucket occupancy, moves, rollback depth, elapsed seconds); the
// series serializes as a versioned `fpart-timeseries/1` JSON document,
// embedded in run reports and rendered by `fpart_inspect convergence`.
//
// Overhead discipline matches the flight recorder: when disabled, a
// sample is one thread-local bool load and a predictable branch; when
// enabled it is a store into a pre-sized ring (no allocation, no
// atomics, no formatting on the hot path). The ring never grows: once
// full, new samples overwrite the oldest and `dropped()` counts the
// overwritten ones, so capacity bounds memory for arbitrarily long runs.
//
// Sampling is strictly per-thread — "lock-free" because each series has
// exactly one writer. instance() resolves to the calling thread's
// installed series (install_timeseries / ScopedTimeSeriesInstall),
// falling back to a process-wide default, so parallel portfolio
// attempts each collect a private convergence curve exactly like they
// keep private event logs. See docs/OBSERVABILITY.md.
//
// Determinism contract: every sample field except `seconds` is a pure
// function of the partitioning run (same seed -> identical values), and
// serialization can exclude the timing field (include_timing=false) so
// byte-identical comparison of same-seed series is testable. The
// sampler only reads partition state; enabling it cannot perturb
// results, event logs, or digests.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/recorder.hpp"  // obs::Engine

namespace fpart::obs {

inline constexpr const char* kTimeSeriesSchema = "fpart-timeseries/1";

/// When the sample was taken: at a pass/iteration boundary, or inside a
/// move loop every `move_interval` moves (a "window" sample).
enum class SampleKind : std::uint8_t {
  kPass = 0,
  kWindow,
};

/// One point on a convergence curve. All fields except `seconds` are
/// deterministic for a fixed seed.
struct Sample {
  SampleKind kind = SampleKind::kPass;
  Engine engine = Engine::kNone;
  std::uint32_t pass = 0;             // 1-based pass / iteration index
  std::uint64_t cut = 0;              // current cut size
  std::uint64_t best = 0;             // best metric so far (engine units)
  std::uint32_t feasible_blocks = 0;  // 0 when the engine has no device
  std::uint32_t blocks = 0;           // current block count k
  std::uint32_t moves = 0;            // moves attempted this pass so far
  std::uint32_t rolled_back = 0;      // moves undone by rollback-to-best
  std::uint32_t occupancy = 0;        // total gain-bucket entries
  double seconds = 0.0;               // elapsed since start() (wall)
};

/// Field-wise equality over the deterministic fields (ignores seconds).
bool deterministic_equal(const Sample& a, const Sample& b);

struct TimeSeriesConfig {
  /// Ring capacity in samples; the buffer is pre-sized at start() and
  /// never reallocates afterwards.
  std::size_t capacity = 4096;
  /// Take a window sample every N attempted moves inside FM/Sanchis
  /// move loops; 0 disables window sampling (pass samples only).
  std::uint32_t move_interval = 0;
};

/// A materialized series: what serializes, parses and travels across
/// threads (portfolio attempts hand one of these back to the driver).
struct TimeSeriesDoc {
  TimeSeriesConfig config;
  std::uint64_t total = 0;    // samples taken, including overwritten
  std::uint64_t dropped = 0;  // samples overwritten by ring wrap
  std::vector<Sample> samples;  // chronological, oldest first
};

class TimeSeries;

namespace detail {
// Per-thread sampler state, mirroring the recorder: an enabled latch
// plus an optionally installed series, so concurrent portfolio attempts
// write disjoint rings with no synchronization.
extern thread_local bool t_timeseries_enabled;
extern thread_local TimeSeries* t_current_timeseries;
}  // namespace detail

/// True while the calling thread's sampler captures samples.
inline bool timeseries_enabled() { return detail::t_timeseries_enabled; }

/// Installs `ts` as the calling thread's series — TimeSeries::instance()
/// returns it until uninstalled. Returns the previously installed
/// series (nullptr = the process-wide default). Does not change the
/// thread's enabled latch; call start()/stop() on the series itself.
TimeSeries* install_timeseries(TimeSeries* ts);

/// The ring-buffer sampler. Single writer (the installing thread);
/// start() pre-sizes the ring, push() overwrites the oldest sample once
/// the ring is full.
class TimeSeries {
 public:
  TimeSeries() = default;

  static TimeSeries& instance();

  /// Pre-sizes the ring, clears prior samples, starts the wall clock and
  /// enables sampling on the calling thread. capacity is clamped to >=1.
  void start(TimeSeriesConfig config = {});

  /// Disables sampling; the collected series stays readable until the
  /// next start() or reset().
  void stop();

  /// Drops everything and disables sampling.
  void reset();

  /// Appends one sample, stamping its `seconds` field. No-op unless the
  /// calling thread's sampler is enabled. Hot path: one branch + one
  /// POD store into the pre-sized ring.
  void push(Sample s) {
    if (!timeseries_enabled()) return;
    s.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start_time_)
                    .count();
    ring_[static_cast<std::size_t>(total_ % ring_.size())] = s;
    ++total_;
  }

  /// Move-window pacing for the engines' inner loops: returns true on
  /// every `move_interval`-th call, never when window sampling is off.
  bool should_sample_move() {
    if (config_.move_interval == 0) return false;
    if (++moves_since_window_ < config_.move_interval) return false;
    moves_since_window_ = 0;
    return true;
  }

  const TimeSeriesConfig& config() const { return config_; }
  /// Samples taken, including ones already overwritten by ring wrap.
  std::uint64_t total_samples() const { return total_; }
  std::uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  /// Samples currently retained in the ring.
  std::size_t size() const {
    return static_cast<std::size_t>(
        total_ < ring_.size() ? total_ : ring_.size());
  }

  /// Chronological copy (oldest retained sample first).
  std::vector<Sample> snapshot() const;

  /// The series as a plain document (config + counts + snapshot()).
  TimeSeriesDoc doc() const;

 private:
  TimeSeriesConfig config_;
  std::vector<Sample> ring_{Sample{}};  // never empty: push() can't div-0
  std::uint64_t total_ = 0;
  std::uint32_t moves_since_window_ = 0;
  std::chrono::steady_clock::time_point start_time_{};
};

/// RAII: installs `ts` for the calling thread and parks the thread's
/// enabled latch; destruction restores both. The portfolio engine wraps
/// each attempt in one of these so per-attempt series cannot bleed into
/// each other even when attempts share a worker thread.
class ScopedTimeSeriesInstall {
 public:
  explicit ScopedTimeSeriesInstall(TimeSeries* ts)
      : prev_(install_timeseries(ts)),
        prev_enabled_(detail::t_timeseries_enabled) {
    detail::t_timeseries_enabled = false;
  }
  ~ScopedTimeSeriesInstall() {
    detail::t_timeseries_enabled = prev_enabled_;
    install_timeseries(prev_);
  }
  ScopedTimeSeriesInstall(const ScopedTimeSeriesInstall&) = delete;
  ScopedTimeSeriesInstall& operator=(const ScopedTimeSeriesInstall&) =
      delete;

 private:
  TimeSeries* prev_;
  bool prev_enabled_;
};

/// Convenience for engine call sites: push one sample when enabled.
inline void sample_point(SampleKind kind, Engine engine, std::uint32_t pass,
                         std::uint64_t cut, std::uint64_t best,
                         std::uint32_t feasible_blocks, std::uint32_t blocks,
                         std::uint32_t moves, std::uint32_t rolled_back,
                         std::uint32_t occupancy) {
  if (!timeseries_enabled()) return;
  Sample s;
  s.kind = kind;
  s.engine = engine;
  s.pass = pass;
  s.cut = cut;
  s.best = best;
  s.feasible_blocks = feasible_blocks;
  s.blocks = blocks;
  s.moves = moves;
  s.rolled_back = rolled_back;
  s.occupancy = occupancy;
  TimeSeries::instance().push(s);
}

/// Human-readable kind name ("pass", "window").
const char* sample_kind_name(SampleKind kind);

/// Serializes a series as an fpart-timeseries/1 JSON document.
/// include_timing=false omits the non-deterministic `seconds` field so
/// same-seed runs serialize byte-identically.
std::string timeseries_json(const TimeSeriesDoc& doc,
                            bool include_timing = true);

/// Parses an fpart-timeseries/1 document — either a standalone file or
/// a run report containing a "timeseries" section. Throws
/// PreconditionError on malformed input.
TimeSeriesDoc parse_timeseries(const std::string& text);
TimeSeriesDoc read_timeseries(const std::string& path);

}  // namespace fpart::obs
