#include "obs/recorder.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "util/assert.hpp"

namespace fpart::obs {

namespace detail {
thread_local bool t_recorder_enabled = false;
thread_local Recorder* t_current_recorder = nullptr;
}

Recorder* install_recorder(Recorder* r) {
  Recorder* prev = detail::t_current_recorder;
  detail::t_current_recorder = r;
  return prev;
}

namespace {

/// Field names per event kind. A nullptr key means the field is not
/// serialized for that kind; `has_engine` adds the "e" key. This table
/// is the schema: serialization and parsing both read it, so the two
/// cannot drift.
struct KindSpec {
  EventKind kind;
  const char* name;
  bool has_engine;
  const char* key_a;
  const char* key_b;
  const char* key_c;
  const char* key_gain;
  const char* key_value;
};

constexpr KindSpec kKindSpecs[] = {
    {EventKind::kInit, "init", false, "k", nullptr, nullptr, nullptr,
     "nodes"},
    {EventKind::kMove, "move", false, "v", "from", "to", "g", "cut"},
    {EventKind::kAddBlock, "add_block", false, "b", nullptr, nullptr,
     nullptr, nullptr},
    {EventKind::kRemoveBlock, "remove_block", false, "b", nullptr, nullptr,
     nullptr, nullptr},
    {EventKind::kSwapBlocks, "swap_blocks", false, "a", "b", nullptr,
     nullptr, nullptr},
    {EventKind::kRestore, "restore", false, "moves", "k", nullptr, nullptr,
     nullptr},
    {EventKind::kPassBegin, "pass_begin", true, "pass", nullptr, nullptr,
     nullptr, "metric"},
    {EventKind::kPassEnd, "pass_end", true, "moves", "rolled_back",
     "improved", nullptr, "metric"},
    {EventKind::kRollback, "rollback", true, "undone", "best_len", nullptr,
     nullptr, "metric"},
    {EventKind::kImproveBegin, "improve_begin", true, "blocks", nullptr,
     nullptr, nullptr, "cut"},
    {EventKind::kStackPush, "stack_push", true, "size", "pos", nullptr,
     nullptr, "metric"},
    {EventKind::kStackRewind, "stack_rewind", true, "entry", "of", nullptr,
     nullptr, nullptr},
    {EventKind::kRepair, "repair", false, "block", "evicted", "sink",
     nullptr, "size"},
    {EventKind::kFlowAugment, "flow_augment", false, "paths", nullptr,
     nullptr, nullptr, "flow"},
    {EventKind::kFeasibility, "feasibility", true, "class", "feasible",
     "k", nullptr, nullptr},
    {EventKind::kIteration, "iteration", false, "iter", "k", "rem_pins",
     nullptr, "rem_size"},
};

constexpr const char* kEngineNames[] = {"none",   "fm",    "sanchis",
                                        "fbb",    "fpart", "repair",
                                        "kwayx",  "clustered",
                                        "multilevel"};

const KindSpec& spec_of(EventKind kind) {
  for (const KindSpec& s : kKindSpecs) {
    if (s.kind == kind) return s;
  }
  FPART_ASSERT_MSG(false, "unknown event kind");
  return kKindSpecs[0];  // unreachable
}

std::string hex_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016" PRIx64, v);
  return buf;
}

std::uint64_t parse_hex_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

std::uint64_t require_number(const JsonValue& obj, const char* key,
                             std::size_t line) {
  const JsonValue* v = obj.find(key);
  FPART_REQUIRE(v != nullptr && v->is_number(),
                "event log line " + std::to_string(line) +
                    ": missing numeric key '" + key + "'");
  return v->as_u64();
}

}  // namespace

Recorder& Recorder::instance() {
  if (detail::t_current_recorder != nullptr) {
    return *detail::t_current_recorder;
  }
  static Recorder* recorder = new Recorder();  // leaked: process lifetime
  return *recorder;
}

void Recorder::start(RunHeader header) {
  header_ = std::move(header);
  events_.clear();
  events_.reserve(1u << 16);
  final_.reset();
  staged_gain_ = kNoGain;
  detail::t_recorder_enabled = true;
}

void Recorder::stop() { detail::t_recorder_enabled = false; }

void Recorder::set_final_state(FinalState state) {
  if (!recorder_enabled()) return;
  final_ = std::move(state);
}

void Recorder::reset() {
  stop();
  header_ = RunHeader{};
  events_.clear();
  events_.shrink_to_fit();
  final_.reset();
  staged_gain_ = kNoGain;
}

const char* event_kind_name(EventKind kind) { return spec_of(kind).name; }

const char* engine_name(Engine engine) {
  const auto i = static_cast<std::size_t>(engine);
  return i < std::size(kEngineNames) ? kEngineNames[i] : "none";
}

std::string event_json(const Event& e, std::uint64_t index) {
  const KindSpec& s = spec_of(e.kind);
  JsonWriter w;
  w.begin_object();
  w.key("i");
  w.value(index);
  w.key("t");
  w.value(s.name);
  if (s.has_engine) {
    w.key("e");
    w.value(engine_name(e.engine));
  }
  if (s.key_a != nullptr) {
    w.key(s.key_a);
    w.value(e.a);
  }
  if (s.key_b != nullptr) {
    w.key(s.key_b);
    w.value(e.b);
  }
  if (s.key_c != nullptr) {
    w.key(s.key_c);
    w.value(e.c);
  }
  if (s.key_gain != nullptr) {
    w.key(s.key_gain);
    if (e.gain == kNoGain) {
      w.null();
    } else {
      w.value(static_cast<std::int64_t>(e.gain));
    }
  }
  if (s.key_value != nullptr) {
    w.key(s.key_value);
    w.value(e.value);
  }
  w.end_object();
  return w.take();
}

std::string Recorder::to_jsonl() const {
  std::string out;
  // Rough sizing: ~64 bytes per event line keeps reallocation off the
  // flush path for large logs.
  out.reserve(events_.size() * 64 + 1024);

  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kEventLogSchema);
  w.key("method");
  w.value(header_.method);
  w.key("seed");
  w.value(header_.seed);
  w.key("device");
  w.begin_object();
  w.key("name");
  w.value(header_.device_name);
  w.key("smax");
  w.value(header_.device_smax);
  w.key("tmax");
  w.value(header_.device_tmax);
  w.key("fill");
  w.value(header_.device_fill);
  w.end_object();
  w.key("hypergraph");
  w.begin_object();
  w.key("nodes");
  w.value(header_.graph_nodes);
  w.key("interior");
  w.value(header_.graph_interior);
  w.key("nets");
  w.value(header_.graph_nets);
  w.key("pins");
  w.value(header_.graph_pins);
  w.key("digest");
  w.value(hex_u64(header_.graph_digest));
  w.end_object();
  w.key("options");
  w.raw_value(header_.options_json.empty() ? "{}" : header_.options_json);
  w.key("events");
  w.value(static_cast<std::uint64_t>(events_.size()));
  w.end_object();
  out += w.take();
  out += '\n';

  for (std::size_t i = 0; i < events_.size(); ++i) {
    out += event_json(events_[i], i);
    out += '\n';
  }

  if (final_.has_value()) {
    JsonWriter f;
    f.begin_object();
    f.key("final");
    f.begin_object();
    f.key("k");
    f.value(final_->k);
    f.key("cut");
    f.value(final_->cut);
    f.key("km1");
    f.value(final_->km1);
    f.key("assignment_digest");
    f.value(hex_u64(final_->assignment_digest));
    f.key("blocks");
    f.begin_array();
    for (const auto& [size, pins] : final_->blocks) {
      f.begin_array();
      f.value(size);
      f.value(pins);
      f.end_array();
    }
    f.end_array();
    f.end_object();
    f.end_object();
    out += f.take();
    out += '\n';
  }
  return out;
}

void Recorder::write_jsonl(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  FPART_REQUIRE(os.good(), "cannot write event log " + path);
  const std::string body = to_jsonl();
  os.write(body.data(), static_cast<std::streamsize>(body.size()));
  FPART_REQUIRE(os.good(), "write failed for event log " + path);
}

EventLog parse_event_log(const std::string& text) {
  EventLog log;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto parsed = json_parse(line);
    FPART_REQUIRE(parsed.has_value(), "event log line " +
                                          std::to_string(line_no) +
                                          ": invalid JSON");
    const JsonValue& doc = *parsed;

    if (const JsonValue* schema = doc.find("schema"); schema != nullptr) {
      FPART_REQUIRE(schema->is_string() &&
                        schema->string == kEventLogSchema,
                    "unsupported event log schema (want " +
                        std::string(kEventLogSchema) + ")");
      FPART_REQUIRE(!saw_header, "duplicate event log header");
      saw_header = true;
      RunHeader& h = log.header;
      if (const JsonValue* m = doc.find("method"); m && m->is_string()) {
        h.method = m->string;
      }
      h.seed = require_number(doc, "seed", line_no);
      const JsonValue* dev = doc.find("device");
      FPART_REQUIRE(dev != nullptr && dev->is_object(),
                    "event log header: missing device object");
      if (const JsonValue* n = dev->find("name"); n && n->is_string()) {
        h.device_name = n->string;
      }
      h.device_smax = require_number(*dev, "smax", line_no);
      h.device_tmax = require_number(*dev, "tmax", line_no);
      if (const JsonValue* fl = dev->find("fill"); fl && fl->is_number()) {
        h.device_fill = fl->number;
      }
      const JsonValue* hg = doc.find("hypergraph");
      FPART_REQUIRE(hg != nullptr && hg->is_object(),
                    "event log header: missing hypergraph object");
      h.graph_nodes = require_number(*hg, "nodes", line_no);
      h.graph_interior = require_number(*hg, "interior", line_no);
      h.graph_nets = require_number(*hg, "nets", line_no);
      h.graph_pins = require_number(*hg, "pins", line_no);
      if (const JsonValue* d = hg->find("digest"); d && d->is_string()) {
        h.graph_digest = parse_hex_u64(d->string);
      }
      continue;
    }

    if (const JsonValue* fin = doc.find("final"); fin != nullptr) {
      FPART_REQUIRE(fin->is_object(),
                    "event log footer: 'final' must be an object");
      FinalState f;
      f.k = static_cast<std::uint32_t>(require_number(*fin, "k", line_no));
      f.cut = require_number(*fin, "cut", line_no);
      f.km1 = require_number(*fin, "km1", line_no);
      if (const JsonValue* d = fin->find("assignment_digest");
          d && d->is_string()) {
        f.assignment_digest = parse_hex_u64(d->string);
      }
      if (const JsonValue* blocks = fin->find("blocks");
          blocks && blocks->is_array()) {
        for (const JsonValue& b : blocks->array) {
          FPART_REQUIRE(b.is_array() && b.array.size() == 2 &&
                            b.array[0].is_number() && b.array[1].is_number(),
                        "event log footer: malformed block entry");
          f.blocks.emplace_back(
              static_cast<std::uint64_t>(b.array[0].number),
              static_cast<std::uint64_t>(b.array[1].number));
        }
      }
      log.final_state = std::move(f);
      continue;
    }

    const JsonValue* t = doc.find("t");
    FPART_REQUIRE(t != nullptr && t->is_string(),
                  "event log line " + std::to_string(line_no) +
                      ": missing event type");
    const KindSpec* spec = nullptr;
    for (const KindSpec& s : kKindSpecs) {
      if (t->string == s.name) {
        spec = &s;
        break;
      }
    }
    FPART_REQUIRE(spec != nullptr, "event log line " +
                                       std::to_string(line_no) +
                                       ": unknown event type '" +
                                       t->string + "'");
    Event e;
    e.kind = spec->kind;
    if (spec->has_engine) {
      if (const JsonValue* eng = doc.find("e"); eng && eng->is_string()) {
        for (std::size_t i = 0; i < std::size(kEngineNames); ++i) {
          if (eng->string == kEngineNames[i]) {
            e.engine = static_cast<Engine>(i);
            break;
          }
        }
      }
    }
    if (spec->key_a != nullptr) {
      e.a = static_cast<std::uint32_t>(
          require_number(doc, spec->key_a, line_no));
    }
    if (spec->key_b != nullptr) {
      e.b = static_cast<std::uint32_t>(
          require_number(doc, spec->key_b, line_no));
    }
    if (spec->key_c != nullptr) {
      e.c = static_cast<std::uint32_t>(
          require_number(doc, spec->key_c, line_no));
    }
    if (spec->key_gain != nullptr) {
      const JsonValue* g = doc.find(spec->key_gain);
      FPART_REQUIRE(g != nullptr, "event log line " +
                                      std::to_string(line_no) +
                                      ": missing gain");
      e.gain = g->is_number() ? static_cast<std::int32_t>(g->number)
                              : kNoGain;
    }
    if (spec->key_value != nullptr) {
      e.value = require_number(doc, spec->key_value, line_no);
    }
    log.events.push_back(e);
  }
  FPART_REQUIRE(saw_header, "event log has no fpart-events/1 header line");
  return log;
}

EventLog read_event_log(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  FPART_REQUIRE(is.good(), "cannot read event log " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse_event_log(buf.str());
}

}  // namespace fpart::obs
