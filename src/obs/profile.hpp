// Hardware-counter and memory profiling layer.
//
// When profiling is on (fpart_cli --profile, fpart_bench --profile or
// set_profile_enabled(true)), every ScopedPhase additionally samples a
// perf_event counter group — cycles, instructions, cache references,
// cache misses, branch misses — at phase enter/exit, so every node of
// the phase tree carries machine-level deltas next to its wall/CPU
// time. The same hook attributes heap allocation counts/bytes per
// phase when the counting allocator (obs/alloc_hook.cpp, linked via
// fpart::alloc_hook) is present in the binary.
//
// Graceful degradation is a hard requirement: perf_event_open is
// routinely denied in containers (ENOSYS under seccomp, EACCES/EPERM
// under kernel.perf_event_paranoid >= 3) and the counting allocator is
// deliberately not linked into every binary. Every degraded layer
// reports `available:false` plus a reason string — never an error, and
// never a behavior change: profiling only READS counters, so a
// profiled run produces byte-identical event logs and partition
// digests to an unprofiled one.
//
// Counter groups are per-thread (perf_event_open with tid=self), opened
// lazily on a thread's first sample and inherited by nobody, so
// concurrent portfolio attempts each measure their own work. Reads are
// one read(2) of the group leader; values are scaled by
// time_enabled/time_running when the kernel multiplexes the group
// against limited PMU hardware (documented in docs/PROFILING.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace fpart::obs {

namespace detail {
extern std::atomic<bool> g_profile_enabled;

// Process-wide heap telemetry, maintained by the counting operator
// new/delete in obs/alloc_hook.cpp. Always-on when the hook is linked
// (arming lazily would corrupt the live-byte balance: frees of blocks
// allocated before arming would underflow). All relaxed: these are
// coarse telemetry aggregates, not synchronization points.
extern std::atomic<bool> g_heap_hook_linked;
extern std::atomic<std::uint64_t> g_heap_alloc_count;
extern std::atomic<std::uint64_t> g_heap_alloc_bytes;
extern std::atomic<std::uint64_t> g_heap_free_count;
extern std::atomic<std::int64_t> g_heap_live_bytes;
extern std::atomic<std::int64_t> g_heap_peak_bytes;

// Per-thread allocation totals so per-phase deltas attribute a
// thread's own allocations even while other threads churn.
extern thread_local std::uint64_t t_heap_alloc_count;
extern thread_local std::uint64_t t_heap_alloc_bytes;

/// The counting allocator bodies (called by the replaced operator
/// new/delete in alloc_hook.cpp; defined here so the hook translation
/// unit stays a trivial forwarder).
void* profiled_alloc(std::size_t size);
void profiled_free(void* p) noexcept;

/// Test hook: forces perf_availability() to report unavailable (as if
/// perf_event_open had been denied) without needing a locked-down
/// kernel. Affects subsequent availability queries and reads; pass
/// false to restore the real probe result.
void force_perf_unavailable_for_test(bool forced);
}  // namespace detail

/// True while per-phase hardware/memory profiling is armed. Relaxed
/// load — same coarse on/off discipline as stats_enabled().
inline bool profile_enabled() {
  return detail::g_profile_enabled.load(std::memory_order_relaxed);
}

/// Arms/disarms profiling for the whole process. The first enable
/// probes perf_event availability (see perf_availability()); enabling
/// never fails — on a denied kernel the counters simply read as zero
/// and report available:false.
void set_profile_enabled(bool enabled);

/// One reading of the hardware counter group. Cumulative per thread;
/// subtract two readings for a span delta. All-zero when perf is
/// unavailable.
struct PerfSample {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
};

/// Why (or whether) hardware counters work in this process.
struct PerfAvailability {
  bool available = false;
  /// Human-readable diagnosis when unavailable: "perf_event_open:
  /// EACCES (kernel.perf_event_paranoid=4?)", "not a Linux build",
  /// "disabled by FPART_PERF_DISABLE", ...
  std::string reason;
};

/// Availability verdict for perf counters. Probed once (first call or
/// first set_profile_enabled(true)); honors the FPART_PERF_DISABLE
/// environment variable (any non-empty value forces unavailable — the
/// CI denied-path leg uses this).
const PerfAvailability& perf_availability();

/// Reads the calling thread's counter group (opening it on first use).
/// Returns all-zero when perf is unavailable or profiling is off.
PerfSample perf_read();

/// Process heap telemetry snapshot (counting operator new/delete).
struct HeapStats {
  /// False when obs/alloc_hook.cpp is not linked into this binary (or
  /// was compiled out under a sanitizer, whose interposed allocator it
  /// must not fight).
  bool available = false;
  std::uint64_t alloc_count = 0;  // operator new calls, process-wide
  std::uint64_t alloc_bytes = 0;  // bytes handed out (usable size)
  std::uint64_t free_count = 0;   // operator delete calls
  std::uint64_t live_bytes = 0;   // currently outstanding bytes
  std::uint64_t peak_bytes = 0;   // high-watermark of live_bytes
};

/// Current process-wide heap counters; available=false (zeros) when the
/// counting allocator is not linked.
HeapStats heap_stats();

/// Calling thread's cumulative allocation count/bytes (zero without the
/// hook). ScopedPhase uses the delta of these for per-phase
/// attribution.
std::uint64_t thread_alloc_count();
std::uint64_t thread_alloc_bytes();

/// Peak resident set size of the process in bytes (getrusage
/// ru_maxrss); 0 where getrusage is unavailable.
std::uint64_t peak_rss_bytes();

class JsonWriter;

/// Writes the `"profile"` section value for run reports and bench
/// documents: perf availability, heap telemetry, peak RSS. Emits one
/// JSON object (caller writes the key).
void write_profile_section(JsonWriter& w);

}  // namespace fpart::obs
