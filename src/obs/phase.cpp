#include "obs/phase.hpp"

#include <chrono>
#include <mutex>

#include "util/timer.hpp"

namespace fpart::obs {

namespace {

std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PhaseNode& PhaseNode::child(std::string_view child_name) {
  for (auto& c : children) {
    if (c->name == child_name) return *c;
  }
  auto node = std::make_unique<PhaseNode>();
  node->name = std::string(child_name);
  node->parent = this;
  children.push_back(std::move(node));
  return *children.back();
}

struct PhaseForest::Impl {
  std::mutex mu;
  PhaseNode root;
};

namespace {
// Per-thread cursor into the shared tree (nullptr = the root). Each
// thread nests its own phases correctly; same-named phases entered by
// concurrent threads under the same parent merge into one node whose
// wall/CPU totals and counts accumulate across threads (all node
// mutation happens under the forest mutex).
thread_local PhaseNode* t_phase_cursor = nullptr;
}  // namespace

PhaseForest::PhaseForest() = default;

PhaseForest& PhaseForest::instance() {
  static PhaseForest forest;
  return forest;
}

PhaseForest::Impl& PhaseForest::impl() const {
  static Impl impl;
  return impl;
}

PhaseNode* PhaseForest::enter(const char* name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  PhaseNode* parent = t_phase_cursor != nullptr ? t_phase_cursor : &i.root;
  PhaseNode& node = parent->child(name);
  t_phase_cursor = &node;
  return &node;
}

void PhaseForest::exit(PhaseNode* node, double wall_seconds,
                       double cpu_seconds, const PhaseProfile* profile) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  node->wall_seconds += wall_seconds;
  node->cpu_seconds += cpu_seconds;
  if (profile != nullptr) node->profile.accumulate(*profile);
  ++node->count;
  // Unwind this thread's cursor to the node's parent even if inner
  // phases leaked (they cannot with RAII, but stay defensive).
  PhaseNode* p = t_phase_cursor;
  while (p != nullptr && p != &i.root && p != node) p = p->parent;
  PhaseNode* up = (p == node) ? node->parent : nullptr;
  t_phase_cursor = (up != nullptr && up != &i.root) ? up : nullptr;
}

namespace {

std::unique_ptr<PhaseNode> deep_copy(const PhaseNode& from,
                                     PhaseNode* parent) {
  auto node = std::make_unique<PhaseNode>();
  node->name = from.name;
  node->wall_seconds = from.wall_seconds;
  node->cpu_seconds = from.cpu_seconds;
  node->count = from.count;
  node->profile = from.profile;
  node->parent = parent;
  node->children.reserve(from.children.size());
  for (const auto& c : from.children) {
    node->children.push_back(deep_copy(*c, node.get()));
  }
  return node;
}

}  // namespace

std::unique_ptr<PhaseNode> PhaseForest::snapshot() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return deep_copy(i.root, nullptr);
}

void PhaseForest::reset() {
  // Precondition: no phase is open on ANY thread (drivers reset between
  // runs). Other threads' cursors cannot be cleared from here; clearing
  // the tree while they point into it would dangle.
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.root.children.clear();
  i.root.wall_seconds = 0.0;
  i.root.cpu_seconds = 0.0;
  i.root.count = 0;
  t_phase_cursor = nullptr;
}

ScopedPhase::ScopedPhase(const char* name) {
  if (!stats_enabled() && !trace_enabled() && !profile_enabled()) return;
  name_ = name;
  node_ = PhaseForest::instance().enter(name);
  if (profile_enabled()) {
    profiled_ = true;
    alloc_count_start_ = thread_alloc_count();
    alloc_bytes_start_ = thread_alloc_bytes();
    perf_start_ = perf_read();
  }
  wall_start_ns_ = wall_now_ns();
  cpu_start_ = CpuTimer::now_seconds();
}

ScopedPhase::~ScopedPhase() {
  if (node_ == nullptr) return;
  const double wall =
      static_cast<double>(wall_now_ns() - wall_start_ns_) * 1e-9;
  const double cpu = CpuTimer::now_seconds() - cpu_start_;
  PhaseProfile delta;
  if (profiled_) {
    const PerfSample end = perf_read();
    // Per-thread counters are monotonic; guard anyway so a counter
    // hiccup can't wrap the unsigned delta.
    delta.cycles = end.cycles >= perf_start_.cycles
                       ? end.cycles - perf_start_.cycles
                       : 0;
    delta.instructions = end.instructions >= perf_start_.instructions
                             ? end.instructions - perf_start_.instructions
                             : 0;
    delta.cache_references =
        end.cache_references >= perf_start_.cache_references
            ? end.cache_references - perf_start_.cache_references
            : 0;
    delta.cache_misses = end.cache_misses >= perf_start_.cache_misses
                             ? end.cache_misses - perf_start_.cache_misses
                             : 0;
    delta.branch_misses = end.branch_misses >= perf_start_.branch_misses
                              ? end.branch_misses - perf_start_.branch_misses
                              : 0;
    delta.alloc_count = thread_alloc_count() - alloc_count_start_;
    delta.alloc_bytes = thread_alloc_bytes() - alloc_bytes_start_;
  }
  PhaseForest::instance().exit(node_, wall, cpu,
                               profiled_ ? &delta : nullptr);
  if (trace_enabled()) {
    const std::uint64_t dur_us =
        static_cast<std::uint64_t>(wall * 1e6);
    const std::uint64_t now_us = trace_now_us();
    const std::uint64_t ts_us = now_us > dur_us ? now_us - dur_us : 0;
    trace_record(name_, ts_us, dur_us);
  }
}

}  // namespace fpart::obs
