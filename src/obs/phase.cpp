#include "obs/phase.hpp"

#include <chrono>
#include <mutex>

#include "util/timer.hpp"

namespace fpart::obs {

namespace {

std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PhaseNode& PhaseNode::child(std::string_view child_name) {
  for (auto& c : children) {
    if (c->name == child_name) return *c;
  }
  auto node = std::make_unique<PhaseNode>();
  node->name = std::string(child_name);
  node->parent = this;
  children.push_back(std::move(node));
  return *children.back();
}

struct PhaseForest::Impl {
  std::mutex mu;
  PhaseNode root;
};

namespace {
// Per-thread cursor into the shared tree (nullptr = the root). Each
// thread nests its own phases correctly; same-named phases entered by
// concurrent threads under the same parent merge into one node whose
// wall/CPU totals and counts accumulate across threads (all node
// mutation happens under the forest mutex).
thread_local PhaseNode* t_phase_cursor = nullptr;
}  // namespace

PhaseForest::PhaseForest() = default;

PhaseForest& PhaseForest::instance() {
  static PhaseForest forest;
  return forest;
}

PhaseForest::Impl& PhaseForest::impl() const {
  static Impl impl;
  return impl;
}

PhaseNode* PhaseForest::enter(const char* name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  PhaseNode* parent = t_phase_cursor != nullptr ? t_phase_cursor : &i.root;
  PhaseNode& node = parent->child(name);
  t_phase_cursor = &node;
  return &node;
}

void PhaseForest::exit(PhaseNode* node, double wall_seconds,
                       double cpu_seconds) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  node->wall_seconds += wall_seconds;
  node->cpu_seconds += cpu_seconds;
  ++node->count;
  // Unwind this thread's cursor to the node's parent even if inner
  // phases leaked (they cannot with RAII, but stay defensive).
  PhaseNode* p = t_phase_cursor;
  while (p != nullptr && p != &i.root && p != node) p = p->parent;
  PhaseNode* up = (p == node) ? node->parent : nullptr;
  t_phase_cursor = (up != nullptr && up != &i.root) ? up : nullptr;
}

namespace {

std::unique_ptr<PhaseNode> deep_copy(const PhaseNode& from,
                                     PhaseNode* parent) {
  auto node = std::make_unique<PhaseNode>();
  node->name = from.name;
  node->wall_seconds = from.wall_seconds;
  node->cpu_seconds = from.cpu_seconds;
  node->count = from.count;
  node->parent = parent;
  node->children.reserve(from.children.size());
  for (const auto& c : from.children) {
    node->children.push_back(deep_copy(*c, node.get()));
  }
  return node;
}

}  // namespace

std::unique_ptr<PhaseNode> PhaseForest::snapshot() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return deep_copy(i.root, nullptr);
}

void PhaseForest::reset() {
  // Precondition: no phase is open on ANY thread (drivers reset between
  // runs). Other threads' cursors cannot be cleared from here; clearing
  // the tree while they point into it would dangle.
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.root.children.clear();
  i.root.wall_seconds = 0.0;
  i.root.cpu_seconds = 0.0;
  i.root.count = 0;
  t_phase_cursor = nullptr;
}

ScopedPhase::ScopedPhase(const char* name) {
  if (!stats_enabled() && !trace_enabled()) return;
  name_ = name;
  node_ = PhaseForest::instance().enter(name);
  wall_start_ns_ = wall_now_ns();
  cpu_start_ = CpuTimer::now_seconds();
}

ScopedPhase::~ScopedPhase() {
  if (node_ == nullptr) return;
  const double wall =
      static_cast<double>(wall_now_ns() - wall_start_ns_) * 1e-9;
  const double cpu = CpuTimer::now_seconds() - cpu_start_;
  PhaseForest::instance().exit(node_, wall, cpu);
  if (trace_enabled()) {
    const std::uint64_t dur_us =
        static_cast<std::uint64_t>(wall * 1e6);
    const std::uint64_t now_us = trace_now_us();
    const std::uint64_t ts_us = now_us > dur_us ? now_us - dur_us : 0;
    trace_record(name_, ts_us, dur_us);
  }
}

}  // namespace fpart::obs
