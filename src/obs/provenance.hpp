// Build provenance stamped into every report/bench schema so a
// BENCH_*.json trajectory is attributable to an exact binary: git sha
// (+dirty marker), compiler, build type, flags, sanitizer state.
//
// Values are baked in at CMake configure time as compile definitions
// scoped to provenance.cpp (see src/obs/CMakeLists.txt); a build from
// an exported tarball degrades to sha "unknown".
//
// Deliberately NOT stamped into fpart-events/1 or standalone
// fpart-timeseries/1 documents: those are byte-identity artifacts
// (replay and tamper detection compare them byte-for-byte across
// builds), and provenance would make every rebuild a "tamper".
#pragma once

#include <string>

namespace fpart::obs {

class JsonWriter;

struct BuildProvenance {
  std::string git_sha;      // "unknown" outside a git checkout
  bool git_dirty = false;   // uncommitted changes at configure time
  std::string compiler;     // e.g. "GNU 13.2.0"
  std::string build_type;   // CMAKE_BUILD_TYPE (may be empty)
  std::string cxx_flags;    // build-type-resolved CXX flags
  std::string sanitizer;    // FPART_SANITIZE value, "" when off
};

/// The provenance of this binary (constant for the process lifetime).
const BuildProvenance& build_provenance();

/// Writes the `"provenance"` object value (caller writes the key).
/// Every report sink calls this — CI grep-gates it.
void write_provenance(JsonWriter& w);

}  // namespace fpart::obs
