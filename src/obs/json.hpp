// Minimal JSON support for the observability sinks: a streaming writer
// (commas and escaping handled automatically) and a small recursive-
// descent parser used by schema-stability tests and downstream tooling
// that consumes run reports / BENCH_*.json files.
//
// Deliberately not a general-purpose JSON library: no comments, no
// NaN/Inf (non-finite doubles serialize as null), UTF-8 passed through.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fpart::obs {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
std::string json_escape(std::string_view s);

/// Streaming JSON writer. Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("k"); w.value(std::uint64_t{4});
///   w.end_object();
///   w.str();  // {"k":4}
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view k);
  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v);
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(std::uint32_t v) { value(static_cast<std::uint64_t>(v)); }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void null();
  /// Splices pre-serialized JSON verbatim as one value. The caller owns
  /// the claim that `json` is well-formed (used to embed documents
  /// produced by another JsonWriter, e.g. an options object in an event
  /// log header).
  void raw_value(std::string_view json);

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();
  std::string out_;
  // One entry per open container: true once the first element landed.
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

/// Parsed JSON value (owning tree). Object member order is preserved.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  /// Exact value of an integer-literal number token (a double cannot
  /// represent 64-bit seeds/digests). Bit pattern of the parsed int64
  /// for negative literals.
  std::uint64_t integer = 0;
  bool exact_integer = false;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// The number as an exact uint64 when the token was an integer
  /// literal, else the (possibly rounded) double cast.
  std::uint64_t as_u64() const {
    return exact_integer ? integer : static_cast<std::uint64_t>(number);
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view k) const;
};

/// Parses `text`; nullopt on any syntax error or trailing garbage.
std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace fpart::obs
