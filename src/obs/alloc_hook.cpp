// Counting global operator new/delete feeding obs/profile heap
// telemetry. Deliberately NOT part of fpart::all: replacing the global
// allocator is a per-binary decision — tests/hotpath_test.cpp defines
// its own hook, and library consumers may too — so binaries opt in by
// linking fpart::alloc_hook. heap_stats() reports available:false in
// binaries that don't.
//
// Counting is always-on once linked (never gated on profile_enabled):
// arming lazily would let frees of pre-arming blocks underflow the
// live-byte balance. The overhead is two thread-local increments and a
// handful of relaxed atomics per allocation.
#include <cstddef>
#include <new>

#include "obs/profile.hpp"

// Sanitizer builds interpose their own allocator; replacing operator
// new there causes alloc/dealloc-mismatch false positives, so the hook
// compiles out and heap telemetry degrades to available:false (same
// policy as tests/hotpath_test.cpp).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define FPART_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define FPART_ALLOC_HOOK 0
#endif
#endif
#ifndef FPART_ALLOC_HOOK
#define FPART_ALLOC_HOOK 1
#endif

#if FPART_ALLOC_HOOK

void* operator new(std::size_t size) {
  return fpart::obs::detail::profiled_alloc(size);
}
void* operator new[](std::size_t size) {
  return fpart::obs::detail::profiled_alloc(size);
}
void operator delete(void* p) noexcept {
  fpart::obs::detail::profiled_free(p);
}
void operator delete[](void* p) noexcept {
  fpart::obs::detail::profiled_free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  fpart::obs::detail::profiled_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  fpart::obs::detail::profiled_free(p);
}

namespace {
// Flips heap_stats().available for this binary at static-init time.
struct HookRegistrar {
  HookRegistrar() {
    fpart::obs::detail::g_heap_hook_linked.store(true,
                                                 std::memory_order_relaxed);
  }
} g_hook_registrar;
}  // namespace

#endif  // FPART_ALLOC_HOOK
