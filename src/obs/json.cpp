#include "obs/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace fpart::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::end_object() {
  out_ += '}';
  needs_comma_.pop_back();
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::end_array() {
  out_ += ']';
  needs_comma_.pop_back();
}

void JsonWriter::key(std::string_view k) {
  comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  comma();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
}

void JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
}

void JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out_ += buf;
}

void JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
}

void JsonWriter::null() {
  comma();
  out_ += "null";
}

void JsonWriter::raw_value(std::string_view json) {
  comma();
  out_ += json;
}

const JsonValue* JsonValue::find(std::string_view k) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [key, val] : object) {
    if (key == k) return &val;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse() {
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported —
            // the writer never emits them).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool parse_value(JsonValue& v) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return parse_object(v);
    if (c == '[') return parse_array(v);
    if (c == '"') {
      v.type = JsonValue::Type::kString;
      return parse_string(v.string);
    }
    if (literal("true")) {
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return true;
    }
    if (literal("false")) {
      v.type = JsonValue::Type::kBool;
      v.boolean = false;
      return true;
    }
    if (literal("null")) {
      v.type = JsonValue::Type::kNull;
      return true;
    }
    return parse_number(v);
  }

  bool parse_number(JsonValue& v) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    v.type = JsonValue::Type::kNumber;
    v.number = parsed;
    // Integer tokens additionally keep their exact 64-bit value — a
    // double only holds 53 mantissa bits, not enough for seeds and
    // digests (see JsonValue::as_u64).
    if (token.find_first_of(".eE") == std::string::npos) {
      errno = 0;
      if (token[0] == '-') {
        const long long i = std::strtoll(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          v.integer = static_cast<std::uint64_t>(i);
          v.exact_integer = true;
        }
      } else {
        const unsigned long long u = std::strtoull(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          v.integer = u;
          v.exact_integer = true;
        }
      }
    }
    return true;
  }

  bool parse_array(JsonValue& v) {
    if (!eat('[')) return false;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      JsonValue elem;
      if (!parse_value(elem)) return false;
      v.array.push_back(std::move(elem));
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool parse_object(JsonValue& v) {
    if (!eat('{')) return false;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string k;
      if (!parse_string(k)) return false;
      if (!eat(':')) return false;
      JsonValue val;
      if (!parse_value(val)) return false;
      v.object.emplace_back(std::move(k), std::move(val));
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace fpart::obs
