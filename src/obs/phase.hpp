// RAII phase timers nesting into a process-wide phase tree.
//
// A ScopedPhase marks one named span of work ("fpart.run",
// "fpart.bipartition", ...). Spans nest lexically; repeated entries of
// the same name under the same parent merge into one node accumulating
// wall/CPU time and an invocation count, so the tree stays small no
// matter how many Algorithm-1 iterations run. Each span also lands in
// the Chrome trace buffer (obs/trace.hpp) when tracing is on.
//
// Phases record when either stats or tracing are enabled; otherwise a
// ScopedPhase is two relaxed loads and no allocation. The tree is
// thread-clean: every thread keeps its own cursor, so concurrent
// portfolio attempts each nest correctly, and same-named spans from
// different threads merge into one node whose totals accumulate across
// threads (reset() still requires that no phase is open anywhere).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/profile.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"

namespace fpart::obs {

/// Machine-level deltas accumulated by a phase node while profiling is
/// on (obs/profile.hpp). Zero when perf/the alloc hook are unavailable
/// — availability is reported once per document, not per node.
struct PhaseProfile {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t alloc_count = 0;  // thread-local operator new calls
  std::uint64_t alloc_bytes = 0;

  void accumulate(const PhaseProfile& d) {
    cycles += d.cycles;
    instructions += d.instructions;
    cache_references += d.cache_references;
    cache_misses += d.cache_misses;
    branch_misses += d.branch_misses;
    alloc_count += d.alloc_count;
    alloc_bytes += d.alloc_bytes;
  }
};

struct PhaseNode {
  std::string name;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  std::uint64_t count = 0;  // completed entries
  PhaseProfile profile;     // all-zero unless profiling was on
  PhaseNode* parent = nullptr;
  std::vector<std::unique_ptr<PhaseNode>> children;

  /// Finds or creates the child named `child_name`.
  PhaseNode& child(std::string_view child_name);
};

/// The process-wide phase tree. `root()` is a synthetic node whose
/// children are the top-level phases (e.g. one "fpart.run" per run).
class PhaseForest {
 public:
  static PhaseForest& instance();

  PhaseNode* enter(const char* name);
  /// Closes `node`, accumulating timings and (when non-null) the
  /// profiling deltas sampled by the exiting ScopedPhase.
  void exit(PhaseNode* node, double wall_seconds, double cpu_seconds,
            const PhaseProfile* profile = nullptr);

  /// Drops all recorded phases.
  void reset();

  /// Deep copy of the tree for serialization (the live tree keeps
  /// mutating while phases are open).
  std::unique_ptr<PhaseNode> snapshot() const;

 private:
  PhaseForest();
  struct Impl;
  Impl& impl() const;
};

/// Times one phase; see file comment.
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  const char* name_ = nullptr;
  PhaseNode* node_ = nullptr;
  std::int64_t wall_start_ns_ = 0;
  double cpu_start_ = 0.0;
  // Profiling baselines (captured only when profile_enabled() at entry;
  // the flag is latched so a mid-phase toggle can't produce a bogus
  // delta).
  bool profiled_ = false;
  PerfSample perf_start_;
  std::uint64_t alloc_count_start_ = 0;
  std::uint64_t alloc_bytes_start_ = 0;
};

}  // namespace fpart::obs
