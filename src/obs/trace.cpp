#include "obs/trace.hpp"

#include <chrono>
#include <fstream>
#include <mutex>
#include <vector>

#include "obs/json.hpp"
#include "util/assert.hpp"

namespace fpart::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}

namespace {

struct TraceEvent {
  const char* name;
  std::uint64_t ts_us;
  std::uint64_t dur_us;
};

struct TraceBuffer {
  // ~48 MB worst case; a full FPART run on the big MCNC circuits emits
  // far fewer phase spans than this.
  static constexpr std::size_t kMaxEvents = 1u << 21;

  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
  std::chrono::steady_clock::time_point epoch{};
  bool epoch_set = false;
};

TraceBuffer& buffer() {
  static TraceBuffer b;
  return b;
}

}  // namespace

void set_trace_enabled(bool enabled) {
  if (enabled) {
    TraceBuffer& b = buffer();
    std::lock_guard<std::mutex> lock(b.mu);
    if (!b.epoch_set) {
      b.epoch = std::chrono::steady_clock::now();
      b.epoch_set = true;
    }
  }
  detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t trace_now_us() {
  TraceBuffer& b = buffer();
  std::lock_guard<std::mutex> lock(b.mu);
  if (!b.epoch_set) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - b.epoch)
          .count());
}

void trace_record(const char* name, std::uint64_t ts_us,
                  std::uint64_t dur_us) {
  TraceBuffer& b = buffer();
  std::lock_guard<std::mutex> lock(b.mu);
  if (b.events.size() >= TraceBuffer::kMaxEvents) {
    ++b.dropped;
    return;
  }
  b.events.push_back(TraceEvent{name, ts_us, dur_us});
}

std::uint64_t trace_dropped() {
  TraceBuffer& b = buffer();
  std::lock_guard<std::mutex> lock(b.mu);
  return b.dropped;
}

void trace_reset() {
  TraceBuffer& b = buffer();
  std::lock_guard<std::mutex> lock(b.mu);
  b.events.clear();
  b.dropped = 0;
}

std::string trace_json() {
  TraceBuffer& b = buffer();
  std::lock_guard<std::mutex> lock(b.mu);
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  // One process/thread naming metadata event keeps Perfetto's track
  // label readable.
  w.begin_object();
  w.key("name");
  w.value("process_name");
  w.key("ph");
  w.value("M");
  w.key("pid");
  w.value(std::uint64_t{0});
  w.key("tid");
  w.value(std::uint64_t{0});
  w.key("args");
  w.begin_object();
  w.key("name");
  w.value("fpart");
  w.end_object();
  w.end_object();
  for (const TraceEvent& e : b.events) {
    w.begin_object();
    w.key("name");
    w.value(e.name);
    w.key("ph");
    w.value("X");
    w.key("ts");
    w.value(e.ts_us);
    w.key("dur");
    w.value(e.dur_us);
    w.key("pid");
    w.value(std::uint64_t{0});
    w.key("tid");
    w.value(std::uint64_t{0});
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit");
  w.value("ms");
  if (b.dropped != 0) {
    w.key("fpartDroppedEvents");
    w.value(b.dropped);
  }
  w.end_object();
  return w.take();
}

void write_trace_file(const std::string& path) {
  std::ofstream os(path);
  FPART_REQUIRE(os.good(), "cannot write trace file " + path);
  os << trace_json();
  FPART_REQUIRE(os.good(), "write failed for trace file " + path);
}

}  // namespace fpart::obs
