// Chrome trace_event output: every completed ScopedPhase becomes one
// complete ("ph":"X") event, so a --trace file opens directly in
// chrome://tracing or https://ui.perfetto.dev.
//
// Tracing is off by default and independent of the stats flag: stats are
// cheap aggregates, a trace grows with every span. The buffer is capped;
// beyond the cap events are counted as dropped rather than grown.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace fpart::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}

inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Enables/disables trace capture. The first enable pins the trace
/// epoch; timestamps are microseconds since that epoch.
void set_trace_enabled(bool enabled);

/// Microseconds since the trace epoch (0 before the first enable).
std::uint64_t trace_now_us();

/// Appends one complete event. `name` must outlive the buffer (phase
/// names are string literals).
void trace_record(const char* name, std::uint64_t ts_us,
                  std::uint64_t dur_us);

/// Events discarded because the buffer cap was hit.
std::uint64_t trace_dropped();

/// Drops all buffered events (keeps the epoch and enabled state).
void trace_reset();

/// Serializes the buffer in Chrome trace_event JSON object format.
std::string trace_json();

/// Writes trace_json() to `path`. Throws PreconditionError on IO error.
void write_trace_file(const std::string& path);

}  // namespace fpart::obs
