#include "obs/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

namespace fpart::obs {

namespace detail {
std::atomic<bool> g_stats_enabled{false};
}

void set_stats_enabled(bool enabled) {
  detail::g_stats_enabled.store(enabled, std::memory_order_relaxed);
}

namespace {

std::size_t bucket_index(std::int64_t v) {
  if (v <= 0) return 0;
  const auto width = static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(v)));
  return width < Histogram::kNumBuckets ? width : Histogram::kNumBuckets - 1;
}

/// Relaxed CAS loop folding `v` into an atomic running extremum.
template <typename Cmp>
void fold_extremum(std::atomic<std::int64_t>& slot, std::int64_t v, Cmp cmp) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (cmp(v, cur) &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::record(std::int64_t v) {
  // First sample seeds min/max; the seed race (two threads both seeing
  // count 0) is benign because both then fold their value.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  } else {
    fold_extremum(min_, v, [](std::int64_t a, std::int64_t b) { return a < b; });
    fold_extremum(max_, v, [](std::int64_t a, std::int64_t b) { return a > b; });
  }
  sum_.fetch_add(v, std::memory_order_relaxed);
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
}

std::int64_t Histogram::min() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::int64_t Histogram::max() const {
  return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  return i < kNumBuckets ? buckets_[i].load(std::memory_order_relaxed) : 0;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

double histogram_quantile(const HistogramSnapshot& h, double q) {
  if (h.count == 0 || h.buckets.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;

  // Nearest-rank: the smallest rank r (1-based) with q*count <= r.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(h.count)));
  if (rank == 0) rank = 1;
  if (rank > h.count) rank = h.count;

  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < h.buckets.size(); ++b) {
    const std::uint64_t in_bucket = h.buckets[b];
    if (in_bucket == 0 || cum + in_bucket < rank) {
      cum += in_bucket;
      continue;
    }
    // Value range covered by bucket b (see bucket_index): bucket 0 is
    // v <= 0, bucket i in [1, last) is [2^(i-1), 2^i - 1], and the last
    // bucket saturates upward.
    double lo, hi;
    if (b == 0) {
      lo = std::min<double>(static_cast<double>(h.min), 0.0);
      hi = 0.0;
    } else {
      lo = std::ldexp(1.0, static_cast<int>(b) - 1);
      hi = std::ldexp(1.0, static_cast<int>(b)) - 1.0;
      if (b + 1 == h.buckets.size()) {
        hi = std::max(lo, static_cast<double>(h.max));
      }
    }
    const double frac = static_cast<double>(rank - cum) /
                        static_cast<double>(in_bucket);
    double v = lo + frac * (hi - lo);
    // The exact extrema are known; never report outside them.
    v = std::max(v, static_cast<double>(h.min));
    v = std::min(v, static_cast<double>(h.max));
    return v;
  }
  return static_cast<double>(h.max);
}

struct StatsRegistry::Impl {
  mutable std::mutex mu;
  // std::map keeps snapshots name-sorted; unique_ptr keeps references
  // stable across rehash-free growth.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

StatsRegistry& StatsRegistry::instance() {
  static StatsRegistry registry;
  return registry;
}

StatsRegistry::Impl& StatsRegistry::impl() const {
  static Impl impl;
  return impl;
}

Counter& StatsRegistry::counter(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto it = i.counters.find(name);
  if (it == i.counters.end()) {
    it = i.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& StatsRegistry::histogram(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto it = i.histograms.find(name);
  if (it == i.histograms.end()) {
    it = i.histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void StatsRegistry::reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  for (auto& [name, c] : i.counters) c->reset();
  for (auto& [name, h] : i.histograms) h->reset();
}

std::vector<CounterSnapshot> StatsRegistry::counters() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  std::vector<CounterSnapshot> out;
  out.reserve(i.counters.size());
  for (const auto& [name, c] : i.counters) {
    out.push_back(CounterSnapshot{name, c->value()});
  }
  return out;
}

std::vector<HistogramSnapshot> StatsRegistry::histograms() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  std::vector<HistogramSnapshot> out;
  out.reserve(i.histograms.size());
  for (const auto& [name, h] : i.histograms) {
    HistogramSnapshot s;
    s.name = name;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.buckets.resize(Histogram::kNumBuckets);
    for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
      s.buckets[b] = h->bucket(b);
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace fpart::obs
