#include "obs/profile.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>

#include "obs/json.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#define FPART_HAS_PERF_EVENT 1
#endif

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <sys/time.h>
#define FPART_PROFILE_HAS_GETRUSAGE 1
#endif

#if defined(__GLIBC__)
#include <malloc.h>
#define FPART_HAS_MALLOC_USABLE_SIZE 1
#endif

namespace fpart::obs {

namespace detail {

std::atomic<bool> g_profile_enabled{false};

std::atomic<bool> g_heap_hook_linked{false};
std::atomic<std::uint64_t> g_heap_alloc_count{0};
std::atomic<std::uint64_t> g_heap_alloc_bytes{0};
std::atomic<std::uint64_t> g_heap_free_count{0};
std::atomic<std::int64_t> g_heap_live_bytes{0};
std::atomic<std::int64_t> g_heap_peak_bytes{0};

thread_local std::uint64_t t_heap_alloc_count = 0;
thread_local std::uint64_t t_heap_alloc_bytes = 0;

void* profiled_alloc(std::size_t size) {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
#if defined(FPART_HAS_MALLOC_USABLE_SIZE)
  const auto bytes = static_cast<std::uint64_t>(malloc_usable_size(p));
#else
  const auto bytes = static_cast<std::uint64_t>(size);
#endif
  t_heap_alloc_count += 1;
  t_heap_alloc_bytes += bytes;
  g_heap_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_heap_alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
#if defined(FPART_HAS_MALLOC_USABLE_SIZE)
  // Live-byte balance and high-watermark need the freed size too, which
  // only malloc_usable_size provides portably enough; without it the
  // watermark stays 0 and heap_stats() reports what it can.
  const std::int64_t live =
      g_heap_live_bytes.fetch_add(static_cast<std::int64_t>(bytes),
                                  std::memory_order_relaxed) +
      static_cast<std::int64_t>(bytes);
  std::int64_t peak = g_heap_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_heap_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
#endif
  return p;
}

void profiled_free(void* p) noexcept {
  if (p == nullptr) return;
  g_heap_free_count.fetch_add(1, std::memory_order_relaxed);
#if defined(FPART_HAS_MALLOC_USABLE_SIZE)
  const auto bytes = static_cast<std::int64_t>(malloc_usable_size(p));
  g_heap_live_bytes.fetch_sub(bytes, std::memory_order_relaxed);
#endif
  std::free(p);
}

}  // namespace detail

// ---------------------------------------------------------------------
// perf_event counter group

namespace {

std::atomic<bool> g_perf_forced_unavailable{false};

struct PerfProbe {
  PerfAvailability availability;
  bool probed = false;
};

std::mutex g_perf_probe_mu;
PerfProbe g_perf_probe;

#if defined(FPART_HAS_PERF_EVENT)

/// The five counters of the group, in a fixed schema order.
constexpr std::uint32_t kPerfConfigs[] = {
    PERF_COUNT_HW_CPU_CYCLES,       PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};
constexpr int kPerfEvents = 5;

int perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                    unsigned long flags) {
  return static_cast<int>(
      syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags));
}

perf_event_attr make_attr(std::uint32_t config, bool leader) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = leader ? 1 : 0;  // group starts/stops via the leader
  attr.exclude_kernel = 1;         // works at perf_event_paranoid <= 2
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                     PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return attr;
}

/// One thread's counter group: leader fd plus member fds and the kernel
/// ids that map group-read slots back to our fixed counter order.
struct PerfGroup {
  int fds[kPerfEvents] = {-1, -1, -1, -1, -1};
  std::uint64_t ids[kPerfEvents] = {};
  bool open = false;
  bool tried = false;

  ~PerfGroup() { close_all(); }

  void close_all() {
    for (int& fd : fds) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    open = false;
  }

  /// Opens the group for the calling thread. Returns false with errno
  /// preserved in `err` on failure of the leader; member failures (a
  /// PMU without that counter) leave the member absent but keep the
  /// group usable.
  bool open_group(int& err) {
    perf_event_attr leader_attr = make_attr(kPerfConfigs[0], true);
    fds[0] = perf_event_open(&leader_attr, 0, -1, -1, 0);
    if (fds[0] < 0) {
      err = errno;
      return false;
    }
    if (ioctl(fds[0], PERF_EVENT_IOC_ID, &ids[0]) != 0) {
      err = errno;
      close_all();
      return false;
    }
    for (int i = 1; i < kPerfEvents; ++i) {
      perf_event_attr attr = make_attr(kPerfConfigs[i], false);
      fds[i] = perf_event_open(&attr, 0, -1, fds[0], 0);
      if (fds[i] >= 0 && ioctl(fds[i], PERF_EVENT_IOC_ID, &ids[i]) != 0) {
        ::close(fds[i]);
        fds[i] = -1;
      }
    }
    ioctl(fds[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(fds[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    open = true;
    return true;
  }

  PerfSample read_sample() {
    PerfSample s;
    if (!open) return s;
    // read_format layout: nr, time_enabled, time_running,
    // then nr * { value, id }.
    std::uint64_t buf[3 + 2 * kPerfEvents] = {};
    const ssize_t n = ::read(fds[0], buf, sizeof buf);
    if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return s;
    const std::uint64_t nr = buf[0];
    const std::uint64_t enabled = buf[1];
    const std::uint64_t running = buf[2];
    // Scale for multiplexing: when the kernel rotates the group against
    // limited PMU hardware, running < enabled and raw counts undercount
    // proportionally.
    const double scale =
        (running > 0 && enabled > running)
            ? static_cast<double>(enabled) / static_cast<double>(running)
            : 1.0;
    for (std::uint64_t slot = 0; slot < nr && slot < kPerfEvents; ++slot) {
      const std::uint64_t value = buf[3 + 2 * slot];
      const std::uint64_t id = buf[3 + 2 * slot + 1];
      for (int i = 0; i < kPerfEvents; ++i) {
        if (fds[i] < 0 || ids[i] != id) continue;
        const auto scaled =
            static_cast<std::uint64_t>(static_cast<double>(value) * scale);
        switch (i) {
          case 0: s.cycles = scaled; break;
          case 1: s.instructions = scaled; break;
          case 2: s.cache_references = scaled; break;
          case 3: s.cache_misses = scaled; break;
          case 4: s.branch_misses = scaled; break;
          default: break;
        }
        break;
      }
    }
    return s;
  }
};

thread_local PerfGroup t_perf_group;

std::string paranoid_hint() {
  FILE* f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "r");
  if (f == nullptr) return "";
  char buf[32] = {};
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  if (n == 0) return "";
  std::string v(buf);
  while (!v.empty() && (v.back() == '\n' || v.back() == ' ')) v.pop_back();
  return " (kernel.perf_event_paranoid=" + v + ")";
}

#endif  // FPART_HAS_PERF_EVENT

/// Probes availability once by opening (and keeping) the calling
/// thread's group. Never throws; failure fills the reason string.
const PerfAvailability& probe_perf() {
  std::lock_guard<std::mutex> lock(g_perf_probe_mu);
  if (g_perf_probe.probed) return g_perf_probe.availability;
  g_perf_probe.probed = true;
  PerfAvailability& a = g_perf_probe.availability;

  const char* disabled = std::getenv("FPART_PERF_DISABLE");
  if (disabled != nullptr && disabled[0] != '\0') {
    a.available = false;
    a.reason = "disabled by FPART_PERF_DISABLE";
    return a;
  }
#if defined(FPART_HAS_PERF_EVENT)
  int err = 0;
  if (t_perf_group.open_group(err)) {
    t_perf_group.tried = true;
    a.available = true;
    a.reason = "";
  } else {
    t_perf_group.tried = true;
    a.available = false;
    a.reason = std::string("perf_event_open: ") + std::strerror(err);
    if (err == EACCES || err == EPERM) a.reason += paranoid_hint();
  }
#else
  a.available = false;
  a.reason = "perf_event_open requires Linux";
#endif
  return a;
}

}  // namespace

namespace detail {
void force_perf_unavailable_for_test(bool forced) {
  g_perf_forced_unavailable.store(forced, std::memory_order_relaxed);
}
}  // namespace detail

const PerfAvailability& perf_availability() {
  static const PerfAvailability forced{false,
                                       "forced unavailable (test hook)"};
  if (g_perf_forced_unavailable.load(std::memory_order_relaxed)) {
    return forced;
  }
  return probe_perf();
}

PerfSample perf_read() {
  if (g_perf_forced_unavailable.load(std::memory_order_relaxed)) {
    return {};
  }
  if (!perf_availability().available) return {};
#if defined(FPART_HAS_PERF_EVENT)
  if (!t_perf_group.tried) {
    t_perf_group.tried = true;
    int err = 0;
    (void)t_perf_group.open_group(err);  // per-thread; probe said yes
  }
  return t_perf_group.read_sample();
#else
  return {};
#endif
}

void set_profile_enabled(bool enabled) {
  detail::g_profile_enabled.store(enabled, std::memory_order_relaxed);
  if (enabled) (void)perf_availability();  // probe (and diagnose) eagerly
}

// ---------------------------------------------------------------------
// Memory telemetry

HeapStats heap_stats() {
  HeapStats s;
  s.available = detail::g_heap_hook_linked.load(std::memory_order_relaxed);
  if (!s.available) return s;
  s.alloc_count = detail::g_heap_alloc_count.load(std::memory_order_relaxed);
  s.alloc_bytes = detail::g_heap_alloc_bytes.load(std::memory_order_relaxed);
  s.free_count = detail::g_heap_free_count.load(std::memory_order_relaxed);
  const std::int64_t live =
      detail::g_heap_live_bytes.load(std::memory_order_relaxed);
  const std::int64_t peak =
      detail::g_heap_peak_bytes.load(std::memory_order_relaxed);
  s.live_bytes = live > 0 ? static_cast<std::uint64_t>(live) : 0;
  s.peak_bytes = peak > 0 ? static_cast<std::uint64_t>(peak) : 0;
  return s;
}

std::uint64_t thread_alloc_count() { return detail::t_heap_alloc_count; }
std::uint64_t thread_alloc_bytes() { return detail::t_heap_alloc_bytes; }

std::uint64_t peak_rss_bytes() {
#if defined(FPART_PROFILE_HAS_GETRUSAGE)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB
#endif
#else
  return 0;
#endif
}

void write_profile_section(JsonWriter& w) {
  const PerfAvailability& perf = perf_availability();
  const HeapStats heap = heap_stats();
  w.begin_object();
  w.key("perf");
  w.begin_object();
  w.key("available");
  w.value(perf.available);
  if (!perf.available) {
    w.key("reason");
    w.value(perf.reason);
  }
  w.end_object();
  w.key("heap");
  w.begin_object();
  w.key("available");
  w.value(heap.available);
  w.key("alloc_count");
  w.value(heap.alloc_count);
  w.key("alloc_bytes");
  w.value(heap.alloc_bytes);
  w.key("free_count");
  w.value(heap.free_count);
  w.key("live_bytes");
  w.value(heap.live_bytes);
  w.key("peak_bytes");
  w.value(heap.peak_bytes);
  w.end_object();
  w.key("peak_rss_bytes");
  w.value(peak_rss_bytes());
  w.end_object();
}

}  // namespace fpart::obs
