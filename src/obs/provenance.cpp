#include "obs/provenance.hpp"

#include "obs/json.hpp"

// Baked in by src/obs/CMakeLists.txt (set_source_files_properties on
// this file only, so touching the git HEAD rebuilds one TU).
#ifndef FPART_GIT_SHA
#define FPART_GIT_SHA "unknown"
#endif
#ifndef FPART_GIT_DIRTY
#define FPART_GIT_DIRTY 0
#endif
#ifndef FPART_BUILD_TYPE
#define FPART_BUILD_TYPE ""
#endif
#ifndef FPART_CXX_FLAGS
#define FPART_CXX_FLAGS ""
#endif
#ifndef FPART_SANITIZE_FLAGS
#define FPART_SANITIZE_FLAGS ""
#endif

namespace fpart::obs {

namespace {

std::string detect_compiler() {
#if defined(__clang_version__)
  return std::string("Clang ") + __clang_version__;
#elif defined(__GNUC__) && defined(__VERSION__)
  return std::string("GNU ") + __VERSION__;
#elif defined(_MSC_VER)
  return "MSVC " + std::to_string(_MSC_VER);
#else
  return "unknown";
#endif
}

}  // namespace

const BuildProvenance& build_provenance() {
  static const BuildProvenance p = [] {
    BuildProvenance b;
    b.git_sha = FPART_GIT_SHA;
    b.git_dirty = FPART_GIT_DIRTY != 0;
    b.compiler = detect_compiler();
    b.build_type = FPART_BUILD_TYPE;
    b.cxx_flags = FPART_CXX_FLAGS;
    b.sanitizer = FPART_SANITIZE_FLAGS;
    return b;
  }();
  return p;
}

void write_provenance(JsonWriter& w) {
  const BuildProvenance& p = build_provenance();
  w.begin_object();
  w.key("git_sha");
  w.value(p.git_sha);
  w.key("git_dirty");
  w.value(p.git_dirty);
  w.key("compiler");
  w.value(p.compiler);
  w.key("build_type");
  w.value(p.build_type);
  w.key("cxx_flags");
  w.value(p.cxx_flags);
  w.key("sanitizer");
  w.value(p.sanitizer);
  w.end_object();
}

}  // namespace fpart::obs
