// Move-level flight recorder: a compact append buffer of structured
// events covering every partition mutation (move / block add / remove /
// swap / snapshot restore) plus the semantic decisions of the engines
// (pass boundaries, rollback-to-best, repair steps, flow augmentations,
// feasibility transitions, solution-stack traffic).
//
// The buffer flushes as a versioned JSONL event log (`fpart-events/1`):
//   line 1    — header: schema, method, RNG seed, full options JSON,
//               device, hypergraph digest;
//   lines 2.. — one event object per line, in emission order;
//   last line — final-state footer (cut, k, per-block S/T, assignment
//               digest) appended by summarize_partition().
//
// The mutation events alone are a complete replay script: applying them
// in order to a fresh Partition over the same hypergraph reproduces the
// recorded final partition exactly (tools/fpart_inspect replay, and
// partition/replay.hpp). Everything else is analysis sugar.
//
// Overhead discipline matches stats.hpp: when disabled, a record is one
// thread-local bool load and a predictable branch; when enabled it is a
// push_back of a 24-byte POD into a reserved vector (no atomics, no
// formatting — JSON rendering happens only at flush). Recording is
// per-thread: instance() resolves to the calling thread's installed
// recorder (install_recorder / ScopedRecorderInstall), so the parallel
// portfolio gives every attempt its own private, replayable log. See
// docs/PARALLEL.md for the threading contract.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fpart::obs {

inline constexpr const char* kEventLogSchema = "fpart-events/1";

/// What happened. Mutation kinds (kInit..kSwapBlocks) are sufficient for
/// replay; the rest annotate engine decisions.
enum class EventKind : std::uint8_t {
  kInit = 0,       // fresh Partition: a=num_blocks, value=num_nodes
  kMove,           // a=node, b=from, c=to, gain (staged), value=cut after
  kAddBlock,       // a=new block id
  kRemoveBlock,    // a=removed block id
  kSwapBlocks,     // a,b = the swapped block ids
  kRestore,        // snapshot restore marker: a=#diff moves, b=k after
  kPassBegin,      // a=pass index, value=cut (fm) / total pins (sanchis)
  kPassEnd,        // a=moves, b=rolled back, c=improved, value=best metric
  kRollback,       // rollback-to-best: a=#moves undone, b=best prefix len
  kImproveBegin,   // a=#active blocks, value=cut
  kStackPush,      // solution stack accepted a snapshot: a=stack size
  kStackRewind,    // restart from a stack entry: a=entry index
  kRepair,         // shrink_to_feasible: a=block, b=#cells evicted
  kFlowAugment,    // one max-flow solve: a=#augmenting paths, value=flow
  kFeasibility,    // class transition: a=class, b=#feasible blocks, c=k
  kIteration,      // FPART iteration: a=index, b=k, c=rem pins, value=rem size
};

/// Which engine emitted a semantic event (mutation events use kNone —
/// they are attributed to the partition itself).
enum class Engine : std::uint8_t {
  kNone = 0,
  kFm,
  kSanchis,
  kFbb,
  kFpart,
  kRepair,
  kKwayx,      // greedy k-way baseline (timeseries samples only)
  kClustered,  // clustered multilevel driver (timeseries samples only)
  kMultilevel, // multilevel V-cycle boundary refinement
};

/// Gain sentinel for moves whose driver did not stage a gain
/// (constructive placement, repair, restore diffs). Serialized as null.
inline constexpr std::int32_t kNoGain = INT32_MIN;

struct Event {
  EventKind kind = EventKind::kInit;
  Engine engine = Engine::kNone;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  std::int32_t gain = kNoGain;
  std::uint64_t value = 0;

  bool operator==(const Event&) const = default;
};

/// Run identity captured in the log header. All fields are plain data so
/// the recorder stays free of core/device dependencies; helpers in the
/// drivers fill it (see report/run_report.hpp::make_event_log_header).
struct RunHeader {
  std::string method;
  std::uint64_t seed = 0;
  std::string device_name;
  std::uint64_t device_smax = 0;
  std::uint64_t device_tmax = 0;
  double device_fill = 0.0;
  std::uint64_t graph_nodes = 0;
  std::uint64_t graph_interior = 0;
  std::uint64_t graph_nets = 0;
  std::uint64_t graph_pins = 0;
  std::uint64_t graph_digest = 0;
  /// Full Options serialized as a JSON object (empty = "{}").
  std::string options_json;
};

/// Final partition state appended as the log footer; the replay oracle.
struct FinalState {
  std::uint32_t k = 0;
  std::uint64_t cut = 0;
  std::uint64_t km1 = 0;
  std::uint64_t assignment_digest = 0;
  /// Per block: (size S_j, pin demand T_j).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> blocks;
};

class Recorder;

namespace detail {
// Recording is a strictly per-thread affair: each thread has its own
// "capturing" latch and an optionally installed recorder, so concurrent
// portfolio attempts write into disjoint buffers with no synchronization
// (and a worker thread never leaks events into another attempt's log).
extern thread_local bool t_recorder_enabled;
extern thread_local Recorder* t_current_recorder;
}  // namespace detail

/// True while the calling thread's flight recorder captures events.
inline bool recorder_enabled() { return detail::t_recorder_enabled; }

/// Installs `r` as the calling thread's recorder — Recorder::instance()
/// returns it until uninstalled. Returns the previously installed
/// recorder (nullptr = the process-wide default). Does not change the
/// thread's capturing latch; call start()/stop() on the recorder itself.
Recorder* install_recorder(Recorder* r);

/// The event buffer. One per thread of execution: instance() resolves to
/// the calling thread's installed recorder (see install_recorder /
/// ScopedRecorderInstall), falling back to a process-wide default owned
/// by the main pipeline thread. start()/record()/finish() only ever
/// touch calling-thread state, so attempts racing on a thread pool each
/// keep a private, replayable log.
class Recorder {
 public:
  /// A fresh, empty, disabled recorder. The portfolio engine constructs
  /// one per attempt and installs it with ScopedRecorderInstall; most
  /// single-run code just uses the process-wide instance().
  Recorder() = default;

  static Recorder& instance();

  /// Clears the buffer, installs the header and enables recording.
  void start(RunHeader header);

  /// Disables recording; the buffer and header stay readable until the
  /// next start().
  void stop();

  /// Appends one event (no-op unless enabled). Inline hot path.
  void record(const Event& e) {
    if (!recorder_enabled()) return;
    events_.push_back(e);
  }

  /// Stages the gain of the next kMove event. Engines call this right
  /// before Partition::move so the mutation event carries the decision's
  /// gain without a second event. Consumed (reset to kNoGain) by the
  /// next take_staged_gain().
  void stage_gain(std::int32_t gain) { staged_gain_ = gain; }
  std::int32_t take_staged_gain() {
    const std::int32_t g = staged_gain_;
    staged_gain_ = kNoGain;
    return g;
  }

  /// Records the footer (latest call wins; summarize_partition runs once
  /// per partitioning run).
  void set_final_state(FinalState state);

  const RunHeader& header() const { return header_; }
  const std::vector<Event>& events() const { return events_; }
  const std::optional<FinalState>& final_state() const { return final_; }
  std::uint64_t event_count() const { return events_.size(); }

  /// Serializes header + events + footer as fpart-events/1 JSONL.
  std::string to_jsonl() const;

  /// Writes to_jsonl() to `path`. Throws PreconditionError on IO error.
  void write_jsonl(const std::string& path) const;

  /// Drops everything (buffer, header, footer) and disables recording.
  void reset();

 private:
  RunHeader header_;
  std::vector<Event> events_;
  std::optional<FinalState> final_;
  std::int32_t staged_gain_ = kNoGain;
};

/// RAII: installs `r` for the calling thread and parks the thread's
/// capturing latch; destruction restores both (which also stops `r` —
/// the latch is per-thread, not per-recorder). The portfolio engine
/// wraps each attempt in one of these so per-attempt logs cannot bleed
/// into each other even when attempts share a worker thread.
class ScopedRecorderInstall {
 public:
  explicit ScopedRecorderInstall(Recorder* r)
      : prev_(install_recorder(r)),
        prev_enabled_(detail::t_recorder_enabled) {
    detail::t_recorder_enabled = false;
  }
  ~ScopedRecorderInstall() {
    detail::t_recorder_enabled = prev_enabled_;
    install_recorder(prev_);
  }
  ScopedRecorderInstall(const ScopedRecorderInstall&) = delete;
  ScopedRecorderInstall& operator=(const ScopedRecorderInstall&) = delete;

 private:
  Recorder* prev_;
  bool prev_enabled_;
};

/// Convenience for call sites: record one event when enabled.
inline void record_event(EventKind kind, Engine engine, std::uint32_t a = 0,
                         std::uint32_t b = 0, std::uint32_t c = 0,
                         std::int32_t gain = kNoGain,
                         std::uint64_t value = 0) {
  if (!recorder_enabled()) return;
  Recorder::instance().record(Event{kind, engine, a, b, c, gain, value});
}

/// One parsed fpart-events/1 document.
struct EventLog {
  RunHeader header;
  std::vector<Event> events;
  std::optional<FinalState> final_state;
};

/// Serializes a single event as a JSON object (the JSONL line body).
std::string event_json(const Event& e, std::uint64_t index);

/// Human-readable kind name ("move", "pass_begin", ...).
const char* event_kind_name(EventKind kind);
const char* engine_name(Engine engine);

/// Parses an fpart-events/1 JSONL document from text / a file. Throws
/// PreconditionError with a line number on malformed input.
EventLog parse_event_log(const std::string& text);
EventLog read_event_log(const std::string& path);

}  // namespace fpart::obs
