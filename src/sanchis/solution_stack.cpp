#include "sanchis/solution_stack.hpp"

#include "obs/recorder.hpp"

namespace fpart {

namespace {
bool equal_eval(const SolutionEval& a, const SolutionEval& b) {
  return !a.better_than(b) && !b.better_than(a);
}
}  // namespace

bool SolutionStack::would_accept(const SolutionEval& eval) const {
  if (depth_ == 0) return false;
  for (const Entry& e : entries_) {
    if (equal_eval(e.eval, eval)) return false;  // duplicate
  }
  if (entries_.size() < depth_) return true;
  return eval.better_than(entries_.back().eval);
}

bool SolutionStack::offer(const SolutionEval& eval, const Partition& p) {
  if (!would_accept(eval)) return false;
  // Ordered insert, best first.
  std::size_t pos = entries_.size();
  while (pos > 0 && eval.better_than(entries_[pos - 1].eval)) --pos;
  entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(pos),
                  Entry{eval, p.snapshot()});
  if (entries_.size() > depth_) entries_.pop_back();
  obs::record_event(obs::EventKind::kStackPush, obs::Engine::kSanchis,
                    static_cast<std::uint32_t>(entries_.size()),
                    static_cast<std::uint32_t>(pos), 0, obs::kNoGain,
                    eval.total_pins);
  return true;
}

}  // namespace fpart
