#include "sanchis/move_region.hpp"

#include <limits>

#include "util/assert.hpp"

namespace fpart {

MoveRegion make_move_region(const Partition& p, const Device& d,
                            BlockId remainder, bool two_block_pass,
                            bool allow_size_violations,
                            const MoveRegionParams& params) {
  FPART_REQUIRE(remainder < p.num_blocks(), "remainder out of range");
  const std::uint32_t k = p.num_blocks();
  MoveRegion region;
  region.lo.assign(k, 0.0);
  region.hi.assign(k, 0.0);
  const double eps_min =
      two_block_pass ? params.eps_min_two_block : params.eps_min_multi;
  for (BlockId b = 0; b < k; ++b) {
    if (b == remainder) {
      region.lo[b] = 0.0;
      region.hi[b] = std::numeric_limits<double>::infinity();
    } else {
      region.lo[b] = eps_min * d.s_max();
      region.hi[b] =
          allow_size_violations ? params.eps_max * d.s_max() : d.s_max();
    }
  }
  return region;
}

}  // namespace fpart
