#include "sanchis/refiner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fm/gains.hpp"
#include "fm/repair.hpp"
#include "obs/phase.hpp"
#include "obs/recorder.hpp"
#include "obs/stats.hpp"
#include "obs/timeseries.hpp"
#include "partition/audit.hpp"
#include "util/assert.hpp"

namespace fpart {

MultiwayRefiner::MultiwayRefiner(Partition& p, const Evaluator& eval,
                                 BlockId remainder, RefinerConfig config)
    : p_(p), eval_(eval), remainder_(remainder), config_(config) {}

bool MultiwayRefiner::move_legal(NodeId v, BlockId from, BlockId to,
                                 const MoveRegion& region) const {
  const double s = static_cast<double>(p_.graph().node_size(v));
  return region.allows_leave(from,
                             static_cast<double>(p_.block_size(from)) - s) &&
         region.allows_enter(to,
                             static_cast<double>(p_.block_size(to)) + s);
}

void MultiwayRefiner::compute_gains(NodeId v, std::vector<int>& out) const {
  const Hypergraph& h = p_.graph();
  const BlockId from = p_.block_of(v);
  const std::size_t k = active_.size();
  out.assign(k, 0);
  if (config_.gain_mode == GainMode::kPinCount) {
    // Future-work gain: the exact reduction in total I/O pin demand.
    // Only the source and destination blocks' demands change, so
    // gain = −(ΔT_from + ΔT_to).
    const int delta_from = pin_delta_if_removed(p_, v, from);
    for (std::size_t t = 0; t < k; ++t) {
      const BlockId b = active_[t];
      if (b == from) continue;
      out[t] = -(delta_from + pin_delta_if_added(p_, v, b));
    }
    return;
  }
  int loss = 0;
  for (NetId e : h.nets(v)) {
    const std::uint32_t total = h.net_interior_pin_count(e);
    if (total < 2) continue;
    // One contiguous arena row per net: the loss test and the
    // nearly-uncut scan below read from the same cache-resident row.
    const std::uint32_t* const row = p_.net_row(e);
    const std::uint32_t phi_f = row[from];
    if (phi_f == total) {
      ++loss;
      continue;
    }
    if (phi_f == 1) {
      // At most one block can hold the remaining total-1 pins.
      for (std::size_t t = 0; t < k; ++t) {
        const BlockId b = active_[t];
        if (b == from) continue;
        if (row[b] == total - 1) {
          ++out[t];
          break;
        }
      }
    }
  }
  if (loss != 0) {
    for (int& g : out) g -= loss;
  }
}

void MultiwayRefiner::init_buckets() {
  const Hypergraph& h = p_.graph();
  const std::size_t k = active_.size();
  for (auto& b : buckets_) b.clear();
  std::fill(in_buckets_.begin(), in_buckets_.end(), 0);

  std::vector<int>& gains = gains_scratch_;
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (h.is_terminal(v)) continue;
    const std::uint32_t f_idx = active_index_[p_.block_of(v)];
    if (f_idx == kNone) continue;
    compute_gains(v, gains);
    for (std::size_t t = 0; t < k; ++t) {
      if (t == f_idx) continue;
      bucket(f_idx, t).insert(v, gains[t]);
    }
    in_buckets_[v] = 1;
  }
}

void MultiwayRefiner::refresh_node(NodeId v) {
  if (!in_buckets_[v]) return;
  const std::size_t k = active_.size();
  const std::uint32_t f_idx = active_index_[p_.block_of(v)];
  FPART_DASSERT(f_idx != kNone);
  // Member scratch: refresh_node runs once per (move, neighbor) — a
  // per-call vector would be a per-move allocation on the hot path.
  std::vector<int>& gains = gains_scratch_;
  compute_gains(v, gains);
  for (std::size_t t = 0; t < k; ++t) {
    if (t == f_idx) continue;
    bucket(f_idx, t).update(v, gains[t]);
  }
}

MultiwayRefiner::Candidate MultiwayRefiner::select_move(
    const MoveRegion& region) {
  const std::size_t k = active_.size();
  const double min_size =
      1.0;  // interior nodes have size >= 1 by construction

  // Per-direction champions (best legal candidate). Member scratch:
  // select_move runs once per move and must not allocate.
  std::vector<Candidate>& champions = champions_;
  champions.clear();
  int max_gain = std::numeric_limits<int>::min();
  for (std::size_t f = 0; f < k; ++f) {
    const BlockId from = active_[f];
    // Quick reject: no cell of any size can leave `from`.
    if (static_cast<double>(p_.block_size(from)) - min_size <
        region.lo[from]) {
      continue;
    }
    for (std::size_t t = 0; t < k; ++t) {
      if (t == f) continue;
      const BlockId to = active_[t];
      if (static_cast<double>(p_.block_size(to)) + min_size >
          region.hi[to]) {
        continue;  // nothing can enter `to`
      }
      GainBucket& bk = bucket(f, t);
      if (bk.empty()) continue;
      const auto top = bk.best_gain();
      if (!top || *top < max_gain) continue;  // cannot beat current best
      const auto id = bk.find_first(
          [&](std::uint32_t v, int) {
            return move_legal(static_cast<NodeId>(v), from, to, region);
          },
          config_.legality_scan_limit);
      if (!id) continue;
      Candidate c;
      c.node = static_cast<NodeId>(*id);
      c.from_idx = f;
      c.to_idx = t;
      c.gain = bk.gain(*id);
      if (c.gain > max_gain) {
        max_gain = c.gain;
        champions.clear();
      }
      if (c.gain == max_gain) champions.push_back(c);
    }
  }
  if (champions.empty()) return Candidate{};
  if (champions.size() == 1 && !config_.use_level2_gains) {
    return champions.front();
  }

  // Tie-break per §3.7: prefer FROM-remainder, then level-2 gain, then
  // size balance MAX(S_FROM − S_TO); finally lowest direction index for
  // determinism. Within one direction, equal-gain entries are scanned
  // (bounded) for the best level-2 gain.
  Candidate best;
  bool best_from_rem = false;
  int best_g2 = std::numeric_limits<int>::min();
  double best_balance = -std::numeric_limits<double>::infinity();
  for (Candidate& c : champions) {
    const BlockId from = active_[c.from_idx];
    const BlockId to = active_[c.to_idx];
    int g2 = std::numeric_limits<int>::min();
    NodeId pick = c.node;
    if (config_.use_level2_gains) {
      std::size_t scanned = 0;
      bucket(c.from_idx, c.to_idx)
          .for_each_at_gain(c.gain, [&](std::uint32_t v) {
            if (scanned++ >= config_.tie_scan_limit) return true;
            if (!move_legal(static_cast<NodeId>(v), from, to, region)) {
              return false;
            }
            const int g = move_gain_level2(p_, static_cast<NodeId>(v), to);
            if (g > g2) {
              g2 = g;
              pick = static_cast<NodeId>(v);
            }
            return false;
          });
    }
    c.node = pick;
    const bool from_rem =
        config_.prefer_moves_from_remainder && from == remainder_;
    const double balance = static_cast<double>(p_.block_size(from)) -
                           static_cast<double>(p_.block_size(to));
    bool better = false;
    if (!best.valid()) {
      better = true;
    } else if (from_rem != best_from_rem) {
      better = from_rem;
    } else if (g2 != best_g2) {
      better = g2 > best_g2;
    } else if (balance != best_balance) {
      better = balance > best_balance;
    }
    if (better) {
      best = c;
      best_from_rem = from_rem;
      best_g2 = g2;
      best_balance = balance;
    }
  }
  return best;
}

bool MultiwayRefiner::pass(const MoveRegion& region, bool collect_stacks,
                           RefineStats* stats) {
  FPART_COUNTER_INC("sanchis.passes");
  const Hypergraph& h = p_.graph();
  const SolutionEval start = eval_.evaluate(p_, remainder_);
  SolutionEval best = start;
  std::size_t best_len = 0;
  const std::uint32_t pass_idx = pass_seq_++;
  obs::record_event(obs::EventKind::kPassBegin, obs::Engine::kSanchis,
                    pass_idx, 0, 0, obs::kNoGain, start.total_pins);
  // Total live entries across the k x k gain-bucket matrix (each
  // unlocked active cell appears once per destination block).
  const auto bucket_occupancy = [this] {
    std::size_t total = 0;
    for (const auto& b : buckets_) total += b.size();
    return static_cast<std::uint32_t>(total);
  };

  init_buckets();
  std::vector<std::pair<NodeId, BlockId>> log;
  std::uint32_t moves_since_best = 0;

  while (true) {
    if (config_.max_moves_per_pass != 0 &&
        log.size() >= config_.max_moves_per_pass) {
      break;
    }
    const Candidate c = select_move(region);
    if (!c.valid()) break;
    const NodeId v = c.node;
    const BlockId from = active_[c.from_idx];
    const BlockId to = active_[c.to_idx];

    for (std::size_t t = 0; t < active_.size(); ++t) {
      if (t != c.from_idx) bucket(c.from_idx, t).remove(v);
    }
    in_buckets_[v] = 0;  // locked for the rest of the pass
    if (obs::recorder_enabled()) {
      obs::Recorder::instance().stage_gain(c.gain);
    }
    p_.move(v, to);
    log.emplace_back(v, from);
    if (stats != nullptr) ++stats->moves;

    // Refresh gains of active, unlocked cells sharing a net with v.
    ++epoch_;
    for (NetId e : h.nets(v)) {
      for (NodeId w : h.interior_pins(e)) {
        if (w == v || node_epoch_[w] == epoch_) continue;
        node_epoch_[w] = epoch_;
        refresh_node(w);
      }
    }

    const SolutionEval cur = eval_.evaluate(p_, remainder_);
    if (collect_stacks && config_.stack_depth > 0 &&
        cur.feasible_blocks + 2 <= cur.num_blocks &&
        infeasible_stack_.would_accept(cur)) {
      infeasible_stack_.offer(cur, p_);
    }
    if (cur.better_than(best)) {
      best = cur;
      best_len = log.size();
      moves_since_best = 0;
    } else {
      ++moves_since_best;
      // §5 future work: cut the pass short when the trajectory keeps
      // drifting away from the feasible region.
      if (config_.infeasible_stop_window != 0 &&
          moves_since_best >= config_.infeasible_stop_window &&
          cur.feasible_blocks < cur.num_blocks) {
        break;
      }
    }

    if (obs::timeseries_enabled() &&
        obs::TimeSeries::instance().should_sample_move()) {
      obs::sample_point(obs::SampleKind::kWindow, obs::Engine::kSanchis,
                        pass_idx, p_.cut_size(), best.total_pins,
                        cur.feasible_blocks, cur.num_blocks,
                        static_cast<std::uint32_t>(log.size()), 0,
                        bucket_occupancy());
    }
  }

  if (audit_enabled()) audit_bucket_gains();

  if (log.size() > best_len) {
    obs::record_event(obs::EventKind::kRollback, obs::Engine::kSanchis,
                      static_cast<std::uint32_t>(log.size() - best_len),
                      static_cast<std::uint32_t>(best_len), 0, obs::kNoGain,
                      best.total_pins);
  }
  for (std::size_t i = log.size(); i > best_len; --i) {
    p_.move(log[i - 1].first, log[i - 1].second);
  }
  // Counters are batched per pass; the per-move inner loop stays free of
  // atomics (see docs/OBSERVABILITY.md, overhead budget).
  FPART_COUNTER_ADD("sanchis.moves", log.size());
  FPART_COUNTER_ADD("sanchis.moves_rolled_back", log.size() - best_len);
  // Pass gain in the T_SUM key of the lexicographic order (the only
  // integral objective component): positive = fewer total I/O pins.
  FPART_HISTOGRAM_RECORD(
      "sanchis.pass_gain",
      static_cast<std::int64_t>(start.total_pins) -
          static_cast<std::int64_t>(best.total_pins));

  if (collect_stacks && config_.stack_depth > 0 &&
      best.feasible_blocks + 1 >= best.num_blocks) {
    semi_stack_.offer(best, p_);
  }
  if (best.better_than(best_eval_)) {
    best_eval_ = best;
    best_snapshot_ = p_.snapshot();
    if (stats != nullptr) stats->improved = true;
  }
  obs::record_event(obs::EventKind::kPassEnd, obs::Engine::kSanchis,
                    static_cast<std::uint32_t>(log.size()),
                    static_cast<std::uint32_t>(log.size() - best_len),
                    best.better_than(start) ? 1 : 0, obs::kNoGain,
                    best.total_pins);
  obs::sample_point(obs::SampleKind::kPass, obs::Engine::kSanchis, pass_idx,
                    p_.cut_size(), best.total_pins, best.feasible_blocks,
                    best.num_blocks, static_cast<std::uint32_t>(log.size()),
                    static_cast<std::uint32_t>(log.size() - best_len),
                    bucket_occupancy());
  if (audit_enabled()) audit_partition(p_, "sanchis.pass");
  return best.better_than(start);
}

void MultiwayRefiner::audit_bucket_gains() {
  const Hypergraph& h = p_.graph();
  const std::size_t k = active_.size();
  std::vector<int> gains;
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!in_buckets_[v]) continue;
    const std::uint32_t f_idx = active_index_[p_.block_of(v)];
    if (f_idx == kNone) {
      audit_fail("sanchis.pass", "node " + std::to_string(v) +
                                     " in buckets but its block is inactive");
    }
    compute_gains(v, gains);
    for (std::size_t t = 0; t < k; ++t) {
      if (t == f_idx) continue;
      GainBucket& bk = bucket(f_idx, t);
      if (!bk.contains(v)) {
        audit_fail("sanchis.pass",
                   "node " + std::to_string(v) +
                       " missing from direction bucket " +
                       std::to_string(f_idx) + "->" + std::to_string(t));
      }
      if (bk.gain(v) != gains[t]) {
        audit_fail("sanchis.pass",
                   "stale gain for node " + std::to_string(v) +
                       " direction " + std::to_string(f_idx) + "->" +
                       std::to_string(t) + ": bucket " +
                       std::to_string(bk.gain(v)) + ", recomputed " +
                       std::to_string(gains[t]));
      }
    }
  }
}

void MultiwayRefiner::run_series(const MoveRegion& region,
                                 bool collect_stacks, RefineStats* stats) {
  for (int i = 0; i < config_.max_passes; ++i) {
    if (stats != nullptr) ++stats->passes;
    if (!pass(region, collect_stacks, stats)) break;
  }
}

SolutionEval MultiwayRefiner::improve(std::span<const BlockId> blocks,
                                      const MoveRegion& region,
                                      RefineStats* stats) {
  FPART_REQUIRE(blocks.size() >= 2, "improve needs at least two blocks");
  FPART_REQUIRE(region.lo.size() == p_.num_blocks(),
                "move region size mismatch");
  const obs::ScopedPhase phase("sanchis.improve");
  FPART_COUNTER_INC("sanchis.improve_calls");
  obs::record_event(obs::EventKind::kImproveBegin, obs::Engine::kSanchis,
                    static_cast<std::uint32_t>(blocks.size()), 0, 0,
                    obs::kNoGain, p_.cut_size());
  FPART_HISTOGRAM_RECORD("sanchis.active_blocks", blocks.size());
  if (obs::stats_enabled()) {
    // Move-region width per active block; the remainder's +inf window is
    // skipped (it would poison the histogram).
    for (const BlockId b : blocks) {
      if (std::isfinite(region.hi[b])) {
        FPART_HISTOGRAM_RECORD("sanchis.move_region_size",
                               region.hi[b] - region.lo[b]);
      }
    }
  }

  active_.assign(blocks.begin(), blocks.end());
  active_index_.assign(p_.num_blocks(), kNone);
  for (std::size_t i = 0; i < active_.size(); ++i) {
    FPART_REQUIRE(active_[i] < p_.num_blocks(), "active block out of range");
    FPART_REQUIRE(active_index_[active_[i]] == kNone,
                  "duplicate active block");
    active_index_[active_[i]] = static_cast<std::uint32_t>(i);
  }

  const Hypergraph& h = p_.graph();
  const std::size_t k = active_.size();
  // Pin-count gains can reach ±2·degree (both endpoints change demand).
  const int max_gain = 2 * static_cast<int>(h.max_node_degree());
  buckets_.clear();
  buckets_.reserve(k * k);
  for (std::size_t f = 0; f < k; ++f) {
    for (std::size_t t = 0; t < k; ++t) {
      if (f == t) {
        buckets_.emplace_back(0, 0);  // unused diagonal placeholder
      } else {
        buckets_.emplace_back(h.num_nodes(), max_gain);
      }
    }
  }
  in_buckets_.assign(h.num_nodes(), 0);
  node_epoch_.assign(h.num_nodes(), 0);
  epoch_ = 0;

  best_eval_ = eval_.evaluate(p_, remainder_);
  best_snapshot_ = p_.snapshot();
  semi_stack_ = SolutionStack(config_.stack_depth);
  infeasible_stack_ = SolutionStack(config_.stack_depth);

  run_series(region, /*collect_stacks=*/true, stats);

  if (config_.stack_depth > 0) {
    // The §3.6 restart phase: a series of passes from every stored
    // solution, semi-feasible entries first, then infeasible ones.
    std::vector<SolutionStack::Entry> starts = semi_stack_.entries();
    const auto& inf = infeasible_stack_.entries();
    starts.insert(starts.end(), inf.begin(), inf.end());
    for (std::size_t i = 0; i < starts.size(); ++i) {
      obs::record_event(obs::EventKind::kStackRewind, obs::Engine::kSanchis,
                        static_cast<std::uint32_t>(i),
                        static_cast<std::uint32_t>(starts.size()));
      p_.restore(starts[i].snapshot);
      if (stats != nullptr) ++stats->restarts;
      FPART_COUNTER_INC("sanchis.stack_rewinds");
      run_series(region, /*collect_stacks=*/false, stats);
    }
  }

  p_.restore(best_snapshot_);
  return best_eval_;
}

}  // namespace fpart
