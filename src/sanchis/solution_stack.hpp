// Bounded best-solution stack (paper §3.6).
//
// Keeps at most `depth` snapshots ordered best-first by the lexicographic
// solution evaluation. A candidate is compared against the head and tail:
// rejected when the stack is full and it does not beat the tail, inserted
// in order otherwise. Exact duplicates (equal evaluation) are dropped so
// the restart series does not waste passes on identical starting points.
//
// FPART runs two such stacks in parallel: one of semi-feasible solutions
// (pass results) and one of infeasible solutions sampled mid-pass; a
// series of FM passes is then restarted from every entry.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "partition/evaluator.hpp"
#include "partition/partition.hpp"

namespace fpart {

class SolutionStack {
 public:
  struct Entry {
    SolutionEval eval;
    Partition::Snapshot snapshot;
  };

  explicit SolutionStack(std::size_t depth) : depth_(depth) {}

  std::size_t depth() const { return depth_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Offers a candidate. Returns true if it was inserted.
  bool offer(const SolutionEval& eval, const Partition& p);

  /// True iff a candidate with this eval would be inserted — callers use
  /// this to skip the O(n) snapshot when the offer would be rejected.
  bool would_accept(const SolutionEval& eval) const;

  void clear() { entries_.clear(); }

 private:
  std::size_t depth_;
  std::vector<Entry> entries_;  // best first
};

}  // namespace fpart
