// Sanchis-style multiway iterative improvement [14], tuned per the paper.
//
// The refiner improves a designated subset of blocks ("active blocks")
// of a partition in place — FPART's Improve(...) calls map 1:1 onto
// improve() invocations with different subsets (the two lately created
// blocks, all blocks, remainder + P_MIN_size, ...).
//
// Mechanics per pass:
//   * one gain bucket per ordered pair of active blocks (k·(k−1)
//     direction buckets), indexed by the exact level-1 cut-net gain;
//   * candidate selection takes the best legal move across all
//     directions; ties on gain are broken by (a) preferring moves FROM
//     the remainder, (b) the 2-level lookahead gain, (c) the size
//     balance MAX(S_FROM − S_TO) — the §3.7 rules;
//   * legality = the feasible-move region (move_region.hpp); I/O pin
//     violations are never constrained;
//   * each cell is locked after its move; after the pass the move tail
//     beyond the lexicographically best prefix (evaluator.hpp) is rolled
//     back.
//
// Across passes, two depth-D_stack solution stacks (semi-feasible pass
// results + infeasible mid-pass samples) are filled during the first
// pass series, then a series of passes restarts from every entry and the
// global best solution is restored — at most 2·D_stack+1 starting points
// per improve() call, exactly the §3.6 budget.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fm/gain_bucket.hpp"
#include "partition/evaluator.hpp"
#include "partition/partition.hpp"
#include "sanchis/move_region.hpp"
#include "sanchis/solution_stack.hpp"

namespace fpart {

/// Which quantity drives the move gain (the paper's §5 proposes pin
/// gains as future work: "incorporate the real gain in I/O pin number of
/// a block instead of the gain in number of cut nets").
enum class GainMode {
  kCutNets,   // classic FM/Sanchis: reduction in cut-net count
  kPinCount,  // future-work: reduction in total I/O pin demand ΔT_f+ΔT_t
};

struct RefinerConfig {
  /// Maximum FM passes per series (initial series and per stack restart).
  int max_passes = 8;
  /// Solution stack depth D_stack (0 disables the restart phase).
  std::size_t stack_depth = 4;
  /// Candidates inspected per direction when bucket heads are blocked by
  /// the move region.
  std::size_t legality_scan_limit = 64;
  /// Equal-gain entries examined per direction for the level-2 /
  /// balance tie-break.
  std::size_t tie_scan_limit = 16;
  /// §3.7: prefer moves FROM the remainder among equal-gain candidates.
  bool prefer_moves_from_remainder = true;
  /// Use the 2-level lookahead gain in tie-breaks.
  bool use_level2_gains = true;
  /// Safety valve: hard cap on moves per pass (0 = no cap beyond the
  /// one-move-per-cell lock discipline).
  std::uint32_t max_moves_per_pass = 0;

  /// Gain definition driving bucket order (paper future work §5).
  GainMode gain_mode = GainMode::kCutNets;

  /// Future-work early stop (§5): abort the pass once this many
  /// consecutive moves failed to improve the pass best while the current
  /// solution is not fully feasible ("moves farther away from the
  /// feasible region"). 0 disables.
  std::uint32_t infeasible_stop_window = 0;
};

struct RefineStats {
  int passes = 0;
  std::uint32_t moves = 0;
  std::uint32_t restarts = 0;
  bool improved = false;
};

class MultiwayRefiner {
 public:
  /// `p` and `eval` must outlive the refiner. `remainder` is the block
  /// FPART treats as R_k (cost function context + move preference).
  MultiwayRefiner(Partition& p, const Evaluator& eval, BlockId remainder,
                  RefinerConfig config = {});

  /// Improves the active blocks in place within `region`. Returns the
  /// evaluation of the final (best found) solution. The partition is
  /// never left worse than it started (lexicographically).
  SolutionEval improve(std::span<const BlockId> blocks,
                       const MoveRegion& region, RefineStats* stats = nullptr);

  BlockId remainder() const { return remainder_; }
  void set_remainder(BlockId r) { remainder_ = r; }

 private:
  struct Candidate {
    NodeId node = kInvalidNode;
    std::size_t from_idx = 0;
    std::size_t to_idx = 0;
    int gain = 0;
    bool valid() const { return node != kInvalidNode; }
  };

  std::size_t dir_index(std::size_t f, std::size_t t) const {
    return f * active_.size() + t;
  }
  GainBucket& bucket(std::size_t f, std::size_t t) {
    return buckets_[dir_index(f, t)];
  }

  /// Runs one series of passes from the current state; updates the
  /// global best (best_eval_/best_snapshot_) and optionally feeds the
  /// stacks (phase 1 only).
  void run_series(const MoveRegion& region, bool collect_stacks,
                  RefineStats* stats);

  /// One FM pass. Returns true if the pass improved on its start.
  bool pass(const MoveRegion& region, bool collect_stacks,
            RefineStats* stats);

  void init_buckets();
  /// Gain-bucket audit (audit.hpp): every unlocked cell's stored gains
  /// must match a fresh compute_gains(). Called at the end of the move
  /// loop, before rollback, while the buckets are still live.
  void audit_bucket_gains();
  Candidate select_move(const MoveRegion& region);
  bool move_legal(NodeId v, BlockId from, BlockId to,
                  const MoveRegion& region) const;
  void compute_gains(NodeId v, std::vector<int>& out) const;
  void refresh_node(NodeId v);

  Partition& p_;
  const Evaluator& eval_;
  BlockId remainder_;
  RefinerConfig config_;

  // Per-improve() working state.
  std::vector<BlockId> active_;              // active block ids
  std::vector<std::uint32_t> active_index_;  // block id -> idx or kNone
  std::vector<GainBucket> buckets_;
  // A cell is "locked" for the rest of a pass exactly when it has been
  // removed from the buckets: in_buckets_ is the single source of truth.
  std::vector<std::uint8_t> in_buckets_;
  std::vector<std::uint32_t> node_epoch_;  // dedupe per-move gain refreshes
  std::vector<int> gains_scratch_;         // refresh_node/init_buckets reuse
  std::vector<Candidate> champions_;       // select_move reuse
  std::uint32_t epoch_ = 0;
  std::uint32_t pass_seq_ = 0;  // flight-recorder pass index

  SolutionEval best_eval_;
  Partition::Snapshot best_snapshot_;
  SolutionStack semi_stack_{0};
  SolutionStack infeasible_stack_{0};

  static constexpr std::uint32_t kNone = ~0u;
};

}  // namespace fpart
