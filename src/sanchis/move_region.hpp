// Feasible-move regions: per-block size windows for the multiway refiner
// (paper §3.5, Figure 3).
//
// The paper bounds every non-remainder block's size to
// [ε_min · S_MAX, ε_max · S_MAX] during iterative improvement, with no
// upper limit on the remainder and no I/O-pin limit anywhere. The bounds
// differ between 2-block and multi-block passes — the 2-block lower bound
// is much stricter (0.95 vs 0.30) because otherwise cells drain into the
// remainder — and size-violating states (ε_max > 1) are tolerated only
// while the block count is still below the lower bound M.
//
// Note on notation: the paper prints the coefficients as the multipliers
// themselves (ε²_min = 0.95, ε*_min = 0.3, ε_max = 1.05), i.e. the window
// is [ε_min · S_MAX, ε_max · S_MAX]; we keep that convention.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "device/device.hpp"
#include "partition/partition.hpp"

namespace fpart {

struct MoveRegionParams {
  double eps_min_two_block = 0.95;  // ε²_min
  double eps_min_multi = 0.30;      // ε*_min
  double eps_max = 1.05;            // ε*_max = ε²_max
};

/// Per-block size windows; indexed by block id. Blocks not involved in a
/// pass keep windows too (they are simply never moved against).
struct MoveRegion {
  std::vector<double> lo;
  std::vector<double> hi;

  bool allows_leave(BlockId b, double size_after) const {
    return size_after >= lo[b];
  }
  bool allows_enter(BlockId b, double size_after) const {
    return size_after <= hi[b];
  }
};

/// Builds the paper's move region for a refinement pass.
///   * remainder: lo = 0, hi = +inf (ε^R_max = ∞);
///   * other blocks: lo = ε_min · S_MAX (two-block or multi variant),
///     hi = ε_max · S_MAX while `allow_size_violations` (k < M), else
///     exactly S_MAX.
MoveRegion make_move_region(const Partition& p, const Device& d,
                            BlockId remainder, bool two_block_pass,
                            bool allow_size_violations,
                            const MoveRegionParams& params = {});

}  // namespace fpart
