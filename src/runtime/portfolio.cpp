#include "runtime/portfolio.hpp"

#include <condition_variable>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "core/solve.hpp"
#include "obs/json.hpp"
#include "obs/phase.hpp"
#include "obs/provenance.hpp"
#include "obs/recorder.hpp"
#include "obs/stats.hpp"
#include "partition/replay.hpp"
#include "util/assert.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace fpart::runtime {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xFFu;
    h *= kFnvPrime;
  }
}

std::uint64_t total_pins(const PartitionResult& r) {
  std::uint64_t pins = 0;
  for (const BlockStats& b : r.blocks) pins += b.pins;
  return pins;
}

/// The reduction's total order: true when `a` beats `b`. Every component
/// is a deterministic function of the attempt, never of scheduling.
bool attempt_beats(const AttemptOutcome& a, const AttemptOutcome& b) {
  if (a.result.feasible != b.result.feasible) return a.result.feasible;
  if (a.result.k != b.result.k) return a.result.k < b.result.k;
  if (a.result.cut != b.result.cut) return a.result.cut < b.result.cut;
  const std::uint64_t pa = total_pins(a.result);
  const std::uint64_t pb = total_pins(b.result);
  if (pa != pb) return pa < pb;
  return a.index < b.index;
}

}  // namespace

PartitionResult run_portfolio_attempt(const Hypergraph& h,
                                      const Device& device,
                                      const PortfolioOptions& opt,
                                      std::uint64_t seed,
                                      const CancelToken* cancel) {
  SolveRequest req;
  req.method = parse_method(opt.method);
  req.options = opt.base;
  req.options.seed = seed;
  req.options.cancel = cancel;
  return solve(h, device, req);
}

std::uint64_t attempt_seed(std::uint64_t base_seed, std::uint32_t attempt) {
  // Attempt 0 keeps the base seed verbatim so the portfolio subsumes the
  // canonical deterministic run (seed 0 = the paper's fixed seeding).
  return attempt == 0 ? base_seed : Rng::derive_seed(base_seed, attempt);
}

PortfolioResult run_portfolio(const Hypergraph& h, const Device& device,
                              const PortfolioOptions& opt, ThreadPool* pool) {
  FPART_OPTION_REQUIRE(opt.attempts >= 1,
                       "portfolio needs at least one attempt");
  // Pool tasks must not throw, so reject bad configs before fan-out.
  (void)parse_method(opt.method);
  const obs::ScopedPhase phase("portfolio.run");
  Timer timer;
  CpuTimer cpu_timer;

  std::unique_ptr<ThreadPool> owned;
  if (pool == nullptr) {
    owned = std::make_unique<ThreadPool>(opt.threads);
    pool = owned.get();
  }
  // Nested-blocking-submission guard: run_portfolio() blocks the calling
  // thread until every attempt completed. Invoked from inside a task of
  // the SAME pool, the blocked caller is one of the workers the attempts
  // need — a 1-thread pool deadlocks on itself outright, a wider pool
  // silently loses a worker. That is a driver bug (batch.hpp documents
  // the scheduling contract), so fail fast instead of hanging.
  FPART_ASSERT_MSG(ThreadPool::current() != pool,
                   "run_portfolio called from inside a task of the pool it "
                   "blocks on (self-deadlock); run it from outside the pool "
                   "or on a dedicated thread");

  const std::uint32_t n = opt.attempts;
  PortfolioResult out;
  out.threads = pool->size();
  out.attempts.resize(n);

  std::vector<std::unique_ptr<CancelToken>> tokens;
  std::vector<std::unique_ptr<obs::Recorder>> recorders(n);
  tokens.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    tokens.push_back(std::make_unique<CancelToken>());
    out.attempts[i].index = i;
    out.attempts[i].seed = attempt_seed(opt.base.seed, i);
  }

  // Shared early-exit state. exit_index only ever DECREASES, and every
  // attempt that sets it ran to completion — so any transient value an
  // attempt j observes is >= the final value, and attempts at or below
  // the final exit index can neither be skipped nor cancelled (the
  // determinism proof in portfolio.hpp).
  std::mutex mu;
  std::condition_variable done_cv;
  std::uint32_t exit_index = n - 1;
  std::uint32_t done = 0;
  std::exception_ptr failure;  // first attempt failure, rethrown below

  for (std::uint32_t i = 0; i < n; ++i) {
    pool->post([&, i] {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (i > exit_index) {
          // Already past the exit point: never started. Marked cancelled
          // below with the rest of the uncounted tail.
          ++done;
          done_cv.notify_all();
          return;
        }
      }
      PartitionResult r;
      obs::TimeSeriesDoc series;
      std::exception_ptr error;
      try {
        // Per-attempt convergence series: installed thread-locally like
        // the recorder so a shared worker thread cannot mix samples from
        // different attempts.
        obs::TimeSeries sampler;
        std::optional<obs::ScopedTimeSeriesInstall> ts_install;
        if (opt.timeseries) {
          ts_install.emplace(&sampler);
          sampler.start(opt.timeseries_config);
        }
        if (!opt.events_prefix.empty()) {
          recorders[i] = std::make_unique<obs::Recorder>();
          const obs::ScopedRecorderInstall install(recorders[i].get());
          Options header_opt = opt.base;
          header_opt.seed = out.attempts[i].seed;
          recorders[i]->start(
              make_event_log_header(h, device, header_opt, opt.method));
          r = run_portfolio_attempt(h, device, opt, out.attempts[i].seed,
                                    tokens[i].get());
          recorders[i]->stop();
        } else {
          r = run_portfolio_attempt(h, device, opt, out.attempts[i].seed,
                                    tokens[i].get());
        }
        if (opt.timeseries) {
          sampler.stop();
          series = sampler.doc();
        }
      } catch (...) {
        // Pool tasks must not throw; surface the failure to the blocked
        // caller instead.
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (error != nullptr) {
        if (failure == nullptr) failure = error;
        // Stop the other attempts: the whole portfolio is failing.
        for (std::uint32_t j = 0; j < n; ++j) tokens[j]->request();
      } else {
        const bool at_bound = opt.early_exit && !r.cancelled && r.feasible &&
                              r.k == r.lower_bound;
        if (at_bound && i < exit_index) {
          exit_index = i;
          for (std::uint32_t j = i + 1; j < n; ++j) tokens[j]->request();
        }
        out.attempts[i].result = std::move(r);
        out.attempts[i].series = std::move(series);
      }
      ++done;
      done_cv.notify_all();
    });
  }

  {
    // Blocks the calling thread — run_portfolio must not be invoked from
    // inside a task of the same pool (a 1-thread pool would deadlock).
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [&] { return done == n; });
  }
  if (failure != nullptr) std::rethrow_exception(failure);

  out.counted = exit_index + 1;
  for (std::uint32_t i = 0; i < n; ++i) {
    AttemptOutcome& a = out.attempts[i];
    if (i < out.counted) {
      FPART_ASSERT_MSG(!a.result.cancelled,
                       "portfolio: counted attempt was cancelled");
      a.counted = true;
      a.assignment_digest = assignment_digest(a.result.assignment);
    } else {
      // Uncounted tail: whether it was skipped, stopped early, or even
      // ran to completion is a scheduling accident — scrub the result so
      // nothing timing-dependent survives into the outcome.
      a.counted = false;
      a.cancelled = true;
      a.result = PartitionResult{};
      a.series = obs::TimeSeriesDoc{};
      recorders[i].reset();
    }
  }

  std::uint32_t winner = 0;
  for (std::uint32_t i = 1; i < out.counted; ++i) {
    if (attempt_beats(out.attempts[i], out.attempts[winner])) winner = i;
  }
  out.winner = winner;
  out.best = out.attempts[winner].result;

  // Event logs: written only for counted attempts so the produced file
  // set is itself deterministic.
  if (!opt.events_prefix.empty()) {
    for (std::uint32_t i = 0; i < out.counted; ++i) {
      FPART_ASSERT(recorders[i] != nullptr);
      std::string path =
          opt.events_prefix + ".attempt" + std::to_string(i) + ".jsonl";
      recorders[i]->write_jsonl(path);
      out.attempts[i].events_path = std::move(path);
    }
  }

  // Loser assignments are O(circuit) each; only their digests matter now.
  for (std::uint32_t i = 0; i < n; ++i) {
    if (i != winner) {
      out.attempts[i].result.assignment.clear();
      out.attempts[i].result.assignment.shrink_to_fit();
    }
  }

  std::uint64_t digest = kFnvOffset;
  fnv_mix(digest, out.winner);
  fnv_mix(digest, out.counted);
  fnv_mix(digest, out.best.feasible ? 1 : 0);
  fnv_mix(digest, out.best.k);
  fnv_mix(digest, out.best.cut);
  fnv_mix(digest, out.best.km1);
  fnv_mix(digest, out.attempts[winner].assignment_digest);
  for (std::uint32_t i = 0; i < out.counted; ++i) {
    const AttemptOutcome& a = out.attempts[i];
    fnv_mix(digest, a.index);
    fnv_mix(digest, a.seed);
    fnv_mix(digest, a.result.feasible ? 1 : 0);
    fnv_mix(digest, a.result.k);
    fnv_mix(digest, a.result.cut);
  }
  out.digest = digest;

  out.seconds = timer.elapsed_seconds();
  out.cpu_seconds = cpu_timer.elapsed_seconds();
  return out;
}

namespace {

using obs::JsonWriter;

void write_attempt_result(JsonWriter& w, const PartitionResult& r) {
  w.key("feasible");
  w.value(r.feasible);
  w.key("k");
  w.value(r.k);
  w.key("cut");
  w.value(r.cut);
  w.key("km1");
  w.value(r.km1);
  w.key("iterations");
  w.value(r.iterations);
  w.key("seconds");
  w.value(r.seconds);
  w.key("cpu_seconds");
  w.value(r.cpu_seconds);
}

}  // namespace

std::string portfolio_report_json(const RunMeta& meta,
                                  const PortfolioOptions& opt,
                                  const PortfolioResult& r) {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kPortfolioReportSchema);
  w.key("meta");
  w.begin_object();
  w.key("circuit");
  w.value(meta.circuit);
  w.key("device");
  w.value(meta.device);
  w.key("method");
  w.value(meta.method);
  w.key("seed");
  w.value(meta.seed);
  if (!meta.events_path.empty()) {
    w.key("events_path");
    w.value(meta.events_path);
  }
  w.key("provenance");
  obs::write_provenance(w);
  w.end_object();
  w.key("portfolio");
  w.begin_object();
  w.key("attempts");
  w.value(opt.attempts);
  w.key("threads");  // informational: workers used, not part of the digest
  w.value(static_cast<std::uint64_t>(r.threads));
  w.key("early_exit");
  w.value(opt.early_exit);
  w.key("winner");
  w.value(r.winner);
  w.key("counted");
  w.value(r.counted);
  w.key("digest");
  w.value(r.digest);
  w.key("seconds");
  w.value(r.seconds);
  w.key("cpu_seconds");
  w.value(r.cpu_seconds);
  w.end_object();
  w.key("result");
  w.begin_object();
  write_attempt_result(w, r.best);
  w.key("lower_bound");
  w.value(r.best.lower_bound);
  w.key("assignment_digest");
  w.value(r.attempts.empty() ? 0
                             : r.attempts[r.winner].assignment_digest);
  w.key("blocks");
  w.begin_array();
  for (const BlockStats& b : r.best.blocks) {
    w.begin_object();
    w.key("size");
    w.value(b.size);
    w.key("pins");
    w.value(b.pins);
    w.key("ext");
    w.value(b.ext);
    w.key("nodes");
    w.value(b.nodes);
    w.key("feasible");
    w.value(b.feasible);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("attempts");
  w.begin_array();
  for (const AttemptOutcome& a : r.attempts) {
    w.begin_object();
    w.key("index");
    w.value(a.index);
    w.key("seed");
    w.value(a.seed);
    w.key("counted");
    w.value(a.counted);
    w.key("cancelled");
    w.value(a.cancelled);
    if (a.counted) {
      write_attempt_result(w, a.result);
      w.key("assignment_digest");
      w.value(a.assignment_digest);
      if (!a.events_path.empty()) {
        w.key("events_path");
        w.value(a.events_path);
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

void write_portfolio_report_file(const std::string& path, const RunMeta& meta,
                                 const PortfolioOptions& opt,
                                 const PortfolioResult& r) {
  std::ofstream os(path);
  FPART_REQUIRE(os.good(), "cannot write portfolio report " + path);
  os << portfolio_report_json(meta, opt, r);
  FPART_REQUIRE(os.good(), "write failed for portfolio report " + path);
}

}  // namespace fpart::runtime
