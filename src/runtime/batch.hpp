// Batch job execution: run many (circuit, device, method) partitioning
// jobs through one shared thread pool and report them as a single
// fpart-batch/1 document.
//
// Scheduling: single-attempt jobs (portfolio == 1) become independent
// pool tasks and run concurrently; portfolio jobs (portfolio > 1) run
// one after another from the calling thread, each fanning its attempts
// out to the same pool — run_portfolio() blocks, so it must never
// execute inside a pool task (a 1-thread pool would deadlock on
// itself). Both run_batch() and run_portfolio() enforce this with a
// nested-blocking-submission guard: called from a worker of the pool
// they would block on, they throw InternalError instead of hanging
// (the serve daemon routes portfolio jobs to a dedicated lane thread
// for exactly this reason — see src/serve/server.hpp). Each job's
// outcome is deterministic (the portfolio contract in portfolio.hpp);
// only wall-clock timing depends on the schedule.
//
// A job that throws (unreadable input, unknown device/method, or an
// engine bug) fails alone: its JobResult carries ok = false, the error
// text and the taxonomy kind ("parse"/"option"/"capacity" for input
// problems vs "internal" for engine bugs — util/error.hpp), and the
// rest of the batch proceeds.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/result.hpp"
#include "obs/json.hpp"
#include "runtime/portfolio.hpp"
#include "runtime/thread_pool.hpp"

namespace fpart::runtime {

inline constexpr const char* kBatchReportSchema = "fpart-batch/1";

/// One line of a batch file: what to partition and how.
struct JobSpec {
  std::string id;       // label in the report; defaults to "job<line-index>"
  std::string input;    // .hgr circuit path
  std::string device;   // Xilinx device name (xilinx::by_name)
  double fill = 0.9;    // filling ratio δ
  std::string method = "fpart";
  std::uint32_t portfolio = 1;  // attempts; >1 engages the portfolio engine
  std::uint64_t seed = 0;       // base seed (attempt i derives from it)
};

struct JobResult {
  JobSpec spec;
  bool ok = false;
  std::string error;  // set when !ok
  /// Taxonomy category of the failure (util/error.hpp::error_kind):
  /// "parse" / "option" / "capacity" / "precondition" are input
  /// problems, "internal" is an engine bug, "unknown" anything else.
  std::string error_kind;  // set when !ok
  /// Winning result (the only attempt's, for portfolio == 1).
  PartitionResult result;
  /// Portfolio jobs only: winning attempt index and the outcome digest.
  std::uint32_t winner = 0;
  std::uint64_t portfolio_digest = 0;
  /// Wall-clock seconds for this job, load included (timing-dependent).
  double seconds = 0.0;
};

/// Parses a batch file: one job per line,
///   <input.hgr> <device> [key=value ...]
/// with keys id, method, portfolio, seed, fill; '#' starts a comment.
/// Throws ParseError on malformed lines (with the line number), on a
/// job id that repeats an earlier job's (explicit or defaulted), and
/// OptionError on a filling ratio outside (0, 1].
std::vector<JobSpec> parse_batch_file(const std::string& path);

/// parse_batch_file on in-memory text; `origin` labels diagnostics (the
/// fuzz harness and the serve request parser feed strings, not files).
std::vector<JobSpec> parse_batch_text(std::string_view text,
                                      const std::string& origin);

/// Shared job-spec range checks: filling ratio in (0, 1] (OptionError)
/// and a parseable method name (OptionError). The batch-file and serve
/// request parsers both run this at parse time so a bad job is rejected
/// before it can occupy a worker.
void validate_job_spec(const JobSpec& spec);

/// Runs every job and returns results in job order. Uses `pool` when
/// non-null, otherwise a private default-sized pool for the call.
std::vector<JobResult> run_batch(const std::vector<JobSpec>& jobs,
                                 ThreadPool* pool = nullptr);

/// Serializes batch results as a fpart-batch/1 document.
std::string batch_report_json(const std::vector<JobResult>& results);

/// Writes one job's fields (the fpart-batch/1 per-job record) into an
/// already-open JSON object. Shared with the serve response writer so
/// both speak the same dialect.
void write_job_result_fields(obs::JsonWriter& w, const JobResult& r);

/// Writes batch_report_json() to `path`.
void write_batch_report_file(const std::string& path,
                             const std::vector<JobResult>& results);

}  // namespace fpart::runtime
