#include "runtime/batch.hpp"

#include <condition_variable>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_set>

#include "core/solve.hpp"
#include "device/xilinx.hpp"
#include "netlist/hgr_io.hpp"
#include "obs/json.hpp"
#include "obs/provenance.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace fpart::runtime {

namespace {

/// Shared by both scheduling paths: load, run, time, catch.
void execute_job(const JobSpec& spec, ThreadPool* pool, JobResult& out) {
  out.spec = spec;
  Timer timer;
  try {
    const Hypergraph h = read_hgr_file(spec.input);
    const Device device = xilinx::by_name(spec.device).with_fill(spec.fill);
    PortfolioOptions popt;
    popt.attempts = spec.portfolio;
    popt.method = spec.method;
    popt.base.seed = spec.seed;
    if (spec.portfolio > 1) {
      PortfolioResult pr = run_portfolio(h, device, popt, pool);
      out.result = std::move(pr.best);
      out.winner = pr.winner;
      out.portfolio_digest = pr.digest;
    } else {
      out.result = run_portfolio_attempt(h, device, popt, spec.seed);
    }
    out.ok = true;
  } catch (const std::exception& e) {
    // Per-job failure isolation: record what went wrong and which side
    // of the taxonomy it falls on (bad input vs engine bug) so the
    // fpart-batch/1 report can tell them apart.
    out.ok = false;
    out.error = e.what();
    out.error_kind = error_kind(e);
  }
  out.seconds = timer.elapsed_seconds();
}

}  // namespace

void validate_job_spec(const JobSpec& spec) {
  // Rejecting at parse/admission time is what keeps a bad job from ever
  // occupying a worker (docs/SERVING.md, "admission control").
  FPART_OPTION_REQUIRE(spec.fill > 0.0 && spec.fill <= 1.0,
                       "job '" + spec.id + "': fill must be in (0, 1], got " +
                           std::to_string(spec.fill));
  (void)parse_method(spec.method);  // OptionError on unknown methods
  FPART_OPTION_REQUIRE(spec.portfolio >= 1,
                       "job '" + spec.id + "': portfolio must be >= 1");
}

std::vector<JobSpec> parse_batch_file(const std::string& path) {
  std::ifstream is(path);
  FPART_REQUIRE(is.good(), "cannot read batch file " + path);
  std::ostringstream text;
  text << is.rdbuf();
  return parse_batch_text(text.str(), "batch file " + path);
}

std::vector<JobSpec> parse_batch_text(std::string_view text,
                                      const std::string& origin) {
  std::istringstream is{std::string(text)};
  std::vector<JobSpec> jobs;
  std::unordered_set<std::string> seen_ids;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens(line);
    JobSpec spec;
    if (!(tokens >> spec.input >> spec.device)) {
      std::string rest;
      tokens.clear();
      tokens.seekg(0);
      FPART_PARSE_REQUIRE(!(tokens >> rest),
                          origin + " line " + std::to_string(line_no) +
                              ": expected '<input.hgr> <device> "
                              "[key=value ...]'");
      continue;  // blank / comment-only line
    }
    spec.id = "job" + std::to_string(jobs.size());
    std::string kv;
    while (tokens >> kv) {
      const auto eq = kv.find('=');
      FPART_PARSE_REQUIRE(eq != std::string::npos && eq > 0,
                          origin + " line " + std::to_string(line_no) +
                              ": bad option '" + kv +
                              "' (expected key=value)");
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      try {
        if (key == "id") {
          spec.id = value;
        } else if (key == "method") {
          (void)parse_method(value);  // reject bad methods at parse time
          spec.method = value;
        } else if (key == "portfolio") {
          const unsigned long parsed = std::stoul(value);
          FPART_PARSE_REQUIRE(parsed >= 1 && parsed <= 0xFFFFFFFFul,
                              "batch: portfolio must be in [1, 4294967295]");
          spec.portfolio = static_cast<std::uint32_t>(parsed);
        } else if (key == "seed") {
          spec.seed = std::stoull(value);
        } else if (key == "fill") {
          spec.fill = std::stod(value);
        } else {
          FPART_PARSE_REQUIRE(false, "unknown key '" + key + "'");
        }
      } catch (const std::exception& e) {
        FPART_PARSE_REQUIRE(false, origin + " line " +
                                       std::to_string(line_no) +
                                       ": option '" + kv + "': " + e.what());
      }
    }
    // A repeated id (explicit or defaulted) would make report rows and
    // serve cache attributions ambiguous — reject instead of silently
    // accepting the collision.
    FPART_PARSE_REQUIRE(seen_ids.insert(spec.id).second,
                        origin + " line " + std::to_string(line_no) +
                            ": duplicate job id '" + spec.id + "'");
    try {
      validate_job_spec(spec);
    } catch (const OptionError& e) {
      throw OptionError(origin + " line " + std::to_string(line_no) + ": " +
                        e.what());
    }
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

std::vector<JobResult> run_batch(const std::vector<JobSpec>& jobs,
                                 ThreadPool* pool) {
  std::unique_ptr<ThreadPool> owned;
  if (pool == nullptr) {
    owned = std::make_unique<ThreadPool>();
    pool = owned.get();
  }
  // Same self-deadlock shape as run_portfolio: run_batch() blocks on the
  // pool's completion counter, so it must never run inside a task of the
  // pool it fans out to.
  FPART_ASSERT_MSG(ThreadPool::current() != pool,
                   "run_batch called from inside a task of the pool it "
                   "blocks on (self-deadlock); run it from outside the pool "
                   "or on a dedicated thread");
  std::vector<JobResult> results(jobs.size());

  // Fan the single-attempt jobs out first so they overlap with the
  // portfolio jobs the calling thread works through below. `pending` is
  // fully counted before any task is posted: posted tasks decrement it
  // under `mu`, so mutating it from this thread afterwards would race.
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t pending = 0;
  for (const JobSpec& job : jobs) {
    if (job.portfolio <= 1) ++pending;
  }
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (jobs[j].portfolio > 1) continue;
    pool->post([&, j] {
      execute_job(jobs[j], nullptr, results[j]);
      std::lock_guard<std::mutex> lock(mu);
      --pending;
      done_cv.notify_all();
    });
  }

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (jobs[j].portfolio > 1) execute_job(jobs[j], pool, results[j]);
  }

  std::unique_lock<std::mutex> lock(mu);
  done_cv.wait(lock, [&] { return pending == 0; });
  return results;
}

void write_job_result_fields(obs::JsonWriter& w, const JobResult& r) {
  w.key("id");
  w.value(r.spec.id);
  w.key("input");
  w.value(r.spec.input);
  w.key("device");
  w.value(r.spec.device);
  w.key("method");
  w.value(r.spec.method);
  w.key("portfolio");
  w.value(r.spec.portfolio);
  w.key("seed");
  w.value(r.spec.seed);
  w.key("ok");
  w.value(r.ok);
  if (!r.ok) {
    w.key("error");
    w.value(r.error);
    w.key("error_kind");
    w.value(r.error_kind);
  } else {
    w.key("feasible");
    w.value(r.result.feasible);
    w.key("k");
    w.value(r.result.k);
    w.key("lower_bound");
    w.value(r.result.lower_bound);
    w.key("cut");
    w.value(r.result.cut);
    w.key("km1");
    w.value(r.result.km1);
    if (r.spec.portfolio > 1) {
      w.key("winner");
      w.value(r.winner);
      w.key("portfolio_digest");
      w.value(r.portfolio_digest);
    }
  }
  w.key("seconds");
  w.value(r.seconds);
}

std::string batch_report_json(const std::vector<JobResult>& results) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kBatchReportSchema);
  w.key("provenance");
  obs::write_provenance(w);
  w.key("jobs");
  w.begin_array();
  for (const JobResult& r : results) {
    w.begin_object();
    write_job_result_fields(w, r);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

void write_batch_report_file(const std::string& path,
                             const std::vector<JobResult>& results) {
  std::ofstream os(path);
  FPART_REQUIRE(os.good(), "cannot write batch report " + path);
  os << batch_report_json(results);
  FPART_REQUIRE(os.good(), "write failed for batch report " + path);
}

}  // namespace fpart::runtime
