// Deterministic parallel portfolio search.
//
// Races N seeded attempts of one partitioning method (FPART, clustered
// FPART, k-way.x or FBB-MW) across a thread pool and reduces them to a
// single winner by a timing-independent total order. The contract:
//
//   DETERMINISM — run_portfolio() returns a byte-identical winner
//   (same attempt index, k, cut, assignment) and the same outcome
//   digest no matter how many threads execute it, because
//     * attempt i's RNG seed is Rng::derive_seed(base_seed, i) — a pure
//       function of (base seed, attempt index), never of scheduling;
//     * the reduction orders completed attempts by
//       (feasible desc, k asc, cut asc, total pins asc, index asc) —
//       every component is a deterministic function of the attempt;
//     * early exit cancels only attempts that provably cannot alter the
//       reduction (see below), so the reduced set is itself
//       deterministic.
//
//   EARLY EXIT — the serial semantics (and run_fpart_multistart's) are
//   "stop after the first attempt that reaches the lower bound M":
//   attempts after it never run. The parallel engine honours exactly
//   that: when attempt i completes feasible at k == M, every attempt
//   j > i gets its CancelToken latched and is excluded from the
//   reduction EVEN IF it already finished (its result is discarded, so
//   scheduling cannot leak into the outcome). Attempts j <= i always
//   run to completion — the final exit index only ever decreases, so no
//   attempt at or below it is ever cancelled. Engines poll the token at
//   iteration granularity (see util/cancel.hpp).
//
//   OBSERVABILITY — with events_prefix set, every counted attempt
//   records a private flight-recorder log (<prefix>.attempt<i>.jsonl,
//   fpart-events/1, replayable via fpart_inspect) through the
//   thread-local recorder. portfolio_report_json() serializes the whole
//   outcome as a fpart-portfolio/1 document whose `digest` field covers
//   only timing-independent state — the determinism tests compare it
//   across thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "core/result.hpp"
#include "device/device.hpp"
#include "hypergraph/hypergraph.hpp"
#include "obs/timeseries.hpp"
#include "report/run_report.hpp"
#include "runtime/thread_pool.hpp"

namespace fpart::runtime {

inline constexpr const char* kPortfolioReportSchema = "fpart-portfolio/1";

struct PortfolioOptions {
  /// Attempts to race. Attempt 0 uses base.seed verbatim (the canonical
  /// deterministic run when 0); attempt i uses derive_seed(base.seed, i).
  std::uint32_t attempts = 8;

  /// Worker threads; 0 = default_thread_count(). Ignored when the
  /// caller passes its own pool to run_portfolio().
  unsigned threads = 0;

  /// fpart | clustered | kwayx | fbb. Non-fpart methods ignore the seed
  /// (they are deterministic), so racing them only varies by method
  /// internals; the portfolio is primarily an FPART multi-start engine.
  std::string method = "fpart";

  /// Base engine options; per-attempt copies get derived seeds and a
  /// private CancelToken.
  Options base;

  /// Stop losing attempts once some attempt is feasible at k == M.
  bool early_exit = true;

  /// When non-empty, counted attempts write flight-recorder logs to
  /// <events_prefix>.attempt<i>.jsonl.
  std::string events_prefix;

  /// Collect a private convergence time-series per attempt (thread-local
  /// sampler, same isolation contract as the flight recorder). Counted
  /// attempts surface theirs in AttemptOutcome::series.
  bool timeseries = false;
  obs::TimeSeriesConfig timeseries_config;
};

struct AttemptOutcome {
  std::uint32_t index = 0;
  std::uint64_t seed = 0;
  /// True when the attempt participates in the reduction. Deterministic.
  bool counted = false;
  /// True when the attempt was cancelled, skipped, or finished past the
  /// exit index (its result is discarded either way). Deterministic —
  /// exactly the complement of `counted`.
  bool cancelled = false;
  /// Meaningful only when counted (losers keep k/cut/feasible for the
  /// report; the winner's assignment survives in PortfolioResult::best,
  /// loser assignments are released to bound memory).
  PartitionResult result;
  /// FNV-1a digest of the attempt's assignment (counted attempts only).
  std::uint64_t assignment_digest = 0;
  /// Path of this attempt's event log ("" when not recorded).
  std::string events_path;
  /// Per-attempt convergence series (empty unless opt.timeseries and the
  /// attempt is counted — uncounted tails are scrubbed like results).
  obs::TimeSeriesDoc series;
};

struct PortfolioResult {
  /// The winning attempt's full result.
  PartitionResult best;
  std::uint32_t winner = 0;
  /// Attempts entering the reduction == exit_index + 1 (or all of them).
  std::uint32_t counted = 0;
  /// One entry per attempt, index-ordered.
  std::vector<AttemptOutcome> attempts;
  /// Timing-independent FNV-1a digest over the reduced outcome: winner,
  /// best (k, cut, km1, feasible, assignment digest) and every counted
  /// attempt's (index, seed, k, cut, feasible). Identical across thread
  /// counts by the determinism contract.
  std::uint64_t digest = 0;
  /// Wall/CPU seconds of the whole portfolio (timing-dependent).
  double seconds = 0.0;
  double cpu_seconds = 0.0;
  /// Worker threads that executed the attempts (informational).
  unsigned threads = 0;
};

/// Seed of attempt `attempt` under `base_seed` (attempt 0 = base_seed).
std::uint64_t attempt_seed(std::uint64_t base_seed, std::uint32_t attempt);

/// One attempt of opt.method with an explicit seed and cancel token —
/// the unit of work the portfolio fans out. Exposed so the batch runner
/// can execute single-attempt jobs directly as pool tasks (run_portfolio
/// blocks and therefore must not be called from inside a pool task).
PartitionResult run_portfolio_attempt(const Hypergraph& h,
                                      const Device& device,
                                      const PortfolioOptions& opt,
                                      std::uint64_t seed,
                                      const CancelToken* cancel = nullptr);

/// Races opt.attempts seeded runs and reduces deterministically. Uses
/// `pool` when non-null (its thread count wins), otherwise spins up a
/// private pool with opt.threads workers for the call.
PortfolioResult run_portfolio(const Hypergraph& h, const Device& device,
                              const PortfolioOptions& opt,
                              ThreadPool* pool = nullptr);

/// Serializes a portfolio outcome as a fpart-portfolio/1 document:
/// meta + winner result + per-attempt records + the outcome digest.
std::string portfolio_report_json(const RunMeta& meta,
                                  const PortfolioOptions& opt,
                                  const PortfolioResult& r);

/// Writes portfolio_report_json() to `path`.
void write_portfolio_report_file(const std::string& path, const RunMeta& meta,
                                 const PortfolioOptions& opt,
                                 const PortfolioResult& r);

}  // namespace fpart::runtime
