#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "util/assert.hpp"

namespace fpart::runtime {

namespace {

// Which pool/worker the calling thread belongs to (workers only).
thread_local ThreadPool* t_pool = nullptr;
thread_local unsigned t_worker_index = 0;

}  // namespace

unsigned default_thread_count() {
  if (const char* env = std::getenv("FPART_THREADS");
      env != nullptr && env[0] != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) {
      return static_cast<unsigned>(std::min(parsed, 512L));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

struct ThreadPool::Impl {
  using Task = std::function<void()>;

  /// One worker's local deque. Guarded by its own mutex — tasks are
  /// coarse (whole partitioning attempts down to single peel steps), so
  /// a lock per push/pop is noise; the point of the per-worker split is
  /// locality and contention isolation, not lock-freedom.
  struct Worker {
    std::mutex mu;
    std::deque<Task> deque;
    std::thread thread;
  };

  std::vector<std::unique_ptr<Worker>> workers;

  // Injection queue for external submissions + the sleep/wake machinery.
  std::mutex inject_mu;
  std::condition_variable cv;
  std::deque<Task> inject;

  /// Queued-but-unclaimed tasks across ALL queues. Incremented before
  /// any push, decremented after a successful pop; the wait predicate
  /// reads it so a push between "scan found nothing" and "sleep" cannot
  /// be lost.
  std::atomic<std::size_t> ready{0};
  std::atomic<bool> stopping{false};

  ThreadPool* self = nullptr;

  bool try_pop(unsigned index, Task& out) {
    // 1. Own deque, newest first.
    {
      Worker& me = *workers[index];
      std::lock_guard<std::mutex> lock(me.mu);
      if (!me.deque.empty()) {
        out = std::move(me.deque.back());
        me.deque.pop_back();
        return true;
      }
    }
    // 2. Steal from siblings, oldest first, round-robin from our right
    //    neighbour so victims spread out.
    const unsigned n = static_cast<unsigned>(workers.size());
    for (unsigned step = 1; step < n; ++step) {
      Worker& victim = *workers[(index + step) % n];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.deque.empty()) {
        out = std::move(victim.deque.front());
        victim.deque.pop_front();
        return true;
      }
    }
    // 3. Injection queue, FIFO.
    {
      std::lock_guard<std::mutex> lock(inject_mu);
      if (!inject.empty()) {
        out = std::move(inject.front());
        inject.pop_front();
        return true;
      }
    }
    return false;
  }

  void run_worker(unsigned index) {
    t_pool = self;
    t_worker_index = index;
    Task task;
    while (true) {
      if (try_pop(index, task)) {
        ready.fetch_sub(1, std::memory_order_relaxed);
        task();
        task = nullptr;  // release captures before sleeping
        continue;
      }
      std::unique_lock<std::mutex> lock(inject_mu);
      cv.wait(lock, [this] {
        return stopping.load(std::memory_order_relaxed) ||
               ready.load(std::memory_order_relaxed) > 0;
      });
      if (stopping.load(std::memory_order_relaxed) &&
          ready.load(std::memory_order_relaxed) == 0) {
        return;
      }
    }
  }
};

ThreadPool::ThreadPool(unsigned threads) : impl_(std::make_unique<Impl>()) {
  const unsigned n =
      std::min(threads != 0 ? threads : default_thread_count(), 512u);
  FPART_OPTION_REQUIRE(n >= 1, "thread pool needs at least one worker");
  impl_->self = this;
  impl_->workers.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    impl_->workers.push_back(std::make_unique<Impl::Worker>());
  }
  for (unsigned i = 0; i < n; ++i) {
    impl_->workers[i]->thread =
        std::thread([this, i] { impl_->run_worker(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // Synchronize with sleepers mid-transition into cv.wait (see post()).
    std::lock_guard<std::mutex> lock(impl_->inject_mu);
    impl_->stopping.store(true, std::memory_order_relaxed);
  }
  impl_->cv.notify_all();
  for (auto& w : impl_->workers) {
    if (w->thread.joinable()) w->thread.join();
  }
}

unsigned ThreadPool::size() const {
  return static_cast<unsigned>(impl_->workers.size());
}

void ThreadPool::post(std::function<void()> task) {
  FPART_REQUIRE(task != nullptr, "thread pool: null task");
  impl_->ready.fetch_add(1, std::memory_order_relaxed);
  if (t_pool == this) {
    // Submission from inside a task: keep it on the submitting worker's
    // deque (depth-first locality; idle siblings steal it).
    {
      Impl::Worker& me = *impl_->workers[t_worker_index];
      std::lock_guard<std::mutex> lock(me.mu);
      me.deque.push_back(std::move(task));
    }
    // Serialize with any sleeper mid-transition into cv.wait: once this
    // (empty) critical section is acquired, every sleeper either saw
    // ready > 0 in its predicate or is fully parked and will get the
    // notify below. Without it the notify could fall into the window
    // between a sleeper's predicate check and its actual sleep.
    { std::lock_guard<std::mutex> lock(impl_->inject_mu); }
  } else {
    std::lock_guard<std::mutex> lock(impl_->inject_mu);
    impl_->inject.push_back(std::move(task));
  }
  impl_->cv.notify_one();
}

ThreadPool* ThreadPool::current() { return t_pool; }

}  // namespace fpart::runtime
