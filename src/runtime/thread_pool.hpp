// Work-stealing thread pool — the execution substrate of the parallel
// runtime (portfolio search, batch jobs, future sharded coarsening).
//
// Topology: N fixed worker threads, each owning a local deque, plus one
// global injection queue for work submitted from outside the pool.
// A worker pops its own deque LIFO (cache-warm, depth-first), then
// steals FIFO from a sibling (breadth-first, oldest task — the classic
// Blumofe/Leiserson discipline), then drains the injection queue.
// Submissions from inside a task land on the submitting worker's own
// deque, so recursive fan-out stays local until siblings go idle and
// steal.
//
// The pool makes NO determinism promises about execution order — that
// is the portfolio layer's job (runtime/portfolio.hpp reduces attempt
// results by a timing-independent total order). What the pool does
// promise:
//   * every submitted task runs exactly once (the destructor drains all
//     queues before joining);
//   * async() surfaces task exceptions through the returned future;
//   * post() tasks must not throw (std::terminate otherwise — there is
//     nobody to hand the exception to).
//
// Worker count: an explicit count wins; 0 defers to FPART_THREADS from
// the environment, then std::thread::hardware_concurrency().
//
// Blocking on a future *inside* a task deadlocks a 1-thread pool (the
// only worker would wait on work only it can run). Drivers therefore
// either block from outside the pool (portfolio, batch) or use
// fire-and-forget tasks with completion counters. The blocking drivers
// detect the self-deadlock shape via current() and throw InternalError
// when invoked from a worker of the pool they would block on.
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <type_traits>
#include <utility>

namespace fpart::runtime {

/// Worker count used when a caller passes 0: FPART_THREADS from the
/// environment when set to a positive integer (clamped to [1, 512]),
/// otherwise std::thread::hardware_concurrency(), and never below 1.
unsigned default_thread_count();

class ThreadPool {
 public:
  /// Spawns the workers immediately. `threads` = 0 picks
  /// default_thread_count(); explicit counts are clamped to [1, 512].
  explicit ThreadPool(unsigned threads = 0);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (fixed for the pool's lifetime).
  unsigned size() const;

  /// Fire-and-forget submission. The task must not throw.
  void post(std::function<void()> task);

  /// Submission with a result/exception channel. The future completes
  /// when the task ran; exceptions rethrow from future.get().
  template <typename F>
  auto async(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>&>> {
    using R = std::invoke_result_t<std::decay_t<F>&>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    post([task]() { (*task)(); });
    return future;
  }

  /// The pool executing the calling thread, or nullptr outside workers.
  static ThreadPool* current();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fpart::runtime
