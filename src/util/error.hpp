// Typed error taxonomy.
//
// Every exception the library throws on purpose derives from fpart::Error,
// split by who has to act on it:
//
//   Error
//   ├── PreconditionError        caller-supplied input violates a documented
//   │   │                        precondition (generic; prefer a subtype)
//   │   ├── ParseError           input text does not match its grammar or a
//   │   │                        value does not parse as the expected type
//   │   │                        (.hgr / .blif / batch files, event logs,
//   │   │                        numeric flag values)
//   │   ├── OptionError          a value parses fine but names an invalid
//   │   │                        choice or setting (unknown method, device,
//   │   │                        family; out-of-range thread counts)
//   │   └── CapacityError        the instance can never satisfy the device
//   │                            constraints (a cell larger than S_MAX)
//   └── InternalError            a library invariant failed — a bug in
//                                fpart itself, never the caller's input
//
// Drivers catch `const Error&` at the top level, print a one-line
// diagnostic prefixed with kind(), and exit non-zero; only InternalError
// (still) aborts under the FPART_AUDIT debug mode so the flight recorder
// state survives for inspection. The batch runner records kind() per job
// so a report distinguishes bad inputs from engine bugs.
//
// InvariantError is the historical name of InternalError and is kept as
// an alias; FPART_ASSERT throws it.
#pragma once

#include <exception>
#include <stdexcept>
#include <string>

namespace fpart {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
  /// Stable one-word category ("parse", "option", "capacity",
  /// "internal", ...) used in diagnostics and the fpart-batch/1 report.
  virtual const char* kind() const noexcept { return "error"; }
};

/// Caller-supplied input violates a documented precondition. Base of the
/// input-side taxonomy; FPART_REQUIRE throws this when no more specific
/// subtype applies.
class PreconditionError : public Error {
 public:
  using Error::Error;
  const char* kind() const noexcept override { return "precondition"; }
};

/// Input text does not match its grammar, or a value fails to parse as
/// the expected type. Thrown by the .hgr/.blif/batch-file/event-log
/// readers and the numeric CLI accessors.
class ParseError : public PreconditionError {
 public:
  using PreconditionError::PreconditionError;
  const char* kind() const noexcept override { return "parse"; }
};

/// A well-formed value names an invalid choice or setting: an unknown
/// method/device/family, or a knob outside its supported range.
class OptionError : public PreconditionError {
 public:
  using PreconditionError::PreconditionError;
  const char* kind() const noexcept override { return "option"; }
};

/// The instance can never meet the device constraints, no matter how it
/// is partitioned (e.g. a single cell larger than S_MAX).
class CapacityError : public PreconditionError {
 public:
  using PreconditionError::PreconditionError;
  const char* kind() const noexcept override { return "capacity"; }
};

/// A library invariant was violated. Indicates a bug in fpart, not in
/// the caller's input.
class InternalError : public Error {
 public:
  using Error::Error;
  const char* kind() const noexcept override { return "internal"; }
};

/// Historical name, kept so existing call/catch sites read naturally.
using InvariantError = InternalError;

/// Classifies an in-flight exception for reports: kind() for the typed
/// taxonomy, "unknown" for anything else.
inline const char* error_kind(const std::exception& e) noexcept {
  if (const auto* typed = dynamic_cast<const Error*>(&e)) {
    return typed->kind();
  }
  return "unknown";
}

}  // namespace fpart
