#include "util/log.hpp"

#include <cstdio>

namespace fpart {

namespace detail {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
}

namespace {
const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  detail::g_log_level.store(static_cast<int>(level),
                            std::memory_order_relaxed);
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::string line;
  line.reserve(msg.size() + 16);
  line += "[fpart ";
  line += level_tag(level);
  line += "] ";
  line += msg;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}
}  // namespace detail

}  // namespace fpart
