// Minimal leveled logger writing to stderr.
//
// The partitioner is a batch tool; logging is line-oriented and
// synchronous. Verbosity is a process-global knob set once by the driver
// (examples/benches expose --verbose).
#pragma once

#include <sstream>
#include <string>

namespace fpart {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Sets the global verbosity. Messages above this level are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

/// Stream-style logging: FPART_LOG(kInfo) << "k=" << k;
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { detail::log_line(level_, os_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace fpart

#define FPART_LOG(level)                                      \
  if (static_cast<int>(::fpart::LogLevel::level) >            \
      static_cast<int>(::fpart::log_level())) {               \
  } else                                                      \
    ::fpart::LogMessage(::fpart::LogLevel::level)
