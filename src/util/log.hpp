// Minimal leveled logger writing to stderr.
//
// The partitioner is a batch tool; logging is line-oriented and
// synchronous. Verbosity is a process-global knob set once by the driver
// (examples/benches expose --verbose).
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace fpart {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

namespace detail {
// The level lives in an atomic so concurrent set_log_level/log_level
// calls are race-free; relaxed ordering suffices for a verbosity knob.
// Exposed here so the FPART_LOG level check inlines to one relaxed load.
extern std::atomic<int> g_log_level;

// Assembles the full line and writes it with a single fwrite, so lines
// from concurrent threads never interleave mid-line.
void log_line(LogLevel level, const std::string& msg);
}  // namespace detail

/// Sets the global verbosity. Messages above this level are discarded.
void set_log_level(LogLevel level);

inline LogLevel log_level() {
  return static_cast<LogLevel>(
      detail::g_log_level.load(std::memory_order_relaxed));
}

/// Stream-style logging: FPART_LOG(kInfo) << "k=" << k;
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { detail::log_line(level_, os_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace fpart

#define FPART_LOG(level)                                      \
  if (static_cast<int>(::fpart::LogLevel::level) >            \
      static_cast<int>(::fpart::log_level())) {               \
  } else                                                      \
    ::fpart::LogMessage(::fpart::LogLevel::level)
