#include "util/rng.hpp"

#include <cmath>

namespace fpart {

namespace {
// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  FPART_REQUIRE(lo <= hi, "uniform: lo > hi");
  const std::uint64_t span = hi - lo;
  if (span == ~0ull) return (*this)();
  // Rejection sampling for unbiased bounded output.
  const std::uint64_t n = span + 1;
  const std::uint64_t limit = (~0ull) - ((~0ull) % n + 1) % n;
  std::uint64_t x;
  do {
    x = (*this)();
  } while (x > limit);
  return lo + x % n;
}

std::size_t Rng::index(std::size_t n) {
  FPART_REQUIRE(n > 0, "index: n == 0");
  return static_cast<std::size_t>(uniform(0, n - 1));
}

double Rng::real() {
  // 53 random mantissa bits.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return real() < p;
}

std::size_t Rng::geometric_level(std::size_t levels, double decay) {
  FPART_REQUIRE(levels > 0, "geometric_level: levels == 0");
  FPART_REQUIRE(decay > 0.0 && decay < 1.0, "geometric_level: decay range");
  // Normalised truncated geometric distribution.
  const double total = (1.0 - std::pow(decay, static_cast<double>(levels))) /
                       (1.0 - decay);
  double r = real() * total;
  double w = 1.0;
  for (std::size_t i = 0; i + 1 < levels; ++i) {
    if (r < w) return i;
    r -= w;
    w *= decay;
  }
  return levels - 1;
}

Rng Rng::split() { return Rng((*this)() ^ 0xD1B54A32D192ED03ull); }

std::uint64_t Rng::derive_seed(std::uint64_t seed, std::uint64_t stream) {
  if (stream == 0) return seed;
  // Two rounds of splitmix64 over (seed advanced by stream golden-ratio
  // steps): full 64-bit avalanche, so neighbouring streams share no
  // low-bit structure even for seed 0.
  std::uint64_t x = seed + stream * 0x9E3779B97F4A7C15ull;
  std::uint64_t derived = splitmix64(x);
  derived ^= splitmix64(x);
  if (derived == 0) derived = 0x9E3779B97F4A7C15ull;
  return derived;
}

}  // namespace fpart
