// Tiny command-line flag parser shared by the examples and bench drivers.
//
// Supported syntax: --key=value, --key value, --flag (boolean true),
// positional arguments collected in order. Unknown keys are an error so
// typos fail loudly. Flags declared with add_switch() are known to be
// boolean and never consume the following token, so `--audit input.hgr`
// keeps `input.hgr` positional; value-carrying flags use add_flag().
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fpart {

class CliParser {
 public:
  /// Declares a flag. `help` is printed by usage(). Declaration is
  /// required before parse(); undeclared keys are rejected.
  void add_flag(const std::string& key, const std::string& help,
                const std::string& default_value = "");

  /// Declares a boolean switch (default "false"). Unlike a plain flag,
  /// `--key token` never consumes `token` as the value — the switch is
  /// set to "true" and `token` stays positional. `--key=value` still
  /// accepts an explicit boolean word.
  void add_switch(const std::string& key, const std::string& help);

  /// Parses argv. Returns false (and fills error()) on malformed input.
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key) const;
  std::int64_t get_int(const std::string& key) const;
  double get_double(const std::string& key) const;
  bool get_bool(const std::string& key) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }

  /// Formats a usage string: program name + declared flags with help text.
  std::string usage(const std::string& program) const;

 private:
  struct Flag {
    std::string help;
    std::string value;
    bool set = false;
    bool boolean = false;  // declared via add_switch: never eats a token
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace fpart
