// Assertion macros for invariant and precondition checking.
//
// FPART_ASSERT is always on (the algorithms here are heuristic search; a
// silently corrupted gain table produces plausible-looking garbage, so we
// keep checks in release builds — they are cheap relative to the search).
// FPART_DASSERT compiles out unless FPART_ENABLE_DEBUG_ASSERTS is defined;
// use it in per-move hot paths.
//
// Failures throw through the typed taxonomy in util/error.hpp:
// FPART_ASSERT* throws InternalError (a library bug), FPART_REQUIRE
// throws PreconditionError, and the typed variants FPART_PARSE_REQUIRE /
// FPART_OPTION_REQUIRE / FPART_CAPACITY_REQUIRE throw the matching
// subtype so top-level handlers and the batch report can tell malformed
// input, bad settings, impossible instances and engine bugs apart.
#pragma once

#include <sstream>
#include <string>

#include "util/error.hpp"

namespace fpart::detail {

template <typename E>
[[noreturn]] inline void throw_failed(const char* label, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << label << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw E(os.str());
}

}  // namespace fpart::detail

#define FPART_ASSERT(expr)                                                   \
  do {                                                                       \
    if (!(expr))                                                             \
      ::fpart::detail::throw_failed<::fpart::InternalError>(                 \
          "Invariant", #expr, __FILE__, __LINE__, "");                       \
  } while (false)

#define FPART_ASSERT_MSG(expr, msg)                                          \
  do {                                                                       \
    if (!(expr))                                                             \
      ::fpart::detail::throw_failed<::fpart::InternalError>(                 \
          "Invariant", #expr, __FILE__, __LINE__, (msg));                    \
  } while (false)

/// Precondition check throwing a caller-chosen taxonomy type, e.g.
///   FPART_REQUIRE_AS(ParseError, w <= kMax, "weight out of range");
#define FPART_REQUIRE_AS(ErrorType, expr, msg)                               \
  do {                                                                       \
    if (!(expr))                                                             \
      ::fpart::detail::throw_failed<::fpart::ErrorType>(                     \
          "Precondition", #expr, __FILE__, __LINE__, (msg));                 \
  } while (false)

#define FPART_REQUIRE(expr, msg) FPART_REQUIRE_AS(PreconditionError, expr, msg)
#define FPART_PARSE_REQUIRE(expr, msg) FPART_REQUIRE_AS(ParseError, expr, msg)
#define FPART_OPTION_REQUIRE(expr, msg) \
  FPART_REQUIRE_AS(OptionError, expr, msg)
#define FPART_CAPACITY_REQUIRE(expr, msg) \
  FPART_REQUIRE_AS(CapacityError, expr, msg)

#ifdef FPART_ENABLE_DEBUG_ASSERTS
#define FPART_DASSERT(expr) FPART_ASSERT(expr)
#else
#define FPART_DASSERT(expr) \
  do {                      \
  } while (false)
#endif
