// Assertion macros for invariant and precondition checking.
//
// FPART_ASSERT is always on (the algorithms here are heuristic search; a
// silently corrupted gain table produces plausible-looking garbage, so we
// keep checks in release builds — they are cheap relative to the search).
// FPART_DASSERT compiles out unless FPART_ENABLE_DEBUG_ASSERTS is defined;
// use it in per-move hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fpart {

/// Thrown when an internal invariant is violated. Indicates a library bug.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when caller-supplied input violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  explicit PreconditionError(const std::string& what)
      : std::invalid_argument(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* kind, const char* expr,
                                     const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  if (kind[0] == 'P') throw PreconditionError(os.str());
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace fpart

#define FPART_ASSERT(expr)                                                  \
  do {                                                                      \
    if (!(expr))                                                            \
      ::fpart::detail::assert_fail("Invariant", #expr, __FILE__, __LINE__,  \
                                   "");                                     \
  } while (false)

#define FPART_ASSERT_MSG(expr, msg)                                         \
  do {                                                                      \
    if (!(expr))                                                            \
      ::fpart::detail::assert_fail("Invariant", #expr, __FILE__, __LINE__,  \
                                   (msg));                                  \
  } while (false)

#define FPART_REQUIRE(expr, msg)                                            \
  do {                                                                      \
    if (!(expr))                                                            \
      ::fpart::detail::assert_fail("Precondition", #expr, __FILE__,         \
                                   __LINE__, (msg));                        \
  } while (false)

#ifdef FPART_ENABLE_DEBUG_ASSERTS
#define FPART_DASSERT(expr) FPART_ASSERT(expr)
#else
#define FPART_DASSERT(expr) \
  do {                      \
  } while (false)
#endif
