// Stopwatches used for the Table 6 CPU-time reproduction and for
// per-phase timing in the partitioner result.
//
// Timer measures wall clock (steady_clock); CpuTimer measures process
// CPU time (user + system via getrusage where available, std::clock
// otherwise) — the paper's Table 6 reports CPU seconds, so results carry
// both.
#pragma once

#include <chrono>
#include <ctime>

#if defined(__unix__) || defined(__APPLE__)
#define FPART_HAS_GETRUSAGE 1
#include <sys/resource.h>
#include <sys/time.h>
#endif

namespace fpart {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process CPU-time stopwatch (user + system time of this process).
class CpuTimer {
 public:
  CpuTimer() : start_(now_seconds()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = now_seconds(); }

  /// CPU seconds consumed by the process since construction/reset().
  double elapsed_seconds() const { return now_seconds() - start_; }

  /// Absolute process CPU time in seconds (monotone within a process).
  static double now_seconds() {
#if defined(FPART_HAS_GETRUSAGE)
    struct rusage usage {};
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
      const auto tv_seconds = [](const timeval& tv) {
        return static_cast<double>(tv.tv_sec) +
               static_cast<double>(tv.tv_usec) * 1e-6;
      };
      return tv_seconds(usage.ru_utime) + tv_seconds(usage.ru_stime);
    }
#endif
    return static_cast<double>(std::clock()) /
           static_cast<double>(CLOCKS_PER_SEC);
  }

 private:
  double start_;
};

}  // namespace fpart
