// Wall-clock stopwatch used for the Table 6 CPU-time reproduction and for
// per-phase timing in the partitioner result.
#pragma once

#include <chrono>

namespace fpart {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fpart
