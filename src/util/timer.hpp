// Stopwatches used for the Table 6 CPU-time reproduction and for
// per-phase timing in the partitioner result.
//
// Timer measures wall clock (steady_clock); CpuTimer measures process
// CPU time (user + system via getrusage where available, std::clock
// otherwise) — the paper's Table 6 reports CPU seconds, so results carry
// both.
#pragma once

#include <chrono>
#include <ctime>

#if defined(__unix__) || defined(__APPLE__)
#define FPART_HAS_GETRUSAGE 1
#include <sys/resource.h>
#include <sys/time.h>
#endif

namespace fpart {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process CPU-time stopwatch (user + system time of this process).
class CpuTimer {
 public:
  CpuTimer() : start_(now_seconds()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = now_seconds(); }

  /// CPU seconds consumed by the process since construction/reset().
  double elapsed_seconds() const { return now_seconds() - start_; }

  /// Absolute process CPU time in seconds (monotone within a process).
  static double now_seconds() {
#if defined(FPART_HAS_GETRUSAGE)
    struct rusage usage {};
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
      const auto tv_seconds = [](const timeval& tv) {
        return static_cast<double>(tv.tv_sec) +
               static_cast<double>(tv.tv_usec) * 1e-6;
      };
      return tv_seconds(usage.ru_utime) + tv_seconds(usage.ru_stime);
    }
#endif
    return clock_fallback_seconds();
  }

  /// The non-getrusage fallback: std::clock() scaled to seconds. Public
  /// so it is testable on platforms where the getrusage branch normally
  /// shadows it. Caveat: clock_t is only guaranteed to be an arithmetic
  /// type; on platforms where it is a 32-bit type with CLOCKS_PER_SEC =
  /// 1e6 (required by POSIX) it WRAPS after ~72 CPU-minutes, so very
  /// long runs on getrusage-less platforms can report a negative or
  /// reset elapsed time. The primary getrusage path does not wrap.
  static double clock_fallback_seconds() {
    const std::clock_t c = std::clock();
    if (c == static_cast<std::clock_t>(-1)) return 0.0;  // unavailable
    return static_cast<double>(c) / static_cast<double>(CLOCKS_PER_SEC);
  }

 private:
  double start_;
};

}  // namespace fpart
