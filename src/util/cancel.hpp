// Cooperative cancellation token.
//
// A CancelToken is a one-way latch shared between a driver (the
// portfolio engine, a batch runner, a signal handler) and the engines.
// Engines poll cancelled() at coarse boundaries — one FPART iteration,
// one constructive peel step — and unwind with a partial result marked
// PartitionResult::cancelled when the latch is set. Polling is a single
// relaxed atomic load, so checks can sit inside the main loops without
// measurable cost.
//
// Lives in util (not runtime) so core/Options can carry an optional
// `const CancelToken*` without depending on the thread-pool layer.
#pragma once

#include <atomic>

namespace fpart {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Latches the token. Idempotent; safe from any thread.
  void request() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once request() ran. Relaxed load: cancellation is advisory,
  /// the poller only needs to observe it eventually.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Convenience for call sites holding an optional token pointer.
inline bool cancel_requested(const CancelToken* token) {
  return token != nullptr && token->cancelled();
}

}  // namespace fpart
