// Deterministic random number generation.
//
// All stochastic choices in the library flow through Rng so that a run is
// fully reproducible from a single 64-bit seed. The engine is
// xoshiro256**, small enough to copy by value when a component needs an
// independent stream (see split()).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace fpart {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Raw 64-bit output (UniformRandomBitGenerator interface).
  std::uint64_t operator()();
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ull; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform real in [0, 1).
  double real();

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p);

  /// Geometric-ish level pick: returns i in [0, levels) with P(i) ∝ decay^i.
  /// Used by the netlist generator to choose net locality depth.
  std::size_t geometric_level(std::size_t levels, double decay);

  /// Derives an independent generator (seeded from this stream).
  Rng split();

  /// Derives the seed of sub-stream `stream` of `seed` by splitmix-style
  /// mixing — a pure function of (seed, stream), so stream i of a
  /// portfolio run is identical no matter which thread (or how many
  /// threads) executes it. derive_seed(s, 0) == s for any s (stream 0
  /// is the base stream itself, passed through verbatim — including 0).
  /// For stream >= 1 the result is never 0, so derived streams cannot
  /// collide with the "canonical deterministic" seed-0 convention of
  /// Options::seed.
  static std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element. Requires non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    FPART_REQUIRE(!v.empty(), "pick from empty vector");
    return v[index(v.size())];
  }

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace fpart
