#include "util/cli.hpp"

#include <charconv>
#include <sstream>

#include "util/assert.hpp"

namespace fpart {

void CliParser::add_flag(const std::string& key, const std::string& help,
                         const std::string& default_value) {
  FPART_REQUIRE(!key.empty() && key.substr(0, 2) != "--",
                "declare flags without leading dashes");
  flags_[key] = Flag{help, default_value, false, false};
}

void CliParser::add_switch(const std::string& key, const std::string& help) {
  FPART_REQUIRE(!key.empty() && key.substr(0, 2) != "--",
                "declare flags without leading dashes");
  flags_[key] = Flag{help, "false", false, true};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string key;
    std::string value;
    bool has_value = false;
    if (auto eq = body.find('='); eq != std::string::npos) {
      key = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      key = body;
    }
    auto it = flags_.find(key);
    if (it == flags_.end()) {
      error_ = "unknown flag --" + key;
      return false;
    }
    if (!has_value) {
      // --key value form, unless the next token is another flag or absent,
      // or the flag is a declared boolean switch — a switch never consumes
      // the next token (`--audit input.hgr` must keep input.hgr
      // positional).
      if (!it->second.boolean && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
    it->second.set = true;
  }
  return true;
}

bool CliParser::has(const std::string& key) const {
  auto it = flags_.find(key);
  return it != flags_.end() && it->second.set;
}

std::string CliParser::get(const std::string& key) const {
  auto it = flags_.find(key);
  FPART_REQUIRE(it != flags_.end(), "flag not declared: " + key);
  return it->second.value;
}

std::int64_t CliParser::get_int(const std::string& key) const {
  const std::string v = get(key);
  std::int64_t out = 0;
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  FPART_PARSE_REQUIRE(ec == std::errc() && ptr == v.data() + v.size(),
                      "flag --" + key + " is not an integer: " + v);
  return out;
}

double Cli_parse_double(const std::string& key, const std::string& v) {
  // std::from_chars never throws: empty, garbage and out-of-range values
  // all land in the flag diagnostic below instead of escaping as raw
  // std::invalid_argument / std::out_of_range (as std::stod used to).
  double out = 0.0;
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  FPART_PARSE_REQUIRE(ec == std::errc() && ptr == v.data() + v.size(),
                      "flag --" + key + " is not a number: " + v);
  return out;
}

double CliParser::get_double(const std::string& key) const {
  return Cli_parse_double(key, get(key));
}

bool CliParser::get_bool(const std::string& key) const {
  const std::string v = get(key);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no" || v.empty()) return false;
  FPART_PARSE_REQUIRE(false, "flag --" + key + " is not a boolean: " + v);
  return false;
}

std::string CliParser::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [key, flag] : flags_) {
    os << "  --" << key;
    if (!flag.value.empty() && !flag.set) os << " (default: " << flag.value << ")";
    os << "\n      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace fpart
