#include "cluster/coarsen.hpp"


#include <algorithm>
#include <string>
#include <vector>

#include "hypergraph/builder.hpp"
#include "util/assert.hpp"

namespace fpart {

std::vector<BlockId> Coarsening::project(
    std::span<const BlockId> coarse_assignment) const {
  FPART_REQUIRE(coarse_assignment.size() == coarse.num_nodes(),
                "project: assignment does not match coarse node count");
  std::vector<BlockId> fine(fine_to_coarse.size(), kInvalidBlock);
  for (NodeId v = 0; v < fine_to_coarse.size(); ++v) {
    const NodeId cv = fine_to_coarse[v];
    fine[v] = coarse_assignment[cv];
  }
  return fine;
}

Coarsening coarsen(const Hypergraph& fine, const CoarsenConfig& config) {
  const std::size_t n = fine.num_nodes();
  std::vector<NodeId> match(n, kInvalidNode);

  // Heavy-connectivity matching over interior nodes.
  std::vector<double> weight(n, 0.0);
  std::vector<NodeId> touched;
  for (NodeId v = 0; v < n; ++v) {
    if (fine.is_terminal(v) || match[v] != kInvalidNode) continue;
    // Rate unmatched interior neighbours.
    touched.clear();
    for (NetId e : fine.nets(v)) {
      const auto pins = fine.interior_pins(e);
      if (pins.size() < 2) continue;
      const double w = 1.0 / static_cast<double>(pins.size() - 1);
      for (NodeId u : pins) {
        if (u == v || match[u] != kInvalidNode || fine.is_terminal(u)) {
          continue;
        }
        if (weight[u] == 0.0) touched.push_back(u);
        weight[u] += w;
      }
    }
    NodeId best = kInvalidNode;
    for (NodeId u : touched) {
      if (config.max_cluster_size != 0 &&
          fine.node_size(v) + fine.node_size(u) > config.max_cluster_size) {
        continue;
      }
      if (best == kInvalidNode || weight[u] > weight[best] ||
          (weight[u] == weight[best] && u < best)) {
        best = u;
      }
    }
    if (best != kInvalidNode) {
      match[v] = best;
      match[best] = v;
    }
    for (NodeId u : touched) weight[u] = 0.0;
  }

  // Build the coarse circuit.
  Coarsening out;
  out.fine_to_coarse.assign(n, kInvalidNode);
  HypergraphBuilder b;
  for (NodeId v = 0; v < n; ++v) {
    if (fine.is_terminal(v)) continue;
    if (out.fine_to_coarse[v] != kInvalidNode) continue;  // already merged
    std::uint32_t size = fine.node_size(v);
    std::string name = fine.node_name(v);
    if (match[v] != kInvalidNode) {
      size += fine.node_size(match[v]);
      name += "+" + fine.node_name(match[v]);
    }
    const NodeId cv = b.add_cell(size, std::move(name));
    out.fine_to_coarse[v] = cv;
    if (match[v] != kInvalidNode) out.fine_to_coarse[match[v]] = cv;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (!fine.is_terminal(v)) continue;
    out.fine_to_coarse[v] = b.add_terminal(fine.node_name(v));
  }

  std::vector<NodeId> pins;
  for (NetId e = 0; e < fine.num_nets(); ++e) {
    pins.clear();
    bool has_terminal = false;
    for (NodeId v : fine.pins(e)) {
      pins.push_back(out.fine_to_coarse[v]);
      has_terminal = has_terminal || fine.is_terminal(v);
    }
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    // Nets entirely absorbed into one coarse cell (no pads) disappear —
    // they can never be cut or demand a pin again.
    if (pins.size() < 2 && !has_terminal) continue;
    b.add_net(pins, fine.net_name(e));
  }

  out.coarse = std::move(b).build();
  return out;
}

}  // namespace fpart
