// Connectivity clustering (coarsening) for partitioning.
//
// The FM-era studies the paper cites ([5],[7]) found clustering the
// strongest lever on iterative-improvement quality: pairs of cells that
// share many small nets are merged into a single coarse cell, the
// partitioner runs on the (much smaller) coarse circuit, and the result
// is projected back. This module implements one level of heavy-
// connectivity matching with a size cap, plus the projection.
//
// Invariants (tested): total logic size, terminal pads and pin demands
// are preserved — a coarse partition projected to the fine circuit has
// EXACTLY the same block sizes, pin counts and cutset, so feasibility
// transfers verbatim.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace fpart {

struct CoarsenConfig {
  /// Upper bound on a coarse cell's size in technology cells
  /// (0 = unlimited). Partitioning callers cap this well below S_MAX so
  /// the coarse circuit still packs devices tightly.
  std::uint32_t max_cluster_size = 0;
};

struct Coarsening {
  Hypergraph coarse;
  /// fine node id -> coarse node id (interior->interior, pad->pad).
  std::vector<NodeId> fine_to_coarse;

  /// Expands an assignment of coarse interior nodes to the fine nodes.
  /// `coarse_assignment` is indexed by coarse node id (terminals
  /// kInvalidBlock); the result is indexed by fine node id.
  std::vector<BlockId> project(
      std::span<const BlockId> coarse_assignment) const;
};

/// One level of heavy-connectivity matching. Pair weight is
/// Σ 1/(pins(e)−1) over shared multi-pin nets (the classic heavy-edge
/// rating). Deterministic: nodes are visited in id order, ties broken by
/// lower partner id.
Coarsening coarsen(const Hypergraph& fine, const CoarsenConfig& config = {});

}  // namespace fpart
