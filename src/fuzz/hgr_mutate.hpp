// Structure-aware .hgr mutation for the differential fuzz harness.
//
// mutate_hgr() takes a well-formed .hgr document (docs/FORMATS.md) and
// applies one randomly chosen mutation operator. Operators come in two
// flavors:
//
//   * targeted corruptions that MUST be rejected — they break a contract
//     the reader documents (count caps, weight range, pin range, strict
//     tokenization, no trailing data), so read_hgr() has to throw
//     ParseError; silent acceptance is a harness failure;
//   * chaos edits (byte flips, truncation, line shuffling) whose outcome
//     is open — the reader may accept or reject them, but an accepted
//     mutant must still validate() and a rejected one must fail with
//     ParseError, never any other exception type and never a crash.
//
// The split is what makes the harness a *differential* input fuzzer: the
// targeted operators pin the reject contract exactly, the chaos
// operators sweep the don't-crash / don't-misclassify surface.
#pragma once

#include <string>

#include "util/rng.hpp"

namespace fpart::fuzz {

struct HgrMutation {
  /// The mutated document.
  std::string text;
  /// Operator name, for diagnostics ("node_weight_overflow", ...).
  std::string op;
  /// True iff read_hgr() is REQUIRED to throw ParseError on `text`.
  bool must_reject = false;
};

/// Applies one mutation operator (chosen via `rng`) to `valid`, which
/// must be a well-formed fmt-10 document as produced by write_hgr().
HgrMutation mutate_hgr(const std::string& valid, Rng& rng);

/// Number of distinct mutation operators (operator i is selected when
/// rng picks i; exposed so tests can sweep every operator).
std::size_t num_mutation_ops();

/// Applies operator `op_index` (in [0, num_mutation_ops())) directly.
HgrMutation mutate_hgr_op(const std::string& valid, std::size_t op_index,
                          Rng& rng);

}  // namespace fpart::fuzz
