#include "fuzz/hgr_mutate.hpp"

#include <cstdint>
#include <sstream>
#include <vector>

#include "util/assert.hpp"

namespace fpart::fuzz {

namespace {

/// The document split into physical lines plus the indices of the lines
/// that carry data (everything except comments and blanks). For a
/// well-formed fmt-10 writer document: data line 0 is the header, data
/// lines [1, nets] the net lines, data lines (nets, nets+nodes] the
/// per-node weight lines.
struct HgrLayout {
  std::vector<std::string> lines;
  std::vector<std::size_t> data;  // indices into `lines`
  std::uint64_t num_nets = 0;
  std::uint64_t num_nodes = 0;

  std::string& header() { return lines[data[0]]; }
  std::string& net_line(std::uint64_t e) { return lines[data[1 + e]]; }
  std::string& weight_line(std::uint64_t v) {
    return lines[data[1 + num_nets + v]];
  }
};

HgrLayout split(const std::string& text) {
  HgrLayout layout;
  std::string line;
  std::istringstream is(text);
  while (std::getline(is, line)) {
    const std::size_t start = line.find_first_not_of(" \t\r");
    const bool is_data = start != std::string::npos && line[start] != '%';
    layout.lines.push_back(std::move(line));
    if (is_data) layout.data.push_back(layout.lines.size() - 1);
  }
  FPART_REQUIRE(!layout.data.empty(), "mutate_hgr: empty document");
  std::istringstream header(layout.lines[layout.data[0]]);
  std::uint64_t fmt = 0;
  FPART_REQUIRE(
      static_cast<bool>(header >> layout.num_nets >> layout.num_nodes >> fmt)
          && fmt == 10,
      "mutate_hgr: input must be a well-formed fmt-10 document");
  FPART_REQUIRE(layout.data.size() == 1 + layout.num_nets + layout.num_nodes,
                "mutate_hgr: line count does not match the header");
  return layout;
}

std::string join(const HgrLayout& layout) {
  std::string out;
  for (const std::string& line : layout.lines) {
    out += line;
    out += '\n';
  }
  return out;
}

/// Replaces the n-th whitespace-separated token of `line` (in place).
void replace_token(std::string& line, std::size_t index,
                   const std::string& replacement) {
  std::size_t i = 0;
  std::size_t seen = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size()) break;
    std::size_t end = i;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t') ++end;
    if (seen == index) {
      line.replace(i, end - i, replacement);
      return;
    }
    ++seen;
    i = end;
  }
  line += " " + replacement;  // fewer tokens than asked: append instead
}

std::size_t count_tokens(const std::string& line) {
  std::istringstream is(line);
  std::string tok;
  std::size_t n = 0;
  while (is >> tok) ++n;
  return n;
}

using MutateFn = HgrMutation (*)(HgrLayout&, Rng&);

// --- targeted operators (must_reject = true) ------------------------------

HgrMutation op_header_count_over_cap(HgrLayout& l, Rng& rng) {
  replace_token(l.header(), rng.uniform(0, 2), "99999999999999");
  return {join(l), "header_count_over_cap", true};
}

HgrMutation op_header_negative(HgrLayout& l, Rng& rng) {
  replace_token(l.header(), rng.uniform(0, 2), "-3");
  return {join(l), "header_negative", true};
}

HgrMutation op_header_bad_fmt(HgrLayout& l, Rng&) {
  replace_token(l.header(), 2, "7");
  return {join(l), "header_bad_fmt", true};
}

HgrMutation op_header_fmt_garbage(HgrLayout& l, Rng&) {
  replace_token(l.header(), 2, "10abc");
  return {join(l), "header_fmt_garbage", true};
}

HgrMutation op_header_trailing_token(HgrLayout& l, Rng&) {
  l.header() += " 9";
  return {join(l), "header_trailing_token", true};
}

HgrMutation op_node_weight_2pow32(HgrLayout& l, Rng& rng) {
  // The historic truncation bug: 2^32 wrapped to 0 (a terminal!) and
  // 2^32+1 to 1. Both are now out of the documented weight range.
  const bool plus_one = rng.chance(0.5);
  l.weight_line(rng.uniform(0, l.num_nodes - 1)) =
      plus_one ? "4294967297" : "4294967296";
  return {join(l), "node_weight_2pow32", true};
}

HgrMutation op_node_weight_negative(HgrLayout& l, Rng& rng) {
  l.weight_line(rng.uniform(0, l.num_nodes - 1)) = "-1";
  return {join(l), "node_weight_negative", true};
}

HgrMutation op_weight_line_extra_token(HgrLayout& l, Rng& rng) {
  l.weight_line(rng.uniform(0, l.num_nodes - 1)) += " 1";
  return {join(l), "weight_line_extra_token", true};
}

HgrMutation op_pin_zero(HgrLayout& l, Rng& rng) {
  std::string& line = l.net_line(rng.uniform(0, l.num_nets - 1));
  replace_token(line, rng.uniform(0, count_tokens(line) - 1), "0");
  return {join(l), "pin_zero", true};
}

HgrMutation op_pin_out_of_range(HgrLayout& l, Rng& rng) {
  std::string& line = l.net_line(rng.uniform(0, l.num_nets - 1));
  replace_token(line, rng.uniform(0, count_tokens(line) - 1),
                std::to_string(l.num_nodes + 1));
  return {join(l), "pin_out_of_range", true};
}

HgrMutation op_pin_garbage(HgrLayout& l, Rng& rng) {
  std::string& line = l.net_line(rng.uniform(0, l.num_nets - 1));
  replace_token(line, rng.uniform(0, count_tokens(line) - 1), "3x7");
  return {join(l), "pin_garbage", true};
}

HgrMutation op_delete_last_line(HgrLayout& l, Rng&) {
  // Drops the final weight line: the node section comes up short.
  l.lines.erase(l.lines.begin() +
                static_cast<std::ptrdiff_t>(l.data.back()));
  return {join(l), "delete_last_line", true};
}

HgrMutation op_append_trailing_line(HgrLayout& l, Rng&) {
  l.lines.push_back("7 7");
  return {join(l), "append_trailing_line", true};
}

HgrMutation op_header_net_count_plus_one(HgrLayout& l, Rng&) {
  // One more net than lines provide: the first weight line is consumed
  // as a net, and the node section ends early.
  replace_token(l.header(), 0, std::to_string(l.num_nets + 1));
  return {join(l), "header_net_count_plus_one", true};
}

HgrMutation op_header_net_count_minus_one(HgrLayout& l, Rng&) {
  // One fewer net: the last net line (>= 2 pins) is read as a weight
  // line and rejected by the one-token rule; a weight line is then left
  // trailing. Skipped (fall back to +1) for single-net documents.
  if (l.num_nets < 2) {
    Rng fallback(1);
    return op_header_net_count_plus_one(l, fallback);
  }
  replace_token(l.header(), 0, std::to_string(l.num_nets - 1));
  return {join(l), "header_net_count_minus_one", true};
}

// --- chaos operators (must_reject = false) --------------------------------

HgrMutation op_flip_byte(HgrLayout& l, Rng& rng) {
  std::string text = join(l);
  static constexpr char kBytes[] = "0123456789 -x%\n.";
  text[rng.uniform(0, text.size() - 1)] =
      kBytes[rng.uniform(0, sizeof(kBytes) - 2)];
  return {std::move(text), "flip_byte", false};
}

HgrMutation op_truncate(HgrLayout& l, Rng& rng) {
  std::string text = join(l);
  text.resize(rng.uniform(0, text.size()));
  return {std::move(text), "truncate", false};
}

HgrMutation op_insert_blank_lines(HgrLayout& l, Rng& rng) {
  const std::size_t at = rng.uniform(0, l.lines.size());
  l.lines.insert(l.lines.begin() + static_cast<std::ptrdiff_t>(at),
                 {"", "   ", ""});
  return {join(l), "insert_blank_lines", false};
}

HgrMutation op_delete_random_line(HgrLayout& l, Rng& rng) {
  l.lines.erase(l.lines.begin() +
                static_cast<std::ptrdiff_t>(
                    rng.uniform(0, l.lines.size() - 1)));
  return {join(l), "delete_random_line", false};
}

HgrMutation op_duplicate_random_line(HgrLayout& l, Rng& rng) {
  const std::size_t at = rng.uniform(0, l.lines.size() - 1);
  l.lines.insert(l.lines.begin() + static_cast<std::ptrdiff_t>(at),
                 l.lines[at]);
  return {join(l), "duplicate_random_line", false};
}

constexpr MutateFn kOps[] = {
    // targeted: the reader MUST reject these
    op_header_count_over_cap,
    op_header_negative,
    op_header_bad_fmt,
    op_header_fmt_garbage,
    op_header_trailing_token,
    op_node_weight_2pow32,
    op_node_weight_negative,
    op_weight_line_extra_token,
    op_pin_zero,
    op_pin_out_of_range,
    op_pin_garbage,
    op_delete_last_line,
    op_append_trailing_line,
    op_header_net_count_plus_one,
    op_header_net_count_minus_one,
    // chaos: accept-or-ParseError, never anything else
    op_flip_byte,
    op_truncate,
    op_insert_blank_lines,
    op_delete_random_line,
    op_duplicate_random_line,
};

}  // namespace

std::size_t num_mutation_ops() { return std::size(kOps); }

HgrMutation mutate_hgr_op(const std::string& valid, std::size_t op_index,
                          Rng& rng) {
  FPART_REQUIRE(op_index < std::size(kOps),
                "mutate_hgr_op: operator index out of range");
  HgrLayout layout = split(valid);
  return kOps[op_index](layout, rng);
}

HgrMutation mutate_hgr(const std::string& valid, Rng& rng) {
  return mutate_hgr_op(valid, rng.uniform(0, std::size(kOps) - 1), rng);
}

}  // namespace fpart::fuzz
