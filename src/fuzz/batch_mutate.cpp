#include "fuzz/batch_mutate.hpp"

#include <sstream>
#include <vector>

#include "util/assert.hpp"

namespace fpart::fuzz {

namespace {

/// The document split into physical lines plus the indices of the lines
/// that carry a job record (non-blank after comment stripping).
struct BatchLayout {
  std::vector<std::string> lines;
  std::vector<std::size_t> jobs;  // indices into `lines`

  std::string& job_line(std::size_t j) { return lines[jobs[j]]; }
};

BatchLayout split(const std::string& text) {
  BatchLayout layout;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    std::string stripped = line;
    if (const auto hash = stripped.find('#'); hash != std::string::npos) {
      stripped.erase(hash);
    }
    std::istringstream tokens(stripped);
    std::string tok;
    const bool is_job = static_cast<bool>(tokens >> tok);
    layout.lines.push_back(std::move(line));
    if (is_job) layout.jobs.push_back(layout.lines.size() - 1);
  }
  FPART_REQUIRE(layout.jobs.size() >= 2,
                "mutate_batch: need at least two job lines");
  return layout;
}

std::string join(const BatchLayout& layout) {
  std::string out;
  for (const std::string& line : layout.lines) {
    out += line;
    out += '\n';
  }
  return out;
}

/// Appends `kv` to a random job line, BEFORE any end-of-line comment so
/// the option actually reaches the parser.
void append_option(BatchLayout& l, Rng& rng, const std::string& kv) {
  std::string& line = l.job_line(rng.index(l.jobs.size()));
  const auto hash = line.find('#');
  if (hash == std::string::npos) {
    line += " " + kv;
  } else {
    line.insert(hash, " " + kv + " ");
  }
}

using MutateFn = BatchMutation (*)(BatchLayout&, Rng&);

// --- targeted operators (must_reject = true) ------------------------------

BatchMutation op_duplicate_explicit_id(BatchLayout& l, Rng& rng) {
  // The same explicit id on two different job lines.
  const std::size_t a = rng.index(l.jobs.size() - 1);
  l.job_line(a) += " id=dup_target";
  l.job_line(a + 1 + rng.index(l.jobs.size() - a - 1)) += " id=dup_target";
  return {join(l), "duplicate_explicit_id", true, "parse"};
}

BatchMutation op_duplicate_default_id(BatchLayout& l, Rng& rng) {
  // Job 0 carries no explicit id (mutate_batch precondition), so it
  // defaults to "job0"; naming a later job "job0" collides with it.
  l.job_line(1 + rng.index(l.jobs.size() - 1)) += " id=job0";
  return {join(l), "duplicate_default_id", true, "parse"};
}

BatchMutation op_fill_zero(BatchLayout& l, Rng& rng) {
  append_option(l, rng, "fill=0");
  return {join(l), "fill_zero", true, "option"};
}

BatchMutation op_fill_negative(BatchLayout& l, Rng& rng) {
  append_option(l, rng, "fill=-0." + std::to_string(rng.uniform(1, 9)));
  return {join(l), "fill_negative", true, "option"};
}

BatchMutation op_fill_over_one(BatchLayout& l, Rng& rng) {
  append_option(l, rng, "fill=1." + std::to_string(rng.uniform(1, 999)));
  return {join(l), "fill_over_one", true, "option"};
}

BatchMutation op_portfolio_zero(BatchLayout& l, Rng& rng) {
  append_option(l, rng, "portfolio=0");
  return {join(l), "portfolio_zero", true, "parse"};
}

BatchMutation op_unknown_key(BatchLayout& l, Rng& rng) {
  append_option(l, rng, "porfolio=8");  // the classic typo
  return {join(l), "unknown_key", true, "parse"};
}

BatchMutation op_bare_token(BatchLayout& l, Rng& rng) {
  append_option(l, rng, "justatoken");
  return {join(l), "bare_token", true, "parse"};
}

BatchMutation op_unparsable_value(BatchLayout& l, Rng& rng) {
  append_option(l, rng, rng.chance(0.5) ? "seed=xyz" : "fill=zero");
  return {join(l), "unparsable_value", true, "parse"};
}

BatchMutation op_unknown_method(BatchLayout& l, Rng& rng) {
  // Rejected inside the key=value loop, which wraps it as ParseError
  // with the line diagnostic.
  append_option(l, rng, "method=simulated-annealing");
  return {join(l), "unknown_method", true, "parse"};
}

BatchMutation op_missing_device(BatchLayout& l, Rng& rng) {
  std::string& line = l.job_line(rng.index(l.jobs.size()));
  std::istringstream tokens(line);
  std::string first;
  tokens >> first;
  line = first;
  return {join(l), "missing_device", true, "parse"};
}

// --- chaos operators (must_reject = false) --------------------------------

BatchMutation op_flip_byte(BatchLayout& l, Rng& rng) {
  std::string text = join(l);
  static constexpr char kBytes[] = "0123456789 =#-.\nx";
  text[rng.uniform(0, text.size() - 1)] =
      kBytes[rng.uniform(0, sizeof(kBytes) - 2)];
  return {std::move(text), "flip_byte", false, ""};
}

BatchMutation op_duplicate_line(BatchLayout& l, Rng& rng) {
  // Duplicating a line with an explicit id must be rejected (duplicate
  // id); one without gets a fresh default id — outcome open.
  const std::size_t at = rng.index(l.lines.size());
  l.lines.insert(l.lines.begin() + static_cast<std::ptrdiff_t>(at),
                 l.lines[at]);
  return {join(l), "duplicate_line", false, ""};
}

BatchMutation op_delete_line(BatchLayout& l, Rng& rng) {
  l.lines.erase(l.lines.begin() +
                static_cast<std::ptrdiff_t>(rng.index(l.lines.size())));
  return {join(l), "delete_line", false, ""};
}

BatchMutation op_truncate(BatchLayout& l, Rng& rng) {
  std::string text = join(l);
  text.resize(rng.uniform(0, text.size()));
  return {std::move(text), "truncate", false, ""};
}

BatchMutation op_comment_out_line(BatchLayout& l, Rng& rng) {
  l.job_line(rng.index(l.jobs.size())).insert(0, "# ");
  return {join(l), "comment_out_line", false, ""};
}

constexpr MutateFn kOps[] = {
    // targeted: the parser MUST reject these, with the recorded kind
    op_duplicate_explicit_id,
    op_duplicate_default_id,
    op_fill_zero,
    op_fill_negative,
    op_fill_over_one,
    op_portfolio_zero,
    op_unknown_key,
    op_bare_token,
    op_unparsable_value,
    op_unknown_method,
    op_missing_device,
    // chaos: accept-with-postconditions or typed rejection
    op_flip_byte,
    op_duplicate_line,
    op_delete_line,
    op_truncate,
    op_comment_out_line,
};

}  // namespace

std::size_t num_batch_mutation_ops() { return std::size(kOps); }

BatchMutation mutate_batch_op(const std::string& valid,
                              std::size_t op_index, Rng& rng) {
  FPART_REQUIRE(op_index < std::size(kOps),
                "mutate_batch_op: operator index out of range");
  BatchLayout layout = split(valid);
  return kOps[op_index](layout, rng);
}

BatchMutation mutate_batch(const std::string& valid, Rng& rng) {
  return mutate_batch_op(valid, rng.index(std::size(kOps)), rng);
}

}  // namespace fpart::fuzz
