#include "fuzz/diff_fuzz.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/solve.hpp"
#include "fuzz/batch_mutate.hpp"
#include "fuzz/hgr_mutate.hpp"
#include "hypergraph/builder.hpp"
#include "netlist/generator.hpp"
#include "netlist/hgr_io.hpp"
#include "obs/recorder.hpp"
#include "partition/audit.hpp"
#include "partition/replay.hpp"
#include "partition/verify.hpp"
#include "report/run_report.hpp"
#include "runtime/batch.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fpart::fuzz {

namespace {

/// RAII: pass-boundary auditor on for the scope (every fuzzed solve runs
/// audited, matching tests/fuzz_test.cpp).
class ScopedAudit {
 public:
  ScopedAudit() : prev_(audit_enabled()) { set_audit_enabled(true); }
  ~ScopedAudit() { set_audit_enabled(prev_); }
  ScopedAudit(const ScopedAudit&) = delete;
  ScopedAudit& operator=(const ScopedAudit&) = delete;

 private:
  bool prev_;
};

/// The engine variants a diff case sweeps: the five Methods plus the
/// FPART multi-start path (its recording/replay shape differs from a
/// single start, so it earns its own slot).
struct Variant {
  const char* label;
  Method method;
  std::uint32_t starts;
  /// Multi-start logs footer the LAST start while the result is the
  /// BEST start, and clustered logs contain coarse-graph partitions —
  /// in both cases the footer-vs-result digest check does not apply.
  bool footer_matches_result;
  /// Clustered and multilevel logs initialize partitions over coarse
  /// graphs, which the replay contract rejects by design (replay.hpp
  /// digest guard).
  bool replayable;
};

constexpr Variant kVariants[] = {
    {"fpart", Method::kFpart, 1, true, true},
    {"fpart-ms3", Method::kFpart, 3, false, true},
    {"clustered", Method::kClustered, 1, true, false},
    {"kwayx", Method::kKwayx, 1, true, true},
    {"fbb", Method::kFbb, 1, true, true},
    {"multilevel", Method::kMultilevel, 1, true, false},
};

SolveRequest make_request(const Variant& v, std::uint64_t seed) {
  SolveRequest req;
  req.method = v.method;
  req.options.starts = v.starts;
  req.options.seed = seed;
  return req;
}

std::string hgr_text(const Hypergraph& h) {
  std::ostringstream os;
  write_hgr(os, h);
  return os.str();
}

/// Checks one solved result against the independent verifier.
void check_verified(const DiffInstance& inst, const Variant& v,
                    const PartitionResult& r,
                    std::vector<std::string>& disagreements) {
  const std::string tag = std::string(v.label) + ": ";
  if (!r.feasible) {
    disagreements.push_back(tag + "result not feasible");
    return;
  }
  if (r.k < r.lower_bound) {
    disagreements.push_back(tag + "k=" + std::to_string(r.k) +
                            " below lower bound " +
                            std::to_string(r.lower_bound));
  }
  const VerifyReport report =
      verify_partition(inst.h, inst.device, r.assignment, r.k);
  if (!report.ok) {
    disagreements.push_back(tag + "independent verify failed: " +
                            report.summary());
    return;
  }
  if (report.cut != r.cut) {
    disagreements.push_back(tag + "reported cut " + std::to_string(r.cut) +
                            " != recomputed cut " +
                            std::to_string(report.cut));
  }
}

/// Serializes, re-parses and (where the contract allows) replays the
/// recorder's log; cross-checks the footer against the result.
void check_event_log(const DiffInstance& inst, const Variant& v,
                     const PartitionResult& r, const obs::Recorder& rec,
                     std::vector<std::string>& disagreements,
                     DiffArtifacts* artifacts) {
  const std::string tag = std::string(v.label) + ": ";
  const std::string jsonl = rec.to_jsonl();
  // Keep the first failing variant's log once something went wrong.
  if (artifacts != nullptr && disagreements.empty()) {
    artifacts->event_log = jsonl;
  }

  obs::EventLog log;
  try {
    log = obs::parse_event_log(jsonl);
  } catch (const std::exception& e) {
    disagreements.push_back(tag +
                            "recorded log does not re-parse: " + e.what());
    return;
  }
  // The parse must be lossless: same events, same footer.
  if (log.events != rec.events()) {
    disagreements.push_back(tag + "parsed events differ from recorded (" +
                            std::to_string(log.events.size()) + " vs " +
                            std::to_string(rec.events().size()) + ")");
    return;
  }
  if (!log.final_state.has_value()) {
    disagreements.push_back(tag + "log has no final-state footer");
    return;
  }
  if (v.footer_matches_result) {
    const std::uint64_t digest = assignment_digest(r.assignment);
    if (log.final_state->assignment_digest != digest ||
        log.final_state->cut != r.cut || log.final_state->k != r.k) {
      disagreements.push_back(
          tag + "footer (k=" + std::to_string(log.final_state->k) +
          ", cut=" + std::to_string(log.final_state->cut) +
          ") does not match the result (k=" + std::to_string(r.k) +
          ", cut=" + std::to_string(r.cut) + ")");
    }
  }
  if (v.replayable) {
    const ReplayResult replay = replay_event_log(inst.h, log);
    if (!replay.ok) {
      disagreements.push_back(
          tag + "replay diverged: " +
          (replay.errors.empty() ? "unknown" : replay.errors.front()));
    }
  }
}

/// Metamorphic A — write/read round trip is the identity: the reread
/// graph has the same structural digest and re-solves to the identical
/// assignment (ids survive the round trip, engines are deterministic).
void check_round_trip(const DiffInstance& inst, const Variant& v,
                      const PartitionResult& r,
                      std::vector<std::string>& disagreements) {
  const std::string tag = std::string(v.label) + ": ";
  Hypergraph reread = [&] {
    std::stringstream ss(hgr_text(inst.h));
    return read_hgr(ss);
  }();
  if (reread.structural_digest() != inst.h.structural_digest()) {
    disagreements.push_back(tag + "write/read round trip changed the "
                                  "structural digest");
    return;
  }
  const PartitionResult again =
      solve(reread, inst.device, make_request(v, /*seed=*/1));
  if (again.assignment != r.assignment || again.cut != r.cut ||
      again.k != r.k) {
    disagreements.push_back(tag + "re-solve after round trip diverged "
                                  "(k " + std::to_string(again.k) + " vs " +
                            std::to_string(r.k) + ", cut " +
                            std::to_string(again.cut) + " vs " +
                            std::to_string(r.cut) + ")");
  }
}

/// Metamorphic B — relabeling covariance: solving a node/net-relabeled
/// copy must produce an assignment that, mapped back through the
/// permutation, independently verifies on the ORIGINAL instance with
/// exactly the reported cut / k / feasibility. (Engines tie-break on
/// ids, so the outcome itself may legitimately differ between the two
/// labelings; what cannot differ is the self-consistency of either.)
void check_relabeling(const DiffInstance& inst, const Variant& v,
                      std::uint64_t seed,
                      std::vector<std::string>& disagreements) {
  const std::string tag = std::string(v.label) + ": relabeled ";
  const Hypergraph& h = inst.h;
  Rng rng(seed ^ 0xC0FFEEull);

  // perm[old] = new node id; nets are shuffled independently.
  std::vector<NodeId> perm(h.num_nodes());
  std::iota(perm.begin(), perm.end(), NodeId{0});
  rng.shuffle(perm);
  std::vector<NodeId> old_of(h.num_nodes());
  for (NodeId old = 0; old < h.num_nodes(); ++old) old_of[perm[old]] = old;

  HypergraphBuilder b;
  for (NodeId id = 0; id < h.num_nodes(); ++id) {
    const NodeId old = old_of[id];
    if (h.is_terminal(old)) {
      (void)b.add_terminal();
    } else {
      (void)b.add_cell(h.node_size(old));
    }
  }
  std::vector<NetId> net_order(h.num_nets());
  std::iota(net_order.begin(), net_order.end(), NetId{0});
  rng.shuffle(net_order);
  std::vector<NodeId> pins;
  for (const NetId e : net_order) {
    pins.clear();
    for (const NodeId old : h.pins(e)) pins.push_back(perm[old]);
    (void)b.add_net(pins);
  }
  const Hypergraph relabeled = std::move(b).build();

  PartitionResult r2;
  try {
    r2 = solve(relabeled, inst.device, make_request(v, /*seed=*/1));
  } catch (const std::exception& e) {
    disagreements.push_back(tag + "solve threw: " + e.what());
    return;
  }
  if (!r2.feasible) {
    disagreements.push_back(tag + "result not feasible");
    return;
  }
  if (r2.k < r2.lower_bound) {
    disagreements.push_back(tag + "k below lower bound");
  }
  // The lower bound is a pure function of totals — relabel-invariant.
  const std::uint32_t m = lower_bound_devices(h, inst.device);
  if (r2.lower_bound != m) {
    disagreements.push_back(tag + "lower bound changed under relabeling (" +
                            std::to_string(r2.lower_bound) + " vs " +
                            std::to_string(m) + ")");
  }
  std::vector<BlockId> mapped(h.num_nodes());
  for (NodeId old = 0; old < h.num_nodes(); ++old) {
    mapped[old] = r2.assignment[perm[old]];
  }
  const VerifyReport report =
      verify_partition(h, inst.device, mapped, r2.k);
  if (!report.ok) {
    disagreements.push_back(tag + "assignment does not verify on the "
                                  "original labeling: " + report.summary());
    return;
  }
  if (report.cut != r2.cut) {
    disagreements.push_back(tag + "reported cut " + std::to_string(r2.cut) +
                            " != cut recomputed on the original labeling " +
                            std::to_string(report.cut));
  }
}

}  // namespace

DiffInstance make_diff_instance(std::uint64_t seed) {
  // Mirrors tests/fuzz_test.cpp's instance recipe, scaled down: a diff
  // case solves each variant several times, so circuits stay small.
  Rng rng(seed * 6364136223846793005ull + 1442695040888963407ull);
  GeneratorConfig config;
  config.num_cells = static_cast<std::uint32_t>(rng.uniform(24, 140));
  config.num_terminals =
      static_cast<std::uint32_t>(rng.uniform(2, config.num_cells / 5 + 2));
  config.locality_decay = 0.3 + 0.4 * rng.real();
  config.high_fanout_fraction = 0.08 * rng.real();
  config.net_ratio = 0.9 + 0.5 * rng.real();
  config.seed = rng();

  Hypergraph h = generate_circuit(config);

  // Valid device in the paper's pin/logic regime (fuzz_test.cpp has the
  // full rationale): every cell fits, every degree fits.
  const auto s_ds = static_cast<std::uint32_t>(
      rng.uniform(std::max<std::uint64_t>(8, h.max_node_size() + 4),
                  std::max<std::uint64_t>(16, config.num_cells / 2)));
  const auto min_pins = std::max<std::uint32_t>(
      static_cast<std::uint32_t>(h.max_node_degree()) + 2, s_ds / 2);
  const auto t_max =
      static_cast<std::uint32_t>(rng.uniform(min_pins, min_pins + 64));
  const double fill = rng.chance(0.5) ? 1.0 : 0.9;
  return DiffInstance{std::move(h),
                      Device("DIFF-FUZZ", Family::kXC3000, s_ds, t_max, fill)};
}

std::vector<std::string> run_diff_case(std::uint64_t seed,
                                       DiffArtifacts* artifacts) {
  const DiffInstance inst = make_diff_instance(seed);
  if (artifacts != nullptr) artifacts->hgr = hgr_text(inst.h);
  std::vector<std::string> disagreements;
  ScopedAudit audit;

  // The per-variant oracles run for every variant every case; the two
  // metamorphic re-solves rotate through the variants across seeds
  // (each gets 1-in-5 coverage), keeping a case ~2x cheaper.
  const Variant& meta_variant = kVariants[seed % std::size(kVariants)];
  for (const Variant& v : kVariants) {
    PartitionResult r;
    obs::Recorder rec;
    {
      obs::ScopedRecorderInstall install(&rec);
      rec.start(make_event_log_header(inst.h, inst.device, Options{},
                                      v.label));
      try {
        r = solve(inst.h, inst.device, make_request(v, /*seed=*/1));
      } catch (const std::exception& e) {
        rec.stop();
        disagreements.push_back(std::string(v.label) +
                                ": solve threw: " + e.what());
        continue;
      }
      rec.stop();
    }
    check_verified(inst, v, r, disagreements);
    check_event_log(inst, v, r, rec, disagreements, artifacts);
    if (&v == &meta_variant) check_round_trip(inst, v, r, disagreements);
  }

  check_relabeling(inst, meta_variant, seed, disagreements);
  return disagreements;
}

std::vector<std::string> run_mutation_case(std::uint64_t seed,
                                           DiffArtifacts* artifacts) {
  const DiffInstance inst = make_diff_instance(seed);
  const std::string valid = hgr_text(inst.h);
  if (artifacts != nullptr) artifacts->hgr = valid;
  std::vector<std::string> disagreements;

  Rng rng(seed ^ 0xBADF00Dull);
  // Sweep every operator per case (cheap: parsing only), plus a few
  // extra random draws for operator-internal randomness.
  for (std::size_t round = 0; round < num_mutation_ops() + 4; ++round) {
    const std::size_t op = round < num_mutation_ops()
                               ? round
                               : rng.index(num_mutation_ops());
    const HgrMutation mutation = mutate_hgr_op(valid, op, rng);
    // Keep the first failing mutant's document once something went wrong.
    if (artifacts != nullptr && disagreements.empty()) {
      artifacts->mutated = mutation.text;
      artifacts->op = mutation.op;
    }
    const std::string tag = "mutation " + mutation.op + ": ";
    try {
      std::stringstream ss(mutation.text);
      const Hypergraph h = read_hgr(ss);
      if (mutation.must_reject) {
        disagreements.push_back(tag + "silently accepted");
        continue;
      }
      // Chaos mutants the reader accepts must be structurally sound.
      try {
        h.validate();
      } catch (const std::exception& e) {
        disagreements.push_back(tag + "accepted an inconsistent graph: " +
                                e.what());
      }
    } catch (const ParseError&) {
      // The documented rejection path — always acceptable.
    } catch (const std::exception& e) {
      disagreements.push_back(tag + "wrong exception type (" +
                              error_kind(e) + "): " + e.what());
    }
  }
  return disagreements;
}

std::vector<std::string> run_batch_mutation_case(std::uint64_t seed,
                                                 DiffArtifacts* artifacts) {
  Rng rng(seed ^ 0xBA7C8F11Eull);
  // A seeded well-formed job list. Job 0 deliberately has no explicit
  // id (the duplicate_default_id operator targets its "job0" default)
  // and no job line carries an end-of-line comment (the duplicate-id
  // operators append options directly).
  std::ostringstream valid_os;
  valid_os << "# differential batch fuzz seed " << seed << "\n"
           << "a.hgr XC3020 seed=" << rng.uniform(0, 99) << "\n"
           << "b.hgr XC3042 id=left fill=0." << rng.uniform(5, 9)
           << " portfolio=" << rng.uniform(1, 4) << "\n"
           << "c.hgr XC3030 id=right method="
           << (rng.chance(0.5) ? "kwayx" : "fbb") << "\n";
  const std::string valid = valid_os.str();
  std::vector<std::string> disagreements;

  // The unmutated document must parse — otherwise every "rejected"
  // verdict below would be vacuous.
  try {
    (void)runtime::parse_batch_text(valid, "fuzz batch");
  } catch (const std::exception& e) {
    return {std::string("valid batch document rejected: ") + e.what()};
  }

  for (std::size_t round = 0; round < num_batch_mutation_ops() + 4;
       ++round) {
    const std::size_t op = round < num_batch_mutation_ops()
                               ? round
                               : rng.index(num_batch_mutation_ops());
    const BatchMutation mutation = mutate_batch_op(valid, op, rng);
    if (artifacts != nullptr && disagreements.empty()) {
      artifacts->mutated = mutation.text;
      artifacts->op = mutation.op;
    }
    const std::string tag = "batch mutation " + mutation.op + ": ";
    try {
      const std::vector<runtime::JobSpec> jobs =
          runtime::parse_batch_text(mutation.text, "fuzz batch");
      if (mutation.must_reject) {
        disagreements.push_back(tag + "silently accepted");
        continue;
      }
      // Accepted chaos mutants must satisfy the parser's documented
      // postconditions: unique ids and fully validated specs.
      std::unordered_set<std::string> ids;
      for (const runtime::JobSpec& job : jobs) {
        if (!ids.insert(job.id).second) {
          disagreements.push_back(tag + "accepted duplicate id '" +
                                  job.id + "'");
        }
        try {
          runtime::validate_job_spec(job);
        } catch (const std::exception& e) {
          disagreements.push_back(tag + "accepted an invalid spec: " +
                                  e.what());
        }
      }
    } catch (const PreconditionError& e) {
      if (mutation.must_reject &&
          mutation.expected_kind != error_kind(e)) {
        disagreements.push_back(tag + "wrong error kind (got " +
                                error_kind(e) + ", want " +
                                mutation.expected_kind + "): " + e.what());
      }
      // Chaos mutants may be rejected with any taxonomy kind.
    } catch (const std::exception& e) {
      disagreements.push_back(tag + "wrong exception type (" +
                              error_kind(e) + "): " + e.what());
    }
  }
  return disagreements;
}

}  // namespace fpart::fuzz
