// Differential fuzz harness: seeded random circuits through every
// partitioning engine, with each result cross-checked four independent
// ways, plus a structure-aware malformed-input sweep.
//
// One diff case (run_diff_case) generates a small circuit + device and,
// for every Method (plus the FPART multi-start variant):
//
//   1. solves with the inline invariant auditor enabled and the flight
//      recorder capturing — an engine whose incremental bookkeeping
//      drifts aborts mid-run instead of returning a wrong answer;
//   2. verifies the result with partition/verify.hpp (an oracle that
//      shares no code with the incremental Partition class) and checks
//      the reported cut / feasibility / k >= lower bound against it;
//   3. serializes the event log to JSONL, re-parses it, and replays the
//      mutation events onto a fresh Partition — the replayed final state
//      must match the recorded footer byte for byte;
//   4. metamorphic checks: write_hgr -> read_hgr must round-trip to an
//      identical structural digest and re-solve to the identical
//      assignment (round-trip identity), and solving a node/net-relabeled
//      copy must yield an assignment that, mapped back through the
//      permutation, independently verifies with the same reported cut
//      and block count (relabeling covariance — engines may tie-break
//      differently on ids, so byte equality is NOT required, but the
//      reported outcome must stay self-consistent).
//
// One mutation case (run_mutation_case) writes the circuit as .hgr text,
// applies one hgr_mutate.hpp operator, and checks the reject contract:
// targeted corruptions must raise ParseError (silent acceptance or any
// other exception type is a failure), chaos edits must either parse into
// a hypergraph that validate()s or raise ParseError — never crash, never
// leak a raw std:: exception.
//
// Every check failure is returned as a human-readable disagreement
// string; an empty vector means the case passed. tools/fpart_fuzz drives
// batches of cases from the command line (CI smoke + sanitizer jobs);
// tests/diff_fuzz_test.cpp pins 200 fixed seeds in ctest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "device/device.hpp"
#include "hypergraph/hypergraph.hpp"

namespace fpart::fuzz {

/// One generated problem instance (circuit small enough that a full
/// diff case stays in the millisecond range).
struct DiffInstance {
  Hypergraph h;
  Device device;
};

/// Deterministic instance for `seed`: 24..140 cells, a valid device in
/// the paper's pin/logic regime.
DiffInstance make_diff_instance(std::uint64_t seed);

/// On failure, the artifacts a reproducer needs (written to disk by
/// tools/fpart_fuzz, attached to CI uploads).
struct DiffArtifacts {
  std::string hgr;        // the instance as .hgr text
  std::string event_log;  // last event log involved in a disagreement
  std::string mutated;    // mutation cases: the mutated document
  std::string op;         // mutation cases: the operator name
};

/// Runs one full differential case. Returns every disagreement found
/// (empty = pass). `artifacts` (optional) is filled for failures.
std::vector<std::string> run_diff_case(std::uint64_t seed,
                                       DiffArtifacts* artifacts = nullptr);

/// Runs one malformed-input case. Returns disagreements (empty = pass).
std::vector<std::string> run_mutation_case(std::uint64_t seed,
                                           DiffArtifacts* artifacts = nullptr);

/// Runs one malformed BATCH-FILE case (batch_mutate.hpp): sweeps every
/// operator over a seeded valid job list and checks the reject matrix —
/// duplicate job ids must raise ParseError, out-of-range fill must
/// raise OptionError, chaos mutants must parse into jobs satisfying the
/// parser's postconditions or fail through the typed taxonomy. Returns
/// disagreements (empty = pass).
std::vector<std::string> run_batch_mutation_case(
    std::uint64_t seed, DiffArtifacts* artifacts = nullptr);

}  // namespace fpart::fuzz
