// Structure-aware batch-file mutation for the differential fuzz harness
// — the job-list sibling of hgr_mutate.hpp.
//
// mutate_batch() takes a well-formed fpart batch document (the
// `<input.hgr> <device> [key=value ...]` text format parsed by
// runtime::parse_batch_text) and applies one mutation operator:
//
//   * targeted corruptions that MUST be rejected with a specific
//     taxonomy kind — duplicate job ids (explicit or colliding with a
//     defaulted "job<i>") are ParseError, out-of-range fill values
//     ((-inf,0] and (1,inf)) and portfolio == 0 are OptionError/
//     ParseError per the documented reject matrix; silent acceptance is
//     a harness failure, and so is the wrong error kind;
//   * chaos edits (byte flips, line duplication/deletion, truncation)
//     whose outcome is open — an accepted mutant must still satisfy the
//     parser's postconditions (unique ids, validated specs), a rejected
//     one must fail through the typed taxonomy, never crash.
#pragma once

#include <cstddef>
#include <string>

#include "util/rng.hpp"

namespace fpart::fuzz {

struct BatchMutation {
  /// The mutated document.
  std::string text;
  /// Operator name, for diagnostics ("duplicate_explicit_id", ...).
  std::string op;
  /// True iff parse_batch_text() is REQUIRED to reject `text`.
  bool must_reject = false;
  /// For must_reject operators: the required error_kind() of the thrown
  /// exception ("parse" or "option"). Empty for chaos operators.
  std::string expected_kind;
};

/// Applies one mutation operator (chosen via `rng`) to `valid`, which
/// must be a well-formed batch document with at least two job lines,
/// the first of which carries no explicit id.
BatchMutation mutate_batch(const std::string& valid, Rng& rng);

/// Number of distinct operators (exposed so tests sweep every one).
std::size_t num_batch_mutation_ops();

/// Applies operator `op_index` (in [0, num_batch_mutation_ops())).
BatchMutation mutate_batch_op(const std::string& valid,
                              std::size_t op_index, Rng& rng);

}  // namespace fpart::fuzz
