// k-way.x — the greedy recursive-bipartitioning baseline of Kuznar,
// Brglez & Kozminski [9],[11] (the "(p,p)" flow: partition + pairwise
// improvement, no replication, no re-optimization).
//
// Each iteration grows one device-sized cluster out of the remainder by
// connectivity (best cut-gain frontier cell first), polishes it against
// the remainder with classic FM [4] minimizing the cut-net count, and
// repairs any pin violation by greedy shrinking. Blocks created at
// earlier iterations are never revisited — the greedy weakness the
// paper's §3 discusses and FPART removes.
#pragma once

#include "core/result.hpp"
#include "device/device.hpp"
#include "fm/fm_bipartitioner.hpp"
#include "hypergraph/hypergraph.hpp"
#include "util/cancel.hpp"

namespace fpart {

struct KwayxConfig {
  FmConfig fm;
  /// FM lower size window for the grown block, as a fraction of its
  /// post-growth size (prevents FM from draining the block back into
  /// the remainder).
  double keep_fraction = 0.9;
  /// Cooperative cancellation, polled once per peel iteration.
  const CancelToken* cancel = nullptr;
};

class KwayxPartitioner {
 public:
  explicit KwayxPartitioner(KwayxConfig config = {}) : config_(config) {}

  const KwayxConfig& config() const { return config_; }

  /// Partitions `h` greedily; the result is always feasible.
  PartitionResult run(const Hypergraph& h, const Device& device) const;

 private:
  KwayxConfig config_;
};

}  // namespace fpart
