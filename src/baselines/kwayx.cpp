#include "baselines/kwayx.hpp"

#include <limits>
#include <vector>

#include "fm/gain_bucket.hpp"
#include "fm/gains.hpp"
#include "fm/repair.hpp"
#include "obs/phase.hpp"
#include "obs/timeseries.hpp"
#include "partition/partition.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace fpart {

namespace {

constexpr BlockId kRem = 0;

NodeId biggest_remainder_cell(const Partition& p) {
  const Hypergraph& h = p.graph();
  NodeId best = kInvalidNode;
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (h.is_terminal(v) || p.block_of(v) != kRem) continue;
    if (best == kInvalidNode || h.node_size(v) > h.node_size(best) ||
        (h.node_size(v) == h.node_size(best) &&
         h.degree(v) > h.degree(best))) {
      best = v;
    }
  }
  return best;
}

/// Grows `block` from the remainder by best cut gain until the device
/// size saturates (connectivity-driven greedy clustering).
void grow_by_connectivity(Partition& p, const Device& d, BlockId block) {
  const Hypergraph& h = p.graph();
  const NodeId seed = biggest_remainder_cell(p);
  FPART_ASSERT(seed != kInvalidNode);
  p.move(seed, block);

  GainBucket bucket(h.num_nodes(), static_cast<int>(h.max_node_degree()));
  std::vector<std::uint8_t> queued(h.num_nodes(), 0);
  auto enqueue_neighbours = [&](NodeId v) {
    for (NetId e : h.nets(v)) {
      for (NodeId w : h.interior_pins(e)) {
        if (queued[w] || p.block_of(w) != kRem) continue;
        queued[w] = 1;
        bucket.insert(w, move_gain(p, w, block));
      }
    }
  };
  enqueue_neighbours(seed);

  while (!bucket.empty() && p.block_node_count(kRem) > 0) {
    // Best-gain frontier cell that fits the device size.
    const auto id = bucket.find_first(
        [&](std::uint32_t v, int) {
          return d.size_ok(p.block_size(block) + h.node_size(v));
        },
        bucket.size());
    if (!id) break;
    const NodeId v = static_cast<NodeId>(*id);
    bucket.remove(v);
    p.move(v, block);
    enqueue_neighbours(v);
    for (NetId e : h.nets(v)) {
      for (NodeId w : h.interior_pins(e)) {
        if (bucket.contains(w) && p.block_of(w) == kRem) {
          bucket.update(w, move_gain(p, w, block));
        }
      }
    }
  }
}

}  // namespace

PartitionResult KwayxPartitioner::run(const Hypergraph& h,
                                      const Device& device) const {
  obs::ScopedPhase phase("kwayx.run");
  Timer timer;
  CpuTimer cpu_timer;
  const std::uint32_t m = lower_bound_devices(h, device);
  Partition p(h, 1);

  std::uint32_t iterations = 0;
  bool cancelled = false;
  while (!p.block_feasible(kRem, device) && p.block_node_count(kRem) > 0) {
    if (cancel_requested(config_.cancel)) {
      cancelled = true;
      break;
    }
    ++iterations;
    obs::ScopedPhase iter_phase("kwayx.block");  // grow + polish + shrink
    const BlockId pk = p.add_block();
    grow_by_connectivity(p, device, pk);

    // Classic FM polish between the new block and the remainder only —
    // the defining limitation of the greedy paradigm.
    const double keep =
        config_.keep_fraction * static_cast<double>(p.block_size(pk));
    FmBipartitioner fm(p, pk, kRem, config_.fm);
    fm.run(SizeWindow{keep, device.s_max()},
           SizeWindow{0.0, std::numeric_limits<double>::infinity()});

    shrink_to_feasible(p, device, pk, kRem);

    if (obs::timeseries_enabled()) {
      obs::sample_point(obs::SampleKind::kPass, obs::Engine::kKwayx,
                        iterations, p.cut_size(), p.cut_size(),
                        p.count_feasible(device), p.num_blocks(), 0, 0, 0);
    }
  }
  PartitionResult r = summarize_partition(p, device, m, iterations,
                                          timer.elapsed_seconds(),
                                          cpu_timer.elapsed_seconds());
  r.cancelled = cancelled;
  return r;
}

}  // namespace fpart
