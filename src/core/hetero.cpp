#include "core/hetero.hpp"

#include <utility>
#include <vector>

#include "core/initial_partition.hpp"
#include "partition/evaluator.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace fpart {

namespace {

std::vector<std::pair<std::uint64_t, std::uint64_t>> block_demands(
    const Partition& p) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> demands;
  demands.reserve(p.num_blocks());
  for (BlockId b = 0; b < p.num_blocks(); ++b) {
    demands.emplace_back(p.block_size(b), p.block_pins(b));
  }
  return demands;
}

double block_cost(const Partition& p, BlockId b, const DeviceSet& set) {
  const auto fit = set.cheapest_fit(p.block_size(b), p.block_pins(b));
  FPART_ASSERT_MSG(fit.has_value(), "block does not fit any library device");
  return set.devices()[*fit].cost;
}

}  // namespace

HeteroResult partition_heterogeneous(const Hypergraph& h,
                                     const DeviceSet& set,
                                     const HeteroOptions& options) {
  Timer timer;
  CpuTimer cpu_timer;
  const Device& target = set.largest().device;

  // Step 1: minimize the block count against the biggest device.
  PartitionResult base = FpartPartitioner(options.fpart).run(h, target);
  FPART_ASSERT(base.feasible);

  // Rebuild mutable state for the downsizing pass.
  Partition p(h, base.assignment, base.k);

  HeteroResult result;

  // Step 3 (optional): split expensive blocks when two smaller devices
  // price lower than one large one.
  if (options.downsize && set.size() > 1) {
    double min_cost = set.devices()[0].cost;
    for (const auto& pd : set.devices()) {
      min_cost = std::min(min_cost, pd.cost);
    }
    bool changed = true;
    std::uint32_t guard = 4 * p.num_blocks() + 16;
    while (changed && guard-- > 0) {
      changed = false;
      for (BlockId b = 0; b < p.num_blocks(); ++b) {
        const double old_cost = block_cost(p, b, set);
        if (old_cost <= min_cost || p.block_node_count(b) < 2) continue;
        // Try to carve a piece that fits each cheaper device, cheapest
        // first; keep the first split that lowers the bill.
        for (std::size_t di = 0; di < set.size(); ++di) {
          const auto& pd = set.devices()[di];
          if (pd.cost >= old_cost) continue;
          const auto snapshot = p.snapshot();
          const Evaluator eval(pd.device, options.fpart.cost, 2);
          const BlockId nb = bipartition_remainder(p, eval, b,
                                                   options.fpart);
          const auto rest_fit =
              set.cheapest_fit(p.block_size(b), p.block_pins(b));
          const auto new_fit =
              set.cheapest_fit(p.block_size(nb), p.block_pins(nb));
          const bool better =
              rest_fit && new_fit && p.block_node_count(b) > 0 &&
              set.devices()[*rest_fit].cost + set.devices()[*new_fit].cost <
                  old_cost;
          if (better) {
            ++result.splits;
            changed = true;
            break;
          }
          p.restore(snapshot);
        }
      }
    }
  }

  result.partition = summarize_partition(p, target, base.lower_bound,
                                         base.iterations + result.splits,
                                         timer.elapsed_seconds(),
                                         cpu_timer.elapsed_seconds());

  // Step 2 (final): price every block.
  Partition final_p(h, result.partition.assignment, result.partition.k);
  const auto demands = block_demands(final_p);
  result.devices = assign_cheapest_devices(demands, set);
  FPART_ASSERT_MSG(result.devices.ok,
                   "every block must fit some library device");
  result.total_cost = result.devices.total_cost;
  return result;
}

}  // namespace fpart
