// Result of a multi-way partitioning run (FPART or a baseline).
#pragma once

#include <cstdint>
#include <vector>

#include "device/device.hpp"
#include "hypergraph/types.hpp"

namespace fpart {

class Partition;

struct BlockStats {
  std::uint64_t size = 0;   // S_i, technology cells
  std::uint64_t pins = 0;   // T_i, I/O pin demand
  std::uint64_t ext = 0;    // T^E_i, external primary I/Os
  std::uint32_t nodes = 0;  // interior node count
  bool feasible = false;
};

struct PartitionResult {
  /// True iff every block meets the device constraints.
  bool feasible = false;
  /// Number of devices used (k).
  std::uint32_t k = 0;
  /// Lower bound M for this circuit/device pair.
  std::uint32_t lower_bound = 0;
  /// Per-node block assignment (terminals: kInvalidBlock).
  std::vector<BlockId> assignment;
  std::vector<BlockStats> blocks;
  /// Cut nets (interior span >= 2).
  std::uint64_t cut = 0;
  /// K−1 connectivity: Σ over nets of (interior span − 1).
  std::uint64_t km1 = 0;
  /// Algorithm-1 iterations executed (FPART) or peel steps (baselines).
  std::uint32_t iterations = 0;
  /// Wall-clock seconds.
  double seconds = 0.0;
  /// Process CPU seconds (user + system) — Table 6 reports CPU time.
  double cpu_seconds = 0.0;
  /// True when the run was stopped early by a CancelToken; the rest of
  /// the result describes the partial partition at the stop point and
  /// must not enter a portfolio reduction.
  bool cancelled = false;
};

/// Builds a PartitionResult from a finished partition: drops empty
/// blocks, then records per-block stats, feasibility, cut and timing.
/// Shared by FPART and the baseline partitioners.
PartitionResult summarize_partition(Partition& p, const Device& d,
                                    std::uint32_t lower_bound,
                                    std::uint32_t iterations, double seconds,
                                    double cpu_seconds = 0.0);

}  // namespace fpart
