#include "core/solve.hpp"

#include <string>

#include "core/fpart.hpp"
#include "util/assert.hpp"

namespace fpart {

namespace {

/// Canonical names, aligned with the Method enumerators. The parse
/// error, method_name() and method_names() all read this one table, so
/// adding an engine cannot drift the error message or the round trip.
constexpr std::string_view kMethodNames[] = {
    "fpart", "clustered", "kwayx", "fbb", "multilevel",
};

std::string joined_method_names() {
  std::string out;
  for (const std::string_view name : kMethodNames) {
    if (!out.empty()) out += '|';
    out += name;
  }
  return out;
}

/// Name of the EngineConfig alternative a request currently holds, for
/// the mismatch diagnostic. Alternative order mirrors the Method order.
std::string_view engine_config_name(const EngineConfig& config) {
  switch (config.index()) {
    case 1:
      return method_name(Method::kClustered);
    case 2:
      return method_name(Method::kKwayx);
    case 3:
      return method_name(Method::kFbb);
    case 4:
      return method_name(Method::kMultilevel);
    default:
      return "none";
  }
}

/// Returns the held config for `Config`, nullptr when the request holds
/// no config at all (engine defaults / deprecated flat members), and
/// throws OptionError when it holds a config for a different engine.
template <class Config>
const Config* matching_config(const SolveRequest& req) {
  if (const Config* config = std::get_if<Config>(&req.engine)) return config;
  FPART_OPTION_REQUIRE(
      std::holds_alternative<std::monostate>(req.engine),
      "engine config '" + std::string(engine_config_name(req.engine)) +
          "' does not match method '" +
          std::string(method_name(req.method)) + "'");
  return nullptr;
}

}  // namespace

Method parse_method(std::string_view name) {
  for (std::size_t i = 0; i < std::size(kMethodNames); ++i) {
    if (name == kMethodNames[i]) return static_cast<Method>(i);
  }
  FPART_OPTION_REQUIRE(false, "unknown method '" + std::string(name) +
                                  "' (expected " + joined_method_names() +
                                  ")");
}

std::string_view method_name(Method m) {
  const auto i = static_cast<std::size_t>(m);
  FPART_REQUIRE(i < std::size(kMethodNames),
                "method_name: invalid Method enumerator");
  return kMethodNames[i];
}

std::span<const std::string_view> method_names() { return kMethodNames; }

PartitionResult solve(const Hypergraph& h, const Device& device,
                      const SolveRequest& req) {
  // A cell larger than the effective logic capacity can never be placed
  // in any block, so no engine can succeed — reject the instance up
  // front as a typed capacity error instead of letting engines churn.
  FPART_CAPACITY_REQUIRE(
      h.max_node_size() <= device.s_max_cells(),
      "largest cell (" + std::to_string(h.max_node_size()) +
          " cells) exceeds device capacity S_MAX = " +
          std::to_string(device.s_max_cells()) + " on " + device.name());
  switch (req.method) {
    case Method::kFpart: {
      // FPART's knobs all live in Options — any held engine config is a
      // mismatch by definition.
      FPART_OPTION_REQUIRE(
          std::holds_alternative<std::monostate>(req.engine),
          "engine config '" + std::string(engine_config_name(req.engine)) +
              "' does not match method 'fpart'");
      const std::uint32_t starts = req.options.starts;
      FPART_OPTION_REQUIRE(starts >= 1, "options.starts must be >= 1");
      if (starts > 1) {
        return run_fpart_multistart(h, device, req.options, starts);
      }
      return FpartPartitioner(req.options).run(h, device);
    }
    case Method::kClustered: {
      const ClusteredOptions* held = matching_config<ClusteredOptions>(req);
      ClusteredOptions co = held != nullptr ? *held : ClusteredOptions{};
      co.fpart = req.options;
      return ClusteredFpartPartitioner(co).run(h, device);
    }
    case Method::kKwayx: {
      const KwayxConfig* held = matching_config<KwayxConfig>(req);
      KwayxConfig config = held != nullptr ? *held : KwayxConfig{};
      config.cancel = req.options.cancel;
      return KwayxPartitioner(config).run(h, device);
    }
    case Method::kFbb: {
      const FbbConfig* held = matching_config<FbbConfig>(req);
      FbbConfig config = held != nullptr ? *held : FbbConfig{};
      config.cancel = req.options.cancel;
      return FbbPartitioner(config).run(h, device);
    }
    case Method::kMultilevel: {
      const MultilevelOptions* held = matching_config<MultilevelOptions>(req);
      MultilevelOptions mo = held != nullptr ? *held : MultilevelOptions{};
      mo.fpart = req.options;
      return MultilevelPartitioner(mo).run(h, device);
    }
  }
  FPART_REQUIRE(false, "solve: invalid Method enumerator");
}

}  // namespace fpart
