#include "core/solve.hpp"

#include <string>

#include "core/fpart.hpp"
#include "util/assert.hpp"

namespace fpart {

Method parse_method(std::string_view name) {
  if (name == "fpart") return Method::kFpart;
  if (name == "clustered") return Method::kClustered;
  if (name == "kwayx") return Method::kKwayx;
  if (name == "fbb") return Method::kFbb;
  FPART_OPTION_REQUIRE(false, "unknown method '" + std::string(name) +
                                  "' (expected fpart|clustered|kwayx|fbb)");
}

std::string_view method_name(Method m) {
  switch (m) {
    case Method::kFpart:
      return "fpart";
    case Method::kClustered:
      return "clustered";
    case Method::kKwayx:
      return "kwayx";
    case Method::kFbb:
      return "fbb";
  }
  FPART_REQUIRE(false, "method_name: invalid Method enumerator");
}

PartitionResult solve(const Hypergraph& h, const Device& device,
                      const SolveRequest& req) {
  // A cell larger than the effective logic capacity can never be placed
  // in any block, so no engine can succeed — reject the instance up
  // front as a typed capacity error instead of letting engines churn.
  FPART_CAPACITY_REQUIRE(
      h.max_node_size() <= device.s_max_cells(),
      "largest cell (" + std::to_string(h.max_node_size()) +
          " cells) exceeds device capacity S_MAX = " +
          std::to_string(device.s_max_cells()) + " on " + device.name());
  switch (req.method) {
    case Method::kFpart:
      if (req.starts > 1) {
        return run_fpart_multistart(h, device, req.options, req.starts);
      }
      return FpartPartitioner(req.options).run(h, device);
    case Method::kClustered: {
      ClusteredOptions co = req.clustered;
      co.fpart = req.options;
      return ClusteredFpartPartitioner(co).run(h, device);
    }
    case Method::kKwayx: {
      KwayxConfig config = req.kwayx;
      config.cancel = req.options.cancel;
      return KwayxPartitioner(config).run(h, device);
    }
    case Method::kFbb: {
      FbbConfig config = req.fbb;
      config.cancel = req.options.cancel;
      return FbbPartitioner(config).run(h, device);
    }
  }
  FPART_REQUIRE(false, "solve: invalid Method enumerator");
}

}  // namespace fpart
