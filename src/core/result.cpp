#include "core/result.hpp"

#include "obs/recorder.hpp"
#include "partition/partition.hpp"
#include "partition/replay.hpp"

namespace fpart {

PartitionResult summarize_partition(Partition& p, const Device& d,
                                    std::uint32_t lower_bound,
                                    std::uint32_t iterations,
                                    double seconds, double cpu_seconds) {
  // Drop empty blocks (a pool/remainder may end empty).
  for (BlockId b = 0; b < p.num_blocks();) {
    if (p.block_node_count(b) == 0 && p.num_blocks() > 1) {
      p.swap_blocks(b, p.num_blocks() - 1);
      p.remove_last_block();
    } else {
      ++b;
    }
  }

  PartitionResult result;
  result.k = p.num_blocks();
  result.lower_bound = lower_bound;
  result.feasible = p.classify(d) == FeasibilityClass::kFeasible;
  result.cut = p.cut_size();
  result.km1 = p.connectivity_km1();
  result.iterations = iterations;
  result.seconds = seconds;
  result.cpu_seconds = cpu_seconds;
  result.assignment.assign(p.graph().num_nodes(), kInvalidBlock);
  for (NodeId v = 0; v < p.graph().num_nodes(); ++v) {
    if (!p.graph().is_terminal(v)) result.assignment[v] = p.block_of(v);
  }
  result.blocks.resize(p.num_blocks());
  for (BlockId b = 0; b < p.num_blocks(); ++b) {
    result.blocks[b] =
        BlockStats{p.block_size(b), p.block_pins(b),
                   p.block_external_pins(b), p.block_node_count(b),
                   p.block_feasible(b, d)};
  }

  if (obs::recorder_enabled()) {
    // The empty-block drop above went through the recorded mutation path,
    // so this footer is exactly where a replay of the event stream lands.
    obs::FinalState fin;
    fin.k = result.k;
    fin.cut = result.cut;
    fin.km1 = result.km1;
    fin.assignment_digest = assignment_digest(p.assignment());
    fin.blocks.reserve(p.num_blocks());
    for (BlockId b = 0; b < p.num_blocks(); ++b) {
      fin.blocks.emplace_back(p.block_size(b), p.block_pins(b));
    }
    obs::Recorder::instance().set_final_state(std::move(fin));
  }
  return result;
}

}  // namespace fpart
