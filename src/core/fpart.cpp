#include "core/fpart.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/initial_partition.hpp"
#include "obs/phase.hpp"
#include "obs/recorder.hpp"
#include "obs/stats.hpp"
#include "obs/timeseries.hpp"
#include "util/rng.hpp"
#include "partition/audit.hpp"
#include "partition/evaluator.hpp"
#include "sanchis/refiner.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace fpart {

namespace {

constexpr BlockId kRem = 0;  // the remainder keeps block id 0 throughout

/// Selects arg-optimum over non-remainder blocks.
template <typename Score>
BlockId select_block(const Partition& p, Score score) {
  BlockId best = kInvalidBlock;
  double best_score = -std::numeric_limits<double>::infinity();
  for (BlockId b = 1; b < p.num_blocks(); ++b) {
    const double s = score(b);
    if (best == kInvalidBlock || s > best_score) {
      best = b;
      best_score = s;
    }
  }
  return best;
}

/// Free-space estimate F of §3.1 (bigger = more free).
double free_space(const Partition& p, const Device& d, BlockId b,
                  const Options& opt) {
  const double s_free =
      (d.s_max() - static_cast<double>(p.block_size(b))) / d.s_max();
  const double t_free = (static_cast<double>(d.t_max()) -
                         static_cast<double>(p.block_pins(b))) /
                        static_cast<double>(d.t_max());
  return opt.sigma1 * s_free + opt.sigma2 * t_free;
}

void improve_pair(MultiwayRefiner& refiner, Partition& p, const Device& d,
                  BlockId other, bool allow_violations,
                  const Options& opt) {
  if (other == kInvalidBlock || other == kRem) return;
  const MoveRegion region = make_move_region(
      p, d, kRem, /*two_block_pass=*/true, allow_violations, opt.move_region);
  const std::array<BlockId, 2> blocks{kRem, other};
  refiner.improve(blocks, region);
}

}  // namespace

PartitionResult FpartPartitioner::run(const Hypergraph& h,
                                      const Device& device) const {
  const obs::ScopedPhase phase_run("fpart.run");
  Timer timer;
  CpuTimer cpu_timer;
  const std::uint32_t m = lower_bound_devices(h, device);
  // Every iteration permanently retires at least one cell into a
  // feasible block, so num_interior() bounds the honest iteration count;
  // the M term and constant absorb remainder re-designations. (On
  // pin-critical instances the final k can exceed M by a large factor —
  // M only tracks size and pad totals — so the cap must scale with the
  // circuit, not with M.)
  const std::uint32_t cap =
      options_.max_iterations != 0
          ? options_.max_iterations
          : static_cast<std::uint32_t>(h.num_interior()) + 3 * m + 100;

  Partition p(h, 1);
  Evaluator eval(device, options_.cost, m);
  MultiwayRefiner refiner(p, eval, kRem, options_.refiner);
  Rng rng(options_.seed);
  Rng* seed_rng = options_.seed != 0 ? &rng : nullptr;

  std::uint32_t iterations = 0;
  FeasibilityClass prev_cls = FeasibilityClass::kInfeasible;
  bool have_prev_cls = false;
  while (true) {
    // Cooperative cancellation: a losing portfolio attempt unwinds here
    // with whatever partial partition it built, marked `cancelled`.
    if (cancel_requested(options_.cancel)) {
      PartitionResult r =
          summarize_partition(p, device, m, iterations,
                              timer.elapsed_seconds(),
                              cpu_timer.elapsed_seconds());
      r.cancelled = true;
      return r;
    }
    const FeasibilityClass cls = p.classify(device);
    if (obs::recorder_enabled() && (!have_prev_cls || cls != prev_cls)) {
      obs::record_event(obs::EventKind::kFeasibility, obs::Engine::kFpart,
                        static_cast<std::uint32_t>(cls),
                        p.count_feasible(device), p.num_blocks());
      prev_cls = cls;
      have_prev_cls = true;
    }
    if (audit_enabled()) audit_partition(p, "fpart.iteration");
    if (cls == FeasibilityClass::kFeasible) break;

    // Keep the remainder designation on the (unique) infeasible block of
    // a semi-feasible solution: improvement passes may have shifted the
    // violation to another block.
    if (p.block_feasible(kRem, device)) {
      for (BlockId b = 1; b < p.num_blocks(); ++b) {
        if (!p.block_feasible(b, device)) {
          p.swap_blocks(kRem, b);
          break;
        }
      }
    }

    FPART_COUNTER_INC("fpart.iterations");
    FPART_HISTOGRAM_RECORD("fpart.remainder_size", p.block_size(kRem));
    FPART_HISTOGRAM_RECORD("fpart.remainder_pins", p.block_pins(kRem));
    if (obs::timeseries_enabled()) {
      obs::sample_point(obs::SampleKind::kPass, obs::Engine::kFpart,
                        iterations + 1, p.cut_size(), p.cut_size(),
                        p.count_feasible(device), p.num_blocks(), 0, 0, 0);
    }

    if (++iterations > cap) {
      // Safety fallback: pure constructive peeling terminates because
      // every bipartition yields a non-empty feasible block.
      FPART_LOG(kWarn) << "FPART hit the iteration cap (" << cap
                       << "); falling back to constructive peeling";
      FPART_COUNTER_INC("fpart.cap_fallbacks");
      while (p.classify(device) != FeasibilityClass::kFeasible) {
        bipartition_remainder(p, eval, kRem, options_, seed_rng);
        ++iterations;
      }
      break;
    }

    obs::record_event(obs::EventKind::kIteration, obs::Engine::kNone,
                      iterations, p.num_blocks(),
                      static_cast<std::uint32_t>(p.block_pins(kRem)),
                      obs::kNoGain, p.block_size(kRem));

    const BlockId pk = [&] {
      const obs::ScopedPhase phase("fpart.bipartition");
      return bipartition_remainder(p, eval, kRem, options_, seed_rng);
    }();
    const std::uint32_t k_created = p.num_blocks() - 1;  // non-remainder
    const bool allow_violations = k_created < m;

    if (options_.verbose) {
      FPART_LOG(kInfo) << "iteration " << iterations << ": k=" << k_created
                       << " remainder size=" << p.block_size(kRem)
                       << " pins=" << p.block_pins(kRem);
    }

    // Improve(R_k, P_k).
    if (options_.schedule.last_pair) {
      const obs::ScopedPhase phase("fpart.improve.last_pair");
      improve_pair(refiner, p, device, pk, allow_violations, options_);
    }

    // Improve over all blocks (small-M problems only). The M <= N_small
    // guard assumes k stays near M; on pin-critical instances k can
    // outgrow M by a large factor, so the CURRENT block count is checked
    // too — the pass is quadratic in it.
    if (options_.schedule.all_blocks && m <= options_.n_small &&
        p.num_blocks() >= 3 &&
        p.num_blocks() <= options_.n_small + 2) {
      const obs::ScopedPhase phase("fpart.improve.all_blocks");
      std::vector<BlockId> all(p.num_blocks());
      for (BlockId b = 0; b < p.num_blocks(); ++b) all[b] = b;
      const MoveRegion region =
          make_move_region(p, device, kRem, /*two_block_pass=*/false,
                           allow_violations, options_.move_region);
      refiner.improve(all, region);
    }

    // Improve with the smallest, fewest-I/O and most-free-space blocks.
    if (options_.schedule.min_blocks) {
      const obs::ScopedPhase phase("fpart.improve.min_blocks");
      improve_pair(refiner, p, device,
                   select_block(p,
                                [&](BlockId b) {
                                  return -static_cast<double>(
                                      p.block_size(b));
                                }),
                   allow_violations, options_);
      improve_pair(refiner, p, device,
                   select_block(p,
                                [&](BlockId b) {
                                  return -static_cast<double>(
                                      p.block_pins(b));
                                }),
                   allow_violations, options_);
      improve_pair(refiner, p, device,
                   select_block(p,
                                [&](BlockId b) {
                                  return free_space(p, device, b, options_);
                                }),
                   allow_violations, options_);
    }

    // Final pairwise sweep when the lower bound is reached.
    if (options_.schedule.final_sweep && k_created == m &&
        m <= options_.n_small) {
      const obs::ScopedPhase phase("fpart.improve.final_sweep");
      for (BlockId b = 1; b < p.num_blocks(); ++b) {
        improve_pair(refiner, p, device, b, allow_violations, options_);
      }
    }
  }

  return summarize_partition(p, device, m, iterations,
                             timer.elapsed_seconds(),
                             cpu_timer.elapsed_seconds());
}

PartitionResult run_fpart_multistart(const Hypergraph& h,
                                     const Device& device,
                                     const Options& base,
                                     std::uint32_t num_starts) {
  FPART_REQUIRE(num_starts >= 1, "multistart needs at least one start");
  Timer timer;
  CpuTimer cpu_timer;
  PartitionResult best;
  std::uint64_t total_pins_best = 0;
  for (std::uint32_t start = 0; start < num_starts; ++start) {
    Options opt = base;
    // Start 0 keeps the caller's seed (canonical when 0); later starts
    // mix the start index into the seed stream.
    if (start > 0) opt.seed = base.seed ^ (0x9E3779B9ull * start + start);
    PartitionResult r = FpartPartitioner(opt).run(h, device);
    if (r.cancelled) {
      // The sweep is incomplete: surface the partial result (start 0) or
      // keep the best finished start, but taint it so a portfolio
      // reduction drops this attempt.
      if (start == 0) best = std::move(r);
      best.cancelled = true;
      break;
    }
    std::uint64_t total_pins = 0;
    for (const BlockStats& blk : r.blocks) total_pins += blk.pins;
    const bool better =
        start == 0 || r.k < best.k || (r.k == best.k && r.cut < best.cut) ||
        (r.k == best.k && r.cut == best.cut &&
         total_pins < total_pins_best);
    if (better) {
      best = std::move(r);
      total_pins_best = total_pins;
    }
    if (best.k == best.lower_bound) break;  // cannot improve on M
  }
  best.seconds = timer.elapsed_seconds();
  best.cpu_seconds = cpu_timer.elapsed_seconds();
  return best;
}

}  // namespace fpart
