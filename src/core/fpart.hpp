// FPART — the paper's multi-way FPGA partitioner (Algorithm 1).
//
// Recursive paradigm: each iteration bipartitions the remainder into a
// feasible block P_k and a new remainder R_k, then runs a schedule of
// Sanchis improvement passes:
//
//   Improve(R_k, P_k)                      — the two lately created blocks
//   Improve(P_1 .. P_k, R_k)               — all blocks, only if M <= N_small
//   Improve(P_MIN_size, R_k)               — smallest block
//   Improve(P_MIN_IO,   R_k)               — fewest-I/O block
//   Improve(P_MIN_F,    R_k)               — max-free-space block
//   Improve(P_i, R_k) for all i            — final sweep when k = M and
//                                            M <= N_small
//
// The loop ends when the whole partition is feasible; the result is the
// minimal k the search found (never below the lower bound M).
#pragma once

#include "core/options.hpp"
#include "core/result.hpp"
#include "device/device.hpp"
#include "hypergraph/hypergraph.hpp"

namespace fpart {

class FpartPartitioner {
 public:
  explicit FpartPartitioner(Options options = {}) : options_(options) {}

  const Options& options() const { return options_; }

  /// Partitions `h` into the minimum number of `device`-feasible blocks
  /// the search can find. The result is always feasible (the fix-up
  /// paths guarantee termination with every block within constraints).
  PartitionResult run(const Hypergraph& h, const Device& device) const;

 private:
  Options options_;
};

/// Multistart FPART — "number of runs", one of the classical FM
/// parameters the paper lists in §1. Start 0 is the canonical
/// deterministic run; further starts randomize the constructive seed
/// choice (Options::seed = start index). The best result wins,
/// lexicographically by (k, cut, total pins). Deterministic for a fixed
/// (circuit, device, base options, num_starts).
PartitionResult run_fpart_multistart(const Hypergraph& h,
                                     const Device& device,
                                     const Options& base = {},
                                     std::uint32_t num_starts = 4);

}  // namespace fpart
