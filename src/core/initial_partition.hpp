// Constructive initial bipartition of the remainder (paper §3.2).
//
// Two constructive methods both split the remainder block of the global
// partition in place, and the lexicographically better result is kept:
//
//  1. Greedy seeded merge (after Brasen/Hiol/Saucier [1]): two seed
//     nodes — the biggest cell, and the cell at maximal BFS distance
//     from it — grow two clusters simultaneously; at each step the
//     frontier candidate maximizing the density cost S/T of the merged
//     cluster is absorbed; growth stops when the device size constraint
//     saturates. The bigger cluster becomes the new block P_k, the other
//     one dissolves back into the remainder.
//
//  2. Ratio-cut sweep (after Wei/Cheng [15]): from each seed, cells are
//     peeled one by one into a new block in best-gain order; the prefix
//     minimizing the cut ratio C/(S(P)·S(R)) among prefixes with at
//     least one feasible side is kept; the better of the two seed sweeps
//     wins.
//
// A deterministic shrink fix-up then guarantees the new block meets the
// device constraints (a single CLB always does, so this terminates), so
// the partition leaves Bipartition() at worst semi-feasible.
#pragma once

#include "core/options.hpp"
#include "device/device.hpp"
#include "fm/repair.hpp"
#include "partition/evaluator.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace fpart {

/// Splits the remainder block `rem` of `p`: appends one new block,
/// fills it per the method above and returns its id. Postconditions:
/// the new block is non-empty and feasible for eval.device(); all other
/// non-remainder blocks are untouched.
///
/// `rng` (optional) randomizes the first seed choice — used by the
/// multistart driver; nullptr keeps the canonical deterministic seeding.
///
/// Requires the remainder to hold at least one interior node.
BlockId bipartition_remainder(Partition& p, const Evaluator& eval,
                              BlockId rem, const Options& opt,
                              Rng* rng = nullptr);

}  // namespace fpart
