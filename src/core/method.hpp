// The Method enum and its name table, split out of solve.hpp so engine
// headers (notably multilevel/multilevel.hpp, whose options carry the
// inner coarsest-level Method) can name an engine without pulling in the
// full SolveRequest/solve() facade.
#pragma once

#include <span>
#include <string_view>

namespace fpart {

/// The partitioning engines (paper: FPART §3, clustered FPART §5 /
/// [5],[7], the k-way.x greedy baseline [9],[11], FBB-MW flow [3], and
/// the multilevel V-cycle driver after Heuer/Sanders/Schlag).
enum class Method {
  kFpart,
  kClustered,
  kKwayx,
  kFbb,
  kMultilevel,
};

/// Parses a canonical method name ("fpart", "clustered", ...). Any other
/// spelling fails with a PreconditionError enumerating the valid names —
/// the single source of unknown-method errors (CI greps that no other
/// method-string dispatch exists). The error message is generated from
/// method_names(), so it cannot drift when an engine is added.
Method parse_method(std::string_view name);

/// Canonical lowercase name of `m`; inverse of parse_method().
std::string_view method_name(Method m);

/// All canonical method names, ordered to match the Method enumerators
/// (method_names()[static_cast<size_t>(m)] == method_name(m)).
std::span<const std::string_view> method_names();

}  // namespace fpart
