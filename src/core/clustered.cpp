#include "core/clustered.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "obs/phase.hpp"
#include "obs/timeseries.hpp"
#include "partition/evaluator.hpp"
#include "sanchis/refiner.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace fpart {

namespace detail {

/// Fine-grain polish at one level: strict size regions over all blocks
/// (all-blocks pass for small k, pairwise ring otherwise).
void clustered_refine_level(Partition& p, const Device& device,
                            std::uint32_t m,
                            const ClusteredOptions& options) {
  if (options.refine_passes <= 0 || p.num_blocks() < 2) return;
  Evaluator eval(device, options.fpart.cost, m);
  RefinerConfig refiner_config = options.fpart.refiner;
  refiner_config.max_passes = options.refine_passes;
  MultiwayRefiner refiner(p, eval, /*remainder=*/0, refiner_config);
  MoveRegion strict =
      make_move_region(p, device, /*remainder=*/0,
                       /*two_block_pass=*/false,
                       /*allow_size_violations=*/false,
                       options.fpart.move_region);
  // No remainder in play: clamp block 0 like the others.
  strict.lo[0] = 0.0;
  strict.hi[0] = device.s_max();

  if (p.num_blocks() <= 16) {
    std::vector<BlockId> all(p.num_blocks());
    for (BlockId b = 0; b < p.num_blocks(); ++b) all[b] = b;
    refiner.improve(all, strict);
  } else {
    // Closed pairwise ring: the wrap-around pair (k-1, 0) gets refined
    // like every other adjacent pair, so cells stuck in the last block
    // can still migrate toward block 0.
    const BlockId k = p.num_blocks();
    for (BlockId b = 0; b < k; ++b) {
      const std::array<BlockId, 2> pair{b, static_cast<BlockId>((b + 1) % k)};
      refiner.improve(pair, strict);
    }
  }
}

}  // namespace detail

PartitionResult ClusteredFpartPartitioner::run(const Hypergraph& h,
                                               const Device& device) const {
  obs::ScopedPhase phase("clustered.run");
  FPART_REQUIRE(options_.levels >= 1, "clustered FPART needs >= 1 level");
  Timer timer;
  CpuTimer cpu_timer;
  const std::uint32_t m = lower_bound_devices(h, device);

  CoarsenConfig coarsen_config = options_.coarsen;
  if (coarsen_config.max_cluster_size == 0) {
    coarsen_config.max_cluster_size = std::max(
        2u, static_cast<std::uint32_t>(device.s_max() / 16.0));
  }

  // Descend: coarsen until the requested depth or a matching stall.
  std::vector<Coarsening> ladder;
  const Hypergraph* current = &h;
  for (std::uint32_t level = 0; level < options_.levels; ++level) {
    obs::ScopedPhase coarsen_phase("clustered.coarsen");
    Coarsening c = coarsen(*current, coarsen_config);
    if (c.coarse.num_interior() >= current->num_interior()) break;  // stall
    ladder.push_back(std::move(c));
    current = &ladder.back().coarse;
    if (current->num_interior() < 32) break;  // small enough
  }

  // Phase 1: FPART on the coarsest circuit.
  const PartitionResult coarse_result =
      FpartPartitioner(options_.fpart).run(*current, device);
  FPART_ASSERT_MSG(coarse_result.feasible,
                   "coarse FPART result must be feasible");
  std::uint32_t iterations = coarse_result.iterations;

  // Phase 2/3: project level by level, refining after each expansion
  // (feasibility transfers exactly under projection — coarsen.hpp).
  std::vector<BlockId> assignment = coarse_result.assignment;
  std::uint32_t level_idx = 0;
  for (auto it = ladder.rbegin(); it != ladder.rend(); ++it) {
    ++level_idx;
    assignment = it->project(assignment);
    // The projected assignment refers to this coarsening's fine side:
    // the original circuit for the first (outermost) coarsening, else
    // the next-outer coarse graph.
    const Hypergraph& target =
        (it + 1 == ladder.rend()) ? h : (it + 1)->coarse;
    Partition p(target, assignment, coarse_result.k);
    FPART_ASSERT(p.classify(device) == FeasibilityClass::kFeasible);
    {
      obs::ScopedPhase refine_phase("clustered.refine");
      detail::clustered_refine_level(p, device, m, options_);
    }
    ++iterations;
    if (obs::timeseries_enabled()) {
      obs::sample_point(obs::SampleKind::kPass, obs::Engine::kClustered,
                        level_idx, p.cut_size(), p.cut_size(),
                        p.count_feasible(device), p.num_blocks(), 0, 0, 0);
    }
    assignment = p.snapshot().assignment;
  }

  // Materialize the final fine partition for the result record.
  Partition p(h, assignment, coarse_result.k);
  FPART_ASSERT(p.classify(device) == FeasibilityClass::kFeasible);
  return summarize_partition(p, device, m, iterations,
                             timer.elapsed_seconds(),
                             cpu_timer.elapsed_seconds());
}

}  // namespace fpart
