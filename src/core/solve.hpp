// Unified entry point over the five partitioning engines.
//
// Every engine in the repo answers the same question — "partition this
// hypergraph for this device" — but historically exposed its own config
// struct and .run() method, and the method-name dispatch was duplicated
// at every call site. solve() is the single dispatcher: callers name a
// Method (or parse one from a string with parse_method(), the ONLY place
// an unknown method name turns into an error) and get a PartitionResult
// with identical semantics to calling the engine directly.
//
// Engine-specific knobs travel in one std::variant-backed EngineConfig
// instead of one flat member per engine: a request holds at most ONE
// engine config, and holding a config whose type does not match `method`
// is an OptionError at dispatch — it cannot be silently ignored the way
// a stray flat member used to be.
#pragma once

#include <cstdint>
#include <variant>

#include "baselines/kwayx.hpp"
#include "core/clustered.hpp"
#include "core/method.hpp"
#include "core/options.hpp"
#include "core/result.hpp"
#include "device/device.hpp"
#include "flow/fbb.hpp"
#include "hypergraph/hypergraph.hpp"
#include "multilevel/multilevel.hpp"

namespace fpart {

/// At most one engine-specific config per request. std::monostate means
/// "engine defaults". Alternatives are ordered like the Method
/// enumerators they serve (kFpart has no config struct — its knobs ARE
/// Options).
using EngineConfig = std::variant<std::monostate, ClusteredOptions,
                                  KwayxConfig, FbbConfig, MultilevelOptions>;

/// One request against solve().
struct SolveRequest {
  Method method = Method::kFpart;

  /// Base engine options. `options.seed` drives FPART's RNG (the other
  /// engines are deterministic and ignore it); `options.starts`
  /// multistarts FPART (directly, or at the multilevel coarsest level);
  /// `options.cancel` is honored by every engine.
  Options options;

  /// Engine-specific knobs for `method`. Shared state is injected at
  /// dispatch time — clustered.fpart / multilevel.fpart are overwritten
  /// with `options`, kwayx.cancel / fbb.cancel with options.cancel — so
  /// the per-engine structs only carry what is genuinely
  /// engine-specific. Holding a config whose type does not match
  /// `method` (e.g. a KwayxConfig with method == kFbb, or any config
  /// with method == kFpart) is an OptionError at dispatch.
  EngineConfig engine;

  /// Sets the engine config: req.configure(MultilevelOptions{...}).
  /// Returns *this for chaining.
  template <class Config>
  SolveRequest& configure(Config config) {
    engine = std::move(config);
    return *this;
  }

  /// Typed accessor: the held config, or nullptr when `engine` holds a
  /// different alternative (or monostate).
  template <class Config>
  const Config* engine_config() const {
    return std::get_if<Config>(&engine);
  }
  template <class Config>
  Config* engine_config() {
    return std::get_if<Config>(&engine);
  }
};

/// Runs req.method on (h, device). Byte-identical (results, event logs,
/// digests) to constructing the engine directly with the same options.
PartitionResult solve(const Hypergraph& h, const Device& device,
                      const SolveRequest& req);

}  // namespace fpart
