// Unified entry point over the four partitioning engines.
//
// Every engine in the repo answers the same question — "partition this
// hypergraph for this device" — but historically exposed its own config
// struct and .run() method, and the method-name dispatch was duplicated
// at every call site. solve() is the single dispatcher: callers name a
// Method (or parse one from a string with parse_method(), the ONLY place
// an unknown method name turns into an error) and get a PartitionResult
// with identical semantics to calling the engine directly.
#pragma once

#include <cstdint>
#include <string_view>

#include "baselines/kwayx.hpp"
#include "core/clustered.hpp"
#include "core/options.hpp"
#include "core/result.hpp"
#include "device/device.hpp"
#include "flow/fbb.hpp"
#include "hypergraph/hypergraph.hpp"

namespace fpart {

/// The partitioning engines (paper: FPART §3, clustered FPART §5 /
/// [5],[7], the k-way.x greedy baseline [9],[11], FBB-MW flow [3]).
enum class Method {
  kFpart,
  kClustered,
  kKwayx,
  kFbb,
};

/// Parses a canonical method name: "fpart" | "clustered" | "kwayx" |
/// "fbb". Any other spelling fails with a PreconditionError listing the
/// valid names — the single source of unknown-method errors (CI greps
/// that no other method-string dispatch exists).
Method parse_method(std::string_view name);

/// Canonical lowercase name of `m`; inverse of parse_method().
std::string_view method_name(Method m);

/// One request against solve().
struct SolveRequest {
  Method method = Method::kFpart;

  /// Base engine options. `options.seed` drives FPART's RNG (the other
  /// engines are deterministic and ignore it); `options.cancel` is
  /// honored by every engine.
  Options options;

  /// FPART multi-start count (kFpart only, ignored elsewhere): when > 1,
  /// runs seeded starts with the canonical early-exit-at-lower-bound
  /// semantics of run_fpart_multistart().
  std::uint32_t starts = 1;

  /// Engine-specific knobs. Shared state is injected at dispatch time:
  /// clustered.fpart is overwritten with `options`, and kwayx.cancel /
  /// fbb.cancel with options.cancel — so the per-engine structs only
  /// carry what is genuinely engine-specific.
  ClusteredOptions clustered;
  KwayxConfig kwayx;
  FbbConfig fbb;
};

/// Runs req.method on (h, device). Byte-identical (results, event logs,
/// digests) to constructing the engine directly with the same options.
PartitionResult solve(const Hypergraph& h, const Device& device,
                      const SolveRequest& req);

}  // namespace fpart
