// All tunables of the FPART algorithm, with the paper's published
// defaults (§4: "All the results of the FPART algorithm were obtained
// with the following fixed values of the parameters").
#pragma once

#include <cstdint>

#include "partition/cost.hpp"
#include "sanchis/move_region.hpp"
#include "sanchis/refiner.hpp"
#include "util/cancel.hpp"

namespace fpart {

struct Options {
  /// λ^S = 0.4, λ^T = 0.6, λ^R = 0.1.
  CostParams cost;

  /// ε²_min = 0.95, ε*_min = 0.3, ε*_max = ε²_max = 1.05.
  MoveRegionParams move_region;

  /// D_stack = 4 plus engine knobs.
  RefinerConfig refiner;

  /// Free-space estimate coefficients σ1, σ2 for selecting P_MIN_F
  /// (§3.1): F = σ1·(S_MAX−S_i)/S_MAX + σ2·(T_MAX−|Y_i|)/T_MAX.
  double sigma1 = 0.5;
  double sigma2 = 0.5;

  /// N_small: problems with lower bound M ≤ N_small get the all-blocks
  /// improvement pass and the final pairwise sweep at k = M.
  std::uint32_t n_small = 15;

  /// Seed for the randomized constructive-seed variant. 0 (default)
  /// keeps the fully deterministic canonical seeding (biggest cell +
  /// BFS-farthest); any other value randomizes the first seed choice —
  /// the knob behind multistart ("number of runs", one of the classical
  /// FM parameters the paper lists in §1).
  std::uint64_t seed = 0;

  /// Multi-start count — "number of runs", one of the classical FM
  /// parameters the paper lists in §1. When > 1, solve() runs seeded
  /// starts with the canonical early-exit-at-lower-bound semantics of
  /// run_fpart_multistart(). An FPART tunable: the other flat engines
  /// ignore it; the multilevel driver forwards it to its coarsest-level
  /// inner solve.
  std::uint32_t starts = 1;

  /// Safety cap on Algorithm-1 iterations (0 = auto: 3·M + 100). The
  /// algorithm terminates well before this in practice; the cap guards
  /// against degenerate re-designation cycles.
  std::uint32_t max_iterations = 0;

  /// Which improvement passes of the §3.1 schedule to run. All on by
  /// default; the schedule ablation bench switches parts off.
  struct Schedule {
    bool last_pair = true;   // Improve(R_k, P_k)
    bool all_blocks = true;  // Improve(P_1..P_k, R_k) when M <= N_small
    bool min_blocks = true;  // Improve(P_MIN_size / P_MIN_IO / P_MIN_F, R_k)
    bool final_sweep = true; // Improve(P_i, R_k) for all i when k = M
  };
  Schedule schedule;

  /// Emit per-iteration INFO logs.
  bool verbose = false;

  /// Cooperative cancellation (runtime/portfolio.hpp): when non-null the
  /// engines poll the token at iteration granularity and return early
  /// with PartitionResult::cancelled set. Not a tunable — excluded from
  /// options_json so recorded logs stay comparable across runs.
  const CancelToken* cancel = nullptr;
};

}  // namespace fpart
