// Heterogeneous (cost-minimizing) partitioning flow, after the problem
// of Kuznar et al. [10],[11]: given a LIBRARY of priced devices, find a
// partition minimizing total device cost.
//
// Strategy (peel-then-price with downsizing):
//   1. run FPART against the library's largest device — it minimizes the
//      block count, which dominates cost;
//   2. price every block with the cheapest fitting device;
//   3. downsizing pass: while a block is priced into an expensive
//      device, try to split it in two (via the constructive bipartition)
//      if the two halves price cheaper than the whole — capturing the
//      cases where two small devices undercut one large one.
#pragma once

#include "core/fpart.hpp"
#include "core/options.hpp"
#include "device/device_set.hpp"

namespace fpart {

struct HeteroResult {
  PartitionResult partition;       // against the largest library device
  DeviceAssignment devices;        // per-block device choice
  double total_cost = 0.0;
  std::uint32_t splits = 0;        // downsizing splits applied
};

struct HeteroOptions {
  Options fpart;
  /// Enable the step-3 downsizing pass.
  bool downsize = true;
};

/// Partitions `h` over the device library, minimizing total cost.
/// The result's blocks are all feasible for their assigned devices.
HeteroResult partition_heterogeneous(const Hypergraph& h,
                                     const DeviceSet& set,
                                     const HeteroOptions& options = {});

}  // namespace fpart
