// Clustered (two-phase) FPART: coarsen → partition → project → refine.
//
// The clustering extension the FM literature ([5],[7]) recommends: one
// level of heavy-connectivity matching shrinks the circuit ~2×, FPART
// runs on the coarse circuit (same device — feasibility transfers
// exactly under projection, see cluster/coarsen.hpp), the assignment is
// projected back and a final fine-grain refinement polishes block
// boundaries at single-cell granularity.
#pragma once

#include "cluster/coarsen.hpp"
#include "core/fpart.hpp"

namespace fpart {

struct ClusteredOptions {
  Options fpart;
  CoarsenConfig coarsen;  // max_cluster_size 0 = auto: max(2, S_MAX/16)
  /// Coarsening levels (multilevel V-cycle: coarsen `levels` times,
  /// partition the coarsest circuit, then project + refine back level by
  /// level). Matching stalls automatically stop the descent early.
  std::uint32_t levels = 1;
  /// Refinement passes at each uncoarsening level (0 disables).
  int refine_passes = 4;
};

class ClusteredFpartPartitioner {
 public:
  explicit ClusteredFpartPartitioner(ClusteredOptions options = {})
      : options_(std::move(options)) {}

  const ClusteredOptions& options() const { return options_; }

  /// Same contract as FpartPartitioner::run — the result is feasible and
  /// refers to the FINE circuit's node ids.
  PartitionResult run(const Hypergraph& h, const Device& device) const;

 private:
  ClusteredOptions options_;
};

namespace detail {

/// The per-level polish pass of the clustered partitioner: strict size
/// regions over all blocks (one all-blocks refinement for k <= 16, a
/// closed pairwise ring (0,1)..(k-2,k-1),(k-1,0) otherwise). Exposed so
/// tests can drive the ring schedule on hand-built partitions; `m` is
/// the device lower bound used for cost evaluation.
void clustered_refine_level(Partition& p, const Device& device,
                            std::uint32_t m, const ClusteredOptions& options);

}  // namespace detail

}  // namespace fpart
