#include "core/initial_partition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "fm/gain_bucket.hpp"
#include "fm/gains.hpp"
#include "fm/repair.hpp"
#include "hypergraph/traversal.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace fpart {

namespace {

/// Seed pair for both constructive methods: the biggest cell of the
/// remainder (ties: higher degree, then lower id) and the cell at
/// maximal BFS distance from it within the remainder.
std::pair<NodeId, NodeId> pick_seeds(const Partition& p, BlockId rem,
                                     Rng* rng) {
  const Hypergraph& h = p.graph();
  NodeId s1 = kInvalidNode;
  if (rng != nullptr) {
    // Randomized variant (multistart): uniform over the remainder.
    std::vector<NodeId> members;
    for (NodeId v = 0; v < h.num_nodes(); ++v) {
      if (!h.is_terminal(v) && p.block_of(v) == rem) members.push_back(v);
    }
    FPART_ASSERT_MSG(!members.empty(), "remainder has no interior nodes");
    s1 = rng->pick(members);
  } else {
    for (NodeId v = 0; v < h.num_nodes(); ++v) {
      if (h.is_terminal(v) || p.block_of(v) != rem) continue;
      if (s1 == kInvalidNode || h.node_size(v) > h.node_size(s1) ||
          (h.node_size(v) == h.node_size(s1) &&
           h.degree(v) > h.degree(s1))) {
        s1 = v;
      }
    }
    FPART_ASSERT_MSG(s1 != kInvalidNode, "remainder has no interior nodes");
  }
  const NodeId s2 = farthest_interior_node(h, s1, [&](NodeId v) {
    return !h.is_terminal(v) && p.block_of(v) == rem;
  });
  return {s1, s2};
}

/// Grows one cluster: picks the frontier candidate maximizing the merged
/// density S/T, subject to the size constraint. Returns false when the
/// block is saturated.
class ClusterGrower {
 public:
  ClusterGrower(Partition& p, const Device& d, BlockId rem, BlockId block)
      : p_(p), d_(d), rem_(rem), block_(block),
        in_frontier_(p.graph().num_nodes(), 0) {}

  void seed(NodeId v) {
    p_.move(v, block_);
    absorb_frontier(v);
  }

  /// One growth step; false = saturated (no candidate fits the size).
  bool grow_once() {
    const Hypergraph& h = p_.graph();
    // Compact stale entries lazily and find the best candidate.
    NodeId best = kInvalidNode;
    double best_cost = -1.0;
    std::size_t w = 0;
    for (std::size_t r = 0; r < frontier_.size(); ++r) {
      const NodeId v = frontier_[r];
      if (p_.block_of(v) != rem_) {
        in_frontier_[v] = 0;  // taken by some block meanwhile
        continue;
      }
      frontier_[w++] = v;
      if (!d_.size_ok(p_.block_size(block_) + h.node_size(v))) continue;
      const double s = static_cast<double>(p_.block_size(block_)) +
                       static_cast<double>(h.node_size(v));
      const double t = std::max(
          1.0, static_cast<double>(p_.block_pins(block_)) +
                   static_cast<double>(pin_delta_if_added(p_, v, block_)));
      const double cost = s / t;
      if (cost > best_cost) {
        best_cost = cost;
        best = v;
      }
    }
    frontier_.resize(w);

    if (best == kInvalidNode) {
      // Disconnected remainder: reseed from the biggest fitting cell not
      // adjacent to the cluster, if the frontier is exhausted.
      if (!frontier_.empty()) return false;
      for (NodeId v = 0; v < h.num_nodes(); ++v) {
        if (h.is_terminal(v) || p_.block_of(v) != rem_) continue;
        if (!d_.size_ok(p_.block_size(block_) + h.node_size(v))) continue;
        if (best == kInvalidNode || h.node_size(v) > h.node_size(best)) {
          best = v;
        }
      }
      if (best == kInvalidNode) return false;
    }

    in_frontier_[best] = 0;
    p_.move(best, block_);
    absorb_frontier(best);
    return true;
  }

 private:
  void absorb_frontier(NodeId v) {
    const Hypergraph& h = p_.graph();
    for (NetId e : h.nets(v)) {
      for (NodeId w : h.interior_pins(e)) {
        if (in_frontier_[w] || p_.block_of(w) != rem_) continue;
        in_frontier_[w] = 1;
        frontier_.push_back(w);
      }
    }
  }

  Partition& p_;
  const Device& d_;
  BlockId rem_;
  BlockId block_;
  std::vector<NodeId> frontier_;
  std::vector<std::uint8_t> in_frontier_;
};

/// Greedy seeded merge pass. Leaves the partition split with the new
/// block appended (id = old num_blocks) and returns its evaluation.
SolutionEval greedy_merge_pass(Partition& p, const Evaluator& eval,
                               BlockId rem, NodeId s1, NodeId s2) {
  const Device& d = eval.device();
  const BlockId a = p.add_block();
  const BlockId b = p.add_block();

  ClusterGrower grow_a(p, d, rem, a);
  ClusterGrower grow_b(p, d, rem, b);
  grow_a.seed(s1);
  bool sat_b = s2 == kInvalidNode;
  if (!sat_b) grow_b.seed(s2);

  // Alternate growth: one node per block per round (paper §3.2 — growing
  // both blocks together alleviates the greedy tendency of [1]).
  bool sat_a = false;
  while (!sat_a || !sat_b) {
    if (!sat_a) sat_a = !grow_a.grow_once();
    if (!sat_b) sat_b = !grow_b.grow_once();
  }

  // Bigger cluster becomes P_k; the other dissolves into the remainder.
  BlockId winner = a;
  BlockId loser = b;
  if (p.block_size(b) > p.block_size(a)) {
    p.swap_blocks(a, b);  // winner keeps id `a`
  }
  for (NodeId v : p.block_nodes(loser)) p.move(v, rem);
  p.remove_last_block();  // `b` (== loser slot) is now empty and last

  shrink_to_feasible(p, d, winner, rem);
  return eval.evaluate(p, rem);
}

struct RatioPassResult {
  double ratio = std::numeric_limits<double>::infinity();
  bool any_feasible_prefix = false;
};

/// Ratio-cut sweep from one seed. Leaves the partition split with the
/// new block appended and returns the achieved ratio.
RatioPassResult ratio_cut_pass(Partition& p, const Evaluator& eval,
                               BlockId rem, NodeId seed) {
  const Hypergraph& h = p.graph();
  const Device& d = eval.device();
  const BlockId blk = p.add_block();

  // Cross-net count between blk and rem, maintained incrementally.
  auto net_crosses = [&](NetId e) {
    return p.net_pins_in(e, blk) > 0 && p.net_pins_in(e, rem) > 0;
  };
  std::int64_t cross = 0;

  auto move_tracked = [&](NodeId v, BlockId to) {
    for (NetId e : h.nets(v)) cross -= net_crosses(e) ? 1 : 0;
    p.move(v, to);
    for (NetId e : h.nets(v)) cross += net_crosses(e) ? 1 : 0;
  };

  move_tracked(seed, blk);

  GainBucket bucket(h.num_nodes(), static_cast<int>(h.max_node_degree()));
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (h.is_terminal(v) || p.block_of(v) != rem) continue;
    bucket.insert(v, move_gain(p, v, blk));
  }

  RatioPassResult out;
  std::vector<NodeId> log;
  std::size_t best_len = 0;

  auto consider = [&](std::size_t len) {
    const std::uint64_t s_blk = p.block_size(blk);
    const std::uint64_t s_rem = p.block_size(rem);
    if (s_blk == 0 || s_rem == 0) return;
    const bool one_side_ok =
        p.block_feasible(blk, d) || p.block_feasible(rem, d);
    if (!one_side_ok) return;
    const double ratio = static_cast<double>(cross) /
                         (static_cast<double>(s_blk) *
                          static_cast<double>(s_rem));
    if (!out.any_feasible_prefix || ratio < out.ratio) {
      out.any_feasible_prefix = true;
      out.ratio = ratio;
      best_len = len;
    }
  };
  consider(0);

  while (p.block_node_count(rem) > 1 && !bucket.empty()) {
    const auto id =
        bucket.find_first([](std::uint32_t, int) { return true; }, 1);
    if (!id) break;
    const NodeId v = static_cast<NodeId>(*id);
    bucket.remove(v);
    move_tracked(v, blk);
    log.push_back(v);
    for (NetId e : h.nets(v)) {
      for (NodeId w : h.interior_pins(e)) {
        if (p.block_of(w) == rem && bucket.contains(w)) {
          bucket.update(w, move_gain(p, w, blk));
        }
      }
    }
    consider(log.size());
  }

  // Roll back to the best prefix.
  for (std::size_t i = log.size(); i > best_len; --i) {
    move_tracked(log[i - 1], rem);
  }

  // Make sure the appended block is the feasible side.
  if (!p.block_feasible(blk, d)) {
    if (p.block_feasible(rem, d) && p.block_node_count(rem) > 0) {
      p.swap_blocks(blk, rem);
    } else {
      shrink_to_feasible(p, d, blk, rem);
    }
  }
  return out;
}

}  // namespace

BlockId bipartition_remainder(Partition& p, const Evaluator& eval,
                              BlockId rem, const Options& opt, Rng* rng) {
  (void)opt;
  FPART_REQUIRE(rem < p.num_blocks(), "remainder out of range");
  FPART_REQUIRE(p.block_node_count(rem) >= 1,
                "remainder must hold at least one interior node");
  const BlockId new_block = p.num_blocks();

  // Degenerate remainder: move everything into the new block.
  if (p.block_node_count(rem) == 1) {
    const BlockId b = p.add_block();
    for (NodeId v : p.block_nodes(rem)) p.move(v, b);
    shrink_to_feasible(p, eval.device(), b, rem);
    return b;
  }

  const auto pre = p.snapshot();
  const auto [s1, s2] = pick_seeds(p, rem, rng);

  // Method 1: greedy seeded merge.
  const SolutionEval eval_greedy = greedy_merge_pass(p, eval, rem, s1, s2);
  auto snap_greedy = p.snapshot();

  // Method 2: ratio-cut sweep from each seed, best ratio wins.
  p.restore(pre);
  const RatioPassResult r1 = ratio_cut_pass(p, eval, rem, s1);
  auto snap_ratio = p.snapshot();
  double best_ratio = r1.ratio;
  bool have_ratio = r1.any_feasible_prefix;
  if (s2 != kInvalidNode && s2 != s1) {
    p.restore(pre);
    const RatioPassResult r2 = ratio_cut_pass(p, eval, rem, s2);
    if (!have_ratio || (r2.any_feasible_prefix && r2.ratio < best_ratio)) {
      snap_ratio = p.snapshot();
      best_ratio = r2.ratio;
      have_ratio = have_ratio || r2.any_feasible_prefix;
    }
  }
  p.restore(snap_ratio);
  const SolutionEval eval_ratio = eval.evaluate(p, rem);

  // Keep the better of the two constructive methods (§3.2).
  if (eval_greedy.better_than(eval_ratio)) {
    p.restore(snap_greedy);
  }

  FPART_ASSERT(p.num_blocks() == new_block + 1);
  FPART_ASSERT_MSG(p.block_node_count(new_block) > 0,
                   "bipartition produced an empty block");
  FPART_ASSERT_MSG(p.block_feasible(new_block, eval.device()),
                   "bipartition postcondition: new block feasible");
  return new_block;
}

}  // namespace fpart
