// Machine-readable run reports: the stable JSON schema every perf PR is
// judged against.
//
// Two document kinds share the same record shape:
//   * fpart-run-report/1 — one partitioning run (fpart_cli --stats-json):
//     meta + result + the full obs registry (counters, histograms) +
//     the phase tree.
//   * fpart-bench/1 — one bench binary invocation (BENCH_*.json): a
//     `records` array of per-run results plus the aggregate registry.
//
// Schema notes: the per-node `assignment` vector is intentionally NOT
// serialized (it is O(circuit) and belongs in --parts files); adding
// keys is allowed, removing or re-typing existing keys is a breaking
// change guarded by tests/obs_schema_test.cpp.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "core/options.hpp"
#include "core/result.hpp"
#include "device/device.hpp"
#include "hypergraph/hypergraph.hpp"
#include "obs/recorder.hpp"

namespace fpart {

inline constexpr const char* kRunReportSchema = "fpart-run-report/1";
inline constexpr const char* kBenchReportSchema = "fpart-bench/1";

/// Identity of one measured run.
struct RunMeta {
  std::string circuit;  // circuit name or input path
  std::string device;
  std::string method;   // fpart | clustered | kwayx | fbb | ...
  std::uint64_t seed = 0;
  /// Path of the flight-recorder event log when one was written
  /// (fpart_cli --events); emitted as meta.events_path when non-empty.
  std::string events_path;
};

struct RunRecord {
  RunMeta meta;
  PartitionResult result;
};

/// Serializes one run as a fpart-run-report/1 document, embedding the
/// current obs registry and phase tree.
std::string run_report_json(const RunMeta& meta, const PartitionResult& r);

/// Writes run_report_json() to `path`. Throws PreconditionError on IO
/// error.
void write_run_report_file(const std::string& path, const RunMeta& meta,
                           const PartitionResult& r);

/// Serializes a bench invocation as a fpart-bench/1 document.
/// `bench_name` identifies the binary/table ("table2_xc3020", ...).
std::string bench_report_json(std::string_view bench_name,
                              std::span<const RunRecord> records);

/// Writes bench_report_json() to `path`.
void write_bench_report_file(const std::string& path,
                             std::string_view bench_name,
                             std::span<const RunRecord> records);

/// Serializes the full Options set as a JSON object (embedded verbatim in
/// the fpart-events/1 header so a log pins down every tunable of its run).
std::string options_json(const Options& opt);

/// Fills a flight-recorder header from the run's inputs: method name, RNG
/// seed + options, device limits, and the hypergraph's shape + structural
/// digest. Pass the result to obs::Recorder::start().
obs::RunHeader make_event_log_header(const Hypergraph& h, const Device& d,
                                     const Options& opt,
                                     std::string_view method);

}  // namespace fpart
