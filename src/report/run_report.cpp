#include "report/run_report.hpp"

#include <fstream>

#include "obs/json.hpp"
#include "obs/phase.hpp"
#include "obs/profile.hpp"
#include "obs/provenance.hpp"
#include "obs/stats.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace fpart {

namespace {

using obs::JsonWriter;

void write_meta(JsonWriter& w, const RunMeta& meta) {
  w.begin_object();
  w.key("circuit");
  w.value(meta.circuit);
  w.key("device");
  w.value(meta.device);
  w.key("method");
  w.value(meta.method);
  w.key("seed");
  w.value(meta.seed);
  if (!meta.events_path.empty()) {
    w.key("events_path");
    w.value(meta.events_path);
  }
  // Telemetry loss accounting: nonzero means the trace ring / timeseries
  // ring wrapped and this report's phases/series under-count reality.
  w.key("trace_dropped");
  w.value(obs::trace_dropped());
  w.key("timeseries_dropped");
  w.value(obs::TimeSeries::instance().dropped());
  w.key("provenance");
  obs::write_provenance(w);
  w.end_object();
}

void write_result(JsonWriter& w, const PartitionResult& r) {
  w.begin_object();
  w.key("feasible");
  w.value(r.feasible);
  w.key("k");
  w.value(r.k);
  w.key("lower_bound");
  w.value(r.lower_bound);
  w.key("cut");
  w.value(r.cut);
  w.key("km1");
  w.value(r.km1);
  w.key("iterations");
  w.value(r.iterations);
  w.key("seconds");
  w.value(r.seconds);
  w.key("cpu_seconds");
  w.value(r.cpu_seconds);
  w.key("cancelled");
  w.value(r.cancelled);
  w.key("blocks");
  w.begin_array();
  for (const BlockStats& b : r.blocks) {
    w.begin_object();
    w.key("size");
    w.value(b.size);
    w.key("pins");
    w.value(b.pins);
    w.key("ext");
    w.value(b.ext);
    w.key("nodes");
    w.value(b.nodes);
    w.key("feasible");
    w.value(b.feasible);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_registry(JsonWriter& w) {
  const auto& registry = obs::StatsRegistry::instance();
  w.key("counters");
  w.begin_object();
  for (const auto& c : registry.counters()) {
    w.key(c.name);
    w.value(c.value);
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& h : registry.histograms()) {
    w.key(h.name);
    w.begin_object();
    w.key("count");
    w.value(h.count);
    w.key("sum");
    w.value(h.sum);
    w.key("min");
    w.value(h.min);
    w.key("max");
    w.value(h.max);
    w.key("mean");
    w.value(h.count == 0
                ? 0.0
                : static_cast<double>(h.sum) / static_cast<double>(h.count));
    w.key("p50");
    w.value(obs::histogram_quantile(h, 0.50));
    w.key("p90");
    w.value(obs::histogram_quantile(h, 0.90));
    w.key("p99");
    w.value(obs::histogram_quantile(h, 0.99));
    w.key("buckets");
    w.begin_array();
    for (const std::uint64_t b : h.buckets) w.value(b);
    w.end_array();
    w.end_object();
  }
  w.end_object();
}

void write_phase(JsonWriter& w, const obs::PhaseNode& node) {
  w.begin_object();
  w.key("name");
  w.value(node.name);
  w.key("wall_seconds");
  w.value(node.wall_seconds);
  w.key("cpu_seconds");
  w.value(node.cpu_seconds);
  w.key("count");
  w.value(node.count);
  if (obs::profile_enabled()) {
    w.key("profile");
    w.begin_object();
    w.key("cycles");
    w.value(node.profile.cycles);
    w.key("instructions");
    w.value(node.profile.instructions);
    w.key("cache_references");
    w.value(node.profile.cache_references);
    w.key("cache_misses");
    w.value(node.profile.cache_misses);
    w.key("branch_misses");
    w.value(node.profile.branch_misses);
    w.key("alloc_count");
    w.value(node.profile.alloc_count);
    w.key("alloc_bytes");
    w.value(node.profile.alloc_bytes);
    w.end_object();
  }
  w.key("children");
  w.begin_array();
  for (const auto& c : node.children) write_phase(w, *c);
  w.end_array();
  w.end_object();
}

void write_phases(JsonWriter& w) {
  const auto root = obs::PhaseForest::instance().snapshot();
  w.key("phases");
  w.begin_array();
  for (const auto& top : root->children) write_phase(w, *top);
  w.end_array();
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream os(path);
  FPART_REQUIRE(os.good(), "cannot write report file " + path);
  os << body;
  FPART_REQUIRE(os.good(), "write failed for report file " + path);
}

}  // namespace

std::string run_report_json(const RunMeta& meta, const PartitionResult& r) {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kRunReportSchema);
  w.key("meta");
  write_meta(w, meta);
  w.key("result");
  write_result(w, r);
  write_registry(w);
  write_phases(w);
  // Hardware/heap telemetry summary; absence means --profile was off.
  if (obs::profile_enabled()) {
    w.key("profile");
    obs::write_profile_section(w);
  }
  // Convergence telemetry rides along when the calling thread's sampler
  // collected anything (absence means "sampling was off").
  const obs::TimeSeries& series = obs::TimeSeries::instance();
  if (series.size() > 0) {
    w.key("timeseries");
    w.raw_value(obs::timeseries_json(series.doc()));
  }
  w.end_object();
  return w.take();
}

void write_run_report_file(const std::string& path, const RunMeta& meta,
                           const PartitionResult& r) {
  write_file(path, run_report_json(meta, r));
}

std::string bench_report_json(std::string_view bench_name,
                              std::span<const RunRecord> records) {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kBenchReportSchema);
  w.key("bench");
  w.value(bench_name);
  w.key("records");
  w.begin_array();
  for (const RunRecord& rec : records) {
    w.begin_object();
    w.key("meta");
    write_meta(w, rec.meta);
    w.key("result");
    write_result(w, rec.result);
    w.end_object();
  }
  w.end_array();
  write_registry(w);
  write_phases(w);
  if (obs::profile_enabled()) {
    w.key("profile");
    obs::write_profile_section(w);
  }
  w.key("provenance");
  obs::write_provenance(w);
  w.end_object();
  return w.take();
}

void write_bench_report_file(const std::string& path,
                             std::string_view bench_name,
                             std::span<const RunRecord> records) {
  write_file(path, bench_report_json(bench_name, records));
}

std::string options_json(const Options& opt) {
  JsonWriter w;
  w.begin_object();
  w.key("cost");
  w.begin_object();
  w.key("lambda_s");
  w.value(opt.cost.lambda_s);
  w.key("lambda_t");
  w.value(opt.cost.lambda_t);
  w.key("lambda_r");
  w.value(opt.cost.lambda_r);
  w.key("lambda_e");
  w.value(opt.cost.lambda_e);
  w.end_object();
  w.key("move_region");
  w.begin_object();
  w.key("eps_min_two_block");
  w.value(opt.move_region.eps_min_two_block);
  w.key("eps_min_multi");
  w.value(opt.move_region.eps_min_multi);
  w.key("eps_max");
  w.value(opt.move_region.eps_max);
  w.end_object();
  w.key("refiner");
  w.begin_object();
  w.key("max_passes");
  w.value(static_cast<std::int64_t>(opt.refiner.max_passes));
  w.key("stack_depth");
  w.value(static_cast<std::uint64_t>(opt.refiner.stack_depth));
  w.key("legality_scan_limit");
  w.value(static_cast<std::uint64_t>(opt.refiner.legality_scan_limit));
  w.key("tie_scan_limit");
  w.value(static_cast<std::uint64_t>(opt.refiner.tie_scan_limit));
  w.key("prefer_moves_from_remainder");
  w.value(opt.refiner.prefer_moves_from_remainder);
  w.key("use_level2_gains");
  w.value(opt.refiner.use_level2_gains);
  w.key("max_moves_per_pass");
  w.value(static_cast<std::uint64_t>(opt.refiner.max_moves_per_pass));
  w.key("gain_mode");
  w.value(opt.refiner.gain_mode == GainMode::kPinCount ? "pin_count"
                                                       : "cut_nets");
  w.key("infeasible_stop_window");
  w.value(static_cast<std::uint64_t>(opt.refiner.infeasible_stop_window));
  w.end_object();
  w.key("sigma1");
  w.value(opt.sigma1);
  w.key("sigma2");
  w.value(opt.sigma2);
  w.key("n_small");
  w.value(static_cast<std::uint64_t>(opt.n_small));
  w.key("seed");
  w.value(opt.seed);
  w.key("starts");
  w.value(static_cast<std::uint64_t>(opt.starts));
  w.key("max_iterations");
  w.value(static_cast<std::uint64_t>(opt.max_iterations));
  w.key("schedule");
  w.begin_object();
  w.key("last_pair");
  w.value(opt.schedule.last_pair);
  w.key("all_blocks");
  w.value(opt.schedule.all_blocks);
  w.key("min_blocks");
  w.value(opt.schedule.min_blocks);
  w.key("final_sweep");
  w.value(opt.schedule.final_sweep);
  w.end_object();
  w.end_object();
  return w.take();
}

obs::RunHeader make_event_log_header(const Hypergraph& h, const Device& d,
                                     const Options& opt,
                                     std::string_view method) {
  obs::RunHeader header;
  header.method = std::string(method);
  header.seed = opt.seed;
  header.device_name = d.name();
  header.device_smax = d.s_max_cells();
  header.device_tmax = d.t_max();
  header.device_fill = d.fill();
  header.graph_nodes = h.num_nodes();
  header.graph_interior = h.num_interior();
  header.graph_nets = h.num_nets();
  header.graph_pins = h.num_pins();
  header.graph_digest = h.structural_digest();
  header.options_json = options_json(opt);
  return header;
}

}  // namespace fpart
