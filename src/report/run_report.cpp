#include "report/run_report.hpp"

#include <fstream>

#include "obs/json.hpp"
#include "obs/phase.hpp"
#include "obs/stats.hpp"
#include "util/assert.hpp"

namespace fpart {

namespace {

using obs::JsonWriter;

void write_meta(JsonWriter& w, const RunMeta& meta) {
  w.begin_object();
  w.key("circuit");
  w.value(meta.circuit);
  w.key("device");
  w.value(meta.device);
  w.key("method");
  w.value(meta.method);
  w.key("seed");
  w.value(meta.seed);
  w.end_object();
}

void write_result(JsonWriter& w, const PartitionResult& r) {
  w.begin_object();
  w.key("feasible");
  w.value(r.feasible);
  w.key("k");
  w.value(r.k);
  w.key("lower_bound");
  w.value(r.lower_bound);
  w.key("cut");
  w.value(r.cut);
  w.key("km1");
  w.value(r.km1);
  w.key("iterations");
  w.value(r.iterations);
  w.key("seconds");
  w.value(r.seconds);
  w.key("cpu_seconds");
  w.value(r.cpu_seconds);
  w.key("blocks");
  w.begin_array();
  for (const BlockStats& b : r.blocks) {
    w.begin_object();
    w.key("size");
    w.value(b.size);
    w.key("pins");
    w.value(b.pins);
    w.key("ext");
    w.value(b.ext);
    w.key("nodes");
    w.value(b.nodes);
    w.key("feasible");
    w.value(b.feasible);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_registry(JsonWriter& w) {
  const auto& registry = obs::StatsRegistry::instance();
  w.key("counters");
  w.begin_object();
  for (const auto& c : registry.counters()) {
    w.key(c.name);
    w.value(c.value);
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& h : registry.histograms()) {
    w.key(h.name);
    w.begin_object();
    w.key("count");
    w.value(h.count);
    w.key("sum");
    w.value(h.sum);
    w.key("min");
    w.value(h.min);
    w.key("max");
    w.value(h.max);
    w.key("mean");
    w.value(h.count == 0
                ? 0.0
                : static_cast<double>(h.sum) / static_cast<double>(h.count));
    w.key("buckets");
    w.begin_array();
    for (const std::uint64_t b : h.buckets) w.value(b);
    w.end_array();
    w.end_object();
  }
  w.end_object();
}

void write_phase(JsonWriter& w, const obs::PhaseNode& node) {
  w.begin_object();
  w.key("name");
  w.value(node.name);
  w.key("wall_seconds");
  w.value(node.wall_seconds);
  w.key("cpu_seconds");
  w.value(node.cpu_seconds);
  w.key("count");
  w.value(node.count);
  w.key("children");
  w.begin_array();
  for (const auto& c : node.children) write_phase(w, *c);
  w.end_array();
  w.end_object();
}

void write_phases(JsonWriter& w) {
  const auto root = obs::PhaseForest::instance().snapshot();
  w.key("phases");
  w.begin_array();
  for (const auto& top : root->children) write_phase(w, *top);
  w.end_array();
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream os(path);
  FPART_REQUIRE(os.good(), "cannot write report file " + path);
  os << body;
  FPART_REQUIRE(os.good(), "write failed for report file " + path);
}

}  // namespace

std::string run_report_json(const RunMeta& meta, const PartitionResult& r) {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kRunReportSchema);
  w.key("meta");
  write_meta(w, meta);
  w.key("result");
  write_result(w, r);
  write_registry(w);
  write_phases(w);
  w.end_object();
  return w.take();
}

void write_run_report_file(const std::string& path, const RunMeta& meta,
                           const PartitionResult& r) {
  write_file(path, run_report_json(meta, r));
}

std::string bench_report_json(std::string_view bench_name,
                              std::span<const RunRecord> records) {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kBenchReportSchema);
  w.key("bench");
  w.value(bench_name);
  w.key("records");
  w.begin_array();
  for (const RunRecord& rec : records) {
    w.begin_object();
    w.key("meta");
    write_meta(w, rec.meta);
    w.key("result");
    write_result(w, rec.result);
    w.end_object();
  }
  w.end_array();
  write_registry(w);
  write_phases(w);
  w.end_object();
  return w.take();
}

void write_bench_report_file(const std::string& path,
                             std::string_view bench_name,
                             std::span<const RunRecord> records) {
  write_file(path, bench_report_json(bench_name, records));
}

}  // namespace fpart
