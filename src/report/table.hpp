// Plain-text table rendering for the benchmark harness (the bench
// binaries print the paper's tables with measured columns alongside the
// published reference numbers).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fpart {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  std::size_t num_columns() const { return headers_.size(); }
  std::size_t num_rows() const { return rows_.size(); }

  /// Adds a data row; must have exactly num_columns() cells.
  void add_row(std::vector<std::string> cells);

  /// Adds a horizontal separator line (rendered in ASCII output only).
  void add_separator();

  /// Fixed-width ASCII rendering with column alignment (numbers
  /// right-aligned, text left-aligned, detected per column).
  std::string to_ascii() const;

  /// GitHub-flavored markdown rendering.
  std::string to_markdown() const;

  /// RFC-4180-ish CSV rendering (quotes cells containing , " or \n).
  std::string to_csv() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

/// Formatting helpers shared by the bench drivers.
std::string fmt_int(std::int64_t v);
std::string fmt_double(double v, int precision);
/// "-" for absent published numbers (matches the paper's tables).
std::string fmt_opt_int(std::int64_t v, bool present);

}  // namespace fpart
