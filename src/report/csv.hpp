// File output helpers for bench results.
#pragma once

#include <string>

#include "report/table.hpp"

namespace fpart {

/// Writes `table` as CSV to `path`. Throws PreconditionError on IO error.
void write_csv_file(const std::string& path, const Table& table);

}  // namespace fpart
