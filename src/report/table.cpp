#include "report/table.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/assert.hpp"

namespace fpart {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty() || s == "-") return true;  // "-" = absent number
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  bool digit_seen = false;
  for (; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      digit_seen = true;
    } else if (s[i] != '.' && s[i] != '*') {  // '*' marks measured columns
      return false;
    }
  }
  return digit_seen;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  FPART_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  FPART_REQUIRE(cells.size() == headers_.size(),
                "row width does not match header");
  rows_.push_back(Row{false, std::move(cells)});
}

void Table::add_separator() { rows_.push_back(Row{true, {}}); }

std::string Table::to_ascii() const {
  const std::size_t n = headers_.size();
  std::vector<std::size_t> width(n);
  std::vector<bool> numeric(n, true);
  for (std::size_t c = 0; c < n; ++c) width[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < n; ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
      if (!looks_numeric(row.cells[c])) numeric[c] = false;
    }
  }

  std::ostringstream os;
  auto emit_cells = [&](const std::vector<std::string>& cells,
                        bool force_left) {
    for (std::size_t c = 0; c < n; ++c) {
      os << (c == 0 ? "| " : " ");
      const std::string& s = cells[c];
      const std::size_t pad = width[c] - s.size();
      if (numeric[c] && !force_left) {
        os << std::string(pad, ' ') << s;
      } else {
        os << s << std::string(pad, ' ');
      }
      os << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < n; ++c) {
      os << (c == 0 ? "+" : "") << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };

  emit_rule();
  emit_cells(headers_, /*force_left=*/true);
  emit_rule();
  for (const Row& row : rows_) {
    if (row.separator) {
      emit_rule();
    } else {
      emit_cells(row.cells, false);
    }
  }
  emit_rule();
  return os.str();
}

std::string Table::to_markdown() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (const auto& cell : cells) os << ' ' << cell << " |";
    os << '\n';
  };
  emit(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << '\n';
  for (const Row& row : rows_) {
    if (!row.separator) emit(row.cells);
  }
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const Row& row : rows_) {
    if (!row.separator) emit(row.cells);
  }
  return os.str();
}

std::string fmt_int(std::int64_t v) { return std::to_string(v); }

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string fmt_opt_int(std::int64_t v, bool present) {
  return present ? fmt_int(v) : "-";
}

}  // namespace fpart
