#include "report/csv.hpp"

#include <fstream>

#include "util/assert.hpp"

namespace fpart {

void write_csv_file(const std::string& path, const Table& table) {
  std::ofstream os(path);
  FPART_REQUIRE(os.good(), "cannot open for writing: " + path);
  os << table.to_csv();
  FPART_REQUIRE(os.good(), "write failed: " + path);
}

}  // namespace fpart
