#include "techmap/clb_pack.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "hypergraph/builder.hpp"
#include "util/assert.hpp"

namespace fpart::techmap {

std::uint32_t family_lut_inputs(Family family) {
  return family == Family::kXC2000 ? 4u : 5u;
}

MappedCircuit pack_to_clbs(const GateNetlist& netlist, const LutMapping& m) {
  const auto num_luts = static_cast<std::uint32_t>(m.luts.size());
  const auto num_standalone =
      static_cast<std::uint32_t>(m.standalone_dffs.size());
  constexpr std::uint32_t kNoClb = ~0u;

  // Which CLB drives each signal (kNoClb for primary inputs).
  std::vector<std::uint32_t> driver(netlist.num_gates(), kNoClb);
  // CLB consumers per signal.
  std::vector<std::vector<std::uint32_t>> consumers(netlist.num_gates());
  // Primary-output markers attached to each signal.
  std::vector<std::uint32_t> pad_count(netlist.num_gates(), 0);

  for (std::uint32_t li = 0; li < num_luts; ++li) {
    const MappedLut& lut = m.luts[li];
    driver[lut.root] = li;
    if (lut.packed_dff != kInvalidGate) driver[lut.packed_dff] = li;
    for (GateId s : lut.inputs) consumers[s].push_back(li);
  }
  for (std::uint32_t j = 0; j < num_standalone; ++j) {
    const GateId q = m.standalone_dffs[j];
    const std::uint32_t clb = num_luts + j;
    driver[q] = clb;
    consumers[netlist.fanins(q)[0]].push_back(clb);
  }
  for (GateId o : netlist.outputs()) {
    ++pad_count[netlist.fanins(o)[0]];
  }

  HypergraphBuilder b;
  for (std::uint32_t li = 0; li < num_luts; ++li) {
    b.add_cell(1, "lut" + std::to_string(li));
  }
  for (std::uint32_t j = 0; j < num_standalone; ++j) {
    b.add_cell(1, "ff" + std::to_string(j));
  }

  MappedCircuit out;
  out.num_luts = num_luts;
  out.num_standalone_ffs = num_standalone;
  for (const MappedLut& lut : m.luts) {
    if (lut.packed_dff != kInvalidGate) ++out.num_packed_ffs;
  }
  out.num_clbs = num_luts + num_standalone;

  // One net per signal that leaves a CLB or touches a pad.
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const GateType type = netlist.type(g);
    const bool is_signal =
        type == GateType::kInput || type == GateType::kDff ||
        (is_combinational(type) && m.lut_of[g] != LutMapping::kNone &&
         m.luts[m.lut_of[g]].root == g);
    if (!is_signal) continue;

    std::vector<NodeId> pins;
    if (driver[g] != kNoClb) pins.push_back(driver[g]);
    for (std::uint32_t clb : consumers[g]) pins.push_back(clb);
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());

    const bool has_pads = type == GateType::kInput || pad_count[g] > 0;
    if (pins.size() < 2 && !has_pads) continue;  // internal / dangling

    if (type == GateType::kInput) {
      pins.push_back(b.add_terminal("pad:" + netlist.gate(g).name));
    }
    for (std::uint32_t i = 0; i < pad_count[g]; ++i) {
      pins.push_back(b.add_terminal("pad:po:" + netlist.gate(g).name +
                                    ":" + std::to_string(i)));
    }
    b.add_net(pins, "sig:" + netlist.gate(g).name);
  }

  out.circuit = std::move(b).build();
  return out;
}

MappedCircuit map_to_family(const GateNetlist& netlist, Family family) {
  const LutMapping mapping =
      map_to_luts(netlist, family_lut_inputs(family));
  return pack_to_clbs(netlist, mapping);
}

}  // namespace fpart::techmap
