#include "techmap/blif_io.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "util/assert.hpp"

namespace fpart::techmap {

namespace {

// One logical BLIF line (continuations joined, comments stripped),
// split into whitespace tokens.
std::vector<std::vector<std::string>> tokenize(std::istream& is) {
  std::vector<std::vector<std::string>> lines;
  std::string raw;
  std::string pending;
  while (std::getline(is, raw)) {
    if (auto hash = raw.find('#'); hash != std::string::npos) {
      raw.erase(hash);
    }
    // Continuation: trailing backslash joins with the next line.
    std::string chunk = raw;
    while (!chunk.empty() &&
           (chunk.back() == ' ' || chunk.back() == '\t' ||
            chunk.back() == '\r')) {
      chunk.pop_back();
    }
    const bool continued = !chunk.empty() && chunk.back() == '\\';
    if (continued) chunk.pop_back();
    pending += chunk;
    pending += ' ';
    if (continued) continue;

    std::istringstream ls(pending);
    std::vector<std::string> tokens;
    std::string token;
    while (ls >> token) tokens.push_back(token);
    if (!tokens.empty()) lines.push_back(std::move(tokens));
    pending.clear();
  }
  FPART_REQUIRE(pending.find_first_not_of(" \t") == std::string::npos,
                "blif: dangling continuation at end of file");
  return lines;
}

struct NamesRecord {
  std::vector<std::string> inputs;
  std::string output;
  std::size_t cover_lines = 0;
};

struct LatchRecord {
  std::string input;
  std::string output;
};

}  // namespace

GateNetlist read_blif(std::istream& is) {
  const auto lines = tokenize(is);

  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<NamesRecord> names;
  std::vector<LatchRecord> latches;

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto& t = lines[i];
    const std::string& cmd = t[0];
    if (cmd == ".model") {
      continue;  // name ignored
    } else if (cmd == ".inputs") {
      input_names.insert(input_names.end(), t.begin() + 1, t.end());
    } else if (cmd == ".outputs") {
      output_names.insert(output_names.end(), t.begin() + 1, t.end());
    } else if (cmd == ".names") {
      FPART_REQUIRE(t.size() >= 2, "blif: .names needs an output signal");
      NamesRecord rec;
      rec.inputs.assign(t.begin() + 1, t.end() - 1);
      rec.output = t.back();
      // Consume the cover lines that follow (validated for width).
      while (i + 1 < lines.size() && lines[i + 1][0][0] != '.') {
        const auto& cover = lines[++i];
        if (rec.inputs.empty()) {
          FPART_REQUIRE(cover.size() == 1,
                        "blif: constant cover must be a single value");
        } else {
          FPART_REQUIRE(cover.size() == 2,
                        "blif: cover line must be '<pattern> <value>'");
          FPART_REQUIRE(cover[0].size() == rec.inputs.size(),
                        "blif: cover width does not match input count");
        }
        ++rec.cover_lines;
      }
      names.push_back(std::move(rec));
    } else if (cmd == ".latch") {
      FPART_REQUIRE(t.size() >= 3, "blif: .latch needs input and output");
      latches.push_back(LatchRecord{t[1], t[2]});
    } else if (cmd == ".end") {
      break;
    } else if (cmd[0] == '.') {
      FPART_REQUIRE(false, "blif: unsupported construct " + cmd);
    } else {
      FPART_REQUIRE(false, "blif: stray cover line outside .names");
    }
  }

  GateNetlist netlist;
  std::map<std::string, GateId> signal;

  for (const std::string& name : input_names) {
    FPART_REQUIRE(!signal.count(name), "blif: duplicate signal " + name);
    signal[name] = netlist.add_input(name);
  }
  for (const LatchRecord& latch : latches) {
    FPART_REQUIRE(!signal.count(latch.output),
                  "blif: duplicate signal " + latch.output);
    signal[latch.output] = netlist.add_dff_placeholder(latch.output);
  }
  // Constants (.names with no inputs) act as sources.
  for (const NamesRecord& rec : names) {
    if (rec.inputs.empty()) {
      FPART_REQUIRE(!signal.count(rec.output),
                    "blif: duplicate signal " + rec.output);
      signal[rec.output] = netlist.add_input("const:" + rec.output);
    }
  }

  // Create .names gates in dependency order (worklist until settled).
  std::vector<bool> done(names.size(), false);
  bool progress = true;
  std::size_t remaining = 0;
  for (const NamesRecord& rec : names) {
    if (!rec.inputs.empty()) ++remaining;
  }
  while (remaining > 0 && progress) {
    progress = false;
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (done[i] || names[i].inputs.empty()) continue;
      bool ready = true;
      for (const std::string& in : names[i].inputs) {
        if (!signal.count(in)) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      std::vector<GateId> fanins;
      for (const std::string& in : names[i].inputs) {
        fanins.push_back(signal.at(in));
      }
      FPART_REQUIRE(!signal.count(names[i].output),
                    "blif: duplicate signal " + names[i].output);
      signal[names[i].output] =
          netlist.add_gate(GateType::kTable, fanins, names[i].output);
      done[i] = true;
      --remaining;
      progress = true;
    }
  }
  if (remaining > 0) {
    // Name the first offender for the diagnostic.
    std::string offender;
    for (std::size_t i = 0; i < names.size() && offender.empty(); ++i) {
      if (!done[i] && !names[i].inputs.empty()) offender = names[i].output;
    }
    FPART_REQUIRE(false,
                  "blif: unresolved .names '" + offender +
                      "' (undefined signal or combinational cycle)");
  }

  for (const LatchRecord& latch : latches) {
    FPART_REQUIRE(signal.count(latch.input),
                  "blif: latch input undefined: " + latch.input);
    netlist.connect_dff(signal.at(latch.output), signal.at(latch.input));
  }
  for (const std::string& name : output_names) {
    FPART_REQUIRE(signal.count(name),
                  "blif: output undefined: " + name);
    netlist.add_output(signal.at(name), name);
  }

  netlist.validate();
  return netlist;
}

GateNetlist read_blif_file(const std::string& path) {
  std::ifstream is(path);
  FPART_REQUIRE(is.good(), "cannot open for reading: " + path);
  return read_blif(is);
}

namespace {

/// Stable unique signal names for writing.
std::vector<std::string> signal_names(const GateNetlist& n) {
  std::vector<std::string> out(n.num_gates());
  std::map<std::string, int> used;
  for (GateId g = 0; g < n.num_gates(); ++g) {
    std::string base = n.gate(g).name;
    if (base.empty()) base = "n" + std::to_string(g);
    if (auto [it, fresh] = used.emplace(base, 1); !fresh) {
      base += "_" + std::to_string(g);
      ++it->second;
    }
    out[g] = base;
  }
  return out;
}

}  // namespace

void write_blif(std::ostream& os, const GateNetlist& netlist,
                const std::string& model_name) {
  const auto sig = signal_names(netlist);
  os << ".model " << model_name << '\n';

  os << ".inputs";
  for (GateId g : netlist.inputs()) os << ' ' << sig[g];
  os << '\n';

  os << ".outputs";
  for (GateId o : netlist.outputs()) os << ' ' << sig[o];
  os << '\n';

  for (GateId q : netlist.dffs()) {
    os << ".latch " << sig[netlist.fanins(q)[0]] << ' ' << sig[q]
       << " re clk 2\n";
  }

  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const GateType type = netlist.type(g);
    if (!is_combinational(type)) continue;
    const auto fanins = netlist.fanins(g);
    os << ".names";
    for (GateId f : fanins) os << ' ' << sig[f];
    os << ' ' << sig[g] << '\n';
    switch (type) {
      case GateType::kAnd:
        os << std::string(fanins.size(), '1') << " 1\n";
        break;
      case GateType::kOr:
        for (std::size_t i = 0; i < fanins.size(); ++i) {
          std::string pattern(fanins.size(), '-');
          pattern[i] = '1';
          os << pattern << " 1\n";
        }
        break;
      case GateType::kXor:
        // Odd-parity cover (fanins are small: 2-4 in practice).
        for (std::uint32_t mask = 0; mask < (1u << fanins.size());
             ++mask) {
          if (__builtin_popcount(mask) % 2 == 0) continue;
          std::string pattern(fanins.size(), '0');
          for (std::size_t i = 0; i < fanins.size(); ++i) {
            if (mask & (1u << i)) pattern[i] = '1';
          }
          os << pattern << " 1\n";
        }
        break;
      case GateType::kNot:
        os << "0 1\n";
        break;
      case GateType::kBuf:
        os << "1 1\n";
        break;
      case GateType::kTable:
        // Original cover not retained; emit a structural placeholder.
        os << std::string(fanins.size(), '1') << " 1\n";
        break;
      default:
        break;
    }
  }

  // Output markers: alias nets so .outputs names exist as signals.
  for (GateId o : netlist.outputs()) {
    os << ".names " << sig[netlist.fanins(o)[0]] << ' ' << sig[o]
       << "\n1 1\n";
  }
  os << ".end\n";
}

void write_blif_file(const std::string& path, const GateNetlist& netlist,
                     const std::string& model_name) {
  std::ofstream os(path);
  FPART_REQUIRE(os.good(), "cannot open for writing: " + path);
  write_blif(os, netlist, model_name);
  FPART_REQUIRE(os.good(), "write failed: " + path);
}

}  // namespace fpart::techmap
