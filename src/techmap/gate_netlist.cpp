#include "techmap/gate_netlist.hpp"

#include <deque>

#include "util/assert.hpp"

namespace fpart::techmap {

const char* to_string(GateType type) {
  switch (type) {
    case GateType::kInput:
      return "INPUT";
    case GateType::kOutput:
      return "OUTPUT";
    case GateType::kAnd:
      return "AND";
    case GateType::kOr:
      return "OR";
    case GateType::kXor:
      return "XOR";
    case GateType::kNot:
      return "NOT";
    case GateType::kBuf:
      return "BUF";
    case GateType::kTable:
      return "TABLE";
    case GateType::kDff:
      return "DFF";
  }
  return "?";
}

bool is_combinational(GateType type) {
  switch (type) {
    case GateType::kAnd:
    case GateType::kOr:
    case GateType::kXor:
    case GateType::kNot:
    case GateType::kBuf:
    case GateType::kTable:
      return true;
    default:
      return false;
  }
}

GateId GateNetlist::add(GateType type, std::vector<GateId> fanins,
                        std::string name) {
  for (GateId f : fanins) {
    FPART_REQUIRE(f < gates_.size(), "fanin refers to unknown gate");
    FPART_REQUIRE(gates_[f].type != GateType::kOutput,
                  "output markers have no fanout");
  }
  gates_.push_back(Gate{type, std::move(fanins), std::move(name)});
  fanout_valid_ = false;
  return static_cast<GateId>(gates_.size() - 1);
}

GateId GateNetlist::add_input(std::string name) {
  const GateId g = add(GateType::kInput, {}, std::move(name));
  inputs_.push_back(g);
  return g;
}

GateId GateNetlist::add_gate(GateType type, std::span<const GateId> fanins,
                             std::string name) {
  FPART_REQUIRE(is_combinational(type), "add_gate: combinational types only");
  if (type == GateType::kNot || type == GateType::kBuf) {
    FPART_REQUIRE(fanins.size() == 1, "NOT/BUF take exactly one fanin");
  } else if (type == GateType::kTable) {
    FPART_REQUIRE(!fanins.empty(), "TABLE takes one or more fanins");
  } else {
    FPART_REQUIRE(fanins.size() >= 2, "AND/OR/XOR take two or more fanins");
  }
  const GateId g = add(type, {fanins.begin(), fanins.end()},
                       std::move(name));
  ++num_combinational_;
  return g;
}

GateId GateNetlist::add_dff(GateId d, std::string name) {
  const GateId g = add(GateType::kDff, {d}, std::move(name));
  dffs_.push_back(g);
  return g;
}

GateId GateNetlist::add_dff_placeholder(std::string name) {
  const GateId g = add(GateType::kDff, {}, std::move(name));
  dffs_.push_back(g);
  return g;
}

void GateNetlist::connect_dff(GateId dff, GateId d) {
  FPART_REQUIRE(dff < gates_.size() && gates_[dff].type == GateType::kDff,
                "connect_dff: not a DFF");
  FPART_REQUIRE(gates_[dff].fanins.empty(),
                "connect_dff: DFF already connected");
  FPART_REQUIRE(d < gates_.size() && gates_[d].type != GateType::kOutput,
                "connect_dff: bad driver");
  gates_[dff].fanins.push_back(d);
  fanout_valid_ = false;
}

GateId GateNetlist::add_output(GateId from, std::string name) {
  const GateId g = add(GateType::kOutput, {from}, std::move(name));
  outputs_.push_back(g);
  return g;
}

void GateNetlist::build_fanouts() const {
  const std::size_t n = gates_.size();
  fanout_offset_.assign(n + 1, 0);
  for (const Gate& g : gates_) {
    for (GateId f : g.fanins) ++fanout_offset_[f + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    fanout_offset_[i + 1] += fanout_offset_[i];
  }
  fanout_flat_.assign(fanout_offset_[n], kInvalidGate);
  std::vector<std::size_t> cursor(fanout_offset_.begin(),
                                  fanout_offset_.end() - 1);
  for (GateId g = 0; g < n; ++g) {
    for (GateId f : gates_[g].fanins) {
      fanout_flat_[cursor[f]++] = g;
    }
  }
  fanout_valid_ = true;
}

std::span<const GateId> GateNetlist::fanouts(GateId g) const {
  if (!fanout_valid_) build_fanouts();
  return {fanout_flat_.data() + fanout_offset_[g],
          fanout_offset_[g + 1] - fanout_offset_[g]};
}

std::vector<GateId> GateNetlist::topological_order() const {
  // Kahn over combinational edges; DFF outputs count as sources (their
  // fanin edge is sequential, not combinational).
  const std::size_t n = gates_.size();
  std::vector<std::uint32_t> pending(n, 0);
  for (GateId g = 0; g < n; ++g) {
    if (type(g) == GateType::kDff) continue;  // sequential edge
    pending[g] = static_cast<std::uint32_t>(gates_[g].fanins.size());
  }
  std::deque<GateId> ready;
  for (GateId g = 0; g < n; ++g) {
    if (pending[g] == 0) ready.push_back(g);
  }
  std::vector<GateId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const GateId g = ready.front();
    ready.pop_front();
    order.push_back(g);
    for (GateId consumer : fanouts(g)) {
      if (type(consumer) == GateType::kDff) continue;
      if (--pending[consumer] == 0) ready.push_back(consumer);
    }
  }
  FPART_ASSERT_MSG(order.size() == n,
                   "combinational cycle in gate netlist");
  return order;
}

void GateNetlist::validate() const {
  for (GateId g = 0; g < gates_.size(); ++g) {
    const Gate& gate = gates_[g];
    switch (gate.type) {
      case GateType::kInput:
        FPART_ASSERT(gate.fanins.empty());
        break;
      case GateType::kOutput:
      case GateType::kDff:
      case GateType::kNot:
      case GateType::kBuf:
        FPART_ASSERT(gate.fanins.size() == 1);
        break;
      case GateType::kTable:
        FPART_ASSERT(!gate.fanins.empty());
        break;
      default:
        FPART_ASSERT(gate.fanins.size() >= 2);
        break;
    }
    for (GateId f : gate.fanins) FPART_ASSERT(f < gates_.size());
  }
  (void)topological_order();  // throws on cycles
}

}  // namespace fpart::techmap
