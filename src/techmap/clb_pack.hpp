// CLB packing: turns a LUT mapping into the CLB-level hypergraph the
// partitioner consumes — one interior node per CLB (LUT + optional
// packed flip-flop, or a standalone flip-flop), one net per signal that
// leaves a CLB, terminal pads for the primary I/Os.
//
// This completes the "Map to XC2000 / XC3000 families" flow of the
// paper's Table 1: map_to_family(netlist, kXC2000) uses K = 4 LUTs,
// kXC3000 uses K = 5, so the same gate netlist yields two CLB circuits
// with different CLB counts (XC3000 <= XC2000) but the same I/O pads.
#pragma once

#include "device/device.hpp"
#include "hypergraph/hypergraph.hpp"
#include "techmap/gate_netlist.hpp"
#include "techmap/lut_map.hpp"

namespace fpart::techmap {

struct MappedCircuit {
  Hypergraph circuit;
  std::uint32_t num_luts = 0;
  std::uint32_t num_packed_ffs = 0;
  std::uint32_t num_standalone_ffs = 0;
  std::uint32_t num_clbs = 0;
};

/// Builds the CLB hypergraph for a finished LUT mapping.
MappedCircuit pack_to_clbs(const GateNetlist& netlist, const LutMapping& m);

/// Convenience: LUT-map with the family's K (XC2000 = 4, XC3000 = 5) and
/// pack.
MappedCircuit map_to_family(const GateNetlist& netlist, Family family);

/// The family's LUT input count.
std::uint32_t family_lut_inputs(Family family);

}  // namespace fpart::techmap
