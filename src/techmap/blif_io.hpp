// BLIF (Berkeley Logic Interchange Format) reader/writer for the
// technology-mapping substrate.
//
// The original MCNC benchmark circuits are distributed as BLIF, so this
// is the on-ramp for feeding real data into the map -> pack -> partition
// flow. Supported subset (what MCNC-style structural files use):
//
//   .model NAME
//   .inputs  a b c ...          (may repeat / continue with '\')
//   .outputs x y ...
//   .names in1 in2 ... out      followed by cover lines ("11 1", "-0 1")
//   .latch input output [type clock] [init]
//   .end
//
// Logic functions (.names) become structural kTable gates — the cover
// is parsed only for arity validation; the mapper needs structure, not
// truth tables. Constant .names (no inputs) become 0-ary tables modelled
// as a BUF of a synthesized constant input... no: constants get a
// dedicated primary-input-like source named after the signal.
// Unsupported constructs (.subckt, .gate, .mlatch) are rejected loudly.
#pragma once

#include <iosfwd>
#include <string>

#include "techmap/gate_netlist.hpp"

namespace fpart::techmap {

/// Parses the BLIF subset above. Throws PreconditionError on malformed
/// or unsupported input. The returned netlist validates.
GateNetlist read_blif(std::istream& is);
GateNetlist read_blif_file(const std::string& path);

/// Writes `netlist` as BLIF (typed gates become .names with the
/// equivalent cover; kTable gates are emitted with a conservative
/// all-ones cover placeholder since the original table is not retained).
void write_blif(std::ostream& os, const GateNetlist& netlist,
                const std::string& model_name = "fpart");
void write_blif_file(const std::string& path, const GateNetlist& netlist,
                     const std::string& model_name = "fpart");

}  // namespace fpart::techmap
