// Random gate-level circuit generator for the technology-mapping flow.
//
// Produces ISCAS-flavoured structure: a combinational DAG of 1-2 input
// gates (plus a few wider ANDs/ORs) with locality-biased fanin choice,
// optional D flip-flops forming sequential feedback, and primary
// outputs drawn from late gates. Deterministic in the seed.
#pragma once

#include <cstdint>

#include "techmap/gate_netlist.hpp"
#include "util/rng.hpp"

namespace fpart::techmap {

struct LogicConfig {
  std::uint32_t num_inputs = 16;
  std::uint32_t num_outputs = 8;
  std::uint32_t num_gates = 200;  // combinational gates
  std::uint32_t num_dffs = 16;
  /// Fanins are drawn from a window of the most recent signals with this
  /// probability (locality), else uniformly from everything so far.
  double locality = 0.8;
  std::uint32_t locality_window = 24;
  /// Within the locality window, prefer signals not consumed yet with
  /// this probability. High values produce the long single-fanout chains
  /// real synthesized logic has — the structure LUT cones absorb (low
  /// values make everything multi-fanout and cap cones at one gate).
  double fresh_bias = 0.7;
  std::uint64_t seed = 1;
};

GateNetlist random_logic(const LogicConfig& config);

}  // namespace fpart::techmap
