#include "techmap/random_logic.hpp"

#include <string>
#include <vector>

#include "util/assert.hpp"

namespace fpart::techmap {

GateNetlist random_logic(const LogicConfig& config) {
  FPART_REQUIRE(config.num_inputs >= 2, "need at least two inputs");
  FPART_REQUIRE(config.num_gates >= 1, "need at least one gate");
  FPART_REQUIRE(config.num_outputs >= 1, "need at least one output");
  FPART_REQUIRE(config.locality >= 0.0 && config.locality <= 1.0,
                "locality must be in [0,1]");
  FPART_REQUIRE(config.locality_window >= 2, "window too small");

  FPART_REQUIRE(config.fresh_bias >= 0.0 && config.fresh_bias <= 1.0,
                "fresh_bias must be in [0,1]");
  Rng rng(config.seed);
  GateNetlist netlist;

  // Signal pool: everything a new gate may read (inputs, DFF Qs, gates).
  std::vector<GateId> signals;
  std::vector<std::uint32_t> uses;  // consumption count per pool entry
  auto push_signal = [&](GateId g) {
    signals.push_back(g);
    uses.push_back(0);
  };
  for (std::uint32_t i = 0; i < config.num_inputs; ++i) {
    push_signal(netlist.add_input("pi" + std::to_string(i)));
  }
  std::vector<GateId> dffs;
  for (std::uint32_t i = 0; i < config.num_dffs; ++i) {
    const GateId q =
        netlist.add_dff_placeholder("ff" + std::to_string(i));
    dffs.push_back(q);
    push_signal(q);  // Q feeds downstream logic (feedback)
  }

  // Hub signals: a handful of inputs and (later) a few gates that soak
  // up the bulk of multi-fanout demand.
  std::vector<GateId> hubs;
  for (std::size_t i = 0; i < netlist.inputs().size() && i < 6; ++i) {
    hubs.push_back(netlist.inputs()[i]);
  }

  // First fanins chase fresh (never-consumed) signals, producing the
  // single-fanout chains cone mapping absorbs; later fanins draw from
  // the whole pool, concentrating the remaining fanout on hub signals —
  // together a realistic fanout distribution (most signals fanout 1, a
  // few hubs fanout many).
  auto pick_signal = [&](bool prefer_fresh) -> GateId {
    std::size_t lo = 0;
    if (rng.chance(config.locality) &&
        signals.size() > config.locality_window) {
      lo = signals.size() - config.locality_window;
    }
    const std::size_t span = signals.size() - lo;
    std::size_t idx = lo + rng.index(span);
    if (prefer_fresh && rng.chance(config.fresh_bias) && uses[idx] > 0) {
      for (std::size_t probe = 0; probe < span; ++probe) {
        const std::size_t candidate = lo + (idx - lo + probe) % span;
        if (uses[candidate] == 0) {
          idx = candidate;
          break;
        }
      }
    }
    ++uses[idx];
    return signals[idx];
  };

  for (std::uint32_t i = 0; i < config.num_gates; ++i) {
    const double r = rng.real();
    GateType type;
    std::size_t arity;
    if (r < 0.35) {
      type = GateType::kAnd;
      arity = 2;
    } else if (r < 0.65) {
      type = GateType::kOr;
      arity = 2;
    } else if (r < 0.80) {
      type = GateType::kXor;
      arity = 2;
    } else if (r < 0.92) {
      type = GateType::kNot;
      arity = 1;
    } else {
      type = rng.chance(0.5) ? GateType::kAnd : GateType::kOr;
      arity = 3 + rng.index(2);  // occasional wide gate
    }
    std::vector<GateId> fanins;
    for (std::size_t f = 0; f < arity; ++f) {
      // First fanin extends a fresh chain; later fanins draw from a
      // small hub set half the time (concentrating multi-fanout on few
      // signals, like clock-enable/select nets) else from the pool.
      if (f > 0 && !hubs.empty() && rng.chance(0.55)) {
        fanins.push_back(rng.pick(hubs));
      } else {
        fanins.push_back(pick_signal(/*prefer_fresh=*/f == 0));
      }
    }
    if (arity >= 2 && fanins[0] == fanins[1]) {
      fanins[1] = signals[rng.index(signals.size())];
    }
    const GateId g = netlist.add_gate(type, fanins, "g" + std::to_string(i));
    push_signal(g);
    if (hubs.size() < 8 + config.num_gates / 64 && rng.chance(0.02)) {
      hubs.push_back(g);  // occasionally promote a gate to hub duty
    }
  }

  // Close the sequential loops from late signals.
  for (GateId q : dffs) {
    netlist.connect_dff(q, pick_signal(true));
  }

  // Primary outputs from distinct late signals.
  for (std::uint32_t i = 0; i < config.num_outputs; ++i) {
    netlist.add_output(pick_signal(true), "po" + std::to_string(i));
  }

  netlist.validate();
  return netlist;
}

}  // namespace fpart::techmap
