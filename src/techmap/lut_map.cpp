#include "techmap/lut_map.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"

namespace fpart::techmap {

namespace {

/// Deduplicated leaf-input set if `absorb` were merged into a cone whose
/// current inputs are `inputs`. Returns the new input list.
std::vector<GateId> inputs_after_absorb(const std::vector<GateId>& inputs,
                                        GateId absorb,
                                        std::span<const GateId> fanins) {
  std::vector<GateId> out;
  out.reserve(inputs.size() + fanins.size());
  for (GateId s : inputs) {
    if (s != absorb) out.push_back(s);
  }
  for (GateId f : fanins) out.push_back(f);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

LutMapping map_to_luts(const GateNetlist& netlist, std::uint32_t k) {
  FPART_REQUIRE(k >= 2, "LUTs need at least two inputs");
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (is_combinational(netlist.type(g))) {
      FPART_REQUIRE(netlist.fanins(g).size() <= k,
                    "gate arity exceeds the LUT input count");
    }
  }

  LutMapping mapping;
  mapping.k = k;
  mapping.lut_of.assign(netlist.num_gates(), LutMapping::kNone);

  const std::vector<GateId> topo = netlist.topological_order();

  // Reverse-topological sweep: a gate no consumer absorbed becomes a
  // LUT root and greedily swallows single-fanout fanin cones.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const GateId g = *it;
    if (!is_combinational(netlist.type(g))) continue;
    if (mapping.lut_of[g] != LutMapping::kNone) continue;

    MappedLut lut;
    lut.root = g;
    lut.cone.push_back(g);
    lut.inputs.assign(netlist.fanins(g).begin(), netlist.fanins(g).end());
    std::sort(lut.inputs.begin(), lut.inputs.end());
    lut.inputs.erase(std::unique(lut.inputs.begin(), lut.inputs.end()),
                     lut.inputs.end());

    while (true) {
      GateId best = kInvalidGate;
      std::vector<GateId> best_inputs;
      for (GateId s : lut.inputs) {
        if (!is_combinational(netlist.type(s))) continue;
        if (mapping.lut_of[s] != LutMapping::kNone) continue;
        // Single fanout: the sole consumer is inside this cone (we
        // reached s through the cone's input frontier).
        if (netlist.fanout_count(s) != 1) continue;
        auto candidate =
            inputs_after_absorb(lut.inputs, s, netlist.fanins(s));
        if (candidate.size() > k) continue;
        if (best == kInvalidGate ||
            candidate.size() < best_inputs.size() ||
            (candidate.size() == best_inputs.size() && s > best)) {
          best = s;
          best_inputs = std::move(candidate);
        }
      }
      if (best == kInvalidGate) break;
      lut.cone.push_back(best);
      lut.inputs = std::move(best_inputs);
    }

    const auto lut_index = static_cast<std::uint32_t>(mapping.luts.size());
    for (GateId member : lut.cone) mapping.lut_of[member] = lut_index;
    mapping.luts.push_back(std::move(lut));
  }

  // FF absorption: a DFF fed exclusively by a LUT root with no other
  // consumer of that root rides in the root's CLB.
  std::vector<std::uint8_t> lut_has_ff(mapping.luts.size(), 0);
  for (GateId q : netlist.dffs()) {
    const GateId d = netlist.fanins(q)[0];
    bool absorbed = false;
    if (is_combinational(netlist.type(d)) &&
        netlist.fanout_count(d) == 1) {
      const std::uint32_t li = mapping.lut_of[d];
      if (li != LutMapping::kNone && mapping.luts[li].root == d &&
          !lut_has_ff[li]) {
        mapping.luts[li].packed_dff = q;
        lut_has_ff[li] = 1;
        absorbed = true;
      }
    }
    if (!absorbed) mapping.standalone_dffs.push_back(q);
  }
  return mapping;
}

void validate_mapping(const GateNetlist& netlist, const LutMapping& m) {
  std::vector<std::uint32_t> owner(netlist.num_gates(), LutMapping::kNone);
  for (std::uint32_t li = 0; li < m.luts.size(); ++li) {
    const MappedLut& lut = m.luts[li];
    FPART_ASSERT_MSG(lut.inputs.size() <= m.k, "LUT exceeds K inputs");
    FPART_ASSERT_MSG(!lut.cone.empty(), "empty LUT cone");
    std::set<GateId> cone(lut.cone.begin(), lut.cone.end());
    FPART_ASSERT_MSG(cone.count(lut.root) == 1, "root outside its cone");
    for (GateId g : lut.cone) {
      FPART_ASSERT_MSG(is_combinational(netlist.type(g)),
                       "non-combinational gate in a cone");
      FPART_ASSERT_MSG(owner[g] == LutMapping::kNone,
                       "gate covered by two LUTs");
      owner[g] = li;
      FPART_ASSERT_MSG(m.lut_of[g] == li, "lut_of inconsistent");
      // Every fanin is either inside the cone or a declared input.
      for (GateId f : netlist.fanins(g)) {
        const bool inside = cone.count(f) == 1;
        const bool declared =
            std::find(lut.inputs.begin(), lut.inputs.end(), f) !=
            lut.inputs.end();
        FPART_ASSERT_MSG(inside || declared, "cone fanin unaccounted");
      }
      // Non-root cone members feed only the cone (no duplication).
      if (g != lut.root) {
        for (GateId consumer : netlist.fanouts(g)) {
          FPART_ASSERT_MSG(cone.count(consumer) == 1,
                           "cone member leaks outside its LUT");
        }
      }
    }
  }
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (is_combinational(netlist.type(g))) {
      FPART_ASSERT_MSG(owner[g] != LutMapping::kNone, "gate not covered");
    }
  }
  // Every DFF is either absorbed exactly once or standalone.
  std::set<GateId> seen;
  for (const MappedLut& lut : m.luts) {
    if (lut.packed_dff != kInvalidGate) {
      FPART_ASSERT_MSG(seen.insert(lut.packed_dff).second,
                       "DFF packed twice");
    }
  }
  for (GateId q : m.standalone_dffs) {
    FPART_ASSERT_MSG(seen.insert(q).second, "DFF both packed and standalone");
  }
  FPART_ASSERT_MSG(seen.size() == netlist.dffs().size(),
                   "DFF accounting mismatch");
}

}  // namespace fpart::techmap
