// Gate-level netlist model for the technology-mapping substrate.
//
// The paper's Table 1 reports per-circuit CLB counts "Map to XC2000 /
// XC3000 families" — the benchmark netlists were technology-mapped
// before partitioning. This module provides the upstream representation
// that flow starts from: a structural netlist of simple gates and
// D flip-flops with primary inputs/outputs.
//
// Combinational structure must be acyclic; DFFs are the only legal cycle
// breakers (their outputs act as sources and their inputs as sinks of
// the combinational DAG).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace fpart::techmap {

using GateId = std::uint32_t;
inline constexpr GateId kInvalidGate = ~0u;

enum class GateType : std::uint8_t {
  kInput,   // primary input (no fanins)
  kOutput,  // primary output marker (one fanin)
  kAnd,
  kOr,
  kXor,
  kNot,
  kBuf,
  kTable,  // generic logic function of its fanins (BLIF .names); the
           // mapper only needs the structure, not the truth table
  kDff,    // D flip-flop (one fanin), breaks combinational cycles
};

const char* to_string(GateType type);

/// True for AND/OR/XOR/NOT/BUF — the gates LUT mapping absorbs.
bool is_combinational(GateType type);

struct Gate {
  GateType type;
  std::vector<GateId> fanins;
  std::string name;
};

class GateNetlist {
 public:
  GateId add_input(std::string name = "");
  /// Combinational gate; AND/OR/XOR take 2+ fanins, NOT/BUF exactly 1.
  GateId add_gate(GateType type, std::span<const GateId> fanins,
                  std::string name = "");
  GateId add_gate(GateType type, std::initializer_list<GateId> fanins,
                  std::string name = "") {
    return add_gate(type, std::span<const GateId>(fanins.begin(),
                                                  fanins.size()),
                    std::move(name));
  }
  GateId add_dff(GateId d, std::string name = "");
  GateId add_output(GateId from, std::string name = "");

  /// Sequential feedback support: a DFF whose D input is wired later
  /// (its Q output can feed logic created in between). connect_dff()
  /// must be called exactly once before validate()/topological_order().
  GateId add_dff_placeholder(std::string name = "");
  void connect_dff(GateId dff, GateId d);

  std::size_t num_gates() const { return gates_.size(); }
  const Gate& gate(GateId g) const { return gates_[g]; }
  GateType type(GateId g) const { return gates_[g].type; }
  std::span<const GateId> fanins(GateId g) const { return gates_[g].fanins; }

  /// Gates consuming g's output (computed once, cached).
  std::span<const GateId> fanouts(GateId g) const;
  std::size_t fanout_count(GateId g) const { return fanouts(g).size(); }

  std::span<const GateId> inputs() const { return inputs_; }
  std::span<const GateId> outputs() const { return outputs_; }
  std::span<const GateId> dffs() const { return dffs_; }
  std::size_t num_combinational() const { return num_combinational_; }

  /// Topological order of the combinational gates (inputs and DFF
  /// outputs are sources and appear first; kOutput markers last).
  /// Throws InvariantError if a combinational cycle exists.
  std::vector<GateId> topological_order() const;

  /// Structural checks: fanin arities, id ranges, acyclicity.
  void validate() const;

 private:
  GateId add(GateType type, std::vector<GateId> fanins, std::string name);

  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::vector<GateId> dffs_;
  std::size_t num_combinational_ = 0;

  // Fanout CSR cache (built lazily).
  mutable bool fanout_valid_ = false;
  mutable std::vector<std::size_t> fanout_offset_;
  mutable std::vector<GateId> fanout_flat_;
  void build_fanouts() const;
};

}  // namespace fpart::techmap
