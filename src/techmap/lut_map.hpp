// Greedy cone-based LUT technology mapping.
//
// Covers the combinational gates of a netlist with K-input lookup
// tables: every gate belongs to exactly one LUT cone; cones are grown
// from their roots by absorbing single-fanout fanin gates while the
// cone's leaf-input count stays within K (duplication-free fanout-free-
// cone covering, the strategy of the Chortle family of mappers). A DFF
// whose D input is the sole consumer of a LUT root is absorbed into that
// LUT's CLB (the XC2000/XC3000 CLB flip-flop).
//
// Larger K absorbs more logic per LUT, so mapping the same netlist with
// K = 5 (XC3000) yields fewer CLBs than K = 4 (XC2000) — the effect
// behind the two CLB columns of the paper's Table 1.
#pragma once

#include <cstdint>
#include <vector>

#include "techmap/gate_netlist.hpp"

namespace fpart::techmap {

struct MappedLut {
  GateId root = kInvalidGate;
  /// Leaf signals feeding the LUT: primary inputs, DFF Qs or other LUT
  /// roots. Deduplicated; size <= K.
  std::vector<GateId> inputs;
  /// Combinational gates covered (root included).
  std::vector<GateId> cone;
  /// DFF absorbed into this LUT's CLB (kInvalidGate if none).
  GateId packed_dff = kInvalidGate;
};

struct LutMapping {
  std::uint32_t k = 0;
  std::vector<MappedLut> luts;
  /// lut_of[g] = index into luts for combinational gate g (kNone else).
  std::vector<std::uint32_t> lut_of;
  /// DFFs that did not get absorbed (each needs its own CLB).
  std::vector<GateId> standalone_dffs;

  static constexpr std::uint32_t kNone = ~0u;

  std::size_t num_clbs() const {
    return luts.size() + standalone_dffs.size();
  }
};

/// Maps `netlist` into K-input LUTs. Requires K >= the widest gate
/// arity (every gate must fit a LUT by itself).
LutMapping map_to_luts(const GateNetlist& netlist, std::uint32_t k);

/// Checks covering invariants: every combinational gate in exactly one
/// cone, all cone inputs within K, absorbed DFFs consistent. Throws
/// InvariantError on violation. Test hook.
void validate_mapping(const GateNetlist& netlist, const LutMapping& m);

}  // namespace fpart::techmap
