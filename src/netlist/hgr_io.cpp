#include "netlist/hgr_io.hpp"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hypergraph/builder.hpp"
#include "util/assert.hpp"

namespace fpart {

void write_hgr(std::ostream& os, const Hypergraph& h) {
  os << "% fpart-hgr v1";
  if (h.num_terminals() > 0) os << " fpart-terminals";
  os << '\n';
  os << h.num_nets() << ' ' << h.num_nodes() << " 10\n";
  for (NetId e = 0; e < h.num_nets(); ++e) {
    bool first = true;
    for (NodeId v : h.pins(e)) {
      if (!first) os << ' ';
      os << (v + 1);  // hMETIS ids are 1-based
      first = false;
    }
    os << '\n';
  }
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    os << h.node_size(v) << '\n';
  }
}

void write_hgr_file(const std::string& path, const Hypergraph& h) {
  std::ofstream os(path);
  FPART_REQUIRE(os.good(), "cannot open for writing: " + path);
  write_hgr(os, h);
  FPART_REQUIRE(os.good(), "write failed: " + path);
}

namespace {

// Returns the next non-comment, non-empty line; false at EOF.
bool next_data_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    std::size_t i = line.find_first_not_of(" \t\r");
    if (i == std::string::npos) continue;
    if (line[i] == '%') continue;
    return true;
  }
  return false;
}

}  // namespace

Hypergraph read_hgr(std::istream& is) {
  std::string line;
  FPART_REQUIRE(next_data_line(is, line), "hgr: empty file");
  std::istringstream header(line);
  std::uint64_t num_nets = 0;
  std::uint64_t num_nodes = 0;
  int fmt = 0;
  header >> num_nets >> num_nodes;
  FPART_REQUIRE(!header.fail(), "hgr: malformed header");
  header >> fmt;  // optional
  FPART_REQUIRE(fmt == 0 || fmt == 1 || fmt == 10 || fmt == 11,
                "hgr: fmt must be one of 0, 1, 10, 11");
  const bool net_weights = fmt == 1 || fmt == 11;
  const bool node_weights = fmt == 10 || fmt == 11;

  std::vector<std::vector<std::uint64_t>> nets(num_nets);
  for (std::uint64_t e = 0; e < num_nets; ++e) {
    FPART_REQUIRE(next_data_line(is, line), "hgr: missing net line");
    std::istringstream ls(line);
    if (net_weights) {
      // The library's cut metric is unweighted; accept weight-1 files
      // (written by common converters) and reject real weights loudly
      // rather than silently dropping information.
      std::uint64_t w = 0;
      FPART_REQUIRE(static_cast<bool>(ls >> w),
                    "hgr: missing net weight");
      FPART_REQUIRE(w == 1,
                    "hgr: weighted nets are not supported (all net "
                    "weights must be 1)");
    }
    std::uint64_t pin = 0;
    while (ls >> pin) {
      FPART_REQUIRE(pin >= 1 && pin <= num_nodes,
                    "hgr: pin id out of range");
      nets[e].push_back(pin - 1);
    }
    FPART_REQUIRE(!nets[e].empty(), "hgr: empty net line");
  }

  std::vector<std::uint32_t> weights(num_nodes, 1);
  if (node_weights) {
    for (std::uint64_t v = 0; v < num_nodes; ++v) {
      FPART_REQUIRE(next_data_line(is, line), "hgr: missing node weight");
      std::istringstream ls(line);
      std::uint64_t w = 0;
      ls >> w;
      FPART_REQUIRE(!ls.fail(), "hgr: malformed node weight");
      weights[v] = static_cast<std::uint32_t>(w);
    }
  }
  FPART_REQUIRE(!next_data_line(is, line), "hgr: trailing data");

  HypergraphBuilder b;
  for (std::uint64_t v = 0; v < num_nodes; ++v) {
    if (weights[v] == 0) {
      b.add_terminal();
    } else {
      b.add_cell(weights[v]);
    }
  }
  for (auto& pins : nets) {
    std::vector<NodeId> ids(pins.begin(), pins.end());
    b.add_net(ids);
  }
  return std::move(b).build();
}

Hypergraph read_hgr_file(const std::string& path) {
  std::ifstream is(path);
  FPART_REQUIRE(is.good(), "cannot open for reading: " + path);
  return read_hgr(is);
}

}  // namespace fpart
