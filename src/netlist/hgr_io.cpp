#include "netlist/hgr_io.hpp"

#include <charconv>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "hypergraph/builder.hpp"
#include "util/assert.hpp"

namespace fpart {

void write_hgr(std::ostream& os, const Hypergraph& h) {
  os << "% fpart-hgr v1";
  if (h.num_terminals() > 0) os << " fpart-terminals";
  os << '\n';
  os << h.num_nets() << ' ' << h.num_nodes() << " 10\n";
  for (NetId e = 0; e < h.num_nets(); ++e) {
    bool first = true;
    for (NodeId v : h.pins(e)) {
      if (!first) os << ' ';
      os << (v + 1);  // hMETIS ids are 1-based
      first = false;
    }
    os << '\n';
  }
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    os << h.node_size(v) << '\n';
  }
}

void write_hgr_file(const std::string& path, const Hypergraph& h) {
  std::ofstream os(path);
  FPART_REQUIRE(os.good(), "cannot open for writing: " + path);
  write_hgr(os, h);
  FPART_REQUIRE(os.good(), "write failed: " + path);
}

namespace {

// Returns the next non-comment, non-empty line; false at EOF.
bool next_data_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    std::size_t i = line.find_first_not_of(" \t\r");
    if (i == std::string::npos) continue;
    if (line[i] == '%') continue;
    return true;
  }
  return false;
}

// Splits a data line into whitespace-separated tokens.
std::vector<std::string_view> tokenize(const std::string& line) {
  std::vector<std::string_view> tokens;
  const char* const data = line.data();
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) {
      ++i;
    }
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != '\r') {
      ++i;
    }
    if (i > start) tokens.emplace_back(data + start, i - start);
  }
  return tokens;
}

// Strict decimal parse of one token. Unlike istream extraction this
// rejects negative values for unsigned targets (no silent wrap-around)
// and trailing garbage ("10abc"), and never throws anything but
// ParseError.
std::uint64_t parse_u64(std::string_view token, const char* what) {
  std::uint64_t out = 0;
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(),
                                   out);
  FPART_PARSE_REQUIRE(ec == std::errc() &&
                          ptr == token.data() + token.size(),
                      std::string("hgr: ") + what + " is not a valid "
                          "non-negative integer: '" + std::string(token) +
                          "'");
  return out;
}

}  // namespace

Hypergraph read_hgr(std::istream& is) {
  // Upper bound on the declared node/net counts. The counts drive
  // allocations before any pin data is validated, so an absurd header
  // (or one istream would silently wrap a negative number into) must be
  // rejected up front instead of aborting on allocation failure.
  constexpr std::uint64_t kMaxCount = 1ull << 24;  // 16.7M nodes / nets

  std::string line;
  FPART_PARSE_REQUIRE(next_data_line(is, line), "hgr: empty file");
  const std::vector<std::string_view> header = tokenize(line);
  FPART_PARSE_REQUIRE(header.size() == 2 || header.size() == 3,
                      "hgr: header must be '<nets> <nodes> [fmt]'");
  const std::uint64_t num_nets = parse_u64(header[0], "net count");
  const std::uint64_t num_nodes = parse_u64(header[1], "node count");
  FPART_PARSE_REQUIRE(num_nets <= kMaxCount && num_nodes <= kMaxCount,
                      "hgr: header counts implausibly large");
  const std::uint64_t fmt =
      header.size() == 3 ? parse_u64(header[2], "fmt code") : 0;
  FPART_PARSE_REQUIRE(fmt == 0 || fmt == 1 || fmt == 10 || fmt == 11,
                      "hgr: fmt must be one of 0, 1, 10, 11");
  const bool net_weights = fmt == 1 || fmt == 11;
  const bool node_weights = fmt == 10 || fmt == 11;

  std::vector<std::vector<std::uint64_t>> nets;
  nets.reserve(static_cast<std::size_t>(num_nets));
  for (std::uint64_t e = 0; e < num_nets; ++e) {
    FPART_PARSE_REQUIRE(next_data_line(is, line), "hgr: missing net line");
    const std::vector<std::string_view> tokens = tokenize(line);
    std::size_t t = 0;
    if (net_weights) {
      // The library's cut metric is unweighted; accept weight-1 files
      // (written by common converters) and reject real weights loudly
      // rather than silently dropping information.
      FPART_PARSE_REQUIRE(!tokens.empty(), "hgr: missing net weight");
      const std::uint64_t w = parse_u64(tokens[t++], "net weight");
      FPART_PARSE_REQUIRE(w == 1,
                          "hgr: weighted nets are not supported (all net "
                          "weights must be 1)");
    }
    std::vector<std::uint64_t>& pins = nets.emplace_back();
    pins.reserve(tokens.size() - t);
    for (; t < tokens.size(); ++t) {
      const std::uint64_t pin = parse_u64(tokens[t], "pin id");
      FPART_PARSE_REQUIRE(pin >= 1 && pin <= num_nodes,
                          "hgr: pin id out of range");
      pins.push_back(pin - 1);
    }
    FPART_PARSE_REQUIRE(!pins.empty(), "hgr: empty net line");
  }

  std::vector<std::uint32_t> weights(static_cast<std::size_t>(num_nodes), 1);
  if (node_weights) {
    for (std::uint64_t v = 0; v < num_nodes; ++v) {
      FPART_PARSE_REQUIRE(next_data_line(is, line),
                          "hgr: missing node weight");
      const std::vector<std::string_view> tokens = tokenize(line);
      FPART_PARSE_REQUIRE(tokens.size() == 1,
                          "hgr: node weight line must hold exactly one "
                          "number");
      const std::uint64_t w = parse_u64(tokens[0], "node weight");
      // Node weights are stored as uint32; a larger value would silently
      // wrap (4294967297 -> 1, and 4294967296 -> 0 would even turn the
      // node into a terminal).
      FPART_PARSE_REQUIRE(
          w <= std::numeric_limits<std::uint32_t>::max(),
          "hgr: node weight out of range [0, 4294967295]");
      weights[v] = static_cast<std::uint32_t>(w);
    }
  }
  FPART_PARSE_REQUIRE(!next_data_line(is, line), "hgr: trailing data");

  HypergraphBuilder b;
  for (std::uint64_t v = 0; v < num_nodes; ++v) {
    if (weights[v] == 0) {
      b.add_terminal();
    } else {
      b.add_cell(weights[v]);
    }
  }
  for (auto& pins : nets) {
    std::vector<NodeId> ids(pins.begin(), pins.end());
    b.add_net(ids);
  }
  return std::move(b).build();
}

Hypergraph read_hgr_file(const std::string& path) {
  std::ifstream is(path);
  FPART_REQUIRE(is.good(), "cannot open for reading: " + path);
  return read_hgr(is);
}

}  // namespace fpart
