#include "netlist/mcnc.hpp"

#include <array>

#include "netlist/generator.hpp"
#include "util/assert.hpp"

namespace fpart::mcnc {

namespace {

// Table 1 of the paper, verbatim.
constexpr std::array<CircuitSpec, 10> kCircuits = {{
    {"c3540", 72, 373, 283},
    {"c5315", 301, 535, 377},
    {"c6288", 64, 833, 833},
    {"c7552", 313, 611, 489},
    {"s5378", 86, 500, 381},
    {"s9234", 43, 565, 454},
    {"s13207", 154, 1038, 915},
    {"s15850", 102, 1013, 842},
    {"s38417", 136, 2763, 2221},
    {"s38584", 292, 3956, 2904},
}};

// FNV-1a over the circuit name so seeds are stable across runs and
// independent of table order.
std::uint64_t name_hash(std::string_view name) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

std::span<const CircuitSpec> circuits() { return kCircuits; }

const CircuitSpec& circuit(std::string_view name) {
  for (const auto& spec : kCircuits) {
    if (spec.name == name) return spec;
  }
  FPART_OPTION_REQUIRE(false, "unknown MCNC circuit: " + std::string(name));
  return kCircuits[0];  // unreachable
}

Hypergraph generate(const CircuitSpec& spec, Family family,
                    std::uint64_t seed_salt) {
  GeneratorConfig config;
  config.num_cells = spec.clbs(family);
  config.num_terminals = spec.iobs;
  config.cell_size = 1;
  config.seed = name_hash(spec.name) ^
                (family == Family::kXC2000 ? 0x2000u : 0x3000u) ^
                (seed_salt * 0x9E3779B97F4A7C15ull);
  // Combinational ISCAS85 circuits (c*) are adder/multiplier-like with
  // strong local structure; sequential ISCAS89 circuits (s*) have wider
  // control nets. Reflect that mildly in the locality decay.
  config.locality_decay = spec.name[0] == 'c' ? 0.35 : 0.45;
  return generate_circuit(config);
}

Hypergraph generate(std::string_view name, Family family,
                    std::uint64_t seed_salt) {
  return generate(circuit(name), family, seed_salt);
}

}  // namespace fpart::mcnc
