// Rent's-rule analysis: empirical estimate of the Rent exponent p in
// T = t · B^p (region pin count vs region cell count).
//
// Technology-mapped circuits obey Rent's rule with p ≈ 0.5–0.75; that
// locality is precisely what lets min-cut partitioners find small cuts,
// and what the synthetic MCNC stand-ins must reproduce for the paper's
// relative results to transfer. The estimator performs recursive FM
// bisection, samples (cells, pins) for every region at every level, and
// fits the exponent by least squares in log-log space.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace fpart {

struct RentSample {
  std::uint32_t level = 0;
  std::uint64_t cells = 0;
  std::uint64_t pins = 0;
};

struct RentEstimate {
  /// Fitted Rent exponent p (slope in log-log space).
  double exponent = 0.0;
  /// Fitted Rent coefficient t (average pins of a single cell).
  double coefficient = 0.0;
  /// All (region size, region pins) samples used in the fit.
  std::vector<RentSample> samples;
};

struct RentConfig {
  /// Stop splitting when regions drop below this many cells.
  std::uint32_t min_region = 6;
  /// Maximum bisection levels.
  std::uint32_t max_levels = 10;
  /// Regions smaller than this are excluded from the fit (boundary
  /// effects dominate tiny regions).
  std::uint32_t min_fit_cells = 4;
  std::uint64_t seed = 1;
};

/// Estimates the Rent exponent of `h`. Deterministic in the seed.
RentEstimate estimate_rent(const Hypergraph& h, const RentConfig& config = {});

}  // namespace fpart
