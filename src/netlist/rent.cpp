#include "netlist/rent.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "fm/fm_bipartitioner.hpp"
#include "partition/partition.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fpart {

RentEstimate estimate_rent(const Hypergraph& h, const RentConfig& config) {
  FPART_REQUIRE(config.min_region >= 2, "min_region must be >= 2");
  RentEstimate out;
  if (h.num_interior() < config.min_region) return out;

  Partition p(h, 1);
  Rng rng(config.seed);

  // Level 0 sample: the whole circuit.
  out.samples.push_back(
      RentSample{0, p.block_node_count(0), p.block_pins(0)});

  std::vector<BlockId> active{0};
  for (std::uint32_t level = 1;
       level <= config.max_levels && !active.empty(); ++level) {
    std::vector<BlockId> next;
    for (BlockId b : active) {
      if (p.block_node_count(b) < config.min_region) continue;
      // Split b in half: random half seeds the new block, FM refines.
      const BlockId nb = p.add_block();
      std::vector<NodeId> members = p.block_nodes(b);
      rng.shuffle(members);
      for (std::size_t i = 0; i < members.size() / 2; ++i) {
        p.move(members[i], nb);
      }
      const double target = static_cast<double>(p.block_size(b)) +
                            static_cast<double>(p.block_size(nb));
      const SizeWindow window{0.40 * target / 2.0, 1.25 * target / 2.0};
      FmBipartitioner fm(p, b, nb);
      fm.run(window, window);
      next.push_back(b);
      next.push_back(nb);
    }
    for (BlockId b : next) {
      out.samples.push_back(
          RentSample{level, p.block_node_count(b), p.block_pins(b)});
    }
    active = std::move(next);
  }

  // Least-squares fit of log2(pins) = log2(t) + p · log2(cells).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (const RentSample& s : out.samples) {
    if (s.cells < config.min_fit_cells || s.pins == 0) continue;
    const double x = std::log2(static_cast<double>(s.cells));
    const double y = std::log2(static_cast<double>(s.pins));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n >= 2) {
    const double denom = static_cast<double>(n) * sxx - sx * sx;
    if (std::abs(denom) > 1e-12) {
      out.exponent = (static_cast<double>(n) * sxy - sx * sy) / denom;
      out.coefficient =
          std::exp2((sy - out.exponent * sx) / static_cast<double>(n));
    }
  }
  return out;
}

}  // namespace fpart
