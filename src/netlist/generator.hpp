// Synthetic CLB-level netlist generator with Rent-style locality.
//
// Real technology-mapped circuits have two properties the partitioning
// algorithms exploit: (1) a fanout distribution dominated by 2–5 pin nets
// with a thin high-fanout tail, and (2) hierarchical locality — most nets
// connect cells that are "close" in the design hierarchy, so good small
// cuts exist (Rent's rule). The generator reproduces both:
//
//  * cells are leaves of an implicit balanced `branching`-ary hierarchy
//    over the index range [0, num_cells);
//  * each net picks a source cell, then a hierarchy level by a truncated
//    geometric distribution (decay `locality_decay`; level 0 = leaf
//    cluster, deeper levels = wider scopes), and draws its remaining pins
//    uniformly from the chosen ancestor cluster;
//  * terminal pads are attached to distinct nets spread across the
//    hierarchy (each pad has exactly one net, matching how the partition
//    layer counts external I/Os);
//  * a post-pass guarantees the circuit is connected and every cell has
//    at least one net.
//
// The output is deterministic in the seed.
#pragma once

#include <cstdint>

#include "hypergraph/hypergraph.hpp"
#include "util/rng.hpp"

namespace fpart {

struct GeneratorConfig {
  std::uint32_t num_cells = 1000;
  std::uint32_t num_terminals = 50;
  /// nets ≈ net_ratio * num_cells (before the connectivity post-pass).
  double net_ratio = 1.05;
  /// All cells have this size (1 = CLB-level netlist).
  std::uint32_t cell_size = 1;
  /// Arity of the implicit hierarchy.
  std::uint32_t branching = 4;
  /// Cells per leaf cluster.
  std::uint32_t leaf_size = 12;
  /// P(level = l) ∝ locality_decay^l; smaller = more local nets.
  double locality_decay = 0.4;
  /// Fraction of nets drawn from the high-fanout tail (up to
  /// max_fanout pins).
  double high_fanout_fraction = 0.03;
  std::uint32_t max_fanout = 24;
  std::uint64_t seed = 1;
};

/// Generates a circuit per the config. The result has exactly
/// `num_cells` interior nodes and `num_terminals` terminal pads.
Hypergraph generate_circuit(const GeneratorConfig& config);

}  // namespace fpart
