#include "netlist/generator.hpp"

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "hypergraph/builder.hpp"
#include "util/assert.hpp"

namespace fpart {

namespace {

// Union-find over cell ids for the connectivity post-pass.
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

// Number of hierarchy levels needed to cover n cells.
std::uint32_t hierarchy_levels(std::uint32_t n, std::uint32_t leaf,
                               std::uint32_t branching) {
  std::uint32_t levels = 1;
  std::uint64_t span = leaf;
  while (span < n) {
    span *= branching;
    ++levels;
  }
  return levels;
}

// Fanout of a regular (non-tail) net: 2–5 pins dominate, small chance of
// 6–10. Matches mapped-netlist profiles (most nets are 2–3 pins).
std::uint32_t sample_fanout(Rng& rng) {
  const double r = rng.real();
  if (r < 0.50) return 2;
  if (r < 0.75) return 3;
  if (r < 0.88) return 4;
  if (r < 0.95) return 5;
  return static_cast<std::uint32_t>(rng.uniform(6, 10));
}

}  // namespace

Hypergraph generate_circuit(const GeneratorConfig& config) {
  FPART_REQUIRE(config.num_cells >= 2, "need at least two cells");
  FPART_REQUIRE(config.cell_size >= 1, "cell_size must be >= 1");
  FPART_REQUIRE(config.branching >= 2, "branching must be >= 2");
  FPART_REQUIRE(config.leaf_size >= 2, "leaf_size must be >= 2");
  FPART_REQUIRE(config.net_ratio > 0.0, "net_ratio must be positive");
  FPART_REQUIRE(config.max_fanout >= 8, "max_fanout must be >= 8");

  Rng rng(config.seed);
  const std::uint32_t n = config.num_cells;
  const std::uint32_t levels =
      hierarchy_levels(n, config.leaf_size, config.branching);

  std::vector<std::vector<NodeId>> nets;
  const auto target_nets = static_cast<std::size_t>(
      config.net_ratio * static_cast<double>(n) + 0.5);
  nets.reserve(target_nets + 16);

  std::vector<std::size_t> cell_degree(n, 0);
  Dsu dsu(n);

  auto emit_net = [&](std::vector<NodeId> pins) {
    for (NodeId p : pins) {
      ++cell_degree[p];
      dsu.unite(pins[0], p);
    }
    nets.push_back(std::move(pins));
  };

  for (std::size_t i = 0; i < target_nets; ++i) {
    const auto source = static_cast<NodeId>(rng.index(n));
    const std::size_t level =
        rng.geometric_level(levels, config.locality_decay);
    // Cluster [lo, hi) = ancestor of `source` at the chosen level.
    std::uint64_t span = config.leaf_size;
    for (std::size_t l = 0; l < level; ++l) span *= config.branching;
    const std::uint64_t lo = (source / span) * span;
    const std::uint64_t hi = std::min<std::uint64_t>(lo + span, n);
    const auto cluster = static_cast<std::size_t>(hi - lo);

    const bool tail = rng.chance(config.high_fanout_fraction);
    std::uint32_t fanout =
        tail ? static_cast<std::uint32_t>(rng.uniform(8, config.max_fanout))
             : sample_fanout(rng);
    fanout = std::min<std::uint32_t>(fanout,
                                     static_cast<std::uint32_t>(cluster));
    if (fanout < 2 && cluster >= 2) fanout = 2;

    std::vector<NodeId> pins{source};
    for (std::uint32_t p = 1; p < fanout; ++p) {
      pins.push_back(static_cast<NodeId>(lo + rng.index(cluster)));
    }
    // The builder dedupes; a net collapsing to one pin is still valid.
    emit_net(std::move(pins));
  }

  // Every cell must appear in at least one net.
  for (NodeId v = 0; v < n; ++v) {
    if (cell_degree[v] == 0) {
      emit_net({v, static_cast<NodeId>((v + 1) % n)});
    }
  }

  // Connect components with a chain of 2-pin nets between representatives.
  std::vector<NodeId> reps;
  {
    std::vector<std::uint8_t> seen_root(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      const std::size_t root = dsu.find(v);
      if (!seen_root[root]) {
        seen_root[root] = 1;
        reps.push_back(v);
      }
    }
  }
  for (std::size_t i = 1; i < reps.size(); ++i) {
    emit_net({reps[i - 1], reps[i]});
  }

  // Attach each terminal pad to a distinct net, spread uniformly.
  FPART_REQUIRE(config.num_terminals <= nets.size(),
                "more terminals than nets; raise net_ratio");
  std::vector<std::size_t> net_order(nets.size());
  std::iota(net_order.begin(), net_order.end(), 0);
  rng.shuffle(net_order);

  HypergraphBuilder b;
  for (NodeId v = 0; v < n; ++v) {
    b.add_cell(config.cell_size, "c" + std::to_string(v));
  }
  for (std::uint32_t t = 0; t < config.num_terminals; ++t) {
    const NodeId pad = b.add_terminal("pad" + std::to_string(t));
    nets[net_order[t]].push_back(pad);
  }
  for (std::size_t e = 0; e < nets.size(); ++e) {
    b.add_net(nets[e], "n" + std::to_string(e));
  }
  return std::move(b).build();
}

}  // namespace fpart
