// MCNC Partitioning93 benchmark suite (paper §4, Table 1), reproduced
// synthetically.
//
// The paper evaluates on ten MCNC circuits technology-mapped to Xilinx
// XC2000 and XC3000 CLBs. The mapped netlists themselves are no longer
// distributed (the NCSU benchmark archive referenced as [13] is defunct),
// so this module substitutes, per circuit and family, a synthetic
// CLB-level netlist with EXACTLY the published #IOBs and #CLBs and a
// realistic net structure (see generator.hpp). The lower bound M of
// Tables 2–5 depends only on these totals and therefore reproduces
// exactly; see DESIGN.md §2 for the full substitution rationale.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "device/device.hpp"
#include "hypergraph/hypergraph.hpp"

namespace fpart::mcnc {

/// One row of the paper's Table 1.
struct CircuitSpec {
  std::string_view name;
  std::uint32_t iobs;         // primary I/O pads
  std::uint32_t clbs_xc2000;  // CLBs when mapped to the XC2000 family
  std::uint32_t clbs_xc3000;  // CLBs when mapped to the XC3000 family

  std::uint32_t clbs(Family f) const {
    return f == Family::kXC2000 ? clbs_xc2000 : clbs_xc3000;
  }
};

/// All ten circuits in the paper's table order
/// (c3540, c5315, c6288, c7552, s5378, s9234, s13207, s15850, s38417,
/// s38584).
std::span<const CircuitSpec> circuits();

/// Lookup by name. Throws PreconditionError if unknown.
const CircuitSpec& circuit(std::string_view name);

/// Generates the synthetic stand-in netlist for `spec` mapped to
/// `family`. Deterministic: the seed is derived from the circuit name,
/// the family and `seed_salt` only.
Hypergraph generate(const CircuitSpec& spec, Family family,
                    std::uint64_t seed_salt = 0);

/// Convenience overload by name.
Hypergraph generate(std::string_view name, Family family,
                    std::uint64_t seed_salt = 0);

}  // namespace fpart::mcnc
