// hMETIS-compatible hypergraph file IO with an FPART extension for
// terminal pads.
//
// Format written (readable by hMETIS tooling):
//   % comment lines start with '%'
//   <num_nets> <num_nodes> 10        (fmt 10: node weights present)
//   <pin> <pin> ...                  one line per net, 1-indexed node ids
//   <weight>                         one line per node
// Extension: node weight 0 marks a terminal pad (hMETIS itself requires
// positive weights; fpart files carry '% fpart-terminals' in the header
// to flag the convention).
//
// The reader additionally accepts fmt 0 (no weights), fmt 1 and fmt 11
// (net weights — unit weights only; the cut metric here is unweighted
// and real weights are rejected loudly rather than dropped).
//
// The full dialect, including the strict-tokenization rules the reader
// enforces, is documented in docs/FORMATS.md.
#pragma once

#include <iosfwd>
#include <string>

#include "hypergraph/hypergraph.hpp"

namespace fpart {

/// Serializes `h` in the format above.
void write_hgr(std::ostream& os, const Hypergraph& h);
void write_hgr_file(const std::string& path, const Hypergraph& h);

/// Parses the format above. Throws ParseError on malformed input: bad or
/// implausible counts, out-of-range pins or node weights, non-numeric
/// tokens, missing lines, trailing garbage. Never wraps values silently
/// and never crashes on hostile input — every reject path is a typed
/// error (see util/error.hpp). read_hgr_file additionally throws
/// PreconditionError when the file cannot be opened.
Hypergraph read_hgr(std::istream& is);
Hypergraph read_hgr_file(const std::string& path);

}  // namespace fpart
