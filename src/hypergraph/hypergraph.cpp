#include "hypergraph/hypergraph.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace fpart {

void Hypergraph::validate() const {
  const std::size_t n = num_nodes();
  const std::size_t m = num_nets();
  FPART_ASSERT(node_size_.size() == n);
  FPART_ASSERT(is_terminal_.size() == n);
  FPART_ASSERT(node_offset_.size() == n + 1);
  FPART_ASSERT(net_offset_.size() == (m == 0 ? net_offset_.size() : m + 1));
  FPART_ASSERT(nets_flat_.size() == pins_flat_.size());

  // Terminal nodes have size 0; interior nodes size >= 1; totals match.
  std::uint64_t total = 0;
  std::size_t interior = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (is_terminal_[v]) {
      FPART_ASSERT_MSG(node_size_[v] == 0, "terminal with nonzero size");
    } else {
      FPART_ASSERT_MSG(node_size_[v] >= 1, "interior node with zero size");
      total += node_size_[v];
      ++interior;
    }
  }
  FPART_ASSERT(total == total_size_);
  FPART_ASSERT(interior == num_interior_);
  FPART_ASSERT(terminal_ids_.size() == n - interior);

  // Pin ordering invariant and per-net interior counts.
  for (std::size_t e = 0; e < m; ++e) {
    auto p = pins(static_cast<NetId>(e));
    FPART_ASSERT_MSG(!p.empty(), "empty net");
    const std::uint32_t ni = net_interior_pins_[e];
    FPART_ASSERT(ni <= p.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
      FPART_ASSERT(p[i] < n);
      FPART_ASSERT_MSG(is_terminal_[p[i]] == (i >= ni),
                       "interior-first pin ordering violated");
    }
    // No duplicate pins.
    std::vector<NodeId> sorted(p.begin(), p.end());
    std::sort(sorted.begin(), sorted.end());
    FPART_ASSERT_MSG(
        std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
        "duplicate pin in net");
  }

  // CSR symmetry: v in pins(e) <=> e in nets(v).
  std::vector<std::size_t> deg(n, 0);
  for (std::size_t e = 0; e < m; ++e) {
    for (NodeId v : pins(static_cast<NetId>(e))) ++deg[v];
  }
  for (std::size_t v = 0; v < n; ++v) {
    FPART_ASSERT(deg[v] == degree(static_cast<NodeId>(v)));
    for (NetId e : nets(static_cast<NodeId>(v))) {
      auto p = pins(e);
      FPART_ASSERT(std::find(p.begin(), p.end(), static_cast<NodeId>(v)) !=
                   p.end());
    }
  }
}

std::uint64_t Hypergraph::structural_digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;  // FNV prime
    }
  };
  mix(num_nodes());
  mix(num_nets());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    mix(node_size_[v] | (static_cast<std::uint64_t>(is_terminal_[v]) << 32));
  }
  for (NetId e = 0; e < num_nets(); ++e) {
    mix(net_interior_pins_[e]);
    for (const NodeId v : pins(e)) mix(v);
  }
  return h;
}

}  // namespace fpart
