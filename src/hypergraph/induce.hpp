// Induced-subcircuit extraction.
//
// Given a subset of interior nodes, builds the standalone subcircuit they
// form. Nets entirely inside the subset are copied as-is. Nets crossing
// the boundary (some pins outside, or carrying primary terminals) are
// copied with their inside pins plus ONE fresh terminal pad representing
// the off-circuit connection — this is exactly how a remainder block "sees"
// the rest of a partition, so extracting a block of a partition yields a
// circuit whose terminal count equals the block's pin count T_b.
#pragma once

#include <span>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace fpart {

struct InducedCircuit {
  Hypergraph graph;
  /// original node id -> new node id (kInvalidNode for nodes not taken).
  std::vector<NodeId> to_new;
  /// new interior node id -> original node id.
  std::vector<NodeId> to_old;
};

/// Extracts the subcircuit induced by `nodes` (interior nodes of `h`;
/// duplicates rejected). Nets with no pin in the subset are dropped.
InducedCircuit induce(const Hypergraph& h, std::span<const NodeId> nodes);

}  // namespace fpart
