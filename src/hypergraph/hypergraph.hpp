// Immutable CSR hypergraph — the circuit model of the paper's §2.
//
// H = ({X, Y}, E): interior nodes X (logic cells, weighted by size in
// technology cells), terminal nodes Y (primary I/O pads, size 0), nets E.
// Construct with HypergraphBuilder (builder.hpp); once built the structure
// is immutable and all queries are O(1) or return contiguous spans.
//
// Pin ordering invariant: within each net's pin array, interior pins come
// first, terminal pins after — interior_pins(e) is a prefix of pins(e).
// Partitioning code iterates interior pins only; terminal counts are
// precomputed per net.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hypergraph/types.hpp"

namespace fpart {

class HypergraphBuilder;

class Hypergraph {
 public:
  Hypergraph() = default;

  // --- Node queries -------------------------------------------------------
  std::size_t num_nodes() const { return node_size_.size(); }
  std::size_t num_interior() const { return num_interior_; }
  std::size_t num_terminals() const { return num_nodes() - num_interior_; }
  bool is_terminal(NodeId v) const { return is_terminal_[v]; }
  /// Size in technology cells. 0 for terminals.
  std::uint32_t node_size(NodeId v) const { return node_size_[v]; }
  /// Sum of all interior node sizes (the paper's S0).
  std::uint64_t total_size() const { return total_size_; }
  /// Nets incident to node v.
  std::span<const NetId> nets(NodeId v) const {
    return {nets_flat_.data() + node_offset_[v],
            node_offset_[v + 1] - node_offset_[v]};
  }
  std::size_t degree(NodeId v) const {
    return node_offset_[v + 1] - node_offset_[v];
  }
  const std::string& node_name(NodeId v) const { return node_name_[v]; }

  // --- Net queries --------------------------------------------------------
  std::size_t num_nets() const { return net_offset_.empty() ? 0 : net_offset_.size() - 1; }
  /// All pins of net e (interior pins first, then terminals).
  std::span<const NodeId> pins(NetId e) const {
    return {pins_flat_.data() + net_offset_[e],
            net_offset_[e + 1] - net_offset_[e]};
  }
  /// Interior pins of net e (prefix of pins(e)).
  std::span<const NodeId> interior_pins(NetId e) const {
    return {pins_flat_.data() + net_offset_[e], net_interior_pins_[e]};
  }
  /// Number of interior pins of net e (the paper's P(e)).
  std::uint32_t net_interior_pin_count(NetId e) const {
    return net_interior_pins_[e];
  }
  /// Number of terminal pads on net e.
  std::uint32_t net_terminal_count(NetId e) const {
    return static_cast<std::uint32_t>(net_offset_[e + 1] - net_offset_[e]) -
           net_interior_pins_[e];
  }
  std::size_t net_degree(NetId e) const {
    return net_offset_[e + 1] - net_offset_[e];
  }

  // --- Aggregate stats ----------------------------------------------------
  std::size_t num_pins() const { return pins_flat_.size(); }
  std::size_t max_node_degree() const { return max_node_degree_; }
  std::size_t max_net_degree() const { return max_net_degree_; }
  std::uint32_t max_node_size() const { return max_node_size_; }
  double avg_net_degree() const {
    return num_nets() == 0 ? 0.0
                           : static_cast<double>(num_pins()) /
                                 static_cast<double>(num_nets());
  }

  /// All terminal node ids (the paper's Y0), ascending.
  std::span<const NodeId> terminals() const { return terminal_ids_; }

  /// Checks internal consistency (CSR symmetry, pin ordering, sizes).
  /// Throws InvariantError on corruption. Intended for tests.
  void validate() const;

  /// 64-bit FNV-1a digest of the structure (node sizes, terminal flags,
  /// per-net pin lists). Names are excluded: two graphs with equal
  /// digests partition identically. Used by the flight recorder to bind
  /// an event log to its input (obs/recorder.hpp).
  std::uint64_t structural_digest() const;

 private:
  friend class HypergraphBuilder;

  // Node side.
  std::vector<std::uint32_t> node_size_;
  std::vector<std::uint8_t> is_terminal_;
  std::vector<std::string> node_name_;
  std::vector<std::size_t> node_offset_;  // size num_nodes+1
  std::vector<NetId> nets_flat_;
  std::vector<NodeId> terminal_ids_;

  // Net side.
  std::vector<std::size_t> net_offset_;  // size num_nets+1
  std::vector<NodeId> pins_flat_;
  std::vector<std::uint32_t> net_interior_pins_;
  std::vector<std::string> net_name_;

  std::size_t num_interior_ = 0;
  std::uint64_t total_size_ = 0;
  std::size_t max_node_degree_ = 0;
  std::size_t max_net_degree_ = 0;
  std::uint32_t max_node_size_ = 0;

 public:
  const std::string& net_name(NetId e) const { return net_name_[e]; }
};

}  // namespace fpart
