#include "hypergraph/induce.hpp"

#include <string>

#include "hypergraph/builder.hpp"
#include "util/assert.hpp"

namespace fpart {

InducedCircuit induce(const Hypergraph& h, std::span<const NodeId> nodes) {
  InducedCircuit out;
  out.to_new.assign(h.num_nodes(), kInvalidNode);

  HypergraphBuilder b;
  for (NodeId v : nodes) {
    FPART_REQUIRE(v < h.num_nodes(), "induce: node out of range");
    FPART_REQUIRE(!h.is_terminal(v), "induce: subset must be interior nodes");
    FPART_REQUIRE(out.to_new[v] == kInvalidNode, "induce: duplicate node");
    out.to_new[v] = b.add_cell(h.node_size(v), h.node_name(v));
    out.to_old.push_back(v);
  }

  for (NetId e = 0; e < h.num_nets(); ++e) {
    std::vector<NodeId> pins;
    bool crosses = h.net_terminal_count(e) > 0;
    for (NodeId v : h.interior_pins(e)) {
      if (out.to_new[v] != kInvalidNode) {
        pins.push_back(out.to_new[v]);
      } else {
        crosses = true;
      }
    }
    if (pins.empty()) continue;  // net does not touch the subset
    if (crosses) {
      pins.push_back(b.add_terminal("cut:" + h.net_name(e)));
    }
    b.add_net(pins, h.net_name(e));
  }

  out.graph = std::move(b).build();
  return out;
}

}  // namespace fpart
