#include "hypergraph/builder.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace fpart {

NodeId HypergraphBuilder::add_cell(std::uint32_t size, std::string name) {
  FPART_REQUIRE(size >= 1, "interior node size must be >= 1");
  sizes_.push_back(size);
  terminal_.push_back(0);
  node_names_.push_back(std::move(name));
  return static_cast<NodeId>(sizes_.size() - 1);
}

NodeId HypergraphBuilder::add_terminal(std::string name) {
  sizes_.push_back(0);
  terminal_.push_back(1);
  node_names_.push_back(std::move(name));
  return static_cast<NodeId>(sizes_.size() - 1);
}

NetId HypergraphBuilder::add_net(std::span<const NodeId> pins,
                                 std::string name) {
  FPART_REQUIRE(!pins.empty(), "net must have at least one pin");
  for (NodeId p : pins) {
    FPART_REQUIRE(p < sizes_.size(), "net pin refers to unknown node");
  }
  net_pins_.emplace_back(pins.begin(), pins.end());
  net_names_.push_back(std::move(name));
  return static_cast<NetId>(net_pins_.size() - 1);
}

Hypergraph HypergraphBuilder::build() && {
  Hypergraph h;
  const std::size_t n = sizes_.size();
  h.node_size_ = std::move(sizes_);
  h.is_terminal_ = std::move(terminal_);
  h.node_name_ = std::move(node_names_);
  h.net_name_ = std::move(net_names_);

  for (std::size_t v = 0; v < n; ++v) {
    if (h.is_terminal_[v]) {
      h.terminal_ids_.push_back(static_cast<NodeId>(v));
    } else {
      ++h.num_interior_;
      h.total_size_ += h.node_size_[v];
      h.max_node_size_ = std::max(h.max_node_size_, h.node_size_[v]);
    }
  }

  // Net CSR: dedupe pins, order interior first.
  const std::size_t m = net_pins_.size();
  h.net_offset_.assign(m + 1, 0);
  h.net_interior_pins_.assign(m, 0);
  for (std::size_t e = 0; e < m; ++e) {
    auto& pins = net_pins_[e];
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    // Stable partition: interior pins before terminals.
    std::stable_partition(pins.begin(), pins.end(),
                          [&](NodeId v) { return !h.is_terminal_[v]; });
    std::uint32_t interior = 0;
    for (NodeId v : pins) {
      if (!h.is_terminal_[v]) ++interior;
    }
    h.net_interior_pins_[e] = interior;
    h.net_offset_[e + 1] = h.net_offset_[e] + pins.size();
    h.max_net_degree_ = std::max(h.max_net_degree_, pins.size());
  }
  h.pins_flat_.reserve(h.net_offset_[m]);
  for (const auto& pins : net_pins_) {
    h.pins_flat_.insert(h.pins_flat_.end(), pins.begin(), pins.end());
  }

  // Node CSR (counting sort over the pin list).
  h.node_offset_.assign(n + 1, 0);
  for (std::size_t e = 0; e < m; ++e) {
    for (std::size_t i = h.net_offset_[e]; i < h.net_offset_[e + 1]; ++i) {
      ++h.node_offset_[h.pins_flat_[i] + 1];
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    h.node_offset_[v + 1] += h.node_offset_[v];
    h.max_node_degree_ =
        std::max(h.max_node_degree_,
                 h.node_offset_[v + 1] - h.node_offset_[v]);
  }
  h.nets_flat_.assign(h.pins_flat_.size(), kInvalidNet);
  std::vector<std::size_t> cursor(h.node_offset_.begin(),
                                  h.node_offset_.end() - 1);
  for (std::size_t e = 0; e < m; ++e) {
    for (std::size_t i = h.net_offset_[e]; i < h.net_offset_[e + 1]; ++i) {
      h.nets_flat_[cursor[h.pins_flat_[i]]++] = static_cast<NetId>(e);
    }
  }
  return h;
}

}  // namespace fpart
