#include "hypergraph/traversal.hpp"

#include <deque>

#include "util/assert.hpp"

namespace fpart {

std::vector<std::uint32_t> bfs_distances(const Hypergraph& h, NodeId source,
                                         const NodeFilter& filter) {
  FPART_REQUIRE(source < h.num_nodes(), "bfs source out of range");
  FPART_REQUIRE(!filter || filter(source), "bfs source excluded by filter");
  std::vector<std::uint32_t> dist(h.num_nodes(), kUnreachable);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (NetId e : h.nets(v)) {
      for (NodeId w : h.pins(e)) {
        if (dist[w] != kUnreachable) continue;
        if (filter && !filter(w)) continue;
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

NodeId farthest_interior_node(const Hypergraph& h, NodeId source,
                              const NodeFilter& filter) {
  const auto dist = bfs_distances(h, source, filter);
  NodeId best = kInvalidNode;
  std::uint32_t best_dist = 0;
  bool best_unreachable = false;
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (v == source || h.is_terminal(v)) continue;
    if (filter && !filter(v)) continue;
    const bool unreachable = dist[v] == kUnreachable;
    // Unreachable beats reachable; otherwise larger distance wins.
    const bool better =
        best == kInvalidNode ||
        (unreachable && !best_unreachable) ||
        (unreachable == best_unreachable && !unreachable &&
         dist[v] > best_dist);
    if (better) {
      best = v;
      best_dist = unreachable ? 0 : dist[v];
      best_unreachable = unreachable;
    }
  }
  return best;
}

Components connected_components(const Hypergraph& h) {
  Components out;
  out.id.assign(h.num_nodes(), ~0u);
  for (NodeId start = 0; start < h.num_nodes(); ++start) {
    if (out.id[start] != ~0u) continue;
    const auto comp = static_cast<std::uint32_t>(out.count++);
    std::deque<NodeId> queue{start};
    out.id[start] = comp;
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (NetId e : h.nets(v)) {
        for (NodeId w : h.pins(e)) {
          if (out.id[w] != ~0u) continue;
          out.id[w] = comp;
          queue.push_back(w);
        }
      }
    }
  }
  return out;
}

}  // namespace fpart
