// Fundamental index types shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace fpart {

/// Index of a node (interior cell or terminal pad) in a Hypergraph.
using NodeId = std::uint32_t;
/// Index of a net (hyperedge) in a Hypergraph.
using NetId = std::uint32_t;
/// Index of a block (one FPGA device) in a Partition.
using BlockId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr NetId kInvalidNet = std::numeric_limits<NetId>::max();
inline constexpr BlockId kInvalidBlock = std::numeric_limits<BlockId>::max();

}  // namespace fpart
