// BFS-based traversal utilities over hypergraphs.
//
// Distances are measured in hops where two nodes are adjacent iff they
// share a net. An optional node filter restricts the traversal to a
// subset (used by the constructive bipartitioner to stay inside the
// remainder block).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace fpart {

inline constexpr std::uint32_t kUnreachable = ~0u;

/// Predicate restricting traversal to a node subset. Must be pure.
using NodeFilter = std::function<bool(NodeId)>;

/// BFS distances from `source` to every node (kUnreachable if not
/// reached). If `filter` is set, only nodes satisfying it are visited
/// (the source must satisfy it).
std::vector<std::uint32_t> bfs_distances(const Hypergraph& h, NodeId source,
                                         const NodeFilter& filter = nullptr);

/// The interior node at maximal BFS distance from `source` among nodes
/// satisfying `filter`; unreachable nodes are considered farther than any
/// reachable one (matches the seed-selection intent of the paper's §3.2:
/// pick a node "maximally distant" from the first seed). Ties broken by
/// smallest id for determinism. Returns kInvalidNode if no candidate.
NodeId farthest_interior_node(const Hypergraph& h, NodeId source,
                              const NodeFilter& filter = nullptr);

/// Connected components over all nodes (terminals included); returns a
/// component id per node and the number of components.
struct Components {
  std::vector<std::uint32_t> id;
  std::size_t count = 0;
};
Components connected_components(const Hypergraph& h);

}  // namespace fpart
