// Mutable construction front-end for Hypergraph.
//
// Usage:
//   HypergraphBuilder b;
//   NodeId a = b.add_cell(3, "u1");
//   NodeId p = b.add_terminal("pad0");
//   b.add_net({a, p}, "n0");
//   Hypergraph h = std::move(b).build();
//
// build() deduplicates pins within a net, orders interior pins before
// terminal pins, and constructs both CSR directions. Single-pin nets are
// kept (they matter for terminal I/O accounting); empty nets are rejected.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace fpart {

class HypergraphBuilder {
 public:
  /// Adds an interior logic node of the given size (>= 1 technology cell).
  NodeId add_cell(std::uint32_t size, std::string name = "");

  /// Adds a terminal node (primary I/O pad), size 0.
  NodeId add_terminal(std::string name = "");

  /// Adds a net over the given pins. Duplicate pins are removed in
  /// build(). Requires every pin id to refer to an existing node.
  NetId add_net(std::span<const NodeId> pins, std::string name = "");
  NetId add_net(std::initializer_list<NodeId> pins, std::string name = "") {
    return add_net(std::span<const NodeId>(pins.begin(), pins.size()),
                   std::move(name));
  }

  std::size_t num_nodes() const { return sizes_.size(); }
  std::size_t num_nets() const { return net_pins_.size(); }

  /// Finalizes into an immutable Hypergraph. The builder is consumed.
  Hypergraph build() &&;

 private:
  std::vector<std::uint32_t> sizes_;
  std::vector<std::uint8_t> terminal_;
  std::vector<std::string> node_names_;
  std::vector<std::vector<NodeId>> net_pins_;
  std::vector<std::string> net_names_;
};

}  // namespace fpart
