#include "multilevel/refine.hpp"

#include <algorithm>
#include <vector>

#include "fm/gains.hpp"
#include "obs/recorder.hpp"
#include "obs/timeseries.hpp"
#include "util/assert.hpp"

namespace fpart {

namespace {

/// Dry-run of Partition::move's pin-demand rules for v: f -> to. Returns
/// the summed pin-demand delta of the two touched blocks through
/// `df`/`dt`. O(degree(v)).
void pin_demand_deltas(const Partition& p, NodeId v, BlockId f, BlockId to,
                       int& df, int& dt) {
  const Hypergraph& h = p.graph();
  df = 0;
  dt = 0;
  for (NetId e : h.nets(v)) {
    const std::uint32_t* row = p.net_row(e);
    const std::uint32_t term = h.net_terminal_count(e);
    const std::uint32_t total = h.net_interior_pin_count(e);
    const std::uint32_t old_f = row[f];
    const std::uint32_t old_t = row[to];
    const bool req_f_old = old_f >= 1 && (term > 0 || old_f < total);
    const bool req_t_old = old_t >= 1 && (term > 0 || old_t < total);
    const std::uint32_t new_f = old_f - 1;
    const std::uint32_t new_t = old_t + 1;
    const bool req_f_new = new_f >= 1 && (term > 0 || new_f < total);
    const bool req_t_new = new_t >= 1 && (term > 0 || new_t < total);
    df += static_cast<int>(req_f_new) - static_cast<int>(req_f_old);
    dt += static_cast<int>(req_t_new) - static_cast<int>(req_t_old);
  }
}

}  // namespace

BoundaryRefineStats refine_boundary(Partition& p, const Device& device,
                                    int max_passes, std::uint32_t level) {
  BoundaryRefineStats stats;
  const Hypergraph& h = p.graph();
  const std::uint32_t k = p.num_blocks();
  if (max_passes <= 0 || k < 2) return stats;

  std::vector<std::uint8_t> on_boundary(h.num_nodes());
  std::vector<std::uint8_t> block_seen(k);
  std::vector<BlockId> candidates;
  candidates.reserve(k);

  for (int pass = 0; pass < max_passes; ++pass) {
    ++stats.passes;
    // Only the spec-serialized slots (a = pass index, value = metric)
    // may carry data — the parse round-trip must be lossless. The
    // V-cycle level travels in the timeseries samples below instead.
    obs::record_event(obs::EventKind::kPassBegin, obs::Engine::kMultilevel,
                      static_cast<std::uint32_t>(pass), 0, 0, obs::kNoGain,
                      p.cut_size());

    // Boundary snapshot for this pass: interior pins of cut nets. Moves
    // during the pass do not re-enqueue nodes — the next pass picks up
    // newly exposed boundary cells.
    std::fill(on_boundary.begin(), on_boundary.end(), 0);
    for (NetId e = 0; e < h.num_nets(); ++e) {
      if (p.net_span(e) < 2) continue;
      for (NodeId v : h.interior_pins(e)) on_boundary[v] = 1;
    }

    std::uint32_t moves_this_pass = 0;
    for (NodeId v = 0; v < h.num_nodes(); ++v) {
      if (!on_boundary[v]) continue;
      const BlockId f = p.block_of(v);
      const std::uint32_t s = h.node_size(v);

      // Adjacent blocks (Φ(e,b) > 0 on some incident net), ascending id
      // for a deterministic scan order.
      candidates.clear();
      for (NetId e : h.nets(v)) {
        if (p.net_span(e) < 2) continue;
        const std::uint32_t* row = p.net_row(e);
        for (BlockId b = 0; b < k; ++b) {
          if (b == f || row[b] == 0 || block_seen[b]) continue;
          block_seen[b] = 1;
          candidates.push_back(b);
        }
      }
      if (candidates.empty()) continue;
      std::sort(candidates.begin(), candidates.end());
      for (BlockId b : candidates) block_seen[b] = 0;

      BlockId best_to = kInvalidBlock;
      int best_gain = 0;
      int best_pin_delta = 0;
      for (const BlockId to : candidates) {
        const int gain = move_gain(p, v, to);
        if (gain < 0) continue;
        if (!device.size_ok(p.block_size(to) + s)) continue;
        int df = 0;
        int dt = 0;
        pin_demand_deltas(p, v, f, to, df, dt);
        const int pin_delta = df + dt;
        // Strict lexicographic improvement on (cut, total pin demand):
        // the potential function that guarantees termination.
        if (gain == 0 && pin_delta >= 0) continue;
        const std::int64_t pins_f =
            static_cast<std::int64_t>(p.block_pins(f)) + df;
        const std::int64_t pins_t =
            static_cast<std::int64_t>(p.block_pins(to)) + dt;
        if (!device.pins_ok(static_cast<std::uint64_t>(pins_f)) ||
            !device.pins_ok(static_cast<std::uint64_t>(pins_t))) {
          continue;
        }
        if (best_to == kInvalidBlock || gain > best_gain ||
            (gain == best_gain && pin_delta < best_pin_delta)) {
          best_to = to;
          best_gain = gain;
          best_pin_delta = pin_delta;
        }
      }
      if (best_to == kInvalidBlock) continue;
      if (obs::recorder_enabled()) {
        obs::Recorder::instance().stage_gain(best_gain);
      }
      p.move(v, best_to);
      ++moves_this_pass;
      stats.cut_gain += best_gain;
    }

    stats.moves += moves_this_pass;
    obs::record_event(obs::EventKind::kPassEnd, obs::Engine::kMultilevel,
                      moves_this_pass, 0, moves_this_pass > 0 ? 1u : 0u,
                      obs::kNoGain, p.cut_size());
    if (obs::timeseries_enabled()) {
      obs::sample_point(obs::SampleKind::kPass, obs::Engine::kMultilevel,
                        level, p.cut_size(), p.cut_size(),
                        p.count_feasible(device), p.num_blocks(),
                        moves_this_pass, 0, 0);
    }
    if (moves_this_pass == 0) break;
  }
  return stats;
}

}  // namespace fpart
