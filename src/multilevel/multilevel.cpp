#include "multilevel/multilevel.hpp"

#include <algorithm>
#include <vector>

#include "core/solve.hpp"
#include "multilevel/coarsener.hpp"
#include "multilevel/refine.hpp"
#include "obs/phase.hpp"
#include "obs/timeseries.hpp"
#include "partition/audit.hpp"
#include "partition/partition.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace fpart {

PartitionResult MultilevelPartitioner::run(const Hypergraph& h,
                                           const Device& device) const {
  obs::ScopedPhase phase("multilevel.run");
  FPART_OPTION_REQUIRE(options_.inner != Method::kMultilevel,
                       "multilevel inner method must not be multilevel");
  Timer timer;
  CpuTimer cpu_timer;
  const std::uint32_t m = lower_bound_devices(h, device);

  CoarsenConfig coarsen_config = options_.coarsen;
  if (coarsen_config.max_cluster_size == 0) {
    coarsen_config.max_cluster_size =
        std::max(2u, static_cast<std::uint32_t>(device.s_max() / 16.0));
  }
  const std::uint32_t coarsest_cells =
      options_.coarsest_max_cells != 0
          ? options_.coarsest_max_cells
          : std::max<std::uint32_t>(128, 32 * m);

  // Descend: heavy-edge matching until the circuit is small, the shrink
  // stalls, or the level cap is reached.
  std::vector<Coarsening> ladder;
  const Hypergraph* current = &h;
  for (std::uint32_t level = 0; level < options_.max_levels; ++level) {
    if (current->num_interior() <= coarsest_cells) break;
    obs::ScopedPhase coarsen_phase("multilevel.coarsen");
    Coarsening c = coarsen_heavy_edge(*current, coarsen_config);
    const double shrink = static_cast<double>(c.coarse.num_interior()) /
                          static_cast<double>(current->num_interior());
    if (shrink >= options_.min_shrink) break;  // matching stall
    ladder.push_back(std::move(c));
    current = &ladder.back().coarse;
  }

  // Coarsest-level solve through the facade: the inner engine records
  // into the same event log / phase tree / timeseries as the V-cycle,
  // exactly as if it were called directly on the coarse circuit.
  PartitionResult coarse_result;
  {
    obs::ScopedPhase solve_phase("multilevel.solve");
    SolveRequest req;
    req.method = options_.inner;
    req.options = options_.fpart;
    coarse_result = solve(*current, device, req);
  }
  bool cancelled = coarse_result.cancelled;
  if (!cancelled) {
    FPART_ASSERT_MSG(coarse_result.feasible,
                     "multilevel: coarsest-level result must be feasible");
  }
  std::uint32_t iterations = coarse_result.iterations;

  // Ascend: project one level at a time, boundary-refine, audit.
  std::vector<BlockId> assignment = coarse_result.assignment;
  std::uint32_t level_idx = 0;
  for (auto it = ladder.rbegin(); it != ladder.rend(); ++it) {
    ++level_idx;
    assignment = it->project(assignment);
    // The projected assignment refers to this coarsening's fine side:
    // the original circuit for the outermost coarsening, else the
    // next-outer coarse graph.
    const Hypergraph& target =
        (it + 1 == ladder.rend()) ? h : (it + 1)->coarse;
    Partition p(target, assignment, coarse_result.k);
    std::uint64_t level_moves = 0;
    if (!cancelled) {
      FPART_ASSERT_MSG(p.classify(device) == FeasibilityClass::kFeasible,
                       "multilevel: projected partition must stay feasible");
      {
        obs::ScopedPhase refine_phase("multilevel.refine");
        const BoundaryRefineStats rs =
            refine_boundary(p, device, options_.refine_passes, level_idx);
        level_moves = rs.moves;
      }
      if (audit_enabled()) audit_partition(p, "multilevel.level");
      if (cancel_requested(options_.fpart.cancel)) cancelled = true;
    }
    ++iterations;
    if (obs::timeseries_enabled()) {
      obs::sample_point(obs::SampleKind::kPass, obs::Engine::kMultilevel,
                        level_idx, p.cut_size(), p.cut_size(),
                        p.count_feasible(device), p.num_blocks(),
                        static_cast<std::uint32_t>(std::min<std::uint64_t>(
                            level_moves, UINT32_MAX)),
                        0, 0);
    }
    assignment = p.snapshot().assignment;
  }

  // Materialize the final fine partition for the result record (this
  // also rewrites the event-log footer, so it describes the FINE
  // partition — the coarse solve's footer is superseded).
  Partition p(h, assignment, coarse_result.k);
  if (!cancelled) {
    FPART_ASSERT_MSG(p.classify(device) == FeasibilityClass::kFeasible,
                     "multilevel: final partition must be feasible");
  }
  PartitionResult result =
      summarize_partition(p, device, m, iterations, timer.elapsed_seconds(),
                          cpu_timer.elapsed_seconds());
  result.cancelled = cancelled;
  return result;
}

}  // namespace fpart
