#include "multilevel/coarsener.hpp"

#include <algorithm>
#include <vector>

#include "hypergraph/builder.hpp"
#include "util/assert.hpp"

namespace fpart {

namespace {

/// Interior nodes in ascending-degree buckets, ascending id within each
/// bucket. A counting sort keyed on degree: stable over the id scan, so
/// the order is fully deterministic.
std::vector<NodeId> degree_bucket_order(const Hypergraph& h) {
  const std::size_t n = h.num_nodes();
  const std::size_t max_deg = h.max_node_degree();
  std::vector<std::size_t> bucket_start(max_deg + 2, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (!h.is_terminal(v)) ++bucket_start[h.degree(v) + 1];
  }
  for (std::size_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<NodeId> order(h.num_interior());
  for (NodeId v = 0; v < n; ++v) {
    if (!h.is_terminal(v)) order[bucket_start[h.degree(v)]++] = v;
  }
  return order;
}

/// Nets above this pin count are skipped while rating: each contributes
/// at most 1/(kRatingNetCap−1) per neighbour — noise — while costing
/// O(|e|²) over a pass. Matching quality is unaffected in practice and
/// the cap keeps pathological hub nets from quadratic blowup.
constexpr std::size_t kRatingNetCap = 256;

}  // namespace

Coarsening coarsen_heavy_edge(const Hypergraph& fine,
                              const CoarsenConfig& config) {
  const std::size_t n = fine.num_nodes();
  std::vector<NodeId> match(n, kInvalidNode);

  const std::vector<NodeId> order = degree_bucket_order(fine);

  // Heavy-edge matching: rate each unmatched interior neighbour of v by
  // Σ 1/(|e|−1) over shared nets, pick the heaviest that fits the size
  // cap (ties: lower node id).
  std::vector<double> weight(n, 0.0);
  std::vector<NodeId> touched;
  for (const NodeId v : order) {
    if (match[v] != kInvalidNode) continue;
    touched.clear();
    for (NetId e : fine.nets(v)) {
      const auto pins = fine.interior_pins(e);
      if (pins.size() < 2 || pins.size() > kRatingNetCap) continue;
      const double w = 1.0 / static_cast<double>(fine.net_degree(e) - 1);
      for (NodeId u : pins) {
        if (u == v || match[u] != kInvalidNode) continue;
        if (weight[u] == 0.0) touched.push_back(u);
        weight[u] += w;
      }
    }
    NodeId best = kInvalidNode;
    for (NodeId u : touched) {
      if (config.max_cluster_size != 0 &&
          fine.node_size(v) + fine.node_size(u) > config.max_cluster_size) {
        continue;
      }
      if (best == kInvalidNode || weight[u] > weight[best] ||
          (weight[u] == weight[best] && u < best)) {
        best = u;
      }
    }
    if (best != kInvalidNode) {
      match[v] = best;
      match[best] = v;
    }
    for (NodeId u : touched) weight[u] = 0.0;
  }

  // Build the coarse circuit. Cell ids are assigned in ascending order of
  // each pair's lower fine id, mirroring cluster/coarsen.cpp, so the
  // mapping is independent of the visit order above.
  Coarsening out;
  out.fine_to_coarse.assign(n, kInvalidNode);
  HypergraphBuilder b;
  for (NodeId v = 0; v < n; ++v) {
    if (fine.is_terminal(v)) continue;
    if (out.fine_to_coarse[v] != kInvalidNode) continue;  // already merged
    std::uint32_t size = fine.node_size(v);
    if (match[v] != kInvalidNode) size += fine.node_size(match[v]);
    const NodeId cv = b.add_cell(size);
    out.fine_to_coarse[v] = cv;
    if (match[v] != kInvalidNode) out.fine_to_coarse[match[v]] = cv;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (!fine.is_terminal(v)) continue;
    out.fine_to_coarse[v] = b.add_terminal();
  }

  std::vector<NodeId> pins;
  for (NetId e = 0; e < fine.num_nets(); ++e) {
    pins.clear();
    bool has_terminal = false;
    for (NodeId v : fine.pins(e)) {
      pins.push_back(out.fine_to_coarse[v]);
      has_terminal = has_terminal || fine.is_terminal(v);
    }
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    // Nets entirely absorbed into one coarse cell (no pads) disappear —
    // they can never be cut or demand a pin again.
    if (pins.size() < 2 && !has_terminal) continue;
    b.add_net(pins);
  }

  out.coarse = std::move(b).build();
  return out;
}

}  // namespace fpart
