// Multilevel V-cycle partitioner (Heuer/Sanders/Schlag framing): coarsen
// with heavy-edge matching until the circuit is small, solve the
// coarsest circuit with a configurable inner engine through the solve()
// facade, then uncoarsen — project the partition up one level at a time
// and polish each level with boundary-restricted refinement
// (multilevel/refine.hpp).
//
// Contrast with core/clustered.hpp: clustered FPART is the paper-era
// two-phase scheme (a level or two of clustering, full Sanchis refine on
// projection). The V-cycle is the scale lever — O(log n) levels, each
// refined only at block boundaries on the flat Φ arena, so circuits two
// to three orders of magnitude beyond MCNC stay tractable while the flat
// engines fall off a cliff.
//
// Feasibility transfers exactly under projection (cluster/coarsen.hpp
// invariants), the boundary refiner preserves it, and every level is
// instrumented: phase tree (multilevel.coarsen/solve/refine), flight-
// recorder pass events, timeseries samples, and — under --audit — a
// from-scratch invariant audit per level.
#pragma once

#include <cstdint>

#include "cluster/coarsen.hpp"
#include "core/method.hpp"
#include "core/options.hpp"
#include "core/result.hpp"
#include "device/device.hpp"
#include "hypergraph/hypergraph.hpp"

namespace fpart {

struct MultilevelOptions {
  /// Base options for the V-cycle and its inner coarsest-level solve.
  /// Injected from SolveRequest::options at dispatch (like
  /// ClusteredOptions::fpart); `fpart.cancel` is polled at level
  /// boundaries, `fpart.starts` multistarts the coarsest solve.
  Options fpart;

  /// Engine for the coarsest circuit, dispatched through solve().
  /// kMultilevel itself is rejected (OptionError) — no recursion.
  Method inner = Method::kFpart;

  /// Heavy-edge matching size cap per level; max_cluster_size 0 = auto:
  /// max(2, S_MAX / 16), so coarse cells stay small enough to pack
  /// devices tightly.
  CoarsenConfig coarsen;

  /// Hard cap on coarsening levels (matching can at most halve the
  /// interior count per level, so 24 covers any 32-bit circuit).
  std::uint32_t max_levels = 24;

  /// Stop descending once the coarse circuit has at most this many
  /// interior cells. 0 = auto: max(128, 32 · M) — enough headroom that
  /// the coarsest solve can still pack M devices from capped cells.
  std::uint32_t coarsest_max_cells = 0;

  /// Stall guard: stop descending when a level shrinks the interior
  /// count by less than this factor (1.0 would demand any shrink at
  /// all; matching-based coarsening normally achieves ~0.55).
  double min_shrink = 0.95;

  /// Boundary refinement passes per uncoarsening level (0 disables).
  int refine_passes = 2;
};

class MultilevelPartitioner {
 public:
  explicit MultilevelPartitioner(MultilevelOptions options = {})
      : options_(std::move(options)) {}

  const MultilevelOptions& options() const { return options_; }

  /// Same contract as the other engines: a feasible PartitionResult on
  /// the FINE circuit's node ids (unless cancelled mid-cycle, in which
  /// case `cancelled` is set and the partial projection is returned).
  PartitionResult run(const Hypergraph& h, const Device& device) const;

 private:
  MultilevelOptions options_;
};

}  // namespace fpart
