// Boundary-restricted refinement for the multilevel V-cycle.
//
// The Sanchis refiner initializes gain buckets for EVERY cell of every
// active block — O(n·k) per improve() call — which is exactly right for
// the paper's MCNC-scale circuits and exactly wrong at 10⁶ nodes, where
// a projected partition is already feasible and only the block
// boundaries need polish. This pass therefore:
//
//  * visits only boundary cells (interior pins of nets spanning >= 2
//    blocks), in ascending node id;
//  * rates each adjacent block `to` by the exact cut gain (fm/gains.hpp
//    move_gain, read straight off the flat Φ arena rows) plus the total
//    pin-demand delta of the move, computed by a dry O(degree) scan that
//    replays Partition::move's pin-demand rules without mutating
//    anything;
//  * applies a move only when it strictly improves (cut, total pin
//    demand) lexicographically AND both touched blocks stay feasible —
//    so a feasible partition stays feasible, no rollback machinery is
//    needed, and the recorded event stream is pure kMove events (replay-
//    compatible), each with its exact gain staged;
//  * stops after max_passes or the first pass with no applied move
//    (strict improvement makes termination a potential-function
//    argument, not a heuristic).
#pragma once

#include <cstdint>

#include "device/device.hpp"
#include "partition/partition.hpp"

namespace fpart {

struct BoundaryRefineStats {
  std::uint32_t passes = 0;  // passes executed (including the final empty one)
  std::uint64_t moves = 0;   // moves applied across all passes
  std::int64_t cut_gain = 0; // total cut reduction
};

/// Runs up to `max_passes` boundary passes on `p` (which must be
/// feasible for `device`; it stays feasible). `level` tags the emitted
/// timeseries samples with the V-cycle level index (the flight-recorder
/// pass events carry the pass index, like the other engines).
/// Deterministic.
BoundaryRefineStats refine_boundary(Partition& p, const Device& device,
                                    int max_passes, std::uint32_t level);

}  // namespace fpart
