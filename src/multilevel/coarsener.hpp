// Heavy-edge matching coarsener for the multilevel V-cycle.
//
// Differs from cluster/coarsen.cpp's heavy-connectivity matching in two
// ways that matter when the coarsener runs a dozen times per solve on
// circuits far beyond MCNC scale:
//
//  * rating: a net e contributes weight(e) / (|e|−1) to each pair of its
//    pins (unit net weights here, |e| = total pin count including pads)
//    — the standard heavy-edge rating, so small nets dominate and a
//    matched pair absorbs as much cut potential as possible;
//  * visit order: nodes are visited in ascending-degree buckets (the
//    HepPartitioner idiom) instead of plain id order, so low-degree
//    cells — whose only nets would otherwise be swallowed by high-degree
//    hubs — pick their partners first. Within a bucket the order is
//    ascending node id, and rating ties break toward the lower partner
//    id, keeping the whole pass deterministic.
//
// The result reuses cluster/coarsen.hpp's Coarsening record (coarse
// graph + fine→coarse map + projection); the same exactness invariants
// hold: total logic size, terminal pads and pin demands are preserved,
// so feasibility transfers verbatim under projection.
#pragma once

#include "cluster/coarsen.hpp"
#include "hypergraph/hypergraph.hpp"

namespace fpart {

/// One level of heavy-edge matching over interior nodes, degree-bucketed
/// visit order, deterministic tie-break by node id. Coarse cells are
/// capped at config.max_cluster_size technology cells (0 = unlimited).
/// Coarse node names are left empty — the hierarchy is transient and
/// names are excluded from structural digests anyway.
Coarsening coarsen_heavy_edge(const Hypergraph& fine,
                              const CoarsenConfig& config = {});

}  // namespace fpart
