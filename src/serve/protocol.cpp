#include "serve/protocol.hpp"

#include <unordered_set>

#include "obs/json.hpp"
#include "obs/provenance.hpp"
#include "util/assert.hpp"

namespace fpart::serve {

namespace {

using obs::JsonValue;

/// Typed member access with ParseError diagnostics naming the path.
const JsonValue& require_member(const JsonValue& obj, std::string_view key,
                                std::string_view where) {
  const JsonValue* v = obj.find(key);
  FPART_PARSE_REQUIRE(v != nullptr, "serve request: " + std::string(where) +
                                        " is missing required key '" +
                                        std::string(key) + "'");
  return *v;
}

std::string require_string(const JsonValue& obj, std::string_view key,
                           std::string_view where) {
  const JsonValue& v = require_member(obj, key, where);
  FPART_PARSE_REQUIRE(v.is_string(), "serve request: " + std::string(where) +
                                         "." + std::string(key) +
                                         " must be a string");
  return v.string;
}

std::uint64_t get_u64(const JsonValue& obj, std::string_view key,
                      std::string_view where, std::uint64_t fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  FPART_PARSE_REQUIRE(v->is_number() && v->exact_integer,
                      "serve request: " + std::string(where) + "." +
                          std::string(key) + " must be an integer");
  return v->integer;
}

ServeJob parse_job(const JsonValue& j, std::size_t index) {
  const std::string where = "jobs[" + std::to_string(index) + "]";
  FPART_PARSE_REQUIRE(j.is_object(),
                      "serve request: " + where + " must be an object");
  // Strict key set: a typo'd or unknown key is rejected, not ignored —
  // silently dropping "porfolio":8 would cache under the wrong identity.
  static const std::unordered_set<std::string_view> kKnown = {
      "id", "input", "device", "method", "fill",
      "seed", "portfolio", "priority"};
  for (const auto& [key, value] : j.object) {
    FPART_PARSE_REQUIRE(kKnown.contains(key), "serve request: " + where +
                                                  " has unknown key '" + key +
                                                  "'");
  }

  ServeJob job;
  job.spec.id = "job" + std::to_string(index);
  if (j.find("id") != nullptr) {
    job.spec.id = require_string(j, "id", where);
    FPART_PARSE_REQUIRE(!job.spec.id.empty(),
                        "serve request: " + where + ".id must be non-empty");
  }
  job.spec.input = require_string(j, "input", where);
  job.spec.device = require_string(j, "device", where);
  if (j.find("method") != nullptr) {
    job.spec.method = require_string(j, "method", where);
  }
  if (const JsonValue* fill = j.find("fill"); fill != nullptr) {
    FPART_PARSE_REQUIRE(fill->is_number(), "serve request: " + where +
                                               ".fill must be a number");
    job.spec.fill = fill->number;
  }
  job.spec.seed = get_u64(j, "seed", where, 0);
  const std::uint64_t portfolio = get_u64(j, "portfolio", where, 1);
  FPART_PARSE_REQUIRE(portfolio <= 0xFFFFFFFFull,
                      "serve request: " + where +
                          ".portfolio must fit in 32 bits");
  job.spec.portfolio = static_cast<std::uint32_t>(portfolio);
  if (const JsonValue* prio = j.find("priority"); prio != nullptr) {
    FPART_PARSE_REQUIRE(prio->is_number() && prio->exact_integer,
                        "serve request: " + where +
                            ".priority must be an integer");
    job.priority = static_cast<std::int64_t>(prio->integer);
  }
  return job;
}

void write_stats(obs::JsonWriter& w, const ServeStatsSnapshot& s) {
  w.begin_object();
  w.key("queue_depth");
  w.value(static_cast<std::uint64_t>(s.queue_depth));
  w.key("inflight");
  w.value(static_cast<std::uint64_t>(s.inflight));
  w.key("requests");
  w.value(s.requests);
  w.key("jobs_submitted");
  w.value(s.jobs_submitted);
  w.key("jobs_completed");
  w.value(s.jobs_completed);
  w.key("jobs_failed");
  w.value(s.jobs_failed);
  w.key("rejected");
  w.begin_object();
  w.key("parse");
  w.value(s.rejected_parse);
  w.key("option");
  w.value(s.rejected_option);
  w.key("quota");
  w.value(s.rejected_quota);
  w.end_object();
  w.key("cache");
  w.begin_object();
  w.key("hits");
  w.value(s.cache_hits);
  w.key("misses");
  w.value(s.cache_misses);
  w.key("evictions");
  w.value(s.cache_evictions);
  w.key("size");
  w.value(static_cast<std::uint64_t>(s.cache_size));
  w.key("capacity");
  w.value(static_cast<std::uint64_t>(s.cache_capacity));
  w.key("hit_rate");
  w.value(s.cache_hit_rate());
  w.end_object();
  w.end_object();
}

void begin_response(obs::JsonWriter& w, bool ok) {
  w.begin_object();
  w.key("schema");
  w.value(kServeResponseSchema);
  w.key("provenance");
  obs::write_provenance(w);
  w.key("ok");
  w.value(ok);
}

}  // namespace

ServeRequest parse_serve_request(std::string_view line) {
  const std::optional<JsonValue> doc = obs::json_parse(line);
  FPART_PARSE_REQUIRE(doc.has_value() && doc->is_object(),
                      "serve request: not a JSON object");
  static const std::unordered_set<std::string_view> kKnown = {
      "schema", "cmd", "client", "jobs"};
  for (const auto& [key, value] : doc->object) {
    FPART_PARSE_REQUIRE(kKnown.contains(key),
                        "serve request: unknown key '" + key + "'");
  }
  if (const JsonValue* schema = doc->find("schema"); schema != nullptr) {
    FPART_PARSE_REQUIRE(schema->is_string() &&
                            schema->string == kServeRequestSchema,
                        "serve request: schema must be '" +
                            std::string(kServeRequestSchema) + "'");
  }

  ServeRequest req;
  if (const JsonValue* client = doc->find("client"); client != nullptr) {
    FPART_PARSE_REQUIRE(client->is_string(),
                        "serve request: client must be a string");
    req.client = client->string;
  }

  if (const JsonValue* cmd = doc->find("cmd"); cmd != nullptr) {
    FPART_PARSE_REQUIRE(cmd->is_string(),
                        "serve request: cmd must be a string");
    if (cmd->string == "stats") {
      req.kind = ServeRequest::Kind::kStats;
    } else if (cmd->string == "shutdown") {
      req.kind = ServeRequest::Kind::kShutdown;
    } else {
      FPART_OPTION_REQUIRE(false, "serve request: unknown cmd '" +
                                      cmd->string +
                                      "' (expected stats|shutdown)");
    }
    FPART_PARSE_REQUIRE(doc->find("jobs") == nullptr,
                        "serve request: cmd requests carry no jobs");
    return req;
  }

  const JsonValue& jobs = require_member(*doc, "jobs", "request");
  FPART_PARSE_REQUIRE(jobs.is_array() && !jobs.array.empty(),
                      "serve request: jobs must be a non-empty array");
  std::unordered_set<std::string> seen_ids;
  for (std::size_t i = 0; i < jobs.array.size(); ++i) {
    ServeJob job = parse_job(jobs.array[i], i);
    FPART_PARSE_REQUIRE(seen_ids.insert(job.spec.id).second,
                        "serve request: duplicate job id '" + job.spec.id +
                            "'");
    // Semantic range checks shared with the batch-file parser: fill in
    // (0,1], known method, portfolio >= 1 — OptionError, still before
    // admission.
    runtime::validate_job_spec(job.spec);
    req.jobs.push_back(std::move(job));
  }
  return req;
}

std::string serve_response_json(const std::vector<ServeJobOutcome>& jobs,
                                const ServeStatsSnapshot& stats) {
  obs::JsonWriter w;
  begin_response(w, true);
  w.key("jobs");
  w.begin_array();
  for (const ServeJobOutcome& o : jobs) {
    w.begin_object();
    runtime::write_job_result_fields(w, o.result);
    w.key("cached");
    w.value(o.cached);
    if (o.result.ok) {
      w.key("assignment_digest");
      w.value(o.assignment_digest);
    }
    if (!o.events_path.empty()) {
      w.key("events_path");
      w.value(o.events_path);
    }
    if (!o.report_path.empty()) {
      w.key("report_path");
      w.value(o.report_path);
    }
    w.key("queue_seconds");
    w.value(o.queue_seconds);
    w.end_object();
  }
  w.end_array();
  w.key("stats");
  write_stats(w, stats);
  w.end_object();
  return w.take();
}

std::string serve_error_json(std::string_view error, std::string_view kind,
                             const ServeStatsSnapshot& stats) {
  obs::JsonWriter w;
  begin_response(w, false);
  w.key("error");
  w.value(error);
  w.key("error_kind");
  w.value(kind);
  w.key("stats");
  write_stats(w, stats);
  w.end_object();
  return w.take();
}

}  // namespace fpart::serve
