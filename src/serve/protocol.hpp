// Wire protocol of the partition-as-a-service daemon (fpart_serve).
//
// Transport framing is newline-delimited JSON: a client writes one
// request object per line and reads exactly one response object per
// line, in order. The request dialect is the fpart-batch/1 job record
// (id / input / device / method / fill / seed / portfolio) plus a
// per-job scheduling priority and an optional client identity for
// quota accounting:
//
//   {"schema":"fpart-serve-request/1","client":"ci","jobs":[
//     {"id":"a","input":"c.hgr","device":"XC3042","seed":7,
//      "method":"fpart","fill":0.9,"portfolio":1,"priority":5}]}
//   {"schema":"fpart-serve-request/1","cmd":"stats"}
//   {"schema":"fpart-serve-request/1","cmd":"shutdown"}
//
// Responses are fpart-serve-response/1: the per-job records reuse the
// fpart-batch/1 fields verbatim (runtime/batch.hpp) and add the serving
// dimensions — cached flag, assignment digest, artifact paths, queue
// wait — plus a stats snapshot:
//
//   {"schema":"fpart-serve-response/1","ok":true,"provenance":{...},
//    "jobs":[{...batch record...,"cached":true,"assignment_digest":...,
//             "events_path":"...","report_path":"...",
//             "queue_seconds":0.001}],
//    "stats":{...}}
//
// Rejection happens at parse time with the typed taxonomy
// (util/error.hpp): malformed JSON, wrong types, unknown keys and
// duplicate job ids are ParseError; well-formed values naming an
// invalid choice (unknown method, fill outside (0,1], portfolio == 0)
// are OptionError. A rejected request never touches the job queue, so
// bad inputs cannot occupy a worker; the response carries ok:false with
// the error text and kind ("parse" / "option" / "quota").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/batch.hpp"

namespace fpart::serve {

inline constexpr const char* kServeRequestSchema = "fpart-serve-request/1";
inline constexpr const char* kServeResponseSchema = "fpart-serve-response/1";

/// One job plus its scheduling priority (higher runs first; ties run in
/// admission order).
struct ServeJob {
  runtime::JobSpec spec;
  std::int64_t priority = 0;
};

struct ServeRequest {
  enum class Kind { kSubmit, kStats, kShutdown };
  Kind kind = Kind::kSubmit;
  /// Quota bucket; empty = the transport's per-connection identity.
  std::string client;
  std::vector<ServeJob> jobs;  // submit requests only
};

/// Parses and validates one request line (see the reject matrix above).
/// Every job id is defaulted ("job<i>") when absent and guaranteed
/// unique within the request on return.
ServeRequest parse_serve_request(std::string_view line);

/// One completed (or per-job-failed) job as the response reports it.
struct ServeJobOutcome {
  runtime::JobResult result;
  bool cached = false;
  std::uint64_t assignment_digest = 0;
  std::string events_path;  // "" when the daemon spools no artifacts
  std::string report_path;
  double queue_seconds = 0.0;  // admission -> execution start
};

/// Live serving stats embedded in every response (and the whole payload
/// of a stats request).
struct ServeStatsSnapshot {
  std::size_t queue_depth = 0;  // admitted, not yet executing
  std::size_t inflight = 0;     // admitted, not yet completed
  std::uint64_t requests = 0;
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t rejected_parse = 0;
  std::uint64_t rejected_option = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t cache_size = 0;
  std::size_t cache_capacity = 0;

  double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) /
                                  static_cast<double>(total);
  }
};

/// ok:true response for a completed submit (or stats) request.
std::string serve_response_json(const std::vector<ServeJobOutcome>& jobs,
                                const ServeStatsSnapshot& stats);

/// ok:false rejection response. `kind` is the taxonomy word ("parse",
/// "option") or "quota" for admission-control rejection.
std::string serve_error_json(std::string_view error, std::string_view kind,
                             const ServeStatsSnapshot& stats);

}  // namespace fpart::serve
