// Partition-as-a-service daemon core.
//
// A Server is the long-lived heart of fpart_serve: it owns the shared
// work-stealing ThreadPool, the content-addressed result cache, a
// priority job queue, and the admission-control state. Transports are
// layered on top — SocketListener speaks newline-delimited JSON over
// Unix-domain and TCP sockets, tests and the bench call handle_line()
// directly — so the scheduling and caching semantics are identical (and
// testable) with or without a socket in the loop.
//
// Scheduling. Admitted jobs enter one of two priority queues, both
// ordered by (priority desc, admission seq asc):
//
//   * single-attempt jobs (portfolio == 1) feed the shared ThreadPool —
//     one "drain the best job" task is posted per admission, so the
//     task that runs picks the CURRENT highest-priority job, not the
//     one whose admission posted it;
//   * portfolio jobs (portfolio > 1) go to a dedicated lane thread.
//     run_portfolio() blocks until its attempts complete, and its
//     nested-blocking-submission guard (runtime/batch.hpp) throws
//     InternalError from inside a pool task — the lane thread blocks
//     OUTSIDE the pool while the attempts fan out INTO it, which is the
//     one scheduling shape that is both deadlock-free and keeps the
//     pool fed.
//
// Admission control. A request is rejected before any of its jobs touch
// a queue when (a) it fails the typed parse/validation matrix
// (protocol.hpp — ParseError/OptionError), or (b) its client would
// exceed the per-client in-flight quota ("quota"). Bad inputs therefore
// never occupy a worker. Failures of admitted jobs (unreadable .hgr,
// unknown device, engine errors) stay isolated per job, exactly like
// the batch runner.
//
// Caching. Each executed job is keyed by (structural digest, device,
// canonical options, seed) — serve/cache.hpp — and a later identical
// job returns the cached PartitionResult plus the original event-log /
// run-report paths without recompute. Engine determinism makes this
// sound; bench/ext_serve.cpp hard-gates cached == recomputed digests.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"

namespace fpart::serve {

struct ServerConfig {
  /// Pool workers (0 = default_thread_count()).
  unsigned threads = 0;
  /// Result-cache entries (0 disables caching).
  std::size_t cache_capacity = 256;
  /// Max in-flight jobs per client, queued + executing (0 = unlimited).
  std::uint32_t quota = 64;
  /// Directory for per-request artifacts (event logs + run reports),
  /// named by content key. Empty = no artifacts. Must already exist.
  std::string spool_dir;
};

class Server {
 public:
  explicit Server(const ServerConfig& config);

  /// Joins the portfolio lane and drains the pool. All handle_line()
  /// calls must have returned (transports join their connection threads
  /// first).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Parses and serves one request line on behalf of `transport_client`
  /// (overridden by the request's own "client" field). Submit requests
  /// block until every admitted job completed; the returned line is the
  /// full response. Never throws on bad requests — rejection becomes an
  /// ok:false response.
  std::string handle_line(const std::string& line,
                          const std::string& transport_client);

  /// Latched by a shutdown request; transports poll it.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  ServeStatsSnapshot snapshot() const;

  const ServerConfig& config() const { return config_; }

 private:
  struct RequestState;
  struct Pending;
  struct PendingOrder {
    bool operator()(const std::shared_ptr<Pending>& a,
                    const std::shared_ptr<Pending>& b) const;
  };
  using Queue = std::multiset<std::shared_ptr<Pending>, PendingOrder>;

  void execute(Pending& p);
  void compute(const Hypergraph& h, const Device& device,
               const runtime::JobSpec& spec, const CacheKey& key,
               CacheEntry& entry);
  void drain_one_single();
  void lane_loop();
  void finish(Pending& p, ServeJobOutcome outcome);

  ServerConfig config_;
  ResultCache cache_;

  mutable std::mutex mu_;
  Queue single_queue_;
  Queue lane_queue_;
  std::condition_variable lane_cv_;
  std::map<std::string, std::size_t> inflight_by_client_;
  std::size_t inflight_total_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t jobs_submitted_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_failed_ = 0;
  std::uint64_t rejected_parse_ = 0;
  std::uint64_t rejected_option_ = 0;
  std::uint64_t rejected_quota_ = 0;

  std::atomic<bool> shutdown_{false};
  std::atomic<bool> stopping_{false};

  std::thread lane_thread_;
  /// Declared last: destroyed first, so queued drain tasks still see
  /// live queues/cache while the pool drains in ~Server.
  runtime::ThreadPool pool_;
};

/// Socket front end: newline-delimited requests on a Unix-domain socket
/// path and/or a TCP port (loopback), one thread per connection, each
/// line answered through Server::handle_line with a per-connection
/// client identity ("conn<N>") as the quota fallback.
class SocketListener {
 public:
  struct Endpoints {
    std::string unix_path;  // "" = no Unix socket
    int tcp_port = -1;      // -1 = no TCP; 0 = ephemeral (see tcp_port())
  };

  /// Binds and listens immediately; throws PreconditionError on any
  /// socket failure (bad path, port in use).
  SocketListener(Server& server, const Endpoints& endpoints);
  ~SocketListener();

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// Accept loop; returns once the server latched shutdown (all
  /// connection threads joined, listen sockets closed and the Unix
  /// socket path unlinked).
  void serve_forever();

  /// The actually bound TCP port (resolves an ephemeral request), -1
  /// when TCP is off.
  int tcp_port() const { return tcp_port_; }

 private:
  /// One accepted connection. The entry (stable in the std::list) is
  /// shared between the accept loop and the connection's own thread:
  /// the thread untracks its fd (fd = -1, under conn_mu_) BEFORE
  /// closing it — so a kernel-reused fd number can never be confused
  /// with a live one — and flags `done` as its very last action, after
  /// which the accept loop may join + erase the entry.
  struct Conn {
    int fd = -1;
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void handle_connection(Conn& conn, int fd, std::string client_id);
  /// Joins and erases connections whose threads have finished; called
  /// on every accept iteration so a long-lived daemon does not
  /// accumulate one dead std::thread per connection ever served.
  void reap_finished();

  Server& server_;
  Endpoints endpoints_;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;
  std::mutex conn_mu_;
  std::list<Conn> conns_;
  std::uint64_t next_conn_ = 0;
};

}  // namespace fpart::serve
