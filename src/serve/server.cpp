#include "serve/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "device/xilinx.hpp"
#include "netlist/hgr_io.hpp"
#include "obs/recorder.hpp"
#include "obs/stats.hpp"
#include "partition/replay.hpp"
#include "report/run_report.hpp"
#include "runtime/portfolio.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace fpart::serve {

namespace {

std::string key_stem(const std::string& spool_dir, const CacheKey& key) {
  // 128-bit digest, not the 64-bit bucketing hash: a stem collision
  // would cross-link two keys' artifacts on disk.
  return spool_dir + "/" + cache_key_hex128(key);
}

}  // namespace

/// One admitted request, shared by handle_line (which blocks on it) and
/// the executors (which fill it in).
struct Server::RequestState {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining = 0;
  std::vector<ServeJobOutcome> outcomes;
};

/// One admitted job in a queue.
struct Server::Pending {
  ServeJob job;
  std::string client;
  std::uint64_t seq = 0;
  Timer queued_at;  // admission -> execution start = queue_seconds
  RequestState* request = nullptr;
  std::size_t slot = 0;  // index into request->outcomes
};

bool Server::PendingOrder::operator()(
    const std::shared_ptr<Pending>& a,
    const std::shared_ptr<Pending>& b) const {
  if (a->job.priority != b->job.priority) {
    return a->job.priority > b->job.priority;  // higher priority first
  }
  return a->seq < b->seq;  // FIFO within a priority
}

Server::Server(const ServerConfig& config)
    : config_(config),
      cache_(config.cache_capacity),
      pool_(config.threads) {
  lane_thread_ = std::thread([this] { lane_loop(); });
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_.store(true, std::memory_order_release);
  }
  lane_cv_.notify_all();
  if (lane_thread_.joinable()) lane_thread_.join();
  // pool_ (declared last) drains any remaining drain_one_single tasks
  // in its destructor; the queues and cache above it are still alive.
}

std::string Server::handle_line(const std::string& line,
                                const std::string& transport_client) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
  }
  FPART_COUNTER_INC("serve.requests");

  ServeRequest req;
  try {
    req = parse_serve_request(line);
  } catch (const Error& e) {
    const char* kind = e.kind();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (std::string_view(kind) == "option") {
        ++rejected_option_;
      } else {
        ++rejected_parse_;
      }
    }
    FPART_COUNTER_INC("serve.rejected");
    return serve_error_json(e.what(), kind, snapshot());
  }

  if (req.kind == ServeRequest::Kind::kStats) {
    return serve_response_json({}, snapshot());
  }
  if (req.kind == ServeRequest::Kind::kShutdown) {
    shutdown_.store(true, std::memory_order_release);
    return serve_response_json({}, snapshot());
  }

  const std::string client =
      req.client.empty() ? transport_client : req.client;
  RequestState state;
  state.outcomes.resize(req.jobs.size());
  state.remaining = req.jobs.size();
  std::string quota_error;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Per-client in-flight quota: the whole request is admitted or
    // rejected atomically, counting jobs already queued or executing.
    // The rejection response is built OUTSIDE this block — snapshot()
    // re-locks mu_ and the mutex is not recursive.
    const std::size_t inflight = inflight_by_client_[client];
    if (config_.quota > 0 &&
        inflight + req.jobs.size() > config_.quota) {
      if (inflight == 0) inflight_by_client_.erase(client);
      ++rejected_quota_;
      quota_error = "client '" + client +
                    "' would exceed the in-flight quota (" +
                    std::to_string(inflight) + " in flight + " +
                    std::to_string(req.jobs.size()) + " submitted > " +
                    std::to_string(config_.quota) + ")";
    } else {
      inflight_by_client_[client] += req.jobs.size();
      inflight_total_ += req.jobs.size();
      jobs_submitted_ += req.jobs.size();
      for (std::size_t i = 0; i < req.jobs.size(); ++i) {
        auto pending = std::make_shared<Pending>();
        pending->job = std::move(req.jobs[i]);
        pending->client = client;
        pending->seq = next_seq_++;
        pending->request = &state;
        pending->slot = i;
        if (pending->job.spec.portfolio > 1) {
          lane_queue_.insert(std::move(pending));
        } else {
          single_queue_.insert(std::move(pending));
          pool_.post([this] { drain_one_single(); });
        }
      }
    }
  }
  if (!quota_error.empty()) {
    FPART_COUNTER_INC("serve.rejected");
    return serve_error_json(quota_error, "quota", snapshot());
  }
  lane_cv_.notify_all();
  FPART_COUNTER_ADD("serve.jobs_submitted", req.jobs.size());

  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.cv.wait(lock, [&] { return state.remaining == 0; });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_by_client_.find(client);
    it->second -= state.outcomes.size();
    if (it->second == 0) inflight_by_client_.erase(it);
    inflight_total_ -= state.outcomes.size();
  }
  return serve_response_json(state.outcomes, snapshot());
}

void Server::drain_one_single() {
  std::shared_ptr<Pending> p;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (single_queue_.empty()) return;  // races only with ~Server drain
    p = *single_queue_.begin();
    single_queue_.erase(single_queue_.begin());
  }
  execute(*p);
}

void Server::lane_loop() {
  while (true) {
    std::shared_ptr<Pending> p;
    {
      std::unique_lock<std::mutex> lock(mu_);
      lane_cv_.wait(lock, [&] {
        return !lane_queue_.empty() ||
               stopping_.load(std::memory_order_acquire);
      });
      if (lane_queue_.empty()) {
        // stopping_, and nothing left to serve: handle_line callers all
        // returned before ~Server runs, so an empty queue is final.
        return;
      }
      p = *lane_queue_.begin();
      lane_queue_.erase(lane_queue_.begin());
    }
    // Blocks here, OUTSIDE the pool, while run_portfolio fans attempts
    // into it — the scheduling shape the nested-blocking guard demands.
    execute(*p);
  }
}

void Server::execute(Pending& p) {
  const runtime::JobSpec& spec = p.job.spec;
  ServeJobOutcome out;
  out.queue_seconds = p.queued_at.elapsed_seconds();
  out.result.spec = spec;
  Timer timer;
  try {
    const Hypergraph h = read_hgr_file(spec.input);
    const Device device = xilinx::by_name(spec.device).with_fill(spec.fill);
    const CacheKey key = make_cache_key(h, spec);
    std::optional<CacheEntry> entry = cache_.lookup(key);
    if (entry.has_value()) {
      out.cached = true;
      FPART_COUNTER_INC("serve.cache_hits");
    } else {
      FPART_COUNTER_INC("serve.cache_misses");
      entry.emplace();
      compute(h, device, spec, key, *entry);
      cache_.insert(key, *entry);
    }
    out.result.ok = true;
    out.result.result = std::move(entry->result);
    out.result.winner = entry->winner;
    out.result.portfolio_digest = entry->portfolio_digest;
    out.assignment_digest = entry->assignment_digest;
    out.events_path = std::move(entry->events_path);
    out.report_path = std::move(entry->report_path);
  } catch (const std::exception& e) {
    // Per-job failure isolation, batch-runner style: this job reports
    // its taxonomy kind, the rest of the request proceeds.
    out.result.ok = false;
    out.result.error = e.what();
    out.result.error_kind = error_kind(e);
  }
  out.result.seconds = timer.elapsed_seconds();
  finish(p, std::move(out));
}

void Server::compute(const Hypergraph& h, const Device& device,
                     const runtime::JobSpec& spec, const CacheKey& key,
                     CacheEntry& entry) {
  const std::string stem =
      config_.spool_dir.empty() ? "" : key_stem(config_.spool_dir, key);
  runtime::PortfolioOptions popt;
  popt.attempts = spec.portfolio;
  popt.method = spec.method;
  popt.base.seed = spec.seed;
  if (spec.portfolio > 1) {
    if (!stem.empty()) popt.events_prefix = stem;
    runtime::PortfolioResult pr =
        runtime::run_portfolio(h, device, popt, &pool_);
    entry.winner = pr.winner;
    entry.portfolio_digest = pr.digest;
    if (!stem.empty()) {
      entry.events_path = pr.attempts[pr.winner].events_path;
    }
    entry.result = std::move(pr.best);
  } else if (!stem.empty()) {
    // Private thread-local recorder, exactly like a portfolio attempt:
    // concurrent workers must not interleave event streams.
    obs::Recorder recorder;
    const obs::ScopedRecorderInstall install(&recorder);
    Options header_opt;
    header_opt.seed = spec.seed;
    recorder.start(make_event_log_header(h, device, header_opt, spec.method));
    entry.result = runtime::run_portfolio_attempt(h, device, popt, spec.seed);
    recorder.stop();
    entry.events_path = stem + ".events.jsonl";
    recorder.write_jsonl(entry.events_path);
  } else {
    entry.result = runtime::run_portfolio_attempt(h, device, popt, spec.seed);
  }
  entry.assignment_digest = assignment_digest(entry.result.assignment);
  entry.options_json = key.options_canonical;
  if (!stem.empty()) {
    RunMeta meta;
    meta.circuit = spec.input;
    meta.device = spec.device;
    meta.method = spec.method;
    meta.seed = spec.seed;
    meta.events_path = entry.events_path;
    entry.report_path = stem + ".report.json";
    write_run_report_file(entry.report_path, meta, entry.result);
  }
}

void Server::finish(Pending& p, ServeJobOutcome outcome) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (outcome.result.ok) {
      ++jobs_completed_;
    } else {
      ++jobs_failed_;
    }
  }
  RequestState& state = *p.request;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.outcomes[p.slot] = std::move(outcome);
    --state.remaining;
    // Notify while still holding state.mu: the waiter owns the
    // stack-allocated RequestState and destroys it as soon as it
    // observes remaining == 0, so an unlocked notify could run on a
    // dead condition_variable (another finisher may drop remaining to 0
    // between this thread's unlock and its notify).
    state.cv.notify_all();
  }
}

ServeStatsSnapshot Server::snapshot() const {
  ServeStatsSnapshot s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.queue_depth = single_queue_.size() + lane_queue_.size();
    s.inflight = inflight_total_;
    s.requests = requests_;
    s.jobs_submitted = jobs_submitted_;
    s.jobs_completed = jobs_completed_;
    s.jobs_failed = jobs_failed_;
    s.rejected_parse = rejected_parse_;
    s.rejected_option = rejected_option_;
    s.rejected_quota = rejected_quota_;
  }
  const CacheStats c = cache_.stats();
  s.cache_hits = c.hits;
  s.cache_misses = c.misses;
  s.cache_evictions = c.evictions;
  s.cache_size = c.size;
  s.cache_capacity = c.capacity;
  return s;
}

// ---------------------------------------------------------------------------
// SocketListener

namespace {

void close_quietly(int fd) {
  if (fd >= 0) ::close(fd);
}

/// Writes all of `data` + '\n', tolerating partial writes.
bool write_line(int fd, const std::string& data) {
  std::string framed = data;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + off, framed.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Hard cap on one request line; longer input is a protocol violation
/// (the connection is dropped, not the server).
constexpr std::size_t kMaxLine = 16u << 20;

}  // namespace

SocketListener::SocketListener(Server& server, const Endpoints& endpoints)
    : server_(server), endpoints_(endpoints) {
  FPART_OPTION_REQUIRE(!endpoints_.unix_path.empty() ||
                           endpoints_.tcp_port >= 0,
                       "serve listener needs a Unix socket path or a TCP "
                       "port");
  if (!endpoints_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    FPART_OPTION_REQUIRE(
        endpoints_.unix_path.size() < sizeof(addr.sun_path),
        "unix socket path too long: " + endpoints_.unix_path);
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    FPART_REQUIRE(unix_fd_ >= 0, "socket(AF_UNIX) failed");
    std::strncpy(addr.sun_path, endpoints_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(endpoints_.unix_path.c_str());  // stale path from a crash
    FPART_REQUIRE(::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0,
                  "bind(" + endpoints_.unix_path +
                      ") failed: " + std::strerror(errno));
    FPART_REQUIRE(::listen(unix_fd_, 64) == 0, "listen(unix) failed");
  }
  if (endpoints_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    FPART_REQUIRE(tcp_fd_ >= 0, "socket(AF_INET) failed");
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(endpoints_.tcp_port));
    FPART_REQUIRE(::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0,
                  "bind(tcp port " + std::to_string(endpoints_.tcp_port) +
                      ") failed: " + std::strerror(errno));
    FPART_REQUIRE(::listen(tcp_fd_, 64) == 0, "listen(tcp) failed");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    FPART_REQUIRE(::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound),
                                &len) == 0,
                  "getsockname failed");
    tcp_port_ = ntohs(bound.sin_port);
  }
}

SocketListener::~SocketListener() {
  close_quietly(unix_fd_);
  close_quietly(tcp_fd_);
  if (!endpoints_.unix_path.empty()) {
    ::unlink(endpoints_.unix_path.c_str());
  }
  // serve_forever has returned, so nothing erases list entries anymore;
  // joining without conn_mu_ is safe (threads only mutate their own
  // Conn fields, never the list).
  for (Conn& c : conns_) {
    if (c.thread.joinable()) c.thread.join();
  }
}

void SocketListener::serve_forever() {
  while (!server_.shutdown_requested()) {
    reap_finished();
    pollfd fds[2];
    nfds_t n = 0;
    if (unix_fd_ >= 0) fds[n++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[n++] = {tcp_fd_, POLLIN, 0};
    // Finite timeout so a shutdown latched by another connection is
    // noticed without a new connection arriving.
    const int rc = ::poll(fds, n, 200);
    if (rc <= 0) continue;
    for (nfds_t i = 0; i < n; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int fd = ::accept(fds[i].fd, nullptr, nullptr);
      if (fd < 0) continue;
      std::string client_id;
      {
        std::lock_guard<std::mutex> lock(conn_mu_);
        client_id = "conn" + std::to_string(next_conn_++);
        conns_.emplace_back();
        Conn& conn = conns_.back();
        conn.fd = fd;
        conn.done = std::make_shared<std::atomic<bool>>(false);
        // The lambda holds its own ref on `done`: the flag outlives the
        // list entry even if the reaper erases it immediately after the
        // store below becomes visible.
        conn.thread = std::thread(
            [this, &conn, fd, client_id, done = conn.done] {
              handle_connection(conn, fd, client_id);
              // Last touch of `conn` was inside handle_connection; after
              // this store the accept loop may join + erase the entry.
              done->store(true, std::memory_order_release);
            });
      }
    }
  }
  // Unblock readers so connection threads observe EOF and exit; the
  // destructor joins them. Read side only: the connection that carried
  // the shutdown request may still be writing its response line, and
  // SHUT_RDWR here would flakily truncate it.
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (const Conn& c : conns_) {
    if (c.fd >= 0) ::shutdown(c.fd, SHUT_RD);
  }
}

void SocketListener::reap_finished() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->done->load(std::memory_order_acquire)) {
      // done is the thread's last store; join only waits for its
      // epilogue, never for conn_mu_ (the thread is past its critical
      // section), so holding the lock here cannot deadlock.
      if (it->thread.joinable()) it->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketListener::handle_connection(Conn& conn, int fd,
                                       std::string client_id) {
  std::string buffer;
  char chunk[4096];
  bool alive = true;
  while (alive) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > kMaxLine) break;  // protocol violation: drop
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos && alive;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      alive = write_line(fd, server_.handle_line(line, client_id));
    }
    buffer.erase(0, start);
  }
  // Untrack before close: once the kernel may reuse this fd number,
  // the shutdown loop must no longer find it in conns_.
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn.fd = -1;
  close_quietly(fd);
}

}  // namespace fpart::serve
