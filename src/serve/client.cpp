#include "serve/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/assert.hpp"

namespace fpart::serve {

namespace {

/// Runs `attempt` (returning a connected fd or -1) until it succeeds or
/// the retry budget runs out.
template <typename Fn>
int connect_with_retries(Fn&& attempt, double retry_seconds,
                         const std::string& what) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(retry_seconds));
  while (true) {
    const int fd = attempt();
    if (fd >= 0) return fd;
    FPART_REQUIRE(std::chrono::steady_clock::now() < deadline,
                  "cannot connect to " + what + ": " + std::strerror(errno));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

}  // namespace

Client Client::connect_unix(const std::string& path, double retry_seconds) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FPART_OPTION_REQUIRE(!path.empty() && path.size() < sizeof(addr.sun_path),
                       "bad unix socket path: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = connect_with_retries(
      [&]() -> int {
        const int s = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (s < 0) return -1;
        if (::connect(s, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
          return s;
        }
        ::close(s);
        return -1;
      },
      retry_seconds, "unix socket " + path);
  return Client(fd);
}

Client Client::connect_tcp(int port, double retry_seconds) {
  FPART_OPTION_REQUIRE(port > 0 && port <= 0xFFFF,
                       "bad tcp port " + std::to_string(port));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const int fd = connect_with_retries(
      [&]() -> int {
        const int s = ::socket(AF_INET, SOCK_STREAM, 0);
        if (s < 0) return -1;
        if (::connect(s, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
          return s;
        }
        ::close(s);
        return -1;
      },
      retry_seconds, "tcp port " + std::to_string(port));
  return Client(fd);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

std::string Client::roundtrip(const std::string& line) {
  FPART_REQUIRE(fd_ >= 0, "client is not connected");
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    FPART_REQUIRE(n > 0, "serve connection closed while sending");
    off += static_cast<std::size_t>(n);
  }
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return response;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    FPART_REQUIRE(n > 0, "serve connection closed before the response line");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace fpart::serve
