// Content-addressed result cache for the partition-as-a-service daemon.
//
// A partitioning job is a pure function of (circuit structure, device +
// filling ratio, engine options, seed): every engine in the repo is
// deterministic under those inputs (the portfolio/replay contracts), so
// two jobs with equal keys MUST produce byte-identical assignments — and
// the cache can answer the second one without recompute. The key is
// content-addressed, never name-addressed:
//
//   * the circuit enters as Hypergraph::structural_digest() — node
//     sizes, terminal flags and pin lists, names excluded — so the same
//     netlist under a different file name or node labels hits, while a
//     relabeled-but-rewired circuit misses;
//   * the device enters as its name plus the filling ratio (fill scales
//     S_MAX/T_MAX, so it changes the answer);
//   * options enter as the canonical JSON produced by
//     canonical_job_options() — one serialization path, so key equality
//     is string equality, not float-comparison folklore;
//   * the seed (and portfolio width) complete the key.
//
// Eviction is strict LRU with a fixed entry capacity. All operations are
// thread-safe; hit/miss/eviction tallies feed the serve stats surface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/result.hpp"
#include "runtime/batch.hpp"

namespace fpart {
class Hypergraph;
}

namespace fpart::serve {

/// Identity of one job's full input. Equality is exact member equality —
/// the hash only buckets, it never decides a hit.
struct CacheKey {
  std::uint64_t circuit_digest = 0;  // Hypergraph::structural_digest()
  std::string device;                // device name, e.g. "XC3042"
  std::string options_canonical;     // canonical_job_options() JSON
  std::uint64_t seed = 0;

  bool operator==(const CacheKey&) const = default;
};

/// FNV-1a over every key component (bucketing only).
std::uint64_t cache_key_hash(const CacheKey& key);

/// 32-hex-char FNV-1a-128 digest of every key component. Spool artifact
/// stems are named by this digest: unlike the 64-bit bucketing hash, a
/// collision here would cross-link two keys' on-disk artifacts, so the
/// stem gets the full 128-bit margin. (The in-memory cache is unaffected
/// either way — it compares complete keys.)
std::string cache_key_hex128(const CacheKey& key);

/// Canonical options JSON for a job spec: method, filling ratio,
/// portfolio width and the full engine Options serialization
/// (report/run_report.hpp options_json) in one fixed key order. The
/// single canonicalization path shared by the cache and the tests.
std::string canonical_job_options(const runtime::JobSpec& spec);

/// Key for `spec` against an already-loaded circuit.
CacheKey make_cache_key(const Hypergraph& h, const runtime::JobSpec& spec);

/// What a hit returns: the full result plus the artifact paths of the
/// original computation (the daemon spools event logs and run reports
/// per content key, so a hit can point at them without recompute).
struct CacheEntry {
  PartitionResult result;
  /// FNV-1a digest of result.assignment (partition/replay.hpp).
  std::uint64_t assignment_digest = 0;
  /// Portfolio jobs: winning attempt index + outcome digest.
  std::uint32_t winner = 0;
  std::uint64_t portfolio_digest = 0;
  /// The canonical options JSON the original compute ran with
  /// (byte-identical to canonical_job_options() of any hitting spec).
  std::string options_json;
  /// Flight-recorder log / run report of the original compute ("" when
  /// the daemon runs without a spool directory).
  std::string events_path;
  std::string report_path;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Thread-safe LRU map CacheKey -> CacheEntry with fixed capacity.
class ResultCache {
 public:
  /// `capacity` = max resident entries; 0 disables caching (every
  /// lookup misses, inserts are dropped).
  explicit ResultCache(std::size_t capacity);

  /// Returns a copy of the entry and refreshes its recency; counts a
  /// hit or miss either way.
  std::optional<CacheEntry> lookup(const CacheKey& key);

  /// Inserts (or overwrites — identical keys compute identical results,
  /// so a concurrent double-compute is harmless) and evicts the least
  /// recently used entry when over capacity.
  void insert(const CacheKey& key, CacheEntry entry);

  CacheStats stats() const;

 private:
  struct KeyHash {
    std::size_t operator()(const CacheKey& k) const {
      return static_cast<std::size_t>(cache_key_hash(k));
    }
  };
  using LruList = std::list<std::pair<CacheKey, CacheEntry>>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<CacheKey, LruList::iterator, KeyHash> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t insertions_ = 0;
};

}  // namespace fpart::serve
