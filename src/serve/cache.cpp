#include "serve/cache.hpp"

#include "core/options.hpp"
#include "hypergraph/hypergraph.hpp"
#include "obs/json.hpp"
#include "report/run_report.hpp"

namespace fpart::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFFu;
    h *= kFnvPrime;
  }
}

void fnv_mix_str(std::uint64_t& h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  // Length terminator so ("ab","c") and ("a","bc") cannot collide into
  // the same stream.
  fnv_mix_u64(h, s.size());
}

using u128 = unsigned __int128;

constexpr u128 kFnv128Prime = (u128(1) << 88) + (u128(1) << 8) + 0x3b;
constexpr u128 kFnv128Offset =
    (u128(0x6c62272e07bb0142ull) << 64) | 0x62b821756295c58dull;

void fnv128_mix_u64(u128& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFFu;
    h *= kFnv128Prime;
  }
}

void fnv128_mix_str(u128& h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnv128Prime;
  }
  fnv128_mix_u64(h, s.size());
}

}  // namespace

std::uint64_t cache_key_hash(const CacheKey& key) {
  std::uint64_t h = kFnvOffset;
  fnv_mix_u64(h, key.circuit_digest);
  fnv_mix_str(h, key.device);
  fnv_mix_str(h, key.options_canonical);
  fnv_mix_u64(h, key.seed);
  return h;
}

std::string cache_key_hex128(const CacheKey& key) {
  u128 h = kFnv128Offset;
  fnv128_mix_u64(h, key.circuit_digest);
  fnv128_mix_str(h, key.device);
  fnv128_mix_str(h, key.options_canonical);
  fnv128_mix_u64(h, key.seed);
  static const char* kHex = "0123456789abcdef";
  std::string hex(32, '0');
  for (int i = 0; i < 32; ++i) {
    hex[31 - i] = kHex[static_cast<unsigned>((h >> (i * 4)) & 0xF)];
  }
  return hex;
}

std::string canonical_job_options(const runtime::JobSpec& spec) {
  Options opt;
  opt.seed = spec.seed;
  obs::JsonWriter w;
  w.begin_object();
  w.key("fill");
  w.value(spec.fill);
  w.key("method");
  w.value(spec.method);
  w.key("options");
  w.raw_value(options_json(opt));
  w.key("portfolio");
  w.value(spec.portfolio);
  w.end_object();
  return w.take();
}

CacheKey make_cache_key(const Hypergraph& h, const runtime::JobSpec& spec) {
  CacheKey key;
  key.circuit_digest = h.structural_digest();
  key.device = spec.device;
  key.options_canonical = canonical_job_options(spec);
  key.seed = spec.seed;
  return key;
}

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {}

std::optional<CacheEntry> ResultCache::lookup(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void ResultCache::insert(const CacheKey& key, CacheEntry entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++insertions_;
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.insertions = insertions_;
  s.size = lru_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace fpart::serve
