// Minimal blocking client for the fpart_serve wire protocol: connect to
// a Unix-domain path or a loopback TCP port, write one request line,
// read one response line. Shared by tools/fpart_submit, the serve bench
// and the socket round-trip tests so none of them hand-roll framing.
#pragma once

#include <string>

namespace fpart::serve {

class Client {
 public:
  /// Connects to a Unix-domain socket path. Throws PreconditionError on
  /// failure. `retry_seconds` keeps retrying the connect (100ms apart)
  /// while the daemon is still binding — 0 means a single attempt.
  static Client connect_unix(const std::string& path,
                             double retry_seconds = 0.0);

  /// Connects to a loopback TCP port; same retry contract.
  static Client connect_tcp(int port, double retry_seconds = 0.0);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends `line` (newline appended) and blocks until the matching
  /// response line arrives. Throws PreconditionError when the daemon
  /// hangs up mid-response.
  std::string roundtrip(const std::string& line);

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
  std::string buffer_;  // bytes past the last returned response line
};

}  // namespace fpart::serve
