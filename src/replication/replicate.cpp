#include "replication/replicate.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "util/assert.hpp"

namespace fpart {

namespace {

/// Presence-aware pin accounting over one assignment + replica overlay.
class ReplicationState {
 public:
  ReplicationState(const Hypergraph& h, const Device& d,
                   std::span<const BlockId> assignment, std::uint32_t k,
                   const ReplicationConfig& config)
      : h_(h), d_(d), assignment_(assignment), k_(k) {
    FPART_REQUIRE(config.block_size_budget.empty() ||
                      config.block_size_budget.size() == k,
                  "per-block size budgets must cover every block");
    FPART_REQUIRE(config.block_pin_budget.empty() ||
                      config.block_pin_budget.size() == k,
                  "per-block pin budgets must cover every block");
    size_budget_.assign(k, d.s_max_cells());
    pin_budget_.assign(k, d.t_max());
    for (std::size_t b = 0; b < config.block_size_budget.size(); ++b) {
      size_budget_[b] = config.block_size_budget[b];
    }
    for (std::size_t b = 0; b < config.block_pin_budget.size(); ++b) {
      pin_budget_[b] = config.block_pin_budget[b];
    }
    present_.assign(k, std::vector<std::uint8_t>(h.num_nodes(), 0));
    replica_blocks_.assign(h.num_nodes(), {});
    sizes_.assign(k, 0);
    pins_.assign(k, 0);
    for (NodeId v = 0; v < h.num_nodes(); ++v) {
      if (h.is_terminal(v)) continue;
      const BlockId b = assignment[v];
      FPART_REQUIRE(b < k, "replication: invalid assignment");
      present_[b][v] = 1;
      sizes_[b] += h.node_size(v);
    }
    recompute_pins();
  }

  const Hypergraph& graph() const { return h_; }
  std::uint32_t num_blocks() const { return k_; }
  std::uint64_t block_pins(BlockId b) const { return pins_[b]; }
  std::uint64_t block_size(BlockId b) const { return sizes_[b]; }
  std::uint64_t total_pins() const {
    std::uint64_t sum = 0;
    for (auto p : pins_) sum += p;
    return sum;
  }
  bool is_replica(BlockId b, NodeId v) const {
    return present_[b][v] && assignment_[v] != b;
  }
  bool present(BlockId b, NodeId v) const { return present_[b][v] != 0; }

  NodeId driver_of(NetId e) const { return h_.interior_pins(e)[0]; }

  /// Blocks where any pin of `span` is present (assignment + replicas).
  void collect_present_blocks(std::span<const NodeId> nodes,
                              std::vector<std::uint8_t>& out) const {
    for (NodeId v : nodes) {
      out[assignment_[v]] = 1;
      for (BlockId b : replica_blocks_[v]) out[b] = 1;
    }
  }

  /// Adds net e's pin contributions (per the replication pin model) to
  /// `acc` with the given sign.
  void accumulate_net(NetId e, std::vector<std::int64_t>& acc,
                      std::int64_t sign) const {
    const auto pins = h_.interior_pins(e);
    if (pins.empty()) return;
    if (h_.net_terminal_count(e) > 0) {
      // Pad nets: one pin per present block.
      for (BlockId b = 0; b < k_; ++b) {
        for (NodeId v : pins) {
          if (present_[b][v]) {
            acc[b] += sign;
            break;
          }
        }
      }
      return;
    }
    if (pins.size() < 2) return;
    const NodeId driver = pins[0];
    const BlockId home = assignment_[driver];
    bool any_importer = false;
    for (BlockId b = 0; b < k_; ++b) {
      if (present_[b][driver]) continue;
      bool sink_here = false;
      for (std::size_t i = 1; i < pins.size(); ++i) {
        if (present_[b][pins[i]]) {
          sink_here = true;
          break;
        }
      }
      if (sink_here) {
        acc[b] += sign;  // import pin
        any_importer = true;
      }
    }
    if (any_importer) acc[home] += sign;  // one export pin at the home
  }

  void recompute_pins() {
    std::vector<std::int64_t> acc(k_, 0);
    for (NetId e = 0; e < h_.num_nets(); ++e) accumulate_net(e, acc, +1);
    for (BlockId b = 0; b < k_; ++b) {
      pins_[b] = static_cast<std::uint64_t>(acc[b]);
    }
  }

  struct GainEval {
    std::int64_t total_gain = 0;  // pins removed minus pins added
    bool feasible = false;        // target block stays within the device
    std::vector<std::int64_t> delta;  // per-block pin delta (after-before)
  };

  /// Evaluates replicating `driver` into block `b` (must not be present).
  GainEval evaluate(NodeId driver, BlockId b) {
    GainEval eval;
    eval.delta.assign(k_, 0);
    if (sizes_[b] + h_.node_size(driver) > size_budget_[b]) return eval;

    std::vector<std::int64_t> before(k_, 0);
    std::vector<std::int64_t> after(k_, 0);
    for (NetId e : h_.nets(driver)) accumulate_net(e, before, +1);
    present_[b][driver] = 1;
    for (NetId e : h_.nets(driver)) accumulate_net(e, after, +1);
    present_[b][driver] = 0;

    eval.feasible = true;
    for (BlockId blk = 0; blk < k_; ++blk) {
      eval.delta[blk] = after[blk] - before[blk];
      eval.total_gain -= eval.delta[blk];
      const std::int64_t new_pins =
          static_cast<std::int64_t>(pins_[blk]) + eval.delta[blk];
      if (eval.delta[blk] > 0 &&
          static_cast<std::uint64_t>(new_pins) > pin_budget_[blk]) {
        eval.feasible = false;
      }
    }
    return eval;
  }

  void apply(NodeId driver, BlockId b, const GainEval& eval) {
    FPART_ASSERT(!present_[b][driver]);
    present_[b][driver] = 1;
    replica_blocks_[driver].push_back(b);
    sizes_[b] += h_.node_size(driver);
    for (BlockId blk = 0; blk < k_; ++blk) {
      pins_[blk] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(pins_[blk]) + eval.delta[blk]);
    }
  }

  /// All (driver, importing block) pairs under the current overlay.
  std::vector<std::pair<NodeId, BlockId>> candidates() const {
    std::set<std::pair<NodeId, BlockId>> out;
    std::vector<std::uint8_t> sink_blocks(k_, 0);
    for (NetId e = 0; e < h_.num_nets(); ++e) {
      if (h_.net_terminal_count(e) > 0) continue;  // pads pin regardless
      const auto pins = h_.interior_pins(e);
      if (pins.size() < 2) continue;
      const NodeId driver = pins[0];
      std::fill(sink_blocks.begin(), sink_blocks.end(), 0);
      collect_present_blocks(pins.subspan(1), sink_blocks);
      for (BlockId b = 0; b < k_; ++b) {
        if (sink_blocks[b] && !present_[b][driver]) {
          out.emplace(driver, b);
        }
      }
    }
    return {out.begin(), out.end()};
  }

  std::vector<std::vector<std::uint8_t>> replica_bitmaps() const {
    auto maps = present_;
    for (NodeId v = 0; v < h_.num_nodes(); ++v) {
      if (!h_.is_terminal(v)) maps[assignment_[v]][v] = 0;  // keep replicas only
    }
    return maps;
  }

  bool all_feasible() const {
    for (BlockId b = 0; b < k_; ++b) {
      if (sizes_[b] > size_budget_[b] || pins_[b] > pin_budget_[b]) {
        return false;
      }
    }
    return true;
  }

  const std::vector<std::uint64_t>& pins_vector() const { return pins_; }
  const std::vector<std::uint64_t>& sizes_vector() const { return sizes_; }

 private:
  const Hypergraph& h_;
  const Device& d_;
  std::span<const BlockId> assignment_;
  std::uint32_t k_;
  std::vector<std::vector<std::uint8_t>> present_;  // [block][node]
  std::vector<std::vector<BlockId>> replica_blocks_;
  std::vector<std::uint64_t> sizes_;
  std::vector<std::uint64_t> pins_;
  std::vector<std::uint64_t> size_budget_;
  std::vector<std::uint64_t> pin_budget_;
};

}  // namespace

ReplicationResult replicate_for_pins(const Hypergraph& h, const Device& d,
                                     std::span<const BlockId> assignment,
                                     std::uint32_t k,
                                     const ReplicationConfig& config) {
  FPART_REQUIRE(k >= 1, "replication: k must be >= 1");
  FPART_REQUIRE(assignment.size() == h.num_nodes(),
                "replication: assignment size mismatch");
  ReplicationState state(h, d, assignment, k, config);

  ReplicationResult result;
  result.pins_before = state.total_pins();

  while (config.max_replicas == 0 || result.replicas < config.max_replicas) {
    NodeId best_driver = kInvalidNode;
    BlockId best_block = kInvalidBlock;
    ReplicationState::GainEval best_eval;
    for (const auto& [driver, block] : state.candidates()) {
      auto eval = state.evaluate(driver, block);
      if (!eval.feasible || eval.total_gain <= 0) continue;
      if (best_driver == kInvalidNode ||
          eval.total_gain > best_eval.total_gain) {
        best_driver = driver;
        best_block = block;
        best_eval = std::move(eval);
      }
    }
    if (best_driver == kInvalidNode) break;
    state.apply(best_driver, best_block, best_eval);
    ++result.replicas;
  }

  result.pins_after = state.total_pins();
  result.block_pins = state.pins_vector();
  result.block_sizes = state.sizes_vector();
  result.replica_in_block = state.replica_bitmaps();
  result.feasible = state.all_feasible();
  FPART_ASSERT_MSG(result.pins_after <= result.pins_before,
                   "replication must never increase total pins");
  return result;
}

}  // namespace fpart
