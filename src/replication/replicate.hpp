// Logic replication for I/O pin reduction (the technique of r+p.0 [11]
// and PROP [12], which FPART deliberately avoids — reproduced here as an
// optional post-pass so the trade-off can be measured).
//
// Direction convention: structural netlists carry no signal direction
// (exactly the limitation the paper cites: "the functional replication
// possibility depends on whether such functional information is
// available in the used input format"). We adopt the standard structural
// convention that the FIRST interior pin of a net is its driver and the
// remaining pins are sinks.
//
// Pin model with replication, for a net e without pads:
//   * a block holding a sink of e but no copy of e's driver IMPORTS the
//     signal: +1 pin;
//   * if at least one block imports, the driver's home block EXPORTS:
//     +1 pin (one export serves all importers — board-level fanout);
//   * blocks holding a driver copy serve their local sinks pin-free.
// Nets with pads keep a pin in every block they touch (pad connection).
//
// The optimizer greedily replicates driver cells into importing blocks
// while total pin demand strictly drops and the target block stays
// device-feasible.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "device/device.hpp"
#include "hypergraph/hypergraph.hpp"

namespace fpart {

struct ReplicationConfig {
  /// Cap on accepted replicas (0 = until no gain remains).
  std::uint32_t max_replicas = 0;
  /// Per-block budget overrides for heterogeneous boards where blocks
  /// sit on different devices (empty = use the Device passed to
  /// replicate_for_pins for every block). Sizes in technology cells.
  std::vector<std::uint64_t> block_size_budget;
  std::vector<std::uint64_t> block_pin_budget;
};

struct ReplicationResult {
  /// replica_in_block[b][v] == 1 iff cell v was copied into block b
  /// (in addition to its home block).
  std::vector<std::vector<std::uint8_t>> replica_in_block;
  std::vector<std::uint64_t> block_pins;   // after replication
  std::vector<std::uint64_t> block_sizes;  // including replicas
  std::uint32_t replicas = 0;
  std::uint64_t pins_before = 0;
  std::uint64_t pins_after = 0;
  /// All blocks still meet the device after replication (always true on
  /// return — infeasible replications are never accepted).
  bool feasible = true;
};

/// Runs the greedy replication pass on a feasible `k`-way assignment of
/// `h` (terminals kInvalidBlock). The input assignment itself is not
/// modified; replicas are reported on top of it.
ReplicationResult replicate_for_pins(const Hypergraph& h, const Device& d,
                                     std::span<const BlockId> assignment,
                                     std::uint32_t k,
                                     const ReplicationConfig& config = {});

}  // namespace fpart
