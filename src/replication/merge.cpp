#include "replication/merge.hpp"

#include <vector>

#include "util/assert.hpp"

namespace fpart {

namespace {

/// Pin demand of the union of blocks a and b, computed without mutating
/// the partition: a net demands a pin on the union iff it touches a or b
/// and (has pads or has interior pins outside a∪b).
std::uint64_t union_pins(const Partition& p, BlockId a, BlockId b) {
  const Hypergraph& h = p.graph();
  std::uint64_t pins = 0;
  for (NetId e = 0; e < h.num_nets(); ++e) {
    const std::uint32_t inside = p.net_pins_in(e, a) + p.net_pins_in(e, b);
    if (inside == 0) continue;
    if (h.net_terminal_count(e) > 0 ||
        inside < h.net_interior_pin_count(e)) {
      ++pins;
    }
  }
  return pins;
}

/// Cut nets running between a and b (the saving a merge realizes).
std::uint64_t pair_cut(const Partition& p, BlockId a, BlockId b) {
  const Hypergraph& h = p.graph();
  std::uint64_t cut = 0;
  for (NetId e = 0; e < h.num_nets(); ++e) {
    if (p.net_pins_in(e, a) > 0 && p.net_pins_in(e, b) > 0) ++cut;
  }
  return cut;
}

}  // namespace

MergeStats merge_feasible_blocks(Partition& p, const Device& d) {
  MergeStats stats;
  stats.k_before = p.num_blocks();

  while (p.num_blocks() >= 2) {
    BlockId best_a = kInvalidBlock;
    BlockId best_b = kInvalidBlock;
    std::uint64_t best_cut = 0;
    for (BlockId a = 0; a < p.num_blocks(); ++a) {
      for (BlockId b = a + 1; b < p.num_blocks(); ++b) {
        if (!d.size_ok(p.block_size(a) + p.block_size(b))) continue;
        if (!d.pins_ok(union_pins(p, a, b))) continue;
        const std::uint64_t cut = pair_cut(p, a, b);
        if (best_a == kInvalidBlock || cut > best_cut) {
          best_a = a;
          best_b = b;
          best_cut = cut;
        }
      }
    }
    if (best_a == kInvalidBlock) break;
    // Merge b into a, then drop the emptied block.
    for (NodeId v : p.block_nodes(best_b)) p.move(v, best_a);
    p.swap_blocks(best_b, p.num_blocks() - 1);
    p.remove_last_block();
    ++stats.merges;
  }

  stats.k_after = p.num_blocks();
  return stats;
}

}  // namespace fpart
