// Block-merging post-optimization.
//
// After a multi-way partition is found, pairs of under-filled blocks can
// sometimes be fused into one device (their union may even need FEWER
// pins, since nets running between them become internal). This pass
// greedily merges feasible pairs until none remain — a cheap
// re-optimization in the spirit of the "o" step of PROP's (p,o,p) flow,
// and a direct way to claw back devices from any peeling method.
#pragma once

#include "core/result.hpp"
#include "device/device.hpp"
#include "hypergraph/hypergraph.hpp"
#include "partition/partition.hpp"

namespace fpart {

struct MergeStats {
  std::uint32_t merges = 0;
  std::uint32_t k_before = 0;
  std::uint32_t k_after = 0;
};

/// Greedily merges block pairs of `p` whose union still meets `d`
/// (preferring the pair with the most cut nets between them, i.e. the
/// largest pin saving). Mutates `p` in place.
MergeStats merge_feasible_blocks(Partition& p, const Device& d);

}  // namespace fpart
