// Move gain computation on the cut-net metric (shared by the classic FM
// bipartitioner and the Sanchis multiway refiner).
//
// gain1(v, f→t): change in cutset size if v moves from its block f to t.
// A net e (interior pin count P ≥ 2) contributes
//   +1  if Φ(e,f) == 1 and Φ(e,t) == P−1   (e becomes uncut, inside t)
//   −1  if Φ(e,f) == P                     (e was uncut inside f, now cut)
//
// gain2(v, f→t): bounded 2-level lookahead in the spirit of
// Krishnamurthy [8] / Sanchis [14], used only for tie-breaking among
// equal gain1 candidates:
//   +1  if P ≥ 3 and Φ(e,f) == 2 and Φ(e,t) == P−2
//       (after the move one further f→t move uncuts e)
//   −1  if Φ(e,f) == P−1
//       (f nearly owned e; moving v away pushes e further from uncut)
#pragma once

#include "hypergraph/hypergraph.hpp"
#include "partition/partition.hpp"

namespace fpart {

/// First-level gain of moving v (interior) from its block to `to`.
int move_gain(const Partition& p, NodeId v, BlockId to);

/// Second-level (lookahead) gain, tie-break only.
int move_gain_level2(const Partition& p, NodeId v, BlockId to);

}  // namespace fpart
