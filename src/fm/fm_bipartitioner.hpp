// Classic Fiduccia–Mattheyses iterative-improvement bipartitioning [4].
//
// Operates on two designated blocks of a (possibly larger) partition:
// all other blocks are frozen context, so this doubles as the pairwise
// "Improve(R_k, P_k)" primitive of the greedy k-way.x baseline [9],[11].
// The objective is the global cut-net count; moves respect per-side size
// windows. Each pass moves every unlocked cell at most once, tracking the
// best prefix (lowest cut, ties broken toward balanced sizes) and rolling
// back the tail, and passes repeat until one yields no improvement.
#pragma once

#include <cstdint>
#include <vector>

#include "partition/partition.hpp"

namespace fpart {

struct FmConfig {
  int max_passes = 10;
  /// Bound on candidates inspected per direction when the bucket head is
  /// blocked by the size window.
  std::size_t scan_limit = 64;
};

struct FmResult {
  std::uint64_t initial_cut = 0;
  std::uint64_t final_cut = 0;
  int passes = 0;
  std::uint32_t total_moves = 0;
};

/// Size window for one side.
struct SizeWindow {
  double lo = 0.0;
  double hi = 0.0;

  bool allows(std::uint64_t size) const {
    const double s = static_cast<double>(size);
    return s >= lo && s <= hi;
  }
};

class FmBipartitioner {
 public:
  /// Refines blocks `a` and `b` of `p` in place. The partition must
  /// outlive the bipartitioner.
  FmBipartitioner(Partition& p, BlockId a, BlockId b, FmConfig config = {});

  /// Runs FM passes with the given size windows. A move from f to t is
  /// legal iff f stays at or above its lower bound and t at or below its
  /// upper bound (so an initially oversized side can always shed cells).
  FmResult run(const SizeWindow& window_a, const SizeWindow& window_b);

 private:
  bool pass(const SizeWindow& wa, const SizeWindow& wb, FmResult& result);
  bool move_legal(NodeId v, BlockId from, const SizeWindow& wf,
                  const SizeWindow& wt) const;

  Partition& p_;
  BlockId a_;
  BlockId b_;
  FmConfig config_;

  // Delta-gain scratch, reused across moves so the hot loop never
  // allocates. `touched_` lists neighbors in first-encounter order (the
  // order in which the full-recompute scheme would have repositioned
  // them); `delta_[w]` accumulates w's exact gain change across all nets
  // of the moved node; `touch_epoch_` dedupes without clearing.
  std::vector<int> delta_;
  std::vector<std::uint32_t> touch_epoch_;
  std::vector<NodeId> touched_;
  std::uint32_t epoch_ = 0;
};

}  // namespace fpart
