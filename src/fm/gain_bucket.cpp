#include "fm/gain_bucket.hpp"

#include <algorithm>
#include <utility>

#include "obs/stats.hpp"
#include "util/assert.hpp"

namespace fpart {

namespace {
std::size_t bucket_count(int max_gain) {
  FPART_REQUIRE(max_gain >= 0, "max_gain must be non-negative");
  return 2 * static_cast<std::size_t>(max_gain) + 1;
}
}  // namespace

GainBucket::GainBucket(std::size_t universe, int max_gain)
    : max_gain_(max_gain),
      best_(-max_gain),
      head_(bucket_count(max_gain), kNil),
      next_(universe, kNil),
      prev_(universe, kNil),
      gain_of_(universe, kAbsent) {}

GainBucket::~GainBucket() { flush_stats(); }

GainBucket::GainBucket(GainBucket&& other) noexcept
    : max_gain_(other.max_gain_),
      size_(other.size_),
      best_(other.best_),
      head_(std::move(other.head_)),
      next_(std::move(other.next_)),
      prev_(std::move(other.prev_)),
      gain_of_(std::move(other.gain_of_)),
      pushes_(std::exchange(other.pushes_, 0)),
      pops_(std::exchange(other.pops_, 0)) {}

GainBucket& GainBucket::operator=(GainBucket&& other) noexcept {
  if (this != &other) {
    flush_stats();
    max_gain_ = other.max_gain_;
    size_ = other.size_;
    best_ = other.best_;
    head_ = std::move(other.head_);
    next_ = std::move(other.next_);
    prev_ = std::move(other.prev_);
    gain_of_ = std::move(other.gain_of_);
    pushes_ = std::exchange(other.pushes_, 0);
    pops_ = std::exchange(other.pops_, 0);
  }
  return *this;
}

void GainBucket::flush_stats() {
  if (pushes_ != 0) FPART_COUNTER_ADD("fm.bucket_pushes", pushes_);
  if (pops_ != 0) FPART_COUNTER_ADD("fm.bucket_pops", pops_);
  pushes_ = 0;
  pops_ = 0;
}

int GainBucket::clamp(int gain) const {
  return std::clamp(gain, -max_gain_, max_gain_);
}

int GainBucket::gain(std::uint32_t id) const {
  FPART_REQUIRE(contains(id), "gain: id not present");
  return gain_of_[id];
}

void GainBucket::insert(std::uint32_t id, int gain) {
  FPART_REQUIRE(id < gain_of_.size(), "insert: id out of universe");
  FPART_REQUIRE(!contains(id), "insert: id already present");
  ++pushes_;
  gain = clamp(gain);
  gain_of_[id] = gain;
  const std::size_t slot = offset(gain);
  next_[id] = head_[slot];
  prev_[id] = kNil;
  if (head_[slot] != kNil) prev_[head_[slot]] = id;
  head_[slot] = id;
  ++size_;
  best_ = std::max(best_, gain);
}

void GainBucket::remove(std::uint32_t id) {
  FPART_REQUIRE(contains(id), "remove: id not present");
  ++pops_;
  const std::size_t slot = offset(gain_of_[id]);
  if (prev_[id] != kNil) {
    next_[prev_[id]] = next_[id];
  } else {
    head_[slot] = next_[id];
  }
  if (next_[id] != kNil) prev_[next_[id]] = prev_[id];
  gain_of_[id] = kAbsent;
  next_[id] = prev_[id] = kNil;
  --size_;
}

void GainBucket::update(std::uint32_t id, int gain) {
  if (contains(id)) {
    if (gain_of_[id] == clamp(gain)) return;
    remove(id);
  }
  insert(id, gain);
}

void GainBucket::clear() {
  std::fill(head_.begin(), head_.end(), kNil);
  std::fill(gain_of_.begin(), gain_of_.end(), kAbsent);
  std::fill(next_.begin(), next_.end(), kNil);
  std::fill(prev_.begin(), prev_.end(), kNil);
  size_ = 0;
  best_ = -max_gain_;
}

std::optional<int> GainBucket::best_gain() const {
  if (size_ == 0) return std::nullopt;
  while (best_ > -max_gain_ && head_[offset(best_)] == kNil) --best_;
  if (head_[offset(best_)] == kNil) return std::nullopt;  // defensive
  return best_;
}

void GainBucket::for_each_at_gain(
    int gain, const std::function<bool(std::uint32_t)>& visit) const {
  gain = clamp(gain);
  for (std::uint32_t id = head_[offset(gain)]; id != kNil; id = next_[id]) {
    if (visit(id)) return;
  }
}

std::optional<std::uint32_t> GainBucket::find_first(
    const std::function<bool(std::uint32_t, int)>& visit,
    std::size_t scan_limit) const {
  const auto top = best_gain();
  if (!top) return std::nullopt;
  std::size_t scanned = 0;
  for (int g = *top; g >= -max_gain_; --g) {
    for (std::uint32_t id = head_[offset(g)]; id != kNil; id = next_[id]) {
      if (scanned++ >= scan_limit) return std::nullopt;
      if (visit(id, g)) return id;
    }
  }
  return std::nullopt;
}

}  // namespace fpart
