#include "fm/fm_bipartitioner.hpp"

#include <vector>

#include "fm/gain_bucket.hpp"
#include "fm/gains.hpp"
#include "obs/phase.hpp"
#include "obs/recorder.hpp"
#include "obs/stats.hpp"
#include "obs/timeseries.hpp"
#include "partition/audit.hpp"
#include "util/assert.hpp"

namespace fpart {

FmBipartitioner::FmBipartitioner(Partition& p, BlockId a, BlockId b,
                                 FmConfig config)
    : p_(p), a_(a), b_(b), config_(config) {
  FPART_REQUIRE(a < p.num_blocks() && b < p.num_blocks() && a != b,
                "FM needs two distinct existing blocks");
}

bool FmBipartitioner::move_legal(NodeId v, BlockId from, const SizeWindow& wf,
                                 const SizeWindow& wt) const {
  const double s = static_cast<double>(p_.graph().node_size(v));
  const BlockId to = from == a_ ? b_ : a_;
  const double after_from = static_cast<double>(p_.block_size(from)) - s;
  const double after_to = static_cast<double>(p_.block_size(to)) + s;
  return after_from >= wf.lo && after_to <= wt.hi;
}

FmResult FmBipartitioner::run(const SizeWindow& window_a,
                              const SizeWindow& window_b) {
  const obs::ScopedPhase phase("fm.run");
  FmResult result;
  result.initial_cut = p_.cut_size();
  for (int i = 0; i < config_.max_passes; ++i) {
    ++result.passes;
    FPART_COUNTER_INC("fm.passes");
    if (!pass(window_a, window_b, result)) break;
  }
  result.final_cut = p_.cut_size();
  return result;
}

bool FmBipartitioner::pass(const SizeWindow& wa, const SizeWindow& wb,
                           FmResult& result) {
  const Hypergraph& h = p_.graph();
  const int max_gain = static_cast<int>(h.max_node_degree());
  GainBucket to_b(h.num_nodes(), max_gain);  // cells in a, direction a->b
  GainBucket to_a(h.num_nodes(), max_gain);  // cells in b, direction b->a

  std::vector<std::uint8_t> locked(h.num_nodes(), 0);
  if (delta_.size() < h.num_nodes()) {
    delta_.assign(h.num_nodes(), 0);
    touch_epoch_.assign(h.num_nodes(), 0);
    touched_.reserve(h.num_nodes());
  }
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (h.is_terminal(v)) continue;
    const BlockId blk = p_.block_of(v);
    if (blk == a_) {
      to_b.insert(v, move_gain(p_, v, b_));
    } else if (blk == b_) {
      to_a.insert(v, move_gain(p_, v, a_));
    }
  }

  const std::uint64_t start_cut = p_.cut_size();
  std::uint64_t best_cut = start_cut;
  std::size_t best_len = 0;
  std::vector<std::pair<NodeId, BlockId>> log;  // (node, previous block)
  obs::record_event(obs::EventKind::kPassBegin, obs::Engine::kFm,
                    result.passes, 0, 0, obs::kNoGain, start_cut);

  while (true) {
    // Best legal candidate per direction.
    auto probe = [&](GainBucket& bucket, BlockId from, const SizeWindow& wf,
                     const SizeWindow& wt) {
      return bucket.find_first(
          [&](std::uint32_t v, int) {
            return move_legal(static_cast<NodeId>(v), from, wf, wt);
          },
          config_.scan_limit);
    };
    const auto cand_ab = probe(to_b, a_, wa, wb);
    const auto cand_ba = probe(to_a, b_, wb, wa);
    if (!cand_ab && !cand_ba) break;

    bool pick_ab;
    if (cand_ab && cand_ba) {
      const int ga = to_b.gain(*cand_ab);
      const int gb = to_a.gain(*cand_ba);
      if (ga != gb) {
        pick_ab = ga > gb;
      } else {
        // Tie: move out of the larger side (balances sizes).
        pick_ab = p_.block_size(a_) >= p_.block_size(b_);
      }
    } else {
      pick_ab = cand_ab.has_value();
    }

    const NodeId v = pick_ab ? *cand_ab : *cand_ba;
    const BlockId from = pick_ab ? a_ : b_;
    const BlockId to = pick_ab ? b_ : a_;

    GainBucket& bucket = pick_ab ? to_b : to_a;
    if (obs::recorder_enabled()) {
      obs::Recorder::instance().stage_gain(bucket.gain(v));
    }
    bucket.remove(v);
    locked[v] = 1;

    // Fused move + delta-gain kernel: each incident net's Φ row is
    // touched exactly once; the visitor computes the exact gain change
    // for neighbors on the from/to sides from the pre-move counts
    // instead of recomputing every neighbor's gain from scratch.
    ++epoch_;
    const std::uint32_t ep = epoch_;
    touched_.clear();
    p_.move(v, to, [&](NetId e, std::uint32_t total, std::uint32_t old_f,
                       std::uint32_t old_t) {
      // Nets with < 2 interior pins only contain v itself (now locked).
      if (total < 2) return;
      const std::uint32_t new_f = old_f - 1;
      const std::uint32_t new_t = old_t + 1;
      // Gain contribution of net e for a neighbor w in block `from`
      // moving to `to` is [Φ_f==1 && Φ_t==total-1] − [Φ_f==total];
      // d_from/d_to are the post-minus-pre differences of that term.
      const int d_from = ((new_f == 1 && new_t == total - 1) ? 1 : 0) -
                         ((new_f == total) ? 1 : 0) -
                         ((old_f == 1 && old_t == total - 1) ? 1 : 0) +
                         ((old_f == total) ? 1 : 0);
      const int d_to = ((new_t == 1 && new_f == total - 1) ? 1 : 0) -
                       ((new_t == total) ? 1 : 0) -
                       ((old_t == 1 && old_f == total - 1) ? 1 : 0) +
                       ((old_t == total) ? 1 : 0);
      for (NodeId w : h.interior_pins(e)) {
        if (locked[w]) continue;
        const BlockId blk = p_.block_of(w);
        int d;
        if (blk == from) {
          d = d_from;
        } else if (blk == to) {
          d = d_to;
        } else {
          continue;  // frozen context block: not in any bucket
        }
        // Record the first encounter even when d == 0: a later net may
        // contribute, and the reposition order must match the order the
        // full-recompute scheme would have used.
        if (touch_epoch_[w] != ep) {
          touch_epoch_[w] = ep;
          delta_[w] = d;
          touched_.push_back(w);
        } else {
          delta_[w] += d;
        }
      }
    });
    // Apply accumulated deltas in first-encounter order. Zero deltas
    // are skipped: GainBucket::update is a no-op on an unchanged gain,
    // so the bucket evolution stays byte-identical to full recompute.
    for (NodeId w : touched_) {
      const int d = delta_[w];
      if (d == 0) continue;
      GainBucket& bw = p_.block_of(w) == a_ ? to_b : to_a;
      bw.update(w, bw.gain(w) + d);
    }

    log.emplace_back(v, from);
    ++result.total_moves;

    if (p_.cut_size() < best_cut) {
      best_cut = p_.cut_size();
      best_len = log.size();
    }

    if (obs::timeseries_enabled() &&
        obs::TimeSeries::instance().should_sample_move()) {
      obs::sample_point(
          obs::SampleKind::kWindow, obs::Engine::kFm, result.passes,
          p_.cut_size(), best_cut, 0, p_.num_blocks(),
          static_cast<std::uint32_t>(log.size()), 0,
          static_cast<std::uint32_t>(to_a.size() + to_b.size()));
    }
  }

  if (audit_enabled()) {
    // Gain-bucket audit: before rollback the buckets still describe the
    // unlocked cells, so every stored gain must equal a fresh recompute.
    for (NodeId v = 0; v < h.num_nodes(); ++v) {
      if (h.is_terminal(v) || locked[v]) continue;
      const BlockId blk = p_.block_of(v);
      if (blk != a_ && blk != b_) continue;
      GainBucket& bucket = blk == a_ ? to_b : to_a;
      const BlockId to = blk == a_ ? b_ : a_;
      const int fresh = move_gain(p_, v, to);
      if (!bucket.contains(v)) {
        audit_fail("fm.pass", "unlocked node " + std::to_string(v) +
                                  " missing from its gain bucket");
      }
      if (bucket.gain(v) != fresh) {
        audit_fail("fm.pass",
                   "stale gain for node " + std::to_string(v) + ": bucket " +
                       std::to_string(bucket.gain(v)) + ", recomputed " +
                       std::to_string(fresh));
      }
    }
  }

  // Roll back the tail beyond the best prefix.
  if (log.size() > best_len) {
    obs::record_event(obs::EventKind::kRollback, obs::Engine::kFm,
                      static_cast<std::uint32_t>(log.size() - best_len),
                      static_cast<std::uint32_t>(best_len), 0, obs::kNoGain,
                      best_cut);
  }
  for (std::size_t i = log.size(); i > best_len; --i) {
    p_.move(log[i - 1].first, log[i - 1].second);
  }
  // Counters are batched per pass to keep the move loop atomic-free.
  FPART_COUNTER_ADD("fm.moves_attempted", log.size());
  FPART_COUNTER_ADD("fm.moves_accepted", best_len);
  FPART_COUNTER_ADD("fm.moves_rolled_back", log.size() - best_len);
  FPART_HISTOGRAM_RECORD(
      "fm.pass_gain",
      static_cast<std::int64_t>(start_cut) -
          static_cast<std::int64_t>(best_cut));
  FPART_ASSERT(p_.cut_size() == best_cut);
  obs::record_event(obs::EventKind::kPassEnd, obs::Engine::kFm,
                    static_cast<std::uint32_t>(log.size()),
                    static_cast<std::uint32_t>(log.size() - best_len),
                    best_cut < start_cut ? 1 : 0, obs::kNoGain, best_cut);
  obs::sample_point(obs::SampleKind::kPass, obs::Engine::kFm, result.passes,
                    p_.cut_size(), best_cut, 0, p_.num_blocks(),
                    static_cast<std::uint32_t>(log.size()),
                    static_cast<std::uint32_t>(log.size() - best_len),
                    static_cast<std::uint32_t>(to_a.size() + to_b.size()));
  if (audit_enabled()) audit_partition(p_, "fm.pass");
  return best_cut < start_cut;
}

}  // namespace fpart
