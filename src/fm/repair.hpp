// Feasibility repair helpers shared by FPART and the baselines.
#pragma once

#include "device/device.hpp"
#include "partition/partition.hpp"

namespace fpart {

/// Moves cells from `block` to `sink` (best cut gain first, ties broken
/// by largest pin-demand reduction, then smallest cell size, then lowest
/// id) until `block` meets the device constraints. Terminates because a
/// single cell is always feasible (cell degree never exceeds T_MAX on
/// real CLB netlists; asserted).
void shrink_to_feasible(Partition& p, const Device& d, BlockId block,
                        BlockId sink);

/// ΔT_b if interior node v (currently elsewhere) were added to block b.
int pin_delta_if_added(const Partition& p, NodeId v, BlockId b);

/// ΔT_b if interior node v (currently in b) left block b.
int pin_delta_if_removed(const Partition& p, NodeId v, BlockId b);

}  // namespace fpart
