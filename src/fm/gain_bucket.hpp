// Classic Fiduccia–Mattheyses gain bucket structure.
//
// A doubly-linked bucket list over a fixed universe of item ids, indexed
// by integer gain in [-max_gain, +max_gain]. Insertions are LIFO within a
// bucket (the ordering FM's authors and later studies [5],[7] found to
// work well), removal is O(1), and the maximum non-empty gain is tracked
// with a descending pointer.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "hypergraph/types.hpp"

namespace fpart {

class GainBucket {
 public:
  /// `universe` ids in [0, universe); gains clamped to [-max_gain, max_gain].
  GainBucket(std::size_t universe, int max_gain);

  // Push/pop tallies are batched in plain members (the insert/remove
  // paths are the hottest loops in the repo — no atomics there) and
  // flushed to the obs registry on destruction / move-assignment.
  ~GainBucket();
  GainBucket(GainBucket&& other) noexcept;
  GainBucket& operator=(GainBucket&& other) noexcept;
  GainBucket(const GainBucket&) = delete;
  GainBucket& operator=(const GainBucket&) = delete;

  /// Adds the accumulated push/pop tallies to the "fm.bucket_pushes" /
  /// "fm.bucket_pops" counters and zeroes the local tallies.
  void flush_stats();

  bool contains(std::uint32_t id) const { return gain_of_[id] != kAbsent; }
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  int gain(std::uint32_t id) const;

  /// Inserts id with the given gain (id must not be present).
  void insert(std::uint32_t id, int gain);

  /// Removes id (must be present).
  void remove(std::uint32_t id);

  /// Re-inserts with a new gain (present or not).
  void update(std::uint32_t id, int gain);

  /// Removes all items.
  void clear();

  /// Highest gain currently present; nullopt when empty.
  std::optional<int> best_gain() const;

  /// Scans items from the best gain downward, LIFO within each bucket,
  /// invoking `visit(id, gain)` until it returns true (found) or
  /// `scan_limit` items have been visited. Returns the accepted id.
  std::optional<std::uint32_t> find_first(
      const std::function<bool(std::uint32_t, int)>& visit,
      std::size_t scan_limit) const;

  /// Visits the items stored at exactly `gain` in LIFO order until the
  /// visitor returns true. Used for tie-break scans among equal-gain
  /// candidates.
  void for_each_at_gain(int gain,
                        const std::function<bool(std::uint32_t)>& visit) const;

 private:
  static constexpr int kAbsent = INT32_MIN;
  std::size_t offset(int gain) const {
    return static_cast<std::size_t>(gain + max_gain_);
  }
  int clamp(int gain) const;

  int max_gain_;
  std::size_t size_ = 0;
  mutable int best_ = 0;  // descending hint: no non-empty bucket above it
  std::vector<std::uint32_t> head_;  // per gain bucket; kInvalid = empty
  std::vector<std::uint32_t> next_;
  std::vector<std::uint32_t> prev_;
  std::vector<int> gain_of_;  // kAbsent when not present
  std::uint64_t pushes_ = 0;  // flushed to the obs registry, see above
  std::uint64_t pops_ = 0;

  static constexpr std::uint32_t kNil = ~0u;
};

}  // namespace fpart
