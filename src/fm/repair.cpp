#include "fm/repair.hpp"

#include "fm/gains.hpp"
#include "obs/recorder.hpp"
#include "util/assert.hpp"

namespace fpart {

int pin_delta_if_added(const Partition& p, NodeId v, BlockId b) {
  const Hypergraph& h = p.graph();
  int delta = 0;
  for (NetId e : h.nets(v)) {
    const std::uint32_t total = h.net_interior_pin_count(e);
    const std::uint32_t term = h.net_terminal_count(e);
    const std::uint32_t phi = p.net_pins_in(e, b);
    const bool before = phi >= 1 && (term > 0 || phi < total);
    const bool after = term > 0 || phi + 1 < total;  // phi+1 >= 1 always
    delta += static_cast<int>(after) - static_cast<int>(before);
  }
  return delta;
}

int pin_delta_if_removed(const Partition& p, NodeId v, BlockId b) {
  const Hypergraph& h = p.graph();
  int delta = 0;
  for (NetId e : h.nets(v)) {
    const std::uint32_t total = h.net_interior_pin_count(e);
    const std::uint32_t term = h.net_terminal_count(e);
    const std::uint32_t phi = p.net_pins_in(e, b);
    const bool before = phi >= 1 && (term > 0 || phi < total);
    const bool after = phi - 1 >= 1 && (term > 0 || phi - 1 < total);
    delta += static_cast<int>(after) - static_cast<int>(before);
  }
  return delta;
}

void shrink_to_feasible(Partition& p, const Device& d, BlockId block,
                        BlockId sink) {
  std::uint32_t evicted = 0;
  while (!p.block_feasible(block, d)) {
    FPART_ASSERT_MSG(p.block_node_count(block) > 1,
                     "single cell violates device constraints "
                     "(cell degree exceeds T_MAX?)");
    NodeId best = kInvalidNode;
    int best_gain = 0;
    int best_pin_delta = 0;
    for (NodeId v : p.block_nodes(block)) {
      const int g = move_gain(p, v, sink);
      const int pd = pin_delta_if_removed(p, v, block);
      bool better = false;
      if (best == kInvalidNode) {
        better = true;
      } else if (g != best_gain) {
        better = g > best_gain;
      } else if (pd != best_pin_delta) {
        better = pd < best_pin_delta;
      } else {
        better = p.graph().node_size(v) < p.graph().node_size(best);
      }
      if (better) {
        best = v;
        best_gain = g;
        best_pin_delta = pd;
      }
    }
    if (obs::recorder_enabled()) {
      obs::Recorder::instance().stage_gain(best_gain);
    }
    p.move(best, sink);
    ++evicted;
  }
  if (evicted > 0) {
    obs::record_event(obs::EventKind::kRepair, obs::Engine::kNone, block,
                      evicted, sink, obs::kNoGain, p.block_size(block));
  }
}

}  // namespace fpart
