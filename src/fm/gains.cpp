#include "fm/gains.hpp"

#include "util/assert.hpp"

namespace fpart {

int move_gain(const Partition& p, NodeId v, BlockId to) {
  const Hypergraph& h = p.graph();
  const BlockId from = p.block_of(v);
  FPART_DASSERT(from != to);
  int gain = 0;
  for (NetId e : h.nets(v)) {
    const std::uint32_t total = h.net_interior_pin_count(e);
    if (total < 2) continue;
    // Single contiguous arena row: both Φ reads hit the same cache line
    // for typical k.
    const std::uint32_t* const row = p.net_row(e);
    const std::uint32_t phi_f = row[from];
    if (phi_f == 1 && row[to] == total - 1) {
      ++gain;
    } else if (phi_f == total) {
      --gain;
    }
  }
  return gain;
}

int move_gain_level2(const Partition& p, NodeId v, BlockId to) {
  const Hypergraph& h = p.graph();
  const BlockId from = p.block_of(v);
  FPART_DASSERT(from != to);
  int gain = 0;
  for (NetId e : h.nets(v)) {
    const std::uint32_t total = h.net_interior_pin_count(e);
    if (total < 2) continue;
    const std::uint32_t* const row = p.net_row(e);
    const std::uint32_t phi_f = row[from];
    if (total >= 3 && phi_f == 2 && row[to] == total - 2) {
      ++gain;
    } else if (phi_f == total - 1) {
      --gain;
    }
  }
  return gain;
}

}  // namespace fpart
