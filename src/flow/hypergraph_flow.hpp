// Hypergraph → flow-network transform (Yang/Wong net-splitting gadget,
// as used by FBB and FBB-MW [16]).
//
// For every net e with >= 2 pins inside the scope, two gadget vertices
// e1, e2 are created with a bridging edge e1→e2 of capacity 1; every
// in-scope pin u of e gets edges u→e1 and e2→u of infinite capacity.
// An s-t min cut of this network then equals the minimum number of
// scope-internal nets separating the source seeds from the sink seeds.
// Seed sets are tied to the super-source/super-sink with infinite-
// capacity edges (node merging is expressed by growing the seed sets).
#pragma once

#include <span>
#include <vector>

#include "flow/dinic.hpp"
#include "hypergraph/hypergraph.hpp"

namespace fpart {

struct HypergraphFlow {
  FlowNetwork net{0};
  FlowNetwork::Vertex source = 0;
  FlowNetwork::Vertex sink = 0;
  /// hypergraph node id -> flow vertex (kNil if out of scope/terminal).
  std::vector<std::uint32_t> node_vertex;

  static constexpr std::uint32_t kNil = ~0u;

  /// After net.max_flow(source, sink): which in-scope nodes are on the
  /// source side of the min cut.
  std::vector<std::uint8_t> source_side_nodes(const Hypergraph& h) const;
};

/// Builds the transform over `scope` (interior nodes; the membership
/// flags must be 1 exactly for in-scope nodes). `source_seeds` and
/// `sink_seeds` must be disjoint subsets of the scope.
HypergraphFlow build_hypergraph_flow(const Hypergraph& h,
                                     const std::vector<std::uint8_t>& in_scope,
                                     std::span<const NodeId> source_seeds,
                                     std::span<const NodeId> sink_seeds);

}  // namespace fpart
