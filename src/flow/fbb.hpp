// FBB-MW: network-flow-based multiway partitioning with area and pin
// constraints, after Liu & Wong [16].
//
// The paradigm: repeatedly peel one device-feasible block off the
// unassigned pool with a flow-balanced bipartition (FBB):
//
//   * build the net-splitting flow network over the pool
//     (hypergraph_flow.hpp), seed a source (the biggest cell) and a sink
//     (the cell at maximal BFS distance from it);
//   * compute a min-cut; if the source side is lighter than the size
//     window, collapse it into the source together with one cut-adjacent
//     node and re-flow (the FBB node-merging step); if heavier, grow the
//     sink side symmetrically;
//   * once the source side lands in the window, check the pin
//     constraint; on violation retry with a geometrically smaller window
//     and finally fall back to a greedy shrink.
//
// Deliberate simplifications versus the original (documented in
// DESIGN.md §4): flows are recomputed rather than incrementally reused,
// and Liu–Wong's tie-breaking among equal cuts is replaced by
// deterministic smallest-id choices.
#pragma once

#include "core/result.hpp"
#include "device/device.hpp"
#include "hypergraph/hypergraph.hpp"
#include "util/cancel.hpp"

namespace fpart {

struct FbbConfig {
  /// Peel-size window is [size_lo_frac · S_MAX, S_MAX].
  double size_lo_frac = 0.80;
  /// Window-shrink retries when the peeled block violates the pin
  /// constraint.
  int pin_retries = 4;
  /// Geometric window shrink factor per retry.
  double retry_shrink = 0.85;
  /// Cooperative cancellation, polled once per peel iteration.
  const CancelToken* cancel = nullptr;
};

class FbbPartitioner {
 public:
  explicit FbbPartitioner(FbbConfig config = {}) : config_(config) {}

  const FbbConfig& config() const { return config_; }

  /// Partitions `h` into device-feasible blocks by flow-based peeling.
  /// The result is always feasible.
  PartitionResult run(const Hypergraph& h, const Device& device) const;

 private:
  FbbConfig config_;
};

}  // namespace fpart
