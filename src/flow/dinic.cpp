#include "flow/dinic.hpp"

#include <algorithm>
#include <deque>

#include "obs/recorder.hpp"
#include "obs/stats.hpp"
#include "util/assert.hpp"

namespace fpart {

FlowNetwork::FlowNetwork(std::size_t num_vertices)
    : head_(num_vertices, kNil) {}

FlowNetwork::EdgeId FlowNetwork::add_edge(Vertex u, Vertex v,
                                          Capacity capacity) {
  FPART_REQUIRE(u < num_vertices() && v < num_vertices(),
                "add_edge: vertex out of range");
  FPART_REQUIRE(capacity >= 0, "add_edge: negative capacity");
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{v, capacity, head_[u]});
  head_[u] = id;
  edges_.push_back(Edge{u, 0, head_[v]});
  head_[v] = id + 1;
  original_cap_.push_back(capacity);
  return id / 2;
}

FlowNetwork::Capacity FlowNetwork::flow(EdgeId id) const {
  FPART_REQUIRE(static_cast<std::size_t>(id) < num_edges(),
                "flow: edge out of range");
  return original_cap_[id] - edges_[2 * id].cap;
}

bool FlowNetwork::bfs_levels(Vertex s, Vertex t) {
  FPART_COUNTER_INC("flow.bfs_rounds");
  level_.assign(num_vertices(), kNil);
  std::deque<Vertex> queue{s};
  level_[s] = 0;
  while (!queue.empty()) {
    const Vertex v = queue.front();
    queue.pop_front();
    for (std::uint32_t e = head_[v]; e != kNil; e = edges_[e].next) {
      if (edges_[e].cap > 0 && level_[edges_[e].to] == kNil) {
        level_[edges_[e].to] = level_[v] + 1;
        queue.push_back(edges_[e].to);
      }
    }
  }
  return level_[t] != kNil;
}

FlowNetwork::Capacity FlowNetwork::dfs_push(Vertex v, Vertex t,
                                            Capacity limit) {
  if (v == t) {
    FPART_COUNTER_INC("flow.augmenting_paths");
    ++paths_;
    return limit;
  }
  Capacity pushed = 0;
  for (std::uint32_t& e = iter_[v]; e != kNil; e = edges_[e].next) {
    Edge& edge = edges_[e];
    if (edge.cap <= 0 || level_[edge.to] != level_[v] + 1) continue;
    const Capacity d =
        dfs_push(edge.to, t, std::min(limit - pushed, edge.cap));
    if (d > 0) {
      edge.cap -= d;
      edges_[e ^ 1].cap += d;
      pushed += d;
      if (pushed == limit) break;
    } else {
      level_[edge.to] = kNil;  // dead end
    }
  }
  return pushed;
}

FlowNetwork::Capacity FlowNetwork::max_flow(Vertex s, Vertex t) {
  FPART_REQUIRE(s < num_vertices() && t < num_vertices() && s != t,
                "max_flow: bad terminals");
  FPART_COUNTER_INC("flow.max_flow_calls");
  // Reset residual capacities.
  for (std::size_t id = 0; id < num_edges(); ++id) {
    edges_[2 * id].cap = original_cap_[id];
    edges_[2 * id + 1].cap = 0;
  }
  paths_ = 0;
  Capacity total = 0;
  while (bfs_levels(s, t)) {
    iter_ = head_;
    const Capacity pushed = dfs_push(s, t, kInf);
    if (pushed == 0) break;
    total += pushed;
  }
  obs::record_event(obs::EventKind::kFlowAugment, obs::Engine::kNone, paths_,
                    0, 0, obs::kNoGain, static_cast<std::uint64_t>(total));
  return total;
}

std::vector<std::uint8_t> FlowNetwork::min_cut_source_side(Vertex s) const {
  std::vector<std::uint8_t> side(num_vertices(), 0);
  std::deque<Vertex> queue{s};
  side[s] = 1;
  while (!queue.empty()) {
    const Vertex v = queue.front();
    queue.pop_front();
    for (std::uint32_t e = head_[v]; e != kNil; e = edges_[e].next) {
      if (edges_[e].cap > 0 && !side[edges_[e].to]) {
        side[edges_[e].to] = 1;
        queue.push_back(edges_[e].to);
      }
    }
  }
  return side;
}

}  // namespace fpart
