// Dinic's maximum-flow algorithm on an explicit directed network.
//
// The FBB-MW baseline [16] computes repeated hypergraph min-cuts; the
// networks it builds are unit-capacity on net gadgets with "infinite"
// capacity pin edges, a regime where Dinic's level-graph phases are fast
// in practice.
#pragma once

#include <cstdint>
#include <vector>

namespace fpart {

class FlowNetwork {
 public:
  using Vertex = std::uint32_t;
  using EdgeId = std::uint32_t;
  using Capacity = std::int64_t;

  /// Effectively infinite capacity (safe to sum without overflow).
  static constexpr Capacity kInf = INT64_C(1) << 50;

  explicit FlowNetwork(std::size_t num_vertices);

  std::size_t num_vertices() const { return head_.size(); }
  /// Number of forward (caller-added) edges.
  std::size_t num_edges() const { return edges_.size() / 2; }

  /// Adds a directed edge u -> v with the given capacity; the residual
  /// reverse edge is created automatically. Returns the edge id usable
  /// with flow().
  EdgeId add_edge(Vertex u, Vertex v, Capacity capacity);

  /// Computes the maximum s-t flow. Resets any previous flow. O(V^2 E)
  /// worst case, near-linear on the unit-capacity gadget networks here.
  Capacity max_flow(Vertex s, Vertex t);

  /// Flow currently on a forward edge (valid after max_flow()).
  Capacity flow(EdgeId id) const;

  /// Vertices reachable from `s` in the residual graph of the last
  /// max_flow() call — the source side of a minimum cut.
  std::vector<std::uint8_t> min_cut_source_side(Vertex s) const;

 private:
  struct Edge {
    Vertex to;
    Capacity cap;  // residual capacity
    std::uint32_t next;
  };
  bool bfs_levels(Vertex s, Vertex t);
  Capacity dfs_push(Vertex v, Vertex t, Capacity limit);

  std::vector<Edge> edges_;           // interleaved fwd/rev pairs
  std::vector<std::uint32_t> head_;   // per-vertex adjacency head
  std::vector<Capacity> original_cap_;
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> iter_;
  std::uint32_t paths_ = 0;  // augmenting paths in the current max_flow()

  static constexpr std::uint32_t kNil = ~0u;
};

}  // namespace fpart
