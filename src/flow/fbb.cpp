#include "flow/fbb.hpp"

#include <algorithm>
#include <vector>

#include "flow/hypergraph_flow.hpp"
#include "fm/gains.hpp"
#include "fm/repair.hpp"
#include "hypergraph/traversal.hpp"
#include "obs/phase.hpp"
#include "obs/recorder.hpp"
#include "obs/stats.hpp"
#include "obs/timeseries.hpp"
#include "partition/audit.hpp"
#include "partition/partition.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace fpart {

namespace {

constexpr BlockId kPool = 0;

NodeId biggest_pool_cell(const Partition& p) {
  const Hypergraph& h = p.graph();
  NodeId best = kInvalidNode;
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (h.is_terminal(v) || p.block_of(v) != kPool) continue;
    if (best == kInvalidNode || h.node_size(v) > h.node_size(best) ||
        (h.node_size(v) == h.node_size(best) &&
         h.degree(v) > h.degree(best))) {
      best = v;
    }
  }
  return best;
}

/// Greedily absorbs up to `budget` size units of outside cells into the
/// side set, best-connected (most shared nets) first. Returns the nodes
/// absorbed. `side` is updated in place.
std::vector<NodeId> absorb_by_connectivity(
    const Hypergraph& h, const std::vector<std::uint8_t>& in_scope,
    const std::vector<std::uint8_t>& blocked, std::vector<std::uint8_t>& side,
    double budget) {
  // conn[w] = number of nets w shares with the side set.
  std::vector<std::uint32_t> conn(h.num_nodes(), 0);
  std::vector<std::uint8_t> net_in_side(h.num_nets(), 0);
  auto mark_net = [&](NetId e) {
    if (net_in_side[e]) return;
    net_in_side[e] = 1;
    for (NodeId w : h.interior_pins(e)) {
      if (in_scope[w] && !side[w]) ++conn[w];
    }
  };
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (in_scope[v] && side[v]) {
      for (NetId e : h.nets(v)) mark_net(e);
    }
  }

  std::vector<NodeId> absorbed;
  double used = 0.0;
  while (used < budget) {
    NodeId pick = kInvalidNode;
    for (NodeId v = 0; v < h.num_nodes(); ++v) {
      if (!in_scope[v] || side[v] || blocked[v] || conn[v] == 0) continue;
      if (pick == kInvalidNode || conn[v] > conn[pick]) pick = v;
    }
    if (pick == kInvalidNode) {
      // Disconnected pool: absorb the smallest-id free cell.
      for (NodeId v = 0; v < h.num_nodes(); ++v) {
        if (in_scope[v] && !side[v] && !blocked[v]) {
          pick = v;
          break;
        }
      }
      if (pick == kInvalidNode) break;
    }
    side[pick] = 1;
    used += static_cast<double>(h.node_size(pick));
    absorbed.push_back(pick);
    for (NetId e : h.nets(pick)) mark_net(e);
  }
  return absorbed;
}

/// One flow-balanced bipartition over the pool: returns the node set to
/// peel (source side of the final min cut), with total size <= hi where
/// achievable.
std::vector<NodeId> fbb_source_side(const Partition& p, double lo,
                                    double hi) {
  const Hypergraph& h = p.graph();
  std::vector<std::uint8_t> in_scope(h.num_nodes(), 0);
  std::size_t pool_count = 0;
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v) && p.block_of(v) == kPool) {
      in_scope[v] = 1;
      ++pool_count;
    }
  }
  FPART_ASSERT(pool_count >= 2);

  const NodeId s = biggest_pool_cell(p);
  const NodeId t = farthest_interior_node(h, s, [&](NodeId v) {
    return in_scope[v] != 0;
  });
  FPART_ASSERT(t != kInvalidNode && t != s);

  std::vector<NodeId> source_set{s};
  std::vector<NodeId> sink_set{t};
  std::vector<std::uint8_t> in_source(h.num_nodes(), 0);
  std::vector<std::uint8_t> in_sink(h.num_nodes(), 0);
  in_source[s] = 1;
  in_sink[t] = 1;

  std::vector<NodeId> best_side{s};

  // Each round either accepts or merges one more node into a seed set,
  // so at most pool_count rounds run.
  for (std::size_t round = 0; round < pool_count; ++round) {
    auto flow = build_hypergraph_flow(h, in_scope, source_set, sink_set);
    flow.net.max_flow(flow.source, flow.sink);
    const auto side = flow.source_side_nodes(h);

    std::vector<NodeId> x;
    double weight = 0.0;
    for (NodeId v = 0; v < h.num_nodes(); ++v) {
      if (in_scope[v] && side[v]) {
        x.push_back(v);
        weight += static_cast<double>(h.node_size(v));
      }
    }
    best_side = x;

    if (weight > hi) {
      // Source side too heavy: pin one best-connected-to-the-outside
      // boundary cell of X to the sink and re-flow.
      NodeId pick = kInvalidNode;
      std::uint32_t best_out = 0;
      for (NodeId v : x) {
        if (in_source[v]) continue;
        std::uint32_t out = 0;
        for (NetId e : h.nets(v)) {
          for (NodeId w : h.interior_pins(e)) {
            if (in_scope[w] && !side[w]) {
              ++out;
              break;
            }
          }
        }
        if (out > best_out) {
          best_out = out;
          pick = v;
        }
      }
      if (pick == kInvalidNode) break;  // cannot shrink further
      in_sink[pick] = 1;
      sink_set.push_back(pick);
      continue;
    }

    if (weight < lo) {
      // Source side too light: collapse X into the source (the FBB merge
      // step) and absorb a batch of best-connected outside cells before
      // re-flowing. Batching trades a little cut quality for far fewer
      // max-flow solves; the final cut is still flow-derived.
      std::vector<std::uint8_t> grown = side;
      const double budget = std::max(1.0, (lo - weight) / 3.0);
      const auto absorbed =
          absorb_by_connectivity(h, in_scope, in_sink, grown, budget);
      if (absorbed.empty()) break;  // nothing left to absorb
      source_set.clear();
      for (NodeId v = 0; v < h.num_nodes(); ++v) {
        if (in_scope[v] && grown[v] && !in_sink[v]) {
          in_source[v] = 1;
          source_set.push_back(v);
        }
      }
      continue;
    }

    break;  // in the window — accept
  }
  return best_side;
}

/// Packs the freshly peeled block toward capacity: absorbs pool cells
/// adjacent to the block (best cut gain first) while the block stays
/// feasible. Mirrors FBB-MW's drive for maximally filled devices.
void top_up_block(Partition& p, const Device& d, BlockId b) {
  const Hypergraph& h = p.graph();
  std::vector<std::uint8_t> in_frontier(h.num_nodes(), 0);
  std::vector<NodeId> frontier;
  auto absorb_frontier = [&](NodeId v) {
    for (NetId e : h.nets(v)) {
      for (NodeId w : h.interior_pins(e)) {
        if (!in_frontier[w] && p.block_of(w) == kPool) {
          in_frontier[w] = 1;
          frontier.push_back(w);
        }
      }
    }
  };
  for (NodeId v : p.block_nodes(b)) absorb_frontier(v);

  while (true) {
    NodeId best = kInvalidNode;
    int best_gain = 0;
    std::size_t w = 0;
    for (std::size_t r = 0; r < frontier.size(); ++r) {
      const NodeId v = frontier[r];
      if (p.block_of(v) != kPool) {
        in_frontier[v] = 0;
        continue;
      }
      frontier[w++] = v;
      if (!d.size_ok(p.block_size(b) + h.node_size(v))) continue;
      const auto pins_after = static_cast<std::int64_t>(p.block_pins(b)) +
                              pin_delta_if_added(p, v, b);
      if (!d.pins_ok(static_cast<std::uint64_t>(std::max<std::int64_t>(
              0, pins_after)))) {
        continue;
      }
      const int g = move_gain(p, v, b);
      if (best == kInvalidNode || g > best_gain) {
        best = v;
        best_gain = g;
      }
    }
    frontier.resize(w);
    if (best == kInvalidNode) break;
    in_frontier[best] = 0;
    p.move(best, b);
    absorb_frontier(best);
  }
}

/// Peels one feasible block off the pool; returns its id.
BlockId peel_block(Partition& p, const Device& d, const FbbConfig& config) {
  const obs::ScopedPhase phase("fbb.peel");
  FPART_COUNTER_INC("flow.peels");
  const Hypergraph& h = p.graph();

  // Small pool that fits by size: take it all and repair pins.
  if (d.size_ok(p.block_size(kPool)) || p.block_node_count(kPool) < 2) {
    const BlockId b = p.add_block();
    for (NodeId v : p.block_nodes(kPool)) p.move(v, b);
    shrink_to_feasible(p, d, b, kPool);
    return b;
  }

  double hi = d.s_max();
  double lo = config.size_lo_frac * hi;
  for (int attempt = 0;; ++attempt) {
    const std::vector<NodeId> x = fbb_source_side(p, lo, hi);
    FPART_ASSERT_MSG(!x.empty(), "FBB produced an empty peel");
    const BlockId b = p.add_block();
    for (NodeId v : x) p.move(v, b);
    if (p.block_feasible(b, d)) {
      top_up_block(p, d, b);
      FPART_HISTOGRAM_RECORD("flow.peel_size", p.block_size(b));
      return b;
    }
    if (attempt >= config.pin_retries) {
      shrink_to_feasible(p, d, b, kPool);
      top_up_block(p, d, b);
      return b;
    }
    // Undo and retry with a tighter window.
    FPART_COUNTER_INC("flow.pin_retries");
    for (NodeId v : x) p.move(v, kPool);
    p.remove_last_block();
    hi *= config.retry_shrink;
    lo *= config.retry_shrink;
    FPART_LOG(kDebug) << "FBB pin retry " << attempt + 1 << ": window ["
                      << lo << ", " << hi << "]";
    if (hi < static_cast<double>(h.max_node_size())) {
      hi = static_cast<double>(h.max_node_size());
      lo = 0.0;
    }
  }
}

}  // namespace

PartitionResult FbbPartitioner::run(const Hypergraph& h,
                                    const Device& device) const {
  const obs::ScopedPhase phase("fbb.run");
  Timer timer;
  CpuTimer cpu_timer;
  const std::uint32_t m = lower_bound_devices(h, device);
  Partition p(h, 1);

  std::uint32_t iterations = 0;
  bool cancelled = false;
  while (p.classify(device) != FeasibilityClass::kFeasible) {
    if (cancel_requested(config_.cancel)) {
      cancelled = true;
      break;
    }
    ++iterations;
    peel_block(p, device, config_);
    if (obs::recorder_enabled()) {
      obs::record_event(obs::EventKind::kFeasibility, obs::Engine::kFbb,
                        static_cast<std::uint32_t>(p.classify(device)),
                        p.count_feasible(device), p.num_blocks());
    }
    if (obs::timeseries_enabled()) {
      obs::sample_point(obs::SampleKind::kPass, obs::Engine::kFbb,
                        iterations, p.cut_size(), p.cut_size(),
                        p.count_feasible(device), p.num_blocks(), 0, 0, 0);
    }
    if (audit_enabled()) audit_partition(p, "fbb.peel");
  }
  PartitionResult r = summarize_partition(p, device, m, iterations,
                                          timer.elapsed_seconds(),
                                          cpu_timer.elapsed_seconds());
  r.cancelled = cancelled;
  return r;
}

}  // namespace fpart
