#include "flow/hypergraph_flow.hpp"

#include "util/assert.hpp"

namespace fpart {

std::vector<std::uint8_t> HypergraphFlow::source_side_nodes(
    const Hypergraph& h) const {
  const auto side = net.min_cut_source_side(source);
  std::vector<std::uint8_t> out(h.num_nodes(), 0);
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (node_vertex[v] != kNil && side[node_vertex[v]]) out[v] = 1;
  }
  return out;
}

HypergraphFlow build_hypergraph_flow(
    const Hypergraph& h, const std::vector<std::uint8_t>& in_scope,
    std::span<const NodeId> source_seeds, std::span<const NodeId> sink_seeds) {
  FPART_REQUIRE(in_scope.size() == h.num_nodes(),
                "in_scope size must match node count");
  HypergraphFlow out;
  out.node_vertex.assign(h.num_nodes(), HypergraphFlow::kNil);

  // Vertex layout: [scope nodes][net gadget pairs][source][sink].
  std::uint32_t next = 0;
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!in_scope[v]) continue;
    FPART_REQUIRE(!h.is_terminal(v), "scope must contain interior nodes");
    out.node_vertex[v] = next++;
  }

  // Count gadget nets first (>= 2 in-scope pins).
  std::vector<NetId> gadget_nets;
  for (NetId e = 0; e < h.num_nets(); ++e) {
    std::uint32_t inside = 0;
    for (NodeId v : h.interior_pins(e)) {
      if (in_scope[v] && ++inside >= 2) break;
    }
    if (inside >= 2) gadget_nets.push_back(e);
  }

  const std::uint32_t gadget_base = next;
  next += 2 * static_cast<std::uint32_t>(gadget_nets.size());
  out.source = next++;
  out.sink = next++;
  out.net = FlowNetwork(next);

  for (std::size_t i = 0; i < gadget_nets.size(); ++i) {
    const NetId e = gadget_nets[i];
    const auto e1 = gadget_base + 2 * static_cast<std::uint32_t>(i);
    const auto e2 = e1 + 1;
    out.net.add_edge(e1, e2, 1);
    for (NodeId v : h.interior_pins(e)) {
      if (!in_scope[v]) continue;
      out.net.add_edge(out.node_vertex[v], e1, FlowNetwork::kInf);
      out.net.add_edge(e2, out.node_vertex[v], FlowNetwork::kInf);
    }
  }

  for (NodeId v : source_seeds) {
    FPART_REQUIRE(out.node_vertex[v] != HypergraphFlow::kNil,
                  "source seed outside scope");
    out.net.add_edge(out.source, out.node_vertex[v], FlowNetwork::kInf);
  }
  for (NodeId v : sink_seeds) {
    FPART_REQUIRE(out.node_vertex[v] != HypergraphFlow::kNil,
                  "sink seed outside scope");
    out.net.add_edge(out.node_vertex[v], out.sink, FlowNetwork::kInf);
  }
  return out;
}

}  // namespace fpart
