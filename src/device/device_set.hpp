// Heterogeneous device libraries and per-block device choice.
//
// The paper's §2 fixes one device type for all blocks; the companion
// line of work it builds on (Kuznar et al. [10],[11]) minimizes total
// DEVICE COST over a heterogeneous library instead. This module provides
// the library abstraction and the cheapest-fit assignment used by the
// heterogeneous partitioning flow in core/hetero.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "device/device.hpp"

namespace fpart {

struct PricedDevice {
  Device device;
  /// Relative price (any consistent unit).
  double cost = 1.0;
};

class DeviceSet {
 public:
  /// Requires at least one device; all devices must map the same
  /// technology family (block sizes are technology-cell counts).
  explicit DeviceSet(std::vector<PricedDevice> devices);

  std::span<const PricedDevice> devices() const { return devices_; }
  std::size_t size() const { return devices_.size(); }

  /// Index of the cheapest device fitting a block of the given size and
  /// pin demand (ties: larger capacity). nullopt if nothing fits.
  std::optional<std::size_t> cheapest_fit(std::uint64_t block_size,
                                          std::uint64_t block_pins) const;

  /// The device with the largest logic capacity (ties: more pins) — the
  /// partitioning target in the peel-then-price flow.
  const PricedDevice& largest() const { return devices_[largest_]; }
  std::size_t largest_index() const { return largest_; }

 private:
  std::vector<PricedDevice> devices_;
  std::size_t largest_ = 0;
};

/// Per-block device choice for a finished partition.
struct DeviceAssignment {
  /// Index into the DeviceSet per block; kNoFit if nothing fits.
  std::vector<std::size_t> device_of_block;
  double total_cost = 0.0;
  bool ok = false;  // every block got a device

  static constexpr std::size_t kNoFit = static_cast<std::size_t>(-1);
};

/// Assigns the cheapest fitting device to each (size, pins) block.
DeviceAssignment assign_cheapest_devices(
    std::span<const std::pair<std::uint64_t, std::uint64_t>> block_demands,
    const DeviceSet& set);

namespace xilinx {
/// The XC3000 evaluation devices priced by their relative 1998-era list
/// positioning (indicative only; swap in real prices as needed):
/// XC3020 = 1.0, XC3042 = 2.1, XC3090 = 4.8.
DeviceSet xc3000_family_set(double fill = 0.9);
}  // namespace xilinx

}  // namespace fpart
