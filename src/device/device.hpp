// FPGA device model (paper §2).
//
// A device is D = (S_MAX, T_MAX): logic capacity in technology cells and
// terminal (I/O pin) capacity. S_MAX = S_ds * δ where S_ds is the
// data-sheet cell count and δ the user-chosen filling ratio (≤ 1.0,
// typically 0.9 to leave routing slack).
#pragma once

#include <cstdint>
#include <string>

#include "hypergraph/hypergraph.hpp"

namespace fpart {

/// Which technology-mapping family a device's cell counts refer to
/// (Table 1 gives per-circuit CLB counts for both Xilinx families).
enum class Family { kXC2000, kXC3000 };

std::string to_string(Family f);

class Device {
 public:
  /// `s_datasheet`: data-sheet CLB count; `t_max`: IOB count;
  /// `fill`: filling ratio δ in (0, 1].
  Device(std::string name, Family family, std::uint32_t s_datasheet,
         std::uint32_t t_max, double fill = 1.0);

  const std::string& name() const { return name_; }
  Family family() const { return family_; }
  std::uint32_t s_datasheet() const { return s_datasheet_; }
  std::uint32_t t_max() const { return t_max_; }
  double fill() const { return fill_; }

  /// Effective logic capacity S_MAX = S_ds * δ. Kept as a real number —
  /// feasibility compares integer block sizes against it.
  double s_max() const { return s_max_; }

  /// Largest integer block size that fits: floor(S_MAX).
  std::uint64_t s_max_cells() const {
    return static_cast<std::uint64_t>(s_max_);
  }

  bool size_ok(std::uint64_t block_size) const {
    return static_cast<double>(block_size) <= s_max_;
  }
  bool pins_ok(std::uint64_t block_pins) const { return block_pins <= t_max_; }

  /// Returns a copy with a different filling ratio.
  Device with_fill(double fill) const;

 private:
  std::string name_;
  Family family_;
  std::uint32_t s_datasheet_;
  std::uint32_t t_max_;
  double fill_;
  double s_max_;
};

/// Lower bound M on the number of devices needed for circuit `h`:
/// M = max(ceil(S0 / S_MAX), ceil(|Y0| / T_MAX)). Never less than 1.
std::uint32_t lower_bound_devices(const Hypergraph& h, const Device& d);

/// Same from raw totals (used by benches that know Table 1 numbers).
std::uint32_t lower_bound_devices(std::uint64_t total_size,
                                  std::uint64_t total_terminals,
                                  const Device& d);

}  // namespace fpart
