// Catalog of the Xilinx devices used in the paper's evaluation (§4):
//   XC3020 (S_ds=64,  T_MAX=64),  δ=0.9
//   XC3042 (S_ds=144, T_MAX=96),  δ=0.9
//   XC3090 (S_ds=320, T_MAX=144), δ=0.9
//   XC2064 (S_ds=64,  T_MAX=58),  δ=1.0
#pragma once

#include <span>
#include <string_view>

#include "device/device.hpp"

namespace fpart::xilinx {

/// Device with the paper's filling ratio baked in.
Device xc3020();
Device xc3042();
Device xc3090();
Device xc2064();

/// Lookup by name ("XC3020", case-insensitive). Throws PreconditionError
/// on unknown names.
Device by_name(std::string_view name);

/// All four evaluation devices, in the paper's table order.
std::span<const Device> evaluation_devices();

}  // namespace fpart::xilinx
