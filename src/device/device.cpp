#include "device/device.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace fpart {

std::string to_string(Family f) {
  return f == Family::kXC2000 ? "XC2000" : "XC3000";
}

Device::Device(std::string name, Family family, std::uint32_t s_datasheet,
               std::uint32_t t_max, double fill)
    : name_(std::move(name)),
      family_(family),
      s_datasheet_(s_datasheet),
      t_max_(t_max),
      fill_(fill),
      s_max_(static_cast<double>(s_datasheet) * fill) {
  FPART_REQUIRE(s_datasheet >= 1, "device must have logic capacity");
  FPART_REQUIRE(t_max >= 2, "device must have at least two I/O pins");
  FPART_REQUIRE(fill > 0.0 && fill <= 1.0, "filling ratio must be in (0,1]");
}

Device Device::with_fill(double fill) const {
  return Device(name_, family_, s_datasheet_, t_max_, fill);
}

std::uint32_t lower_bound_devices(std::uint64_t total_size,
                                  std::uint64_t total_terminals,
                                  const Device& d) {
  const auto by_size = static_cast<std::uint32_t>(
      std::ceil(static_cast<double>(total_size) / d.s_max()));
  const auto by_pins = static_cast<std::uint32_t>(
      std::ceil(static_cast<double>(total_terminals) /
                static_cast<double>(d.t_max())));
  return std::max<std::uint32_t>({1u, by_size, by_pins});
}

std::uint32_t lower_bound_devices(const Hypergraph& h, const Device& d) {
  return lower_bound_devices(h.total_size(), h.num_terminals(), d);
}

}  // namespace fpart
