#include "device/xilinx.hpp"

#include <array>
#include <cctype>
#include <string>

#include "util/assert.hpp"

namespace fpart::xilinx {

Device xc3020() { return Device("XC3020", Family::kXC3000, 64, 64, 0.9); }
Device xc3042() { return Device("XC3042", Family::kXC3000, 144, 96, 0.9); }
Device xc3090() { return Device("XC3090", Family::kXC3000, 320, 144, 0.9); }
Device xc2064() { return Device("XC2064", Family::kXC2000, 64, 58, 1.0); }

Device by_name(std::string_view name) {
  std::string upper;
  upper.reserve(name.size());
  for (char c : name) upper.push_back(static_cast<char>(std::toupper(c)));
  if (upper == "XC3020") return xc3020();
  if (upper == "XC3042") return xc3042();
  if (upper == "XC3090") return xc3090();
  if (upper == "XC2064") return xc2064();
  FPART_OPTION_REQUIRE(false, "unknown device: " + std::string(name));
  return xc3020();  // unreachable
}

std::span<const Device> evaluation_devices() {
  static const std::array<Device, 4> kDevices = {xc3020(), xc3042(), xc3090(),
                                                 xc2064()};
  return kDevices;
}

}  // namespace fpart::xilinx
