#include "device/device_set.hpp"

#include "device/xilinx.hpp"
#include "util/assert.hpp"

namespace fpart {

DeviceSet::DeviceSet(std::vector<PricedDevice> devices)
    : devices_(std::move(devices)) {
  FPART_REQUIRE(!devices_.empty(), "device set must not be empty");
  for (const auto& pd : devices_) {
    FPART_REQUIRE(pd.cost > 0.0, "device cost must be positive");
    FPART_REQUIRE(pd.device.family() == devices_.front().device.family(),
                  "device set must share one technology family");
  }
  for (std::size_t i = 1; i < devices_.size(); ++i) {
    const Device& d = devices_[i].device;
    const Device& best = devices_[largest_].device;
    if (d.s_max() > best.s_max() ||
        (d.s_max() == best.s_max() && d.t_max() > best.t_max())) {
      largest_ = i;
    }
  }
}

std::optional<std::size_t> DeviceSet::cheapest_fit(
    std::uint64_t block_size, std::uint64_t block_pins) const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const auto& pd = devices_[i];
    if (!pd.device.size_ok(block_size) || !pd.device.pins_ok(block_pins)) {
      continue;
    }
    if (!best || pd.cost < devices_[*best].cost ||
        (pd.cost == devices_[*best].cost &&
         pd.device.s_max() > devices_[*best].device.s_max())) {
      best = i;
    }
  }
  return best;
}

DeviceAssignment assign_cheapest_devices(
    std::span<const std::pair<std::uint64_t, std::uint64_t>> block_demands,
    const DeviceSet& set) {
  DeviceAssignment out;
  out.ok = true;
  out.device_of_block.reserve(block_demands.size());
  for (const auto& [size, pins] : block_demands) {
    const auto fit = set.cheapest_fit(size, pins);
    if (!fit) {
      out.device_of_block.push_back(DeviceAssignment::kNoFit);
      out.ok = false;
      continue;
    }
    out.device_of_block.push_back(*fit);
    out.total_cost += set.devices()[*fit].cost;
  }
  return out;
}

namespace xilinx {

DeviceSet xc3000_family_set(double fill) {
  std::vector<PricedDevice> devices;
  devices.push_back(PricedDevice{xc3020().with_fill(fill), 1.0});
  devices.push_back(PricedDevice{xc3042().with_fill(fill), 2.1});
  devices.push_back(PricedDevice{xc3090().with_fill(fill), 4.8});
  return DeviceSet(std::move(devices));
}

}  // namespace xilinx

}  // namespace fpart
