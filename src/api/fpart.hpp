// fpart public API — the single header downstream consumers include.
//
//   #include "api/fpart.hpp"
//
//   fpart::Hypergraph h = fpart::read_hgr_file("circuit.hgr");
//   fpart::Device d = fpart::xilinx::by_name("XC3042");
//   fpart::SolveRequest req;
//   req.method = fpart::parse_method("fpart");
//   fpart::PartitionResult r = fpart::solve(h, d, req);
//
// The stable surface (documented in docs/API.md):
//
//   * Hypergraph + HypergraphBuilder — immutable CSR netlist model,
//     plus read_hgr_file/write_hgr_file for the hMETIS-style
//     interchange format;
//   * Device + xilinx::by_name — device capacity models;
//   * Method / parse_method / method_name / method_names, Options,
//     SolveRequest (variant EngineConfig + configure<>()), solve() —
//     the unified entry point over all five engines;
//   * PartitionResult / BlockStats — the result model, and
//     verify_partition() — the independent full-recompute checker;
//   * runtime::run_portfolio — deterministic parallel multi-start over
//     solve(); runtime::parse_batch_file / run_batch — many-circuit job
//     runner on the shared thread pool.
//
// Engine internals (Partition, the FM/Sanchis kernels, gain buckets,
// flow networks) are deliberately NOT re-exported: their headers remain
// includable but carry no stability promise.
#pragma once

#include "core/options.hpp"      // Options: seed, cost, schedule, cancel
#include "core/result.hpp"       // PartitionResult, BlockStats
#include "core/solve.hpp"        // Method, parse_method, SolveRequest, solve
#include "device/device.hpp"     // Device
#include "device/xilinx.hpp"     // xilinx::by_name, the paper's device table
#include "hypergraph/builder.hpp"     // HypergraphBuilder
#include "hypergraph/hypergraph.hpp"  // Hypergraph, NodeId/NetId/BlockId
#include "netlist/hgr_io.hpp"    // read_hgr_file, write_hgr_file
#include "partition/verify.hpp"  // verify_partition, VerifyReport
#include "runtime/batch.hpp"     // runtime::parse_batch_file, run_batch
#include "runtime/portfolio.hpp"  // runtime::run_portfolio
