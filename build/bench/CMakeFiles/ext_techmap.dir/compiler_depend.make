# Empty compiler generated dependencies file for ext_techmap.
# This may be replaced when dependencies are built.
