file(REMOVE_RECURSE
  "CMakeFiles/ext_techmap.dir/ext_techmap.cpp.o"
  "CMakeFiles/ext_techmap.dir/ext_techmap.cpp.o.d"
  "ext_techmap"
  "ext_techmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_techmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
