# Empty compiler generated dependencies file for table2_xc3020.
# This may be replaced when dependencies are built.
