file(REMOVE_RECURSE
  "CMakeFiles/table2_xc3020.dir/table2_xc3020.cpp.o"
  "CMakeFiles/table2_xc3020.dir/table2_xc3020.cpp.o.d"
  "table2_xc3020"
  "table2_xc3020.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_xc3020.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
