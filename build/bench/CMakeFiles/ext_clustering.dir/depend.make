# Empty dependencies file for ext_clustering.
# This may be replaced when dependencies are built.
