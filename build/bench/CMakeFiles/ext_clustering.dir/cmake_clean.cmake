file(REMOVE_RECURSE
  "CMakeFiles/ext_clustering.dir/ext_clustering.cpp.o"
  "CMakeFiles/ext_clustering.dir/ext_clustering.cpp.o.d"
  "ext_clustering"
  "ext_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
