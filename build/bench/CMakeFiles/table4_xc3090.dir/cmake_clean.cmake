file(REMOVE_RECURSE
  "CMakeFiles/table4_xc3090.dir/table4_xc3090.cpp.o"
  "CMakeFiles/table4_xc3090.dir/table4_xc3090.cpp.o.d"
  "table4_xc3090"
  "table4_xc3090.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_xc3090.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
