# Empty compiler generated dependencies file for table4_xc3090.
# This may be replaced when dependencies are built.
