# Empty dependencies file for table3_xc3042.
# This may be replaced when dependencies are built.
