file(REMOVE_RECURSE
  "CMakeFiles/table3_xc3042.dir/table3_xc3042.cpp.o"
  "CMakeFiles/table3_xc3042.dir/table3_xc3042.cpp.o.d"
  "table3_xc3042"
  "table3_xc3042.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_xc3042.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
