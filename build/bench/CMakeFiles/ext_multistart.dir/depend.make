# Empty dependencies file for ext_multistart.
# This may be replaced when dependencies are built.
