file(REMOVE_RECURSE
  "CMakeFiles/ext_multistart.dir/ext_multistart.cpp.o"
  "CMakeFiles/ext_multistart.dir/ext_multistart.cpp.o.d"
  "ext_multistart"
  "ext_multistart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multistart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
