# Empty dependencies file for micro_gbench.
# This may be replaced when dependencies are built.
