
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table5_xc2064.cpp" "bench/CMakeFiles/table5_xc2064.dir/table5_xc2064.cpp.o" "gcc" "bench/CMakeFiles/table5_xc2064.dir/table5_xc2064.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/fpart_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/techmap/CMakeFiles/fpart_techmap.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/fpart_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/replication/CMakeFiles/fpart_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/fpart_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fpart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/fpart_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sanchis/CMakeFiles/fpart_sanchis.dir/DependInfo.cmake"
  "/root/repo/build/src/fm/CMakeFiles/fpart_fm.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/fpart_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/fpart_device.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergraph/CMakeFiles/fpart_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/fpart_report.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fpart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
