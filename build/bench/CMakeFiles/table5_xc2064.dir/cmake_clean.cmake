file(REMOVE_RECURSE
  "CMakeFiles/table5_xc2064.dir/table5_xc2064.cpp.o"
  "CMakeFiles/table5_xc2064.dir/table5_xc2064.cpp.o.d"
  "table5_xc2064"
  "table5_xc2064.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_xc2064.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
