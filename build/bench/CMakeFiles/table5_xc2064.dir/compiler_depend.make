# Empty compiler generated dependencies file for table5_xc2064.
# This may be replaced when dependencies are built.
