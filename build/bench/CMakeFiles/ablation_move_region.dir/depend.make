# Empty dependencies file for ablation_move_region.
# This may be replaced when dependencies are built.
