file(REMOVE_RECURSE
  "CMakeFiles/ablation_move_region.dir/ablation_move_region.cpp.o"
  "CMakeFiles/ablation_move_region.dir/ablation_move_region.cpp.o.d"
  "ablation_move_region"
  "ablation_move_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_move_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
