# Empty compiler generated dependencies file for ablation_stack.
# This may be replaced when dependencies are built.
