file(REMOVE_RECURSE
  "CMakeFiles/ablation_stack.dir/ablation_stack.cpp.o"
  "CMakeFiles/ablation_stack.dir/ablation_stack.cpp.o.d"
  "ablation_stack"
  "ablation_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
