# Empty dependencies file for table6_cpu_time.
# This may be replaced when dependencies are built.
