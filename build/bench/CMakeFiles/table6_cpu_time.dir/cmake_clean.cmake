file(REMOVE_RECURSE
  "CMakeFiles/table6_cpu_time.dir/table6_cpu_time.cpp.o"
  "CMakeFiles/table6_cpu_time.dir/table6_cpu_time.cpp.o.d"
  "table6_cpu_time"
  "table6_cpu_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_cpu_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
