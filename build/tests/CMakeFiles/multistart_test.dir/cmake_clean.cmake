file(REMOVE_RECURSE
  "CMakeFiles/multistart_test.dir/multistart_test.cpp.o"
  "CMakeFiles/multistart_test.dir/multistart_test.cpp.o.d"
  "multistart_test"
  "multistart_test.pdb"
  "multistart_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multistart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
