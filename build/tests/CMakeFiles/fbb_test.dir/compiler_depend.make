# Empty compiler generated dependencies file for fbb_test.
# This may be replaced when dependencies are built.
