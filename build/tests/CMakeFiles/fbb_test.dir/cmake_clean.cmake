file(REMOVE_RECURSE
  "CMakeFiles/fbb_test.dir/fbb_test.cpp.o"
  "CMakeFiles/fbb_test.dir/fbb_test.cpp.o.d"
  "fbb_test"
  "fbb_test.pdb"
  "fbb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
