# Empty compiler generated dependencies file for fpart_test.
# This may be replaced when dependencies are built.
