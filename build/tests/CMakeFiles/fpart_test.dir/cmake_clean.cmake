file(REMOVE_RECURSE
  "CMakeFiles/fpart_test.dir/fpart_test.cpp.o"
  "CMakeFiles/fpart_test.dir/fpart_test.cpp.o.d"
  "fpart_test"
  "fpart_test.pdb"
  "fpart_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
