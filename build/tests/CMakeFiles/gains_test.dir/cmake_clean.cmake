file(REMOVE_RECURSE
  "CMakeFiles/gains_test.dir/gains_test.cpp.o"
  "CMakeFiles/gains_test.dir/gains_test.cpp.o.d"
  "gains_test"
  "gains_test.pdb"
  "gains_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gains_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
