# Empty dependencies file for gains_test.
# This may be replaced when dependencies are built.
