file(REMOVE_RECURSE
  "CMakeFiles/blif_io_test.dir/blif_io_test.cpp.o"
  "CMakeFiles/blif_io_test.dir/blif_io_test.cpp.o.d"
  "blif_io_test"
  "blif_io_test.pdb"
  "blif_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blif_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
