# Empty compiler generated dependencies file for blif_io_test.
# This may be replaced when dependencies are built.
