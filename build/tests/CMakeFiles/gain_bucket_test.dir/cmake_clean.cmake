file(REMOVE_RECURSE
  "CMakeFiles/gain_bucket_test.dir/gain_bucket_test.cpp.o"
  "CMakeFiles/gain_bucket_test.dir/gain_bucket_test.cpp.o.d"
  "gain_bucket_test"
  "gain_bucket_test.pdb"
  "gain_bucket_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gain_bucket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
