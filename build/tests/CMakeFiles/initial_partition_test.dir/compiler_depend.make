# Empty compiler generated dependencies file for initial_partition_test.
# This may be replaced when dependencies are built.
