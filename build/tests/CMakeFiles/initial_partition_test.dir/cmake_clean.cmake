file(REMOVE_RECURSE
  "CMakeFiles/initial_partition_test.dir/initial_partition_test.cpp.o"
  "CMakeFiles/initial_partition_test.dir/initial_partition_test.cpp.o.d"
  "initial_partition_test"
  "initial_partition_test.pdb"
  "initial_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/initial_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
