file(REMOVE_RECURSE
  "CMakeFiles/dinic_test.dir/dinic_test.cpp.o"
  "CMakeFiles/dinic_test.dir/dinic_test.cpp.o.d"
  "dinic_test"
  "dinic_test.pdb"
  "dinic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dinic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
