# Empty dependencies file for dinic_test.
# This may be replaced when dependencies are built.
