# Empty dependencies file for hgr_io_test.
# This may be replaced when dependencies are built.
