file(REMOVE_RECURSE
  "CMakeFiles/hgr_io_test.dir/hgr_io_test.cpp.o"
  "CMakeFiles/hgr_io_test.dir/hgr_io_test.cpp.o.d"
  "hgr_io_test"
  "hgr_io_test.pdb"
  "hgr_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgr_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
