# Empty dependencies file for refiner_ext_test.
# This may be replaced when dependencies are built.
