file(REMOVE_RECURSE
  "CMakeFiles/refiner_ext_test.dir/refiner_ext_test.cpp.o"
  "CMakeFiles/refiner_ext_test.dir/refiner_ext_test.cpp.o.d"
  "refiner_ext_test"
  "refiner_ext_test.pdb"
  "refiner_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refiner_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
