file(REMOVE_RECURSE
  "CMakeFiles/move_region_test.dir/move_region_test.cpp.o"
  "CMakeFiles/move_region_test.dir/move_region_test.cpp.o.d"
  "move_region_test"
  "move_region_test.pdb"
  "move_region_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/move_region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
