# Empty compiler generated dependencies file for move_region_test.
# This may be replaced when dependencies are built.
