# Empty dependencies file for hypergraph_flow_test.
# This may be replaced when dependencies are built.
