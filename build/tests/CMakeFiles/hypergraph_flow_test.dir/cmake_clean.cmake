file(REMOVE_RECURSE
  "CMakeFiles/hypergraph_flow_test.dir/hypergraph_flow_test.cpp.o"
  "CMakeFiles/hypergraph_flow_test.dir/hypergraph_flow_test.cpp.o.d"
  "hypergraph_flow_test"
  "hypergraph_flow_test.pdb"
  "hypergraph_flow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypergraph_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
