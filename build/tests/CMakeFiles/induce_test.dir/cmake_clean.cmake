file(REMOVE_RECURSE
  "CMakeFiles/induce_test.dir/induce_test.cpp.o"
  "CMakeFiles/induce_test.dir/induce_test.cpp.o.d"
  "induce_test"
  "induce_test.pdb"
  "induce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/induce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
