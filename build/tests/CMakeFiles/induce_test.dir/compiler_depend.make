# Empty compiler generated dependencies file for induce_test.
# This may be replaced when dependencies are built.
