# Empty compiler generated dependencies file for rent_test.
# This may be replaced when dependencies are built.
