file(REMOVE_RECURSE
  "CMakeFiles/rent_test.dir/rent_test.cpp.o"
  "CMakeFiles/rent_test.dir/rent_test.cpp.o.d"
  "rent_test"
  "rent_test.pdb"
  "rent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
