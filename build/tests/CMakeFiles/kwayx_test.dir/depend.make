# Empty dependencies file for kwayx_test.
# This may be replaced when dependencies are built.
