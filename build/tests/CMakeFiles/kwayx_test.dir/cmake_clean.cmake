file(REMOVE_RECURSE
  "CMakeFiles/kwayx_test.dir/kwayx_test.cpp.o"
  "CMakeFiles/kwayx_test.dir/kwayx_test.cpp.o.d"
  "kwayx_test"
  "kwayx_test.pdb"
  "kwayx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kwayx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
