# Empty dependencies file for solution_stack_test.
# This may be replaced when dependencies are built.
