file(REMOVE_RECURSE
  "CMakeFiles/solution_stack_test.dir/solution_stack_test.cpp.o"
  "CMakeFiles/solution_stack_test.dir/solution_stack_test.cpp.o.d"
  "solution_stack_test"
  "solution_stack_test.pdb"
  "solution_stack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solution_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
