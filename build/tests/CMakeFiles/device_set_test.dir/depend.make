# Empty dependencies file for device_set_test.
# This may be replaced when dependencies are built.
