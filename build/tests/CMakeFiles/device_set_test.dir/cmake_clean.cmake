file(REMOVE_RECURSE
  "CMakeFiles/device_set_test.dir/device_set_test.cpp.o"
  "CMakeFiles/device_set_test.dir/device_set_test.cpp.o.d"
  "device_set_test"
  "device_set_test.pdb"
  "device_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
