file(REMOVE_RECURSE
  "CMakeFiles/fpart_flow.dir/dinic.cpp.o"
  "CMakeFiles/fpart_flow.dir/dinic.cpp.o.d"
  "CMakeFiles/fpart_flow.dir/fbb.cpp.o"
  "CMakeFiles/fpart_flow.dir/fbb.cpp.o.d"
  "CMakeFiles/fpart_flow.dir/hypergraph_flow.cpp.o"
  "CMakeFiles/fpart_flow.dir/hypergraph_flow.cpp.o.d"
  "libfpart_flow.a"
  "libfpart_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
