file(REMOVE_RECURSE
  "libfpart_flow.a"
)
