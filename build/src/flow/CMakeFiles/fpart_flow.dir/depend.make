# Empty dependencies file for fpart_flow.
# This may be replaced when dependencies are built.
