# Empty compiler generated dependencies file for fpart_cluster.
# This may be replaced when dependencies are built.
