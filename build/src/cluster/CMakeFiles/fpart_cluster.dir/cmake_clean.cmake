file(REMOVE_RECURSE
  "CMakeFiles/fpart_cluster.dir/coarsen.cpp.o"
  "CMakeFiles/fpart_cluster.dir/coarsen.cpp.o.d"
  "libfpart_cluster.a"
  "libfpart_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
