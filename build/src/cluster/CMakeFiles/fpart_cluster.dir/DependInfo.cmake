
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/coarsen.cpp" "src/cluster/CMakeFiles/fpart_cluster.dir/coarsen.cpp.o" "gcc" "src/cluster/CMakeFiles/fpart_cluster.dir/coarsen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hypergraph/CMakeFiles/fpart_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fpart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
