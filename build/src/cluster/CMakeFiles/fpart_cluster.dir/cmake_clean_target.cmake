file(REMOVE_RECURSE
  "libfpart_cluster.a"
)
