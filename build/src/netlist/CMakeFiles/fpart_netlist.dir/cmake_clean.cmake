file(REMOVE_RECURSE
  "CMakeFiles/fpart_netlist.dir/generator.cpp.o"
  "CMakeFiles/fpart_netlist.dir/generator.cpp.o.d"
  "CMakeFiles/fpart_netlist.dir/hgr_io.cpp.o"
  "CMakeFiles/fpart_netlist.dir/hgr_io.cpp.o.d"
  "CMakeFiles/fpart_netlist.dir/mcnc.cpp.o"
  "CMakeFiles/fpart_netlist.dir/mcnc.cpp.o.d"
  "CMakeFiles/fpart_netlist.dir/rent.cpp.o"
  "CMakeFiles/fpart_netlist.dir/rent.cpp.o.d"
  "libfpart_netlist.a"
  "libfpart_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
