
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/generator.cpp" "src/netlist/CMakeFiles/fpart_netlist.dir/generator.cpp.o" "gcc" "src/netlist/CMakeFiles/fpart_netlist.dir/generator.cpp.o.d"
  "/root/repo/src/netlist/hgr_io.cpp" "src/netlist/CMakeFiles/fpart_netlist.dir/hgr_io.cpp.o" "gcc" "src/netlist/CMakeFiles/fpart_netlist.dir/hgr_io.cpp.o.d"
  "/root/repo/src/netlist/mcnc.cpp" "src/netlist/CMakeFiles/fpart_netlist.dir/mcnc.cpp.o" "gcc" "src/netlist/CMakeFiles/fpart_netlist.dir/mcnc.cpp.o.d"
  "/root/repo/src/netlist/rent.cpp" "src/netlist/CMakeFiles/fpart_netlist.dir/rent.cpp.o" "gcc" "src/netlist/CMakeFiles/fpart_netlist.dir/rent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hypergraph/CMakeFiles/fpart_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/fpart_device.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fpart_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fm/CMakeFiles/fpart_fm.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/fpart_partition.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
