file(REMOVE_RECURSE
  "libfpart_netlist.a"
)
