# Empty dependencies file for fpart_netlist.
# This may be replaced when dependencies are built.
