file(REMOVE_RECURSE
  "libfpart_util.a"
)
