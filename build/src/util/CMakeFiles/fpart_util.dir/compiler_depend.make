# Empty compiler generated dependencies file for fpart_util.
# This may be replaced when dependencies are built.
