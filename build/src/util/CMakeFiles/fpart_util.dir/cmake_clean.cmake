file(REMOVE_RECURSE
  "CMakeFiles/fpart_util.dir/cli.cpp.o"
  "CMakeFiles/fpart_util.dir/cli.cpp.o.d"
  "CMakeFiles/fpart_util.dir/log.cpp.o"
  "CMakeFiles/fpart_util.dir/log.cpp.o.d"
  "CMakeFiles/fpart_util.dir/rng.cpp.o"
  "CMakeFiles/fpart_util.dir/rng.cpp.o.d"
  "libfpart_util.a"
  "libfpart_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
