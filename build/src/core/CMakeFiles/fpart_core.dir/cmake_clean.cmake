file(REMOVE_RECURSE
  "CMakeFiles/fpart_core.dir/clustered.cpp.o"
  "CMakeFiles/fpart_core.dir/clustered.cpp.o.d"
  "CMakeFiles/fpart_core.dir/fpart.cpp.o"
  "CMakeFiles/fpart_core.dir/fpart.cpp.o.d"
  "CMakeFiles/fpart_core.dir/hetero.cpp.o"
  "CMakeFiles/fpart_core.dir/hetero.cpp.o.d"
  "CMakeFiles/fpart_core.dir/initial_partition.cpp.o"
  "CMakeFiles/fpart_core.dir/initial_partition.cpp.o.d"
  "CMakeFiles/fpart_core.dir/result.cpp.o"
  "CMakeFiles/fpart_core.dir/result.cpp.o.d"
  "libfpart_core.a"
  "libfpart_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
