# Empty compiler generated dependencies file for fpart_core.
# This may be replaced when dependencies are built.
