# Empty compiler generated dependencies file for fpart_hypergraph.
# This may be replaced when dependencies are built.
