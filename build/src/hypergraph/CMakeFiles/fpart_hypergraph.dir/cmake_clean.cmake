file(REMOVE_RECURSE
  "CMakeFiles/fpart_hypergraph.dir/builder.cpp.o"
  "CMakeFiles/fpart_hypergraph.dir/builder.cpp.o.d"
  "CMakeFiles/fpart_hypergraph.dir/hypergraph.cpp.o"
  "CMakeFiles/fpart_hypergraph.dir/hypergraph.cpp.o.d"
  "CMakeFiles/fpart_hypergraph.dir/induce.cpp.o"
  "CMakeFiles/fpart_hypergraph.dir/induce.cpp.o.d"
  "CMakeFiles/fpart_hypergraph.dir/traversal.cpp.o"
  "CMakeFiles/fpart_hypergraph.dir/traversal.cpp.o.d"
  "libfpart_hypergraph.a"
  "libfpart_hypergraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_hypergraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
