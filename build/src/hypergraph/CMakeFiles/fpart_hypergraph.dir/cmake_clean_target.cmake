file(REMOVE_RECURSE
  "libfpart_hypergraph.a"
)
