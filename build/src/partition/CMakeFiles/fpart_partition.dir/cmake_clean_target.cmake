file(REMOVE_RECURSE
  "libfpart_partition.a"
)
