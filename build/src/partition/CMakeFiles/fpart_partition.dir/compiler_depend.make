# Empty compiler generated dependencies file for fpart_partition.
# This may be replaced when dependencies are built.
