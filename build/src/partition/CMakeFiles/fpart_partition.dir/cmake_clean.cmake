file(REMOVE_RECURSE
  "CMakeFiles/fpart_partition.dir/analysis.cpp.o"
  "CMakeFiles/fpart_partition.dir/analysis.cpp.o.d"
  "CMakeFiles/fpart_partition.dir/cost.cpp.o"
  "CMakeFiles/fpart_partition.dir/cost.cpp.o.d"
  "CMakeFiles/fpart_partition.dir/evaluator.cpp.o"
  "CMakeFiles/fpart_partition.dir/evaluator.cpp.o.d"
  "CMakeFiles/fpart_partition.dir/partition.cpp.o"
  "CMakeFiles/fpart_partition.dir/partition.cpp.o.d"
  "CMakeFiles/fpart_partition.dir/verify.cpp.o"
  "CMakeFiles/fpart_partition.dir/verify.cpp.o.d"
  "libfpart_partition.a"
  "libfpart_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
