# Empty dependencies file for fpart_partition.
# This may be replaced when dependencies are built.
