
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/analysis.cpp" "src/partition/CMakeFiles/fpart_partition.dir/analysis.cpp.o" "gcc" "src/partition/CMakeFiles/fpart_partition.dir/analysis.cpp.o.d"
  "/root/repo/src/partition/cost.cpp" "src/partition/CMakeFiles/fpart_partition.dir/cost.cpp.o" "gcc" "src/partition/CMakeFiles/fpart_partition.dir/cost.cpp.o.d"
  "/root/repo/src/partition/evaluator.cpp" "src/partition/CMakeFiles/fpart_partition.dir/evaluator.cpp.o" "gcc" "src/partition/CMakeFiles/fpart_partition.dir/evaluator.cpp.o.d"
  "/root/repo/src/partition/partition.cpp" "src/partition/CMakeFiles/fpart_partition.dir/partition.cpp.o" "gcc" "src/partition/CMakeFiles/fpart_partition.dir/partition.cpp.o.d"
  "/root/repo/src/partition/verify.cpp" "src/partition/CMakeFiles/fpart_partition.dir/verify.cpp.o" "gcc" "src/partition/CMakeFiles/fpart_partition.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hypergraph/CMakeFiles/fpart_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/fpart_device.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fpart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
