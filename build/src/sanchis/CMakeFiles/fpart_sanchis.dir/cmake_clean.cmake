file(REMOVE_RECURSE
  "CMakeFiles/fpart_sanchis.dir/move_region.cpp.o"
  "CMakeFiles/fpart_sanchis.dir/move_region.cpp.o.d"
  "CMakeFiles/fpart_sanchis.dir/refiner.cpp.o"
  "CMakeFiles/fpart_sanchis.dir/refiner.cpp.o.d"
  "CMakeFiles/fpart_sanchis.dir/solution_stack.cpp.o"
  "CMakeFiles/fpart_sanchis.dir/solution_stack.cpp.o.d"
  "libfpart_sanchis.a"
  "libfpart_sanchis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_sanchis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
