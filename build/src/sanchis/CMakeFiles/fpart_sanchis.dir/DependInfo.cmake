
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sanchis/move_region.cpp" "src/sanchis/CMakeFiles/fpart_sanchis.dir/move_region.cpp.o" "gcc" "src/sanchis/CMakeFiles/fpart_sanchis.dir/move_region.cpp.o.d"
  "/root/repo/src/sanchis/refiner.cpp" "src/sanchis/CMakeFiles/fpart_sanchis.dir/refiner.cpp.o" "gcc" "src/sanchis/CMakeFiles/fpart_sanchis.dir/refiner.cpp.o.d"
  "/root/repo/src/sanchis/solution_stack.cpp" "src/sanchis/CMakeFiles/fpart_sanchis.dir/solution_stack.cpp.o" "gcc" "src/sanchis/CMakeFiles/fpart_sanchis.dir/solution_stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/partition/CMakeFiles/fpart_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/fm/CMakeFiles/fpart_fm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fpart_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/fpart_device.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergraph/CMakeFiles/fpart_hypergraph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
