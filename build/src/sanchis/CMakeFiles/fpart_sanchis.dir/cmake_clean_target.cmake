file(REMOVE_RECURSE
  "libfpart_sanchis.a"
)
