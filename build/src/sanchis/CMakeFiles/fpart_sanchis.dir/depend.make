# Empty dependencies file for fpart_sanchis.
# This may be replaced when dependencies are built.
