# Empty compiler generated dependencies file for fpart_device.
# This may be replaced when dependencies are built.
