file(REMOVE_RECURSE
  "libfpart_device.a"
)
