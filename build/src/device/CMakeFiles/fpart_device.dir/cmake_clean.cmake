file(REMOVE_RECURSE
  "CMakeFiles/fpart_device.dir/device.cpp.o"
  "CMakeFiles/fpart_device.dir/device.cpp.o.d"
  "CMakeFiles/fpart_device.dir/device_set.cpp.o"
  "CMakeFiles/fpart_device.dir/device_set.cpp.o.d"
  "CMakeFiles/fpart_device.dir/xilinx.cpp.o"
  "CMakeFiles/fpart_device.dir/xilinx.cpp.o.d"
  "libfpart_device.a"
  "libfpart_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
