file(REMOVE_RECURSE
  "CMakeFiles/fpart_replication.dir/merge.cpp.o"
  "CMakeFiles/fpart_replication.dir/merge.cpp.o.d"
  "CMakeFiles/fpart_replication.dir/replicate.cpp.o"
  "CMakeFiles/fpart_replication.dir/replicate.cpp.o.d"
  "libfpart_replication.a"
  "libfpart_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
