file(REMOVE_RECURSE
  "libfpart_replication.a"
)
