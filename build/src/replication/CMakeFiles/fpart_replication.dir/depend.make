# Empty dependencies file for fpart_replication.
# This may be replaced when dependencies are built.
