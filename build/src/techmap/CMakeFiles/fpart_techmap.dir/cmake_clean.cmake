file(REMOVE_RECURSE
  "CMakeFiles/fpart_techmap.dir/blif_io.cpp.o"
  "CMakeFiles/fpart_techmap.dir/blif_io.cpp.o.d"
  "CMakeFiles/fpart_techmap.dir/clb_pack.cpp.o"
  "CMakeFiles/fpart_techmap.dir/clb_pack.cpp.o.d"
  "CMakeFiles/fpart_techmap.dir/gate_netlist.cpp.o"
  "CMakeFiles/fpart_techmap.dir/gate_netlist.cpp.o.d"
  "CMakeFiles/fpart_techmap.dir/lut_map.cpp.o"
  "CMakeFiles/fpart_techmap.dir/lut_map.cpp.o.d"
  "CMakeFiles/fpart_techmap.dir/random_logic.cpp.o"
  "CMakeFiles/fpart_techmap.dir/random_logic.cpp.o.d"
  "libfpart_techmap.a"
  "libfpart_techmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_techmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
