
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/techmap/blif_io.cpp" "src/techmap/CMakeFiles/fpart_techmap.dir/blif_io.cpp.o" "gcc" "src/techmap/CMakeFiles/fpart_techmap.dir/blif_io.cpp.o.d"
  "/root/repo/src/techmap/clb_pack.cpp" "src/techmap/CMakeFiles/fpart_techmap.dir/clb_pack.cpp.o" "gcc" "src/techmap/CMakeFiles/fpart_techmap.dir/clb_pack.cpp.o.d"
  "/root/repo/src/techmap/gate_netlist.cpp" "src/techmap/CMakeFiles/fpart_techmap.dir/gate_netlist.cpp.o" "gcc" "src/techmap/CMakeFiles/fpart_techmap.dir/gate_netlist.cpp.o.d"
  "/root/repo/src/techmap/lut_map.cpp" "src/techmap/CMakeFiles/fpart_techmap.dir/lut_map.cpp.o" "gcc" "src/techmap/CMakeFiles/fpart_techmap.dir/lut_map.cpp.o.d"
  "/root/repo/src/techmap/random_logic.cpp" "src/techmap/CMakeFiles/fpart_techmap.dir/random_logic.cpp.o" "gcc" "src/techmap/CMakeFiles/fpart_techmap.dir/random_logic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hypergraph/CMakeFiles/fpart_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/fpart_device.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fpart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
