# Empty dependencies file for fpart_techmap.
# This may be replaced when dependencies are built.
