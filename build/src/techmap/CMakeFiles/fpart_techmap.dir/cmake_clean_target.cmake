file(REMOVE_RECURSE
  "libfpart_techmap.a"
)
