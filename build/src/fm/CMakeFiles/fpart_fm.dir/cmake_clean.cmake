file(REMOVE_RECURSE
  "CMakeFiles/fpart_fm.dir/fm_bipartitioner.cpp.o"
  "CMakeFiles/fpart_fm.dir/fm_bipartitioner.cpp.o.d"
  "CMakeFiles/fpart_fm.dir/gain_bucket.cpp.o"
  "CMakeFiles/fpart_fm.dir/gain_bucket.cpp.o.d"
  "CMakeFiles/fpart_fm.dir/gains.cpp.o"
  "CMakeFiles/fpart_fm.dir/gains.cpp.o.d"
  "CMakeFiles/fpart_fm.dir/repair.cpp.o"
  "CMakeFiles/fpart_fm.dir/repair.cpp.o.d"
  "libfpart_fm.a"
  "libfpart_fm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_fm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
