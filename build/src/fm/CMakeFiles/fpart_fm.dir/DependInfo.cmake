
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fm/fm_bipartitioner.cpp" "src/fm/CMakeFiles/fpart_fm.dir/fm_bipartitioner.cpp.o" "gcc" "src/fm/CMakeFiles/fpart_fm.dir/fm_bipartitioner.cpp.o.d"
  "/root/repo/src/fm/gain_bucket.cpp" "src/fm/CMakeFiles/fpart_fm.dir/gain_bucket.cpp.o" "gcc" "src/fm/CMakeFiles/fpart_fm.dir/gain_bucket.cpp.o.d"
  "/root/repo/src/fm/gains.cpp" "src/fm/CMakeFiles/fpart_fm.dir/gains.cpp.o" "gcc" "src/fm/CMakeFiles/fpart_fm.dir/gains.cpp.o.d"
  "/root/repo/src/fm/repair.cpp" "src/fm/CMakeFiles/fpart_fm.dir/repair.cpp.o" "gcc" "src/fm/CMakeFiles/fpart_fm.dir/repair.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/partition/CMakeFiles/fpart_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fpart_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/fpart_device.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergraph/CMakeFiles/fpart_hypergraph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
