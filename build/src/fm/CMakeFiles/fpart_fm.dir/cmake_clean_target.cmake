file(REMOVE_RECURSE
  "libfpart_fm.a"
)
