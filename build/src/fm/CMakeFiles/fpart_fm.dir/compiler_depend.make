# Empty compiler generated dependencies file for fpart_fm.
# This may be replaced when dependencies are built.
