# Empty dependencies file for fpart_report.
# This may be replaced when dependencies are built.
