file(REMOVE_RECURSE
  "libfpart_report.a"
)
