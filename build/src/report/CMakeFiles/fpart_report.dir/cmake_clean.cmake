file(REMOVE_RECURSE
  "CMakeFiles/fpart_report.dir/csv.cpp.o"
  "CMakeFiles/fpart_report.dir/csv.cpp.o.d"
  "CMakeFiles/fpart_report.dir/table.cpp.o"
  "CMakeFiles/fpart_report.dir/table.cpp.o.d"
  "libfpart_report.a"
  "libfpart_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
