file(REMOVE_RECURSE
  "libfpart_baselines.a"
)
