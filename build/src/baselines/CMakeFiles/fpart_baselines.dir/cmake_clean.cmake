file(REMOVE_RECURSE
  "CMakeFiles/fpart_baselines.dir/kwayx.cpp.o"
  "CMakeFiles/fpart_baselines.dir/kwayx.cpp.o.d"
  "libfpart_baselines.a"
  "libfpart_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
