# Empty compiler generated dependencies file for fpart_baselines.
# This may be replaced when dependencies are built.
