# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mcnc_partition "/root/repo/build/examples/mcnc_partition" "--circuit" "c3540" "--device" "XC3042")
set_tests_properties(example_mcnc_partition PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compare_methods "/root/repo/build/examples/compare_methods" "--circuit" "c3540" "--device" "XC3042")
set_tests_properties(example_compare_methods PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_device_explorer "/root/repo/build/examples/device_explorer" "--circuit" "c3540" "--device" "XC3042")
set_tests_properties(example_device_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hgr_partition "/root/repo/build/examples/hgr_partition")
set_tests_properties(example_hgr_partition PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_techmap_flow "/root/repo/build/examples/techmap_flow" "--gates" "800")
set_tests_properties(example_techmap_flow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_board_planner "/root/repo/build/examples/board_planner" "--circuit" "s9234")
set_tests_properties(example_board_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fpart_cli_pipeline "sh" "-c" "/root/repo/build/examples/fpart_cli genlogic --gates 400 --out pipe.blif && /root/repo/build/examples/fpart_cli techmap --blif pipe.blif --out pipe.hgr && /root/repo/build/examples/fpart_cli partition --in pipe.hgr --device XC3042 --starts 2 --parts pipe.parts && /root/repo/build/examples/fpart_cli verify --in pipe.hgr --parts pipe.parts --device XC3042 && /root/repo/build/examples/fpart_cli rent --in pipe.hgr")
set_tests_properties(example_fpart_cli_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;34;add_test;/root/repo/examples/CMakeLists.txt;0;")
