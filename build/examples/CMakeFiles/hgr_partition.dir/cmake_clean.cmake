file(REMOVE_RECURSE
  "CMakeFiles/hgr_partition.dir/hgr_partition.cpp.o"
  "CMakeFiles/hgr_partition.dir/hgr_partition.cpp.o.d"
  "hgr_partition"
  "hgr_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgr_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
