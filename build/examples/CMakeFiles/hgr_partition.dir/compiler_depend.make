# Empty compiler generated dependencies file for hgr_partition.
# This may be replaced when dependencies are built.
