# Empty compiler generated dependencies file for techmap_flow.
# This may be replaced when dependencies are built.
