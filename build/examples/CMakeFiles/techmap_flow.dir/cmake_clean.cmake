file(REMOVE_RECURSE
  "CMakeFiles/techmap_flow.dir/techmap_flow.cpp.o"
  "CMakeFiles/techmap_flow.dir/techmap_flow.cpp.o.d"
  "techmap_flow"
  "techmap_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/techmap_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
