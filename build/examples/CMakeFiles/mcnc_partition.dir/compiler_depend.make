# Empty compiler generated dependencies file for mcnc_partition.
# This may be replaced when dependencies are built.
