file(REMOVE_RECURSE
  "CMakeFiles/mcnc_partition.dir/mcnc_partition.cpp.o"
  "CMakeFiles/mcnc_partition.dir/mcnc_partition.cpp.o.d"
  "mcnc_partition"
  "mcnc_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcnc_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
