# Empty compiler generated dependencies file for board_planner.
# This may be replaced when dependencies are built.
