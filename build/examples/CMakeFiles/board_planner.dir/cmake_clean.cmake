file(REMOVE_RECURSE
  "CMakeFiles/board_planner.dir/board_planner.cpp.o"
  "CMakeFiles/board_planner.dir/board_planner.cpp.o.d"
  "board_planner"
  "board_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/board_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
