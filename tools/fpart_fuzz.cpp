// fpart_fuzz — command-line driver for the differential fuzz harness
// (src/fuzz/diff_fuzz.hpp).
//
//   fpart_fuzz [--cases N] [--mutation-cases N]
//              [--batch-mutation-cases N] [--seed S] [--artifacts DIR]
//
// Runs N differential cases (random circuit through every engine with
// audit + verify + replay + metamorphic cross-checks), N' mutation
// cases (structure-aware malformed-input sweep), and N'' batch-file
// mutation cases (job-list reject matrix: duplicate ids, out-of-range
// fill, chaos edits) from base seed S.
// Deterministic: the same flags always run the same cases. On the first
// failure the offending case's artifacts (.hgr circuit, event log,
// mutated document) are written into DIR for reproduction; the exit
// status is 1 if any case disagreed, 0 otherwise. CI runs a bounded
// smoke batch per push (plain and sanitized) and uploads DIR on failure.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/diff_fuzz.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

void write_artifact(const std::string& dir, const std::string& name,
                    const std::string& content) {
  if (content.empty()) return;
  const std::string path = dir + "/" + name;
  std::ofstream os(path);
  os << content;
  if (os.good()) {
    std::fprintf(stderr, "fpart_fuzz: wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "fpart_fuzz: failed to write %s\n", path.c_str());
  }
}

int run(int argc, const char* const* argv) {
  fpart::CliParser cli;
  cli.add_flag("cases", "number of differential cases", "25");
  cli.add_flag("mutation-cases", "number of malformed-input cases", "25");
  cli.add_flag("batch-mutation-cases",
               "number of malformed batch-file cases", "25");
  cli.add_flag("seed", "base seed (case i uses seed + i)", "1");
  cli.add_flag("artifacts",
               "directory for failing-case artifacts (created if missing)",
               "");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "fpart_fuzz: %s\n%s", cli.error().c_str(),
                 cli.usage("fpart_fuzz").c_str());
    return 2;
  }
  const std::int64_t cases = cli.get_int("cases");
  const std::int64_t mutation_cases = cli.get_int("mutation-cases");
  const std::int64_t batch_cases = cli.get_int("batch-mutation-cases");
  const std::uint64_t base_seed =
      static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string artifacts_dir = cli.get("artifacts");
  FPART_OPTION_REQUIRE(cases >= 0 && mutation_cases >= 0 && batch_cases >= 0,
                       "case counts must be non-negative");
  if (!artifacts_dir.empty()) {
    std::filesystem::create_directories(artifacts_dir);
  }

  std::uint64_t failures = 0;
  const auto report = [&](const char* kind, std::uint64_t seed,
                          const std::vector<std::string>& disagreements,
                          const fpart::fuzz::DiffArtifacts& artifacts) {
    if (disagreements.empty()) return;
    ++failures;
    std::fprintf(stderr, "FAIL %s case seed=%llu (%zu disagreements)\n",
                 kind, static_cast<unsigned long long>(seed),
                 disagreements.size());
    for (const std::string& d : disagreements) {
      std::fprintf(stderr, "  %s\n", d.c_str());
    }
    if (!artifacts.op.empty()) {
      std::fprintf(stderr, "  operator: %s\n", artifacts.op.c_str());
    }
    if (!artifacts_dir.empty() && failures == 1) {
      const std::string stem = std::string(kind) + "_seed" +
                               std::to_string(seed);
      write_artifact(artifacts_dir, stem + ".hgr", artifacts.hgr);
      write_artifact(artifacts_dir, stem + ".events.jsonl",
                     artifacts.event_log);
      write_artifact(artifacts_dir, stem + ".mutated.txt",
                     artifacts.mutated);
    }
  };

  for (std::int64_t i = 0; i < cases; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    fpart::fuzz::DiffArtifacts artifacts;
    report("diff", seed, fpart::fuzz::run_diff_case(seed, &artifacts),
           artifacts);
  }
  for (std::int64_t i = 0; i < mutation_cases; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    fpart::fuzz::DiffArtifacts artifacts;
    report("mutation", seed,
           fpart::fuzz::run_mutation_case(seed, &artifacts), artifacts);
  }
  for (std::int64_t i = 0; i < batch_cases; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    fpart::fuzz::DiffArtifacts artifacts;
    report("batch-mutation", seed,
           fpart::fuzz::run_batch_mutation_case(seed, &artifacts),
           artifacts);
  }

  std::printf(
      "fpart_fuzz: %lld diff + %lld mutation + %lld batch cases, "
      "%llu failed\n",
      static_cast<long long>(cases), static_cast<long long>(mutation_cases),
      static_cast<long long>(batch_cases),
      static_cast<unsigned long long>(failures));
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const fpart::InternalError& e) {
    std::fprintf(stderr, "fpart_fuzz: internal error: %s\n", e.what());
    return 3;
  } catch (const fpart::Error& e) {
    std::fprintf(stderr, "fpart_fuzz: %s error: %s\n", e.kind(), e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fpart_fuzz: unexpected error: %s\n", e.what());
    return 3;
  }
}
