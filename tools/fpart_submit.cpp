// fpart_submit — one-shot client for the fpart_serve daemon.
//
//   fpart_submit --socket /tmp/fpart.sock --batch jobs.txt [--client ci]
//                [--priority N] [--expect-cached]
//   fpart_submit --socket /tmp/fpart.sock --json '<raw request line>'
//   fpart_submit --tcp PORT --stats | --shutdown
//
// Builds one fpart-serve-request/1 line — from a fpart-batch job file
// (--batch, same text format as fpart_cli batch), a raw line (--json,
// sent verbatim; useful for protocol testing), or a command switch
// (--stats / --shutdown) — sends it, and prints the daemon's response
// line on stdout. Exit status: 0 when the response is ok:true (and
// every --expect-* assertion holds), 1 when the daemon rejected the
// request or an assertion failed, 2 on usage/connection errors. Connects
// retry for --retry-seconds so scripts can race the daemon's startup.
#include <cstdio>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "runtime/batch.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

std::string build_batch_request(const std::string& batch_path,
                                const std::string& client,
                                std::int64_t priority) {
  const std::vector<fpart::runtime::JobSpec> jobs =
      fpart::runtime::parse_batch_file(batch_path);
  FPART_OPTION_REQUIRE(!jobs.empty(),
                       "batch file " + batch_path + " contains no jobs");
  fpart::obs::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(fpart::serve::kServeRequestSchema);
  if (!client.empty()) {
    w.key("client");
    w.value(client);
  }
  w.key("jobs");
  w.begin_array();
  for (const fpart::runtime::JobSpec& spec : jobs) {
    w.begin_object();
    w.key("id");
    w.value(spec.id);
    w.key("input");
    w.value(spec.input);
    w.key("device");
    w.value(spec.device);
    w.key("method");
    w.value(spec.method);
    w.key("fill");
    w.value(spec.fill);
    w.key("seed");
    w.value(spec.seed);
    w.key("portfolio");
    w.value(spec.portfolio);
    w.key("priority");
    w.value(static_cast<std::int64_t>(priority));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string build_cmd_request(const char* cmd) {
  fpart::obs::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(fpart::serve::kServeRequestSchema);
  w.key("cmd");
  w.value(cmd);
  w.end_object();
  return w.take();
}

/// ok:true plus every job cached when `expect_cached` — the smoke-test
/// assertion that a repeated submission was served from the cache.
int judge_response(const std::string& response, bool expect_cached) {
  const std::optional<fpart::obs::JsonValue> doc =
      fpart::obs::json_parse(response);
  if (!doc.has_value() || !doc->is_object()) {
    std::fprintf(stderr, "fpart_submit: unparseable response\n");
    return 1;
  }
  const fpart::obs::JsonValue* ok = doc->find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->boolean) {
    return 1;
  }
  const fpart::obs::JsonValue* jobs = doc->find("jobs");
  if (jobs != nullptr && jobs->is_array()) {
    for (const fpart::obs::JsonValue& job : jobs->array) {
      const fpart::obs::JsonValue* job_ok = job.find("ok");
      if (job_ok == nullptr || !job_ok->is_bool() || !job_ok->boolean) {
        return 1;  // a per-job failure fails the submission
      }
      if (expect_cached) {
        const fpart::obs::JsonValue* cached = job.find("cached");
        if (cached == nullptr || !cached->is_bool() || !cached->boolean) {
          std::fprintf(stderr, "fpart_submit: job was not a cache hit\n");
          return 1;
        }
      }
    }
  }
  return 0;
}

int run(int argc, const char* const* argv) {
  fpart::CliParser cli;
  cli.add_flag("socket", "unix-domain socket path of the daemon", "");
  cli.add_flag("tcp", "loopback TCP port of the daemon (-1 = off)", "-1");
  cli.add_flag("batch", "fpart-batch job file to submit", "");
  cli.add_flag("json", "raw request line to send verbatim", "");
  cli.add_flag("client", "client identity for quota accounting", "");
  cli.add_flag("priority", "priority for every submitted job", "0");
  cli.add_flag("retry-seconds", "connect retry budget", "5");
  cli.add_switch("stats", "request a stats snapshot");
  cli.add_switch("shutdown", "ask the daemon to shut down");
  cli.add_switch("expect-cached", "fail unless every job was a cache hit");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "fpart_submit: %s\n%s", cli.error().c_str(),
                 cli.usage("fpart_submit").c_str());
    return 2;
  }

  std::string request;
  if (cli.get_bool("stats")) {
    request = build_cmd_request("stats");
  } else if (cli.get_bool("shutdown")) {
    request = build_cmd_request("shutdown");
  } else if (!cli.get("json").empty()) {
    request = cli.get("json");
  } else if (!cli.get("batch").empty()) {
    request = build_batch_request(cli.get("batch"), cli.get("client"),
                                  cli.get_int("priority"));
  } else {
    std::fprintf(stderr,
                 "fpart_submit: nothing to send (--batch, --json, --stats "
                 "or --shutdown)\n");
    return 2;
  }

  const std::string socket_path = cli.get("socket");
  const int tcp_port = static_cast<int>(cli.get_int("tcp"));
  const double retry = cli.get_double("retry-seconds");
  fpart::serve::Client client =
      socket_path.empty()
          ? fpart::serve::Client::connect_tcp(tcp_port, retry)
          : fpart::serve::Client::connect_unix(socket_path, retry);

  const std::string response = client.roundtrip(request);
  std::printf("%s\n", response.c_str());
  return judge_response(response, cli.get_bool("expect-cached"));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const fpart::Error& e) {
    std::fprintf(stderr, "fpart_submit: %s error: %s\n", e.kind(), e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fpart_submit: error: %s\n", e.what());
    return 2;
  }
}
