// fpart_bench — unified perf suite runner and baseline regression
// sentinel.
//
//   fpart_bench --suite smoke [--out BENCH_suite.json]
//               [--baseline bench/baselines/smoke.json] [--bless]
//               [--repeats 3] [--tol-time 1.6] [--slowdown 1.0]
//
// Executes a declared suite of benchmark cases — the paper-table solve
// runs (Tables 2-6), the extension benches (multistart, clustering,
// parallel portfolio) and the hot-path churn kernel — every solve
// through the unified solve() facade, and merges all measurements into
// ONE fpart-suite/1 JSON document. Each case records quality metrics
// (k, cut, feasible, assignment digest — deterministic) and timing
// metrics (median-of-R wall/cpu seconds, moves/s, gain-evals/s —
// noisy).
//
// With --baseline the document is compared against a committed
// baseline:
//   * deterministic metrics (digest, k, cut, feasible, digests_agree)
//     are HARD gates — any mismatch is a regression, always;
//   * timing metrics gate only when the baseline was recorded on a
//     machine with the same hardware_concurrency (recorded in both
//     documents); otherwise they are advisory (a CI runner cannot be
//     timed against a dev container);
//   * parallel speedup gates only when BOTH runs had > 1 core — on a
//     single-core host the speedup number is scheduler noise, so the
//     case is down-weighted to its digest-equality gate;
//   * wall/cpu regress when current > baseline * tol_time, throughput
//     (moves/s, gain-evals/s) when current < baseline / tol_time. The
//     default tolerance 1.6x rides above run-to-run noise (medians of
//     R repeats) but a genuine 2x slowdown always trips it.
// Exit 0 = no regression, 1 = regression or determinism failure,
// 2 = usage error. --bless rewrites the baseline from this run.
//
// --slowdown F busy-waits each timed section out to F times its
// measured duration — a real, measured slowdown used by CI to prove
// the sentinel actually fires (an injected 2x slowdown must exit 1).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/solve.hpp"
#include "device/xilinx.hpp"
#include "fm/gains.hpp"
#include "netlist/mcnc.hpp"
#include "obs/json.hpp"
#include "obs/profile.hpp"
#include "obs/provenance.hpp"
#include "partition/partition.hpp"
#include "partition/replay.hpp"
#include "report/table.hpp"
#include "runtime/portfolio.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace fpart;

namespace {

constexpr const char* kSuiteSchema = "fpart-suite/1";

enum class CaseKind { kSolve, kChurn, kPortfolio };

const char* kind_name(CaseKind k) {
  switch (k) {
    case CaseKind::kSolve:
      return "solve";
    case CaseKind::kChurn:
      return "churn";
    case CaseKind::kPortfolio:
      return "portfolio";
  }
  return "solve";
}

struct SuiteCase {
  std::string id;            // unique within the suite, baseline join key
  std::string source_bench;  // which bench/ binary this case mirrors
  CaseKind kind = CaseKind::kSolve;
  std::string circuit;
  std::string device;
  std::string method = "fpart";  // solve cases only
  std::uint32_t starts = 1;      // solve cases only (fpart multistart)
  std::uint32_t attempts = 4;    // portfolio cases only
  std::size_t churn_moves = 400'000;  // churn cases only
};

/// One measured case: quality metrics are deterministic (same binary,
/// same inputs -> same values); timing metrics are medians of --repeats.
struct CaseResult {
  SuiteCase spec;
  // Quality (hard gates).
  std::uint32_t k = 0;
  std::uint32_t lower_bound = 0;
  std::uint64_t cut = 0;
  bool feasible = false;
  std::uint64_t digest = 0;
  bool digests_agree = true;  // repeats / facade / thread counts agree
  // Timing (soft gates).
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  std::vector<double> repeat_wall;
  double moves_per_second = 0.0;       // churn only
  double gain_evals_per_second = 0.0;  // churn only
  double speedup = 0.0;                // portfolio only (t1/t2)
  bool speedup_valid = false;          // false on single-core hosts
  // Hardware/heap deltas across the whole case (all repeats), captured
  // only under --profile. Zero when perf / the alloc hook is absent.
  obs::PerfSample perf_delta;
  std::uint64_t alloc_count_delta = 0;
  std::uint64_t alloc_bytes_delta = 0;
};

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Global slowdown factor injected into every timed section (>= 1).
double g_slowdown = 1.0;

/// Runs `fn` and returns its wall seconds, busy-waiting the section out
/// to g_slowdown times its measured duration first. The spin burns CPU
/// too, so both wall and cpu gates see the injected regression.
template <typename Fn>
double timed(Fn&& fn) {
  Timer t;
  fn();
  double wall = t.elapsed_seconds();
  if (g_slowdown > 1.0) {
    const double target = wall * g_slowdown;
    while (t.elapsed_seconds() < target) {
      // spin
    }
    wall = t.elapsed_seconds();
  }
  return wall;
}

CaseResult run_solve_case(const SuiteCase& c, int repeats) {
  const Device device = xilinx::by_name(c.device);
  const Hypergraph h = mcnc::generate(c.circuit, device.family());
  SolveRequest req;
  req.method = parse_method(c.method);
  req.options.starts = c.starts;

  CaseResult out;
  out.spec = c;
  std::optional<std::uint64_t> first_digest;
  for (int rep = 0; rep < repeats; ++rep) {
    PartitionResult r;
    CpuTimer cpu;
    const double wall = timed([&] { r = solve(h, device, req); });
    out.repeat_wall.push_back(wall);
    out.cpu_seconds += cpu.elapsed_seconds();  // accumulated, averaged below
    const std::uint64_t digest = assignment_digest(r.assignment);
    if (!first_digest.has_value()) {
      first_digest = digest;
      out.k = r.k;
      out.lower_bound = r.lower_bound;
      out.cut = r.cut;
      out.feasible = r.feasible;
      out.digest = digest;
    } else if (digest != *first_digest) {
      // Same binary, same inputs, different answer: a determinism bug,
      // reported through the same digests_agree hard gate.
      out.digests_agree = false;
    }
  }
  out.wall_seconds = median(out.repeat_wall);
  out.cpu_seconds /= repeats;
  return out;
}

CaseResult run_churn_case(const SuiteCase& c, int repeats) {
  const Device device = xilinx::by_name(c.device);
  const Hypergraph h = mcnc::generate(c.circuit, device.family());

  // Fixed-seed random move trajectory over a small block set — the
  // ext_hotpath kernel, scaled down by churn_moves (same Rng stream).
  constexpr std::uint32_t kChurnBlocks = 4;
  std::vector<NodeId> cells;
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) cells.push_back(v);
  }
  Rng rng(0x40709);
  std::vector<std::pair<NodeId, BlockId>> moves;
  moves.reserve(c.churn_moves);
  for (std::size_t i = 0; i < c.churn_moves; ++i) {
    moves.emplace_back(rng.pick(cells),
                       static_cast<BlockId>(rng.index(kChurnBlocks)));
  }

  CaseResult out;
  out.spec = c;
  Partition p(h, kChurnBlocks);
  // Warm-up settles the arena before the first timed repeat.
  for (std::size_t i = 0; i < moves.size() / 8; ++i) {
    p.move(moves[i].first, moves[i].second);
  }

  std::vector<double> move_rates, gain_rates;
  for (int rep = 0; rep < repeats; ++rep) {
    CpuTimer cpu;
    const double move_wall = timed([&] {
      for (const auto& [v, to] : moves) p.move(v, to);
    });
    move_rates.push_back(static_cast<double>(moves.size()) / move_wall);
    long long sink = 0;
    const double gain_wall = timed([&] {
      for (const auto& [v, to] : moves) sink += move_gain(p, v, to);
    });
    if (sink == 0x7fffffffffffffff) std::puts("");  // keep sink live
    gain_rates.push_back(static_cast<double>(moves.size()) / gain_wall);
    out.repeat_wall.push_back(move_wall + gain_wall);
    out.cpu_seconds += cpu.elapsed_seconds();
  }
  p.check_consistency();
  out.wall_seconds = median(out.repeat_wall);
  out.cpu_seconds /= repeats;
  out.moves_per_second = median(move_rates);
  out.gain_evals_per_second = median(gain_rates);
  // The trajectory is fixed, so the end state is a deterministic digest
  // (every repeat replays the same moves onto the same partition).
  out.k = p.num_blocks();
  out.cut = p.cut_size();
  out.feasible = true;
  out.digest = assignment_digest(p.assignment());
  return out;
}

CaseResult run_portfolio_case(const SuiteCase& c, int repeats) {
  const Device device = xilinx::by_name(c.device);
  const Hypergraph h = mcnc::generate(c.circuit, device.family());
  runtime::PortfolioOptions popt;
  popt.attempts = c.attempts;
  popt.method = c.method;

  CaseResult out;
  out.spec = c;
  const unsigned hw = std::thread::hardware_concurrency();
  out.speedup_valid = hw > 1;

  // Reference run at 1 thread: the digest every other run must hit.
  popt.threads = 1;
  runtime::PortfolioResult serial;
  const double t1 = timed([&] { serial = run_portfolio(h, device, popt); });
  out.k = serial.best.k;
  out.lower_bound = serial.best.lower_bound;
  out.cut = serial.best.cut;
  out.feasible = serial.best.feasible;
  out.digest = serial.digest;

  // Timed runs at the parallel thread count; digest equality across
  // thread counts is the determinism contract and the hard gate.
  popt.threads = 2;
  for (int rep = 0; rep < repeats; ++rep) {
    runtime::PortfolioResult parallel;
    CpuTimer cpu;
    const double wall =
        timed([&] { parallel = run_portfolio(h, device, popt); });
    out.repeat_wall.push_back(wall);
    out.cpu_seconds += cpu.elapsed_seconds();
    if (parallel.digest != serial.digest) out.digests_agree = false;
  }
  out.wall_seconds = median(out.repeat_wall);
  out.cpu_seconds /= repeats;
  out.speedup = out.wall_seconds > 0.0 ? t1 / out.wall_seconds : 0.0;
  return out;
}

CaseResult run_case(const SuiteCase& c, int repeats) {
  switch (c.kind) {
    case CaseKind::kChurn:
      return run_churn_case(c, repeats);
    case CaseKind::kPortfolio:
      return run_portfolio_case(c, repeats);
    case CaseKind::kSolve:
      break;
  }
  return run_solve_case(c, repeats);
}

/// The declared suites. "smoke" covers every bench family (Tables 2-6
/// plus the ext benches) on small circuits; "full" widens the circuit
/// set; "tiny" is the fast configuration the ctest sentinel check uses.
std::vector<SuiteCase> suite_cases(const std::string& suite) {
  const auto solve_case = [](std::string id, std::string src,
                             std::string circuit, std::string device,
                             std::string method, std::uint32_t starts = 1) {
    SuiteCase c;
    c.id = std::move(id);
    c.source_bench = std::move(src);
    c.kind = CaseKind::kSolve;
    c.circuit = std::move(circuit);
    c.device = std::move(device);
    c.method = std::move(method);
    c.starts = starts;
    return c;
  };
  const auto churn_case = [](std::string id, std::string circuit,
                             std::string device, std::size_t moves) {
    SuiteCase c;
    c.id = std::move(id);
    c.source_bench = "ext_hotpath";
    c.kind = CaseKind::kChurn;
    c.circuit = std::move(circuit);
    c.device = std::move(device);
    c.churn_moves = moves;
    return c;
  };
  const auto portfolio_case = [](std::string id, std::string circuit,
                                 std::string device,
                                 std::uint32_t attempts) {
    SuiteCase c;
    c.id = std::move(id);
    c.source_bench = "ext_parallel";
    c.kind = CaseKind::kPortfolio;
    c.circuit = std::move(circuit);
    c.device = std::move(device);
    c.attempts = attempts;
    return c;
  };

  if (suite == "tiny") {
    return {
        solve_case("tiny/fpart-c3540-xc3042", "table3", "c3540", "XC3042",
                   "fpart"),
        churn_case("tiny/churn-c3540-xc3042", "c3540", "XC3042", 100'000),
    };
  }
  std::vector<SuiteCase> cases = {
      solve_case("table2/fpart-c3540-xc3020", "table2", "c3540", "XC3020",
                 "fpart"),
      solve_case("table2/kwayx-c3540-xc3020", "table2", "c3540", "XC3020",
                 "kwayx"),
      solve_case("table2/fbb-c3540-xc3020", "table2", "c3540", "XC3020",
                 "fbb"),
      solve_case("table3/fpart-c3540-xc3042", "table3", "c3540", "XC3042",
                 "fpart"),
      solve_case("table4/fpart-c5315-xc3090", "table4", "c5315", "XC3090",
                 "fpart"),
      solve_case("table5/fpart-c3540-xc2064", "table5", "c3540", "XC2064",
                 "fpart"),
      solve_case("table6/fpart-s5378-xc3042", "table6", "s5378", "XC3042",
                 "fpart"),
      solve_case("ext_clustering/clustered-s9234-xc3042", "ext_clustering",
                 "s9234", "XC3042", "clustered"),
      solve_case("ext_multistart/fpart-c3540-xc3020-s3", "ext_multistart",
                 "c3540", "XC3020", "fpart", /*starts=*/3),
      churn_case("ext_hotpath/churn-c3540-xc3042", "c3540", "XC3042",
                 400'000),
      portfolio_case("ext_parallel/portfolio-c3540-xc3020", "c3540",
                     "XC3020", /*attempts=*/4),
  };
  if (suite == "full") {
    cases.push_back(solve_case("table3/fpart-s9234-xc3042", "table3",
                               "s9234", "XC3042", "fpart"));
    cases.push_back(solve_case("table3/kwayx-s9234-xc3042", "table3",
                               "s9234", "XC3042", "kwayx"));
    cases.push_back(solve_case("table3/fbb-s13207-xc3042", "table3",
                               "s13207", "XC3042", "fbb"));
    cases.push_back(
        churn_case("ext_hotpath/churn-s9234-xc3042", "s9234", "XC3042",
                   1'000'000));
  } else {
    FPART_REQUIRE(suite == "smoke",
                  "unknown --suite '" + suite + "' (smoke | full | tiny)");
  }
  return cases;
}

std::string suite_json(const std::string& suite, int repeats,
                       double tol_time,
                       const std::vector<CaseResult>& results) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kSuiteSchema);
  w.key("suite");
  w.value(suite);
  w.key("repeats");
  w.value(static_cast<std::int64_t>(repeats));
  w.key("hardware_concurrency");
  w.value(static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.key("tolerance_time");
  w.value(tol_time);
  w.key("slowdown");
  w.value(g_slowdown);
  w.key("covers");
  w.begin_array();
  std::set<std::string> covers;
  for (const CaseResult& r : results) covers.insert(r.spec.source_bench);
  for (const std::string& c : covers) w.value(c);
  w.end_array();
  w.key("cases");
  w.begin_array();
  for (const CaseResult& r : results) {
    w.begin_object();
    w.key("id");
    w.value(r.spec.id);
    w.key("source_bench");
    w.value(r.spec.source_bench);
    w.key("kind");
    w.value(kind_name(r.spec.kind));
    w.key("circuit");
    w.value(r.spec.circuit);
    w.key("device");
    w.value(r.spec.device);
    w.key("method");
    w.value(r.spec.method);
    w.key("starts");
    w.value(r.spec.starts);
    w.key("k");
    w.value(r.k);
    w.key("lower_bound");
    w.value(r.lower_bound);
    w.key("cut");
    w.value(r.cut);
    w.key("feasible");
    w.value(r.feasible);
    w.key("digest");
    w.value(r.digest);
    w.key("digests_agree");
    w.value(r.digests_agree);
    w.key("wall_seconds");
    w.value(r.wall_seconds);
    w.key("cpu_seconds");
    w.value(r.cpu_seconds);
    w.key("repeat_wall_seconds");
    w.begin_array();
    for (const double s : r.repeat_wall) w.value(s);
    w.end_array();
    if (r.spec.kind == CaseKind::kChurn) {
      w.key("moves_per_second");
      w.value(r.moves_per_second);
      w.key("gain_evals_per_second");
      w.value(r.gain_evals_per_second);
    }
    if (r.spec.kind == CaseKind::kPortfolio) {
      w.key("speedup");
      w.value(r.speedup);
      w.key("speedup_valid");
      w.value(r.speedup_valid);
    }
    if (obs::profile_enabled()) {
      w.key("profile");
      w.begin_object();
      w.key("cycles");
      w.value(r.perf_delta.cycles);
      w.key("instructions");
      w.value(r.perf_delta.instructions);
      w.key("cache_references");
      w.value(r.perf_delta.cache_references);
      w.key("cache_misses");
      w.value(r.perf_delta.cache_misses);
      w.key("branch_misses");
      w.value(r.perf_delta.branch_misses);
      w.key("alloc_count");
      w.value(r.alloc_count_delta);
      w.key("alloc_bytes");
      w.value(r.alloc_bytes_delta);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  if (obs::profile_enabled()) {
    w.key("profile");
    obs::write_profile_section(w);
  }
  w.key("provenance");
  obs::write_provenance(w);
  w.end_object();
  return w.take();
}

// ---------------------------------------------------------------------
// Baseline comparison

struct Gate {
  std::string case_id;
  std::string metric;
  std::string baseline;   // display form (digests stay exact as hex)
  std::string current;
  bool hard = false;      // deterministic metric: any mismatch fails
  bool active = true;     // false = advisory only (hw mismatch etc.)
  bool regressed = false;
  std::string note;
};

std::string hex_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

const obs::JsonValue* find_case(const obs::JsonValue& doc,
                                const std::string& id) {
  const obs::JsonValue* cases = doc.find("cases");
  if (cases == nullptr || !cases->is_array()) return nullptr;
  for (const obs::JsonValue& c : cases->array) {
    const obs::JsonValue* cid = c.find("id");
    if (cid != nullptr && cid->is_string() && cid->string == id) return &c;
  }
  return nullptr;
}

double num_or(const obs::JsonValue& obj, const char* key, double fallback) {
  const obs::JsonValue* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

std::uint64_t u64_or(const obs::JsonValue& obj, const char* key,
                     std::uint64_t fallback) {
  const obs::JsonValue* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? v->as_u64() : fallback;
}

bool bool_or(const obs::JsonValue& obj, const char* key, bool fallback) {
  const obs::JsonValue* v = obj.find(key);
  return (v != nullptr && v->is_bool()) ? v->boolean : fallback;
}

/// Compares current results against a parsed baseline document. Returns
/// the evaluated gates; any gate with hard && regressed, or active &&
/// regressed, is a regression.
std::vector<Gate> compare_against_baseline(
    const obs::JsonValue& baseline, const std::vector<CaseResult>& results,
    double tol_time) {
  std::vector<Gate> gates;
  const unsigned hw = std::thread::hardware_concurrency();
  const auto base_hw =
      static_cast<unsigned>(u64_or(baseline, "hardware_concurrency", 0));
  // Wall-clock comparisons only mean something on the machine the
  // baseline was recorded on; hardware_concurrency is the (coarse)
  // fingerprint both documents record.
  const bool time_gates_active = base_hw == hw && base_hw != 0;

  for (const CaseResult& r : results) {
    const obs::JsonValue* b = find_case(baseline, r.spec.id);
    if (b == nullptr) {
      Gate g;
      g.case_id = r.spec.id;
      g.metric = "presence";
      g.hard = false;
      g.active = false;
      g.note = "new case (not in baseline)";
      gates.push_back(std::move(g));
      continue;
    }

    // Exact 64-bit comparison: digests do not fit a double's mantissa,
    // so the gate never rounds two different values into "equal".
    const auto hard_gate = [&](const char* metric, std::uint64_t base_v,
                               std::uint64_t cur_v, bool hex) {
      Gate g;
      g.case_id = r.spec.id;
      g.metric = metric;
      g.baseline = hex ? hex_u64(base_v) : std::to_string(base_v);
      g.current = hex ? hex_u64(cur_v) : std::to_string(cur_v);
      g.hard = true;
      g.regressed = base_v != cur_v;
      gates.push_back(std::move(g));
    };
    hard_gate("digest", u64_or(*b, "digest", 0), r.digest, /*hex=*/true);
    hard_gate("k", u64_or(*b, "k", 0), r.k, false);
    hard_gate("cut", u64_or(*b, "cut", 0), r.cut, false);
    hard_gate("feasible", bool_or(*b, "feasible", false) ? 1 : 0,
              r.feasible ? 1 : 0, false);
    hard_gate("digests_agree", bool_or(*b, "digests_agree", true) ? 1 : 0,
              r.digests_agree ? 1 : 0, false);

    const auto time_gate = [&](const char* metric, double base_v,
                               double cur_v, bool lower_is_better) {
      if (base_v <= 0.0) return;  // baseline lacks the metric
      Gate g;
      g.case_id = r.spec.id;
      g.metric = metric;
      g.baseline = fmt_double(base_v, 4);
      g.current = fmt_double(cur_v, 4);
      g.active = time_gates_active;
      g.regressed = lower_is_better ? cur_v > base_v * tol_time
                                    : cur_v < base_v / tol_time;
      if (!time_gates_active) {
        g.note = "advisory (hardware_concurrency differs from baseline)";
      }
      gates.push_back(std::move(g));
    };
    time_gate("wall_seconds", num_or(*b, "wall_seconds", 0.0),
              r.wall_seconds, /*lower_is_better=*/true);
    time_gate("cpu_seconds", num_or(*b, "cpu_seconds", 0.0), r.cpu_seconds,
              /*lower_is_better=*/true);
    if (r.spec.kind == CaseKind::kChurn) {
      time_gate("moves_per_second", num_or(*b, "moves_per_second", 0.0),
                r.moves_per_second, /*lower_is_better=*/false);
      time_gate("gain_evals_per_second",
                num_or(*b, "gain_evals_per_second", 0.0),
                r.gain_evals_per_second, /*lower_is_better=*/false);
    }
    if (r.spec.kind == CaseKind::kPortfolio) {
      // Speedup gates only when both runs had real parallel hardware;
      // single-core portfolios are gated by digest equality alone (the
      // speedup number is scheduler noise there).
      const bool base_valid = bool_or(*b, "speedup_valid", false);
      if (base_valid && r.speedup_valid) {
        const double base_speedup = num_or(*b, "speedup", 0.0);
        Gate g;
        g.case_id = r.spec.id;
        g.metric = "speedup";
        g.baseline = fmt_double(base_speedup, 4);
        g.current = fmt_double(r.speedup, 4);
        g.active = time_gates_active;
        g.regressed = base_speedup > 0.0 && r.speedup < base_speedup * 0.7;
        gates.push_back(std::move(g));
      }
    }
  }

  // A case present in the baseline but missing from the current run is
  // a silent coverage loss — fail hard.
  const obs::JsonValue* base_cases = baseline.find("cases");
  if (base_cases != nullptr && base_cases->is_array()) {
    for (const obs::JsonValue& bc : base_cases->array) {
      const obs::JsonValue* cid = bc.find("id");
      if (cid == nullptr || !cid->is_string()) continue;
      const bool present =
          std::any_of(results.begin(), results.end(),
                      [&](const CaseResult& r) {
                        return r.spec.id == cid->string;
                      });
      if (!present) {
        Gate g;
        g.case_id = cid->string;
        g.metric = "presence";
        g.hard = true;
        g.regressed = true;
        g.note = "case missing from current run";
        gates.push_back(std::move(g));
      }
    }
  }
  return gates;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("suite", "smoke | full | tiny", "smoke");
  cli.add_flag("out", "merged fpart-suite/1 output path",
               "BENCH_suite.json");
  cli.add_flag("baseline", "committed baseline to compare against", "");
  cli.add_flag("repeats", "timing repeats per case (median taken)", "3");
  cli.add_flag("tol-time", "soft-gate tolerance ratio", "1.6");
  cli.add_flag("slowdown",
               "inject a busy-wait slowdown factor (sentinel self-test)",
               "1.0");
  cli.add_switch("bless", "rewrite the baseline from this run");
  cli.add_switch("profile",
                 "sample hardware counters + heap telemetry per case");
  if (!cli.parse(argc, argv) || !cli.positional().empty()) {
    std::fprintf(stderr, "usage: fpart_bench [flags]\n%s%s",
                 cli.error().empty() ? "" : (cli.error() + "\n").c_str(),
                 cli.usage("fpart_bench").c_str());
    return 2;
  }

  const std::string suite = cli.get("suite");
  const int repeats = std::max<int>(1, static_cast<int>(cli.get_int("repeats")));
  const double tol_time = cli.get_double("tol-time");
  g_slowdown = std::max(1.0, cli.get_double("slowdown"));
  const std::string baseline_path = cli.get("baseline");
  const bool bless = cli.has("bless") && cli.get_bool("bless");
  if (cli.has("profile") && cli.get_bool("profile")) {
    obs::set_profile_enabled(true);
    const auto& perf = obs::perf_availability();
    if (!perf.available) {
      std::fprintf(stderr,
                   "fpart_bench: hardware counters unavailable (%s); "
                   "profiling degrades to heap/RSS telemetry\n",
                   perf.reason.c_str());
    }
  }

  std::vector<SuiteCase> cases;
  try {
    cases = suite_cases(suite);
  } catch (const Error& e) {
    std::fprintf(stderr, "fpart_bench: %s\n", e.what());
    return 2;
  }

  std::printf("fpart_bench: suite '%s', %zu cases, %d repeats, "
              "hardware_concurrency=%u%s\n",
              suite.c_str(), cases.size(), repeats,
              std::thread::hardware_concurrency(),
              g_slowdown > 1.0 ? " [slowdown injected]" : "");

  std::vector<CaseResult> results;
  Table table({"case", "kind", "k", "cut", "wall ms", "cpu ms", "Mmoves/s",
               "digest ok"});
  for (const SuiteCase& c : cases) {
    const obs::PerfSample perf_before = obs::perf_read();
    const std::uint64_t allocs_before = obs::thread_alloc_count();
    const std::uint64_t alloc_bytes_before = obs::thread_alloc_bytes();
    CaseResult r = run_case(c, repeats);
    if (obs::profile_enabled()) {
      const obs::PerfSample perf_after = obs::perf_read();
      r.perf_delta.cycles = perf_after.cycles - perf_before.cycles;
      r.perf_delta.instructions =
          perf_after.instructions - perf_before.instructions;
      r.perf_delta.cache_references =
          perf_after.cache_references - perf_before.cache_references;
      r.perf_delta.cache_misses =
          perf_after.cache_misses - perf_before.cache_misses;
      r.perf_delta.branch_misses =
          perf_after.branch_misses - perf_before.branch_misses;
      r.alloc_count_delta = obs::thread_alloc_count() - allocs_before;
      r.alloc_bytes_delta = obs::thread_alloc_bytes() - alloc_bytes_before;
    }
    table.add_row(
        {r.spec.id, kind_name(r.spec.kind), fmt_int(r.k),
         fmt_int(static_cast<std::int64_t>(r.cut)),
         fmt_double(r.wall_seconds * 1e3, 1),
         fmt_double(r.cpu_seconds * 1e3, 1),
         r.spec.kind == CaseKind::kChurn
             ? fmt_double(r.moves_per_second / 1e6, 2)
             : std::string("-"),
         r.digests_agree ? "yes" : "NO"});
    results.push_back(std::move(r));
  }
  std::fputs(table.to_ascii().c_str(), stdout);

  const std::string body = suite_json(suite, repeats, tol_time, results);
  {
    std::ofstream os(cli.get("out"), std::ios::binary);
    FPART_REQUIRE(os.good(), "cannot write " + cli.get("out"));
    os << body << '\n';
  }
  std::printf("wrote %s\n", cli.get("out").c_str());

  bool determinism_ok = true;
  for (const CaseResult& r : results) {
    determinism_ok = determinism_ok && r.digests_agree;
  }
  if (!determinism_ok) {
    std::fprintf(stderr,
                 "fpart_bench: DETERMINISM FAILURE (digests disagree "
                 "across repeats/facades/thread counts)\n");
  }

  if (baseline_path.empty()) {
    return determinism_ok ? 0 : 1;
  }
  if (bless) {
    std::ofstream os(baseline_path, std::ios::binary);
    FPART_REQUIRE(os.good(), "cannot write baseline " + baseline_path);
    os << body << '\n';
    std::printf("baseline blessed: %s\n", baseline_path.c_str());
    return determinism_ok ? 0 : 1;
  }

  std::ifstream is(baseline_path, std::ios::binary);
  if (!is.good()) {
    std::fprintf(stderr,
                 "fpart_bench: baseline %s not found (run with --bless "
                 "to create it)\n",
                 baseline_path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  const auto baseline = obs::json_parse(buf.str());
  if (!baseline.has_value() || !baseline->is_object()) {
    std::fprintf(stderr, "fpart_bench: baseline %s is not valid JSON\n",
                 baseline_path.c_str());
    return 2;
  }

  const std::vector<Gate> gates =
      compare_against_baseline(*baseline, results, tol_time);
  Table cmp({"case", "metric", "baseline", "current", "gate", "status"});
  bool regressed = !determinism_ok;
  for (const Gate& g : gates) {
    const bool fails = g.regressed && (g.hard || g.active);
    regressed = regressed || fails;
    std::string status = fails          ? "REGRESSED"
                         : g.regressed  ? "regressed (advisory)"
                                        : "ok";
    if (!g.note.empty()) status += " — " + g.note;
    cmp.add_row({g.case_id, g.metric, g.baseline, g.current,
                 g.hard ? "hard" : (g.active ? "soft" : "advisory"),
                 status});
  }
  std::printf("\nbaseline comparison (%s, tolerance %.2fx):\n%s",
              baseline_path.c_str(), tol_time, cmp.to_ascii().c_str());
  if (regressed) {
    std::fprintf(stderr, "fpart_bench: REGRESSION against %s\n",
                 baseline_path.c_str());
    return 1;
  }
  std::printf("no regression against %s\n", baseline_path.c_str());
  return 0;
}
