// fpart_inspect — offline analysis of fpart-events/1 flight-recorder
// logs (obs/recorder.hpp):
//
//   fpart_inspect replay  --events run.jsonl --in circuit.hgr [--json]
//       Re-derives the final partition by applying the log's mutation
//       events to the input hypergraph and checks it, byte for byte,
//       against the recorded footer (cut, K-1, per-block S/T, assignment
//       digest). Exit 0 iff the replay reproduces the recorded run.
//
//   fpart_inspect diff a.jsonl b.jsonl
//       Compares two logs event by event and reports the first diverging
//       event (the primary tool for chasing nondeterminism). Exit 0 iff
//       the logs describe identical runs.
//
//   fpart_inspect summary --events run.jsonl [--json] [--curve N]
//       Convergence overview: per-kind event counts, per-engine pass
//       statistics (moves, rollback depth, improvement), and a sampled
//       gain-vs-move curve.
//
//   fpart_inspect convergence --series ts.json [--json] [--no-timing]
//                             [--limit N]
//       Renders a fpart-timeseries/1 convergence series (standalone file
//       or the "timeseries" section of a run report) as per-pass curves:
//       one row per sample with cut / best metric / feasible blocks /
//       moves / rollback depth / bucket occupancy, plus derived move
//       throughput when timing is present. --no-timing drops the
//       non-deterministic columns so same-seed outputs compare byte for
//       byte (the golden-output ctest relies on this).
//
//   fpart_inspect profile --report run.json [--json] [--folded out.txt]
//       Renders the per-phase hardware/heap counters of a --profile run
//       report (fpart-run-report/1): cycles, IPC, cache-miss rate,
//       branch misses, allocation count/bytes per phase-tree node.
//       --folded emits folded-stack lines ("run;pass;phase weight",
//       weight = cycles when perf was available, else wall microseconds)
//       consumable by flamegraph.pl / inferno / speedscope. A report
//       from a perf-denied host renders with available:false and the
//       timing/alloc columns only — exit 0 either way.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "netlist/hgr_io.hpp"
#include "obs/json.hpp"
#include "obs/recorder.hpp"
#include "obs/timeseries.hpp"
#include "partition/replay.hpp"
#include "report/table.hpp"
#include "util/cli.hpp"

using namespace fpart;

namespace {

std::string hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

int cmd_replay(const CliParser& cli) {
  const obs::EventLog log = obs::read_event_log(cli.get("events"));
  const Hypergraph h = read_hgr_file(cli.get("in"));
  const ReplayResult r = replay_event_log(h, log);

  if (cli.has("json")) {
    obs::JsonWriter w;
    w.begin_object();
    w.key("ok");
    w.value(r.ok);
    w.key("mutations_applied");
    w.value(r.mutations_applied);
    w.key("events");
    w.value(static_cast<std::uint64_t>(log.events.size()));
    if (r.first_divergence != ReplayResult::kNoDivergence) {
      w.key("first_divergence");
      w.value(r.first_divergence);
    }
    w.key("errors");
    w.begin_array();
    for (const std::string& e : r.errors) w.value(e);
    w.end_array();
    if (r.partition) {
      w.key("replayed");
      w.begin_object();
      w.key("k");
      w.value(static_cast<std::uint64_t>(r.partition->num_blocks()));
      w.key("cut");
      w.value(r.partition->cut_size());
      w.key("km1");
      w.value(r.partition->connectivity_km1());
      w.key("assignment_digest");
      w.value(hex(assignment_digest(r.partition->assignment())));
      w.end_object();
    }
    w.end_object();
    std::printf("%s\n", w.take().c_str());
    return r.ok ? 0 : 1;
  }

  std::printf("replayed %llu mutation events over %s (%llu total events)\n",
              static_cast<unsigned long long>(r.mutations_applied),
              cli.get("in").c_str(),
              static_cast<unsigned long long>(log.events.size()));
  if (r.partition) {
    std::printf("  result: k=%u cut=%llu km1=%llu digest=%s\n",
                r.partition->num_blocks(),
                static_cast<unsigned long long>(r.partition->cut_size()),
                static_cast<unsigned long long>(
                    r.partition->connectivity_km1()),
                hex(assignment_digest(r.partition->assignment())).c_str());
  }
  if (r.ok) {
    std::printf("  replay matches the recorded run%s\n",
                log.final_state ? " (footer verified)"
                                : " (no footer to verify against)");
    return 0;
  }
  std::printf("  REPLAY DIVERGED:\n");
  for (const std::string& e : r.errors) std::printf("    %s\n", e.c_str());
  return 1;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  const obs::EventLog a = obs::read_event_log(path_a);
  const obs::EventLog b = obs::read_event_log(path_b);
  bool same = true;

  if (a.header.method != b.header.method) {
    std::printf("header: method differs (%s vs %s)\n",
                a.header.method.c_str(), b.header.method.c_str());
    same = false;
  }
  if (a.header.seed != b.header.seed) {
    std::printf("header: seed differs (%llu vs %llu)\n",
                static_cast<unsigned long long>(a.header.seed),
                static_cast<unsigned long long>(b.header.seed));
    same = false;
  }
  if (a.header.graph_digest != b.header.graph_digest) {
    std::printf("header: hypergraph digest differs (%s vs %s) — the runs "
                "partitioned different netlists\n",
                hex(a.header.graph_digest).c_str(),
                hex(b.header.graph_digest).c_str());
    same = false;
  }

  const std::size_t common = std::min(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (a.events[i] == b.events[i]) continue;
    std::printf("first diverging event at index %zu:\n", i);
    std::printf("  a: %s\n", obs::event_json(a.events[i], i).c_str());
    std::printf("  b: %s\n", obs::event_json(b.events[i], i).c_str());
    if (i > 0) {
      std::printf("  last common event:\n    %s\n",
                  obs::event_json(a.events[i - 1], i - 1).c_str());
    }
    return 1;
  }
  if (a.events.size() != b.events.size()) {
    std::printf("logs agree on the first %zu events but lengths differ "
                "(%zu vs %zu)\n",
                common, a.events.size(), b.events.size());
    const auto& longer = a.events.size() > b.events.size() ? a : b;
    std::printf("  first extra event (%s):\n    %s\n",
                a.events.size() > b.events.size() ? "a" : "b",
                obs::event_json(longer.events[common], common).c_str());
    return 1;
  }

  if (a.final_state.has_value() != b.final_state.has_value()) {
    std::printf("only one log carries a final-state footer\n");
    same = false;
  } else if (a.final_state && b.final_state) {
    const obs::FinalState& fa = *a.final_state;
    const obs::FinalState& fb = *b.final_state;
    if (fa.k != fb.k || fa.cut != fb.cut || fa.km1 != fb.km1 ||
        fa.assignment_digest != fb.assignment_digest ||
        fa.blocks != fb.blocks) {
      std::printf("footers differ: a{k=%u cut=%llu digest=%s} vs "
                  "b{k=%u cut=%llu digest=%s}\n",
                  fa.k, static_cast<unsigned long long>(fa.cut),
                  hex(fa.assignment_digest).c_str(), fb.k,
                  static_cast<unsigned long long>(fb.cut),
                  hex(fb.assignment_digest).c_str());
      same = false;
    }
  }

  if (same) {
    std::printf("logs are identical: %zu events, matching headers and "
                "footers\n",
                a.events.size());
    return 0;
  }
  return 1;
}

struct EnginePassStats {
  std::uint64_t passes = 0;
  std::uint64_t improved = 0;
  std::uint64_t moves = 0;
  std::uint64_t rolled_back = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t rollback_depth_max = 0;
  std::uint64_t rollback_depth_sum = 0;
};

int cmd_summary(const CliParser& cli) {
  const obs::EventLog log = obs::read_event_log(cli.get("events"));

  std::map<std::string, std::uint64_t> kind_counts;
  std::map<std::string, EnginePassStats> engines;
  // Gain-vs-move curve: cumulative staged gain and recorded cut per move.
  std::vector<std::pair<std::int64_t, std::uint64_t>> curve;  // (cum, cut)
  std::int64_t cum_gain = 0;
  for (const obs::Event& e : log.events) {
    ++kind_counts[obs::event_kind_name(e.kind)];
    switch (e.kind) {
      case obs::EventKind::kMove:
        if (e.gain != obs::kNoGain) cum_gain += e.gain;
        curve.emplace_back(cum_gain, e.value);
        break;
      case obs::EventKind::kPassEnd: {
        EnginePassStats& s = engines[obs::engine_name(e.engine)];
        ++s.passes;
        s.improved += e.c != 0 ? 1 : 0;
        s.moves += e.a;
        s.rolled_back += e.b;
        break;
      }
      case obs::EventKind::kRollback: {
        EnginePassStats& s = engines[obs::engine_name(e.engine)];
        ++s.rollbacks;
        s.rollback_depth_sum += e.a;
        s.rollback_depth_max = std::max<std::uint64_t>(
            s.rollback_depth_max, e.a);
        break;
      }
      default:
        break;
    }
  }

  const auto curve_points =
      static_cast<std::size_t>(cli.has("curve") ? cli.get_int("curve") : 16);

  if (cli.has("json")) {
    obs::JsonWriter w;
    w.begin_object();
    w.key("method");
    w.value(log.header.method);
    w.key("seed");
    w.value(log.header.seed);
    w.key("events");
    w.value(static_cast<std::uint64_t>(log.events.size()));
    w.key("kinds");
    w.begin_object();
    for (const auto& [name, count] : kind_counts) {
      w.key(name);
      w.value(count);
    }
    w.end_object();
    w.key("engines");
    w.begin_object();
    for (const auto& [name, s] : engines) {
      w.key(name);
      w.begin_object();
      w.key("passes");
      w.value(s.passes);
      w.key("improved");
      w.value(s.improved);
      w.key("moves");
      w.value(s.moves);
      w.key("rolled_back");
      w.value(s.rolled_back);
      w.key("rollback_depth_max");
      w.value(s.rollback_depth_max);
      w.key("rollback_depth_mean");
      w.value(s.rollbacks == 0 ? 0.0
                               : static_cast<double>(s.rollback_depth_sum) /
                                     static_cast<double>(s.rollbacks));
      w.end_object();
    }
    w.end_object();
    w.key("curve");
    w.begin_array();
    if (!curve.empty()) {
      const std::size_t n = std::min(curve_points, curve.size());
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t at = i * (curve.size() - 1) / std::max<std::size_t>(
                                                            1, n - 1);
        w.begin_array();
        w.value(static_cast<std::uint64_t>(at));
        w.value(static_cast<std::int64_t>(curve[at].first));
        w.value(curve[at].second);
        w.end_array();
      }
    }
    w.end_array();
    if (log.final_state) {
      w.key("final");
      w.begin_object();
      w.key("k");
      w.value(static_cast<std::uint64_t>(log.final_state->k));
      w.key("cut");
      w.value(log.final_state->cut);
      w.key("km1");
      w.value(log.final_state->km1);
      w.end_object();
    }
    w.end_object();
    std::printf("%s\n", w.take().c_str());
    return 0;
  }

  std::printf("%s seed=%llu: %zu events on %llu-node/%llu-net graph "
              "(digest %s)\n",
              log.header.method.c_str(),
              static_cast<unsigned long long>(log.header.seed),
              log.events.size(),
              static_cast<unsigned long long>(log.header.graph_nodes),
              static_cast<unsigned long long>(log.header.graph_nets),
              hex(log.header.graph_digest).c_str());
  if (log.final_state) {
    std::printf("final: k=%u cut=%llu km1=%llu\n", log.final_state->k,
                static_cast<unsigned long long>(log.final_state->cut),
                static_cast<unsigned long long>(log.final_state->km1));
  }

  Table kinds({"event", "count"});
  for (const auto& [name, count] : kind_counts) {
    kinds.add_row({name, fmt_int(static_cast<std::int64_t>(count))});
  }
  std::printf("\n%s", kinds.to_ascii().c_str());

  if (!engines.empty()) {
    Table passes({"engine", "passes", "improved", "moves", "rolled back",
                  "rollback depth (mean/max)"});
    for (const auto& [name, s] : engines) {
      const double mean =
          s.rollbacks == 0 ? 0.0
                           : static_cast<double>(s.rollback_depth_sum) /
                                 static_cast<double>(s.rollbacks);
      passes.add_row({name, fmt_int(static_cast<std::int64_t>(s.passes)),
                      fmt_int(static_cast<std::int64_t>(s.improved)),
                      fmt_int(static_cast<std::int64_t>(s.moves)),
                      fmt_int(static_cast<std::int64_t>(s.rolled_back)),
                      fmt_double(mean, 1) + " / " +
                          fmt_int(static_cast<std::int64_t>(
                              s.rollback_depth_max))});
    }
    std::printf("\n%s", passes.to_ascii().c_str());
  }

  if (!curve.empty()) {
    Table gain({"move", "cum gain", "cut"});
    const std::size_t n = std::min(curve_points, curve.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t at =
          i * (curve.size() - 1) / std::max<std::size_t>(1, n - 1);
      gain.add_row({fmt_int(static_cast<std::int64_t>(at)),
                    fmt_int(curve[at].first),
                    fmt_int(static_cast<std::int64_t>(curve[at].second))});
    }
    std::printf("\ngain-vs-move curve (%zu of %zu moves sampled):\n%s", n,
                curve.size(), gain.to_ascii().c_str());
  }
  return 0;
}

int cmd_convergence(const CliParser& cli) {
  const obs::TimeSeriesDoc doc = obs::read_timeseries(cli.get("series"));
  const bool timing =
      !(cli.has("no-timing") && cli.get_bool("no-timing"));

  if (cli.has("json")) {
    std::printf("%s\n", obs::timeseries_json(doc, timing).c_str());
    return 0;
  }

  std::printf("fpart-timeseries/1: %zu samples (%llu taken, %llu dropped), "
              "capacity %zu, move interval %u\n",
              doc.samples.size(),
              static_cast<unsigned long long>(doc.total),
              static_cast<unsigned long long>(doc.dropped),
              doc.config.capacity, doc.config.move_interval);

  // Per-engine digest of the curves: how many passes, cut trajectory.
  std::map<std::string, std::pair<const obs::Sample*, const obs::Sample*>>
      span_of;  // engine -> (first, last) pass sample
  std::map<std::string, std::uint64_t> pass_count;
  for (const obs::Sample& s : doc.samples) {
    if (s.kind != obs::SampleKind::kPass) continue;
    const std::string name = obs::engine_name(s.engine);
    ++pass_count[name];
    auto& span = span_of[name];
    if (span.first == nullptr) span.first = &s;
    span.second = &s;
  }
  if (!span_of.empty()) {
    Table per_engine({"engine", "passes", "first cut", "last cut",
                      "last best", "last feasible/k"});
    for (const auto& [name, span] : span_of) {
      per_engine.add_row(
          {name, fmt_int(static_cast<std::int64_t>(pass_count[name])),
           fmt_int(static_cast<std::int64_t>(span.first->cut)),
           fmt_int(static_cast<std::int64_t>(span.second->cut)),
           fmt_int(static_cast<std::int64_t>(span.second->best)),
           fmt_int(static_cast<std::int64_t>(span.second->feasible_blocks)) +
               "/" +
               fmt_int(static_cast<std::int64_t>(span.second->blocks))});
    }
    std::printf("\n%s", per_engine.to_ascii().c_str());
  }

  const auto limit =
      static_cast<std::size_t>(cli.has("limit") ? cli.get_int("limit") : 64);
  std::vector<std::string> cols{"#",     "kind",  "engine", "pass",
                                "cut",   "best",  "feas/k", "moves",
                                "rb",    "occ"};
  if (timing) {
    cols.push_back("dt ms");
    cols.push_back("moves/s");
  }
  Table rows(cols);
  const std::size_t n = std::min(limit, doc.samples.size());
  double prev_seconds = 0.0;
  std::uint32_t prev_moves = 0;
  const obs::Sample* prev = nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    // Even spread over the series so long runs stay readable.
    const std::size_t at =
        n == doc.samples.size()
            ? i
            : i * (doc.samples.size() - 1) / std::max<std::size_t>(1, n - 1);
    const obs::Sample& s = doc.samples[at];
    std::vector<std::string> row{
        fmt_int(static_cast<std::int64_t>(at)),
        obs::sample_kind_name(s.kind),
        obs::engine_name(s.engine),
        fmt_int(static_cast<std::int64_t>(s.pass)),
        fmt_int(static_cast<std::int64_t>(s.cut)),
        fmt_int(static_cast<std::int64_t>(s.best)),
        fmt_int(static_cast<std::int64_t>(s.feasible_blocks)) + "/" +
            fmt_int(static_cast<std::int64_t>(s.blocks)),
        fmt_int(static_cast<std::int64_t>(s.moves)),
        fmt_int(static_cast<std::int64_t>(s.rolled_back)),
        fmt_int(static_cast<std::int64_t>(s.occupancy))};
    if (timing) {
      const double dt = s.seconds - prev_seconds;
      // Move throughput only makes sense within one engine pass where
      // the move counter is monotone.
      double rate = 0.0;
      if (prev != nullptr && prev->engine == s.engine &&
          prev->pass == s.pass && s.moves >= prev_moves && dt > 0.0) {
        rate = static_cast<double>(s.moves - prev_moves) / dt;
      }
      row.push_back(fmt_double(dt * 1e3, 3));
      row.push_back(rate > 0.0 ? fmt_double(rate, 0) : "-");
    }
    rows.add_row(row);
    prev_seconds = s.seconds;
    prev_moves = s.moves;
    prev = &s;
  }
  std::printf("\nconvergence samples (%zu of %zu shown):\n%s", n,
              doc.samples.size(), rows.to_ascii().c_str());
  return 0;
}

// ---------------------------------------------------------------------
// profile: per-phase hardware/heap counter rendering + flamegraph export

std::uint64_t profile_u64(const obs::JsonValue& phase, const char* key) {
  const obs::JsonValue* p = phase.find("profile");
  if (p == nullptr) return 0;
  const obs::JsonValue* v = p->find(key);
  return (v != nullptr && v->is_number()) ? v->as_u64() : 0;
}

double phase_wall(const obs::JsonValue& phase) {
  const obs::JsonValue* v = phase.find("wall_seconds");
  return (v != nullptr && v->is_number()) ? v->number : 0.0;
}

void profile_table_rows(const obs::JsonValue& phase, int depth,
                        bool have_perf, Table& t) {
  const obs::JsonValue* name = phase.find("name");
  const obs::JsonValue* count = phase.find("count");
  const std::uint64_t cycles = profile_u64(phase, "cycles");
  const std::uint64_t instr = profile_u64(phase, "instructions");
  const std::uint64_t cache_refs = profile_u64(phase, "cache_references");
  const std::uint64_t cache_miss = profile_u64(phase, "cache_misses");
  const std::uint64_t branch_miss = profile_u64(phase, "branch_misses");
  const std::uint64_t allocs = profile_u64(phase, "alloc_count");
  const std::uint64_t alloc_bytes = profile_u64(phase, "alloc_bytes");

  t.add_row(
      {std::string(static_cast<std::size_t>(depth) * 2, ' ') +
           (name != nullptr ? name->string : "?"),
       count != nullptr ? fmt_int(static_cast<std::int64_t>(count->as_u64()))
                        : "-",
       fmt_double(phase_wall(phase) * 1e3, 1),
       have_perf ? fmt_int(static_cast<std::int64_t>(cycles)) : "-",
       have_perf && cycles > 0
           ? fmt_double(static_cast<double>(instr) /
                            static_cast<double>(cycles),
                        2)
           : "-",
       have_perf && cache_refs > 0
           ? fmt_double(100.0 * static_cast<double>(cache_miss) /
                            static_cast<double>(cache_refs),
                        1) +
                 "%"
           : "-",
       have_perf ? fmt_int(static_cast<std::int64_t>(branch_miss)) : "-",
       fmt_int(static_cast<std::int64_t>(allocs)),
       fmt_double(static_cast<double>(alloc_bytes) / (1024.0 * 1024.0), 2)});
  const obs::JsonValue* children = phase.find("children");
  if (children != nullptr && children->is_array()) {
    for (const obs::JsonValue& c : children->array) {
      profile_table_rows(c, depth + 1, have_perf, t);
    }
  }
}

/// Emits one folded-stack line per phase node: "path;to;node weight",
/// weight = the node's SELF share (inclusive minus children) of cycles
/// (perf available) or wall microseconds. Flamegraph tools re-aggregate
/// inclusive weights from the paths.
void emit_folded(const obs::JsonValue& phase, const std::string& prefix,
                 bool use_cycles, std::FILE* out) {
  const obs::JsonValue* name = phase.find("name");
  const std::string path =
      prefix.empty() ? (name != nullptr ? name->string : "?")
                     : prefix + ";" + (name != nullptr ? name->string : "?");
  const std::uint64_t inclusive =
      use_cycles
          ? profile_u64(phase, "cycles")
          : static_cast<std::uint64_t>(phase_wall(phase) * 1e6);
  std::uint64_t children_sum = 0;
  const obs::JsonValue* children = phase.find("children");
  if (children != nullptr && children->is_array()) {
    for (const obs::JsonValue& c : children->array) {
      children_sum +=
          use_cycles ? profile_u64(c, "cycles")
                     : static_cast<std::uint64_t>(phase_wall(c) * 1e6);
    }
  }
  const std::uint64_t self =
      inclusive > children_sum ? inclusive - children_sum : 0;
  if (self > 0) {
    std::fprintf(out, "%s %llu\n", path.c_str(),
                 static_cast<unsigned long long>(self));
  }
  if (children != nullptr && children->is_array()) {
    for (const obs::JsonValue& c : children->array) {
      emit_folded(c, path, use_cycles, out);
    }
  }
}

/// Flattens the phase tree into path-keyed rows for machine consumers.
void profile_flat_json(const obs::JsonValue& phase, const std::string& prefix,
                       obs::JsonWriter& w) {
  const obs::JsonValue* name = phase.find("name");
  const std::string path =
      prefix.empty() ? (name != nullptr ? name->string : "?")
                     : prefix + ";" + (name != nullptr ? name->string : "?");
  w.begin_object();
  w.key("path");
  w.value(path);
  w.key("wall_seconds");
  w.value(phase_wall(phase));
  w.key("cycles");
  w.value(profile_u64(phase, "cycles"));
  w.key("instructions");
  w.value(profile_u64(phase, "instructions"));
  w.key("cache_references");
  w.value(profile_u64(phase, "cache_references"));
  w.key("cache_misses");
  w.value(profile_u64(phase, "cache_misses"));
  w.key("branch_misses");
  w.value(profile_u64(phase, "branch_misses"));
  w.key("alloc_count");
  w.value(profile_u64(phase, "alloc_count"));
  w.key("alloc_bytes");
  w.value(profile_u64(phase, "alloc_bytes"));
  w.end_object();
  const obs::JsonValue* children = phase.find("children");
  if (children != nullptr && children->is_array()) {
    for (const obs::JsonValue& c : children->array) {
      profile_flat_json(c, path, w);
    }
  }
}

int cmd_profile(const CliParser& cli) {
  const std::string path = cli.get("report");
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: fpart_inspect profile --report run.json "
                 "[--json] [--folded out.txt]\n");
    return 2;
  }
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  const auto doc = obs::json_parse(buf.str());
  if (!doc.has_value() || !doc->is_object()) {
    std::fprintf(stderr, "%s is not valid JSON\n", path.c_str());
    return 1;
  }
  const obs::JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "fpart-run-report/1") {
    std::fprintf(stderr, "%s is not a fpart-run-report/1 document\n",
                 path.c_str());
    return 1;
  }

  // Availability verdicts come from the report's own "profile" section;
  // a report without one (no --profile) still renders its wall times.
  const obs::JsonValue* profile = doc->find("profile");
  bool perf_available = false;
  if (profile != nullptr) {
    if (const obs::JsonValue* perf = profile->find("perf")) {
      if (const obs::JsonValue* a = perf->find("available")) {
        perf_available = a->is_bool() && a->boolean;
      }
    }
  }
  const obs::JsonValue* phases = doc->find("phases");

  if (cli.has("json")) {
    // Machine consumers get the profile-relevant slice: availability
    // verdicts plus the phase tree flattened to path-keyed rows.
    obs::JsonWriter w;
    w.begin_object();
    w.key("source");
    w.value(path);
    w.key("profiled");
    w.value(profile != nullptr);
    w.key("perf_available");
    w.value(perf_available);
    w.key("phases");
    w.begin_array();
    if (phases != nullptr && phases->is_array()) {
      for (const obs::JsonValue& top : phases->array) {
        profile_flat_json(top, "", w);
      }
    }
    w.end_array();
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    if (profile == nullptr) {
      std::printf(
          "no \"profile\" section in %s (run fpart_cli with --profile); "
          "showing wall times only\n",
          path.c_str());
    } else if (!perf_available) {
      std::string reason;
      if (const obs::JsonValue* perf = profile->find("perf")) {
        if (const obs::JsonValue* r = perf->find("reason")) {
          reason = r->string;
        }
      }
      std::printf("hardware counters: available=false%s%s\n",
                  reason.empty() ? "" : " — ", reason.c_str());
    }
    Table t({"phase", "count", "wall ms", "cycles", "IPC", "cache miss",
             "br miss", "allocs", "alloc MiB"});
    if (phases != nullptr && phases->is_array()) {
      for (const obs::JsonValue& top : phases->array) {
        profile_table_rows(top, 0, perf_available, t);
      }
    }
    std::printf("%s", t.to_ascii().c_str());
    if (profile != nullptr) {
      const obs::JsonValue* heap = profile->find("heap");
      const bool heap_avail =
          heap != nullptr && heap->find("available") != nullptr &&
          heap->find("available")->boolean;
      const obs::JsonValue* rss = profile->find("peak_rss_bytes");
      std::printf(
          "heap: %s, peak_rss=%.1f MiB\n",
          heap_avail ? "counting allocator linked" : "available=false",
          rss != nullptr ? rss->number / (1024.0 * 1024.0) : 0.0);
    }
  }

  if (cli.has("folded")) {
    std::FILE* out = std::fopen(cli.get("folded").c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", cli.get("folded").c_str());
      return 1;
    }
    if (phases != nullptr && phases->is_array()) {
      for (const obs::JsonValue& top : phases->array) {
        emit_folded(top, "", perf_available, out);
      }
    }
    std::fclose(out);
    std::printf("folded stacks written to %s (weight = %s)\n",
                cli.get("folded").c_str(),
                perf_available ? "cycles" : "wall microseconds");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("events", "fpart-events/1 JSONL log path", "");
  cli.add_flag("series", "fpart-timeseries/1 JSON path (convergence)", "");
  cli.add_flag("in", "input .hgr circuit (replay)", "");
  cli.add_flag("json", "machine-readable JSON output", "");
  cli.add_flag("curve", "gain-curve sample points (summary)", "16");
  cli.add_flag("limit", "max sample rows shown (convergence)", "64");
  cli.add_flag("report", "fpart-run-report/1 JSON path (profile)", "");
  cli.add_flag("folded", "write folded flamegraph stacks (profile)", "");
  cli.add_switch("no-timing",
                 "drop non-deterministic timing columns (convergence)");
  if (!cli.parse(argc, argv) || cli.positional().empty()) {
    std::fprintf(stderr,
                 "usage: fpart_inspect "
                 "<replay|diff|summary|convergence|profile>"
                 " [flags]\n"
                 "  replay      --events run.jsonl --in circuit.hgr [--json]\n"
                 "  diff        a.jsonl b.jsonl\n"
                 "  summary     --events run.jsonl [--json] [--curve N]\n"
                 "  convergence --series ts.json [--json] [--no-timing]"
                 " [--limit N]\n"
                 "  profile     --report run.json [--json]"
                 " [--folded out.txt]\n%s%s",
                 cli.error().empty() ? "" : (cli.error() + "\n").c_str(),
                 cli.usage("fpart_inspect").c_str());
    return 2;
  }

  const std::string& command = cli.positional()[0];
  try {
    if (command == "replay") return cmd_replay(cli);
    if (command == "diff") {
      if (cli.positional().size() != 3) {
        std::fprintf(stderr, "usage: fpart_inspect diff a.jsonl b.jsonl\n");
        return 2;
      }
      return cmd_diff(cli.positional()[1], cli.positional()[2]);
    }
    if (command == "summary") return cmd_summary(cli);
    if (command == "convergence") return cmd_convergence(cli);
    if (command == "profile") return cmd_profile(cli);
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
