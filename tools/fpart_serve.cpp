// fpart_serve — long-lived partition-as-a-service daemon.
//
//   fpart_serve --socket /tmp/fpart.sock [--tcp PORT] [--threads N]
//               [--cache N] [--quota N] [--spool DIR]
//
// Accepts newline-delimited fpart-serve-request/1 lines (the
// fpart-batch/1 job dialect plus priority/client fields) over a
// Unix-domain socket and/or a loopback TCP port, schedules admitted
// jobs on a shared thread pool by (priority, admission order), and
// answers every line with one fpart-serve-response/1 line. Identical
// jobs — same circuit structure, device, canonical options and seed —
// are answered from a content-addressed result cache without recompute
// (see docs/SERVING.md). --tcp 0 binds an ephemeral port and prints the
// real one on the ready line.
//
// The process runs until a client sends {"cmd":"shutdown"}; the ready
// line ("fpart_serve: listening ...") is printed to stdout once both
// endpoints are bound, so scripts can synchronize on it.
#include <cstdio>
#include <filesystem>
#include <string>

#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

int run(int argc, const char* const* argv) {
  fpart::CliParser cli;
  cli.add_flag("socket", "unix-domain socket path to listen on", "");
  cli.add_flag("tcp", "loopback TCP port (-1 = off, 0 = ephemeral)", "-1");
  cli.add_flag("threads", "pool workers (0 = hardware default)", "0");
  cli.add_flag("cache", "result-cache capacity in entries (0 = off)", "256");
  cli.add_flag("quota", "max in-flight jobs per client (0 = unlimited)",
               "64");
  cli.add_flag("spool",
               "directory for event logs + run reports (created; empty = "
               "no artifacts)",
               "");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "fpart_serve: %s\n%s", cli.error().c_str(),
                 cli.usage("fpart_serve").c_str());
    return 2;
  }

  fpart::serve::ServerConfig config;
  config.threads = static_cast<unsigned>(cli.get_int("threads"));
  config.cache_capacity = static_cast<std::size_t>(cli.get_int("cache"));
  config.quota = static_cast<std::uint32_t>(cli.get_int("quota"));
  config.spool_dir = cli.get("spool");
  if (!config.spool_dir.empty()) {
    std::filesystem::create_directories(config.spool_dir);
  }

  fpart::serve::Server server(config);
  fpart::serve::SocketListener::Endpoints endpoints;
  endpoints.unix_path = cli.get("socket");
  endpoints.tcp_port = static_cast<int>(cli.get_int("tcp"));
  fpart::serve::SocketListener listener(server, endpoints);

  std::printf("fpart_serve: listening unix=%s tcp=%d\n",
              endpoints.unix_path.empty() ? "-"
                                          : endpoints.unix_path.c_str(),
              listener.tcp_port());
  std::fflush(stdout);

  listener.serve_forever();

  const fpart::serve::ServeStatsSnapshot s = server.snapshot();
  std::printf("fpart_serve: shutdown after %llu requests, %llu jobs "
              "(%llu cache hits / %llu misses)\n",
              static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.jobs_completed),
              static_cast<unsigned long long>(s.cache_hits),
              static_cast<unsigned long long>(s.cache_misses));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const fpart::Error& e) {
    std::fprintf(stderr, "fpart_serve: %s error: %s\n", e.kind(), e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fpart_serve: error: %s\n", e.what());
    return 1;
  }
}
