// Shared driver for the table-reproduction bench binaries.
//
// Each bench binary regenerates one table of the paper: it runs the
// measured methods (our k-way.x, FBB-MW and FPART implementations) on
// the synthetic MCNC suite and prints the paper's published numbers
// alongside. Measured columns are marked with '*'; published reference
// columns cite the paper. Absolute agreement is not expected (the
// netlists are synthetic stand-ins, see DESIGN.md) — the comparison
// shows the SHAPE: who wins, by how much, and how close to the lower
// bound M each method lands.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "core/result.hpp"
#include "device/device.hpp"
#include "netlist/mcnc.hpp"
#include "report/run_report.hpp"

namespace fpart::bench {

struct MethodRuns {
  PartitionResult kwayx;
  PartitionResult fbb;
  PartitionResult fpart;
  std::uint32_t m = 0;
};

/// Runs all three measured methods on one circuit/device pair.
MethodRuns run_methods(const mcnc::CircuitSpec& spec, const Device& device,
                       std::uint64_t seed_salt = 0);

/// Runs FPART only (Table 6 and the ablations).
PartitionResult run_fpart(const mcnc::CircuitSpec& spec, const Device& device,
                          std::uint64_t seed_salt = 0);

/// Standard bench banner: what the binary reproduces and the caveat
/// about synthetic workloads.
void print_banner(const std::string& table_name,
                  const std::string& description);

/// Collects per-run records and writes one fpart-bench/1 JSON file —
/// the BENCH_*.json trajectory format perf PRs are judged against.
///
/// Construction with a non-null path enables stat collection and resets
/// the registry/phase tree so the file reflects exactly this bench
/// invocation; destruction writes the file. A null path makes every
/// method a no-op, so call sites stay unconditional.
class BenchJson {
 public:
  BenchJson(std::string bench_name, const char* path);
  ~BenchJson();
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  bool enabled() const { return !path_.empty(); }
  void add(const std::string& circuit, const Device& device,
           const std::string& method, const PartitionResult& r);

 private:
  std::string bench_name_;
  std::string path_;
  std::vector<RunRecord> records_;
};

/// One published (paper-quoted) column of a results table. Values align
/// with the circuit list; nullopt renders as "-" (not reported).
struct PublishedColumn {
  std::string name;
  std::vector<std::optional<int>> values;
};

/// Runs the three measured methods over `circuits` on `device`, prints
/// the paper's published columns next to the measured ones plus the
/// lower bound M, and a totals row. When `csv_path` is non-null the
/// table is also written there as CSV (the table benches pass their
/// first command-line argument through). Returns the measured runs (one
/// per circuit) so callers can post-process.
std::vector<MethodRuns> run_and_print_suite(
    const Device& device, std::span<const mcnc::CircuitSpec> circuits,
    std::span<const PublishedColumn> published,
    const char* csv_path = nullptr, const char* json_path = nullptr,
    const char* bench_name = "suite");

/// One FPART configuration variant for an ablation study.
struct AblationVariant {
  std::string name;
  Options options;
};

/// One circuit/device pair an ablation runs on.
struct AblationCase {
  std::string circuit;
  Device device;
};

/// The default ablation workload: a spread of sizes and devices chosen
/// so every schedule branch (small-M all-blocks pass, large-M pairwise
/// strategy, final sweep) is exercised.
std::vector<AblationCase> default_ablation_cases();

/// Runs every variant on every case and prints one k column per variant
/// plus M and per-variant totals and total runtime.
void run_and_print_ablation(std::span<const AblationVariant> variants,
                            std::span<const AblationCase> cases,
                            const char* json_path = nullptr,
                            const char* bench_name = "ablation");

}  // namespace fpart::bench
