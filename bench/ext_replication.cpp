// Extension bench: post-partitioning logic replication (the r+p/PROP
// technique the paper positions FPART against). Measures how many I/O
// pins replication reclaims on finished FPART partitions, and whether
// the freed pins let the block-merge pass reduce the device count.
#include <cstdio>
#include <vector>

#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "harness.hpp"
#include "partition/partition.hpp"
#include "replication/merge.hpp"
#include "replication/replicate.hpp"
#include "report/table.hpp"

using namespace fpart;

int main() {
  bench::print_banner("Extension: replication",
                      "Pin reclamation by driver replication on FPART "
                      "results (structural driver = first net pin)");

  struct Case {
    const char* circuit;
    Device device;
  };
  const std::vector<Case> cases = {
      {"c3540", xilinx::xc3020()},  {"c6288", xilinx::xc3020()},
      {"s9234", xilinx::xc3020()},  {"s13207", xilinx::xc3042()},
      {"s15850", xilinx::xc3042()}, {"s38417", xilinx::xc3090()},
  };

  Table table({"Circuit", "Device", "k*", "pins before*", "pins after*",
               "saved %", "replicas*", "k after merge*"});
  for (const auto& c : cases) {
    const Hypergraph h = mcnc::generate(c.circuit, c.device.family());
    const PartitionResult base = FpartPartitioner().run(h, c.device);
    const ReplicationResult rep =
        replicate_for_pins(h, c.device, base.assignment, base.k);

    Partition p(h, base.assignment, base.k);
    const MergeStats merged = merge_feasible_blocks(p, c.device);

    const double saved =
        rep.pins_before == 0
            ? 0.0
            : 100.0 *
                  static_cast<double>(rep.pins_before - rep.pins_after) /
                  static_cast<double>(rep.pins_before);
    table.add_row({c.circuit, c.device.name(), fmt_int(base.k),
                   fmt_int(static_cast<std::int64_t>(rep.pins_before)),
                   fmt_int(static_cast<std::int64_t>(rep.pins_after)),
                   fmt_double(saved, 1), fmt_int(rep.replicas),
                   fmt_int(merged.k_after)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nReading: replication reclaims cut pins without moving logic — "
      "the mechanism r+p.0/PROP exploit. FPART already packs blocks near "
      "their pin budgets, so the merge pass rarely recovers whole "
      "devices, matching the paper's premise that careful iterative "
      "improvement narrows the replication advantage.\n");
  return 0;
}
