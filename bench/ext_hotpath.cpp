// Extension bench: hot-path throughput of the flat pin-count arena.
//
// Two measurements per circuit, both dominated by the structures this
// repo's inner loops live in:
//
//   * churn — raw Partition::move() rate (moves/second) and
//     move_gain() rate (gain evals/second) over a precomputed random
//     move sequence, i.e. the cost of the fused Φ-update kernel with
//     no engine logic around it;
//   * end-to-end — one canonical FPART run (seed 0) with wall time,
//     plus the same run through the solve() facade. The two assignment
//     digests must match: the facade and the arena layout are required
//     to be observably invisible, and the binary exits non-zero if not
//     (CI runs this as the perf-smoke + digest cross-check).
//
// Writes BENCH_hotpath.json (fpart-hotpath-bench/1); argv[1] overrides
// the path, argv[2] == "small" restricts to the smallest circuit (the
// CI perf-smoke configuration).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/fpart.hpp"
#include "core/solve.hpp"
#include "device/xilinx.hpp"
#include "fm/gains.hpp"
#include "harness.hpp"
#include "netlist/mcnc.hpp"
#include "obs/json.hpp"
#include "obs/provenance.hpp"
#include "partition/partition.hpp"
#include "partition/replay.hpp"
#include "report/table.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace fpart;

namespace {

constexpr const char* kSchema = "fpart-hotpath-bench/1";
constexpr std::uint32_t kChurnBlocks = 4;
constexpr std::size_t kChurnMoves = 2'000'000;

struct HotpathRecord {
  std::string circuit;
  std::string device;
  std::size_t nodes = 0;
  std::size_t nets = 0;
  std::size_t pins = 0;
  double moves_per_second = 0.0;
  double gain_evals_per_second = 0.0;
  std::uint32_t k = 0;
  std::uint32_t lower_bound = 0;
  std::uint64_t cut = 0;
  double e2e_seconds = 0.0;
  std::uint64_t digest_direct = 0;
  std::uint64_t digest_solve = 0;
  bool digests_agree = true;
};

/// Random interior-node move sequence, fixed seed so every invocation
/// (and every layout under test) churns the same trajectory.
std::vector<std::pair<NodeId, BlockId>> make_moves(const Hypergraph& h) {
  std::vector<NodeId> cells;
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) cells.push_back(v);
  }
  Rng rng(0x40709);
  std::vector<std::pair<NodeId, BlockId>> moves;
  moves.reserve(kChurnMoves);
  for (std::size_t i = 0; i < kChurnMoves; ++i) {
    moves.emplace_back(rng.pick(cells),
                       static_cast<BlockId>(rng.index(kChurnBlocks)));
  }
  return moves;
}

HotpathRecord run_circuit(const char* circuit, const Device& device) {
  const Hypergraph h = mcnc::generate(circuit, device.family());
  HotpathRecord rec;
  rec.circuit = circuit;
  rec.device = device.name();
  rec.nodes = h.num_nodes();
  rec.nets = h.num_nets();
  rec.pins = h.num_pins();

  const auto moves = make_moves(h);
  Partition p(h, kChurnBlocks);

  // Warm-up pass populates caches and settles the arena.
  for (std::size_t i = 0; i < moves.size() / 8; ++i) {
    p.move(moves[i].first, moves[i].second);
  }

  {
    Timer t;
    for (const auto& [v, to] : moves) p.move(v, to);
    rec.moves_per_second =
        static_cast<double>(moves.size()) / t.elapsed_seconds();
  }
  {
    long long sink = 0;
    Timer t;
    for (const auto& [v, to] : moves) sink += move_gain(p, v, to);
    rec.gain_evals_per_second =
        static_cast<double>(moves.size()) / t.elapsed_seconds();
    if (sink == 0x7fffffffffffffff) std::puts("");  // keep sink live
  }
  p.check_consistency();

  const Options opt;  // canonical deterministic run, seed 0
  {
    Timer t;
    const PartitionResult direct = FpartPartitioner(opt).run(h, device);
    rec.e2e_seconds = t.elapsed_seconds();
    rec.k = direct.k;
    rec.lower_bound = direct.lower_bound;
    rec.cut = direct.cut;
    rec.digest_direct = assignment_digest(direct.assignment);
  }
  {
    SolveRequest req;
    req.options = opt;
    const PartitionResult unified = solve(h, device, req);
    rec.digest_solve = assignment_digest(unified.assignment);
  }
  rec.digests_agree = rec.digest_direct == rec.digest_solve;
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner(
      "Extension: hot-path throughput (flat pin-count arena)",
      "Partition::move / move_gain churn rate plus a canonical FPART "
      "run; assignment digest must agree between the direct engine and "
      "the solve() facade");

  const bool small = argc > 2 && std::strcmp(argv[2], "small") == 0;
  const Device device = xilinx::xc3042();
  std::vector<const char*> circuits = {"c3540"};
  if (!small) {
    circuits.push_back("s9234");
    circuits.push_back("s13207");
  }

  std::vector<HotpathRecord> records;
  Table table({"Circuit", "Device", "Mmoves/s*", "Mgains/s*", "k*", "M",
               "cut*", "t(s)*", "digest ok"});
  for (const char* circuit : circuits) {
    HotpathRecord rec = run_circuit(circuit, device);
    table.add_row({rec.circuit, rec.device,
                   fmt_double(rec.moves_per_second / 1e6, 2),
                   fmt_double(rec.gain_evals_per_second / 1e6, 2),
                   fmt_int(rec.k), fmt_int(rec.lower_bound),
                   fmt_int(static_cast<int>(rec.cut)),
                   fmt_double(rec.e2e_seconds, 2),
                   rec.digests_agree ? "yes" : "NO"});
    records.push_back(std::move(rec));
  }
  std::fputs(table.to_ascii().c_str(), stdout);

  const std::string path =
      argc > 1 ? argv[1] : std::string("BENCH_hotpath.json");
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kSchema);
  w.key("provenance");
  obs::write_provenance(w);
  w.key("bench");
  w.value("ext_hotpath");
  w.key("churn_blocks");
  w.value(kChurnBlocks);
  w.key("churn_moves");
  w.value(static_cast<std::uint64_t>(kChurnMoves));
  w.key("records");
  w.begin_array();
  bool all_agree = true;
  for (const HotpathRecord& rec : records) {
    w.begin_object();
    w.key("circuit");
    w.value(rec.circuit);
    w.key("device");
    w.value(rec.device);
    w.key("nodes");
    w.value(static_cast<std::uint64_t>(rec.nodes));
    w.key("nets");
    w.value(static_cast<std::uint64_t>(rec.nets));
    w.key("pins");
    w.value(static_cast<std::uint64_t>(rec.pins));
    w.key("moves_per_second");
    w.value(rec.moves_per_second);
    w.key("gain_evals_per_second");
    w.value(rec.gain_evals_per_second);
    w.key("k");
    w.value(rec.k);
    w.key("lower_bound");
    w.value(rec.lower_bound);
    w.key("cut");
    w.value(rec.cut);
    w.key("end_to_end_seconds");
    w.value(rec.e2e_seconds);
    w.key("digest_direct");
    w.value(rec.digest_direct);
    w.key("digest_solve");
    w.value(rec.digest_solve);
    w.key("digests_agree");
    w.value(rec.digests_agree);
    w.end_object();
    all_agree = all_agree && rec.digests_agree;
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen(path.c_str(), "w");
  FPART_REQUIRE(f != nullptr, "cannot write " + path);
  const std::string body = w.take();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());

  return all_agree ? 0 : 1;
}
