// Extension bench: parallel portfolio scaling (supplemental — the paper
// predates commodity SMP). Races an 8-attempt FPART portfolio per
// circuit at 1, 2 and 4 worker threads and reports wall-clock speedup
// plus the determinism cross-check (the outcome digest must be
// identical at every thread count).
//
// early_exit is off so every attempt runs to completion — the bench
// measures raw fan-out scaling, not how fast the bound is hit. Speedup
// is bounded by the machine: on an N-core box the 4-thread column can
// approach min(4, N)x; the JSON records hardware_concurrency so the
// number is interpretable. Writes BENCH_parallel.json
// (fpart-parallel-bench/1) by default; argv[1] overrides the path.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "device/xilinx.hpp"
#include "harness.hpp"
#include "netlist/mcnc.hpp"
#include "obs/json.hpp"
#include "obs/provenance.hpp"
#include "report/table.hpp"
#include "runtime/portfolio.hpp"
#include "util/assert.hpp"

using namespace fpart;

namespace {

constexpr const char* kSchema = "fpart-parallel-bench/1";
constexpr std::uint32_t kAttempts = 8;
const std::vector<unsigned> kThreadCounts = {1, 2, 4};

struct CircuitRun {
  std::string circuit;
  std::string device;
  std::uint32_t k = 0;
  std::uint32_t m = 0;
  std::uint64_t cut = 0;
  std::uint64_t digest = 0;
  bool digests_agree = true;
  std::vector<double> seconds;  // aligned with kThreadCounts
};

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner(
      "Extension: parallel portfolio scaling",
      "8-attempt FPART portfolio at 1/2/4 threads; identical outcome "
      "digest required at every thread count");

  // On a single-core host the 1/2/4-thread timings all measure the same
  // serialized schedule — any "speedup" is scheduler noise (typically a
  // misleading ~1.05x), so the numbers are published but flagged
  // invalid and the recorded gate is digest equality alone.
  const unsigned hw = std::thread::hardware_concurrency();
  const bool speedup_valid = hw > 1;

  struct Case {
    const char* circuit;
    Device device;
  };
  const std::vector<Case> cases = {
      {"s9234", xilinx::xc3020()},
      {"c6288", xilinx::xc3020()},
      {"s13207", xilinx::xc3020()},
  };

  std::vector<CircuitRun> runs;
  Table table({"Circuit", "Device", "k*", "M", "t(1)*", "t(2)*", "t(4)*",
               "speedup(4)*", "digest ok"});
  for (const Case& c : cases) {
    const Hypergraph h = mcnc::generate(c.circuit, c.device.family());
    CircuitRun run;
    run.circuit = c.circuit;
    run.device = c.device.name();
    for (const unsigned threads : kThreadCounts) {
      runtime::PortfolioOptions opt;
      opt.attempts = kAttempts;
      opt.threads = threads;
      opt.early_exit = false;
      const runtime::PortfolioResult pr =
          runtime::run_portfolio(h, c.device, opt);
      run.seconds.push_back(pr.seconds);
      if (threads == kThreadCounts.front()) {
        run.k = pr.best.k;
        run.m = pr.best.lower_bound;
        run.cut = pr.best.cut;
        run.digest = pr.digest;
      } else if (pr.digest != run.digest) {
        run.digests_agree = false;
      }
    }
    const double speedup4 = run.seconds.front() / run.seconds.back();
    table.add_row({run.circuit, run.device, fmt_int(run.k),
                   fmt_int(run.m), fmt_double(run.seconds[0], 2),
                   fmt_double(run.seconds[1], 2),
                   fmt_double(run.seconds[2], 2),
                   speedup_valid ? fmt_double(speedup4, 2)
                                 : std::string("n/a"),
                   run.digests_agree ? "yes" : "NO"});
    runs.push_back(std::move(run));
  }
  std::fputs(table.to_ascii().c_str(), stdout);

  const std::string path =
      argc > 1 ? argv[1] : std::string("BENCH_parallel.json");
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kSchema);
  w.key("provenance");
  obs::write_provenance(w);
  w.key("bench");
  w.value("ext_parallel");
  w.key("attempts");
  w.value(kAttempts);
  w.key("threads");
  w.begin_array();
  for (const unsigned t : kThreadCounts) {
    w.value(static_cast<std::uint64_t>(t));
  }
  w.end_array();
  w.key("hardware_concurrency");
  w.value(static_cast<std::uint64_t>(hw));
  w.key("speedup_valid");
  w.value(speedup_valid);
  // What downstream comparisons may gate on: speedups only when they
  // measured real parallel hardware, digest equality always.
  w.key("gate");
  w.value(speedup_valid ? "speedup+digest" : "digest");
  w.key("records");
  w.begin_array();
  bool all_agree = true;
  for (const CircuitRun& run : runs) {
    w.begin_object();
    w.key("circuit");
    w.value(run.circuit);
    w.key("device");
    w.value(run.device);
    w.key("k");
    w.value(run.k);
    w.key("lower_bound");
    w.value(run.m);
    w.key("cut");
    w.value(run.cut);
    w.key("digest");
    w.value(run.digest);
    w.key("digests_agree");
    w.value(run.digests_agree);
    w.key("seconds");
    w.begin_array();
    for (const double s : run.seconds) w.value(s);
    w.end_array();
    w.key("speedup_4_threads");
    w.value(run.seconds.front() / run.seconds.back());
    w.key("speedup_valid");
    w.value(speedup_valid);
    w.end_object();
    all_agree = all_agree && run.digests_agree;
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen(path.c_str(), "w");
  FPART_REQUIRE(f != nullptr, "cannot write " + path);
  const std::string body = w.take();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());

  // Determinism is a hard requirement; scaling is machine-dependent.
  return all_agree ? 0 : 1;
}
