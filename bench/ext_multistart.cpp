// Extension bench: multistart FPART ("number of runs", §1's list of
// classical FM parameters). Measures whether randomized constructive
// seeds buy devices on the cases where the canonical run sits above the
// lower bound.
#include <cstdio>
#include <vector>

#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "harness.hpp"
#include "report/table.hpp"

using namespace fpart;

int main() {
  bench::print_banner("Extension: multistart",
                      "Randomized-seed restarts vs the canonical "
                      "deterministic run");

  struct Case {
    const char* circuit;
    Device device;
  };
  const std::vector<Case> cases = {
      {"c6288", xilinx::xc3020()},  {"s13207", xilinx::xc3020()},
      {"s38417", xilinx::xc3020()}, {"s38584", xilinx::xc3020()},
  };

  Table table({"Circuit", "Device", "1 start*", "4 starts*", "8 starts*",
               "M", "time 8*"});
  for (const auto& c : cases) {
    const Hypergraph h = mcnc::generate(c.circuit, c.device.family());
    const PartitionResult one = run_fpart_multistart(h, c.device, {}, 1);
    const PartitionResult four = run_fpart_multistart(h, c.device, {}, 4);
    const PartitionResult eight = run_fpart_multistart(h, c.device, {}, 8);
    table.add_row({c.circuit, c.device.name(), fmt_int(one.k),
                   fmt_int(four.k), fmt_int(eight.k),
                   fmt_int(one.lower_bound),
                   fmt_double(eight.seconds, 2)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  return 0;
}
