// Extension bench: technology-mapping flow statistics — the "Map to
// XC2000 / XC3000 families" preparation step of the paper's Table 1,
// measured on gate netlists of growing size. The key shape: XC3000
// (K=5) CLB counts consistently below XC2000 (K=4), as in Table 1 where
// every circuit needs fewer XC3000 CLBs.
#include <cstdio>

#include "harness.hpp"
#include "report/table.hpp"
#include "techmap/clb_pack.hpp"
#include "techmap/random_logic.hpp"

using namespace fpart;
using namespace fpart::techmap;

int main() {
  bench::print_banner("Extension: technology mapping",
                      "Gate netlists -> K-LUTs -> CLBs per family");

  Table table({"gates", "DFFs", "CLBs 2000 (K=4)", "CLBs 3000 (K=5)",
               "ratio", "packed FFs 3000", "pads"});
  for (std::uint32_t gates : {500u, 1000u, 2000u, 4000u, 8000u}) {
    LogicConfig config;
    config.num_gates = gates;
    config.num_inputs = 24 + gates / 100;
    config.num_outputs = 16 + gates / 150;
    config.num_dffs = gates / 12;
    config.seed = 1000 + gates;
    const GateNetlist n = random_logic(config);
    const MappedCircuit m2 = map_to_family(n, Family::kXC2000);
    const MappedCircuit m3 = map_to_family(n, Family::kXC3000);
    table.add_row(
        {fmt_int(gates), fmt_int(config.num_dffs), fmt_int(m2.num_clbs),
         fmt_int(m3.num_clbs),
         fmt_double(static_cast<double>(m3.num_clbs) /
                        static_cast<double>(m2.num_clbs),
                    3),
         fmt_int(m3.num_packed_ffs),
         fmt_int(static_cast<std::int64_t>(m3.circuit.num_terminals()))});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nTable 1 reference ratios (#CLBs XC3000 / XC2000): c3540 0.76, "
      "c7552 0.80, s9234 0.80, s38584 0.73 (c6288 1.00 — multiplier "
      "structure maps identically).\n");
  return 0;
}
