// Extension bench: the paper's §5 future-work proposals, measured.
//
//   pin-gain    — drive the FM/Sanchis buckets by the real I/O pin gain
//                 instead of the cut-net gain;
//   early-stop  — abort passes that drift away from the feasible region
//                 (24 consecutive non-improving moves);
//   both        — the two combined.
#include <vector>

#include "harness.hpp"

using namespace fpart;
using bench::AblationVariant;

int main() {
  bench::print_banner("Extension: §5 future work",
                      "Pin-count gains and infeasible-region early stop "
                      "(the two directions the paper proposes)");

  Options baseline;
  Options pin_gain;
  pin_gain.refiner.gain_mode = GainMode::kPinCount;
  Options early_stop;
  early_stop.refiner.infeasible_stop_window = 24;
  Options both;
  both.refiner.gain_mode = GainMode::kPinCount;
  both.refiner.infeasible_stop_window = 24;

  const std::vector<AblationVariant> variants = {
      {"cut-gain", baseline},
      {"pin-gain", pin_gain},
      {"early-stop", early_stop},
      {"both", both},
  };
  const auto cases = bench::default_ablation_cases();
  bench::run_and_print_ablation(variants, cases);
  return 0;
}
