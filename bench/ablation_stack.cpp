// Ablation: solution-stack depth D_stack (paper §3.6).
//
// D_stack = 0 disables the restart phase entirely (pure first-series
// FM); the paper uses 4, giving at most 2·D_stack+1 = 9 starting points
// per Improve() call.
#include <vector>

#include "harness.hpp"

using namespace fpart;
using bench::AblationVariant;

int main(int argc, char** argv) {
  bench::print_banner("Ablation: solution stacks",
                      "Effect of the §3.6 stack depth D_stack on the "
                      "device count and runtime");

  std::vector<AblationVariant> variants;
  for (std::size_t depth : {0u, 2u, 4u, 8u}) {
    Options opt;
    opt.refiner.stack_depth = depth;
    variants.push_back({"D=" + std::to_string(depth), opt});
  }
  const auto cases = bench::default_ablation_cases();
  bench::run_and_print_ablation(variants, cases,
                                argc > 1 ? argv[1] : nullptr,
                                "ablation_stack");
  return 0;
}
