// Ablation: the §3.1 improvement schedule.
//
// Variants:
//   full       — all Algorithm-1 Improve() calls
//   pair-only  — only Improve(R_k, P_k) (the k-way.x-style pairwise
//                improvement FPART generalizes)
//   no-all     — all-blocks pass off
//   no-min     — P_MIN_size / P_MIN_IO / P_MIN_F passes off
//   no-sweep   — final k = M pairwise sweep off
#include <vector>

#include "harness.hpp"

using namespace fpart;
using bench::AblationVariant;

int main(int argc, char** argv) {
  bench::print_banner("Ablation: improvement schedule",
                      "Contribution of each §3.1 improvement pass");

  Options full;
  Options pair_only;
  pair_only.schedule.all_blocks = false;
  pair_only.schedule.min_blocks = false;
  pair_only.schedule.final_sweep = false;
  Options no_all;
  no_all.schedule.all_blocks = false;
  Options no_min;
  no_min.schedule.min_blocks = false;
  Options no_sweep;
  no_sweep.schedule.final_sweep = false;

  const std::vector<AblationVariant> variants = {
      {"full", full},         {"pair-only", pair_only},
      {"no-all", no_all},     {"no-min", no_min},
      {"no-sweep", no_sweep},
  };
  const auto cases = bench::default_ablation_cases();
  bench::run_and_print_ablation(variants, cases,
                                argc > 1 ? argv[1] : nullptr,
                                "ablation_schedule");
  return 0;
}
