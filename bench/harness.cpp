#include "harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>

#include "baselines/kwayx.hpp"
#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "flow/fbb.hpp"
#include "obs/phase.hpp"
#include "obs/recorder.hpp"
#include "obs/stats.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "util/assert.hpp"

namespace fpart::bench {

namespace {

// FPART_EVENTS=<prefix> arms the flight recorder for every FPART run the
// harness performs and writes one fpart-events/1 log per run to
// <prefix><tag>.events.jsonl (the recorder holds a single run at a
// time). Combine with FPART_AUDIT=1 — honored globally by
// partition/audit.cpp — to cross-check invariants while recording.
const char* events_prefix() {
  static const char* prefix = std::getenv("FPART_EVENTS");
  return prefix;
}

PartitionResult run_fpart_maybe_recorded(const Hypergraph& h,
                                         const Device& device,
                                         const Options& opt,
                                         const std::string& tag) {
  const char* prefix = events_prefix();
  if (prefix == nullptr) return FpartPartitioner(opt).run(h, device);
  obs::Recorder::instance().start(
      make_event_log_header(h, device, opt, "fpart"));
  PartitionResult r = FpartPartitioner(opt).run(h, device);
  obs::Recorder::instance().stop();
  const std::string path = std::string(prefix) + tag + ".events.jsonl";
  try {
    obs::Recorder::instance().write_jsonl(path);
    std::printf("event log written to %s (%llu events)\n", path.c_str(),
                static_cast<unsigned long long>(
                    obs::Recorder::instance().event_count()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "event log write failed: %s\n", e.what());
  }
  obs::Recorder::instance().reset();
  return r;
}

}  // namespace

MethodRuns run_methods(const mcnc::CircuitSpec& spec, const Device& device,
                       std::uint64_t seed_salt) {
  const Hypergraph h = mcnc::generate(spec, device.family(), seed_salt);
  MethodRuns out;
  out.kwayx = KwayxPartitioner().run(h, device);
  out.fbb = FbbPartitioner().run(h, device);
  out.fpart = run_fpart_maybe_recorded(
      h, device, Options{}, std::string(spec.name) + "-" + device.name());
  out.m = out.fpart.lower_bound;
  return out;
}

PartitionResult run_fpart(const mcnc::CircuitSpec& spec, const Device& device,
                          std::uint64_t seed_salt) {
  const Hypergraph h = mcnc::generate(spec, device.family(), seed_salt);
  return run_fpart_maybe_recorded(
      h, device, Options{}, std::string(spec.name) + "-" + device.name());
}

BenchJson::BenchJson(std::string bench_name, const char* path)
    : bench_name_(std::move(bench_name)), path_(path ? path : "") {
  if (!enabled()) return;
  obs::StatsRegistry::instance().reset();
  obs::PhaseForest::instance().reset();
  obs::set_stats_enabled(true);
}

BenchJson::~BenchJson() {
  if (!enabled()) return;
  try {
    write_bench_report_file(path_, bench_name_, records_);
    std::printf("bench JSON written to %s\n", path_.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench JSON write failed: %s\n", e.what());
  }
}

void BenchJson::add(const std::string& circuit, const Device& device,
                    const std::string& method, const PartitionResult& r) {
  if (!enabled()) return;
  RunRecord rec;
  rec.meta.circuit = circuit;
  rec.meta.device = device.name();
  rec.meta.method = method;
  rec.result = r;
  rec.result.assignment.clear();  // never serialized; drop the bulk
  records_.push_back(std::move(rec));
}

void print_banner(const std::string& table_name,
                  const std::string& description) {
  std::printf("=== %s ===\n%s\n", table_name.c_str(), description.c_str());
  std::printf(
      "Workload: synthetic MCNC Partitioning93 stand-ins (Table 1 totals "
      "exact; see DESIGN.md).\n"
      "Columns marked '*' are measured by this build; unmarked columns "
      "quote the paper.\n\n");
}

std::vector<MethodRuns> run_and_print_suite(
    const Device& device, std::span<const mcnc::CircuitSpec> circuits,
    std::span<const PublishedColumn> published, const char* csv_path,
    const char* json_path, const char* bench_name) {
  BenchJson json(bench_name, json_path);
  for (const auto& col : published) {
    FPART_REQUIRE(col.values.size() == circuits.size(),
                  "published column size mismatch: " + col.name);
  }

  std::vector<std::string> headers{"Circuit"};
  for (const auto& col : published) headers.push_back(col.name);
  headers.insert(headers.end(),
                 {"k-way.x*", "FBB-MW*", "FPART*", "M"});
  Table table(std::move(headers));

  std::vector<MethodRuns> runs;
  std::vector<std::int64_t> published_total(published.size(), 0);
  std::vector<bool> published_complete(published.size(), true);
  std::int64_t tk = 0, tf = 0, tp = 0, tm = 0;
  double sk = 0, sf = 0, sp = 0;

  for (std::size_t i = 0; i < circuits.size(); ++i) {
    const auto& spec = circuits[i];
    MethodRuns r = run_methods(spec, device);
    std::vector<std::string> row{std::string(spec.name)};
    for (std::size_t c = 0; c < published.size(); ++c) {
      const auto& v = published[c].values[i];
      row.push_back(fmt_opt_int(v.value_or(0), v.has_value()));
      if (v.has_value()) {
        published_total[c] += *v;
      } else {
        published_complete[c] = false;
      }
    }
    row.push_back(fmt_int(r.kwayx.k));
    row.push_back(fmt_int(r.fbb.k));
    row.push_back(fmt_int(r.fpart.k));
    row.push_back(fmt_int(r.m));
    table.add_row(std::move(row));

    json.add(std::string(spec.name), device, "kwayx", r.kwayx);
    json.add(std::string(spec.name), device, "fbb", r.fbb);
    json.add(std::string(spec.name), device, "fpart", r.fpart);

    tk += r.kwayx.k;
    tf += r.fbb.k;
    tp += r.fpart.k;
    tm += r.m;
    sk += r.kwayx.seconds;
    sf += r.fbb.seconds;
    sp += r.fpart.seconds;
    FPART_REQUIRE(r.kwayx.feasible && r.fbb.feasible && r.fpart.feasible,
                  "a method produced an infeasible partition");
    runs.push_back(std::move(r));
  }

  table.add_separator();
  std::vector<std::string> total{"Total"};
  for (std::size_t c = 0; c < published.size(); ++c) {
    total.push_back(
        fmt_opt_int(published_total[c], published_complete[c]));
  }
  total.insert(total.end(),
               {fmt_int(tk), fmt_int(tf), fmt_int(tp), fmt_int(tm)});
  table.add_row(std::move(total));

  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nMeasured wall clock: k-way.x %.2fs | FBB-MW %.2fs | FPART %.2fs\n\n",
      sk, sf, sp);
  if (csv_path != nullptr) {
    write_csv_file(csv_path, table);
    std::printf("CSV written to %s\n", csv_path);
  }
  return runs;
}

std::vector<AblationCase> default_ablation_cases() {
  return {
      {"c6288", xilinx::xc3020()},   // large M, combinational
      {"s13207", xilinx::xc3020()},  // large M, sequential
      {"s15850", xilinx::xc3042()},  // mid M (all-blocks pass active)
      {"s38417", xilinx::xc3090()},  // big circuit, small M
  };
}

void run_and_print_ablation(std::span<const AblationVariant> variants,
                            std::span<const AblationCase> cases,
                            const char* json_path, const char* bench_name) {
  BenchJson json(bench_name, json_path);
  std::vector<std::string> headers{"Circuit", "Device"};
  for (const auto& v : variants) headers.push_back(v.name + "*");
  headers.push_back("M");
  Table table(std::move(headers));

  std::vector<std::int64_t> totals(variants.size(), 0);
  std::vector<double> seconds(variants.size(), 0.0);
  std::int64_t tm = 0;
  for (const auto& c : cases) {
    const auto& spec = mcnc::circuit(c.circuit);
    const Hypergraph h = mcnc::generate(spec, c.device.family());
    std::vector<std::string> row{c.circuit, c.device.name()};
    std::uint32_t m = 0;
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const PartitionResult r = run_fpart_maybe_recorded(
          h, c.device, variants[v].options,
          c.circuit + "-" + variants[v].name);
      FPART_REQUIRE(r.feasible, "ablation variant produced infeasible result");
      json.add(c.circuit, c.device, variants[v].name, r);
      row.push_back(fmt_int(r.k));
      totals[v] += r.k;
      seconds[v] += r.seconds;
      m = r.lower_bound;
    }
    row.push_back(fmt_int(m));
    tm += m;
    table.add_row(std::move(row));
  }
  table.add_separator();
  std::vector<std::string> total{"Total", ""};
  for (std::int64_t t : totals) total.push_back(fmt_int(t));
  total.push_back(fmt_int(tm));
  table.add_row(std::move(total));
  std::fputs(table.to_ascii().c_str(), stdout);

  std::printf("\nRuntime per variant:");
  for (std::size_t v = 0; v < variants.size(); ++v) {
    std::printf(" %s=%.2fs", variants[v].name.c_str(), seconds[v]);
  }
  std::printf("\n\n");
}

}  // namespace fpart::bench
