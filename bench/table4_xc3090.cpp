// Reproduces Table 4: results comparison on the XC3090 device
// (S_ds = 320, T_MAX = 144, δ = 0.9), including the SC [3] and WCDP [6]
// published columns (quoted; '-' where the original did not report).
#include <vector>

#include "device/xilinx.hpp"
#include "harness.hpp"

using namespace fpart;
using bench::PublishedColumn;

int main(int argc, char** argv) {
  bench::print_banner("Table 4",
                      "Results comparison on XC3090 devices "
                      "(paper totals small/large: 14/14 and "
                      "34/26/33/29/27/27, M=14+26)");

  // Paper row order: c3540, c5315, c6288, c7552, s5378, s9234 (small
  // group), then s13207, s15850, s38417, s38584 (large group).
  const std::vector<PublishedColumn> published = {
      {"k-way.x[11]", {1, 3, 3, 3, 2, 2, 7, 4, 9, 14}},
      {"r+p.0[11]", {1, 3, 3, 3, 2, 2, 4, 3, 8, 11}},
      {"SC[3]",
       {std::nullopt, std::nullopt, std::nullopt, std::nullopt, std::nullopt,
        std::nullopt, 6, 3, 10, 14}},
      {"WCDP[6]",
       {std::nullopt, std::nullopt, std::nullopt, std::nullopt, std::nullopt,
        std::nullopt, 6, 3, 8, 12}},
      {"FBB-MW[16]",
       {std::nullopt, std::nullopt, std::nullopt, std::nullopt, std::nullopt,
        std::nullopt, 5, 3, 8, 11}},
      {"FPART", {1, 3, 3, 3, 2, 2, 5, 3, 8, 11}},
  };
  bench::run_and_print_suite(xilinx::xc3090(), mcnc::circuits(), published,
                             argc > 1 ? argv[1] : nullptr,
                             argc > 2 ? argv[2] : nullptr, "table4_xc3090");
  return 0;
}
