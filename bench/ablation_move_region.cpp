// Ablation: feasible-move regions (paper §3.5).
//
// Variants:
//   paper    — ε²_min=0.95, ε*_min=0.30, ε_max=1.05
//   no-viol  — ε_max=1.00: size-violating intermediate states forbidden
//   loose2   — 2-block lower bound relaxed to the multiway value (0.30):
//              cells drain into the remainder, the failure mode §3.5
//              warns about
//   wide     — very relaxed windows (ε_min=0.05, ε_max=1.50)
#include <vector>

#include "harness.hpp"

using namespace fpart;
using bench::AblationVariant;

int main(int argc, char** argv) {
  bench::print_banner("Ablation: move regions",
                      "Effect of the §3.5 feasible-move size windows");

  Options paper;
  Options no_viol;
  no_viol.move_region.eps_max = 1.00;
  Options loose2;
  loose2.move_region.eps_min_two_block = 0.30;
  Options wide;
  wide.move_region.eps_min_two_block = 0.05;
  wide.move_region.eps_min_multi = 0.05;
  wide.move_region.eps_max = 1.50;

  const std::vector<AblationVariant> variants = {
      {"paper", paper},
      {"no-viol", no_viol},
      {"loose2", loose2},
      {"wide", wide},
  };
  const auto cases = bench::default_ablation_cases();
  bench::run_and_print_ablation(variants, cases,
                                argc > 1 ? argv[1] : nullptr,
                                "ablation_move_region");
  return 0;
}
