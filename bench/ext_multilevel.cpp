// Extension bench: multilevel V-cycle scaling vs flat FPART.
//
// Flat FPART re-sweeps the full cell set every pass, so its wall time
// grows super-linearly with circuit size; the multilevel engine
// coarsens first and refines only boundary cells per level, which keeps
// the per-level work near-linear. This bench measures that crossover on
// Rent-style generated circuits:
//
//   * compare cases — flat FPART and multilevel both run (seed 0, same
//     device); the gate at the largest compared circuit requires
//     multilevel to be >= kMinSpeedup faster with a cut no worse, a
//     feasible result, and no more devices than flat FPART;
//   * multilevel-only cases — sizes where flat FPART is impractical
//     (up to 10^6 cells in the full configuration), demonstrating the
//     near-linear regime;
//   * every multilevel case is solved twice through the solve() facade
//     and the two assignment digests must match byte-for-byte — the
//     determinism hard gate.
//
// Writes BENCH_multilevel.json (fpart-multilevel-bench/1); argv[1]
// overrides the path, argv[2] == "small" restricts to the CI perf-smoke
// configuration (10k compare + 80k multilevel-only).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/solve.hpp"
#include "device/device.hpp"
#include "harness.hpp"
#include "netlist/generator.hpp"
#include "obs/json.hpp"
#include "obs/provenance.hpp"
#include "partition/replay.hpp"
#include "report/table.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

using namespace fpart;

namespace {

constexpr const char* kSchema = "fpart-multilevel-bench/1";
constexpr double kMinSpeedup = 5.0;

struct ScaleCase {
  const char* name;
  std::uint32_t cells;
  std::uint32_t terminals;
  std::uint32_t smax;  // device s_datasheet (fill 0.9 applies on top)
  std::uint32_t tmax;
  bool compare_flat;  // also run flat FPART and gate the ratio
};

struct ScaleRecord {
  std::string name;
  std::size_t nodes = 0;
  std::size_t nets = 0;
  std::size_t pins = 0;
  std::uint32_t lower_bound = 0;
  // multilevel
  std::uint32_t ml_k = 0;
  std::uint64_t ml_cut = 0;
  bool ml_feasible = false;
  double ml_seconds = 0.0;
  std::uint64_t ml_digest_first = 0;
  std::uint64_t ml_digest_second = 0;
  bool deterministic = false;
  // flat FPART (compare cases only)
  bool compared = false;
  std::uint32_t flat_k = 0;
  std::uint64_t flat_cut = 0;
  bool flat_feasible = false;
  double flat_seconds = 0.0;
  double speedup = 0.0;
};

Hypergraph make_circuit(const ScaleCase& c) {
  GeneratorConfig config;
  config.num_cells = c.cells;
  config.num_terminals = c.terminals;
  config.seed = 0x517CA5E;
  return generate_circuit(config);
}

PartitionResult run_method(const Hypergraph& h, const Device& device,
                           Method method) {
  SolveRequest req;
  req.method = method;
  req.options = Options{};  // canonical deterministic run, seed 0
  return solve(h, device, req);
}

ScaleRecord run_case(const ScaleCase& c) {
  const Hypergraph h = make_circuit(c);
  const Device device(c.name, Family::kXC3000, c.smax, c.tmax, 0.9);

  ScaleRecord rec;
  rec.name = c.name;
  rec.nodes = h.num_nodes();
  rec.nets = h.num_nets();
  rec.pins = h.num_pins();

  {
    Timer t;
    const PartitionResult ml = run_method(h, device, Method::kMultilevel);
    rec.ml_seconds = t.elapsed_seconds();
    rec.ml_k = ml.k;
    rec.ml_cut = ml.cut;
    rec.ml_feasible = ml.feasible;
    rec.lower_bound = ml.lower_bound;
    rec.ml_digest_first = assignment_digest(ml.assignment);
  }
  {
    const PartitionResult again = run_method(h, device, Method::kMultilevel);
    rec.ml_digest_second = assignment_digest(again.assignment);
  }
  rec.deterministic = rec.ml_digest_first == rec.ml_digest_second;

  if (c.compare_flat) {
    rec.compared = true;
    Timer t;
    const PartitionResult flat = run_method(h, device, Method::kFpart);
    rec.flat_seconds = t.elapsed_seconds();
    rec.flat_k = flat.k;
    rec.flat_cut = flat.cut;
    rec.flat_feasible = flat.feasible;
    rec.speedup = rec.ml_seconds > 0.0 ? rec.flat_seconds / rec.ml_seconds
                                       : 0.0;
  }
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner(
      "Extension: multilevel V-cycle scaling (vs flat FPART)",
      "Rent-style generated circuits, flat FPART vs the multilevel "
      "engine through solve(); hard gates: same-seed digest determinism "
      "on every case, and >= 5x wall-clock at the largest compared "
      "circuit with an equal-or-better cut");

  const bool small = argc > 2 && std::strcmp(argv[2], "small") == 0;

  // Devices sized so both engines land near k ~= M ~= 13 (the regime
  // the paper's tables live in); s_datasheet scales with the circuit so
  // the block count stays comparable across sizes.
  std::vector<ScaleCase> cases;
  cases.push_back({"gen-10k", 10'000, 300, 926, 300, true});
  if (small) {
    cases.push_back({"gen-80k", 80'000, 1'200, 7'408, 1'100, false});
  } else {
    cases.push_back({"gen-40k", 40'000, 700, 3'704, 700, true});
    cases.push_back({"gen-160k", 160'000, 1'800, 14'815, 1'800, false});
    cases.push_back({"gen-1m", 1'000'000, 6'000, 92'600, 6'000, false});
  }

  std::vector<ScaleRecord> records;
  Table table({"Circuit", "cells", "M", "flat t(s)*", "flat cut*", "ML t(s)*",
               "ML cut*", "ML k*", "speedup*", "det"});
  for (const ScaleCase& c : cases) {
    ScaleRecord rec = run_case(c);
    table.add_row({rec.name, fmt_int(static_cast<int>(c.cells)),
                   fmt_int(rec.lower_bound),
                   rec.compared ? fmt_double(rec.flat_seconds, 2) : "-",
                   rec.compared ? fmt_int(static_cast<int>(rec.flat_cut))
                                : "-",
                   fmt_double(rec.ml_seconds, 2),
                   fmt_int(static_cast<int>(rec.ml_cut)), fmt_int(rec.ml_k),
                   rec.compared ? fmt_double(rec.speedup, 1) : "-",
                   rec.deterministic ? "yes" : "NO"});
    records.push_back(std::move(rec));
  }
  std::fputs(table.to_ascii().c_str(), stdout);

  // Gates. Determinism is required on every case; the speedup/quality
  // gate applies to the largest compared circuit.
  bool all_deterministic = true;
  const ScaleRecord* largest_compare = nullptr;
  for (const ScaleRecord& rec : records) {
    all_deterministic = all_deterministic && rec.deterministic;
    if (rec.compared &&
        (largest_compare == nullptr || rec.nodes > largest_compare->nodes)) {
      largest_compare = &rec;
    }
  }
  bool gate_ok = all_deterministic && largest_compare != nullptr;
  if (largest_compare != nullptr) {
    const ScaleRecord& g = *largest_compare;
    const bool fast = g.speedup >= kMinSpeedup;
    const bool quality = g.ml_cut <= g.flat_cut && g.ml_feasible &&
                         (!g.flat_feasible || g.ml_k <= g.flat_k);
    gate_ok = gate_ok && fast && quality;
    std::printf(
        "\ngate @ %s: speedup %.1fx (need >= %.1fx) %s; cut %llu vs flat "
        "%llu, k %u vs %u, feasible=%s -> %s\n",
        g.name.c_str(), g.speedup, kMinSpeedup, fast ? "ok" : "FAIL",
        static_cast<unsigned long long>(g.ml_cut),
        static_cast<unsigned long long>(g.flat_cut), g.ml_k, g.flat_k,
        g.ml_feasible ? "yes" : "NO", quality ? "ok" : "FAIL");
  }
  std::printf("digest determinism: %s\n",
              all_deterministic ? "ok (all cases)" : "FAIL");

  const std::string path =
      argc > 1 ? argv[1] : std::string("BENCH_multilevel.json");
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kSchema);
  w.key("provenance");
  obs::write_provenance(w);
  w.key("bench");
  w.value("ext_multilevel");
  w.key("mode");
  w.value(small ? "small" : "full");
  w.key("min_speedup");
  w.value(kMinSpeedup);
  w.key("records");
  w.begin_array();
  for (const ScaleRecord& rec : records) {
    w.begin_object();
    w.key("circuit");
    w.value(rec.name);
    w.key("nodes");
    w.value(static_cast<std::uint64_t>(rec.nodes));
    w.key("nets");
    w.value(static_cast<std::uint64_t>(rec.nets));
    w.key("pins");
    w.value(static_cast<std::uint64_t>(rec.pins));
    w.key("lower_bound");
    w.value(rec.lower_bound);
    w.key("multilevel_seconds");
    w.value(rec.ml_seconds);
    w.key("multilevel_cut");
    w.value(rec.ml_cut);
    w.key("multilevel_k");
    w.value(rec.ml_k);
    w.key("multilevel_feasible");
    w.value(rec.ml_feasible);
    w.key("digest_first");
    w.value(rec.ml_digest_first);
    w.key("digest_second");
    w.value(rec.ml_digest_second);
    w.key("deterministic");
    w.value(rec.deterministic);
    w.key("compared_flat");
    w.value(rec.compared);
    if (rec.compared) {
      w.key("flat_seconds");
      w.value(rec.flat_seconds);
      w.key("flat_cut");
      w.value(rec.flat_cut);
      w.key("flat_k");
      w.value(rec.flat_k);
      w.key("flat_feasible");
      w.value(rec.flat_feasible);
      w.key("speedup");
      w.value(rec.speedup);
    }
    w.end_object();
  }
  w.end_array();
  w.key("gate_ok");
  w.value(gate_ok);
  w.end_object();

  std::FILE* f = std::fopen(path.c_str(), "w");
  FPART_REQUIRE(f != nullptr, "cannot write " + path);
  const std::string body = w.take();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());

  return gate_ok ? 0 : 1;
}
