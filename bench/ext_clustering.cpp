// Extension bench: clustered (coarsen -> partition -> project -> refine)
// FPART versus flat FPART — the clustering lever the FM literature
// ([5],[7]) recommends. Reports device counts and runtime.
#include <cstdio>
#include <vector>

#include "core/clustered.hpp"
#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "harness.hpp"
#include "report/table.hpp"

using namespace fpart;

int main() {
  bench::print_banner("Extension: clustering",
                      "One-level heavy-connectivity coarsening in front "
                      "of FPART");

  struct Case {
    const char* circuit;
    Device device;
  };
  const std::vector<Case> cases = {
      {"s9234", xilinx::xc3020()},   {"s13207", xilinx::xc3020()},
      {"s15850", xilinx::xc3042()},  {"s38417", xilinx::xc3042()},
      {"s38584", xilinx::xc3020()},
  };

  Table table({"Circuit", "Device", "flat k*", "flat s*", "clustered k*",
               "clustered s*", "coarse cells", "M"});
  for (const auto& c : cases) {
    const Hypergraph h = mcnc::generate(c.circuit, c.device.family());
    const PartitionResult flat = FpartPartitioner().run(h, c.device);
    const PartitionResult clustered =
        ClusteredFpartPartitioner().run(h, c.device);
    const Coarsening coarse = coarsen(h);
    table.add_row({c.circuit, c.device.name(), fmt_int(flat.k),
                   fmt_double(flat.seconds, 2), fmt_int(clustered.k),
                   fmt_double(clustered.seconds, 2),
                   fmt_int(static_cast<std::int64_t>(
                       coarse.coarse.num_interior())),
                   fmt_int(flat.lower_bound)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nReading: clustering halves the cell count the refiner touches; "
      "on these circuits it trades a little quality headroom for speed on "
      "the biggest instances.\n");
  return 0;
}
