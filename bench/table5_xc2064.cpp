// Reproduces Table 5: results comparison on the XC2064 device
// (S_ds = 64, T_MAX = 58, δ = 1.0; XC2000-family technology mapping).
// The paper evaluates the four combinational circuits only.
#include <vector>

#include "device/xilinx.hpp"
#include "harness.hpp"

using namespace fpart;
using bench::PublishedColumn;

int main(int argc, char** argv) {
  bench::print_banner("Table 5",
                      "Results comparison on XC2064 devices "
                      "(paper totals: 42/43/44/40/40, M=39)");

  // Paper row order: c3540, c5315, c7552, c6288.
  const std::vector<mcnc::CircuitSpec> circuits = {
      mcnc::circuit("c3540"), mcnc::circuit("c5315"), mcnc::circuit("c7552"),
      mcnc::circuit("c6288")};
  const std::vector<PublishedColumn> published = {
      {"k-way.x[11]", {6, 11, 11, 14}},
      {"SC[3]", {6, 12, 11, 14}},
      {"WCDP[6]", {7, 12, 11, 14}},
      {"FBB-MW[16]", {6, 10, 10, 14}},
      {"FPART", {6, 10, 10, 14}},
  };
  bench::run_and_print_suite(xilinx::xc2064(), circuits, published,
                             argc > 1 ? argv[1] : nullptr,
                             argc > 2 ? argv[2] : nullptr, "table5_xc2064");
  return 0;
}
