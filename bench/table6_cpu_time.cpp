// Reproduces Table 6: FPART execution time per circuit and device.
//
// The paper's times are on a 1998-era SUN Sparc Ultra 5; this build runs
// on modern hardware, so absolute values differ by orders of magnitude.
// The SHAPE to check: time grows with circuit size and with the final
// block count k (small devices = more iterations = more time), and the
// XC3090 column is the cheapest for every circuit.
#include <cstdio>
#include <optional>
#include <vector>

#include "device/xilinx.hpp"
#include "harness.hpp"
#include "report/table.hpp"

using namespace fpart;

int main(int argc, char** argv) {
  bench::print_banner("Table 6",
                      "FPART execution time (seconds). Paper columns: "
                      "SUN Ultra 5; measured columns: this machine.");

  struct PaperTimes {
    const char* circuit;
    std::optional<double> t[4];  // XC3020, XC3042, XC3090, XC2064
  };
  const std::vector<PaperTimes> paper = {
      {"c3540", {15.59, 2.75, 1.00, 11.2}},
      {"c5315", {43.99, 16.12, 6.15, 34.74}},
      {"c6288", {89.14, 36.45, 10.83, 64.62}},
      {"c7552", {46.23, 14.11, 6.05, 40.89}},
      {"s5378", {52.09, 22.01, 3.87, std::nullopt}},
      {"s9234", {59.47, 23.65, 3.45, std::nullopt}},
      {"s13207", {121.51, 95.18, 91.61, std::nullopt}},
      {"s15850", {156.25, 61.54, 15.61, std::nullopt}},
      {"s38417", {464.66, 131.48, 78.54, std::nullopt}},
      {"s38584", {875.26, 258.73, 184.12, std::nullopt}},
  };
  const Device devices[4] = {xilinx::xc3020(), xilinx::xc3042(),
                             xilinx::xc3090(), xilinx::xc2064()};

  bench::BenchJson json("table6_cpu_time", argc > 1 ? argv[1] : nullptr);
  Table table({"Circuit", "3020 paper", "3020*", "3042 paper", "3042*",
               "3090 paper", "3090*", "2064 paper", "2064*"});
  double total_measured = 0.0;
  double total_cpu = 0.0;
  for (const auto& row : paper) {
    const auto& spec = mcnc::circuit(row.circuit);
    std::vector<std::string> cells{row.circuit};
    for (int d = 0; d < 4; ++d) {
      cells.push_back(row.t[d] ? fmt_double(*row.t[d], 2) : "-");
      if (row.t[d]) {
        const PartitionResult r = bench::run_fpart(spec, devices[d]);
        json.add(row.circuit, devices[d], "fpart", r);
        total_measured += r.seconds;
        total_cpu += r.cpu_seconds;
        cells.push_back(fmt_double(r.seconds, 2));
      } else {
        cells.push_back("-");  // the paper skipped s* circuits on XC2064
      }
    }
    table.add_row(std::move(cells));
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("\nTotal measured FPART time: %.2fs wall / %.2fs cpu\n",
              total_measured, total_cpu);
  return 0;
}
