// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: partition moves, gain computation, gain-bucket churn,
// Dinic max-flow on the net-splitting gadget, the netlist generator and
// the end-to-end partitioners on a mid-size circuit.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <vector>

#include "baselines/kwayx.hpp"
#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "flow/fbb.hpp"
#include "flow/hypergraph_flow.hpp"
#include "fm/gain_bucket.hpp"
#include "fm/gains.hpp"
#include "netlist/generator.hpp"
#include "netlist/mcnc.hpp"
#include "obs/phase.hpp"
#include "obs/recorder.hpp"
#include "obs/stats.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace {

using namespace fpart;

const Hypergraph& test_graph() {
  static const Hypergraph h = mcnc::generate("s13207", Family::kXC3000);
  return h;
}

void BM_PartitionMove(benchmark::State& state) {
  const Hypergraph& h = test_graph();
  Partition p(h, 4);
  Rng rng(7);
  std::vector<NodeId> cells;
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) cells.push_back(v);
  }
  for (NodeId v : cells) p.move(v, static_cast<BlockId>(rng.index(4)));
  std::size_t i = 0;
  for (auto _ : state) {
    const NodeId v = cells[i++ % cells.size()];
    const BlockId to = static_cast<BlockId>((p.block_of(v) + 1) % 4);
    p.move(v, to);
    benchmark::DoNotOptimize(p.cut_size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PartitionMove);

void BM_MoveGain(benchmark::State& state) {
  const Hypergraph& h = test_graph();
  Partition p(h, 4);
  Rng rng(7);
  std::vector<NodeId> cells;
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) cells.push_back(v);
  }
  for (NodeId v : cells) p.move(v, static_cast<BlockId>(rng.index(4)));
  std::size_t i = 0;
  for (auto _ : state) {
    const NodeId v = cells[i++ % cells.size()];
    benchmark::DoNotOptimize(
        move_gain(p, v, static_cast<BlockId>((p.block_of(v) + 1) % 4)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MoveGain);

void BM_GainBucketChurn(benchmark::State& state) {
  const std::size_t n = 4096;
  GainBucket bucket(n, 32);
  Rng rng(13);
  for (std::uint32_t id = 0; id < n; ++id) {
    bucket.insert(id, static_cast<int>(rng.uniform(0, 64)) - 32);
  }
  std::uint32_t id = 0;
  for (auto _ : state) {
    bucket.update(id, static_cast<int>(rng.uniform(0, 64)) - 32);
    benchmark::DoNotOptimize(bucket.best_gain());
    id = (id + 1) % n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GainBucketChurn);

void BM_DinicHypergraphCut(benchmark::State& state) {
  const Hypergraph& h = test_graph();
  std::vector<std::uint8_t> scope(h.num_nodes(), 0);
  std::vector<NodeId> cells;
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) {
      scope[v] = 1;
      cells.push_back(v);
    }
  }
  const std::vector<NodeId> src{cells.front()};
  const std::vector<NodeId> snk{cells.back()};
  for (auto _ : state) {
    auto flow = build_hypergraph_flow(h, scope, src, snk);
    benchmark::DoNotOptimize(flow.net.max_flow(flow.source, flow.sink));
  }
}
BENCHMARK(BM_DinicHypergraphCut);

void BM_GenerateCircuit(benchmark::State& state) {
  GeneratorConfig config;
  config.num_cells = static_cast<std::uint32_t>(state.range(0));
  config.num_terminals = config.num_cells / 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_circuit(config));
  }
}
BENCHMARK(BM_GenerateCircuit)->Arg(500)->Arg(2000);

void BM_FpartEndToEnd(benchmark::State& state) {
  const Hypergraph h = mcnc::generate("s9234", Family::kXC3000);
  const Device d = xilinx::xc3042();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FpartPartitioner().run(h, d));
  }
}
BENCHMARK(BM_FpartEndToEnd)->Unit(benchmark::kMillisecond);

void BM_KwayxEndToEnd(benchmark::State& state) {
  const Hypergraph h = mcnc::generate("s9234", Family::kXC3000);
  const Device d = xilinx::xc3042();
  for (auto _ : state) {
    benchmark::DoNotOptimize(KwayxPartitioner().run(h, d));
  }
}
BENCHMARK(BM_KwayxEndToEnd)->Unit(benchmark::kMillisecond);

void BM_FbbEndToEnd(benchmark::State& state) {
  const Hypergraph h = mcnc::generate("s9234", Family::kXC3000);
  const Device d = xilinx::xc3042();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FbbPartitioner().run(h, d));
  }
}
BENCHMARK(BM_FbbEndToEnd)->Unit(benchmark::kMillisecond);

// Observability primitives: the disabled path (default) must be
// unmeasurable against the work it guards; the enabled path is one
// relaxed atomic add. Run the whole suite with FPART_STATS=1 to measure
// end-to-end instrumentation overhead against a default run.
void BM_StatsCounterIncrement(benchmark::State& state) {
  for (auto _ : state) {
    FPART_COUNTER_INC("micro.counter_probe");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StatsCounterIncrement);

void BM_StatsHistogramRecord(benchmark::State& state) {
  std::int64_t v = 0;
  for (auto _ : state) {
    FPART_HISTOGRAM_RECORD("micro.histogram_probe", v++ & 1023);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StatsHistogramRecord);

void BM_ScopedPhase(benchmark::State& state) {
  for (auto _ : state) {
    const obs::ScopedPhase phase("micro.phase_probe");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScopedPhase);

// Flight recorder: the disabled record is one relaxed load + branch, the
// enabled record is a push_back of a 24-byte POD. Run the whole suite
// with FPART_RECORD=1 to measure recorder-enabled overhead end to end
// (acceptance bar: BM_FpartEndToEnd within 5% of a default run).
void BM_RecorderEvent(benchmark::State& state) {
  std::uint32_t i = 0;
  for (auto _ : state) {
    obs::record_event(obs::EventKind::kMove, obs::Engine::kFm, i++, 0, 1, 3,
                      42);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RecorderEvent);

void BM_PartitionMoveRecorded(benchmark::State& state) {
  const Hypergraph& h = test_graph();
  obs::Recorder::instance().start(obs::RunHeader{});
  Partition p(h, 4);
  Rng rng(7);
  std::vector<NodeId> cells;
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) cells.push_back(v);
  }
  for (NodeId v : cells) p.move(v, static_cast<BlockId>(rng.index(4)));
  std::size_t i = 0;
  for (auto _ : state) {
    const NodeId v = cells[i++ % cells.size()];
    const BlockId to = static_cast<BlockId>((p.block_of(v) + 1) % 4);
    p.move(v, to);
    benchmark::DoNotOptimize(p.cut_size());
    if (obs::Recorder::instance().event_count() >= (1u << 20)) {
      state.PauseTiming();  // drain the buffer off the clock
      obs::Recorder::instance().start(obs::RunHeader{});
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  obs::Recorder::instance().reset();
}
BENCHMARK(BM_PartitionMoveRecorded);

}  // namespace

int main(int argc, char** argv) {
  // FPART_STATS=1 turns the registry on for every benchmark, so the
  // enabled-path overhead is measured by diffing against a default run.
  if (const char* flag = std::getenv("FPART_STATS");
      flag != nullptr && flag[0] == '1') {
    fpart::obs::set_stats_enabled(true);
  }
  // FPART_RECORD=1 likewise arms the flight recorder for every benchmark
  // (the buffer grows unbounded; this is a measurement mode, not a sink).
  if (const char* flag = std::getenv("FPART_RECORD");
      flag != nullptr && flag[0] == '1') {
    fpart::obs::Recorder::instance().start(fpart::obs::RunHeader{});
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
