// Extension bench: scaling sweep (supplemental — the paper has no such
// figure). Generates circuits of growing size with fixed density and
// reports devices + runtime for all three methods, exposing the
// asymptotic behaviour Table 6 only samples.
#include <cstdio>
#include <vector>

#include "baselines/kwayx.hpp"
#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "flow/fbb.hpp"
#include "harness.hpp"
#include "netlist/generator.hpp"
#include "report/table.hpp"

using namespace fpart;

int main() {
  bench::print_banner("Extension: scaling sweep",
                      "Synthetic circuits, XC3042 (δ=0.9): devices and "
                      "seconds vs circuit size");

  const Device d = xilinx::xc3042();
  Table table({"cells", "pads", "M", "kwayx k*", "fbb k*", "fpart k*",
               "kwayx s*", "fbb s*", "fpart s*"});
  for (std::uint32_t cells : {500u, 1000u, 2000u, 4000u}) {
    GeneratorConfig config;
    config.num_cells = cells;
    config.num_terminals = cells / 20;
    config.seed = 42 + cells;
    const Hypergraph h = generate_circuit(config);
    const PartitionResult rk = KwayxPartitioner().run(h, d);
    const PartitionResult rf = FbbPartitioner().run(h, d);
    const PartitionResult rp = FpartPartitioner().run(h, d);
    table.add_row({fmt_int(cells), fmt_int(config.num_terminals),
                   fmt_int(rp.lower_bound), fmt_int(rk.k), fmt_int(rf.k),
                   fmt_int(rp.k), fmt_double(rk.seconds, 2),
                   fmt_double(rf.seconds, 2), fmt_double(rp.seconds, 2)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  return 0;
}
