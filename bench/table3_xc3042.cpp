// Reproduces Table 3: results comparison on the XC3042 device
// (S_ds = 144, T_MAX = 96, δ = 0.9).
#include <vector>

#include "device/xilinx.hpp"
#include "harness.hpp"

using namespace fpart;
using bench::PublishedColumn;

int main(int argc, char** argv) {
  bench::print_banner("Table 3",
                      "Results comparison on XC3042 devices "
                      "(paper totals: 94/93/87/82/84/84, M=81)");

  const std::vector<PublishedColumn> published = {
      {"k-way.x[11]", {3, 5, 7, 4, 5, 4, 11, 8, 20, 27}},
      {"r+p.0[11]", {3, 5, 7, 4, 4, 4, 10, 9, 20, 27}},
      {"PROP(p,o,p)", {2, 4, 6, 5, 4, 4, 9, 8, 20, 25}},
      {"PROP(p,r,o,p)", {2, 4, 5, 4, 4, 4, 8, 7, 19, 25}},
      {"FBB-MW[16]", {3, 4, 7, 4, 4, 4, 9, 8, 18, 23}},
      {"FPART", {3, 5, 7, 4, 4, 4, 9, 7, 18, 23}},
  };
  bench::run_and_print_suite(xilinx::xc3042(), mcnc::circuits(), published,
                             argc > 1 ? argv[1] : nullptr,
                             argc > 2 ? argv[2] : nullptr, "table3_xc3042");
  return 0;
}
