// Reproduces Table 1: benchmark circuit characteristics.
//
// Prints the published #IOBs / #CLBs alongside the actual node counts of
// the synthetic stand-in netlists (which match by construction) plus
// structural statistics of the generated circuits (nets, pins, average
// net degree) so the workload is auditable.
#include <cstdio>

#include "harness.hpp"
#include "netlist/mcnc.hpp"
#include "netlist/rent.hpp"
#include "report/table.hpp"

using namespace fpart;

int main() {
  bench::print_banner(
      "Table 1", "Benchmark circuits characteristics (MCNC Partitioning93)");

  Table table({"Circuit", "#IOBs", "#CLBs XC2000", "#CLBs XC3000",
               "gen IOBs", "gen CLBs 2k", "gen CLBs 3k", "nets 3k",
               "pins 3k", "avg net deg", "Rent p"});
  for (const auto& spec : mcnc::circuits()) {
    const Hypergraph h2 = mcnc::generate(spec, Family::kXC2000);
    const Hypergraph h3 = mcnc::generate(spec, Family::kXC3000);
    const RentEstimate rent = estimate_rent(h3);
    table.add_row({std::string(spec.name), fmt_int(spec.iobs),
                   fmt_int(spec.clbs_xc2000), fmt_int(spec.clbs_xc3000),
                   fmt_int(static_cast<std::int64_t>(h3.num_terminals())),
                   fmt_int(static_cast<std::int64_t>(h2.num_interior())),
                   fmt_int(static_cast<std::int64_t>(h3.num_interior())),
                   fmt_int(static_cast<std::int64_t>(h3.num_nets())),
                   fmt_int(static_cast<std::int64_t>(h3.num_pins())),
                   fmt_double(h3.avg_net_degree(), 2),
                   fmt_double(rent.exponent, 2)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nThe published #IOBs/#CLBs reproduce exactly by construction; the "
      "Rent exponent column audits that the generated structure has the "
      "locality of real mapped circuits (empirical band ~0.45-0.85).\n");
  return 0;
}
