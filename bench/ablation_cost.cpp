// Ablation: the infeasibility-distance cost function (paper §3.3-3.4).
//
// Variants:
//   full        — the paper's cost (λ^S=0.4, λ^T=0.6, λ^R=0.1, d^E on)
//   no-dist     — infeasibility distance off (λ^S=λ^T=λ^R=0): solutions
//                 compared by feasible-block count, then total pins only
//                 (≈ the plain cut-driven selection of k-way.x [9])
//   no-sizepen  — size-deviation penalty off (λ^R=0)
//   no-extbal   — external I/O balancing key off
#include <vector>

#include "harness.hpp"

using namespace fpart;
using bench::AblationVariant;

int main(int argc, char** argv) {
  bench::print_banner("Ablation: cost function",
                      "Effect of the §3.3 infeasibility-distance cost "
                      "components on the device count");

  Options full;
  Options no_dist;
  no_dist.cost.lambda_s = 0.0;
  no_dist.cost.lambda_t = 0.0;
  no_dist.cost.lambda_r = 0.0;
  Options no_sizepen;
  no_sizepen.cost.lambda_r = 0.0;
  Options no_extbal;
  no_extbal.cost.lambda_e = 0.0;

  const std::vector<AblationVariant> variants = {
      {"full", full},
      {"no-dist", no_dist},
      {"no-sizepen", no_sizepen},
      {"no-extbal", no_extbal},
  };
  const auto cases = bench::default_ablation_cases();
  bench::run_and_print_ablation(variants, cases,
                                argc > 1 ? argv[1] : nullptr,
                                "ablation_cost");
  return 0;
}
