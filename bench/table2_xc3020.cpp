// Reproduces Table 2: results comparison on the XC3020 device
// (S_ds = 64, T_MAX = 64, δ = 0.9).
//
// Published columns: k-way.x (p,p) [11], r+p.0 (p,r,p) [11],
// PROP (p,o,p) and (p,r,o,p) [12], FBB-MW [16], FPART (the paper).
// r+p.0 and PROP use logic replication and are quoted only; k-way.x,
// FBB-MW and FPART are re-measured by this build.
#include <vector>

#include "device/xilinx.hpp"
#include "harness.hpp"

using namespace fpart;
using bench::PublishedColumn;

int main(int argc, char** argv) {
  bench::print_banner("Table 2",
                      "Results comparison on XC3020 devices "
                      "(paper totals: 210/210/198/188/183/180, M=172)");

  const std::vector<PublishedColumn> published = {
      {"k-way.x[11]", {6, 9, 16, 10, 11, 10, 23, 19, 46, 60}},
      {"r+p.0[11]", {6, 8, 16, 10, 10, 10, 23, 19, 48, 60}},
      {"PROP(p,o,p)", {6, 9, 12, 9, 11, 9, 21, 17, 44, 60}},
      {"PROP(p,r,o,p)", {6, 8, 12, 9, 9, 9, 19, 16, 44, 56}},
      {"FBB-MW[16]", {6, 8, 15, 9, 9, 8, 18, 15, 41, 54}},
      {"FPART", {6, 9, 15, 9, 9, 8, 18, 15, 39, 52}},
  };
  bench::run_and_print_suite(xilinx::xc3020(), mcnc::circuits(), published,
                             argc > 1 ? argv[1] : nullptr,
                             argc > 2 ? argv[2] : nullptr, "table2_xc3020");
  return 0;
}
