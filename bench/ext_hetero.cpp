// Extension bench: heterogeneous device-cost minimization (the problem
// of Kuznar et al. [10],[11] this line of work grew from). Compares the
// total library cost of (a) homogeneous partitions onto each single
// device type and (b) the heterogeneous peel-then-price flow.
#include <cstdio>
#include <vector>

#include "core/fpart.hpp"
#include "core/hetero.hpp"
#include "device/device_set.hpp"
#include "device/xilinx.hpp"
#include "harness.hpp"
#include "report/table.hpp"

using namespace fpart;

namespace {

double homogeneous_cost(const Hypergraph& h, const DeviceSet& set,
                        std::size_t device_index) {
  const auto& pd = set.devices()[device_index];
  const PartitionResult r = FpartPartitioner().run(h, pd.device);
  return static_cast<double>(r.k) * pd.cost;
}

}  // namespace

int main() {
  bench::print_banner("Extension: heterogeneous cost",
                      "Total device cost, XC3000 library "
                      "(XC3020=1.0, XC3042=2.1, XC3090=4.8; δ=0.9)");

  const DeviceSet set = xilinx::xc3000_family_set();
  Table table({"Circuit", "all-3020*", "all-3042*", "all-3090*", "hetero*",
               "hetero devices*"});
  for (const char* circuit :
       {"c3540", "c7552", "s5378", "s9234", "s13207", "s15850"}) {
    const Hypergraph h = mcnc::generate(circuit, Family::kXC3000);
    const HeteroResult hr = partition_heterogeneous(h, set);
    std::string mix;
    std::vector<int> count(set.size(), 0);
    for (std::size_t di : hr.devices.device_of_block) {
      if (di != DeviceAssignment::kNoFit) ++count[di];
    }
    for (std::size_t i = 0; i < set.size(); ++i) {
      if (count[i] == 0) continue;
      if (!mix.empty()) mix += " + ";
      mix += std::to_string(count[i]) + "x" +
             set.devices()[i].device.name();
    }
    table.add_row({circuit, fmt_double(homogeneous_cost(h, set, 0), 1),
                   fmt_double(homogeneous_cost(h, set, 1), 1),
                   fmt_double(homogeneous_cost(h, set, 2), 1),
                   fmt_double(hr.total_cost, 1), mix});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nReading: the heterogeneous flow prices each block individually "
      "and splits blocks when two small devices undercut a big one — it "
      "should never lose to the best homogeneous column by more than the "
      "peeling slack.\n");
  return 0;
}
