// Extension bench: the partition-as-a-service layer (src/serve).
//
// Drives the in-process Server (the exact scheduling + caching stack
// behind the fpart_serve daemon, minus socket framing) with a mixed
// MCNC workload and measures the two numbers a serving deployment
// cares about:
//
//   * sustained jobs/sec — one submit request carrying the full
//     workload fans the single-attempt jobs across the shared
//     ThreadPool; the cold round measures compute throughput, the warm
//     rounds measure cache-served throughput;
//   * cache hit rate — the identical workload is submitted
//     kWarmRounds more times; every repeat job must be served from the
//     content-addressed cache, and the aggregate hit rate is gated at
//     >= kMinHitRate (0.5).
//
// Hard gate (soundness, not speed): for every job, the digest served
// from the cache must equal the cold-round digest AND the digest an
// independent cache-disabled server computes from scratch. A cache
// that ever returns a result the engine would not have produced is a
// correctness bug, whatever its hit rate.
//
// Writes BENCH_serve.json (fpart-serve-bench/1); argv[1] overrides the
// path, argv[2] == "small" restricts the workload to the CI smoke
// configuration (two circuits, two seeds).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "harness.hpp"
#include "netlist/hgr_io.hpp"
#include "netlist/mcnc.hpp"
#include "obs/json.hpp"
#include "obs/provenance.hpp"
#include "report/table.hpp"
#include "serve/server.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

using namespace fpart;

namespace {

constexpr const char* kSchema = "fpart-serve-bench/1";
constexpr double kMinHitRate = 0.5;
constexpr int kWarmRounds = 2;

struct BenchJob {
  std::string id;
  std::string circuit;
  std::uint64_t seed = 0;
  std::uint32_t portfolio = 1;
};

struct JobObservation {
  bool ok = false;
  bool cached = false;
  std::uint64_t digest = 0;
  std::uint64_t cut = 0;
  std::uint64_t k = 0;
  double seconds = 0.0;
};

struct RoundRecord {
  std::string name;
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
  std::map<std::string, JobObservation> jobs;
};

std::string request_json(const std::vector<BenchJob>& jobs,
                         const std::map<std::string, std::string>& inputs) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("fpart-serve-request/1");
  w.key("client");
  w.value("bench");
  w.key("jobs");
  w.begin_array();
  for (const BenchJob& j : jobs) {
    w.begin_object();
    w.key("id");
    w.value(j.id);
    w.key("input");
    w.value(inputs.at(j.circuit));
    w.key("device");
    w.value("XC3042");
    w.key("seed");
    w.value(j.seed);
    w.key("portfolio");
    w.value(j.portfolio);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

/// Submits the workload once and decodes the per-job outcomes.
RoundRecord run_round(serve::Server& server, const std::string& name,
                      const std::string& request, std::size_t expect_jobs) {
  Timer t;
  const std::string response = server.handle_line(request, "bench");
  RoundRecord rec;
  rec.name = name;
  rec.seconds = t.elapsed_seconds();
  rec.jobs_per_sec = rec.seconds > 0.0
                         ? static_cast<double>(expect_jobs) / rec.seconds
                         : 0.0;

  const std::optional<obs::JsonValue> doc = obs::json_parse(response);
  FPART_REQUIRE(doc.has_value() && doc->is_object(),
                "serve bench: unparsable response: " + response);
  const obs::JsonValue* ok = doc->find("ok");
  FPART_REQUIRE(ok != nullptr && ok->boolean,
                "serve bench: request rejected: " + response);
  const obs::JsonValue* jobs = doc->find("jobs");
  FPART_REQUIRE(jobs != nullptr && jobs->is_array() &&
                    jobs->array.size() == expect_jobs,
                "serve bench: wrong job count in response");
  for (const obs::JsonValue& job : jobs->array) {
    JobObservation seen;
    seen.ok = job.find("ok") != nullptr && job.find("ok")->boolean;
    seen.cached =
        job.find("cached") != nullptr && job.find("cached")->boolean;
    if (const obs::JsonValue* v = job.find("assignment_digest")) {
      seen.digest = v->as_u64();
    }
    if (const obs::JsonValue* v = job.find("cut")) seen.cut = v->as_u64();
    if (const obs::JsonValue* v = job.find("k")) seen.k = v->as_u64();
    if (const obs::JsonValue* v = job.find("seconds")) {
      seen.seconds = v->number;
    }
    const obs::JsonValue* id = job.find("id");
    FPART_REQUIRE(id != nullptr, "serve bench: job record without id");
    rec.jobs[id->string] = seen;
  }
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner(
      "Extension: partition-as-a-service throughput + cache soundness",
      "mixed MCNC workload through the serve::Server scheduling stack; "
      "hard gates: cached digests byte-identical to cold-round AND "
      "cache-disabled recomputation, repeat-submission hit rate >= 0.5");

  const bool small = argc > 2 && std::strcmp(argv[2], "small") == 0;

  const std::vector<std::string> circuits =
      small ? std::vector<std::string>{"c3540", "c5315"}
            : std::vector<std::string>{"c3540", "c5315", "c6288"};
  const std::vector<std::uint64_t> seeds =
      small ? std::vector<std::uint64_t>{1, 2}
            : std::vector<std::uint64_t>{1, 2, 3};

  // Stage the circuits as .hgr files — the daemon's input unit.
  const std::string dir = "serve_bench_inputs";
  std::filesystem::create_directories(dir);
  std::map<std::string, std::string> inputs;
  for (const std::string& name : circuits) {
    const std::string path = dir + "/" + name + ".hgr";
    write_hgr_file(path, mcnc::generate(name, Family::kXC3000));
    inputs[name] = path;
  }

  // Unique content keys: circuit x seed, plus one portfolio job per
  // circuit so the dedicated lane is part of the measured path.
  std::vector<BenchJob> jobs;
  for (const std::string& name : circuits) {
    for (const std::uint64_t seed : seeds) {
      jobs.push_back(
          {name + "_s" + std::to_string(seed), name, seed, 1});
    }
    jobs.push_back({name + "_pf", name, 99, 2});
  }
  const std::string request = request_json(jobs, inputs);

  serve::ServerConfig config;
  config.cache_capacity = 256;
  config.quota = 0;  // the bench client intentionally floods
  std::vector<RoundRecord> rounds;
  serve::ServeStatsSnapshot stats;
  {
    serve::Server server(config);
    rounds.push_back(run_round(server, "cold", request, jobs.size()));
    for (int r = 1; r <= kWarmRounds; ++r) {
      rounds.push_back(run_round(server, "warm" + std::to_string(r),
                                 request, jobs.size()));
    }
    stats = server.snapshot();
  }

  // Independent recomputation: capacity 0 disables the cache, so every
  // digest below is straight out of the engine.
  RoundRecord recompute;
  {
    serve::ServerConfig nocache = config;
    nocache.cache_capacity = 0;
    serve::Server server(nocache);
    recompute = run_round(server, "recompute", request, jobs.size());
  }

  const RoundRecord& cold = rounds.front();
  bool all_ok = true;
  bool digest_identity = true;
  bool warm_all_cached = true;
  Table table({"Job", "cut*", "k*", "cold t(s)*", "cached", "digest"});
  for (const BenchJob& j : jobs) {
    const JobObservation& c = cold.jobs.at(j.id);
    const JobObservation& r = recompute.jobs.at(j.id);
    bool job_digest_ok = c.ok && r.ok && c.digest == r.digest;
    bool job_cached_ok = true;
    for (int w = 1; w <= kWarmRounds; ++w) {
      const JobObservation& warm = rounds[static_cast<std::size_t>(w)]
                                       .jobs.at(j.id);
      job_digest_ok = job_digest_ok && warm.ok && warm.digest == c.digest;
      job_cached_ok = job_cached_ok && warm.cached;
    }
    all_ok = all_ok && c.ok && r.ok;
    digest_identity = digest_identity && job_digest_ok;
    warm_all_cached = warm_all_cached && job_cached_ok;
    table.add_row({j.id, fmt_int(static_cast<int>(c.cut)),
                   fmt_int(static_cast<int>(c.k)),
                   fmt_double(c.seconds, 3),
                   job_cached_ok ? "hit" : "MISS",
                   job_digest_ok ? "ok" : "MISMATCH"});
  }
  std::fputs(table.to_ascii().c_str(), stdout);

  const double hit_rate = stats.cache_hit_rate();
  const bool hit_rate_ok = hit_rate >= kMinHitRate;
  const bool gate_ok =
      all_ok && digest_identity && warm_all_cached && hit_rate_ok;

  std::printf("\nsustained throughput: cold %.2f jobs/s", cold.jobs_per_sec);
  for (int r = 1; r <= kWarmRounds; ++r) {
    std::printf(", %s %.0f jobs/s",
                rounds[static_cast<std::size_t>(r)].name.c_str(),
                rounds[static_cast<std::size_t>(r)].jobs_per_sec);
  }
  std::printf("\ncache hit rate: %.3f (need >= %.2f) %s\n", hit_rate,
              kMinHitRate, hit_rate_ok ? "ok" : "FAIL");
  std::printf("digest identity (cached == cold == recomputed): %s\n",
              digest_identity ? "ok (all jobs)" : "FAIL");
  std::printf("warm rounds fully cached: %s\n",
              warm_all_cached ? "ok" : "FAIL");

  const std::string path =
      argc > 1 ? argv[1] : std::string("BENCH_serve.json");
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value(kSchema);
  w.key("provenance");
  obs::write_provenance(w);
  w.key("bench");
  w.value("ext_serve");
  w.key("mode");
  w.value(small ? "small" : "full");
  w.key("min_hit_rate");
  w.value(kMinHitRate);
  w.key("warm_rounds");
  w.value(static_cast<std::uint64_t>(kWarmRounds));
  w.key("rounds");
  w.begin_array();
  for (const RoundRecord& rec : rounds) {
    w.begin_object();
    w.key("round");
    w.value(rec.name);
    w.key("jobs");
    w.value(static_cast<std::uint64_t>(rec.jobs.size()));
    w.key("seconds");
    w.value(rec.seconds);
    w.key("jobs_per_sec");
    w.value(rec.jobs_per_sec);
    w.end_object();
  }
  w.end_array();
  w.key("jobs");
  w.begin_array();
  for (const BenchJob& j : jobs) {
    const JobObservation& c = cold.jobs.at(j.id);
    const JobObservation& r = recompute.jobs.at(j.id);
    const JobObservation& warm = rounds[1].jobs.at(j.id);
    w.begin_object();
    w.key("id");
    w.value(j.id);
    w.key("circuit");
    w.value(j.circuit);
    w.key("seed");
    w.value(j.seed);
    w.key("portfolio");
    w.value(j.portfolio);
    w.key("cut");
    w.value(c.cut);
    w.key("k");
    w.value(c.k);
    w.key("cold_seconds");
    w.value(c.seconds);
    w.key("cold_digest");
    w.value(c.digest);
    w.key("warm_cached");
    w.value(warm.cached);
    w.key("warm_digest");
    w.value(warm.digest);
    w.key("recompute_digest");
    w.value(r.digest);
    w.key("digest_identity");
    w.value(c.ok && r.ok && warm.ok && c.digest == r.digest &&
            c.digest == warm.digest);
    w.end_object();
  }
  w.end_array();
  w.key("sustained_jobs_per_sec");
  w.value(cold.jobs_per_sec);
  w.key("cache_hit_rate");
  w.value(hit_rate);
  w.key("cache_hits");
  w.value(stats.cache_hits);
  w.key("cache_misses");
  w.value(stats.cache_misses);
  w.key("gates");
  w.begin_object();
  w.key("all_jobs_ok");
  w.value(all_ok);
  w.key("digest_identity");
  w.value(digest_identity);
  w.key("warm_all_cached");
  w.value(warm_all_cached);
  w.key("hit_rate_ok");
  w.value(hit_rate_ok);
  w.end_object();
  w.key("gate_ok");
  w.value(gate_ok);
  w.end_object();

  std::FILE* f = std::fopen(path.c_str(), "w");
  FPART_REQUIRE(f != nullptr, "cannot write " + path);
  const std::string body = w.take();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());

  return gate_ok ? 0 : 1;
}
