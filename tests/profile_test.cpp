// Unit tests for the hardware-counter & memory profiling layer
// (obs/profile.hpp): graceful degradation when perf_event is denied,
// heap telemetry via the counting allocator (fpart::alloc_hook is
// linked into THIS binary), per-phase delta attribution through
// ScopedPhase, the "profile" report section, build provenance, and the
// observation-only contract (profiling changes no partitioning answer).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/solve.hpp"
#include "device/xilinx.hpp"
#include "netlist/mcnc.hpp"
#include "obs/json.hpp"
#include "obs/phase.hpp"
#include "obs/profile.hpp"
#include "obs/provenance.hpp"
#include "obs/stats.hpp"
#include "partition/replay.hpp"
#include "report/run_report.hpp"

// Mirror of the sanitizer detection in obs/alloc_hook.cpp: under
// ASan/TSan/MSan the counting allocator compiles out and heap telemetry
// legitimately reports available:false.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define FPART_EXPECT_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define FPART_EXPECT_ALLOC_HOOK 0
#endif
#endif
#ifndef FPART_EXPECT_ALLOC_HOOK
#define FPART_EXPECT_ALLOC_HOOK 1
#endif

namespace fpart {
namespace {

class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::StatsRegistry::instance().reset();
    obs::PhaseForest::instance().reset();
  }
  void TearDown() override {
    obs::set_profile_enabled(false);
    obs::detail::force_perf_unavailable_for_test(false);
    obs::set_stats_enabled(false);
    obs::StatsRegistry::instance().reset();
    obs::PhaseForest::instance().reset();
  }
};

// --- graceful degradation --------------------------------------------------

TEST_F(ProfileTest, ForcedUnavailableReportsReasonNotError) {
  obs::detail::force_perf_unavailable_for_test(true);
  const obs::PerfAvailability& a = obs::perf_availability();
  EXPECT_FALSE(a.available);
  EXPECT_FALSE(a.reason.empty());
  // Reads degrade to zeros — never throw, never error.
  const obs::PerfSample s = obs::perf_read();
  EXPECT_EQ(s.cycles, 0u);
  EXPECT_EQ(s.instructions, 0u);
  EXPECT_EQ(s.cache_misses, 0u);
}

TEST_F(ProfileTest, EnableNeverFailsEvenWhenPerfDenied) {
  obs::detail::force_perf_unavailable_for_test(true);
  EXPECT_NO_THROW(obs::set_profile_enabled(true));
  EXPECT_TRUE(obs::profile_enabled());
  obs::set_profile_enabled(false);
  EXPECT_FALSE(obs::profile_enabled());
}

TEST_F(ProfileTest, AvailabilityIsStableAcrossQueries) {
  const bool first = obs::perf_availability().available;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(obs::perf_availability().available, first);
  }
}

// --- heap telemetry --------------------------------------------------------

TEST_F(ProfileTest, HeapHookLinkageMatchesBuildConfiguration) {
  EXPECT_EQ(obs::heap_stats().available, FPART_EXPECT_ALLOC_HOOK == 1);
}

#if FPART_EXPECT_ALLOC_HOOK
TEST_F(ProfileTest, HeapCountersTrackAllocations) {
  const obs::HeapStats before = obs::heap_stats();
  const std::uint64_t t_count_before = obs::thread_alloc_count();
  const std::uint64_t t_bytes_before = obs::thread_alloc_bytes();
  {
    auto block = std::make_unique<std::vector<char>>(1 << 16);
    (void)block;
  }
  const obs::HeapStats after = obs::heap_stats();
  EXPECT_GT(after.alloc_count, before.alloc_count);
  EXPECT_GT(after.alloc_bytes, before.alloc_bytes);
  EXPECT_GT(after.free_count, before.free_count);
  EXPECT_GT(obs::thread_alloc_count(), t_count_before);
  EXPECT_GE(obs::thread_alloc_bytes(), t_bytes_before + (1 << 16));
  // The watermark never undercuts the current live footprint.
  EXPECT_GE(after.peak_bytes, after.live_bytes);
}

TEST_F(ProfileTest, PhaseTreeAttributesAllocationsPerPhase) {
  obs::set_profile_enabled(true);
  {
    obs::ScopedPhase outer("profile_test.outer");
    {
      obs::ScopedPhase inner("profile_test.inner");
      std::vector<std::unique_ptr<int>> churn;
      for (int i = 0; i < 64; ++i) churn.push_back(std::make_unique<int>(i));
    }
  }
  const auto root = obs::PhaseForest::instance().snapshot();
  ASSERT_EQ(root->children.size(), 1u);
  const obs::PhaseNode& outer = *root->children[0];
  EXPECT_EQ(outer.name, "profile_test.outer");
  ASSERT_EQ(outer.children.size(), 1u);
  const obs::PhaseNode& inner = *outer.children[0];
  EXPECT_GE(inner.profile.alloc_count, 64u);
  // Inclusive accounting: the outer span covers the inner allocations.
  EXPECT_GE(outer.profile.alloc_count, inner.profile.alloc_count);
}
#endif  // FPART_EXPECT_ALLOC_HOOK

TEST_F(ProfileTest, PeakRssIsPositiveOnSupportedPlatforms) {
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(obs::peak_rss_bytes(), 0u);
#else
  SUCCEED();
#endif
}

// --- phase gating ----------------------------------------------------------

TEST_F(ProfileTest, ProfileAloneEnablesPhaseRecording) {
  // Neither stats nor trace on: --profile must still grow the tree.
  obs::set_profile_enabled(true);
  {
    obs::ScopedPhase phase("profile_test.solo");
  }
  const auto root = obs::PhaseForest::instance().snapshot();
  ASSERT_EQ(root->children.size(), 1u);
  EXPECT_EQ(root->children[0]->name, "profile_test.solo");
  EXPECT_EQ(root->children[0]->count, 1u);
}

TEST_F(ProfileTest, DisabledProfilingRecordsNoPhases) {
  {
    obs::ScopedPhase phase("profile_test.ghost");
  }
  const auto root = obs::PhaseForest::instance().snapshot();
  EXPECT_TRUE(root->children.empty());
}

// --- report surfacing ------------------------------------------------------

TEST_F(ProfileTest, ProfileSectionIsValidJsonInBothAvailabilityStates) {
  for (const bool forced : {false, true}) {
    obs::detail::force_perf_unavailable_for_test(forced);
    obs::JsonWriter w;
    obs::write_profile_section(w);
    const auto doc = obs::json_parse(w.str());
    ASSERT_TRUE(doc.has_value()) << "forced=" << forced;
    const obs::JsonValue* perf = doc->find("perf");
    ASSERT_NE(perf, nullptr);
    const obs::JsonValue* avail = perf->find("available");
    ASSERT_NE(avail, nullptr);
    EXPECT_TRUE(avail->is_bool());
    if (forced) {
      EXPECT_FALSE(avail->boolean);
      ASSERT_NE(perf->find("reason"), nullptr);
    }
    const obs::JsonValue* heap = doc->find("heap");
    ASSERT_NE(heap, nullptr);
    for (const char* key : {"available", "alloc_count", "alloc_bytes",
                            "free_count", "live_bytes", "peak_bytes"}) {
      EXPECT_NE(heap->find(key), nullptr) << key;
    }
    EXPECT_NE(doc->find("peak_rss_bytes"), nullptr);
  }
}

TEST_F(ProfileTest, RunReportGainsProfileSectionOnlyWhenEnabled) {
  obs::set_stats_enabled(true);
  RunMeta meta;
  meta.circuit = "t";
  meta.device = "XC3042";
  meta.method = "fpart";
  PartitionResult r;

  const auto plain = obs::json_parse(run_report_json(meta, r));
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->find("profile"), nullptr);

  obs::set_profile_enabled(true);
  const auto profiled = obs::json_parse(run_report_json(meta, r));
  ASSERT_TRUE(profiled.has_value());
  EXPECT_NE(profiled->find("profile"), nullptr);
}

TEST_F(ProfileTest, PerPhaseProfileKeysAppearUnderProfiling) {
  obs::set_profile_enabled(true);
  {
    obs::ScopedPhase phase("profile_test.report_phase");
  }
  RunMeta meta;
  PartitionResult r;
  const auto doc = obs::json_parse(run_report_json(meta, r));
  ASSERT_TRUE(doc.has_value());
  const obs::JsonValue* phases = doc->find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_TRUE(phases->is_array());
  ASSERT_FALSE(phases->array.empty());
  const obs::JsonValue* profile = phases->array[0].find("profile");
  ASSERT_NE(profile, nullptr);
  for (const char* key :
       {"cycles", "instructions", "cache_references", "cache_misses",
        "branch_misses", "alloc_count", "alloc_bytes"}) {
    EXPECT_NE(profile->find(key), nullptr) << key;
  }
}

// --- provenance ------------------------------------------------------------

TEST_F(ProfileTest, ProvenanceIsPopulatedAndSerializes) {
  const obs::BuildProvenance& p = obs::build_provenance();
  EXPECT_FALSE(p.git_sha.empty());
  EXPECT_FALSE(p.compiler.empty());
  obs::JsonWriter w;
  obs::write_provenance(w);
  const auto doc = obs::json_parse(w.str());
  ASSERT_TRUE(doc.has_value());
  for (const char* key : {"git_sha", "git_dirty", "compiler", "build_type",
                          "cxx_flags", "sanitizer"}) {
    EXPECT_NE(doc->find(key), nullptr) << key;
  }
}

TEST_F(ProfileTest, RunReportMetaCarriesProvenanceAndDropCounts) {
  obs::set_stats_enabled(true);
  RunMeta meta;
  PartitionResult r;
  const auto doc = obs::json_parse(run_report_json(meta, r));
  ASSERT_TRUE(doc.has_value());
  const obs::JsonValue* m = doc->find("meta");
  ASSERT_NE(m, nullptr);
  EXPECT_NE(m->find("provenance"), nullptr);
  EXPECT_NE(m->find("trace_dropped"), nullptr);
  EXPECT_NE(m->find("timeseries_dropped"), nullptr);
}

// --- observation-only contract ---------------------------------------------

TEST_F(ProfileTest, ProfilingChangesNoPartitioningAnswer) {
  const Device device = xilinx::by_name("XC3020");
  const Hypergraph h = mcnc::generate("c3540", device.family());
  SolveRequest req;
  req.method = Method::kFpart;

  const PartitionResult plain = solve(h, device, req);

  obs::set_profile_enabled(true);
  const PartitionResult profiled = solve(h, device, req);
  obs::set_profile_enabled(false);

  EXPECT_EQ(plain.k, profiled.k);
  EXPECT_EQ(plain.cut, profiled.cut);
  EXPECT_EQ(assignment_digest(plain.assignment),
            assignment_digest(profiled.assignment));
}

}  // namespace
}  // namespace fpart
