#include <gtest/gtest.h>

#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "netlist/mcnc.hpp"
#include "partition/verify.hpp"
#include "util/assert.hpp"

namespace fpart {
namespace {

TEST(MultistartTest, NeverWorseThanCanonicalRun) {
  for (const char* circuit : {"s9234", "s13207"}) {
    const Device d = xilinx::xc3020();
    const Hypergraph h = mcnc::generate(circuit, d.family());
    const PartitionResult canonical = FpartPartitioner().run(h, d);
    const PartitionResult multi = run_fpart_multistart(h, d, Options{}, 4);
    EXPECT_LE(multi.k, canonical.k) << circuit;
    EXPECT_TRUE(multi.feasible);
    const VerifyReport report = verify_partition(h, d, multi.assignment,
                                                 multi.k);
    EXPECT_TRUE(report.ok) << report.summary();
  }
}

TEST(MultistartTest, SingleStartEqualsCanonical) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s9234", d.family());
  const PartitionResult canonical = FpartPartitioner().run(h, d);
  const PartitionResult single = run_fpart_multistart(h, d, Options{}, 1);
  EXPECT_EQ(single.k, canonical.k);
  EXPECT_EQ(single.assignment, canonical.assignment);
}

TEST(MultistartTest, DeterministicAcrossCalls) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s5378", d.family());
  const PartitionResult a = run_fpart_multistart(h, d, Options{}, 3);
  const PartitionResult b = run_fpart_multistart(h, d, Options{}, 3);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(MultistartTest, StopsEarlyAtLowerBound) {
  // c3540 on XC3090 fits in one device: the loop must not waste starts.
  const Device d = xilinx::xc3090();
  const Hypergraph h = mcnc::generate("c3540", d.family());
  const PartitionResult r = run_fpart_multistart(h, d, Options{}, 64);
  EXPECT_EQ(r.k, 1u);
  // 64 canonical-quality runs would take far longer than one; this is a
  // smoke check that seconds stay in the single-run ballpark.
  EXPECT_LT(r.seconds, 5.0);
}

TEST(MultistartTest, RandomizedSeedsProduceFeasibleRuns) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s9234", d.family());
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    Options opt;
    opt.seed = seed;
    const PartitionResult r = FpartPartitioner(opt).run(h, d);
    EXPECT_TRUE(r.feasible) << "seed " << seed;
    EXPECT_GE(r.k, r.lower_bound);
  }
}

TEST(MultistartTest, ValidatesStartCount) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("c3540", d.family());
  EXPECT_THROW(run_fpart_multistart(h, d, Options{}, 0), PreconditionError);
}

}  // namespace
}  // namespace fpart
