#include <gtest/gtest.h>

#include <cmath>

#include "device/xilinx.hpp"
#include "hypergraph/builder.hpp"
#include "partition/partition.hpp"
#include "sanchis/move_region.hpp"
#include "util/assert.hpp"

namespace fpart {
namespace {

Hypergraph three_cells() {
  HypergraphBuilder b;
  const NodeId a = b.add_cell(1);
  const NodeId c = b.add_cell(1);
  const NodeId d = b.add_cell(1);
  b.add_net({a, c, d});
  return std::move(b).build();
}

TEST(MoveRegionTest, RemainderUnbounded) {
  const Hypergraph h = three_cells();
  Partition p(h, 3);
  const Device d = xilinx::xc3020();
  const MoveRegion r = make_move_region(p, d, 1, true, true);
  EXPECT_DOUBLE_EQ(r.lo[1], 0.0);
  EXPECT_TRUE(std::isinf(r.hi[1]));
}

TEST(MoveRegionTest, TwoBlockBoundsUsePaperValues) {
  const Hypergraph h = three_cells();
  Partition p(h, 2);
  const Device d = xilinx::xc3020();  // S_MAX = 57.6
  const MoveRegion r =
      make_move_region(p, d, 0, /*two_block_pass=*/true,
                       /*allow_size_violations=*/true);
  EXPECT_DOUBLE_EQ(r.lo[1], 0.95 * 57.6);  // ε²_min
  EXPECT_DOUBLE_EQ(r.hi[1], 1.05 * 57.6);  // ε_max
}

TEST(MoveRegionTest, MultiBlockLowerBoundLooser) {
  const Hypergraph h = three_cells();
  Partition p(h, 3);
  const Device d = xilinx::xc3020();
  const MoveRegion r =
      make_move_region(p, d, 0, /*two_block_pass=*/false, true);
  EXPECT_DOUBLE_EQ(r.lo[1], 0.30 * 57.6);  // ε*_min
  EXPECT_DOUBLE_EQ(r.lo[2], 0.30 * 57.6);
}

TEST(MoveRegionTest, StrictUpperBoundWhenViolationsDisallowed) {
  const Hypergraph h = three_cells();
  Partition p(h, 2);
  const Device d = xilinx::xc3020();
  const MoveRegion r = make_move_region(p, d, 0, true,
                                        /*allow_size_violations=*/false);
  EXPECT_DOUBLE_EQ(r.hi[1], 57.6);  // exactly S_MAX
}

TEST(MoveRegionTest, CustomParams) {
  const Hypergraph h = three_cells();
  Partition p(h, 2);
  const Device d("X", Family::kXC3000, 100, 50, 1.0);
  MoveRegionParams params;
  params.eps_min_two_block = 0.5;
  params.eps_max = 1.2;
  const MoveRegion r = make_move_region(p, d, 0, true, true, params);
  EXPECT_DOUBLE_EQ(r.lo[1], 50.0);
  EXPECT_DOUBLE_EQ(r.hi[1], 120.0);
}

TEST(MoveRegionTest, AllowsPredicates) {
  const Hypergraph h = three_cells();
  Partition p(h, 2);
  const Device d("X", Family::kXC3000, 100, 50, 1.0);
  const MoveRegion r = make_move_region(p, d, 0, true, true);
  // Non-remainder block 1: lo = 95, hi = 105.
  EXPECT_TRUE(r.allows_enter(1, 105.0));
  EXPECT_FALSE(r.allows_enter(1, 105.1));
  EXPECT_TRUE(r.allows_leave(1, 95.0));
  EXPECT_FALSE(r.allows_leave(1, 94.9));
  // Remainder: everything allowed.
  EXPECT_TRUE(r.allows_enter(0, 1e12));
  EXPECT_TRUE(r.allows_leave(0, 0.0));
}

TEST(MoveRegionTest, CoversEveryBlock) {
  const Hypergraph h = three_cells();
  Partition p(h, 3);
  const Device d = xilinx::xc3042();
  const MoveRegion r = make_move_region(p, d, 2, false, true);
  EXPECT_EQ(r.lo.size(), 3u);
  EXPECT_EQ(r.hi.size(), 3u);
  EXPECT_TRUE(std::isinf(r.hi[2]));
  EXPECT_FALSE(std::isinf(r.hi[0]));
}

TEST(MoveRegionTest, ValidatesRemainder) {
  const Hypergraph h = three_cells();
  Partition p(h, 2);
  const Device d = xilinx::xc3042();
  EXPECT_THROW(make_move_region(p, d, 5, true, true), PreconditionError);
}

}  // namespace
}  // namespace fpart
