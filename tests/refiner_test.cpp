#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "device/xilinx.hpp"
#include "hypergraph/builder.hpp"
#include "netlist/generator.hpp"
#include "partition/evaluator.hpp"
#include "sanchis/refiner.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fpart {
namespace {

// A permissive region: remainder-style freedom for every block.
MoveRegion open_region(const Partition& p) {
  MoveRegion r;
  r.lo.assign(p.num_blocks(), 0.0);
  r.hi.assign(p.num_blocks(), std::numeric_limits<double>::infinity());
  return r;
}

struct RefinerFixture {
  Hypergraph h;
  Device device;
  std::uint32_t m;

  RefinerFixture(std::uint32_t cells, std::uint32_t pads, std::uint64_t seed,
        Device d)
      : h([&] {
          GeneratorConfig config;
          config.num_cells = cells;
          config.num_terminals = pads;
          config.seed = seed;
          return generate_circuit(config);
        }()),
        device(std::move(d)),
        m(lower_bound_devices(h, device)) {}
};

TEST(RefinerTest, NeverWorsensTheSolution) {
  const RefinerFixture s(150, 20, 5, xilinx::xc3020());
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Partition p(s.h, 3);
    Rng rng(seed);
    for (NodeId v = 0; v < s.h.num_nodes(); ++v) {
      if (!s.h.is_terminal(v)) {
        p.move(v, static_cast<BlockId>(rng.index(3)));
      }
    }
    const Evaluator eval(s.device, CostParams{}, s.m);
    const SolutionEval before = eval.evaluate(p, 0);
    MultiwayRefiner refiner(p, eval, 0);
    const std::vector<BlockId> blocks{0, 1, 2};
    const SolutionEval after = refiner.improve(blocks, open_region(p));
    EXPECT_FALSE(before.better_than(after)) << "seed " << seed;
    // Returned eval reflects the actual final state.
    const SolutionEval check = eval.evaluate(p, 0);
    EXPECT_FALSE(check.better_than(after));
    EXPECT_FALSE(after.better_than(check));
    p.check_consistency();
  }
}

TEST(RefinerTest, ReducesCutFromRandomStart) {
  const RefinerFixture s(200, 20, 7, xilinx::xc3042());
  Partition p(s.h, 2);
  Rng rng(11);
  for (NodeId v = 0; v < s.h.num_nodes(); ++v) {
    if (!s.h.is_terminal(v)) p.move(v, static_cast<BlockId>(rng.index(2)));
  }
  const auto cut_before = p.cut_size();
  const Evaluator eval(s.device, CostParams{}, s.m);
  MultiwayRefiner refiner(p, eval, 0);
  const std::vector<BlockId> blocks{0, 1};
  refiner.improve(blocks, open_region(p));
  // A random split of a locality-rich circuit always has slack.
  EXPECT_LT(p.cut_size(), cut_before);
}

TEST(RefinerTest, RespectsMoveRegion) {
  const RefinerFixture s(150, 15, 13, xilinx::xc3042());
  Partition p(s.h, 3);
  Rng rng(13);
  for (NodeId v = 0; v < s.h.num_nodes(); ++v) {
    if (!s.h.is_terminal(v)) p.move(v, static_cast<BlockId>(rng.index(3)));
  }
  // Freeze blocks 1 and 2 within ±2 cells of their current sizes.
  MoveRegion region = open_region(p);
  for (BlockId b = 1; b <= 2; ++b) {
    region.lo[b] = static_cast<double>(p.block_size(b)) - 2.0;
    region.hi[b] = static_cast<double>(p.block_size(b)) + 2.0;
  }
  const auto size1 = p.block_size(1);
  const auto size2 = p.block_size(2);
  const Evaluator eval(s.device, CostParams{}, s.m);
  MultiwayRefiner refiner(p, eval, 0);
  const std::vector<BlockId> blocks{0, 1, 2};
  refiner.improve(blocks, region);
  EXPECT_GE(p.block_size(1) + 2, size1);
  EXPECT_LE(p.block_size(1), size1 + 2);
  EXPECT_GE(p.block_size(2) + 2, size2);
  EXPECT_LE(p.block_size(2), size2 + 2);
}

TEST(RefinerTest, OnlyActiveBlocksAreTouched) {
  const RefinerFixture s(120, 12, 17, xilinx::xc3042());
  Partition p(s.h, 3);
  Rng rng(17);
  for (NodeId v = 0; v < s.h.num_nodes(); ++v) {
    if (!s.h.is_terminal(v)) p.move(v, static_cast<BlockId>(rng.index(3)));
  }
  const auto frozen = p.block_nodes(2);
  const Evaluator eval(s.device, CostParams{}, s.m);
  MultiwayRefiner refiner(p, eval, 0);
  const std::vector<BlockId> blocks{0, 1};
  refiner.improve(blocks, open_region(p));
  EXPECT_EQ(p.block_nodes(2), frozen);
}

TEST(RefinerTest, DeterministicAcrossRuns) {
  const RefinerFixture s(150, 20, 19, xilinx::xc3020());
  auto run_once = [&] {
    Partition p(s.h, 3);
    Rng rng(19);
    for (NodeId v = 0; v < s.h.num_nodes(); ++v) {
      if (!s.h.is_terminal(v)) {
        p.move(v, static_cast<BlockId>(rng.index(3)));
      }
    }
    const Evaluator eval(s.device, CostParams{}, s.m);
    MultiwayRefiner refiner(p, eval, 0);
    const std::vector<BlockId> blocks{0, 1, 2};
    refiner.improve(blocks, open_region(p));
    return p.snapshot();
  };
  EXPECT_EQ(run_once().assignment, run_once().assignment);
}

TEST(RefinerTest, StackRestartsNeverHurt) {
  const RefinerFixture s(150, 20, 23, xilinx::xc3020());
  auto run_with_depth = [&](std::size_t depth) {
    Partition p(s.h, 3);
    Rng rng(23);
    for (NodeId v = 0; v < s.h.num_nodes(); ++v) {
      if (!s.h.is_terminal(v)) {
        p.move(v, static_cast<BlockId>(rng.index(3)));
      }
    }
    const Evaluator eval(s.device, CostParams{}, s.m);
    RefinerConfig config;
    config.stack_depth = depth;
    MultiwayRefiner refiner(p, eval, 0, config);
    const std::vector<BlockId> blocks{0, 1, 2};
    return refiner.improve(blocks, open_region(p));
  };
  const SolutionEval without = run_with_depth(0);
  const SolutionEval with = run_with_depth(4);
  // With restarts the result is at least as good.
  EXPECT_FALSE(without.better_than(with));
}

TEST(RefinerTest, StatsAreAccounted) {
  const RefinerFixture s(100, 10, 29, xilinx::xc3042());
  Partition p(s.h, 2);
  Rng rng(29);
  for (NodeId v = 0; v < s.h.num_nodes(); ++v) {
    if (!s.h.is_terminal(v)) p.move(v, static_cast<BlockId>(rng.index(2)));
  }
  const Evaluator eval(s.device, CostParams{}, s.m);
  RefinerConfig config;
  config.stack_depth = 2;
  MultiwayRefiner refiner(p, eval, 0, config);
  RefineStats stats;
  const std::vector<BlockId> blocks{0, 1};
  refiner.improve(blocks, open_region(p), &stats);
  EXPECT_GE(stats.passes, 1);
  EXPECT_GT(stats.moves, 0u);
  EXPECT_LE(stats.restarts, 2u * 2u);  // at most 2*D_stack
}

TEST(RefinerTest, MaxMovesPerPassCap) {
  const RefinerFixture s(100, 10, 31, xilinx::xc3042());
  Partition p(s.h, 2);
  Rng rng(31);
  for (NodeId v = 0; v < s.h.num_nodes(); ++v) {
    if (!s.h.is_terminal(v)) p.move(v, static_cast<BlockId>(rng.index(2)));
  }
  const Evaluator eval(s.device, CostParams{}, s.m);
  RefinerConfig config;
  config.max_passes = 1;
  config.stack_depth = 0;
  config.max_moves_per_pass = 5;
  MultiwayRefiner refiner(p, eval, 0, config);
  RefineStats stats;
  const std::vector<BlockId> blocks{0, 1};
  refiner.improve(blocks, open_region(p), &stats);
  EXPECT_LE(stats.moves, 5u);
}

TEST(RefinerTest, ValidatesInputs) {
  const RefinerFixture s(40, 5, 37, xilinx::xc3042());
  Partition p(s.h, 2);
  const Evaluator eval(s.device, CostParams{}, s.m);
  MultiwayRefiner refiner(p, eval, 0);
  const MoveRegion region = open_region(p);
  EXPECT_THROW(refiner.improve(std::vector<BlockId>{0}, region),
               PreconditionError);
  EXPECT_THROW(refiner.improve(std::vector<BlockId>{0, 0}, region),
               PreconditionError);
  EXPECT_THROW(refiner.improve(std::vector<BlockId>{0, 9}, region),
               PreconditionError);
  MoveRegion bad;
  bad.lo.assign(1, 0.0);
  bad.hi.assign(1, 0.0);
  EXPECT_THROW(refiner.improve(std::vector<BlockId>{0, 1}, bad),
               PreconditionError);
}

TEST(RefinerTest, GathersScatteredModuleIntoOneBlock) {
  // Craft a circuit with two clear modules; scatter one module across
  // blocks and check the refiner reunifies it (cut -> 1 bridge net).
  HypergraphBuilder b;
  std::vector<NodeId> c;
  for (int i = 0; i < 12; ++i) c.push_back(b.add_cell(1));
  for (int m = 0; m < 2; ++m) {
    const int base = m * 6;
    for (int i = 0; i < 5; ++i) b.add_net({c[base + i], c[base + i + 1]});
    b.add_net({c[base], c[base + 3]});
  }
  b.add_net({c[0], c[6]});  // bridge
  const Hypergraph h = std::move(b).build();
  const Device d("X", Family::kXC3000, 8, 16, 1.0);

  Partition p(h, 2);
  // Scatter: odd cells of module A to block 1, module B split too.
  for (int i = 0; i < 12; i += 2) p.move(c[i], 1);
  const Evaluator eval(d, CostParams{}, 2);
  MultiwayRefiner refiner(p, eval, 0);
  const std::vector<BlockId> blocks{0, 1};
  MoveRegion region = open_region(p);
  region.lo[1] = 4.0;  // keep block 1 alive
  region.hi[1] = 8.0;
  refiner.improve(blocks, region);
  EXPECT_EQ(p.cut_size(), 1u);
}

}  // namespace
}  // namespace fpart
