#include <gtest/gtest.h>

#include <vector>

#include "hypergraph/builder.hpp"
#include "netlist/generator.hpp"
#include "netlist/mcnc.hpp"
#include "netlist/rent.hpp"
#include "util/assert.hpp"

namespace fpart {
namespace {

// A long chain: every region of any size has at most 2 boundary nets, so
// the fitted exponent must be near zero.
Hypergraph chain(std::size_t n) {
  HypergraphBuilder b;
  std::vector<NodeId> c;
  for (std::size_t i = 0; i < n; ++i) c.push_back(b.add_cell(1));
  for (std::size_t i = 0; i + 1 < n; ++i) b.add_net({c[i], c[i + 1]});
  return std::move(b).build();
}

// A locality-free random graph: cuts scale with region size, exponent
// near 1.
Hypergraph random_soup(std::size_t n, std::uint64_t seed) {
  GeneratorConfig config;
  config.num_cells = static_cast<std::uint32_t>(n);
  config.num_terminals = 4;
  config.locality_decay = 0.999;  // ~uniform net scope
  config.leaf_size = static_cast<std::uint32_t>(n);  // one flat level
  config.seed = seed;
  return generate_circuit(config);
}

TEST(RentTest, ChainHasNearZeroExponent) {
  const RentEstimate r = estimate_rent(chain(512));
  EXPECT_LT(r.exponent, 0.25);
  EXPECT_GE(r.exponent, -0.1);
  EXPECT_FALSE(r.samples.empty());
}

TEST(RentTest, RandomSoupHasHighExponent) {
  // Sparse locality-free graphs measure ~0.65+ here (not 1.0: FM still
  // finds the modest cuts a sparse random graph admits, and small
  // regions saturate). The point is the clear gap above the local
  // circuits (see OrderingChainVsLocalVsSoup).
  const RentEstimate r = estimate_rent(random_soup(512, 3));
  EXPECT_GT(r.exponent, 0.55);
}

TEST(RentTest, GeneratedCircuitsSitInTheRealisticBand) {
  // The synthetic MCNC stand-ins must exhibit Rent locality in the
  // empirical range of mapped circuits (~0.45-0.85) — far from both a
  // chain and a random soup. This is the load-bearing realism check for
  // the workload substitution (DESIGN.md §2).
  for (const char* circuit : {"c3540", "s9234", "s13207"}) {
    const Hypergraph h = mcnc::generate(circuit, Family::kXC3000);
    const RentEstimate r = estimate_rent(h);
    EXPECT_GT(r.exponent, 0.35) << circuit;
    EXPECT_LT(r.exponent, 0.9) << circuit;
  }
}

TEST(RentTest, OrderingChainVsLocalVsSoup) {
  const double p_chain = estimate_rent(chain(400)).exponent;
  const Hypergraph local = mcnc::generate("s9234", Family::kXC3000);
  const double p_local = estimate_rent(local).exponent;
  const double p_soup = estimate_rent(random_soup(400, 5)).exponent;
  EXPECT_LT(p_chain, p_local);
  EXPECT_LT(p_local, p_soup);
}

TEST(RentTest, DeterministicInSeed) {
  const Hypergraph h = mcnc::generate("c3540", Family::kXC3000);
  const RentEstimate a = estimate_rent(h);
  const RentEstimate b = estimate_rent(h);
  EXPECT_DOUBLE_EQ(a.exponent, b.exponent);
  EXPECT_EQ(a.samples.size(), b.samples.size());
}

TEST(RentTest, TinyCircuitsReturnGracefully) {
  const RentEstimate r = estimate_rent(chain(3));
  EXPECT_DOUBLE_EQ(r.exponent, 0.0);
  EXPECT_TRUE(r.samples.empty());
  RentConfig bad;
  bad.min_region = 1;
  EXPECT_THROW(estimate_rent(chain(10), bad), PreconditionError);
}

TEST(RentTest, SamplesCoverMultipleLevels) {
  const Hypergraph h = mcnc::generate("s9234", Family::kXC3000);
  const RentEstimate r = estimate_rent(h);
  std::uint32_t max_level = 0;
  for (const RentSample& s : r.samples) {
    max_level = std::max(max_level, s.level);
  }
  EXPECT_GE(max_level, 4u);
  EXPECT_GT(r.coefficient, 0.0);
}

}  // namespace
}  // namespace fpart
