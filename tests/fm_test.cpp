#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "fm/fm_bipartitioner.hpp"
#include "hypergraph/builder.hpp"
#include "netlist/generator.hpp"
#include "partition/partition.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fpart {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Two 4-cell cliques joined by one bridge net: optimal bisection cut = 1.
Hypergraph two_cliques() {
  HypergraphBuilder b;
  std::vector<NodeId> c;
  for (int i = 0; i < 8; ++i) c.push_back(b.add_cell(1));
  for (int m = 0; m < 2; ++m) {
    const int base = m * 4;
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        b.add_net({c[base + i], c[base + j]});
      }
    }
  }
  b.add_net({c[0], c[4]});
  return std::move(b).build();
}

TEST(FmTest, FindsOptimalCutOnTwoCliques) {
  const Hypergraph h = two_cliques();
  Partition p(h, 2);
  // Bad start: both cliques split across the blocks.
  p.move(0, 1);
  p.move(1, 1);
  p.move(4, 1);
  p.move(5, 1);
  // block1 = {0,1,4,5}, block0 = {2,3,6,7}.
  const auto initial_cut = p.cut_size();
  ASSERT_GT(initial_cut, 1u);

  // Windows must leave room for one-cell-at-a-time transit (classic FM
  // tolerates ±1 cell of imbalance mid-pass).
  FmBipartitioner fm(p, 0, 1);
  const FmResult r = fm.run(SizeWindow{3, 5}, SizeWindow{3, 5});
  EXPECT_EQ(r.initial_cut, initial_cut);
  EXPECT_EQ(r.final_cut, 1u);
  EXPECT_EQ(p.cut_size(), 1u);
  EXPECT_EQ(p.block_size(0), 4u);
  EXPECT_EQ(p.block_size(1), 4u);
}

TEST(FmTest, NeverIncreasesCut) {
  GeneratorConfig config;
  config.num_cells = 120;
  config.num_terminals = 12;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    config.seed = seed;
    const Hypergraph h = generate_circuit(config);
    Partition p(h, 2);
    Rng rng(seed);
    for (NodeId v = 0; v < h.num_nodes(); ++v) {
      if (!h.is_terminal(v)) {
        p.move(v, static_cast<BlockId>(rng.index(2)));
      }
    }
    const auto before = p.cut_size();
    FmBipartitioner fm(p, 0, 1);
    const FmResult r = fm.run(SizeWindow{40, 80}, SizeWindow{40, 80});
    EXPECT_LE(r.final_cut, before) << "seed " << seed;
    EXPECT_EQ(r.final_cut, p.cut_size());
    p.check_consistency();
  }
}

TEST(FmTest, RespectsSizeWindows) {
  GeneratorConfig config;
  config.num_cells = 100;
  config.num_terminals = 8;
  config.seed = 9;
  const Hypergraph h = generate_circuit(config);
  Partition p(h, 2);
  Rng rng(3);
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) p.move(v, static_cast<BlockId>(rng.index(2)));
  }
  FmBipartitioner fm(p, 0, 1);
  fm.run(SizeWindow{35, 65}, SizeWindow{35, 65});
  EXPECT_GE(p.block_size(0), 35u);
  EXPECT_LE(p.block_size(0), 65u);
  EXPECT_GE(p.block_size(1), 35u);
  EXPECT_LE(p.block_size(1), 65u);
}

TEST(FmTest, UnboundedWindowsAllowDrainToZeroCut) {
  const Hypergraph h = two_cliques();
  Partition p(h, 2);
  p.move(4, 1);  // lone clique-B cell in block 1
  FmBipartitioner fm(p, 0, 1);
  fm.run(SizeWindow{0, kInf}, SizeWindow{0, kInf});
  EXPECT_EQ(p.cut_size(), 0u);
}

TEST(FmTest, MovesBoundedByCellCountPerPass) {
  const Hypergraph h = two_cliques();
  Partition p(h, 2);
  for (NodeId v = 4; v < 8; ++v) p.move(v, 1);
  FmConfig config;
  config.max_passes = 1;
  FmBipartitioner fm(p, 0, 1, config);
  const FmResult r = fm.run(SizeWindow{0, kInf}, SizeWindow{0, kInf});
  EXPECT_LE(r.total_moves, h.num_interior());
}

TEST(FmTest, ValidatesBlockIds) {
  const Hypergraph h = two_cliques();
  Partition p(h, 2);
  EXPECT_THROW(FmBipartitioner(p, 0, 0), PreconditionError);
  EXPECT_THROW(FmBipartitioner(p, 0, 5), PreconditionError);
}

TEST(FmTest, DoesNotDisturbOtherBlocks) {
  GeneratorConfig config;
  config.num_cells = 90;
  config.num_terminals = 9;
  config.seed = 17;
  const Hypergraph h = generate_circuit(config);
  Partition p(h, 3);
  Rng rng(17);
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) p.move(v, static_cast<BlockId>(rng.index(3)));
  }
  const auto frozen = p.block_nodes(0);
  FmBipartitioner fm(p, 1, 2);
  fm.run(SizeWindow{0, kInf}, SizeWindow{0, kInf});
  EXPECT_EQ(p.block_nodes(0), frozen);
  p.check_consistency();
}

TEST(FmTest, PassCountBounded) {
  GeneratorConfig config;
  config.num_cells = 60;
  config.num_terminals = 6;
  config.seed = 23;
  const Hypergraph h = generate_circuit(config);
  Partition p(h, 2);
  Rng rng(23);
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) p.move(v, static_cast<BlockId>(rng.index(2)));
  }
  FmConfig config_fm;
  config_fm.max_passes = 3;
  FmBipartitioner fm(p, 0, 1, config_fm);
  const FmResult r = fm.run(SizeWindow{0, kInf}, SizeWindow{0, kInf});
  EXPECT_LE(r.passes, 3);
  EXPECT_GE(r.passes, 1);
}

TEST(FmTest, TightWindowsFreezeEverything) {
  const Hypergraph h = two_cliques();
  Partition p(h, 2);
  for (NodeId v = 4; v < 8; ++v) p.move(v, 1);
  const auto before = p.snapshot();
  // Exact-size windows: no move can keep both sides legal.
  FmBipartitioner fm(p, 0, 1);
  const FmResult r = fm.run(SizeWindow{4, 4}, SizeWindow{4, 4});
  EXPECT_EQ(r.total_moves, 0u);
  EXPECT_EQ(p.snapshot().assignment, before.assignment);
}

}  // namespace
}  // namespace fpart
