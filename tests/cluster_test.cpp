#include <gtest/gtest.h>

#include <vector>

#include "cluster/coarsen.hpp"
#include "core/clustered.hpp"
#include "device/xilinx.hpp"
#include "hypergraph/builder.hpp"
#include "netlist/mcnc.hpp"
#include "partition/partition.hpp"
#include "partition/verify.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fpart {
namespace {

TEST(CoarsenTest, MatchesStronglyConnectedPairs) {
  // Two cells sharing three 2-pin nets must merge; the weakly attached
  // third cell stays separate when the size cap forbids a triple.
  HypergraphBuilder b;
  const NodeId x = b.add_cell(2, "x");
  const NodeId y = b.add_cell(2, "y");
  const NodeId z = b.add_cell(2, "z");
  b.add_net({x, y});
  b.add_net({x, y});
  b.add_net({x, y});
  b.add_net({y, z});
  const Hypergraph h = std::move(b).build();
  CoarsenConfig config;
  config.max_cluster_size = 4;
  const Coarsening c = coarsen(h, config);
  EXPECT_EQ(c.coarse.num_interior(), 2u);
  EXPECT_EQ(c.fine_to_coarse[x], c.fine_to_coarse[y]);
  EXPECT_NE(c.fine_to_coarse[x], c.fine_to_coarse[z]);
  EXPECT_EQ(c.coarse.node_size(c.fine_to_coarse[x]), 4u);
}

TEST(CoarsenTest, PreservesTotalsAndTerminals) {
  const Hypergraph h = mcnc::generate("s5378", Family::kXC3000);
  const Coarsening c = coarsen(h);
  c.coarse.validate();
  EXPECT_EQ(c.coarse.total_size(), h.total_size());
  EXPECT_EQ(c.coarse.num_terminals(), h.num_terminals());
  // Matching at most halves the interior count.
  EXPECT_GE(c.coarse.num_interior(), h.num_interior() / 2);
  EXPECT_LT(c.coarse.num_interior(), h.num_interior());
}

TEST(CoarsenTest, RespectsSizeCap) {
  HypergraphBuilder b;
  const NodeId x = b.add_cell(5);
  const NodeId y = b.add_cell(5);
  b.add_net({x, y});
  const Hypergraph h = std::move(b).build();
  CoarsenConfig config;
  config.max_cluster_size = 8;  // 5+5 > 8: no merge allowed
  const Coarsening c = coarsen(h, config);
  EXPECT_EQ(c.coarse.num_interior(), 2u);
}

TEST(CoarsenTest, DropsFullyAbsorbedNets) {
  HypergraphBuilder b;
  const NodeId x = b.add_cell(1);
  const NodeId y = b.add_cell(1);
  b.add_net({x, y});
  b.add_net({x, y});
  const Hypergraph h = std::move(b).build();
  const Coarsening c = coarsen(h);
  EXPECT_EQ(c.coarse.num_interior(), 1u);
  EXPECT_EQ(c.coarse.num_nets(), 0u);  // both nets became internal
}

TEST(CoarsenTest, KeepsPadNetsEvenWhenAbsorbed) {
  HypergraphBuilder b;
  const NodeId x = b.add_cell(1);
  const NodeId y = b.add_cell(1);
  const NodeId pad = b.add_terminal();
  b.add_net({x, y});
  b.add_net({x, y, pad});
  const Hypergraph h = std::move(b).build();
  const Coarsening c = coarsen(h);
  EXPECT_EQ(c.coarse.num_interior(), 1u);
  // The pad net survives (the device still needs that I/O pin).
  EXPECT_EQ(c.coarse.num_nets(), 1u);
  EXPECT_EQ(c.coarse.net_terminal_count(0), 1u);
}

TEST(CoarsenTest, Deterministic) {
  const Hypergraph h = mcnc::generate("s9234", Family::kXC3000);
  const Coarsening a = coarsen(h);
  const Coarsening b = coarsen(h);
  EXPECT_EQ(a.fine_to_coarse, b.fine_to_coarse);
  EXPECT_EQ(a.coarse.num_nets(), b.coarse.num_nets());
}

// The load-bearing invariant: a projected coarse partition has exactly
// the coarse partition's block sizes, pin demands and cutset.
TEST(CoarsenTest, ProjectionPreservesAllBlockStats) {
  const Hypergraph h = mcnc::generate("s9234", Family::kXC3000);
  const Coarsening c = coarsen(h);

  const std::uint32_t k = 4;
  Partition coarse_p(c.coarse, k);
  Rng rng(7);
  std::vector<BlockId> coarse_assignment(c.coarse.num_nodes(),
                                         kInvalidBlock);
  for (NodeId v = 0; v < c.coarse.num_nodes(); ++v) {
    if (c.coarse.is_terminal(v)) continue;
    const auto b = static_cast<BlockId>(rng.index(k));
    coarse_p.move(v, b);
    coarse_assignment[v] = b;
  }

  const std::vector<BlockId> fine_assignment =
      c.project(coarse_assignment);
  Partition fine_p(h, k);
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) fine_p.move(v, fine_assignment[v]);
  }

  EXPECT_EQ(fine_p.cut_size(), coarse_p.cut_size());
  for (BlockId b = 0; b < k; ++b) {
    EXPECT_EQ(fine_p.block_size(b), coarse_p.block_size(b));
    EXPECT_EQ(fine_p.block_pins(b), coarse_p.block_pins(b));
    EXPECT_EQ(fine_p.block_external_pins(b),
              coarse_p.block_external_pins(b));
  }
}

TEST(CoarsenTest, ProjectValidation) {
  const Hypergraph h = mcnc::generate("c3540", Family::kXC3000);
  const Coarsening c = coarsen(h);
  const std::vector<BlockId> wrong(3, 0);
  EXPECT_THROW(c.project(wrong), PreconditionError);
}

TEST(ClusteredFpartTest, FeasibleAndNearLowerBound) {
  for (const char* circuit : {"c3540", "s9234", "s13207"}) {
    const Device d = xilinx::xc3042();
    const Hypergraph h = mcnc::generate(circuit, d.family());
    const PartitionResult r = ClusteredFpartPartitioner().run(h, d);
    EXPECT_TRUE(r.feasible) << circuit;
    EXPECT_GE(r.k, r.lower_bound);
    EXPECT_LE(r.k, r.lower_bound + r.lower_bound / 4 + 2) << circuit;
    const VerifyReport report = verify_partition(h, d, r.assignment, r.k);
    EXPECT_TRUE(report.ok) << circuit << ": " << report.summary();
  }
}

TEST(ClusteredFpartTest, DeterministicAcrossRuns) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s9234", d.family());
  const PartitionResult a = ClusteredFpartPartitioner().run(h, d);
  const PartitionResult b = ClusteredFpartPartitioner().run(h, d);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(ClusteredFpartTest, RefinePassesOffStillFeasible) {
  const Device d = xilinx::xc3020();
  const Hypergraph h = mcnc::generate("s5378", d.family());
  ClusteredOptions options;
  options.refine_passes = 0;
  const PartitionResult r = ClusteredFpartPartitioner(options).run(h, d);
  EXPECT_TRUE(r.feasible);
}

TEST(ClusteredFpartTest, MultilevelVCycle) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s13207", d.family());
  for (std::uint32_t levels : {1u, 2u, 3u}) {
    ClusteredOptions options;
    options.levels = levels;
    const PartitionResult r = ClusteredFpartPartitioner(options).run(h, d);
    EXPECT_TRUE(r.feasible) << "levels " << levels;
    EXPECT_GE(r.k, r.lower_bound);
    EXPECT_LE(r.k, r.lower_bound + 2) << "levels " << levels;
    const VerifyReport report = verify_partition(h, d, r.assignment, r.k);
    EXPECT_TRUE(report.ok) << report.summary();
  }
}

TEST(ClusteredFpartTest, RefinementRingClosesForLargeK) {
  // Regression: for k > 16 the pairwise refinement schedule walked
  // (0,1), (1,2), ..., (k-2,k-1) and never refined the wrap-around pair
  // (k-1, 0). A cell in the last block whose only improving move is
  // into block 0 was stuck forever. The ring is closed now.
  constexpr std::uint32_t kBlocks = 18;  // > 16 engages the ring path
  HypergraphBuilder b;
  std::vector<NodeId> anchor(kBlocks);
  std::vector<BlockId> assignment;
  for (std::uint32_t g = 0; g < kBlocks; ++g) {
    const NodeId u = b.add_cell(1);
    const NodeId v = b.add_cell(1);
    anchor[g] = u;
    b.add_net({u, v});  // intra-block net keeps the pair together
    assignment.push_back(static_cast<BlockId>(g));
    assignment.push_back(static_cast<BlockId>(g));
  }
  // One stray cell in the LAST block, tied to block 0: moving it to
  // block 0 is the only gain-positive move anywhere.
  const NodeId stray = b.add_cell(1);
  b.add_net({stray, anchor[0]});
  assignment.push_back(static_cast<BlockId>(kBlocks - 1));
  const Hypergraph h = std::move(b).build();

  const Device device("ring-test", Family::kXC3000, /*s_datasheet=*/4,
                      /*t_max=*/50, /*fill=*/1.0);
  Partition p(h, assignment, kBlocks);
  ASSERT_EQ(p.cut_size(), 1u);

  ClusteredOptions options;
  detail::clustered_refine_level(p, device, lower_bound_devices(h, device),
                                 options);
  EXPECT_EQ(p.cut_size(), 0u)
      << "wrap-around pair (k-1, 0) was never refined";
  const auto snap = p.snapshot();
  EXPECT_EQ(snap.assignment[stray], 0u);
  const VerifyReport report =
      verify_partition(h, device, snap.assignment, kBlocks);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(ClusteredFpartTest, DeepLevelsStopAtStall) {
  // Absurd level count: the descent must stop when matching stalls or
  // the circuit becomes tiny, not loop or crash.
  const Device d = xilinx::xc3090();
  const Hypergraph h = mcnc::generate("c3540", d.family());
  ClusteredOptions options;
  options.levels = 30;
  const PartitionResult r = ClusteredFpartPartitioner(options).run(h, d);
  EXPECT_TRUE(r.feasible);
  EXPECT_THROW(
      ClusteredFpartPartitioner([] {
        ClusteredOptions bad;
        bad.levels = 0;
        return bad;
      }())
          .run(h, d),
      PreconditionError);
}

}  // namespace
}  // namespace fpart
