// Fixed-seed sweep of the differential fuzz harness (src/fuzz): 200
// random circuits through every engine variant with verify + replay +
// metamorphic cross-checks, plus the structure-aware malformed-input
// sweep and unit checks of the mutator's reject contract.
#include <gtest/gtest.h>

#include <sstream>

#include "fuzz/batch_mutate.hpp"
#include "fuzz/diff_fuzz.hpp"
#include "fuzz/hgr_mutate.hpp"
#include "netlist/hgr_io.hpp"
#include "runtime/batch.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fpart::fuzz {
namespace {

std::string failure_text(const std::vector<std::string>& disagreements) {
  std::string out;
  for (const std::string& d : disagreements) out += d + "\n";
  return out;
}

// --- the differential sweep ----------------------------------------------

class DiffFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DiffFuzz, AllEnginesAgreeOnAllOracles) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const std::vector<std::string> disagreements = run_diff_case(seed);
  EXPECT_TRUE(disagreements.empty()) << failure_text(disagreements);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffFuzz, ::testing::Range(0, 200));

// --- the malformed-input sweep -------------------------------------------

class MutationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MutationFuzz, MalformedInputsAreTypedRejections) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const std::vector<std::string> disagreements = run_mutation_case(seed);
  EXPECT_TRUE(disagreements.empty()) << failure_text(disagreements);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz, ::testing::Range(0, 48));

// --- the malformed batch-file sweep ----------------------------------------

class BatchMutationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BatchMutationFuzz, BatchRejectMatrixHolds) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const std::vector<std::string> disagreements =
      run_batch_mutation_case(seed);
  EXPECT_TRUE(disagreements.empty()) << failure_text(disagreements);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchMutationFuzz, ::testing::Range(0, 48));

// --- mutator unit checks --------------------------------------------------

std::string small_valid_hgr() {
  std::ostringstream os;
  os << "% fpart-hgr v1 fpart-terminals\n"
     << "3 4 10\n"
     << "1 2\n"
     << "2 3 4\n"
     << "1 3\n"
     << "2\n1\n1\n0\n";
  return os.str();
}

TEST(HgrMutateTest, EveryTargetedOperatorProducesAParseError) {
  const std::string valid = small_valid_hgr();
  {
    // The base document really is valid.
    std::stringstream ss(valid);
    EXPECT_NO_THROW(read_hgr(ss));
  }
  for (std::size_t op = 0; op < num_mutation_ops(); ++op) {
    Rng rng(op * 17 + 5);
    const HgrMutation m = mutate_hgr_op(valid, op, rng);
    if (!m.must_reject) continue;
    std::stringstream ss(m.text);
    EXPECT_THROW(read_hgr(ss), ParseError)
        << "operator " << m.op << " produced:\n" << m.text;
  }
}

TEST(HgrMutateTest, DeterministicForEqualSeeds) {
  const std::string valid = small_valid_hgr();
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 32; ++i) {
    const HgrMutation ma = mutate_hgr(valid, a);
    const HgrMutation mb = mutate_hgr(valid, b);
    EXPECT_EQ(ma.text, mb.text);
    EXPECT_EQ(ma.op, mb.op);
    EXPECT_EQ(ma.must_reject, mb.must_reject);
  }
}

TEST(HgrMutateTest, MutantsAlwaysDifferOrStayParseable) {
  // A mutation either changes the document or (for degenerate chaos
  // picks like truncating at the very end) leaves it valid.
  const std::string valid = small_valid_hgr();
  Rng rng(7);
  for (int i = 0; i < 64; ++i) {
    const HgrMutation m = mutate_hgr(valid, rng);
    if (m.text == valid) {
      std::stringstream ss(m.text);
      EXPECT_NO_THROW(read_hgr(ss));
    }
  }
}

std::string small_valid_batch() {
  return "# fuzz seed corpus\n"
         "a.hgr XC3020 seed=1\n"
         "b.hgr XC3042 id=left fill=0.85\n"
         "c.hgr XC3030 id=right method=kwayx\n";
}

TEST(BatchMutateTest, EveryTargetedOperatorRejectsWithItsRecordedKind) {
  const std::string valid = small_valid_batch();
  // The base document really is valid.
  EXPECT_NO_THROW(runtime::parse_batch_text(valid, "corpus"));
  for (std::size_t op = 0; op < num_batch_mutation_ops(); ++op) {
    Rng rng(op * 31 + 3);
    const BatchMutation m = mutate_batch_op(valid, op, rng);
    if (!m.must_reject) continue;
    try {
      runtime::parse_batch_text(m.text, "corpus");
      ADD_FAILURE() << "operator " << m.op << " silently accepted:\n"
                    << m.text;
    } catch (const PreconditionError& e) {
      EXPECT_EQ(m.expected_kind, error_kind(e))
          << "operator " << m.op << " produced:\n" << m.text;
    }
  }
}

TEST(BatchMutateTest, DeterministicForEqualSeeds) {
  const std::string valid = small_valid_batch();
  Rng a(41);
  Rng b(41);
  for (int i = 0; i < 32; ++i) {
    const BatchMutation ma = mutate_batch(valid, a);
    const BatchMutation mb = mutate_batch(valid, b);
    EXPECT_EQ(ma.text, mb.text);
    EXPECT_EQ(ma.op, mb.op);
    EXPECT_EQ(ma.must_reject, mb.must_reject);
    EXPECT_EQ(ma.expected_kind, mb.expected_kind);
  }
}

TEST(DiffInstanceTest, DeterministicAndInBounds) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const DiffInstance a = make_diff_instance(seed);
    const DiffInstance b = make_diff_instance(seed);
    EXPECT_EQ(a.h.structural_digest(), b.h.structural_digest());
    EXPECT_EQ(a.device.s_datasheet(), b.device.s_datasheet());
    EXPECT_GE(a.h.num_interior(), 24u);
    EXPECT_LE(a.h.num_interior(), 140u);
    EXPECT_GE(a.device.s_datasheet(), a.h.max_node_size() + 4);
  }
}

}  // namespace
}  // namespace fpart::fuzz
