#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "device/xilinx.hpp"
#include "netlist/hgr_io.hpp"
#include "netlist/mcnc.hpp"
#include "obs/json.hpp"
#include "runtime/batch.hpp"
#include "util/assert.hpp"

namespace fpart::runtime {
namespace {

class BatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each case as its own process: paths must be unique per
    // test or concurrent cases race on /tmp.
    prefix_ = std::string("/tmp/fpart_batch_test_") +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()
              + "_";
    hgr_path_ = prefix_ + "c3540.hgr";
    write_hgr_file(hgr_path_,
                   mcnc::generate("c3540", Family::kXC3000));
  }
  void TearDown() override {
    std::remove(hgr_path_.c_str());
    for (const std::string& p : temp_files_) std::remove(p.c_str());
  }

  std::string write_temp(const std::string& name,
                         const std::string& content) {
    const std::string path = prefix_ + name;
    std::ofstream os(path);
    os << content;
    temp_files_.push_back(path);
    return path;
  }

  std::string prefix_;

  std::string hgr_path_;
  std::vector<std::string> temp_files_;
};

TEST_F(BatchTest, ParsesJobsCommentsAndDefaults) {
  const std::string path = write_temp("parse.txt",
                                      "# header comment\n"
                                      "\n"
                                      "a.hgr XC3020\n"
                                      "b.hgr XC3042 id=big portfolio=4 "
                                      "seed=9 method=kwayx fill=0.8  # eol\n");
  const std::vector<JobSpec> jobs = parse_batch_file(path);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].id, "job0");
  EXPECT_EQ(jobs[0].input, "a.hgr");
  EXPECT_EQ(jobs[0].device, "XC3020");
  EXPECT_EQ(jobs[0].method, "fpart");
  EXPECT_EQ(jobs[0].portfolio, 1u);
  EXPECT_EQ(jobs[1].id, "big");
  EXPECT_EQ(jobs[1].portfolio, 4u);
  EXPECT_EQ(jobs[1].seed, 9u);
  EXPECT_EQ(jobs[1].method, "kwayx");
  EXPECT_DOUBLE_EQ(jobs[1].fill, 0.8);
}

TEST_F(BatchTest, RejectsMalformedLines) {
  EXPECT_THROW(parse_batch_file("/nonexistent/batch.txt"),
               PreconditionError);
  EXPECT_THROW(parse_batch_file(write_temp("short.txt", "only_input\n")),
               PreconditionError);
  EXPECT_THROW(
      parse_batch_file(write_temp("badkv.txt", "a.hgr XC3020 not-a-kv\n")),
      PreconditionError);
  EXPECT_THROW(
      parse_batch_file(write_temp("badkey.txt", "a.hgr XC3020 bogus=1\n")),
      PreconditionError);
  EXPECT_THROW(
      parse_batch_file(write_temp("badnum.txt", "a.hgr XC3020 seed=xyz\n")),
      PreconditionError);
  // portfolio= must fit uint32_t, not silently wrap (2^32 + 1 != 1).
  EXPECT_THROW(parse_batch_file(write_temp(
                   "wide.txt", "a.hgr XC3020 portfolio=4294967297\n")),
               PreconditionError);
  EXPECT_THROW(
      parse_batch_file(write_temp("zero.txt", "a.hgr XC3020 portfolio=0\n")),
      PreconditionError);
}

TEST_F(BatchTest, RunsJobsAndIsolatesFailures) {
  const std::string path = write_temp(
      "run.txt", hgr_path_ + " XC3020 id=plain\n" +
                     "missing.hgr XC3020 id=broken\n" + hgr_path_ +
                     " XC3042 id=pf portfolio=3 seed=5\n" + hgr_path_ +
                     " XC3020 id=kx method=kwayx\n");
  const std::vector<JobSpec> jobs = parse_batch_file(path);
  ThreadPool pool(4);
  const std::vector<JobResult> results = run_batch(jobs, &pool);
  ASSERT_EQ(results.size(), 4u);

  EXPECT_TRUE(results[0].ok);
  EXPECT_TRUE(results[0].result.feasible);

  EXPECT_FALSE(results[1].ok);
  EXPECT_NE(results[1].error.find("missing.hgr"), std::string::npos);

  EXPECT_TRUE(results[2].ok);
  EXPECT_TRUE(results[2].result.feasible);
  EXPECT_NE(results[2].portfolio_digest, 0u);

  EXPECT_TRUE(results[3].ok);
  EXPECT_GE(results[3].result.k, results[3].result.lower_bound);
}

TEST_F(BatchTest, MalformedBatchContentIsAParseError) {
  // Content problems are ParseError; only an unreadable file stays a
  // plain PreconditionError.
  EXPECT_THROW(parse_batch_file(write_temp("pe1.txt", "only_input\n")),
               ParseError);
  EXPECT_THROW(
      parse_batch_file(write_temp("pe2.txt", "a.hgr XC3020 seed=xyz\n")),
      ParseError);
}

TEST_F(BatchTest, FailureKindsSeparateInputErrorsFromEngineBugs) {
  // One failure per input-side taxonomy branch: the report's error_kind
  // tells bad inputs ("parse"/"option"/"capacity"/"precondition") apart
  // from engine bugs ("internal").
  const std::string bad_hgr = write_temp("bad.hgr", "definitely not hgr\n");
  // A cell larger than any XC2064 block (64 CLBs): capacity rejection.
  const std::string huge_hgr = write_temp("huge.hgr", "1 2 10\n1 2\n500\n1\n");
  const std::string path = write_temp(
      "kinds.txt", hgr_path_ + " XC3020 id=good\n" +          // ok
                       "missing.hgr XC3020 id=io\n" +         // precondition
                       bad_hgr + " XC3020 id=parse\n" +       // parse
                       hgr_path_ + " NOSUCHDEV id=option\n" + // option
                       huge_hgr + " XC2064 id=capacity\n");   // capacity
  const std::vector<JobResult> results = run_batch(parse_batch_file(path));
  ASSERT_EQ(results.size(), 5u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_TRUE(results[0].error_kind.empty());
  EXPECT_FALSE(results[1].ok);
  EXPECT_EQ(results[1].error_kind, "precondition");
  EXPECT_FALSE(results[2].ok);
  EXPECT_EQ(results[2].error_kind, "parse");
  EXPECT_FALSE(results[3].ok);
  EXPECT_EQ(results[3].error_kind, "option");
  EXPECT_FALSE(results[4].ok);
  EXPECT_EQ(results[4].error_kind, "capacity");

  // The fpart-batch/1 report carries the kind for every failed job.
  const auto doc = obs::json_parse(batch_report_json(results));
  ASSERT_TRUE(doc.has_value());
  const obs::JsonValue* jobs = doc->find("jobs");
  ASSERT_NE(jobs, nullptr);
  ASSERT_EQ(jobs->array.size(), 5u);
  EXPECT_EQ(jobs->array[0].find("error_kind"), nullptr);
  EXPECT_EQ(jobs->array[2].find("error_kind")->string, "parse");
  EXPECT_EQ(jobs->array[4].find("error_kind")->string, "capacity");
}

TEST_F(BatchTest, ResultsAreDeterministicAcrossPoolSizes) {
  const std::string path = write_temp(
      "det.txt", hgr_path_ + " XC3020 id=a seed=1\n" + hgr_path_ +
                     " XC3042 id=b portfolio=3 seed=2\n");
  const std::vector<JobSpec> jobs = parse_batch_file(path);
  ThreadPool one(1);
  ThreadPool four(4);
  const std::vector<JobResult> serial = run_batch(jobs, &one);
  const std::vector<JobResult> parallel = run_batch(jobs, &four);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t j = 0; j < serial.size(); ++j) {
    EXPECT_EQ(serial[j].result.k, parallel[j].result.k) << j;
    EXPECT_EQ(serial[j].result.cut, parallel[j].result.cut) << j;
    EXPECT_EQ(serial[j].result.assignment, parallel[j].result.assignment)
        << j;
    EXPECT_EQ(serial[j].portfolio_digest, parallel[j].portfolio_digest)
        << j;
  }
}

TEST_F(BatchTest, ManyFastJobsStressTheCompletionCounter) {
  // 64 immediately-failing jobs through an 8-thread pool: workers race
  // through the completion counter while run_batch is still posting.
  // Regression for a data race where the posting thread incremented the
  // pending count unlocked against worker decrements under the mutex.
  std::string spec;
  for (int i = 0; i < 64; ++i) {
    spec += "missing" + std::to_string(i) + ".hgr XC3020\n";
  }
  const std::vector<JobSpec> jobs =
      parse_batch_file(write_temp("stress.txt", spec));
  ThreadPool pool(8);
  const std::vector<JobResult> results = run_batch(jobs, &pool);
  ASSERT_EQ(results.size(), 64u);
  for (const JobResult& r : results) {
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find(".hgr"), std::string::npos);
  }
}

TEST_F(BatchTest, ReportJsonParses) {
  const std::string path = write_temp(
      "report.txt",
      hgr_path_ + " XC3020 id=ok\nmissing.hgr XC3020 id=bad\n");
  const std::vector<JobResult> results =
      run_batch(parse_batch_file(path));
  const auto doc = obs::json_parse(batch_report_json(results));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("schema")->string, kBatchReportSchema);
  const obs::JsonValue* jobs = doc->find("jobs");
  ASSERT_NE(jobs, nullptr);
  ASSERT_EQ(jobs->array.size(), 2u);
  EXPECT_TRUE(jobs->array[0].find("ok")->boolean);
  EXPECT_FALSE(jobs->array[1].find("ok")->boolean);
  EXPECT_NE(jobs->array[1].find("error"), nullptr);
}

TEST_F(BatchTest, RejectsDuplicateJobIds) {
  const std::string dup = write_temp(
      "dup.txt", "a.hgr XC3020 id=x\nb.hgr XC3020 id=x\n");
  EXPECT_THROW(parse_batch_file(dup), ParseError);
  // A defaulted id colliding with an explicit one is the same ambiguity.
  const std::string mixed = write_temp(
      "dup_mixed.txt", "a.hgr XC3020\nb.hgr XC3020 id=job0\n");
  EXPECT_THROW(parse_batch_file(mixed), ParseError);
}

TEST_F(BatchTest, RejectsOutOfRangeFill) {
  EXPECT_THROW(
      parse_batch_file(write_temp("f0.txt", "a.hgr XC3020 fill=0.0\n")),
      OptionError);
  EXPECT_THROW(
      parse_batch_file(write_temp("fneg.txt", "a.hgr XC3020 fill=-0.5\n")),
      OptionError);
  EXPECT_THROW(
      parse_batch_file(write_temp("fbig.txt", "a.hgr XC3020 fill=1.5\n")),
      OptionError);
  // fill == 1.0 is the legal boundary.
  const std::vector<JobSpec> jobs = parse_batch_file(
      write_temp("f1.txt", "a.hgr XC3020 fill=1.0\n"));
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].fill, 1.0);
}

TEST_F(BatchTest, RunBatchInsideAPoolTaskThrowsInsteadOfDeadlocking) {
  std::vector<JobSpec> jobs(1);
  jobs[0].id = "a";
  jobs[0].input = hgr_path_;
  jobs[0].device = "XC3042";
  // One worker makes the old behavior a guaranteed hang: run_batch would
  // block that sole worker on tasks only it could execute. The guard
  // turns the hang into a typed InternalError surfaced via the future.
  ThreadPool pool(1);
  auto nested = pool.async([&] { (void)run_batch(jobs, &pool); });
  EXPECT_THROW(nested.get(), InternalError);
  // The legal shape — blocking from outside the pool — still works.
  const std::vector<JobResult> results = run_batch(jobs, &pool);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok) << results[0].error;
}

}  // namespace
}  // namespace fpart::runtime
