// Tests for the convergence time-series sampler (obs/timeseries.hpp):
// ring-buffer semantics, move-window pacing, JSON round-trip, the
// determinism contract (same seed -> byte-identical series, sampling
// cannot perturb event logs or digests) and per-attempt isolation under
// the parallel portfolio.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/fpart.hpp"
#include "core/options.hpp"
#include "device/xilinx.hpp"
#include "netlist/mcnc.hpp"
#include "obs/recorder.hpp"
#include "obs/timeseries.hpp"
#include "partition/replay.hpp"
#include "report/run_report.hpp"
#include "runtime/portfolio.hpp"

namespace fpart {
namespace {

using obs::Sample;
using obs::SampleKind;
using obs::ScopedTimeSeriesInstall;
using obs::TimeSeries;
using obs::TimeSeriesConfig;
using obs::TimeSeriesDoc;

Sample make_sample(std::uint32_t pass) {
  Sample s;
  s.kind = SampleKind::kPass;
  s.engine = obs::Engine::kFm;
  s.pass = pass;
  s.cut = 100 + pass;
  s.best = 90 + pass;
  s.blocks = 2;
  return s;
}

TEST(TimeSeriesTest, RingWrapOverwritesOldestAndCountsDropped) {
  TimeSeries ts;
  ScopedTimeSeriesInstall install(&ts);
  TimeSeriesConfig config;
  config.capacity = 4;
  ts.start(config);
  for (std::uint32_t i = 0; i < 10; ++i) ts.push(make_sample(i));
  ts.stop();

  EXPECT_EQ(ts.total_samples(), 10u);
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts.dropped(), 6u);
  const std::vector<Sample> got = ts.snapshot();
  ASSERT_EQ(got.size(), 4u);
  // Chronological, oldest retained first: passes 6..9 survive.
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(got[i].pass, 6 + i);
    EXPECT_EQ(got[i].cut, 106u + i);
  }

  // Under capacity: nothing dropped, everything retained in order.
  ts.start(config);
  ts.push(make_sample(1));
  ts.push(make_sample(2));
  ts.stop();
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.dropped(), 0u);
  EXPECT_EQ(ts.snapshot()[0].pass, 1u);
}

TEST(TimeSeriesTest, PushIsInertWhenDisabled) {
  TimeSeries ts;
  ScopedTimeSeriesInstall install(&ts);
  ts.push(make_sample(1));  // never started: latched off
  EXPECT_EQ(ts.total_samples(), 0u);
  ts.start({});
  ts.stop();
  ts.push(make_sample(2));  // stopped again
  EXPECT_EQ(ts.total_samples(), 0u);
}

TEST(TimeSeriesTest, MoveWindowPacing) {
  TimeSeries ts;
  ScopedTimeSeriesInstall install(&ts);
  TimeSeriesConfig config;
  config.move_interval = 3;
  ts.start(config);
  std::vector<bool> fires;
  for (int i = 0; i < 9; ++i) fires.push_back(ts.should_sample_move());
  EXPECT_EQ(fires, (std::vector<bool>{false, false, true, false, false,
                                      true, false, false, true}));
  ts.stop();

  // interval 0 = window sampling off, never fires.
  ts.start({});
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(ts.should_sample_move());
  ts.stop();
}

TEST(TimeSeriesTest, JsonRoundTripPreservesDeterministicFields) {
  TimeSeries ts;
  ScopedTimeSeriesInstall install(&ts);
  TimeSeriesConfig config;
  config.capacity = 8;
  config.move_interval = 5;
  ts.start(config);
  for (std::uint32_t i = 0; i < 12; ++i) {
    Sample s = make_sample(i);
    s.kind = i % 2 == 0 ? SampleKind::kPass : SampleKind::kWindow;
    s.engine = i % 3 == 0 ? obs::Engine::kSanchis : obs::Engine::kKwayx;
    ts.push(s);
  }
  ts.stop();

  const TimeSeriesDoc doc = ts.doc();
  const TimeSeriesDoc back = obs::parse_timeseries(obs::timeseries_json(doc));
  EXPECT_EQ(back.config.capacity, doc.config.capacity);
  EXPECT_EQ(back.config.move_interval, doc.config.move_interval);
  EXPECT_EQ(back.total, doc.total);
  EXPECT_EQ(back.dropped, doc.dropped);
  ASSERT_EQ(back.samples.size(), doc.samples.size());
  for (std::size_t i = 0; i < doc.samples.size(); ++i) {
    EXPECT_TRUE(obs::deterministic_equal(back.samples[i], doc.samples[i]))
        << "sample " << i;
    EXPECT_EQ(back.samples[i].kind, doc.samples[i].kind);
    EXPECT_EQ(back.samples[i].engine, doc.samples[i].engine);
  }
}

class TimeSeriesRunTest : public ::testing::Test {
 protected:
  // Collects the convergence series of one FPART run on the fixture
  // circuit through a private, thread-locally installed sampler.
  TimeSeriesDoc run_sampled(std::uint32_t move_interval) {
    TimeSeries ts;
    ScopedTimeSeriesInstall install(&ts);
    TimeSeriesConfig config;
    config.move_interval = move_interval;
    ts.start(config);
    (void)FpartPartitioner().run(h_, d_);
    ts.stop();
    return ts.doc();
  }

  const Device d_ = xilinx::xc3042();
  const Hypergraph h_ = mcnc::generate("c3540", d_.family());
};

TEST_F(TimeSeriesRunTest, SameSeedSeriesAreByteIdentical) {
  const TimeSeriesDoc a = run_sampled(/*move_interval=*/32);
  const TimeSeriesDoc b = run_sampled(/*move_interval=*/32);
  ASSERT_FALSE(a.samples.empty());
  // Timing excluded, the serialized documents must match byte for byte.
  EXPECT_EQ(obs::timeseries_json(a, /*include_timing=*/false),
            obs::timeseries_json(b, /*include_timing=*/false));
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_TRUE(obs::deterministic_equal(a.samples[i], b.samples[i]))
        << "sample " << i;
  }
}

TEST_F(TimeSeriesRunTest, SamplingDoesNotPerturbEventLogOrDigest) {
  Options opt;
  const auto record_run = [&](bool sample) {
    obs::Recorder::instance().start(
        make_event_log_header(h_, d_, opt, "fpart"));
    TimeSeries ts;
    std::optional<ScopedTimeSeriesInstall> install;
    if (sample) {
      install.emplace(&ts);
      TimeSeriesConfig config;
      config.move_interval = 16;
      ts.start(config);
    }
    const PartitionResult r = FpartPartitioner(opt).run(h_, d_);
    if (sample) {
      ts.stop();
      EXPECT_GT(ts.total_samples(), 0u);
    }
    obs::Recorder::instance().stop();
    std::string jsonl = obs::Recorder::instance().to_jsonl();
    obs::Recorder::instance().reset();
    return std::make_pair(std::move(jsonl),
                          assignment_digest(r.assignment));
  };

  const auto [plain_log, plain_digest] = record_run(/*sample=*/false);
  const auto [sampled_log, sampled_digest] = record_run(/*sample=*/true);
  // The sampler only reads partition state: enabling it must leave the
  // flight-recorder byte stream and the final assignment untouched.
  EXPECT_EQ(plain_log, sampled_log);
  EXPECT_EQ(plain_digest, sampled_digest);
}

TEST_F(TimeSeriesRunTest, PortfolioAttemptsCollectIsolatedSeries) {
  runtime::PortfolioOptions opt;
  opt.attempts = 4;
  opt.threads = 4;
  opt.timeseries = true;
  opt.timeseries_config.move_interval = 32;
  const runtime::PortfolioResult pr = run_portfolio(h_, d_, opt);

  ASSERT_EQ(pr.attempts.size(), 4u);
  for (const runtime::AttemptOutcome& a : pr.attempts) {
    if (!a.counted) {
      // Uncounted tails are scrubbed like their results.
      EXPECT_TRUE(a.series.samples.empty());
      continue;
    }
    ASSERT_FALSE(a.series.samples.empty()) << "attempt " << a.index;
    // Rerunning the attempt standalone under a fresh private sampler
    // must reproduce its series exactly — proof the concurrent attempts
    // never wrote into each other's rings.
    TimeSeries local;
    ScopedTimeSeriesInstall install(&local);
    local.start(opt.timeseries_config);
    (void)runtime::run_portfolio_attempt(h_, d_, opt, a.seed);
    local.stop();
    const TimeSeriesDoc direct = local.doc();
    EXPECT_EQ(obs::timeseries_json(a.series, /*include_timing=*/false),
              obs::timeseries_json(direct, /*include_timing=*/false))
        << "attempt " << a.index;
  }
}

}  // namespace
}  // namespace fpart
