#include <gtest/gtest.h>

#include <vector>

#include "flow/hypergraph_flow.hpp"
#include "hypergraph/builder.hpp"
#include "netlist/generator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fpart {
namespace {

std::vector<std::uint8_t> full_scope(const Hypergraph& h) {
  std::vector<std::uint8_t> scope(h.num_nodes(), 0);
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) scope[v] = 1;
  }
  return scope;
}

TEST(HypergraphFlowTest, SingleNetCutOnce) {
  HypergraphBuilder b;
  const NodeId x = b.add_cell(1);
  const NodeId y = b.add_cell(1);
  b.add_net({x, y});
  const Hypergraph h = std::move(b).build();
  auto flow = build_hypergraph_flow(h, full_scope(h), std::vector<NodeId>{x},
                                    std::vector<NodeId>{y});
  EXPECT_EQ(flow.net.max_flow(flow.source, flow.sink), 1);
}

TEST(HypergraphFlowTest, WideNetCountsOnce) {
  // One 5-pin net: separating any seed pair cuts exactly that one net.
  HypergraphBuilder b;
  std::vector<NodeId> c;
  for (int i = 0; i < 5; ++i) c.push_back(b.add_cell(1));
  b.add_net(std::vector<NodeId>(c.begin(), c.end()));
  const Hypergraph h = std::move(b).build();
  auto flow = build_hypergraph_flow(h, full_scope(h),
                                    std::vector<NodeId>{c[0]},
                                    std::vector<NodeId>{c[4]});
  EXPECT_EQ(flow.net.max_flow(flow.source, flow.sink), 1);
}

TEST(HypergraphFlowTest, ParallelNetsAdd) {
  HypergraphBuilder b;
  const NodeId x = b.add_cell(1);
  const NodeId y = b.add_cell(1);
  b.add_net({x, y});
  b.add_net({x, y});
  b.add_net({x, y});
  const Hypergraph h = std::move(b).build();
  auto flow = build_hypergraph_flow(h, full_scope(h), std::vector<NodeId>{x},
                                    std::vector<NodeId>{y});
  EXPECT_EQ(flow.net.max_flow(flow.source, flow.sink), 3);
}

TEST(HypergraphFlowTest, ChainBottleneck) {
  // x -A- y -B- z: min cut between x and z is 1 (either net).
  HypergraphBuilder b;
  const NodeId x = b.add_cell(1);
  const NodeId y = b.add_cell(1);
  const NodeId z = b.add_cell(1);
  b.add_net({x, y});
  b.add_net({y, z});
  const Hypergraph h = std::move(b).build();
  auto flow = build_hypergraph_flow(h, full_scope(h), std::vector<NodeId>{x},
                                    std::vector<NodeId>{z});
  EXPECT_EQ(flow.net.max_flow(flow.source, flow.sink), 1);
}

TEST(HypergraphFlowTest, SourceSideNodesValid) {
  HypergraphBuilder b;
  const NodeId x = b.add_cell(1);
  const NodeId y = b.add_cell(1);
  const NodeId z = b.add_cell(1);
  b.add_net({x, y});
  b.add_net({y, z});
  const Hypergraph h = std::move(b).build();
  auto flow = build_hypergraph_flow(h, full_scope(h), std::vector<NodeId>{x},
                                    std::vector<NodeId>{z});
  flow.net.max_flow(flow.source, flow.sink);
  const auto side = flow.source_side_nodes(h);
  EXPECT_TRUE(side[x]);
  EXPECT_FALSE(side[z]);
}

TEST(HypergraphFlowTest, ScopeExcludesOutsideNets) {
  // Net {x, w} with w out of scope contributes no gadget (only one
  // in-scope pin), so the x-y cut is just the {x,y} net.
  HypergraphBuilder b;
  const NodeId x = b.add_cell(1);
  const NodeId y = b.add_cell(1);
  const NodeId w = b.add_cell(1);
  b.add_net({x, y});
  b.add_net({x, w});
  b.add_net({y, w});
  const Hypergraph h = std::move(b).build();
  std::vector<std::uint8_t> scope(h.num_nodes(), 0);
  scope[x] = scope[y] = 1;
  auto flow = build_hypergraph_flow(h, scope, std::vector<NodeId>{x},
                                    std::vector<NodeId>{y});
  EXPECT_EQ(flow.net.max_flow(flow.source, flow.sink), 1);
}

TEST(HypergraphFlowTest, SeedValidation) {
  HypergraphBuilder b;
  const NodeId x = b.add_cell(1);
  const NodeId y = b.add_cell(1);
  const NodeId pad = b.add_terminal();
  b.add_net({x, y, pad});
  const Hypergraph h = std::move(b).build();
  std::vector<std::uint8_t> scope(h.num_nodes(), 0);
  scope[x] = 1;
  EXPECT_THROW(build_hypergraph_flow(h, scope, std::vector<NodeId>{x},
                                     std::vector<NodeId>{y}),
               PreconditionError);  // y out of scope
  std::vector<std::uint8_t> bad(h.num_nodes() + 1, 1);
  EXPECT_THROW(build_hypergraph_flow(h, bad, std::vector<NodeId>{x},
                                     std::vector<NodeId>{y}),
               PreconditionError);
}

// Brute-force equivalence: the flow value equals the minimum, over all
// bipartitions separating the seeds, of the number of in-scope nets with
// pins on both sides.
class HypergraphFlowFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(HypergraphFlowFuzzTest, MatchesBruteForceNetCut) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 11);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 4 + rng.index(5);  // 4..8 cells
    HypergraphBuilder b;
    std::vector<NodeId> cells;
    for (std::size_t i = 0; i < n; ++i) cells.push_back(b.add_cell(1));
    const std::size_t m = 4 + rng.index(8);
    std::vector<std::vector<std::size_t>> nets;
    for (std::size_t e = 0; e < m; ++e) {
      const std::size_t pins = 2 + rng.index(3);
      std::vector<NodeId> net;
      std::vector<std::size_t> raw;
      for (std::size_t i = 0; i < pins; ++i) {
        const std::size_t v = rng.index(n);
        net.push_back(cells[v]);
        raw.push_back(v);
      }
      b.add_net(net);
      std::sort(raw.begin(), raw.end());
      raw.erase(std::unique(raw.begin(), raw.end()), raw.end());
      nets.push_back(raw);
    }
    const Hypergraph h = std::move(b).build();

    const std::size_t s = 0;
    const std::size_t t = n - 1;
    auto flow = build_hypergraph_flow(h, full_scope(h),
                                      std::vector<NodeId>{cells[s]},
                                      std::vector<NodeId>{cells[t]});
    const auto flow_value = flow.net.max_flow(flow.source, flow.sink);

    std::int64_t best = INT64_MAX;
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      if (!(mask & (1u << s)) || (mask & (1u << t))) continue;
      std::int64_t cut = 0;
      for (const auto& net : nets) {
        bool in = false;
        bool out = false;
        for (std::size_t v : net) {
          ((mask >> v) & 1u) ? in = true : out = true;
        }
        if (in && out) ++cut;
      }
      best = std::min(best, cut);
    }
    ASSERT_EQ(flow_value, best) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypergraphFlowFuzzTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace fpart
