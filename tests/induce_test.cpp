#include <gtest/gtest.h>

#include <vector>

#include "hypergraph/builder.hpp"
#include "hypergraph/induce.hpp"
#include "netlist/generator.hpp"
#include "partition/partition.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fpart {
namespace {

Hypergraph chain_with_pad() {
  // cells 0-1-2-3 in a chain; pad on a net with cell 3.
  HypergraphBuilder b;
  std::vector<NodeId> cells;
  for (int i = 0; i < 4; ++i) {
    cells.push_back(b.add_cell(static_cast<std::uint32_t>(i + 1),
                               "c" + std::to_string(i)));
  }
  b.add_net({cells[0], cells[1]}, "n01");
  b.add_net({cells[1], cells[2]}, "n12");
  b.add_net({cells[2], cells[3]}, "n23");
  const NodeId pad = b.add_terminal("pad");
  b.add_net({cells[3], pad}, "npad");
  return std::move(b).build();
}

TEST(InduceTest, KeepsInternalNetsVerbatim) {
  const Hypergraph h = chain_with_pad();
  const std::vector<NodeId> subset{0, 1};
  const InducedCircuit sub = induce(h, subset);
  sub.graph.validate();
  EXPECT_EQ(sub.graph.num_interior(), 2u);
  // n01 stays internal; n12 crosses (1 fresh terminal).
  EXPECT_EQ(sub.graph.num_nets(), 2u);
  EXPECT_EQ(sub.graph.num_terminals(), 1u);
}

TEST(InduceTest, CrossingNetGetsFreshTerminal) {
  const Hypergraph h = chain_with_pad();
  const std::vector<NodeId> subset{3};
  const InducedCircuit sub = induce(h, subset);
  // Nets touching cell 3: n23 (crosses to cell 2) and npad (has a pad).
  EXPECT_EQ(sub.graph.num_nets(), 2u);
  EXPECT_EQ(sub.graph.num_terminals(), 2u);
  for (NetId e = 0; e < sub.graph.num_nets(); ++e) {
    EXPECT_EQ(sub.graph.net_terminal_count(e), 1u);
  }
}

TEST(InduceTest, MappingsAreMutuallyInverse) {
  const Hypergraph h = chain_with_pad();
  const std::vector<NodeId> subset{1, 3};
  const InducedCircuit sub = induce(h, subset);
  ASSERT_EQ(sub.to_old.size(), 2u);
  for (NodeId nv = 0; nv < sub.to_old.size(); ++nv) {
    EXPECT_EQ(sub.to_new[sub.to_old[nv]], nv);
  }
  EXPECT_EQ(sub.to_new[0], kInvalidNode);
  EXPECT_EQ(sub.to_new[2], kInvalidNode);
}

TEST(InduceTest, PreservesSizesAndNames) {
  const Hypergraph h = chain_with_pad();
  const std::vector<NodeId> subset{2, 3};
  const InducedCircuit sub = induce(h, subset);
  for (NodeId nv = 0; nv < sub.to_old.size(); ++nv) {
    EXPECT_EQ(sub.graph.node_size(nv), h.node_size(sub.to_old[nv]));
    EXPECT_EQ(sub.graph.node_name(nv), h.node_name(sub.to_old[nv]));
  }
}

TEST(InduceTest, DropsUntouchedNets) {
  const Hypergraph h = chain_with_pad();
  const std::vector<NodeId> subset{0};
  const InducedCircuit sub = induce(h, subset);
  EXPECT_EQ(sub.graph.num_nets(), 1u);  // only n01 touches cell 0
}

TEST(InduceTest, RejectsBadSubsets) {
  const Hypergraph h = chain_with_pad();
  EXPECT_THROW(induce(h, std::vector<NodeId>{0, 0}), PreconditionError);
  EXPECT_THROW(induce(h, std::vector<NodeId>{4}), PreconditionError);   // pad
  EXPECT_THROW(induce(h, std::vector<NodeId>{99}), PreconditionError);
}

// Key semantic property: extracting a block of a partition yields a
// subcircuit whose terminal count equals the block's pin demand T_b —
// the induced circuit "sees" exactly the I/Os the block would need.
class InducePartitionTest : public ::testing::TestWithParam<int> {};

TEST_P(InducePartitionTest, TerminalCountMatchesBlockPins) {
  GeneratorConfig config;
  config.num_cells = 120;
  config.num_terminals = 15;
  config.seed = static_cast<std::uint64_t>(GetParam()) + 1;
  const Hypergraph h = generate_circuit(config);

  Partition p(h, 3);
  Rng rng(config.seed ^ 0xABCD);
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) p.move(v, static_cast<BlockId>(rng.index(3)));
  }
  for (BlockId b = 0; b < 3; ++b) {
    const auto nodes = p.block_nodes(b);
    if (nodes.empty()) continue;
    const InducedCircuit sub = induce(h, nodes);
    sub.graph.validate();
    EXPECT_EQ(sub.graph.num_terminals(), p.block_pins(b))
        << "block " << b;
    EXPECT_EQ(sub.graph.total_size(), p.block_size(b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InducePartitionTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace fpart
