// End-to-end shape checks against the paper's evaluation claims.
//
// Absolute device counts on the synthetic MCNC stand-ins may differ from
// the published netlists by a small margin; what must hold (and what the
// paper claims) is the ORDER: FPART <= FBB-MW-like <= greedy k-way.x,
// FPART close to the lower bound M, and the gap widening on the largest
// circuits with the smallest device.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/kwayx.hpp"
#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "flow/fbb.hpp"
#include "netlist/mcnc.hpp"

namespace fpart {
namespace {

struct Runs {
  PartitionResult kwayx;
  PartitionResult fbb;
  PartitionResult fpart;
};

Runs run_all(const char* circuit, const Device& d) {
  const Hypergraph h = mcnc::generate(circuit, d.family());
  return Runs{KwayxPartitioner().run(h, d), FbbPartitioner().run(h, d),
              FpartPartitioner().run(h, d)};
}

using Case = std::tuple<const char*, const char*>;
class MethodOrderTest : public ::testing::TestWithParam<Case> {};

TEST_P(MethodOrderTest, FpartNeverWorseThanGreedy) {
  const auto& [circuit, device_name] = GetParam();
  const Runs r = run_all(circuit, xilinx::by_name(device_name));
  EXPECT_LE(r.fpart.k, r.kwayx.k) << circuit << "/" << device_name;
  EXPECT_TRUE(r.fpart.feasible && r.kwayx.feasible && r.fbb.feasible);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, MethodOrderTest,
    ::testing::Values(Case{"c3540", "XC3020"}, Case{"c6288", "XC3020"},
                      Case{"s9234", "XC3020"}, Case{"s13207", "XC3020"},
                      Case{"s15850", "XC3020"}, Case{"s5378", "XC3042"},
                      Case{"s13207", "XC3042"}, Case{"c5315", "XC2064"},
                      Case{"c7552", "XC2064"}));

TEST(PaperShapeTest, Xc3020TotalsOrderMatchesPaper) {
  // Paper Table 2 totals: k-way.x 210 >= FBB-MW 183 >= FPART 180 >= M 172.
  // Run the five mid/large circuits that create the gap (the small ones
  // tie) and check the same ordering on measured totals.
  const Device d = xilinx::xc3020();
  int tk = 0, tf = 0, tp = 0, tm = 0;
  for (const char* circuit :
       {"c6288", "s9234", "s13207", "s15850", "s38417"}) {
    const Runs r = run_all(circuit, d);
    tk += static_cast<int>(r.kwayx.k);
    tf += static_cast<int>(r.fbb.k);
    tp += static_cast<int>(r.fpart.k);
    tm += static_cast<int>(r.fpart.lower_bound);
  }
  EXPECT_GE(tk, tf);
  EXPECT_GE(tf, tp);
  EXPECT_GE(tp, tm);
  EXPECT_GT(tk, tp);  // the greedy gap must actually exist
  EXPECT_LE(tp, tm + 5);  // FPART lands near the bound
}

TEST(PaperShapeTest, FpartBeatsGreedyOnLargestBenchmark) {
  // Paper: s38417 XC3020 k-way.x 46 vs FPART 39 (M = 39).
  const Runs r = run_all("s38417", xilinx::xc3020());
  EXPECT_LT(r.fpart.k, r.kwayx.k);
  EXPECT_LE(r.fpart.k, r.fpart.lower_bound + 2);
}

TEST(PaperShapeTest, EasyBigDeviceCasesHitLowerBound) {
  // Paper Table 4, small circuits: every method reaches M on XC3090.
  const Device d = xilinx::xc3090();
  for (const char* circuit : {"c3540", "c5315", "c7552", "s9234"}) {
    const Hypergraph h = mcnc::generate(circuit, d.family());
    const PartitionResult r = FpartPartitioner().run(h, d);
    EXPECT_EQ(r.k, r.lower_bound) << circuit;
  }
}

TEST(PaperShapeTest, SmallerDevicesNeedMoreParts) {
  // Monotonicity across the device ladder for one circuit.
  const char* circuit = "s13207";
  std::uint32_t k3090 = 0, k3042 = 0, k3020 = 0;
  {
    const Hypergraph h = mcnc::generate(circuit, Family::kXC3000);
    k3090 = FpartPartitioner().run(h, xilinx::xc3090()).k;
    k3042 = FpartPartitioner().run(h, xilinx::xc3042()).k;
    k3020 = FpartPartitioner().run(h, xilinx::xc3020()).k;
  }
  EXPECT_LT(k3090, k3042);
  EXPECT_LT(k3042, k3020);
}

TEST(PaperShapeTest, RuntimeGrowsWithIterationCount) {
  // Table 6 shape: the XC3090 run (few blocks) is cheaper than the
  // XC3020 run (many blocks) for the same circuit.
  const Hypergraph h = mcnc::generate("s15850", Family::kXC3000);
  const PartitionResult big = FpartPartitioner().run(h, xilinx::xc3090());
  const PartitionResult small = FpartPartitioner().run(h, xilinx::xc3020());
  EXPECT_GT(small.iterations, big.iterations);
}

TEST(PaperShapeTest, CutQualityOrderOnMidCircuit) {
  // FPART's multiway improvement should also yield fewer cut nets than
  // the greedy baseline at equal or smaller k.
  const Runs r = run_all("s9234", xilinx::xc3020());
  if (r.fpart.k <= r.kwayx.k) {
    EXPECT_LT(r.fpart.cut, r.kwayx.cut + r.kwayx.cut / 2 + 10);
  }
}

}  // namespace
}  // namespace fpart
