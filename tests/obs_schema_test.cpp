// Golden/schema-stability test for the observability JSON sinks: runs
// the real FPART pipeline with stats enabled and asserts the emitted
// fpart-run-report/1 and fpart-bench/1 documents parse and carry every
// key downstream tooling depends on. Removing or re-typing a key here
// is a breaking schema change — bump the schema version instead.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "baselines/kwayx.hpp"
#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "netlist/mcnc.hpp"
#include "obs/json.hpp"
#include "obs/phase.hpp"
#include "obs/stats.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "report/run_report.hpp"

namespace fpart {
namespace {

using obs::JsonValue;

// Asserts `parent[key]` exists with the given type and returns it.
const JsonValue& require(const JsonValue& parent, std::string_view key,
                         JsonValue::Type type) {
  const JsonValue* v = parent.find(key);
  EXPECT_NE(v, nullptr) << "missing key: " << key;
  if (v == nullptr) std::abort();
  EXPECT_EQ(static_cast<int>(v->type), static_cast<int>(type))
      << "wrong type for key: " << key;
  return *v;
}

class ObsSchemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::StatsRegistry::instance().reset();
    obs::PhaseForest::instance().reset();
    obs::trace_reset();
    obs::set_stats_enabled(true);
  }
  void TearDown() override {
    obs::set_stats_enabled(false);
    obs::StatsRegistry::instance().reset();
    obs::PhaseForest::instance().reset();
    obs::trace_reset();
  }
};

TEST_F(ObsSchemaTest, RunReportIsParseableAndSchemaStable) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s9234", d.family());
  const PartitionResult r = FpartPartitioner().run(h, d);

  RunMeta meta;
  meta.circuit = "s9234";
  meta.device = d.name();
  meta.method = "fpart";
  meta.seed = 1;

  const std::string text = run_report_json(meta, r);
  const auto parsed = obs::json_parse(text);
  ASSERT_TRUE(parsed.has_value()) << "run report is not valid JSON";
  const JsonValue& doc = *parsed;

  EXPECT_EQ(require(doc, "schema", JsonValue::Type::kString).string,
            kRunReportSchema);

  const JsonValue& m = require(doc, "meta", JsonValue::Type::kObject);
  EXPECT_EQ(require(m, "circuit", JsonValue::Type::kString).string, "s9234");
  require(m, "device", JsonValue::Type::kString);
  EXPECT_EQ(require(m, "method", JsonValue::Type::kString).string, "fpart");
  require(m, "seed", JsonValue::Type::kNumber);
  // Observability health + build provenance ride in meta on every report.
  require(m, "trace_dropped", JsonValue::Type::kNumber);
  require(m, "timeseries_dropped", JsonValue::Type::kNumber);
  const JsonValue& prov = require(m, "provenance", JsonValue::Type::kObject);
  require(prov, "git_sha", JsonValue::Type::kString);
  require(prov, "git_dirty", JsonValue::Type::kBool);
  require(prov, "compiler", JsonValue::Type::kString);
  require(prov, "build_type", JsonValue::Type::kString);
  require(prov, "cxx_flags", JsonValue::Type::kString);
  require(prov, "sanitizer", JsonValue::Type::kString);

  const JsonValue& res = require(doc, "result", JsonValue::Type::kObject);
  require(res, "feasible", JsonValue::Type::kBool);
  EXPECT_EQ(require(res, "k", JsonValue::Type::kNumber).number, double(r.k));
  require(res, "lower_bound", JsonValue::Type::kNumber);
  EXPECT_EQ(require(res, "cut", JsonValue::Type::kNumber).number,
            double(r.cut));
  require(res, "km1", JsonValue::Type::kNumber);
  EXPECT_GT(require(res, "iterations", JsonValue::Type::kNumber).number, 0.0);
  require(res, "seconds", JsonValue::Type::kNumber);
  require(res, "cpu_seconds", JsonValue::Type::kNumber);
  const JsonValue& blocks = require(res, "blocks", JsonValue::Type::kArray);
  ASSERT_EQ(blocks.array.size(), r.k);
  for (const JsonValue& b : blocks.array) {
    require(b, "size", JsonValue::Type::kNumber);
    require(b, "pins", JsonValue::Type::kNumber);
    require(b, "ext", JsonValue::Type::kNumber);
    require(b, "nodes", JsonValue::Type::kNumber);
    require(b, "feasible", JsonValue::Type::kBool);
  }

  // The instrumented pipeline must have recorded real work.
  const JsonValue& counters =
      require(doc, "counters", JsonValue::Type::kObject);
  const auto counter_value = [&counters](std::string_view name) -> double {
    const JsonValue* v = counters.find(name);
    return (v != nullptr && v->is_number()) ? v->number : 0.0;
  };
  EXPECT_GT(counter_value("fpart.iterations"), 0.0);
  EXPECT_GT(counter_value("fm.bucket_pushes"), 0.0);
  EXPECT_GT(counter_value("fm.bucket_pops"), 0.0);
  EXPECT_GT(counter_value("sanchis.passes"), 0.0);
  EXPECT_GT(counter_value("sanchis.moves"), 0.0);
  EXPECT_GT(counter_value("sanchis.improve_calls"), 0.0);

  const JsonValue& hists =
      require(doc, "histograms", JsonValue::Type::kObject);
  const JsonValue* remainder = hists.find("fpart.remainder_size");
  ASSERT_NE(remainder, nullptr);
  require(*remainder, "count", JsonValue::Type::kNumber);
  require(*remainder, "sum", JsonValue::Type::kNumber);
  require(*remainder, "min", JsonValue::Type::kNumber);
  require(*remainder, "max", JsonValue::Type::kNumber);
  require(*remainder, "mean", JsonValue::Type::kNumber);
  // Quantile summaries ride next to the raw buckets; being estimated
  // from power-of-two buckets they are monotone and bounded by the
  // recorded extremes.
  const double p50 =
      require(*remainder, "p50", JsonValue::Type::kNumber).number;
  const double p90 =
      require(*remainder, "p90", JsonValue::Type::kNumber).number;
  const double p99 =
      require(*remainder, "p99", JsonValue::Type::kNumber).number;
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, require(*remainder, "min", JsonValue::Type::kNumber).number);
  EXPECT_LE(p99, require(*remainder, "max", JsonValue::Type::kNumber).number);
  require(*remainder, "buckets", JsonValue::Type::kArray);

  // Phase tree: the root phase is the whole run and its wall time must
  // agree with PartitionResult::seconds to within 5%, plus a fixed
  // scheduling allowance — under a parallel ctest run the two clock
  // reads can be separated by a preemption worth several milliseconds.
  const JsonValue& phases = require(doc, "phases", JsonValue::Type::kArray);
  ASSERT_FALSE(phases.array.empty());
  const JsonValue& root = phases.array[0];
  EXPECT_EQ(require(root, "name", JsonValue::Type::kString).string,
            "fpart.run");
  const double root_wall =
      require(root, "wall_seconds", JsonValue::Type::kNumber).number;
  require(root, "cpu_seconds", JsonValue::Type::kNumber);
  require(root, "count", JsonValue::Type::kNumber);
  require(root, "children", JsonValue::Type::kArray);
  EXPECT_LE(std::abs(root_wall - r.seconds),
            0.05 * r.seconds + 0.02)
      << "root phase wall=" << root_wall << " vs result=" << r.seconds;
}

// With the global sampler running, the run report embeds a
// fpart-timeseries/1 section; with it idle, the key is absent entirely
// (absence means "sampling was off", not an empty series).
TEST_F(ObsSchemaTest, RunReportEmbedsTimeSeriesWhenSampling) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("c3540", d.family());

  obs::TimeSeries::instance().start();
  const PartitionResult r = FpartPartitioner().run(h, d);
  obs::TimeSeries::instance().stop();

  RunMeta meta;
  meta.circuit = "c3540";
  meta.device = d.name();
  meta.method = "fpart";
  const std::string text = run_report_json(meta, r);
  obs::TimeSeries::instance().reset();

  const auto parsed = obs::json_parse(text);
  ASSERT_TRUE(parsed.has_value());
  const JsonValue& ts =
      require(*parsed, "timeseries", JsonValue::Type::kObject);
  EXPECT_EQ(require(ts, "schema", JsonValue::Type::kString).string,
            obs::kTimeSeriesSchema);
  require(ts, "capacity", JsonValue::Type::kNumber);
  require(ts, "move_interval", JsonValue::Type::kNumber);
  require(ts, "dropped", JsonValue::Type::kNumber);
  EXPECT_GT(require(ts, "total_samples", JsonValue::Type::kNumber).number,
            0.0);
  const JsonValue& samples =
      require(ts, "samples", JsonValue::Type::kArray);
  ASSERT_FALSE(samples.array.empty());
  for (const JsonValue& s : samples.array) {
    require(s, "kind", JsonValue::Type::kString);
    require(s, "engine", JsonValue::Type::kString);
    require(s, "pass", JsonValue::Type::kNumber);
    require(s, "cut", JsonValue::Type::kNumber);
    require(s, "best", JsonValue::Type::kNumber);
    require(s, "feasible_blocks", JsonValue::Type::kNumber);
    require(s, "blocks", JsonValue::Type::kNumber);
    require(s, "moves", JsonValue::Type::kNumber);
    require(s, "rolled_back", JsonValue::Type::kNumber);
    require(s, "occupancy", JsonValue::Type::kNumber);
    require(s, "seconds", JsonValue::Type::kNumber);
  }
  // The round-trip parser accepts both the embedded section and a
  // standalone document.
  const obs::TimeSeriesDoc doc = obs::parse_timeseries(text);
  EXPECT_EQ(doc.samples.size(), samples.array.size());

  // Sampler idle -> no key.
  const std::string plain = run_report_json(meta, r);
  const auto parsed_plain = obs::json_parse(plain);
  ASSERT_TRUE(parsed_plain.has_value());
  EXPECT_EQ(parsed_plain->find("timeseries"), nullptr);
}

TEST_F(ObsSchemaTest, MetaEventsPathIsEmittedOnlyWhenSet) {
  PartitionResult r;
  r.k = 1;
  r.blocks.resize(1);

  RunMeta meta;
  meta.circuit = "c";
  meta.device = "d";
  meta.method = "fpart";
  meta.seed = 1;

  // Without an event log: no events_path key (absence means "no log").
  const auto without = obs::json_parse(run_report_json(meta, r));
  ASSERT_TRUE(without.has_value());
  const JsonValue& m0 = require(*without, "meta", JsonValue::Type::kObject);
  EXPECT_EQ(m0.find("events_path"), nullptr);

  // With one: meta.events_path carries the path so downstream tooling can
  // find the fpart-events/1 log that belongs to this report.
  meta.events_path = "/tmp/run.events.jsonl";
  const auto with = obs::json_parse(run_report_json(meta, r));
  ASSERT_TRUE(with.has_value());
  const JsonValue& m1 = require(*with, "meta", JsonValue::Type::kObject);
  EXPECT_EQ(require(m1, "events_path", JsonValue::Type::kString).string,
            "/tmp/run.events.jsonl");
}

TEST_F(ObsSchemaTest, BenchReportIsParseableAndSchemaStable) {
  const Device d = xilinx::xc3020();
  const Hypergraph h = mcnc::generate("c3540", d.family());
  RunRecord rec;
  rec.meta = RunMeta{"c3540", d.name(), "kwayx", 0};
  rec.result = KwayxPartitioner().run(h, d);
  rec.result.assignment.clear();  // bench records drop the assignment
  const std::vector<RunRecord> records{rec, rec};

  const auto parsed =
      obs::json_parse(bench_report_json("obs_schema_test", records));
  ASSERT_TRUE(parsed.has_value()) << "bench report is not valid JSON";
  const JsonValue& doc = *parsed;

  EXPECT_EQ(require(doc, "schema", JsonValue::Type::kString).string,
            kBenchReportSchema);
  EXPECT_EQ(require(doc, "bench", JsonValue::Type::kString).string,
            "obs_schema_test");
  const JsonValue& recs = require(doc, "records", JsonValue::Type::kArray);
  ASSERT_EQ(recs.array.size(), 2u);
  for (const JsonValue& rj : recs.array) {
    const JsonValue& m = require(rj, "meta", JsonValue::Type::kObject);
    EXPECT_EQ(require(m, "circuit", JsonValue::Type::kString).string,
              "c3540");
    const JsonValue& res = require(rj, "result", JsonValue::Type::kObject);
    require(res, "k", JsonValue::Type::kNumber);
    require(res, "cut", JsonValue::Type::kNumber);
    require(res, "blocks", JsonValue::Type::kArray);
  }
  // kwayx bipartitions with classic FM, so the fm.* pass/move counters
  // must have fired.
  const JsonValue& counters =
      require(doc, "counters", JsonValue::Type::kObject);
  const JsonValue* fm_passes = counters.find("fm.passes");
  ASSERT_NE(fm_passes, nullptr);
  EXPECT_GT(fm_passes->number, 0.0);
  const JsonValue* fm_moves = counters.find("fm.moves_attempted");
  ASSERT_NE(fm_moves, nullptr);
  EXPECT_GT(fm_moves->number, 0.0);
  require(doc, "histograms", JsonValue::Type::kObject);
  require(doc, "phases", JsonValue::Type::kArray);
  // fpart-bench/1 carries provenance at the top level so archived suite
  // runs stay attributable to an exact build.
  const JsonValue& prov = require(doc, "provenance", JsonValue::Type::kObject);
  require(prov, "git_sha", JsonValue::Type::kString);
  require(prov, "compiler", JsonValue::Type::kString);
}

}  // namespace
}  // namespace fpart
