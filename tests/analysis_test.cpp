#include <gtest/gtest.h>

#include <vector>

#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "hypergraph/builder.hpp"
#include "netlist/mcnc.hpp"
#include "partition/analysis.hpp"
#include "partition/partition.hpp"

namespace fpart {
namespace {

// 6 cells over 3 blocks: nets crafted to give a known wiring matrix.
//   blocks: {0,1} {2,3} {4,5}
//   n0 = {0,2}       -> pair (0,1)
//   n1 = {1,3}       -> pair (0,1)
//   n2 = {3,4}       -> pair (1,2)
//   n3 = {0,2,4,pad} -> pairs (0,1),(0,2),(1,2) + pad wires everywhere
Hypergraph fixture() {
  HypergraphBuilder b;
  std::vector<NodeId> c;
  for (int i = 0; i < 6; ++i) c.push_back(b.add_cell(1));
  const NodeId pad = b.add_terminal();
  b.add_net({c[0], c[2]});
  b.add_net({c[1], c[3]});
  b.add_net({c[3], c[4]});
  b.add_net({c[0], c[2], c[4], pad});
  return std::move(b).build();
}

Partition three_blocks(const Hypergraph& h) {
  Partition p(h, 3);
  p.move(2, 1);
  p.move(3, 1);
  p.move(4, 2);
  p.move(5, 2);
  return p;
}

TEST(WiringMatrixTest, CountsPairwiseNets) {
  const Hypergraph h = fixture();
  Partition p = three_blocks(h);
  const WiringMatrix m = wiring_matrix(p);
  ASSERT_EQ(m.k, 3u);
  EXPECT_EQ(m.between(0, 1), 3u);  // n0, n1, n3
  EXPECT_EQ(m.between(1, 0), 3u);  // symmetric
  EXPECT_EQ(m.between(1, 2), 2u);  // n2, n3
  EXPECT_EQ(m.between(0, 2), 1u);  // n3
  EXPECT_EQ(m.between(0, 0), 0u);  // zero diagonal
  EXPECT_EQ(m.total_wires(), 6u);
}

TEST(WiringMatrixTest, PadWires) {
  const Hypergraph h = fixture();
  Partition p = three_blocks(h);
  const WiringMatrix m = wiring_matrix(p);
  // n3 carries the pad and touches all three blocks.
  EXPECT_EQ(m.pad_wires[0], 1u);
  EXPECT_EQ(m.pad_wires[1], 1u);
  EXPECT_EQ(m.pad_wires[2], 1u);
}

TEST(WiringMatrixTest, HottestPair) {
  const Hypergraph h = fixture();
  Partition p = three_blocks(h);
  const WiringMatrix m = wiring_matrix(p);
  EXPECT_EQ(m.hottest_pair(), (std::pair<BlockId, BlockId>{0, 1}));
}

TEST(WiringMatrixTest, SingleBlockHasNoWires) {
  const Hypergraph h = fixture();
  Partition p(h, 1);
  const WiringMatrix m = wiring_matrix(p);
  EXPECT_EQ(m.total_wires(), 0u);
  EXPECT_EQ(m.hottest_pair().first, kInvalidBlock);
  EXPECT_EQ(m.pad_wires[0], 1u);  // the pad net still reaches block 0
}

TEST(WiringMatrixTest, AsciiRendering) {
  const Hypergraph h = fixture();
  Partition p = three_blocks(h);
  const std::string text = wiring_matrix(p).to_ascii();
  EXPECT_NE(text.find("b0"), std::string::npos);
  EXPECT_NE(text.find("pads"), std::string::npos);
  EXPECT_NE(text.find("."), std::string::npos);  // diagonal marker
}

TEST(WiringMatrixTest, ConsistentWithKm1OnRealPartition) {
  // Σ pairwise wires >= K−1 connectivity (a net spanning s blocks adds
  // s·(s−1)/2 pair wires but only s−1 connectivity), with equality
  // exactly when every cut net spans 2 blocks.
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s9234", d.family());
  const PartitionResult r = FpartPartitioner().run(h, d);
  Partition p(h, r.assignment, r.k);
  const WiringMatrix m = wiring_matrix(p);
  EXPECT_GE(m.total_wires(), p.connectivity_km1());
}

}  // namespace
}  // namespace fpart
