#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/fpart.hpp"
#include "device/xilinx.hpp"
#include "netlist/mcnc.hpp"
#include "obs/json.hpp"
#include "partition/replay.hpp"
#include "partition/verify.hpp"
#include "runtime/portfolio.hpp"
#include "util/assert.hpp"

namespace fpart::runtime {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(PortfolioTest, AttemptSeedsAreStableAndDistinct) {
  EXPECT_EQ(attempt_seed(0, 0), 0u);  // attempt 0 = the canonical run
  EXPECT_EQ(attempt_seed(9, 0), 9u);
  for (std::uint32_t i = 1; i < 16; ++i) {
    EXPECT_NE(attempt_seed(0, i), 0u);
    EXPECT_EQ(attempt_seed(0, i), attempt_seed(0, i));
    for (std::uint32_t j = 0; j < i; ++j) {
      EXPECT_NE(attempt_seed(0, i), attempt_seed(0, j)) << i << "," << j;
    }
  }
}

TEST(PortfolioTest, ValidatesAttemptCount) {
  const Device d = xilinx::xc3020();
  const Hypergraph h = mcnc::generate("c3540", d.family());
  PortfolioOptions opt;
  opt.attempts = 0;
  EXPECT_THROW(run_portfolio(h, d, opt), PreconditionError);
}

TEST(PortfolioTest, RejectsUnknownMethod) {
  const Device d = xilinx::xc3020();
  const Hypergraph h = mcnc::generate("c3540", d.family());
  PortfolioOptions opt;
  opt.attempts = 2;
  opt.method = "simulated-annealing";
  EXPECT_THROW(run_portfolio(h, d, opt), PreconditionError);
}

TEST(PortfolioTest, SingleAttemptEqualsCanonicalRun) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s9234", d.family());
  const PartitionResult canonical = FpartPartitioner().run(h, d);
  PortfolioOptions opt;
  opt.attempts = 1;
  opt.threads = 2;
  const PortfolioResult pr = run_portfolio(h, d, opt);
  EXPECT_EQ(pr.winner, 0u);
  EXPECT_EQ(pr.counted, 1u);
  EXPECT_EQ(pr.best.k, canonical.k);
  EXPECT_EQ(pr.best.cut, canonical.cut);
  EXPECT_EQ(pr.best.assignment, canonical.assignment);
}

// The tentpole guarantee: winner, assignment and digest are identical
// whether the attempts run on 1, 4 or 8 threads.
TEST(PortfolioTest, DeterministicAcrossThreadCounts) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s5378", d.family());
  PortfolioOptions opt;
  opt.attempts = 6;
  opt.early_exit = false;  // every attempt counts: the strictest case
  opt.base.seed = 3;

  opt.threads = 1;
  const PortfolioResult serial = run_portfolio(h, d, opt);
  EXPECT_EQ(serial.counted, 6u);
  const VerifyReport report =
      verify_partition(h, d, serial.best.assignment, serial.best.k);
  EXPECT_TRUE(report.ok) << report.summary();

  for (unsigned threads : {4u, 8u}) {
    opt.threads = threads;
    const PortfolioResult parallel = run_portfolio(h, d, opt);
    EXPECT_EQ(parallel.winner, serial.winner) << threads;
    EXPECT_EQ(parallel.counted, serial.counted) << threads;
    EXPECT_EQ(parallel.best.k, serial.best.k) << threads;
    EXPECT_EQ(parallel.best.cut, serial.best.cut) << threads;
    EXPECT_EQ(parallel.best.assignment, serial.best.assignment) << threads;
    EXPECT_EQ(parallel.digest, serial.digest) << threads;
    for (std::uint32_t i = 0; i < 6; ++i) {
      EXPECT_EQ(parallel.attempts[i].result.cut,
                serial.attempts[i].result.cut)
          << threads << ":" << i;
      EXPECT_EQ(parallel.attempts[i].assignment_digest,
                serial.attempts[i].assignment_digest)
          << threads << ":" << i;
    }
  }
}

TEST(PortfolioTest, WinnerIsNeverWorseThanAnyCountedAttempt) {
  const Device d = xilinx::xc3020();
  const Hypergraph h = mcnc::generate("s9234", d.family());
  PortfolioOptions opt;
  opt.attempts = 5;
  opt.early_exit = false;
  opt.threads = 4;
  const PortfolioResult pr = run_portfolio(h, d, opt);
  for (const AttemptOutcome& a : pr.attempts) {
    ASSERT_TRUE(a.counted);
    EXPECT_TRUE(a.result.feasible);
    if (a.result.k == pr.best.k) EXPECT_LE(pr.best.cut, a.result.cut);
    EXPECT_LE(pr.best.k, a.result.k);
  }
}

TEST(PortfolioTest, EarlyExitStopsLosersDeterministically) {
  // c3540 on XC3090 fits one device: attempt 0 hits the bound, so only
  // it is counted and later attempts report cancelled — at EVERY thread
  // count, because cancellation must never leak scheduling into the
  // outcome.
  const Device d = xilinx::xc3090();
  const Hypergraph h = mcnc::generate("c3540", d.family());
  PortfolioOptions opt;
  opt.attempts = 8;
  std::uint64_t first_digest = 0;
  for (unsigned threads : {1u, 4u}) {
    opt.threads = threads;
    const PortfolioResult pr = run_portfolio(h, d, opt);
    EXPECT_EQ(pr.best.k, 1u) << threads;
    EXPECT_EQ(pr.winner, 0u) << threads;
    EXPECT_EQ(pr.counted, 1u) << threads;
    for (std::uint32_t i = 1; i < 8; ++i) {
      EXPECT_FALSE(pr.attempts[i].counted) << threads << ":" << i;
      EXPECT_TRUE(pr.attempts[i].cancelled) << threads << ":" << i;
    }
    if (threads == 1u) {
      first_digest = pr.digest;
    } else {
      EXPECT_EQ(pr.digest, first_digest);
    }
  }
}

TEST(PortfolioTest, CancelTokenStopsAnEngineRun) {
  const Device d = xilinx::xc3020();
  const Hypergraph h = mcnc::generate("s9234", d.family());
  CancelToken token;
  token.request();  // pre-latched: the engine must bail at iteration 1
  Options opt;
  opt.cancel = &token;
  const PartitionResult r = FpartPartitioner(opt).run(h, d);
  EXPECT_TRUE(r.cancelled);
}

TEST(PortfolioTest, PerAttemptEventLogsReplayByteExactly) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s9234", d.family());
  PortfolioOptions opt;
  opt.attempts = 3;
  opt.early_exit = false;
  opt.threads = 3;
  // Pid-unique: concurrent ctest invocations (e.g. two build trees) must
  // not race on the log files.
  opt.events_prefix = "/tmp/fpart_portfolio_test_events_" +
                      std::to_string(::getpid());
  const PortfolioResult pr = run_portfolio(h, d, opt);

  // Every counted attempt wrote a private log that replays to its own
  // recorded final state.
  for (const AttemptOutcome& a : pr.attempts) {
    ASSERT_FALSE(a.events_path.empty()) << a.index;
    const obs::EventLog log = obs::read_event_log(a.events_path);
    EXPECT_EQ(log.header.seed, a.seed) << a.index;
    const ReplayResult replay = replay_event_log(h, log);
    EXPECT_TRUE(replay.ok) << "attempt " << a.index << ": "
                           << (replay.errors.empty() ? ""
                                                     : replay.errors[0]);
    ASSERT_TRUE(log.final_state.has_value()) << a.index;
    EXPECT_EQ(log.final_state->assignment_digest, a.assignment_digest);
  }

  // The winner's log is byte-identical across re-runs (any thread count).
  const std::string first =
      read_file(pr.attempts[pr.winner].events_path);
  opt.threads = 1;
  const PortfolioResult rerun = run_portfolio(h, d, opt);
  EXPECT_EQ(rerun.winner, pr.winner);
  EXPECT_EQ(read_file(rerun.attempts[rerun.winner].events_path), first);

  for (const AttemptOutcome& a : pr.attempts) {
    std::remove(a.events_path.c_str());
  }
}

TEST(PortfolioTest, ReportJsonParsesAndCarriesTheContract) {
  const Device d = xilinx::xc3020();
  const Hypergraph h = mcnc::generate("s9234", d.family());
  PortfolioOptions opt;
  opt.attempts = 3;
  opt.early_exit = false;
  opt.threads = 2;
  const PortfolioResult pr = run_portfolio(h, d, opt);

  RunMeta meta;
  meta.circuit = "s9234";
  meta.device = d.name();
  meta.method = opt.method;
  meta.seed = opt.base.seed;
  const auto doc = obs::json_parse(portfolio_report_json(meta, opt, pr));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("schema")->string, kPortfolioReportSchema);
  const obs::JsonValue* pf = doc->find("portfolio");
  ASSERT_NE(pf, nullptr);
  EXPECT_EQ(pf->find("attempts")->as_u64(), 3u);
  EXPECT_EQ(pf->find("winner")->as_u64(), pr.winner);
  EXPECT_EQ(pf->find("digest")->as_u64(), pr.digest);  // bit-exact
  EXPECT_EQ(doc->find("attempts")->array.size(), 3u);
  EXPECT_EQ(doc->find("result")->find("k")->as_u64(), pr.best.k);
}

TEST(PortfolioTest, BaselineMethodsRunUnderThePortfolio) {
  const Device d = xilinx::xc3020();
  const Hypergraph h = mcnc::generate("c3540", d.family());
  for (const char* method : {"kwayx", "fbb", "clustered"}) {
    PortfolioOptions opt;
    opt.attempts = 2;
    opt.threads = 2;
    opt.method = method;
    const PortfolioResult pr = run_portfolio(h, d, opt);
    EXPECT_TRUE(pr.best.feasible) << method;
    EXPECT_GE(pr.best.k, pr.best.lower_bound) << method;
  }
}

TEST(PortfolioTest, NestedBlockingSubmissionThrowsInsteadOfDeadlocking) {
  const Device d = xilinx::xc3020();
  const Hypergraph h = mcnc::generate("c3540", d.family());
  PortfolioOptions opt;
  opt.attempts = 2;
  // One worker makes the old behavior a guaranteed hang: run_portfolio
  // inside a task of `pool` would block the sole worker on attempts only
  // it could execute. The guard turns that into a typed InternalError
  // carried out through the future.
  ThreadPool pool(1);
  auto nested = pool.async([&] { (void)run_portfolio(h, d, opt, &pool); });
  EXPECT_THROW(nested.get(), InternalError);

  // Blocking from outside the pool is the supported shape...
  EXPECT_TRUE(run_portfolio(h, d, opt, &pool).best.feasible);
  // ...and blocking on a DIFFERENT pool from inside a task is fine too
  // (the serve daemon's portfolio lane relies on this distinction).
  ThreadPool other(1);
  auto cross =
      pool.async([&] { return run_portfolio(h, d, opt, &other).winner; });
  EXPECT_NO_THROW((void)cross.get());
}

}  // namespace
}  // namespace fpart::runtime
