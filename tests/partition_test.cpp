#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "device/xilinx.hpp"
#include "hypergraph/builder.hpp"
#include "netlist/generator.hpp"
#include "partition/partition.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace fpart {
namespace {

// Fixture circuit: 5 cells, 1 pad.
//   n0 = {0,1,2}, n1 = {2,3}, n2 = {3,4,pad}, n3 = {0,4}
Hypergraph fixture() {
  HypergraphBuilder b;
  std::vector<NodeId> c;
  for (int i = 0; i < 5; ++i) c.push_back(b.add_cell(1));
  const NodeId pad = b.add_terminal();
  b.add_net({c[0], c[1], c[2]});
  b.add_net({c[2], c[3]});
  b.add_net({c[3], c[4], pad});
  b.add_net({c[0], c[4]});
  return std::move(b).build();
}

TEST(PartitionTest, InitialStateAllInBlockZero) {
  const Hypergraph h = fixture();
  Partition p(h, 1);
  EXPECT_EQ(p.num_blocks(), 1u);
  EXPECT_EQ(p.block_size(0), 5u);
  EXPECT_EQ(p.block_node_count(0), 5u);
  EXPECT_EQ(p.cut_size(), 0u);
  // Only the pad net demands a pin (n2 has a terminal).
  EXPECT_EQ(p.block_pins(0), 1u);
  EXPECT_EQ(p.block_external_pins(0), 1u);
  EXPECT_EQ(p.block_of(5), kInvalidBlock);  // terminal unassigned
}

TEST(PartitionTest, MoveUpdatesSizesAndCut) {
  const Hypergraph h = fixture();
  Partition p(h, 2);
  p.move(0, 1);
  EXPECT_EQ(p.block_size(0), 4u);
  EXPECT_EQ(p.block_size(1), 1u);
  // Cut nets: n0 = {0|1,2} and n3 = {0|4}.
  EXPECT_EQ(p.cut_size(), 2u);
  p.check_consistency();
}

TEST(PartitionTest, PinDemandOnCutNets) {
  const Hypergraph h = fixture();
  Partition p(h, 2);
  p.move(0, 1);
  // Block 1 = {0}: pins for n0 and n3 -> 2.
  EXPECT_EQ(p.block_pins(1), 2u);
  // Block 0 = {1,2,3,4}: pins for n0, n3 and the pad net n2 -> 3.
  EXPECT_EQ(p.block_pins(0), 3u);
}

TEST(PartitionTest, TerminalNetAlwaysDemandsPin) {
  const Hypergraph h = fixture();
  Partition p(h, 2);
  // Move both pins of the pad net (cells 3,4) to block 1: net n2 is
  // internal to block 1 but still needs a pad pin there; block 0 loses it.
  p.move(3, 1);
  p.move(4, 1);
  EXPECT_EQ(p.block_external_pins(1), 1u);
  EXPECT_EQ(p.block_external_pins(0), 0u);
  // n2 demands a pin on block 1 (terminal), none on block 0.
  // n1 = {2|3} and n3 = {0|4} are cut.
  EXPECT_EQ(p.cut_size(), 2u);
  p.check_consistency();
}

TEST(PartitionTest, ConnectivityKm1Metric) {
  const Hypergraph h = fixture();
  Partition p(h, 3);
  EXPECT_EQ(p.connectivity_km1(), 0u);
  p.move(0, 1);
  // n0 = {0|1,2} spans 2 (+1), n3 = {0|4} spans 2 (+1).
  EXPECT_EQ(p.connectivity_km1(), 2u);
  p.move(1, 2);
  // n0 = {0 | 1 | 2} now spans 3 blocks (+1 more).
  EXPECT_EQ(p.connectivity_km1(), 3u);
  EXPECT_EQ(p.cut_size(), 2u);  // cut counts nets, km1 counts fragments
  p.move(0, 0);
  p.move(1, 0);
  EXPECT_EQ(p.connectivity_km1(), 0u);
  p.check_consistency();
}

TEST(PartitionTest, Km1AtLeastCut) {
  const Hypergraph h = fixture();
  Partition p(h, 4);
  Rng rng(3);
  for (NodeId v = 0; v < 5; ++v) {
    p.move(v, static_cast<BlockId>(rng.index(4)));
  }
  EXPECT_GE(p.connectivity_km1(), p.cut_size());
  p.check_consistency();
}

TEST(PartitionTest, MoveToSameBlockIsNoop) {
  const Hypergraph h = fixture();
  Partition p(h, 2);
  const auto before = p.snapshot();
  p.move(0, 0);
  EXPECT_EQ(p.snapshot().assignment, before.assignment);
  EXPECT_EQ(p.cut_size(), 0u);
}

TEST(PartitionTest, MoveBackRestoresEverything) {
  const Hypergraph h = fixture();
  Partition p(h, 3);
  p.move(2, 1);
  p.move(3, 2);
  p.move(2, 0);
  p.move(3, 0);
  EXPECT_EQ(p.cut_size(), 0u);
  EXPECT_EQ(p.block_size(0), 5u);
  EXPECT_EQ(p.block_pins(1), 0u);
  EXPECT_EQ(p.block_pins(2), 0u);
  p.check_consistency();
}

TEST(PartitionTest, MoveValidation) {
  const Hypergraph h = fixture();
  Partition p(h, 2);
  EXPECT_THROW(p.move(5, 1), PreconditionError);   // terminal
  EXPECT_THROW(p.move(0, 7), PreconditionError);   // no such block
  EXPECT_THROW(p.move(99, 1), PreconditionError);  // no such node
}

TEST(PartitionTest, AddAndRemoveBlocks) {
  const Hypergraph h = fixture();
  Partition p(h, 1);
  const BlockId b1 = p.add_block();
  EXPECT_EQ(b1, 1u);
  EXPECT_EQ(p.num_blocks(), 2u);
  p.move(0, b1);
  EXPECT_THROW(p.remove_last_block(), PreconditionError);  // not empty
  p.move(0, 0);
  p.remove_last_block();
  EXPECT_EQ(p.num_blocks(), 1u);
  Partition q(h, 1);
  EXPECT_THROW(q.remove_last_block(), PreconditionError);  // only block
}

TEST(PartitionTest, SwapBlocksExchangesContents) {
  const Hypergraph h = fixture();
  Partition p(h, 2);
  p.move(0, 1);
  p.move(1, 1);
  const auto size0 = p.block_size(0);
  const auto size1 = p.block_size(1);
  const auto pins0 = p.block_pins(0);
  p.swap_blocks(0, 1);
  EXPECT_EQ(p.block_size(0), size1);
  EXPECT_EQ(p.block_size(1), size0);
  EXPECT_EQ(p.block_pins(1), pins0);
  EXPECT_EQ(p.block_of(0), 0u);
  p.check_consistency();
  p.swap_blocks(1, 1);  // self-swap is a no-op
  p.check_consistency();
}

TEST(PartitionTest, BlockNodesListsMembers) {
  const Hypergraph h = fixture();
  Partition p(h, 2);
  p.move(1, 1);
  p.move(4, 1);
  EXPECT_EQ(p.block_nodes(1), (std::vector<NodeId>{1, 4}));
  EXPECT_EQ(p.block_nodes(0), (std::vector<NodeId>{0, 2, 3}));
}

TEST(PartitionTest, SnapshotRestoreRoundTrip) {
  const Hypergraph h = fixture();
  Partition p(h, 3);
  p.move(0, 1);
  p.move(1, 2);
  const auto snap = p.snapshot();
  const auto cut = p.cut_size();
  p.move(2, 1);
  p.move(3, 2);
  p.restore(snap);
  EXPECT_EQ(p.cut_size(), cut);
  EXPECT_EQ(p.block_of(0), 1u);
  EXPECT_EQ(p.block_of(2), 0u);
  p.check_consistency();
}

TEST(PartitionTest, RestoreAcrossBlockCountChange) {
  const Hypergraph h = fixture();
  Partition p(h, 1);
  const auto snap1 = p.snapshot();
  p.add_block();
  p.add_block();
  p.move(0, 2);
  p.restore(snap1);
  EXPECT_EQ(p.num_blocks(), 1u);
  EXPECT_EQ(p.block_of(0), 0u);
  p.check_consistency();
}

TEST(PartitionTest, FeasibilityClassification) {
  const Hypergraph h = fixture();  // 5 cells
  Partition p(h, 2);
  const Device tight("T", Family::kXC3000, 3, 4, 1.0);
  // All 5 cells in block 0: infeasible block + empty feasible block.
  EXPECT_EQ(p.classify(tight), FeasibilityClass::kSemiFeasible);
  EXPECT_EQ(p.count_feasible(tight), 1u);
  p.move(0, 1);
  p.move(1, 1);
  // 3 + 2 split: sizes ok; pins: block0={2,3,4} pins n0,n3,n2(pad)=3 ok;
  // block1={0,1} pins n0,n3=2 ok.
  EXPECT_EQ(p.classify(tight), FeasibilityClass::kFeasible);
}

TEST(PartitionTest, InfeasibleClassification) {
  const Hypergraph h = fixture();
  Partition p(h, 3);
  const Device tiny("T", Family::kXC3000, 1, 2, 1.0);
  p.move(0, 1);
  p.move(1, 2);
  // Sizes: 3,1,1 -> block 0 too big; pins: block1={0}: n0,n3 -> 2 ok;
  // but block2={1}: n0 -> 1 ok. Only one infeasible -> semi.
  EXPECT_EQ(p.classify(tiny), FeasibilityClass::kSemiFeasible);
  p.move(2, 1);  // block1={0,2} size 2 > 1 -> two infeasible
  EXPECT_EQ(p.classify(tiny), FeasibilityClass::kInfeasible);
}

TEST(PartitionTest, RequiresInteriorNodes) {
  HypergraphBuilder b;
  b.add_terminal();
  const Hypergraph h = std::move(b).build();
  EXPECT_THROW(Partition(h, 1), PreconditionError);
}

// The core property test: incremental updates equal a from-scratch
// rebuild after arbitrary move sequences, across circuit shapes and
// block counts.
using PropParam = std::tuple<int, int>;  // (seed, num_blocks)
class PartitionPropertyTest : public ::testing::TestWithParam<PropParam> {};

TEST_P(PartitionPropertyTest, IncrementalMatchesRebuild) {
  const auto& [seed, k] = GetParam();
  GeneratorConfig config;
  config.num_cells = 150;
  config.num_terminals = 20;
  config.seed = static_cast<std::uint64_t>(seed) * 31 + 7;
  const Hypergraph h = generate_circuit(config);

  Partition p(h, static_cast<std::uint32_t>(k));
  Rng rng(config.seed ^ 0x5555);
  std::vector<NodeId> cells;
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) cells.push_back(v);
  }
  for (int step = 0; step < 600; ++step) {
    const NodeId v = rng.pick(cells);
    p.move(v, static_cast<BlockId>(rng.index(static_cast<std::size_t>(k))));
    if (step % 97 == 0) p.check_consistency();
  }
  p.check_consistency();

  // Aggregate identities.
  std::uint64_t total_size = 0;
  std::uint32_t total_nodes = 0;
  for (BlockId b = 0; b < p.num_blocks(); ++b) {
    total_size += p.block_size(b);
    total_nodes += p.block_node_count(b);
  }
  EXPECT_EQ(total_size, h.total_size());
  EXPECT_EQ(total_nodes, h.num_interior());
}

INSTANTIATE_TEST_SUITE_P(SeedsAndBlocks, PartitionPropertyTest,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(2, 3, 7, 16)));

// Arena-mutation property: random move / add_block / remove_last_block /
// swap_blocks / snapshot-restore sequences, deliberately crossing
// power-of-two capacity boundaries (start at k=2, grow towards ~40), must
// keep the incremental state identical to a from-scratch rebuild and the
// padding columns zero (both enforced by check_consistency()).
class ArenaMutationTest : public ::testing::TestWithParam<int> {};

TEST_P(ArenaMutationTest, RandomOpSequenceMatchesRebuild) {
  GeneratorConfig config;
  config.num_cells = 150;
  config.num_terminals = 20;
  config.seed = static_cast<std::uint64_t>(GetParam()) * 131 + 3;
  const Hypergraph h = generate_circuit(config);

  Partition p(h, 2);
  Rng rng(config.seed ^ 0xa5a5);
  std::vector<NodeId> cells;
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_terminal(v)) cells.push_back(v);
  }

  Partition::Snapshot snap = p.snapshot();
  std::uint32_t snap_capacity = p.k_capacity();

  for (int step = 0; step < 900; ++step) {
    switch (rng.index(12)) {
      case 0: {  // grow — crosses 2→4→8→16→32→64 capacity boundaries
        if (p.num_blocks() < 40) {
          const std::uint32_t before = p.k_capacity();
          const BlockId nb = p.add_block();
          EXPECT_EQ(nb, p.num_blocks() - 1);
          EXPECT_GE(p.k_capacity(), before);
          EXPECT_EQ(p.k_capacity() & (p.k_capacity() - 1), 0u)
              << "capacity must stay a power of two";
        }
        break;
      }
      case 1: {  // drain the last block, then drop it
        if (p.num_blocks() > 2) {
          const BlockId last = p.num_blocks() - 1;
          for (NodeId v : cells) {
            if (p.block_of(v) == last) p.move(v, 0);
          }
          p.remove_last_block();
        }
        break;
      }
      case 2: {  // relabel two blocks
        const BlockId a = static_cast<BlockId>(rng.index(p.num_blocks()));
        const BlockId b = static_cast<BlockId>(rng.index(p.num_blocks()));
        p.swap_blocks(a, b);
        break;
      }
      case 3: {  // checkpoint
        snap = p.snapshot();
        snap_capacity = p.k_capacity();
        break;
      }
      case 4: {  // rewind — may shed blocks added since the checkpoint
        p.restore(snap);
        EXPECT_EQ(p.num_blocks(), snap.num_blocks);
        EXPECT_GE(p.k_capacity(), snap_capacity)
            << "capacity never shrinks";
        break;
      }
      default: {  // moves dominate, as on the real hot path
        p.move(rng.pick(cells),
               static_cast<BlockId>(rng.index(p.num_blocks())));
        break;
      }
    }
    if (step % 53 == 0) p.check_consistency();
  }
  p.check_consistency();

  // The oracle rebuild must agree with the incrementally maintained
  // totals after the full op soup.
  const std::uint64_t cut_before = p.cut_size();
  const std::uint64_t km1_before = p.connectivity_km1();
  p.rebuild();
  EXPECT_EQ(p.cut_size(), cut_before);
  EXPECT_EQ(p.connectivity_km1(), km1_before);
  p.check_consistency();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaMutationTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace fpart
