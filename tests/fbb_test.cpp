#include <gtest/gtest.h>

#include <tuple>

#include "device/xilinx.hpp"
#include "flow/fbb.hpp"
#include "hypergraph/builder.hpp"
#include "netlist/mcnc.hpp"

namespace fpart {
namespace {

using Case = std::tuple<const char*, const char*>;
class FbbEndToEndTest : public ::testing::TestWithParam<Case> {};

TEST_P(FbbEndToEndTest, ProducesFeasiblePartition) {
  const auto& [circuit, device_name] = GetParam();
  const Device d = xilinx::by_name(device_name);
  const Hypergraph h = mcnc::generate(circuit, d.family());
  const PartitionResult r = FbbPartitioner().run(h, d);
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(r.k, r.lower_bound);
  std::uint64_t total = 0;
  for (const BlockStats& b : r.blocks) {
    EXPECT_TRUE(b.feasible);
    EXPECT_GT(b.nodes, 0u);
    total += b.size;
  }
  EXPECT_EQ(total, h.total_size());
  // Flow-based peeling should stay reasonably close to the bound.
  EXPECT_LE(r.k, r.lower_bound + r.lower_bound / 4 + 2);
}

INSTANTIATE_TEST_SUITE_P(Circuits, FbbEndToEndTest,
                         ::testing::Values(Case{"c3540", "XC3020"},
                                           Case{"s5378", "XC3042"},
                                           Case{"s9234", "XC3090"},
                                           Case{"c7552", "XC2064"}));

TEST(FbbTest, DeterministicAcrossRuns) {
  const Device d = xilinx::xc3042();
  const Hypergraph h = mcnc::generate("s5378", d.family());
  const PartitionResult a = FbbPartitioner().run(h, d);
  const PartitionResult b = FbbPartitioner().run(h, d);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(FbbTest, SingleDeviceShortCircuit) {
  const Device d = xilinx::xc3090();
  const Hypergraph h = mcnc::generate("c3540", d.family());
  const PartitionResult r = FbbPartitioner().run(h, d);
  EXPECT_EQ(r.k, 1u);
  EXPECT_TRUE(r.feasible);
}

TEST(FbbTest, TinyCircuitWithForcedCut) {
  HypergraphBuilder b;
  std::vector<NodeId> c;
  for (int i = 0; i < 6; ++i) c.push_back(b.add_cell(2));
  for (int i = 0; i < 5; ++i) b.add_net({c[i], c[i + 1]});
  const Hypergraph h = std::move(b).build();  // 12 size units
  const Device d("X", Family::kXC3000, 8, 8, 1.0);
  const PartitionResult r = FbbPartitioner().run(h, d);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.k, 2u);
  EXPECT_EQ(r.cut, 1u);  // chain cut once
}

TEST(FbbTest, ConfigWindowIsRespectedOnAverage) {
  // With a high lo fraction, peeled blocks should be well filled.
  const Device d = xilinx::xc3020();
  const Hypergraph h = mcnc::generate("s9234", d.family());
  FbbConfig config;
  config.size_lo_frac = 0.85;
  const PartitionResult r = FbbPartitioner(config).run(h, d);
  EXPECT_TRUE(r.feasible);
  double avg_fill = 0.0;
  for (const BlockStats& blk : r.blocks) {
    avg_fill += static_cast<double>(blk.size) / d.s_max();
  }
  avg_fill /= static_cast<double>(r.blocks.size());
  EXPECT_GT(avg_fill, 0.6);
}

TEST(FbbTest, PinTightDeviceForcesRetries) {
  // Few pins relative to logic: exercises the pin-retry/shrink path.
  HypergraphBuilder b;
  std::vector<NodeId> c;
  for (int i = 0; i < 40; ++i) c.push_back(b.add_cell(1));
  // A mesh with many crossing nets.
  for (int i = 0; i < 40; ++i) {
    b.add_net({c[static_cast<std::size_t>(i)],
               c[static_cast<std::size_t>((i + 7) % 40)],
               c[static_cast<std::size_t>((i + 19) % 40)]});
  }
  const Hypergraph h = std::move(b).build();
  const Device d("X", Family::kXC3000, 12, 8, 1.0);
  const PartitionResult r = FbbPartitioner().run(h, d);
  EXPECT_TRUE(r.feasible);
  for (const BlockStats& blk : r.blocks) EXPECT_LE(blk.pins, 8u);
}

}  // namespace
}  // namespace fpart
